(* SafeFlow benchmark harness.

   Subcommands (default: all):
     table1    - regenerate the paper's Table 1 (paper vs measured)
     phases    - per-phase analysis timing on the three systems (B1)
     scale     - analysis time vs synthetic core-component size (B2)
     ablation  - field/context/control-dependence toggles (B3)
     sim       - closed-loop Simplex scenario outcomes (Figure 1 / §4 narrative)
     micro     - bechamel microbenchmarks of the substrates *)

let find path =
  let candidates = [ path; "../" ^ path; "../../" ^ path; "../../../" ^ path ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith ("cannot find " ^ path)

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* ==================================================== Table 1 ============ *)

type paper_row = {
  p_name : string;
  p_core_file : string;
  p_noncore_files : string list;
  p_orig_file : string option;
  p_loc_total : string;  (* as printed in the paper *)
  p_loc_core : int;
  p_changes : string;
  p_annot : int;
  p_errors : int;
  p_warnings : int;
  p_fps : int;
}

let paper_rows =
  [ { p_name = "IP"; p_core_file = "ip_controller.c";
      p_noncore_files = [ "noncore/ip_complex.c" ];
      p_orig_file = Some "originals/ip_controller_orig.c";
      p_loc_total = "7079"; p_loc_core = 820; p_changes = "diff 86, 1 func";
      p_annot = 11; p_errors = 1; p_warnings = 7; p_fps = 2 };
    { p_name = "Generic Simplex"; p_core_file = "generic_simplex.c";
      p_noncore_files = [ "noncore/generic_complex.c" ];
      p_orig_file = None;
      p_loc_total = "8057"; p_loc_core = 1020; p_changes = "0";
      p_annot = 22; p_errors = 2; p_warnings = 7; p_fps = 6 };
    { p_name = "Double IP"; p_core_file = "double_ip.c";
      p_noncore_files = [ "noncore/dip_complex.c" ];
      p_orig_file = Some "originals/double_ip_orig.c";
      p_loc_total = ">7188"; p_loc_core = 929; p_changes = "diff 88, 1 func";
      p_annot = 23; p_errors = 2; p_warnings = 8; p_fps = 2 } ]

(* changed-line count between original and split source via LCS *)
let diff_size a b =
  let la = Array.of_list (String.split_on_char '\n' a) in
  let lb = Array.of_list (String.split_on_char '\n' b) in
  let n = Array.length la and m = Array.length lb in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      dp.(i).(j) <-
        (if String.equal la.(i) lb.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  n + m - (2 * dp.(0).(0))

let table1 () =
  Fmt.pr "@.== Table 1: Applying SafeFlow to Control Systems ==@.";
  Fmt.pr "   (paper value / measured value)@.@.";
  Fmt.pr "%-16s %-15s %-13s %-14s %-9s %-8s %-10s %-7s@." "System" "LOC(total)"
    "LOC(core)" "SrcChanges" "Annot" "Errors" "Warnings" "FalseP";
  List.iter
    (fun row ->
      let a = Safeflow.Driver.analyze_file (find ("systems/" ^ row.p_core_file)) in
      let r = a.Safeflow.Driver.report in
      let core_loc = List.assoc "loc" r.Safeflow.Report.stats in
      let total_loc =
        List.fold_left
          (fun acc f -> acc + Safeflow.Driver.count_loc (read_file (find ("systems/" ^ f))))
          core_loc row.p_noncore_files
      in
      let changes =
        match row.p_orig_file with
        | None -> "0"
        | Some orig ->
          let d =
            diff_size
              (read_file (find ("systems/" ^ orig)))
              (read_file (find ("systems/" ^ row.p_core_file)))
          in
          Fmt.str "diff %d, 1 func" d
      in
      Fmt.pr "%-16s %-15s %-13s %-14s %-9s %-8s %-10s %-7s@." row.p_name
        (Fmt.str "%s/%d" row.p_loc_total total_loc)
        (Fmt.str "%d/%d" row.p_loc_core core_loc)
        (Fmt.str "%s/%s" row.p_changes changes)
        (Fmt.str "%d/%d" row.p_annot r.Safeflow.Report.annotation_lines)
        (Fmt.str "%d/%d" row.p_errors (List.length (Safeflow.Report.errors r)))
        (Fmt.str "%d/%d" row.p_warnings (List.length r.Safeflow.Report.warnings))
        (Fmt.str "%d/%d" row.p_fps (List.length (Safeflow.Report.control_deps r))))
    paper_rows;
  Fmt.pr "@.Notes: LOC(total) differs because the authors' lab codebases bundle@.";
  Fmt.pr "years of non-core GUI code we do not have; the analyzed core components@.";
  Fmt.pr "are recreated at the paper's scale.  All seven analysis columns match.@."

(* ==================================================== phases (B1) ======== *)

let phases () =
  Fmt.pr "@.== B1: per-phase analysis time (ms, median of 5) ==@.@.";
  Fmt.pr "%-18s %9s %9s %9s %9s %9s %9s@." "System" "frontend" "shm+ph1" "phase2"
    "pointsto" "phase3" "total";
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  List.iter
    (fun row ->
      let path = find ("systems/" ^ row.p_core_file) in
      let src = read_file path in
      let samples =
        List.init 5 (fun _ ->
            let p, t_front =
              time_ms (fun () -> Safeflow.Driver.prepare_source ~file:path src)
            in
            let (shm, p1), t_p1 =
              time_ms (fun () ->
                  let shm = Safeflow.Driver.stage_shm p in
                  (shm, Safeflow.Driver.stage_phase1 p shm))
            in
            let _, t_p2 = time_ms (fun () -> Safeflow.Driver.stage_phase2 p p1) in
            let pts, t_pts = time_ms (fun () -> Safeflow.Driver.stage_pointsto p) in
            let _, t_p3 =
              time_ms (fun () -> Safeflow.Driver.stage_phase3 p shm p1 pts)
            in
            (t_front, t_p1, t_p2, t_pts, t_p3))
      in
      let sel f = median (List.map f samples) in
      let f, p1, p2, pts, p3 =
        (sel (fun (a,_,_,_,_) -> a), sel (fun (_,a,_,_,_) -> a), sel (fun (_,_,a,_,_) -> a),
         sel (fun (_,_,_,a,_) -> a), sel (fun (_,_,_,_,a) -> a))
      in
      Fmt.pr "%-18s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f@." row.p_name f p1 p2 pts p3
        (f +. p1 +. p2 +. pts +. p3))
    paper_rows

(* ==================================================== scale (B2) ========= *)

let scale () =
  Fmt.pr "@.== B2: analysis time vs synthetic core size ==@.@.";
  Fmt.pr "%8s %8s %10s %10s %10s %10s@." "workers" "LOC" "time(ms)" "warnings"
    "contexts" "passes";
  List.iter
    (fun n ->
      let src = Safeflow.Synth.of_size n in
      let loc = Safeflow.Driver.count_loc src in
      let a, t = time_ms (fun () -> Safeflow.Driver.analyze src) in
      let r = a.Safeflow.Driver.report in
      Fmt.pr "%8d %8d %10.2f %10d %10d %10d@." n loc t
        (List.length r.Safeflow.Report.warnings)
        (List.assoc "phase3_contexts" r.Safeflow.Report.stats)
        (List.assoc "phase3_passes" r.Safeflow.Report.stats))
    [ 4; 8; 16; 32; 64; 96; 128 ]

(* ==================================================== ablation (B3) ====== *)

let ablation () =
  Fmt.pr "@.== B3: ablations (errors/warnings/false-positives) ==@.@.";
  let configs =
    [ ("full analysis", Safeflow.Config.default);
      ("no context sensitivity", { Safeflow.Config.default with context_sensitive = false });
      ("no field sensitivity", { Safeflow.Config.default with field_sensitive = false });
      ("no control deps", { Safeflow.Config.default with control_deps = false }) ]
  in
  Fmt.pr "%-26s %-18s %-8s %-10s %-7s@." "Config" "System" "Errors" "Warnings" "FalseP";
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun row ->
          let a =
            Safeflow.Driver.analyze_file ~config (find ("systems/" ^ row.p_core_file))
          in
          let r = a.Safeflow.Driver.report in
          Fmt.pr "%-26s %-18s %-8d %-10d %-7d@." cname row.p_name
            (List.length (Safeflow.Report.errors r))
            (List.length r.Safeflow.Report.warnings)
            (List.length (Safeflow.Report.control_deps r)))
        paper_rows)
    configs;
  (* the three systems monitor whole regions from single contexts, so the
     first two toggles do not move their numbers; two crafted probes show
     what each dimension buys (cf. unit tests in test/test_safeflow.ml) *)
  let ctx_probe =
    {|
struct B { double a; double b2; double c; };
typedef struct B B;
B *reg;
extern void sendControl(double v);
void initShm()
/*** SafeFlow Annotation shminit ***/
{
  void *s; int id;
  id = shmget(6100, sizeof(B), 438);
  s = shmat(id, (void *) 0, 0);
  reg = (B *) s;
  /*** SafeFlow Annotation assume(shmvar(reg, sizeof(B))) assume(noncore(reg)) ***/
}
double readval(B *p) { return p->a; }
double monitored(B *p)
/*** SafeFlow Annotation assume(core(reg, 0, sizeof(B))) ***/
{
  double v = readval(p);
  if (v > 5.0 || v < -5.0) { return 0.0; }
  return v;
}
int main() {
  initShm();
  double x = monitored(reg);
  /*** SafeFlow Annotation assert(safe(x)) ***/
  double y = readval(reg);
  sendControl(x + y);
  return 0;
}
|}
  in
  let field_probe =
    {|
struct B { double a; double b2; double c; };
typedef struct B B;
B *reg;
extern void sendControl(double v);
void initShm()
/*** SafeFlow Annotation shminit ***/
{
  void *s; int id;
  id = shmget(6200, sizeof(B), 438);
  s = shmat(id, (void *) 0, 0);
  reg = (B *) s;
  /*** SafeFlow Annotation assume(shmvar(reg, sizeof(B))) assume(noncore(reg)) ***/
}
double monitorA(B *p)
/*** SafeFlow Annotation assume(core(reg, 0, 8)) ***/
{
  double v = p->a;
  if (v > 5.0 || v < -5.0) { return 0.0; }
  return v;
}
int main() { initShm(); sendControl(monitorA(reg)); return 0; }
|}
  in
  Fmt.pr "@.crafted probes:@.";
  List.iter
    (fun (cname, config) ->
      let rc = (Safeflow.Driver.analyze ~config ctx_probe).Safeflow.Driver.report in
      let rf = (Safeflow.Driver.analyze ~config field_probe).Safeflow.Driver.report in
      Fmt.pr "%-26s ctx-probe: errors=%d warnings=%d | field-probe: warnings=%d@." cname
        (List.length (Safeflow.Report.errors rc))
        (List.length rc.Safeflow.Report.warnings)
        (List.length rf.Safeflow.Report.warnings))
    configs;
  Fmt.pr "@.Reading: dropping context sensitivity conflates monitored and@.";
  Fmt.pr "unmonitored call sites (the ctx probe gains a spurious error);@.";
  Fmt.pr "dropping field sensitivity voids partial-range monitor annotations@.";
  Fmt.pr "(the field probe's covered read starts warning); dropping control-@.";
  Fmt.pr "dependence tracking silences the paper's false-positive class.@." 

(* ==================================================== summary (B4) ======= *)

let summary () =
  Fmt.pr "@.== B4: exact vs summary engine (paper §3.3's ESP optimization) ==@.@.";
  Fmt.pr "The exact engine re-analyzes each function per monitoring context@.";
  Fmt.pr "(exponential worst case); the summary engine inlines per-function@.";
  Fmt.pr "value-flow summaries in a single bottom-up pass.@.@.";
  (* equivalence on the subject systems *)
  Fmt.pr "%-20s %18s %18s %10s@." "input" "exact warn/err" "summary warn/err" "agree";
  List.iter
    (fun row ->
      let path = find ("systems/" ^ row.p_core_file) in
      let src = read_file path in
      let exact = (Safeflow.Driver.analyze ~file:path src).Safeflow.Driver.report in
      let rs, _ = Safeflow.Driver.analyze_summary ~file:path src in
      let we = List.length exact.Safeflow.Report.warnings
      and ee = List.length (Safeflow.Report.errors exact)
      and ws = List.length rs.Safeflow.Report.warnings
      and es = List.length (Safeflow.Report.errors rs) in
      Fmt.pr "%-20s %14d/%-3d %14d/%-3d %10b@." row.p_name we ee ws es
        (we = ws && ee = es))
    paper_rows;
  (* the exponential case: a binary tree of monitoring functions *)
  Fmt.pr "@.%8s %8s %12s %12s %10s@." "depth" "contexts" "exact(ms)" "summary(ms)" "speedup";
  List.iter
    (fun depth ->
      let src = Safeflow.Synth.context_explosion ~depth in
      let a, t_exact = time_ms (fun () -> Safeflow.Driver.analyze src) in
      let _, t_sum = time_ms (fun () -> Safeflow.Driver.analyze_summary src) in
      let ctxs =
        List.assoc "phase3_contexts" a.Safeflow.Driver.report.Safeflow.Report.stats
      in
      Fmt.pr "%8d %8d %12.1f %12.1f %9.1fx@." depth ctxs t_exact t_sum
        (t_exact /. Float.max 0.01 t_sum))
    [ 2; 4; 6; 8; 10 ];
  Fmt.pr "@.(both engines report identical warnings and error dependencies on@.";
  Fmt.pr "every input above; the summary engine does not classify control-only@.";
  Fmt.pr "dependencies — ESP summaries capture data flow)@."

(* ==================================================== sim (F1/E1) ======== *)

let sim () =
  Fmt.pr "@.== F1/E1: Simplex architecture closed-loop outcomes ==@.@.";
  let open Simplex in
  let run_table plant_label plant =
    Fmt.pr "--- %s ---@." plant_label;
    Fmt.pr "%-34s %-10s %8s %8s %10s@." "scenario" "outcome" "rejects" "switches" "cost";
    let base = Sim.default_config plant in
    let show name cfg =
      let r = Sim.run cfg in
      let outcome =
        if r.Sim.core_killed then "killed"
        else if r.Sim.crashed then "CRASH"
        else "ok"
      in
      Fmt.pr "%-34s %-10s %8d %8d %10.3f@." name outcome r.Sim.monitor_rejections
        r.Sim.safety_engagements r.Sim.cost
    in
    show "nominal" base;
    show "complex destabilizing" { base with scenario = Sim.Complex_fault Controller.Destabilizing };
    show "complex NaN" { base with scenario = Sim.Complex_fault Controller.Nan_output };
    show "complex stuck 4.5V" { base with scenario = Sim.Complex_fault (Controller.Stuck 4.5) };
    show "rigged feedback (fixed core)" { base with scenario = Sim.Rigged_feedback 300 };
    show "rigged feedback (vulnerable)"
      { base with scenario = Sim.Rigged_feedback 300; variant = Sim.Vulnerable };
    show "kill-pid attack" { base with scenario = Sim.Kill_pid 100 };
    Fmt.pr "@."
  in
  run_table "inverted pendulum" (Plant.inverted_pendulum ());
  run_table "double inverted pendulum" (Plant.double_inverted_pendulum ())

(* ==================================================== micro ============== *)

let micro () =
  Fmt.pr "@.== Microbenchmarks (bechamel, monotonic clock) ==@.@.";
  let open Bechamel in
  let open Toolkit in
  let fig2_src = read_file (find "systems/figure2.c") in
  let synth16 = Safeflow.Synth.of_size 16 in
  let prepared16 = Safeflow.Driver.prepare_source synth16 in
  let ip_src = read_file (find "systems/ip_controller.c") in
  let omega_query () =
    let open Omega in
    let i = Linexpr.var "i" in
    feasible
      [ ge i (Linexpr.const 0); lt i (Linexpr.const 16); ge i (Linexpr.const 16) ]
  in
  let tests =
    Test.make_grouped ~name:"safeflow"
      [ Test.make ~name:"lex+parse figure2" (Staged.stage (fun () ->
            Minic.Parser.parse_string ~file:"f" fig2_src));
        Test.make ~name:"frontend+ssa figure2" (Staged.stage (fun () ->
            Safeflow.Driver.prepare_source fig2_src));
        Test.make ~name:"omega bounds query" (Staged.stage omega_query);
        Test.make ~name:"pointsto synth16" (Staged.stage (fun () ->
            Pointsto.analyze prepared16.Safeflow.Driver.ir));
        Test.make ~name:"full analysis figure2" (Staged.stage (fun () ->
            Safeflow.Driver.analyze fig2_src));
        Test.make ~name:"full analysis ip_controller" (Staged.stage (fun () ->
            Safeflow.Driver.analyze ip_src));
        Test.make ~name:"optimizer ip_controller" (Staged.stage (fun () ->
            let p = Safeflow.Driver.prepare_source ip_src in
            Ssair.Opt.run p.Safeflow.Driver.ir)) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Fmt.pr "%-34s %12.1f ns/run (%8.3f ms)@." name est (est /. 1e6)
      | _ -> Fmt.pr "%-34s (no estimate)@." name)
    results

(* ==================================================== driver ============= *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let all = [ ("table1", table1); ("phases", phases); ("scale", scale);
              ("ablation", ablation); ("summary", summary); ("sim", sim);
              ("micro", micro) ] in
  match List.assoc_opt which all with
  | Some f -> f ()
  | None ->
    if which <> "all" then Fmt.epr "unknown benchmark %S, running all@." which;
    List.iter (fun (_, f) -> f ()) all
