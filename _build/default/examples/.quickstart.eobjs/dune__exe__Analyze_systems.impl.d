examples/analyze_systems.ml: Fmt List Safeflow Sys
