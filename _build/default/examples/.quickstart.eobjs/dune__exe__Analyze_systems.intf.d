examples/analyze_systems.mli:
