examples/fault_injection.ml: Fmt Plant Shm_rt Sim Simplex
