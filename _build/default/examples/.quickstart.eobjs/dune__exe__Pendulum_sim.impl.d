examples/pendulum_sim.ml: Array Controller Fmt Monitor Plant Sim Simplex
