examples/pendulum_sim.mli:
