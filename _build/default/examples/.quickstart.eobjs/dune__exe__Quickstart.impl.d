examples/quickstart.ml: Fmt List Safeflow Sys
