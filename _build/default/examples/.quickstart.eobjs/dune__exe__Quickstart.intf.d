examples/quickstart.mli:
