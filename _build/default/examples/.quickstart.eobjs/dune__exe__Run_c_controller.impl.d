examples/run_c_controller.ml: Array Controller Float Fmt Int64 Linalg List Minic Plant Safeflow Simplex Ssair Sys
