examples/run_c_controller.mli:
