(* Analyze the three bundled control systems and print a Table-1-style
   summary (the full reproduction with paper-vs-measured columns lives in
   the benchmark harness: `dune exec bench/main.exe -- table1`). *)

let find path =
  let candidates = [ path; "../" ^ path; "../../" ^ path; "../../../" ^ path ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith ("cannot find " ^ path)

let () =
  Fmt.pr "=== SafeFlow over the three subject systems ===@.@.";
  let rows =
    List.map
      (fun (label, core, extras) ->
        let a = Safeflow.Driver.analyze_file (find ("systems/" ^ core)) in
        let r = a.Safeflow.Driver.report in
        let core_loc = List.assoc "loc" r.Safeflow.Report.stats in
        let extra_loc =
          List.fold_left
            (fun acc f ->
              let ic = open_in_bin (find ("systems/" ^ f)) in
              let n = in_channel_length ic in
              let s = really_input_string ic n in
              close_in ic;
              acc + Safeflow.Driver.count_loc s)
            0 extras
        in
        (label, a, core_loc, core_loc + extra_loc))
      [ ("IP", "ip_controller.c", [ "noncore/ip_complex.c" ]);
        ("Generic Simplex", "generic_simplex.c", [ "noncore/generic_complex.c" ]);
        ("Double IP", "double_ip.c", [ "noncore/dip_complex.c" ]) ]
  in
  Fmt.pr "%-16s %9s %9s %6s %7s %9s %7s@." "System" "LOC(tot)" "LOC(core)" "Annot"
    "Errors" "Warnings" "FalseP";
  List.iter
    (fun (label, a, core_loc, total_loc) ->
      let r = a.Safeflow.Driver.report in
      Fmt.pr "%-16s %9d %9d %6d %7d %9d %7d@." label total_loc core_loc
        r.Safeflow.Report.annotation_lines
        (List.length (Safeflow.Report.errors r))
        (List.length r.Safeflow.Report.warnings)
        (List.length (Safeflow.Report.control_deps r)))
    rows;
  Fmt.pr "@.";
  (* details per system *)
  List.iter
    (fun (label, a, _, _) ->
      Fmt.pr "=== %s ===@." label;
      Fmt.pr "%a@.@." Safeflow.Report.pp a.Safeflow.Driver.report)
    rows
