(* Fault-injection study: the run-time consequences of the value-flow
   errors that SafeFlow finds statically (paper §4).

   Two attacks are reproduced:

   1. "Rigged feedback" (the generic-Simplex error): the non-core
      component overwrites the published feedback cells that the
      vulnerable decision module re-reads for its recoverability check.
      The monitor then sees a calm plant and admits an in-range but
      destabilizing output.  The fixed core (local feedback copy — the
      change SafeFlow's report leads to) is immune.

   2. "Kill pid" (found in all three systems): the non-core component
      overwrites the watchdog pid cell with the core's own pid; at the
      next supervision period the core kills itself. *)

open Simplex

let show name (r : Sim.result) =
  let outcome =
    if r.Sim.core_killed then "CORE KILLED ITSELF"
    else if r.Sim.crashed then
      Fmt.str "PENDULUM CRASHED at step %d" r.Sim.steps_run
    else "survived all steps"
  in
  Fmt.pr "  %-44s -> %s@." name outcome

let () =
  let plant = Plant.inverted_pendulum () in
  let base = { (Sim.default_config plant) with steps = 3000 } in

  Fmt.pr "=== Attack 1: rigged feedback (generic-Simplex error #1) ===@.@.";
  Fmt.pr "The non-core controller publishes a destabilizing but in-range output@.";
  Fmt.pr "and, from step 300 on, rewrites the shared feedback cells to zeros.@.@.";
  show "vulnerable core (re-reads shm feedback)"
    (Sim.run { base with scenario = Sim.Rigged_feedback 300; variant = Sim.Vulnerable });
  show "fixed core (local feedback copy)"
    (Sim.run { base with scenario = Sim.Rigged_feedback 300; variant = Sim.Fixed });
  Fmt.pr "@.SafeFlow flags the vulnerable variant statically: the safety-check@.";
  Fmt.pr "inputs are unmonitored non-core values flowing into critical data.@.";

  Fmt.pr "@.=== Attack 2: watchdog pid overwrite (error in all 3 systems) ===@.@.";
  Fmt.pr "From step 100 the non-core component writes the core's own pid into@.";
  Fmt.pr "the watchdog cell; the supervision period then calls kill(pid, 9).@.@.";
  show "core with shm-sourced kill pid"
    (Sim.run { base with scenario = Sim.Kill_pid 100 });
  show "same core, no attack" (Sim.run base);
  Fmt.pr "@.SafeFlow reports the kill() argument as an error dependency: the pid@.";
  Fmt.pr "is unmonitored non-core data (see systems/*.c superviseNonCore).@.";

  (* protocol-violation accounting from the shared-memory emulation *)
  Fmt.pr "@.=== Non-core encapsulation cannot be assumed (§3.4.2) ===@.@.";
  let shm = Shm_rt.create () in
  Shm_rt.add_region shm "fb" ~noncore:true;
  Shm_rt.add_region shm "core_only" ~noncore:false;
  Shm_rt.add_cell shm ~region:"fb" "x" (Shm_rt.F 1.0);
  Shm_rt.add_cell shm ~region:"core_only" "gain" (Shm_rt.F 3.0);
  Shm_rt.lock shm;
  Shm_rt.noncore_set shm "x" (Shm_rt.F 99.0);      (* write under the core's lock *)
  Shm_rt.unlock shm;
  Shm_rt.noncore_set shm "gain" (Shm_rt.F 0.0);    (* write into a core region *)
  Fmt.pr "  protocol violations recorded: %d (both writes still happened)@."
    shm.Shm_rt.lock_violations;
  Fmt.pr "  fb.x = %.1f, core_only.gain = %.1f@." (Shm_rt.get_f shm "x")
    (Shm_rt.get_f shm "gain");
  Fmt.pr "@.This is why the analysis keeps noncore(S) sticky: core writes do not@.";
  Fmt.pr "make a shared location trustworthy again.@."
