(* Closed-loop Simplex simulation (the paper's Figure 1 architecture).

   Runs the inverted pendulum and the double inverted pendulum under the
   Simplex architecture: a conservative LQR safety controller, an
   aggressive complex controller, and the Lyapunov stability-envelope
   monitor deciding which output reaches the actuator.  Scenarios inject
   the failure modes the architecture must contain. *)

open Simplex

let describe name (r : Sim.result) =
  let outcome =
    if r.Sim.core_killed then "CORE KILLED"
    else if r.Sim.crashed then "CRASHED"
    else "survived"
  in
  Fmt.pr "  %-34s %-11s steps=%5d rejects=%5d switches=%3d max|angle|=%5.3f cost=%7.3f@."
    name outcome r.Sim.steps_run r.Sim.monitor_rejections r.Sim.safety_engagements
    r.Sim.max_angle r.Sim.cost

let run_suite plant_name plant =
  Fmt.pr "@.=== %s (dt=%.3fs, %d states) ===@." plant_name plant.Plant.dt
    plant.Plant.state_dim;
  let base = Sim.default_config plant in
  describe "nominal (healthy complex ctrl)" (Sim.run base);
  describe "complex: destabilizing gains"
    (Sim.run { base with scenario = Sim.Complex_fault Controller.Destabilizing });
  describe "complex: NaN output"
    (Sim.run { base with scenario = Sim.Complex_fault Controller.Nan_output });
  describe "complex: stuck at 4.5V"
    (Sim.run { base with scenario = Sim.Complex_fault (Controller.Stuck 4.5) });
  describe "complex: noisy output"
    (Sim.run { base with scenario = Sim.Complex_fault (Controller.Noisy 2.0) })

let () =
  Fmt.pr "=== Simplex architecture closed-loop simulation ===@.";
  Fmt.pr "(monitor = Lyapunov stability envelope of the safety closed loop)@.";
  run_suite "inverted pendulum" (Plant.inverted_pendulum ());
  run_suite "double inverted pendulum" (Plant.double_inverted_pendulum ());
  run_suite "generic LTI plant" (Plant.generic_lti ~dim:3 ());

  (* show the monitor's envelope in action: Lyapunov value along a
     nominal trajectory *)
  Fmt.pr "@.=== Lyapunov envelope trace (inverted pendulum, nominal) ===@.";
  let plant = Plant.inverted_pendulum () in
  let safety = Controller.safety plant in
  let monitor = Monitor.make plant safety in
  let x = ref [| 0.3; 0.0; 0.1; 0.0 |] in
  Fmt.pr "  envelope level c = %.4f@." monitor.Monitor.envelope;
  for k = 0 to 400 do
    let u = Controller.output safety !x in
    if k mod 50 = 0 then
      Fmt.pr "  k=%3d  V(x)=%8.4f  inside=%b  u=%6.3f@." k (Monitor.value monitor !x)
        (Monitor.inside monitor !x) u;
    x := Plant.step plant !x ~u ~w:(Array.make 4 0.0)
  done;
  Fmt.pr "@.The envelope value decreases monotonically under the safety controller:@.";
  Fmt.pr "any state the monitor admits can always be recovered.@."
