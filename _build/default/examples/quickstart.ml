(* Quickstart: run SafeFlow on the paper's Figure 2 running example.

   The source (systems/figure2.c) is the simplified Simplex core
   controller from the paper: main publishes the sensor feedback to
   shared memory, waits for the complex (non-core) controller, and lets
   the decision module dispatch the monitored non-core output or the
   core-computed safe control.

   Expected findings (paper §3.3, "In the example in figure 2 ..."):
   - the dereferences of `feedback` outside the monitoring context are
     unmonitored non-core reads (warnings);
   - `output` is data-dependent on them via computeSafety, so the
     assert(safe(output)) fails: one error dependency;
   - the paper's suggested fix is to pass a local copy of the feedback. *)

let find path =
  let candidates = [ path; "../" ^ path; "../../" ^ path; "../../../" ^ path ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith ("cannot find " ^ path)

let () =
  let file = find "systems/figure2.c" in
  Fmt.pr "=== SafeFlow quickstart: analyzing %s ===@.@." file;
  let a = Safeflow.Driver.analyze_file file in
  Fmt.pr "%a@." Safeflow.Report.pp a.Safeflow.Driver.report;

  (* run the paper's InitCheck: simulate the initializing function and
     verify the declared regions do not overlap *)
  let layout =
    Safeflow.Shm.run_init_check a.Safeflow.Driver.prepared.Safeflow.Driver.ir
      a.Safeflow.Driver.shm
  in
  Fmt.pr "@.InitCheck: region layout verified:@.";
  List.iter (fun (n, off, sz) -> Fmt.pr "  %-14s offset %3d size %3d@." n off sz) layout;

  (* export the value-flow graph used for manual review of reports *)
  Safeflow.Vfg.write_dot "figure2_vfg.dot" a.Safeflow.Driver.phase3;
  Fmt.pr "@.value-flow graph written to figure2_vfg.dot@.";

  (* demonstrate the fix: the same controller with a monitored local copy
     of the feedback analyzes clean *)
  let fixed_src =
    {|
struct SHMData { double control; double track; double angle; };
typedef struct SHMData SHMData;
SHMData *noncoreCtrl;
SHMData *feedback;
extern void sendControl(double out);
extern void getFeedbackLocal(double *t, double *a);

void initComm()
/*** SafeFlow Annotation shminit ***/
{
  void *s;
  int id;
  id = shmget(9000, 2 * sizeof(SHMData), 438);
  s = shmat(id, (void *) 0, 0);
  feedback = (SHMData *) s;
  noncoreCtrl = feedback + 1;
  /*** SafeFlow Annotation
       assume(shmvar(feedback, sizeof(SHMData)))
       assume(shmvar(noncoreCtrl, sizeof(SHMData)))
       assume(noncore(feedback))
       assume(noncore(noncoreCtrl)) ***/
}

double decision(double t, double a, double safeControl)
/*** SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMData))) ***/
{
  double c = noncoreCtrl->control;
  if (c > 5.0 || c < -5.0) { return safeControl; }
  if (t * t + 4.0 * a * a > 1.0) { return safeControl; }
  return c;
}

int main()
{
  double t;
  double a;
  double safeControl;
  double output;
  int k = 0;
  initComm();
  while (k < 1000) {
    getFeedbackLocal(&t, &a);
    feedback->track = t;
    feedback->angle = a;
    safeControl = 0.0 - (1.2 * a + 0.4 * t);
    output = decision(t, a, safeControl);
    /*** SafeFlow Annotation assert(safe(output)) ***/
    sendControl(output);
    k = k + 1;
  }
  return 0;
}
|}
  in
  Fmt.pr "@.=== after the paper's fix (local feedback copy) ===@.@.";
  let fixed = Safeflow.Driver.analyze fixed_src in
  Fmt.pr "%a@." Safeflow.Report.pp fixed.Safeflow.Driver.report;
  let errs = Safeflow.Report.errors fixed.Safeflow.Driver.report in
  Fmt.pr "@.fixed controller: %d error dependencies (expected 0)@." (List.length errs)
