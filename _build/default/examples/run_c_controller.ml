(* Hardware-in-the-loop (simulated): execute the actual C core controller
   (systems/ip_controller.c) on the IR interpreter, closed-loop against
   the OCaml pendulum plant, with an OCaml "non-core" complex controller
   writing into the interpreter's shared-memory segment.

   This demonstrates that the analyzed artifact is the running artifact:
   the same MiniC source that SafeFlow checks balances the simulated
   pendulum, and the kill-pid attack that SafeFlow flags statically
   actually brings the core down at run time. *)

open Simplex

let find path =
  let candidates = [ path; "../" ^ path; "../../" ^ path; "../../../" ^ path ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith ("cannot find " ^ path)

(* shared-memory layout of ip_controller.c (LP64, same Ty.sizeof rules the
   analysis uses):
     Feedback      at   0: track 0, angle 8, track_vel 16, angle_vel 24, seq 32, ts 40
     NCControl     at  48: control 48, seq 56, valid 64
     NCStatus      at  72: heartbeat 72, mode 80, request 84, gain_scale 88
     WatchdogInfo  at  96: nc_pid 96, enable 100, restart 104 *)

type world = {
  plant : Plant.t;
  complex : Controller.t;
  mutable x : Linalg.vec;
  mutable shm : Ssair.Interp.ptr option;
  mutable control_steps : int;
  mutable outputs : float list;
  mutable nc_heartbeat : int64;
  mutable core_killed : bool;
  mutable crashed : bool;
  mutable rejected_hint : int;
  attack_at : int option;  (** control step at which the pid attack begins *)
  max_control_steps : int;
}

exception Done of string

let core_pid = 1000L

let run_system ~attack_at ~steps () =
  let file = find "systems/ip_controller.c" in
  let a = Safeflow.Driver.analyze_file file in
  let ir = a.Safeflow.Driver.prepared.Safeflow.Driver.ir in
  let env = ir.Ssair.Ir.env in
  let plant = Plant.inverted_pendulum () in
  let w =
    {
      plant;
      complex = Controller.complex plant;
      x = [| 0.05; 0.0; 0.03; 0.0 |];
      shm = None;
      control_steps = 0;
      outputs = [];
      nc_heartbeat = 0L;
      core_killed = false;
      crashed = false;
      rejected_hint = 0;
      attack_at;
      max_control_steps = steps;
    }
  in
  let fget st off =
    match w.shm with
    | Some p ->
      (match Ssair.Interp.load_scalar st env Minic.Ty.Double { p with poff = off } with
      | Ssair.Interp.VFloat f -> f
      | _ -> 0.0)
    | None -> 0.0
  in
  let fput st off v =
    match w.shm with
    | Some p ->
      Ssair.Interp.store_scalar st env Minic.Ty.Double { p with poff = off }
        (Ssair.Interp.VFloat v)
    | None -> ()
  in
  let lput st off v =
    match w.shm with
    | Some p ->
      Ssair.Interp.store_scalar st env Minic.Ty.Long { p with poff = off }
        (Ssair.Interp.VInt v)
    | None -> ()
  in
  let iput st off v =
    match w.shm with
    | Some p ->
      Ssair.Interp.store_scalar st env Minic.Ty.Int { p with poff = off }
        (Ssair.Interp.VInt v)
    | None -> ()
  in
  let lget st off =
    match w.shm with
    | Some p -> (
      match Ssair.Interp.load_scalar st env Minic.Ty.Long { p with poff = off } with
      | Ssair.Interp.VInt n -> n
      | _ -> 0L)
    | None -> 0L
  in
  (* the simulated non-core period: read the published feedback, publish a
     complex control output, bump the heartbeat, optionally attack *)
  let noncore_period st =
    let fb =
      [| fget st 0; fget st 16; fget st 8; fget st 24 |]
      (* [track, track_vel, angle, angle_vel] -> plant order [x, x', th, th'] *)
    in
    let u = Controller.output w.complex fb in
    fput st 48 u;
    lput st 56 (lget st 32);
    iput st 64 1L;
    let attacking =
      match w.attack_at with Some k -> w.control_steps >= k | None -> false
    in
    if not attacking then begin
      w.nc_heartbeat <- Int64.add w.nc_heartbeat 1L;
      lput st 72 w.nc_heartbeat;
      iput st 96 4242L;
      iput st 100 1L
    end
    else begin
      (* the attack: stall the heartbeat and point the watchdog at the
         core's own pid *)
      iput st 96 core_pid;
      iput st 100 1L
    end
  in
  let handler st name args =
    match (name, args) with
    | "shmget", _ -> Ssair.Interp.VInt 7L
    | "shmat", _ ->
      let p = Ssair.Interp.alloc_block st "ip-shm" 256 in
      w.shm <- Some p;
      Ssair.Interp.VPtr p
    | "readTrackSensor", _ -> Ssair.Interp.VFloat w.x.(0)
    | "readAngleSensor", _ -> Ssair.Interp.VFloat w.x.(2)
    | "readMotorCurrent", _ -> Ssair.Interp.VFloat 0.0
    | "sendControl", [ v ] ->
      let u = match v with Ssair.Interp.VFloat f -> f | Ssair.Interp.VInt n -> Int64.to_float n | _ -> 0.0 in
      w.outputs <- u :: w.outputs;
      w.control_steps <- w.control_steps + 1;
      w.x <- Plant.step w.plant w.x ~u ~w:(Array.make 4 0.0);
      if Plant.crashed w.plant w.x then begin
        w.crashed <- true;
        raise (Done "plant crashed")
      end;
      if w.control_steps >= w.max_control_steps then raise (Done "step budget reached");
      Ssair.Interp.VInt 0L
    | "wait_period", _ ->
      noncore_period st;
      Ssair.Interp.VInt 0L
    | "kill", [ Ssair.Interp.VInt pid; _ ] ->
      if Int64.equal pid core_pid then begin
        w.core_killed <- true;
        raise (Done "core killed itself")
      end;
      Ssair.Interp.VInt 0L
    | "current_time", _ ->
      Ssair.Interp.VInt (Int64.of_int (w.control_steps * 10000))
    | "spawn_noncore", _ -> Ssair.Interp.VInt 4242L
    | "getpid", _ -> Ssair.Interp.VInt core_pid
    | ("Lock" | "Unlock" | "log_event" | "InitCheck"), _ -> Ssair.Interp.VInt 0L
    | _ -> Ssair.Interp.VInt 0L
  in
  let stop_reason =
    try
      ignore (Ssair.Interp.run ~extern_handler:handler ~max_steps:200_000_000 ir);
      "main returned"
    with
    | Done r -> r
    | Ssair.Interp.Trap m -> "trap: " ^ m
  in
  (w, stop_reason)

let () =
  Fmt.pr "=== Running the C core controller under the IR interpreter ===@.@.";
  Fmt.pr "Plant: OCaml inverted-pendulum model; non-core controller: OCaml LQR@.";
  Fmt.pr "writing into the interpreter's shared-memory segment.@.@.";

  let w, reason = run_system ~attack_at:None ~steps:2000 () in
  Fmt.pr "--- nominal run ---@.";
  Fmt.pr "  stop reason:       %s@." reason;
  Fmt.pr "  control steps:     %d@." w.control_steps;
  Fmt.pr "  crashed:           %b@." w.crashed;
  Fmt.pr "  final state:       [%a]@." Fmt.(array ~sep:(any "; ") (fmt "%+.4f")) w.x;
  let maxu = List.fold_left (fun m u -> Float.max m (Float.abs u)) 0.0 w.outputs in
  Fmt.pr "  max |output|:      %.3f V@." maxu;

  Fmt.pr "@.--- kill-pid attack (the error SafeFlow reports statically) ---@.";
  let w2, reason2 = run_system ~attack_at:(Some 500) ~steps:5000 () in
  Fmt.pr "  stop reason:       %s@." reason2;
  Fmt.pr "  control steps:     %d@." w2.control_steps;
  Fmt.pr "  core killed:       %b@." w2.core_killed;
  Fmt.pr "@.The unmonitored wdInfo->nc_pid read that SafeFlow flags as an error@.";
  Fmt.pr "dependency is precisely what lets the non-core bring the core down.@."
