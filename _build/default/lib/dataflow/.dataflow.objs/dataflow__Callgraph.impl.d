lib/dataflow/callgraph.ml: Hashtbl List Minic Option Scc String
