lib/dataflow/callgraph.mli: Hashtbl Minic Scc
