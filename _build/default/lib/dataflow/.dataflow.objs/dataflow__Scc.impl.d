lib/dataflow/scc.ml: Array Hashtbl List Stack
