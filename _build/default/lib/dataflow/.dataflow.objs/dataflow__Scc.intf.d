lib/dataflow/scc.mli:
