lib/dataflow/worklist.ml: Hashtbl List Queue
