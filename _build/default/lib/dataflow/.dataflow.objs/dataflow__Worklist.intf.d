lib/dataflow/worklist.mli:
