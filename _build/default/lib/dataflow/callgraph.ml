(** Call graph over a typed MiniC program: direct-call edges between
    defined functions, with SCC condensation and the bottom-up / top-down
    traversal orders used by the interprocedural phases (paper §3.3). *)

type t = {
  defined : (string, Minic.Tast.tfunc) Hashtbl.t;
  callees : (string, string list) Hashtbl.t;  (** defined callees only *)
  callers : (string, string list) Hashtbl.t;
  all_callees : (string, string list) Hashtbl.t;  (** including externs *)
  scc : string Scc.t;
  names : string list;
}

let calls_in_func (f : Minic.Tast.tfunc) : string list =
  Minic.Tast.fold_texpr_stmts
    (fun acc e ->
      match e.Minic.Tast.tdesc with Minic.Tast.Tcall (g, _) -> g :: acc | _ -> acc)
    [] f.tf_body
  |> List.sort_uniq String.compare

let build (prog : Minic.Tast.program) : t =
  let defined = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace defined f.Minic.Tast.tf_name f) prog.p_funcs;
  let callees = Hashtbl.create 32 in
  let all_callees = Hashtbl.create 32 in
  let callers = Hashtbl.create 32 in
  let names = List.map (fun f -> f.Minic.Tast.tf_name) prog.p_funcs in
  List.iter (fun n -> Hashtbl.replace callers n []) names;
  List.iter
    (fun f ->
      let name = f.Minic.Tast.tf_name in
      let cs = calls_in_func f in
      Hashtbl.replace all_callees name cs;
      let defined_cs = List.filter (Hashtbl.mem defined) cs in
      Hashtbl.replace callees name defined_cs;
      List.iter
        (fun c ->
          let old = Option.value ~default:[] (Hashtbl.find_opt callers c) in
          Hashtbl.replace callers c (name :: old))
        defined_cs)
    prog.p_funcs;
  let succs n = Option.value ~default:[] (Hashtbl.find_opt callees n) in
  let scc = Scc.compute names succs in
  { defined; callees; callers; all_callees; scc; names }

let callees_of t n = Option.value ~default:[] (Hashtbl.find_opt t.callees n)
let callers_of t n = Option.value ~default:[] (Hashtbl.find_opt t.callers n)
let all_callees_of t n = Option.value ~default:[] (Hashtbl.find_opt t.all_callees n)

(** SCCs from the leaves of the call graph up to [main] (callees before
    callers). *)
let bottom_up t = Scc.reverse_topological t.scc

(** SCCs from [main] down to the leaves (callers before callees). *)
let top_down t = Scc.topological t.scc

(** Is [callee] reachable from [caller] through defined functions? *)
let reachable t ~from target =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if String.equal n target then true
    else if Hashtbl.mem seen n then false
    else begin
      Hashtbl.replace seen n ();
      List.exists go (callees_of t n)
    end
  in
  go from

(** All defined functions reachable from [root], [root] included. *)
let reachable_set t root =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      List.iter go (callees_of t n)
    end
  in
  go root;
  seen
