(** Call graph over a typed MiniC program: direct-call edges between
    defined functions, SCC condensation, and the bottom-up / top-down
    orders used by the interprocedural phases (paper §3.3). *)

type t = {
  defined : (string, Minic.Tast.tfunc) Hashtbl.t;
  callees : (string, string list) Hashtbl.t;      (** defined callees only *)
  callers : (string, string list) Hashtbl.t;
  all_callees : (string, string list) Hashtbl.t;  (** including externs *)
  scc : string Scc.t;
  names : string list;
}

val calls_in_func : Minic.Tast.tfunc -> string list
(** callee names appearing in a function body (deduplicated) *)

val build : Minic.Tast.program -> t

val callees_of : t -> string -> string list

val callers_of : t -> string -> string list

val all_callees_of : t -> string -> string list

val bottom_up : t -> string list list
(** SCCs from the leaves up to [main] (callees before callers) *)

val top_down : t -> string list list

val reachable : t -> from:string -> string -> bool

val reachable_set : t -> string -> (string, unit) Hashtbl.t
(** all defined functions reachable from a root (root included) *)
