(** Tarjan's strongly-connected-components algorithm over an arbitrary
    hashable node type, plus condensation utilities.

    Used for call-graph SCC condensation (paper §3.3: shared-memory
    pointer facts are propagated bottom-up and top-down over the SCCs of
    the call graph). *)

type 'a t = {
  components : 'a list array;  (** SCCs in reverse topological order *)
  index_of : 'a -> int;        (** node → index of its component *)
}

(** [compute nodes succs] computes the SCCs of the directed graph whose
    vertices are [nodes] (duplicates allowed) and edges [succs].
    [components] come out in *reverse* topological order: if there is an
    edge u→v with u,v in different components, v's component appears
    before u's. *)
let compute (type a) (nodes : a list) (succs : a -> a list) : a t =
  let module H = Hashtbl in
  let index : (a, int) H.t = H.create 64 in
  let lowlink : (a, int) H.t = H.create 64 in
  let on_stack : (a, unit) H.t = H.create 64 in
  let stack : a Stack.t = Stack.create () in
  let counter = ref 0 in
  let comps = ref [] in
  let comp_of : (a, int) H.t = H.create 64 in
  let ncomps = ref 0 in
  (* explicit work stack to avoid OCaml stack overflow on deep graphs *)
  let rec strongconnect v =
    H.replace index v !counter;
    H.replace lowlink v !counter;
    incr counter;
    Stack.push v stack;
    H.replace on_stack v ();
    List.iter
      (fun w ->
        if not (H.mem index w) then begin
          strongconnect w;
          H.replace lowlink v (min (H.find lowlink v) (H.find lowlink w))
        end
        else if H.mem on_stack w then
          H.replace lowlink v (min (H.find lowlink v) (H.find index w)))
      (succs v);
    if H.find lowlink v = H.find index v then begin
      let comp = ref [] in
      let continue = ref true in
      while !continue do
        let w = Stack.pop stack in
        H.remove on_stack w;
        H.replace comp_of w !ncomps;
        comp := w :: !comp;
        if w == v || w = v then continue := false
      done;
      comps := !comp :: !comps;
      incr ncomps
    end
  in
  List.iter (fun v -> if not (H.mem index v) then strongconnect v) nodes;
  let components = Array.of_list (List.rev !comps) in
  { components; index_of = (fun v -> H.find comp_of v) }

(** Topological order of components (sources first): the reverse of the
    array order. *)
let topological t = Array.to_list t.components |> List.rev

(** Reverse topological order (sinks first) — the natural bottom-up
    processing order for call graphs rooted at [main]. *)
let reverse_topological t = Array.to_list t.components

(** Is node [v] part of a non-trivial cycle (an SCC of size > 1, or a
    self-loop)? *)
let in_cycle t succs v =
  match t.components.(t.index_of v) with
  | [ _ ] -> List.exists (fun w -> w = v) (succs v)
  | _ -> true
