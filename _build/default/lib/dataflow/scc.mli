(** Tarjan's strongly-connected components over an arbitrary node type,
    with the traversal orders used by the interprocedural phases. *)

type 'a t = {
  components : 'a list array;  (** SCCs in reverse topological order *)
  index_of : 'a -> int;        (** node → index into [components] *)
}

val compute : 'a list -> ('a -> 'a list) -> 'a t
(** [compute nodes succs] — components come out in reverse topological
    order: for an inter-component edge u→v, v's component precedes u's. *)

val topological : 'a t -> 'a list list
(** sources first (top-down processing order) *)

val reverse_topological : 'a t -> 'a list list
(** sinks first (bottom-up processing order) *)

val in_cycle : 'a t -> ('a -> 'a list) -> 'a -> bool
(** is the node part of a non-trivial SCC or a self-loop? *)
