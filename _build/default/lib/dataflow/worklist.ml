(** Generic worklist fixpoint solver for forward dataflow problems over an
    integer-indexed flow graph (CFG basic blocks, call-graph components...).

    The client supplies the lattice operations; the solver iterates until
    the block-output map stabilizes.  Termination is the client's
    responsibility (finite-height lattice or widening inside [transfer]). *)

type 'fact problem = {
  entry : int;                          (** entry node id *)
  nodes : int list;                     (** all node ids *)
  succs : int -> int list;
  preds : int -> int list;
  init : 'fact;                         (** fact at entry input *)
  bottom : 'fact;                       (** initial out-fact of every node *)
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : int -> 'fact -> 'fact;     (** node id, in-fact → out-fact *)
}

type 'fact solution = {
  in_fact : int -> 'fact;
  out_fact : int -> 'fact;
  iterations : int;  (** number of transfer applications, for benchmarks *)
}

let solve (p : 'fact problem) : 'fact solution =
  let out = Hashtbl.create 64 in
  let inf = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace out n p.bottom) p.nodes;
  let work = Queue.create () in
  let queued = Hashtbl.create 64 in
  let enqueue n =
    if not (Hashtbl.mem queued n) then begin
      Hashtbl.replace queued n ();
      Queue.add n work
    end
  in
  List.iter enqueue p.nodes;
  let iterations = ref 0 in
  while not (Queue.is_empty work) do
    let n = Queue.pop work in
    Hashtbl.remove queued n;
    let in_f =
      let pred_facts = List.map (fun m -> Hashtbl.find out m) (p.preds n) in
      let base = if n = p.entry then p.init else p.bottom in
      List.fold_left p.join base pred_facts
    in
    Hashtbl.replace inf n in_f;
    incr iterations;
    let out_f = p.transfer n in_f in
    let old = Hashtbl.find out n in
    if not (p.equal old out_f) then begin
      Hashtbl.replace out n out_f;
      List.iter enqueue (p.succs n)
    end
  done;
  {
    in_fact =
      (fun n ->
        match Hashtbl.find_opt inf n with Some f -> f | None -> p.bottom);
    out_fact =
      (fun n ->
        match Hashtbl.find_opt out n with Some f -> f | None -> p.bottom);
    iterations = !iterations;
  }
