(** Generic worklist fixpoint solver for forward dataflow problems over an
    integer-indexed flow graph.  Termination is the client's concern
    (finite-height lattice or widening inside [transfer]). *)

type 'fact problem = {
  entry : int;
  nodes : int list;
  succs : int -> int list;
  preds : int -> int list;
  init : 'fact;    (** fact entering the entry node *)
  bottom : 'fact;  (** initial out-fact of every node *)
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : int -> 'fact -> 'fact;
}

type 'fact solution = {
  in_fact : int -> 'fact;
  out_fact : int -> 'fact;
  iterations : int;  (** transfer applications (benchmarking) *)
}

val solve : 'fact problem -> 'fact solution
