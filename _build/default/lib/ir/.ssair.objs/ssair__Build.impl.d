lib/ir/build.ml: Annot Ast Fmt Hashtbl Ir List Loc Minic Option Tast Ty
