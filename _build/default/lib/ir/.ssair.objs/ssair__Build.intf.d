lib/ir/build.mli: Hashtbl Ir Minic
