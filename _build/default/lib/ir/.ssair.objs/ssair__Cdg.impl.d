lib/ir/cdg.ml: Dom Hashtbl Ir List Option
