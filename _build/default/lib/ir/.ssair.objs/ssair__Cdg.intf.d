lib/ir/cdg.mli: Hashtbl Ir
