lib/ir/dom.ml: Hashtbl Ir List Option
