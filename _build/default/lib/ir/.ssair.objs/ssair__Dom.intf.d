lib/ir/dom.mli: Hashtbl Ir
