lib/ir/interp.ml: Ast Bytes Char Fmt Hashtbl Int32 Int64 Ir List Minic String Tast Ty
