lib/ir/ir.ml: Annot Ast Fmt Hashtbl List Loc Minic Option String Tast Ty
