lib/ir/mem2reg.ml: Dom Hashtbl Ir List Minic Option Queue Ty
