lib/ir/mem2reg.mli: Ir
