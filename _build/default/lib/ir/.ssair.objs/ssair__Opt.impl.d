lib/ir/opt.ml: Ast Hashtbl Int64 Ir List Minic Option Ty
