lib/ir/opt.mli: Ir
