lib/ir/verify.ml: Dom Dump Fmt Hashtbl Ir List Option
