(** Lowering from the typed AST to the IR.

    Strategy (classic "alloca everything, then promote"): every local and
    parameter receives a stack slot; expressions evaluate to values and
    lvalues to addresses; short-circuit operators and the ternary operator
    lower to control flow through a temporary slot.  {!Mem2reg} then
    rewrites promotable slots into SSA registers. *)

open Minic

type builder = {
  env : Ty.env;
  mutable next_id : int;
  mutable next_bid : int;
  blocks : (Ir.bid, Ir.block) Hashtbl.t;
  mutable cur : Ir.bid;
  mutable sealed : bool;  (** current block already has a terminator *)
  slots : (string, Ir.vid) Hashtbl.t;  (** unique local name → alloca id *)
  mutable break_targets : Ir.bid list;
  mutable continue_targets : Ir.bid list;
  globals : (string, Ty.t) Hashtbl.t;
}

let fresh_id b =
  let id = b.next_id in
  b.next_id <- id + 1;
  id

let new_block b =
  let bid = b.next_bid in
  b.next_bid <- bid + 1;
  Hashtbl.replace b.blocks bid
    { Ir.bbid = bid; phis = []; instrs = []; termin = Ir.Unreachable };
  bid

let cur_block b = Hashtbl.find b.blocks b.cur

let switch_to b bid =
  b.cur <- bid;
  b.sealed <- false

(** Append an instruction to the current block, returning its result id. *)
let emit ?(loc = Loc.dummy) b ity idesc =
  let iid = fresh_id b in
  let i = { Ir.iid; idesc; ity; iloc = loc } in
  if not b.sealed then begin
    let blk = cur_block b in
    blk.instrs <- blk.instrs @ [ i ]
  end;
  iid

let emit_v ?loc b ity idesc = Ir.Vreg (emit ?loc b ity idesc)

let terminate b term =
  if not b.sealed then begin
    (cur_block b).termin <- term;
    b.sealed <- true
  end

(* -- Types of values ----------------------------------------------------- *)

let bool_of v b ty loc =
  (* normalize a scalar to 0/1 int by comparing against zero *)
  let zero =
    match Ty.resolve b.env ty with
    | Ty.Float | Ty.Double -> Ir.Vfloat (0.0, ty)
    | Ty.Ptr _ -> Ir.Vint (0L, Ty.Long)
    | _ -> Ir.Vint (0L, ty)
  in
  emit_v ~loc b Ty.Int (Ir.Binop { op = Ast.Ne; bty = Ty.Int; lhs = v; rhs = zero })

(* -- Expression lowering -------------------------------------------------- *)

(** Lower an lvalue expression to its address (a value of pointer type). *)
let rec lower_addr b (e : Tast.texpr) : Ir.value =
  let loc = e.tloc in
  match e.tdesc with
  | Tast.Tlocal x -> Ir.Vreg (Hashtbl.find b.slots x)
  | Tast.Tglobal g -> Ir.Vglobal g
  | Tast.Tderef p -> lower_value b p
  | Tast.Tindex (base, idx) ->
    let idx_v = lower_value b idx in
    let elem_ty = e.tty in
    let base_v =
      match Ty.resolve b.env base.tty with
      | Ty.Array _ -> lower_addr b base
      | _ -> lower_value b base
    in
    emit_v ~loc b (Ty.Ptr elem_ty) (Ir.Gep { base = base_v; kind = Ir.Gindex elem_ty; idx = idx_v })
  | Tast.Tfield (s, fname) ->
    let sname =
      match Ty.resolve b.env s.tty with
      | Ty.Struct n -> n
      | t -> Loc.error loc "field access on %a" Ty.pp t
    in
    let base_v = lower_addr b s in
    emit_v ~loc b (Ty.Ptr e.tty)
      (Ir.Gep { base = base_v; kind = Ir.Gfield (sname, fname); idx = Ir.Vint (0L, Ty.Int) })
  | _ -> Loc.error loc "not an lvalue"

(** Lower an expression to a value. *)
and lower_value b (e : Tast.texpr) : Ir.value =
  let loc = e.tloc in
  match e.tdesc with
  | Tast.Tint n -> Ir.Vint (n, e.tty)
  | Tast.Tfloat x -> Ir.Vfloat (x, e.tty)
  | Tast.Tstr s -> Ir.Vstr s
  | Tast.Tlocal _ | Tast.Tglobal _ | Tast.Tderef _ | Tast.Tindex _ | Tast.Tfield _ ->
    let addr = lower_addr b e in
    emit_v ~loc b e.tty (Ir.Load { ptr = addr; lty = e.tty })
  | Tast.Taddr lv -> lower_addr b lv
  | Tast.Tdecay arr ->
    let addr = lower_addr b arr in
    let elem_ty = match e.tty with Ty.Ptr t -> t | _ -> Ty.Void in
    emit_v ~loc b e.tty
      (Ir.Gep { base = addr; kind = Ir.Gindex elem_ty; idx = Ir.Vint (0L, Ty.Int) })
  | Tast.Tunop (op, a) ->
    let v = lower_value b a in
    emit_v ~loc b e.tty (Ir.Unop { uop = op; uty = e.tty; operand = v })
  | Tast.Tbinop (Ast.Land, a, bexp) -> lower_shortcircuit b ~is_and:true a bexp loc
  | Tast.Tbinop (Ast.Lor, a, bexp) -> lower_shortcircuit b ~is_and:false a bexp loc
  | Tast.Tbinop (op, a, bexp) -> (
    let va = lower_value b a in
    let vb = lower_value b bexp in
    (* pointer arithmetic becomes gep *)
    match (op, Ty.resolve b.env a.tty, Ty.resolve b.env bexp.tty) with
    | Ast.Add, Ty.Ptr elt, ti when Ty.is_integer ti ->
      emit_v ~loc b e.tty (Ir.Gep { base = va; kind = Ir.Gindex elt; idx = vb })
    | Ast.Sub, Ty.Ptr elt, ti when Ty.is_integer ti ->
      let neg = emit_v ~loc b ti (Ir.Unop { uop = Ast.Neg; uty = ti; operand = vb }) in
      emit_v ~loc b e.tty (Ir.Gep { base = va; kind = Ir.Gindex elt; idx = neg })
    | _ -> emit_v ~loc b e.tty (Ir.Binop { op; bty = e.tty; lhs = va; rhs = vb }))
  | Tast.Tassign (lhs, rhs) ->
    let v = lower_value b rhs in
    let addr = lower_addr b lhs in
    ignore (emit ~loc b Ty.Void (Ir.Store { ptr = addr; sval = v; sty = lhs.tty }));
    v
  | Tast.Tcall (fn, args) ->
    let vs = List.map (lower_value b) args in
    emit_v ~loc b e.tty (Ir.Call { callee = fn; args = vs; rty = e.tty })
  | Tast.Tcast (ty, a) ->
    let v = lower_value b a in
    emit_v ~loc b ty (Ir.Cast { from_ty = a.tty; to_ty = ty; cval = v })
  | Tast.Tcond (c, x, y) ->
    (* ternary through a temporary slot; mem2reg turns it into a phi *)
    let slot = emit ~loc b (Ty.Ptr e.tty) (Ir.Alloca { aname = "$cond"; aty = e.tty }) in
    Hashtbl.replace b.slots (Fmt.str "$cond%d" slot) slot;
    let cv = lower_value b c in
    let cb = bool_of cv b c.tty loc in
    let then_b = new_block b in
    let else_b = new_block b in
    let join_b = new_block b in
    terminate b (Ir.Cbr (cb, then_b, else_b));
    switch_to b then_b;
    let vx = lower_value b x in
    ignore (emit ~loc b Ty.Void (Ir.Store { ptr = Ir.Vreg slot; sval = vx; sty = e.tty }));
    terminate b (Ir.Br join_b);
    switch_to b else_b;
    let vy = lower_value b y in
    ignore (emit ~loc b Ty.Void (Ir.Store { ptr = Ir.Vreg slot; sval = vy; sty = e.tty }));
    terminate b (Ir.Br join_b);
    switch_to b join_b;
    emit_v ~loc b e.tty (Ir.Load { ptr = Ir.Vreg slot; lty = e.tty })

and lower_shortcircuit b ~is_and lhs rhs loc =
  let slot = emit ~loc b (Ty.Ptr Ty.Int) (Ir.Alloca { aname = "$sc"; aty = Ty.Int }) in
  Hashtbl.replace b.slots (Fmt.str "$sc%d" slot) slot;
  let va = lower_value b lhs in
  let ba = bool_of va b lhs.Tast.tty loc in
  ignore (emit ~loc b Ty.Void (Ir.Store { ptr = Ir.Vreg slot; sval = ba; sty = Ty.Int }));
  let rhs_b = new_block b in
  let join_b = new_block b in
  if is_and then terminate b (Ir.Cbr (ba, rhs_b, join_b))
  else terminate b (Ir.Cbr (ba, join_b, rhs_b));
  switch_to b rhs_b;
  let vb = lower_value b rhs in
  let bb = bool_of vb b rhs.Tast.tty loc in
  ignore (emit ~loc b Ty.Void (Ir.Store { ptr = Ir.Vreg slot; sval = bb; sty = Ty.Int }));
  terminate b (Ir.Br join_b);
  switch_to b join_b;
  emit_v ~loc b Ty.Int (Ir.Load { ptr = Ir.Vreg slot; lty = Ty.Int })

(* -- Statement lowering ---------------------------------------------------- *)

let rec lower_stmts b stmts = List.iter (lower_stmt b) stmts

and lower_stmt b (s : Tast.tstmt) =
  let loc = s.tsloc in
  match s.tsdesc with
  | Tast.TSexpr e -> ignore (lower_value b e)
  | Tast.TSdecl (_, _, None) -> ()
  | Tast.TSdecl (x, ty, Some init) ->
    let v = lower_value b init in
    let slot = Hashtbl.find b.slots x in
    ignore (emit ~loc b Ty.Void (Ir.Store { ptr = Ir.Vreg slot; sval = v; sty = ty }))
  | Tast.TSif (c, t, e) ->
    let cv = lower_value b c in
    let cb = bool_of cv b c.Tast.tty loc in
    let then_b = new_block b in
    let else_b = new_block b in
    let join_b = new_block b in
    terminate b (Ir.Cbr (cb, then_b, else_b));
    switch_to b then_b;
    lower_stmts b t;
    terminate b (Ir.Br join_b);
    switch_to b else_b;
    lower_stmts b e;
    terminate b (Ir.Br join_b);
    switch_to b join_b
  | Tast.TSwhile (c, body) ->
    let head = new_block b in
    let body_b = new_block b in
    let exit_b = new_block b in
    terminate b (Ir.Br head);
    switch_to b head;
    let cv = lower_value b c in
    let cb = bool_of cv b c.Tast.tty loc in
    terminate b (Ir.Cbr (cb, body_b, exit_b));
    b.break_targets <- exit_b :: b.break_targets;
    b.continue_targets <- head :: b.continue_targets;
    switch_to b body_b;
    lower_stmts b body;
    terminate b (Ir.Br head);
    b.break_targets <- List.tl b.break_targets;
    b.continue_targets <- List.tl b.continue_targets;
    switch_to b exit_b
  | Tast.TSdo (body, c) ->
    let body_b = new_block b in
    let cond_b = new_block b in
    let exit_b = new_block b in
    terminate b (Ir.Br body_b);
    b.break_targets <- exit_b :: b.break_targets;
    b.continue_targets <- cond_b :: b.continue_targets;
    switch_to b body_b;
    lower_stmts b body;
    terminate b (Ir.Br cond_b);
    switch_to b cond_b;
    let cv = lower_value b c in
    let cb = bool_of cv b c.Tast.tty loc in
    terminate b (Ir.Cbr (cb, body_b, exit_b));
    b.break_targets <- List.tl b.break_targets;
    b.continue_targets <- List.tl b.continue_targets;
    switch_to b exit_b
  | Tast.TSfor (init, cond, step, body) ->
    Option.iter (lower_stmt b) init;
    let head = new_block b in
    let body_b = new_block b in
    let step_b = new_block b in
    let exit_b = new_block b in
    terminate b (Ir.Br head);
    switch_to b head;
    (match cond with
    | Some c ->
      let cv = lower_value b c in
      let cb = bool_of cv b c.Tast.tty loc in
      terminate b (Ir.Cbr (cb, body_b, exit_b))
    | None -> terminate b (Ir.Br body_b));
    b.break_targets <- exit_b :: b.break_targets;
    b.continue_targets <- step_b :: b.continue_targets;
    switch_to b body_b;
    lower_stmts b body;
    terminate b (Ir.Br step_b);
    switch_to b step_b;
    Option.iter (lower_stmt b) step;
    terminate b (Ir.Br head);
    b.break_targets <- List.tl b.break_targets;
    b.continue_targets <- List.tl b.continue_targets;
    switch_to b exit_b
  | Tast.TSswitch (e, cases) ->
    let v = lower_value b e in
    let exit_b = new_block b in
    (* one block per case; fallthrough chains to the next case block *)
    let case_blocks = List.map (fun c -> (c, new_block b)) cases in
    let default_bid =
      match List.find_opt (fun (c, _) -> c.Tast.tcval = None) case_blocks with
      | Some (_, bid) -> bid
      | None -> exit_b
    in
    let table =
      List.filter_map
        (fun (c, bid) -> Option.map (fun v -> (v, bid)) c.Tast.tcval)
        case_blocks
    in
    terminate b (Ir.Switch (v, table, default_bid));
    b.break_targets <- exit_b :: b.break_targets;
    let rec emit_cases = function
      | [] -> ()
      | (c, bid) :: rest ->
        switch_to b bid;
        lower_stmts b c.Tast.tcbody;
        let next = match rest with (_, nb) :: _ -> nb | [] -> exit_b in
        terminate b (Ir.Br next);
        emit_cases rest
    in
    emit_cases case_blocks;
    b.break_targets <- List.tl b.break_targets;
    switch_to b exit_b
  | Tast.TSreturn None -> terminate b (Ir.Ret None)
  | Tast.TSreturn (Some e) ->
    let v = lower_value b e in
    terminate b (Ir.Ret (Some v))
  | Tast.TSbreak -> (
    match b.break_targets with
    | t :: _ -> terminate b (Ir.Br t)
    | [] -> Loc.error loc "break outside loop")
  | Tast.TScontinue -> (
    match b.continue_targets with
    | t :: _ -> terminate b (Ir.Br t)
    | [] -> Loc.error loc "continue outside loop")
  | Tast.TSblock body -> lower_stmts b body
  | Tast.TSannot clauses ->
    List.iter
      (fun c ->
        (* assert(safe(x)) reads x here so the taint analysis sees the
           value live at this program point *)
        let aval =
          match c with
          | Annot.Assert_safe x -> (
            match Hashtbl.find_opt b.slots x with
            | Some slot ->
              (* the variable's current value: a load that mem2reg will
                 rewrite into the reaching SSA definition *)
              let ty =
                match
                  List.find_map
                    (fun blk ->
                      List.find_map
                        (fun ins ->
                          match ins.Ir.idesc with
                          | Ir.Alloca { aty; _ } when ins.Ir.iid = slot -> Some aty
                          | _ -> None)
                        blk.Ir.instrs)
                    (Hashtbl.fold (fun _ blk acc -> blk :: acc) b.blocks [])
                with
                | Some t -> t
                | None -> Ty.Double
              in
              Some (emit_v ~loc b ty (Ir.Load { ptr = Ir.Vreg slot; lty = ty }))
            | None -> None)
          | _ -> None
        in
        ignore (emit ~loc b Ty.Void (Ir.Annotation { clause = c; aval })))
      clauses

(* -- Functions and programs ------------------------------------------------ *)

(** Remove blocks not reachable from the entry (created by code after
    returns, breaks, etc.). *)
let prune_unreachable (f : Ir.func) =
  let reachable = Ir.reverse_postorder f in
  let keep = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace keep bid ()) reachable;
  f.blocks <- List.filter (fun b -> Hashtbl.mem keep b.Ir.bbid) f.blocks

let lower_func env globals (tf : Tast.tfunc) : Ir.func =
  let b =
    {
      env;
      next_id = 0;
      next_bid = 0;
      blocks = Hashtbl.create 16;
      cur = 0;
      sealed = false;
      slots = Hashtbl.create 16;
      break_targets = [];
      continue_targets = [];
      globals;
    }
  in
  let entry = new_block b in
  switch_to b entry;
  (* parameter and local slots *)
  List.iter
    (fun (name, ty) ->
      let slot = emit b (Ty.Ptr ty) (Ir.Alloca { aname = name; aty = ty }) in
      Hashtbl.replace b.slots name slot;
      ignore (emit b Ty.Void (Ir.Store { ptr = Ir.Vreg slot; sval = Ir.Vparam name; sty = ty })))
    tf.tf_params;
  List.iter
    (fun (name, ty) ->
      let slot = emit b (Ty.Ptr ty) (Ir.Alloca { aname = name; aty = ty }) in
      Hashtbl.replace b.slots name slot)
    tf.tf_locals;
  (* function-level annotations become pseudo-instructions at entry *)
  List.iter
    (fun c -> ignore (emit b Ty.Void (Ir.Annotation { clause = c; aval = None })))
    tf.tf_annot;
  lower_stmts b tf.tf_body;
  (* implicit return *)
  (match tf.tf_ret with
  | Ty.Void -> terminate b (Ir.Ret None)
  | ty -> terminate b (Ir.Ret (Some (Ir.Vundef ty))));
  let blocks =
    Hashtbl.fold (fun _ blk acc -> blk :: acc) b.blocks []
    |> List.sort (fun x y -> compare x.Ir.bbid y.Ir.bbid)
  in
  let f =
    {
      Ir.fname = tf.tf_name;
      fret = tf.tf_ret;
      fparams = tf.tf_params;
      blocks;
      fentry = entry;
      fannot = tf.tf_annot;
      floc = tf.tf_loc;
    }
  in
  prune_unreachable f;
  f

(** Lower a typed program to IR (pre-SSA: locals still in memory). *)
let lower (prog : Tast.program) : Ir.program =
  let globals_tbl = Hashtbl.create 32 in
  List.iter
    (fun g -> Hashtbl.replace globals_tbl g.Tast.tg_name g.Tast.tg_ty)
    prog.p_globals;
  {
    Ir.env = prog.p_env;
    globals =
      List.map (fun g -> (g.Tast.tg_name, g.Tast.tg_ty, g.Tast.tg_init)) prog.p_globals;
    externs = prog.p_externs;
    funcs = List.map (lower_func prog.p_env globals_tbl) prog.p_funcs;
  }
