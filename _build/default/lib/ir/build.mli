(** Lowering from the typed AST to the (pre-SSA) IR: every local and
    parameter receives a stack slot; short-circuit and ternary operators
    lower to control flow; SafeFlow annotations become
    pseudo-instructions.  Run {!Mem2reg} afterwards for SSA form. *)

val lower_func :
  Minic.Ty.env -> (string, Minic.Ty.t) Hashtbl.t -> Minic.Tast.tfunc -> Ir.func

val lower : Minic.Tast.program -> Ir.program
