(** Control-dependence graph (Ferrante–Ottenstein–Warren).

    Block B is control-dependent on block A iff A has successors S1, S2
    such that B post-dominates S1 but not A.  Computed from the
    post-dominator tree: for each CFG edge A→S where S does not
    post-dominate A, every node on the post-dominator-tree path from S up
    to (but excluding) ipostdom(A) is control-dependent on A.

    Used by SafeFlow phase 3 to detect critical data that is control-
    dependent on unmonitored non-core values (§3.4.1). *)

type t = {
  deps : (Ir.bid, Ir.bid list) Hashtbl.t;
      (** block → blocks it is control-dependent on *)
  controls : (Ir.bid, Ir.bid list) Hashtbl.t;
      (** block → blocks control-dependent on it *)
}

let compute (f : Ir.func) : t =
  let pdt = Dom.compute_post f in
  let deps = Hashtbl.create 16 in
  let controls = Hashtbl.create 16 in
  let add b a =
    let old = Option.value ~default:[] (Hashtbl.find_opt deps b) in
    if not (List.mem a old) then begin
      Hashtbl.replace deps b (a :: old);
      let oldc = Option.value ~default:[] (Hashtbl.find_opt controls a) in
      Hashtbl.replace controls a (b :: oldc)
    end
  in
  List.iter
    (fun blk ->
      let a = blk.Ir.bbid in
      List.iter
        (fun s ->
          (* walk the post-dominator tree from s up to ipostdom(a) *)
          let stop = Hashtbl.find_opt pdt.Dom.idom a in
          let rec walk n =
            if Some n <> stop && n <> Dom.virtual_exit then begin
              add n a;
              match Hashtbl.find_opt pdt.Dom.idom n with
              | Some p when p <> n -> walk p
              | _ -> ()
            end
          in
          (* only if s does not post-dominate a, which the walk encodes:
             if s post-dominates a then s = ipostdom(a) or above, and the
             walk stops immediately or never starts *)
          walk s)
        (Ir.successors f blk))
    f.blocks;
  { deps; controls }

(** Blocks that [b] is control-dependent on. *)
let deps_of t b = Option.value ~default:[] (Hashtbl.find_opt t.deps b)

(** Transitive closure of control dependence for [b] (not including [b]
    unless it controls itself through a loop). *)
let transitive_deps t b =
  let seen = Hashtbl.create 16 in
  let rec go n =
    List.iter
      (fun a ->
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.replace seen a ();
          go a
        end)
      (deps_of t n)
  in
  go b;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []
