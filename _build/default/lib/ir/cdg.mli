(** Control-dependence graph (Ferrante–Ottenstein–Warren), computed from
    the post-dominator tree.  Used by phase 3 to detect critical data
    that is control-dependent on unmonitored non-core values. *)

type t = {
  deps : (Ir.bid, Ir.bid list) Hashtbl.t;      (** block → its controllers *)
  controls : (Ir.bid, Ir.bid list) Hashtbl.t;  (** block → blocks it controls *)
}

val compute : Ir.func -> t

val deps_of : t -> Ir.bid -> Ir.bid list

val transitive_deps : t -> Ir.bid -> Ir.bid list
