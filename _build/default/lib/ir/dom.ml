(** Dominator tree (Cooper–Harvey–Kennedy iterative algorithm), dominance
    frontiers (Cytron et al.), and post-dominators for control-dependence
    computation. *)

type tree = {
  idom : (Ir.bid, Ir.bid) Hashtbl.t;      (** immediate dominator; entry maps to itself *)
  children : (Ir.bid, Ir.bid list) Hashtbl.t;
  order : Ir.bid list;                    (** reverse postorder used for the computation *)
  root : Ir.bid;
}

(** Generic CHK dominator computation over an arbitrary rooted graph. *)
let compute_generic ~(root : Ir.bid) ~(nodes : Ir.bid list)
    ~(preds : Ir.bid -> Ir.bid list) ~(succs : Ir.bid -> Ir.bid list) : tree =
  (* reverse postorder from root *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter dfs (succs n);
      order := n :: !order
    end
  in
  dfs root;
  let rpo = !order in
  ignore nodes;
  let rpo_num = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace rpo_num n i) rpo;
  let idom : (Ir.bid, Ir.bid) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace idom root root;
  let intersect b1 b2 =
    let rec go f1 f2 =
      if f1 = f2 then f1
      else if Hashtbl.find rpo_num f1 > Hashtbl.find rpo_num f2 then
        go (Hashtbl.find idom f1) f2
      else go f1 (Hashtbl.find idom f2)
    in
    go b1 b2
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if n <> root then begin
          let processed_preds =
            List.filter (fun p -> Hashtbl.mem idom p && Hashtbl.mem rpo_num p) (preds n)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if Hashtbl.find_opt idom n <> Some new_idom then begin
              Hashtbl.replace idom n new_idom;
              changed := true
            end
        end)
      rpo
  done;
  let children = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace children n []) rpo;
  List.iter
    (fun n ->
      if n <> root then
        match Hashtbl.find_opt idom n with
        | Some p ->
          let old = Option.value ~default:[] (Hashtbl.find_opt children p) in
          Hashtbl.replace children p (n :: old)
        | None -> ())
    rpo;
  { idom; children; order = rpo; root }

(** Dominator tree of [f]'s CFG. *)
let compute (f : Ir.func) : tree =
  let preds_tbl = Ir.predecessors f in
  let preds n = Option.value ~default:[] (Hashtbl.find_opt preds_tbl n) in
  let succs n = match Ir.block_opt f n with Some b -> Ir.successors f b | None -> [] in
  compute_generic ~root:f.fentry ~nodes:(List.map (fun b -> b.Ir.bbid) f.blocks) ~preds ~succs

let idom t n = if n = t.root then None else Hashtbl.find_opt t.idom n

let children t n = Option.value ~default:[] (Hashtbl.find_opt t.children n)

(** Does [a] dominate [b] (reflexively)? *)
let dominates t a b =
  let rec go n = if n = a then true else if n = t.root then false else go (Hashtbl.find t.idom n) in
  if not (Hashtbl.mem t.idom b) then false else go b

(** Dominance frontiers per Cytron et al. *)
let frontiers (f : Ir.func) (t : tree) : (Ir.bid, Ir.bid list) Hashtbl.t =
  let df = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace df b.Ir.bbid []) f.blocks;
  let preds_tbl = Ir.predecessors f in
  List.iter
    (fun b ->
      let n = b.Ir.bbid in
      let preds = Option.value ~default:[] (Hashtbl.find_opt preds_tbl n) in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            if Hashtbl.mem t.idom p || p = t.root then begin
              let runner = ref p in
              let idom_n = Hashtbl.find t.idom n in
              while !runner <> idom_n do
                let old = Option.value ~default:[] (Hashtbl.find_opt df !runner) in
                if not (List.mem n old) then Hashtbl.replace df !runner (n :: old);
                runner := Hashtbl.find t.idom !runner
              done
            end)
          preds)
    f.blocks;
  df

(* -- Post-dominators ------------------------------------------------------ *)

(** Post-dominator tree: dominators of the reversed CFG, rooted at a
    virtual exit node that all [Ret]/[Unreachable] blocks flow into.
    The virtual exit has id [-1]. *)
let virtual_exit : Ir.bid = -1

let compute_post (f : Ir.func) : tree =
  let preds_tbl = Ir.predecessors f in
  let exits =
    List.filter_map
      (fun b ->
        match b.Ir.termin with
        | Ir.Ret _ | Ir.Unreachable -> Some b.Ir.bbid
        | _ -> None)
      f.blocks
  in
  (* infinite loops (e.g. the periodic "while(1)" control loop) have no
     path to a return; promote representatives of such regions to exits so
     every block is post-dominated by the virtual exit *)
  let exits =
    let reaches_exit = Hashtbl.create 16 in
    let rec mark n =
      if not (Hashtbl.mem reaches_exit n) then begin
        Hashtbl.replace reaches_exit n ();
        List.iter mark (Option.value ~default:[] (Hashtbl.find_opt preds_tbl n))
      end
    in
    List.iter mark exits;
    let extra = ref [] in
    let rec close () =
      let stuck =
        List.filter
          (fun b -> not (Hashtbl.mem reaches_exit b.Ir.bbid))
          f.blocks
      in
      match stuck with
      | [] -> ()
      | b :: _ ->
        extra := b.Ir.bbid :: !extra;
        mark b.Ir.bbid;
        close ()
    in
    close ();
    exits @ !extra
  in
  (* reversed edges: succs in reverse graph = CFG preds (+ virtual exit) *)
  let rsuccs n =
    if n = virtual_exit then exits
    else Option.value ~default:[] (Hashtbl.find_opt preds_tbl n)
  in
  let rpreds n =
    if n = virtual_exit then []
    else
      let cfg_succs =
        match Ir.block_opt f n with Some b -> Ir.successors f b | None -> []
      in
      if List.mem n exits then virtual_exit :: cfg_succs else cfg_succs
  in
  compute_generic ~root:virtual_exit
    ~nodes:(virtual_exit :: List.map (fun b -> b.Ir.bbid) f.blocks)
    ~preds:rpreds ~succs:rsuccs
