(** Dominator tree (Cooper–Harvey–Kennedy), dominance frontiers (Cytron)
    and post-dominators for control-dependence computation. *)

type tree = {
  idom : (Ir.bid, Ir.bid) Hashtbl.t;  (** immediate dominator; root maps to itself *)
  children : (Ir.bid, Ir.bid list) Hashtbl.t;
  order : Ir.bid list;                (** reverse postorder used internally *)
  root : Ir.bid;
}

val compute_generic :
  root:Ir.bid -> nodes:Ir.bid list -> preds:(Ir.bid -> Ir.bid list) ->
  succs:(Ir.bid -> Ir.bid list) -> tree
(** dominators of an arbitrary rooted graph *)

val compute : Ir.func -> tree
(** dominator tree of a function's CFG *)

val idom : tree -> Ir.bid -> Ir.bid option
(** [None] for the root *)

val children : tree -> Ir.bid -> Ir.bid list

val dominates : tree -> Ir.bid -> Ir.bid -> bool
(** reflexive *)

val frontiers : Ir.func -> tree -> (Ir.bid, Ir.bid list) Hashtbl.t

val virtual_exit : Ir.bid
(** the virtual exit node (-1) used as post-dominator root *)

val compute_post : Ir.func -> tree
(** post-dominators; infinite loops are connected to the virtual exit so
    every block is covered *)
