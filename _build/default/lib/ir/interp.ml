(** Reference interpreter for the IR.

    Serves three purposes:
    - differential testing (lowering and mem2reg must preserve semantics);
    - executing the MiniC subject systems inside the examples, with
      external functions (shared memory, sensors, actuators) provided by
      OCaml callbacks — this is how the C core controllers run against the
      OCaml plant simulator;
    - executing the run-time [InitCheck] the paper inserts during shared
      memory initialization.

    Memory is byte-addressable per allocation block, using the same LP64
    layout as {!Minic.Ty.sizeof}, so struct/array offsets are exercised
    exactly as the static analysis sees them. *)

open Minic

exception Trap of string

let trap fmt = Fmt.kstr (fun m -> raise (Trap m)) fmt

type ptr = { pblk : int; poff : int }

type rtval =
  | VInt of int64   (** all integer widths, sign-extended to 64 bits *)
  | VFloat of float
  | VPtr of ptr
  | VUndef

type memblock = {
  mname : string;
  data : Bytes.t;
}

type state = {
  prog : Ir.program;
  mem : (int, memblock) Hashtbl.t;
  mutable next_blk : int;
  global_addr : (string, ptr) Hashtbl.t;
  string_addr : (string, ptr) Hashtbl.t;
  mutable extern_handler : state -> string -> rtval list -> rtval;
  mutable steps : int;
  max_steps : int;  (** fuel, to bound runaway control loops *)
  mutable next_fid : int;
  mutable hooks : hooks_ref option;
}

and hooks_ref = {
  mutable h_on_enter : state -> frame_ option -> rtval list -> frame_ -> unit;
  mutable h_on_exit : state -> frame_ -> rtval -> unit;
  mutable h_on_instr : state -> frame_ -> Ir.instr -> unit;
  mutable h_on_call : state -> frame_ -> Ir.instr -> unit;
      (** fires before a Call instruction executes (defined or extern) *)
}

and frame_ = {
  fid : int;  (** unique per activation, for instrumentation *)
  func : Ir.func;
  regs : (Ir.vid, rtval) Hashtbl.t;
  params : (string, rtval) Hashtbl.t;
}

let null_ptr = { pblk = 0; poff = 0 }

let alloc_block st name size =
  let id = st.next_blk in
  st.next_blk <- id + 1;
  Hashtbl.replace st.mem id { mname = name; data = Bytes.make (max size 1) '\000' };
  { pblk = id; poff = 0 }

let default_extern _st name _args =
  trap "call to unhandled external function %s" name

let create ?(max_steps = 50_000_000) ?(extern_handler = default_extern)
    (prog : Ir.program) : state =
  let st =
    {
      prog;
      mem = Hashtbl.create 64;
      next_blk = 1;
      global_addr = Hashtbl.create 32;
      string_addr = Hashtbl.create 16;
      extern_handler;
      steps = 0;
      max_steps;
      next_fid = 0;
      hooks = None;
    }
  in
  st

(* -- Typed memory access ------------------------------------------------- *)

let scalar_width env ty =
  match Ty.resolve env ty with
  | Ty.Char -> 1
  | Ty.Int | Ty.Float -> 4
  | Ty.Long | Ty.Double | Ty.Ptr _ -> 8
  | t -> trap "scalar_width of %a" Ty.pp t

(* pointers in memory are encoded as block*2^32 + off + 1 (0 = NULL) *)
let encode_ptr p =
  if p.pblk = 0 && p.poff = 0 then 0L
  else Int64.add (Int64.mul (Int64.of_int p.pblk) 0x1_0000_0000L) (Int64.of_int (p.poff + 1))

let decode_ptr bits =
  if Int64.equal bits 0L then null_ptr
  else
    let blk = Int64.to_int (Int64.div bits 0x1_0000_0000L) in
    let off = Int64.to_int (Int64.rem bits 0x1_0000_0000L) - 1 in
    { pblk = blk; poff = off }

let get_block st p =
  match Hashtbl.find_opt st.mem p.pblk with
  | Some b -> b
  | None -> trap "dangling pointer (block %d)" p.pblk

let check_bounds blk p width =
  if p.poff < 0 || p.poff + width > Bytes.length blk.data then
    trap "out-of-bounds access at %s+%d (size %d, width %d)" blk.mname p.poff
      (Bytes.length blk.data) width

let load_scalar st env ty p : rtval =
  if p.pblk = 0 then trap "null pointer dereference (load)";
  let blk = get_block st p in
  let w = scalar_width env ty in
  check_bounds blk p w;
  match Ty.resolve env ty with
  | Ty.Char ->
    let b = Char.code (Bytes.get blk.data p.poff) in
    let b = if b land 0x80 <> 0 then b - 256 else b in
    VInt (Int64.of_int b)
  | Ty.Int -> VInt (Int64.of_int32 (Bytes.get_int32_le blk.data p.poff))
  | Ty.Long -> VInt (Bytes.get_int64_le blk.data p.poff)
  | Ty.Float -> VFloat (Int32.float_of_bits (Bytes.get_int32_le blk.data p.poff))
  | Ty.Double -> VFloat (Int64.float_of_bits (Bytes.get_int64_le blk.data p.poff))
  | Ty.Ptr _ -> VPtr (decode_ptr (Bytes.get_int64_le blk.data p.poff))
  | t -> trap "load of non-scalar %a" Ty.pp t

let store_scalar st env ty p (v : rtval) =
  if p.pblk = 0 then trap "null pointer dereference (store)";
  let blk = get_block st p in
  let w = scalar_width env ty in
  check_bounds blk p w;
  let as_int = function
    | VInt n -> n
    | VFloat f -> Int64.of_float f
    | VPtr q -> encode_ptr q
    | VUndef -> trap "store of undef"
  in
  let as_float = function
    | VFloat f -> f
    | VInt n -> Int64.to_float n
    | VPtr _ -> trap "pointer stored as float"
    | VUndef -> trap "store of undef"
  in
  match Ty.resolve env ty with
  | Ty.Char -> Bytes.set blk.data p.poff (Char.chr (Int64.to_int (as_int v) land 0xff))
  | Ty.Int -> Bytes.set_int32_le blk.data p.poff (Int64.to_int32 (as_int v))
  | Ty.Long -> Bytes.set_int64_le blk.data p.poff (as_int v)
  | Ty.Float -> Bytes.set_int32_le blk.data p.poff (Int32.bits_of_float (as_float v))
  | Ty.Double -> Bytes.set_int64_le blk.data p.poff (Int64.bits_of_float (as_float v))
  | Ty.Ptr _ ->
    let bits = match v with VPtr q -> encode_ptr q | VInt n -> n | _ -> trap "bad ptr store" in
    Bytes.set_int64_le blk.data p.poff bits
  | t -> trap "store of non-scalar %a" Ty.pp t

(* struct assignment lowers to Load/Store with struct type: memcpy *)
let copy_aggregate st env ty ~src ~dst =
  let n = Ty.sizeof env ty in
  let sblk = get_block st src and dblk = get_block st dst in
  check_bounds sblk src n;
  check_bounds dblk dst n;
  Bytes.blit sblk.data src.poff dblk.data dst.poff n

(* -- Globals and strings -------------------------------------------------- *)

let string_ptr st s =
  match Hashtbl.find_opt st.string_addr s with
  | Some p -> p
  | None ->
    let p = alloc_block st (Fmt.str "str%S" s) (String.length s + 1) in
    let blk = get_block st p in
    Bytes.blit_string s 0 blk.data 0 (String.length s);
    Hashtbl.replace st.string_addr s p;
    p

let global_ptr st name =
  match Hashtbl.find_opt st.global_addr name with
  | Some p -> p
  | None -> trap "unknown global %s" name

(* -- Numeric semantics ----------------------------------------------------- *)

let wrap env ty (v : rtval) : rtval =
  match (Ty.resolve env ty, v) with
  | Ty.Char, VInt n ->
    let b = Int64.to_int (Int64.logand n 0xffL) in
    VInt (Int64.of_int (if b land 0x80 <> 0 then b - 256 else b))
  | Ty.Int, VInt n -> VInt (Int64.of_int32 (Int64.to_int32 n))
  | (Ty.Long | Ty.Ptr _), VInt n -> VInt n
  | Ty.Float, VFloat f -> VFloat (Int32.float_of_bits (Int32.bits_of_float f))
  | Ty.Double, VFloat f -> VFloat f
  | Ty.Float, VInt n -> VFloat (Int32.float_of_bits (Int32.bits_of_float (Int64.to_float n)))
  | Ty.Double, VInt n -> VFloat (Int64.to_float n)
  | (Ty.Char | Ty.Int | Ty.Long), VFloat f -> VInt (Int64.of_float f)
  | _, v -> v

let truthy = function
  | VInt n -> not (Int64.equal n 0L)
  | VFloat f -> f <> 0.0
  | VPtr p -> p.pblk <> 0 || p.poff <> 0
  | VUndef -> trap "branch on undef"

let rec eval_binop env op bty (a : rtval) (b : rtval) : rtval =
  let open Ast in
  let bool b = VInt (if b then 1L else 0L) in
  match (a, b) with
  | VPtr p, VPtr q -> (
    match op with
    | Eq -> bool (p = q)
    | Ne -> bool (p <> q)
    | Lt -> bool (p.pblk = q.pblk && p.poff < q.poff)
    | Le -> bool (p.pblk = q.pblk && p.poff <= q.poff)
    | Gt -> bool (p.pblk = q.pblk && p.poff > q.poff)
    | Ge -> bool (p.pblk = q.pblk && p.poff >= q.poff)
    | Sub -> VInt (Int64.of_int (p.poff - q.poff))
    | _ -> trap "invalid pointer binop")
  | VPtr p, VInt n | VInt n, VPtr p -> (
    match op with
    | Eq -> bool (Int64.equal n 0L && p.pblk = 0)
    | Ne -> bool (not (Int64.equal n 0L && p.pblk = 0))
    | _ -> trap "invalid pointer/int binop")
  | VFloat x, VFloat y -> (
    match op with
    | Add -> VFloat (x +. y)
    | Sub -> VFloat (x -. y)
    | Mul -> VFloat (x *. y)
    | Div -> VFloat (x /. y)
    | Eq -> bool (x = y)
    | Ne -> bool (x <> y)
    | Lt -> bool (x < y)
    | Le -> bool (x <= y)
    | Gt -> bool (x > y)
    | Ge -> bool (x >= y)
    | _ -> trap "invalid float binop")
  | VInt x, VInt y -> (
    let w v = wrap env bty (VInt v) in
    match op with
    | Add -> w (Int64.add x y)
    | Sub -> w (Int64.sub x y)
    | Mul -> w (Int64.mul x y)
    | Div -> if Int64.equal y 0L then trap "division by zero" else w (Int64.div x y)
    | Mod -> if Int64.equal y 0L then trap "modulo by zero" else w (Int64.rem x y)
    | Shl -> w (Int64.shift_left x (Int64.to_int y land 63))
    | Shr -> w (Int64.shift_right x (Int64.to_int y land 63))
    | Band -> w (Int64.logand x y)
    | Bor -> w (Int64.logor x y)
    | Bxor -> w (Int64.logxor x y)
    | Eq -> bool (Int64.equal x y)
    | Ne -> bool (not (Int64.equal x y))
    | Lt -> bool (Int64.compare x y < 0)
    | Le -> bool (Int64.compare x y <= 0)
    | Gt -> bool (Int64.compare x y > 0)
    | Ge -> bool (Int64.compare x y >= 0)
    | Land -> bool (x <> 0L && y <> 0L)
    | Lor -> bool (x <> 0L || y <> 0L)
  )
  | (VFloat _ as x), (VInt _ as y) -> (
    match (wrap env Ty.Double x, wrap env Ty.Double y) with
    | xf, yf -> eval_binop_float env op xf yf)
  | (VInt _ as x), (VFloat _ as y) ->
    eval_binop_float env op (wrap env Ty.Double x) (wrap env Ty.Double y)
  | VUndef, _ | _, VUndef -> trap "binop on undef"
  | _ -> trap "invalid binop operands"

and eval_binop_float env op a b =
  match (a, b) with
  | VFloat _, VFloat _ -> eval_binop env op Ty.Double a b
  | _ -> trap "invalid float binop operands"

let eval_cast env ~from_ty ~to_ty (v : rtval) : rtval =
  match (Ty.resolve env from_ty, Ty.resolve env to_ty, v) with
  | _, Ty.Ptr _, VPtr p -> VPtr p
  | _, Ty.Ptr _, VInt 0L -> VPtr null_ptr
  | _, Ty.Ptr _, VInt bits -> VPtr (decode_ptr bits)
  | Ty.Ptr _, t, VPtr p when Ty.is_integer t -> wrap env t (VInt (encode_ptr p))
  | _, t, v -> wrap env t v

(* -- Execution -------------------------------------------------------------- *)

type frame = frame_

(** Install instrumentation hooks (used by the dynamic taint tracker). *)
let set_hooks st ~on_enter ~on_exit ~on_instr ~on_call =
  st.hooks <-
    Some
      { h_on_enter = on_enter; h_on_exit = on_exit; h_on_instr = on_instr;
        h_on_call = on_call }

let value st frame (v : Ir.value) : rtval =
  match v with
  | Ir.Vreg id -> (
    match Hashtbl.find_opt frame.regs id with
    | Some v -> v
    | None -> trap "read of unset register %%%d in %s" id frame.func.Ir.fname)
  | Ir.Vparam p -> (
    match Hashtbl.find_opt frame.params p with
    | Some v -> v
    | None -> trap "unknown parameter %s" p)
  | Ir.Vint (n, ty) -> wrap st.prog.Ir.env ty (VInt n)
  | Ir.Vfloat (f, _) -> VFloat f
  | Ir.Vglobal g -> VPtr (global_ptr st g)
  | Ir.Vstr s -> VPtr (string_ptr st s)
  | Ir.Vundef _ -> VUndef

let rec call ?caller st fname (args : rtval list) : rtval =
  match Ir.find_func st.prog fname with
  | None -> st.extern_handler st fname args
  | Some f -> exec_func ?caller st f args

and exec_func ?caller st (f : Ir.func) (args : rtval list) : rtval =
  let env = st.prog.Ir.env in
  st.next_fid <- st.next_fid + 1;
  let frame =
    { fid = st.next_fid; func = f; regs = Hashtbl.create 64; params = Hashtbl.create 8 }
  in
  (if List.length args <> List.length f.fparams then
     trap "arity mismatch calling %s" f.fname);
  List.iter2
    (fun (name, ty) v -> Hashtbl.replace frame.params name (wrap env ty v))
    f.fparams args;
  (match st.hooks with
  | Some h -> h.h_on_enter st caller args frame
  | None -> ());
  let rec run_block prev_bid bid : rtval =
    st.steps <- st.steps + 1;
    if st.steps > st.max_steps then trap "out of fuel (%d steps)" st.max_steps;
    let blk = Ir.block f bid in
    (* phis evaluate simultaneously from the incoming edge *)
    let phi_vals =
      List.map
        (fun (p : Ir.phi) ->
          match List.assoc_opt prev_bid p.incoming with
          | Some v -> (p.pid, value st frame v)
          | None -> trap "phi %%%d missing incoming from b%d" p.pid prev_bid)
        blk.phis
    in
    List.iter (fun (pid, v) -> Hashtbl.replace frame.regs pid v) phi_vals;
    List.iter
      (fun i ->
        exec_instr st frame i;
        match st.hooks with Some h -> h.h_on_instr st frame i | None -> ())
      blk.instrs;
    match blk.termin with
    | Ir.Br next -> run_block bid next
    | Ir.Cbr (c, t, e) -> run_block bid (if truthy (value st frame c) then t else e)
    | Ir.Switch (v, cases, d) -> (
      match value st frame v with
      | VInt n -> (
        match List.assoc_opt n cases with
        | Some target -> run_block bid target
        | None -> run_block bid d)
      | _ -> trap "switch on non-integer")
    | Ir.Ret None ->
      (match st.hooks with Some h -> h.h_on_exit st frame VUndef | None -> ());
      VUndef
    | Ir.Ret (Some v) ->
      let r = value st frame v in
      (match st.hooks with Some h -> h.h_on_exit st frame r | None -> ());
      r
    | Ir.Unreachable -> trap "reached unreachable in %s b%d" f.fname bid
  in
  run_block (-1) f.fentry

and exec_instr st frame (i : Ir.instr) : unit =
  let env = st.prog.Ir.env in
  let set v = Hashtbl.replace frame.regs i.Ir.iid v in
  match i.Ir.idesc with
  | Ir.Alloca { aname; aty } -> set (VPtr (alloc_block st aname (Ty.sizeof env aty)))
  | Ir.Load { ptr; lty } -> (
    match value st frame ptr with
    | VPtr p ->
      if Ty.is_scalar (Ty.resolve env lty) then set (load_scalar st env lty p)
      else begin
        (* aggregate load: materialize a temporary block *)
        let tmp = alloc_block st "$agg" (Ty.sizeof env lty) in
        copy_aggregate st env lty ~src:p ~dst:tmp;
        set (VPtr tmp)
      end
    | VUndef -> trap "load through undef pointer"
    | _ -> trap "load through non-pointer")
  | Ir.Store { ptr; sval; sty } -> (
    match value st frame ptr with
    | VPtr p -> (
      match Ty.resolve env sty with
      | (Ty.Struct _ | Ty.Array _) as aggty -> (
        match value st frame sval with
        | VPtr q -> copy_aggregate st env aggty ~src:q ~dst:p
        | _ -> trap "aggregate store of non-pointer value")
      | _ -> store_scalar st env sty p (value st frame sval))
    | VUndef -> trap "store through undef pointer"
    | _ -> trap "store through non-pointer")
  | Ir.Binop { op; bty; lhs; rhs } ->
    set (eval_binop env op bty (value st frame lhs) (value st frame rhs))
  | Ir.Unop { uop; uty; operand } -> (
    let v = value st frame operand in
    match (uop, v) with
    | Ast.Neg, VInt n -> set (wrap env uty (VInt (Int64.neg n)))
    | Ast.Neg, VFloat f -> set (VFloat (-.f))
    | Ast.Lnot, v -> set (VInt (if truthy v then 0L else 1L))
    | Ast.Bnot, VInt n -> set (wrap env uty (VInt (Int64.lognot n)))
    | _ -> trap "invalid unop operand")
  | Ir.Cast { from_ty; to_ty; cval } ->
    set (eval_cast env ~from_ty ~to_ty (value st frame cval))
  | Ir.Gep { base; kind; idx } -> (
    match value st frame base with
    | VPtr p -> (
      match kind with
      | Ir.Gfield (sname, fname) -> (
        match Ty.field_offset env sname fname with
        | Some off -> set (VPtr { p with poff = p.poff + off })
        | None -> trap "unknown field %s.%s" sname fname)
      | Ir.Gindex elt -> (
        match value st frame idx with
        | VInt n ->
          set (VPtr { p with poff = p.poff + (Int64.to_int n * Ty.sizeof env elt) })
        | _ -> trap "non-integer gep index"))
    | VUndef -> trap "gep on undef pointer"
    | _ -> trap "gep on non-pointer")
  | Ir.Call { callee; args; rty } ->
    (match st.hooks with Some h -> h.h_on_call st frame i | None -> ());
    let vs = List.map (value st frame) args in
    let r = call ~caller:frame st callee vs in
    if not (Ty.equal rty Ty.Void) then set (wrap env rty r)
  | Ir.Annotation _ -> ()

(* -- Program setup and entry ------------------------------------------------ *)

(** Allocate global variables and apply their static initializers. *)
let init_globals (st : state) =
  let env = st.prog.Ir.env in
  List.iter
    (fun (name, ty, inits) ->
      let p = alloc_block st name (Ty.sizeof env ty) in
      Hashtbl.replace st.global_addr name p;
      List.iter
        (fun (gi : Tast.ginit_elem) ->
          let cell = { p with poff = p.poff + gi.gi_offset } in
          let v =
            let rec const_val (e : Tast.texpr) : rtval =
              match e.tdesc with
              | Tast.Tint n -> VInt n
              | Tast.Tfloat f -> VFloat f
              | Tast.Tcast (ty, inner) ->
                eval_cast env ~from_ty:inner.tty ~to_ty:ty (const_val inner)
              | Tast.Tunop (Ast.Neg, inner) -> (
                match const_val inner with
                | VInt n -> VInt (Int64.neg n)
                | VFloat f -> VFloat (-.f)
                | v -> v)
              | _ -> trap "non-constant global initializer for %s" name
            in
            const_val gi.gi_value
          in
          store_scalar st env gi.gi_value.tty cell v)
        inits)
    st.prog.Ir.globals

(** Run [main] (or a chosen entry) and return its result. *)
let run ?(entry = "main") ?extern_handler ?max_steps (prog : Ir.program) : rtval =
  let st = create ?max_steps ?extern_handler prog in
  init_globals st;
  call st entry []

(** Run an entry point with explicit arguments on a prepared state. *)
let run_state (st : state) ?(entry = "main") (args : rtval list) : rtval =
  call st entry args
