(** LLVM-flavoured typed intermediate representation.

    The analysis phases of the paper operate on "LLVM byte-code, a typed
    intermediate format in SSA form" (§3.3).  This module provides the
    equivalent substrate: functions are CFGs of basic blocks holding typed
    instructions; after {!Mem2reg} runs, scalar locals are promoted to SSA
    registers with phi nodes.

    Instruction results are identified by integer ids ([iid]); the value
    [Vreg iid] refers to the result of instruction or phi [iid]. *)

open Minic

type vid = int
type bid = int

type value =
  | Vreg of vid                (** result of an instruction or phi *)
  | Vparam of string           (** function parameter (post-mem2reg) *)
  | Vint of int64 * Ty.t
  | Vfloat of float * Ty.t
  | Vglobal of string          (** address of a global *)
  | Vstr of string             (** address of a string literal *)
  | Vundef of Ty.t

type gep_kind =
  | Gfield of string * string  (** struct name, field name *)
  | Gindex of Ty.t             (** element type: base + idx * sizeof(elem) *)

type idesc =
  | Alloca of { aname : string; aty : Ty.t }
      (** stack slot for local [aname]; result type is [Ptr aty] *)
  | Load of { ptr : value; lty : Ty.t }
  | Store of { ptr : value; sval : value; sty : Ty.t }  (** stored type *)
  | Binop of { op : Ast.binop; bty : Ty.t; lhs : value; rhs : value }
  | Unop of { uop : Ast.unop; uty : Ty.t; operand : value }
  | Cast of { from_ty : Ty.t; to_ty : Ty.t; cval : value }
  | Gep of { base : value; kind : gep_kind; idx : value }
      (** address arithmetic; [idx] is [Vint 0] for field geps *)
  | Call of { callee : string; args : value list; rty : Ty.t }
  | Annotation of { clause : Annot.clause; aval : value option }
      (** SafeFlow annotation converted to a pseudo-instruction ("calls to
          external dummy functions" in the paper); [aval] is the value the
          clause talks about at this program point (e.g. the asserted
          local), so the reference survives SSA conversion *)

type instr = {
  iid : vid;
  mutable idesc : idesc;
  ity : Ty.t;         (** result type; [Ty.Void] when no result *)
  iloc : Loc.t;
}

type phi = {
  pid : vid;
  pty : Ty.t;
  mutable incoming : (bid * value) list;
  pname : string;  (** name hint (the promoted local) *)
}

type term =
  | Br of bid
  | Cbr of value * bid * bid
  | Switch of value * (int64 * bid) list * bid  (** cases, default *)
  | Ret of value option
  | Unreachable

type block = {
  bbid : bid;
  mutable phis : phi list;
  mutable instrs : instr list;
  mutable termin : term;
}

type func = {
  fname : string;
  fret : Ty.t;
  fparams : (string * Ty.t) list;
  mutable blocks : block list;  (** entry first; order otherwise arbitrary *)
  fentry : bid;
  fannot : Annot.t;
  floc : Loc.t;
}

type program = {
  env : Ty.env;
  globals : (string * Ty.t * Tast.ginit_elem list) list;
  externs : (string * Ty.t * Ty.t list) list;
  funcs : func list;
}

(* -- Accessors ---------------------------------------------------------- *)

let block f bid = List.find (fun b -> b.bbid = bid) f.blocks

let block_opt f bid = List.find_opt (fun b -> b.bbid = bid) f.blocks

let find_func p name = List.find_opt (fun f -> String.equal f.fname name) p.funcs

let succs_of_term = function
  | Br b -> [ b ]
  | Cbr (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Switch (_, cases, d) -> List.sort_uniq compare (d :: List.map snd cases)
  | Ret _ | Unreachable -> []

let successors _f b = succs_of_term b.termin

let predecessors f =
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.bbid []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let old = Option.value ~default:[] (Hashtbl.find_opt preds s) in
          Hashtbl.replace preds s (b.bbid :: old))
        (successors f b))
    f.blocks;
  preds

(** Reverse postorder of the reachable blocks, entry first. *)
let reverse_postorder f =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs bid =
    if not (Hashtbl.mem visited bid) then begin
      Hashtbl.replace visited bid ();
      (match block_opt f bid with
      | Some b -> List.iter dfs (successors f b)
      | None -> ());
      order := bid :: !order
    end
  in
  dfs f.fentry;
  !order

(** Values read by an instruction. *)
let operands_of_instr i =
  match i.idesc with
  | Alloca _ | Annotation { aval = None; _ } -> []
  | Annotation { aval = Some v; _ } -> [ v ]
  | Load { ptr; _ } -> [ ptr ]
  | Store { ptr; sval; _ } -> [ ptr; sval ]
  | Binop { lhs; rhs; _ } -> [ lhs; rhs ]
  | Unop { operand; _ } -> [ operand ]
  | Cast { cval; _ } -> [ cval ]
  | Gep { base; idx; _ } -> [ base; idx ]
  | Call { args; _ } -> args

let operands_of_term = function
  | Br _ | Ret None | Unreachable -> []
  | Cbr (v, _, _) -> [ v ]
  | Switch (v, _, _) -> [ v ]
  | Ret (Some v) -> [ v ]

(** Does instruction [i] define a value? *)
let defines i = not (Ty.equal i.ity Ty.Void)

(** All instructions of [f], in block order. *)
let all_instrs f = List.concat_map (fun b -> b.instrs) f.blocks

let all_phis f = List.concat_map (fun b -> b.phis) f.blocks

(** Map: vid → defining instruction (or phi) and its block. *)
type def_site = Def_instr of instr * bid | Def_phi of phi * bid

let def_table f =
  let t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter (fun p -> Hashtbl.replace t p.pid (Def_phi (p, b.bbid))) b.phis;
      List.iter
        (fun i -> if defines i then Hashtbl.replace t i.iid (Def_instr (i, b.bbid)))
        b.instrs)
    f.blocks;
  t

(** Use sites of each vid: instructions, phis and terminators reading it. *)
type use_site = Use_instr of instr * bid | Use_phi of phi * bid | Use_term of bid

let use_table f =
  let t : (vid, use_site list) Hashtbl.t = Hashtbl.create 64 in
  let add v site =
    match v with
    | Vreg id ->
      let old = Option.value ~default:[] (Hashtbl.find_opt t id) in
      Hashtbl.replace t id (site :: old)
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun p -> List.iter (fun (_, v) -> add v (Use_phi (p, b.bbid))) p.incoming)
        b.phis;
      List.iter
        (fun i -> List.iter (fun v -> add v (Use_instr (i, b.bbid))) (operands_of_instr i))
        b.instrs;
      List.iter (fun v -> add v (Use_term b.bbid)) (operands_of_term b.termin))
    f.blocks;
  t

(* -- Printer ------------------------------------------------------------ *)

let pp_value ppf = function
  | Vreg id -> Fmt.pf ppf "%%%d" id
  | Vparam p -> Fmt.pf ppf "%%%s" p
  | Vint (n, ty) -> Fmt.pf ppf "%Ld:%a" n Ty.pp ty
  | Vfloat (x, ty) -> Fmt.pf ppf "%g:%a" x Ty.pp ty
  | Vglobal g -> Fmt.pf ppf "@%s" g
  | Vstr s -> Fmt.pf ppf "str%S" s
  | Vundef _ -> Fmt.string ppf "undef"

let pp_idesc ppf = function
  | Alloca { aname; aty } -> Fmt.pf ppf "alloca %a ; %s" Ty.pp aty aname
  | Load { ptr; lty } -> Fmt.pf ppf "load %a, %a" Ty.pp lty pp_value ptr
  | Store { ptr; sval; sty } -> Fmt.pf ppf "store %a %a, %a" Ty.pp sty pp_value sval pp_value ptr
  | Binop { op; lhs; rhs; _ } ->
    Fmt.pf ppf "binop %a %a, %a" Ast.pp_binop op pp_value lhs pp_value rhs
  | Unop { uop; operand; _ } -> Fmt.pf ppf "unop %a %a" Ast.pp_unop uop pp_value operand
  | Cast { from_ty; to_ty; cval } ->
    Fmt.pf ppf "cast %a : %a -> %a" pp_value cval Ty.pp from_ty Ty.pp to_ty
  | Gep { base; kind = Gfield (s, fld); _ } ->
    Fmt.pf ppf "gep %a, %s.%s" pp_value base s fld
  | Gep { base; kind = Gindex ty; idx } ->
    Fmt.pf ppf "gep %a, [%a x %a]" pp_value base pp_value idx Ty.pp ty
  | Call { callee; args; _ } ->
    Fmt.pf ppf "call %s(%a)" callee Fmt.(list ~sep:comma pp_value) args
  | Annotation { clause; aval } ->
    Fmt.pf ppf "annot %a%a" Annot.pp_clause clause
      Fmt.(option (fun ppf v -> Fmt.pf ppf " on %a" pp_value v)) aval

let pp_term ppf = function
  | Br b -> Fmt.pf ppf "br b%d" b
  | Cbr (v, t, e) -> Fmt.pf ppf "cbr %a, b%d, b%d" pp_value v t e
  | Switch (v, cases, d) ->
    Fmt.pf ppf "switch %a [%a] default b%d" pp_value v
      Fmt.(list ~sep:comma (pair ~sep:(any ": b") int64 int))
      cases d
  | Ret None -> Fmt.string ppf "ret void"
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_value v
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_block ppf b =
  Fmt.pf ppf "b%d:@." b.bbid;
  List.iter
    (fun p ->
      Fmt.pf ppf "  %%%d = phi %a [%a] ; %s@." p.pid Ty.pp p.pty
        Fmt.(list ~sep:comma (fun ppf (bid, v) -> Fmt.pf ppf "b%d: %a" bid pp_value v))
        p.incoming p.pname)
    b.phis;
  List.iter
    (fun i ->
      if defines i then Fmt.pf ppf "  %%%d = %a@." i.iid pp_idesc i.idesc
      else Fmt.pf ppf "  %a@." pp_idesc i.idesc)
    b.instrs;
  Fmt.pf ppf "  %a@." pp_term b.termin

let pp_func ppf f =
  Fmt.pf ppf "func %a %s(%a) {@." Ty.pp f.fret f.fname
    Fmt.(list ~sep:comma (fun ppf (n, t) -> Fmt.pf ppf "%a %%%s" Ty.pp t n))
    f.fparams;
  List.iter (pp_block ppf) f.blocks;
  Fmt.pf ppf "}@."

let pp_program ppf p = List.iter (pp_func ppf) p.funcs

let func_to_string f = Fmt.str "%a" pp_func f
