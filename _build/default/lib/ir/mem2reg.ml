(** SSA construction: promotion of scalar stack slots to registers
    (Cytron-style phi insertion over dominance frontiers, followed by
    renaming along the dominator tree).

    A slot is promotable when (a) its element type is scalar and (b) its
    address is used only as the pointer operand of loads and stores —
    address-taken slots (used in geps, casts, calls, or stored as values)
    stay in memory, which is exactly what the later pointer analyses
    expect. *)

open Minic

type slot_info = {
  si_id : Ir.vid;       (* alloca instruction id *)
  si_ty : Ty.t;
  si_name : string;
  mutable def_blocks : Ir.bid list;
}

(** Find promotable allocas in [f]. *)
let promotable_slots (f : Ir.func) : (Ir.vid, slot_info) Hashtbl.t =
  let slots = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.idesc with
          | Ir.Alloca { aname; aty } when Ty.is_scalar aty ->
            Hashtbl.replace slots i.Ir.iid
              { si_id = i.Ir.iid; si_ty = aty; si_name = aname; def_blocks = [] }
          | _ -> ())
        b.Ir.instrs)
    f.blocks;
  (* disqualify address-escaping slots and record def blocks *)
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          let disqualify v =
            match v with Ir.Vreg id -> Hashtbl.remove slots id | _ -> ()
          in
          match i.Ir.idesc with
          | Ir.Load _ -> ()
          | Ir.Store { ptr; sval; _ } -> (
            disqualify sval;
            match ptr with
            | Ir.Vreg id -> (
              match Hashtbl.find_opt slots id with
              | Some si ->
                if not (List.mem b.Ir.bbid si.def_blocks) then
                  si.def_blocks <- b.Ir.bbid :: si.def_blocks
              | None -> ())
            | _ -> ())
          | _ -> List.iter disqualify (Ir.operands_of_instr i))
        b.Ir.instrs;
      List.iter
        (fun v -> match v with Ir.Vreg id -> Hashtbl.remove slots id | _ -> ())
        (Ir.operands_of_term b.Ir.termin);
      List.iter
        (fun (p : Ir.phi) ->
          List.iter
            (fun (_, v) -> match v with Ir.Vreg id -> Hashtbl.remove slots id | _ -> ())
            p.incoming)
        b.Ir.phis)
    f.blocks;
  slots

(** Run promotion on one function.  Returns the number of slots promoted. *)
let run_func (f : Ir.func) : int =
  let slots = promotable_slots f in
  if Hashtbl.length slots = 0 then 0
  else begin
    let tree = Dom.compute f in
    let df = Dom.frontiers f tree in
    (* fresh ids continue after the maximum existing id *)
    let max_id = ref 0 in
    List.iter
      (fun b ->
        List.iter (fun (p : Ir.phi) -> max_id := max !max_id p.pid) b.Ir.phis;
        List.iter (fun i -> max_id := max !max_id i.Ir.iid) b.Ir.instrs)
      f.blocks;
    let fresh () =
      incr max_id;
      !max_id
    in
    (* phi insertion over iterated dominance frontiers *)
    let phi_var : (Ir.vid, Ir.vid) Hashtbl.t = Hashtbl.create 16 in
    (* phi id → slot id *)
    let has_phi : (Ir.bid * Ir.vid, unit) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun slot_id si ->
        let work = Queue.create () in
        List.iter (fun b -> Queue.add b work) si.def_blocks;
        while not (Queue.is_empty work) do
          let b = Queue.pop work in
          let frontier = Option.value ~default:[] (Hashtbl.find_opt df b) in
          List.iter
            (fun fb ->
              if not (Hashtbl.mem has_phi (fb, slot_id)) then begin
                Hashtbl.replace has_phi (fb, slot_id) ();
                let blk = Ir.block f fb in
                let pid = fresh () in
                blk.phis <-
                  { Ir.pid; pty = si.si_ty; incoming = []; pname = si.si_name }
                  :: blk.phis;
                Hashtbl.replace phi_var pid slot_id;
                Queue.add fb work
              end)
            frontier
        done)
      slots;
    (* renaming *)
    let replacement : (Ir.vid, Ir.value) Hashtbl.t = Hashtbl.create 64 in
    let rec subst v =
      match v with
      | Ir.Vreg id -> (
        match Hashtbl.find_opt replacement id with Some v' -> subst v' | None -> v)
      | _ -> v
    in
    let deleted : (Ir.vid, unit) Hashtbl.t = Hashtbl.create 64 in
    let rec rename bid (current : (Ir.vid * Ir.value) list) =
      let blk = Ir.block f bid in
      let current = ref current in
      let set_current slot v = current := (slot, v) :: !current in
      let get_current slot ty =
        match List.assoc_opt slot !current with
        | Some v -> v
        | None -> Ir.Vundef ty
      in
      List.iter
        (fun (p : Ir.phi) ->
          match Hashtbl.find_opt phi_var p.pid with
          | Some slot -> set_current slot (Ir.Vreg p.pid)
          | None -> ())
        blk.phis;
      blk.instrs <-
        List.filter
          (fun i ->
            match i.Ir.idesc with
            | Ir.Load { ptr = Ir.Vreg sid; lty } when Hashtbl.mem slots sid ->
              Hashtbl.replace replacement i.Ir.iid (get_current sid lty);
              Hashtbl.replace deleted i.Ir.iid ();
              false
            | Ir.Store { ptr = Ir.Vreg sid; sval; _ } when Hashtbl.mem slots sid ->
              set_current sid (subst sval);
              Hashtbl.replace deleted i.Ir.iid ();
              false
            | Ir.Alloca _ when Hashtbl.mem slots i.Ir.iid ->
              Hashtbl.replace deleted i.Ir.iid ();
              false
            | _ ->
              (* substitute operands *)
              (i.Ir.idesc <-
                (match i.Ir.idesc with
                | Ir.Alloca _ -> i.Ir.idesc
                | Ir.Annotation { clause; aval } ->
                  Ir.Annotation { clause; aval = Option.map subst aval }
                | Ir.Load { ptr; lty } -> Ir.Load { ptr = subst ptr; lty }
                | Ir.Store { ptr; sval; sty } ->
                  Ir.Store { ptr = subst ptr; sval = subst sval; sty }
                | Ir.Binop bo ->
                  Ir.Binop { bo with lhs = subst bo.lhs; rhs = subst bo.rhs }
                | Ir.Unop u -> Ir.Unop { u with operand = subst u.operand }
                | Ir.Cast c -> Ir.Cast { c with cval = subst c.cval }
                | Ir.Gep g -> Ir.Gep { g with base = subst g.base; idx = subst g.idx }
                | Ir.Call c -> Ir.Call { c with args = List.map subst c.args }));
              true)
          blk.instrs;
      blk.termin <-
        (match blk.termin with
        | Ir.Br b -> Ir.Br b
        | Ir.Cbr (v, t, e) -> Ir.Cbr (subst v, t, e)
        | Ir.Switch (v, cs, d) -> Ir.Switch (subst v, cs, d)
        | Ir.Ret (Some v) -> Ir.Ret (Some (subst v))
        | (Ir.Ret None | Ir.Unreachable) as t -> t);
      (* feed phi operands of successors *)
      List.iter
        (fun succ ->
          match Ir.block_opt f succ with
          | None -> ()
          | Some sblk ->
            List.iter
              (fun (p : Ir.phi) ->
                match Hashtbl.find_opt phi_var p.pid with
                | Some slot ->
                  let v = get_current slot p.pty in
                  p.incoming <- (bid, v) :: p.incoming
                | None -> ())
              sblk.phis)
        (Ir.successors f blk);
      (* recurse over dominator-tree children *)
      List.iter (fun child -> rename child !current) (Dom.children tree bid)
    in
    rename f.fentry [];
    Hashtbl.length slots
  end

(** Promote every function of [p]; returns total slots promoted. *)
let run (p : Ir.program) : int =
  List.fold_left (fun acc f -> acc + run_func f) 0 p.funcs
