(** SSA construction: promotion of scalar stack slots to registers
    (Cytron-style phi insertion over dominance frontiers + renaming along
    the dominator tree).  Address-taken slots stay in memory. *)

val run_func : Ir.func -> int
(** promote one function; returns the number of slots promoted *)

val run : Ir.program -> int
