(** Classic scalar optimizations over the SSA IR: constant folding,
    branch folding, phi simplification, dead-instruction elimination and
    straight-line block merging.

    The passes preserve both execution semantics (checked differentially
    against the interpreter) and the SafeFlow analysis results (warnings
    and dependencies are computed on source locations that survive
    optimization — annotations and their operands are always kept).

    [run] applies the passes to a fixpoint and returns the total number
    of rewrites. *)

open Minic

(* -- constant evaluation ----------------------------------------------------- *)

let is_truthy = function
  | Ir.Vint (n, _) -> Some (not (Int64.equal n 0L))
  | Ir.Vfloat (f, _) -> Some (f <> 0.0)
  | _ -> None

let eval_const_binop op bty (a : Ir.value) (b : Ir.value) : Ir.value option =
  let open Ast in
  let bool v = Some (Ir.Vint ((if v then 1L else 0L), Ty.Int)) in
  match (a, b) with
  | Ir.Vint (x, _), Ir.Vint (y, _) -> (
    let wrap v =
      (* match the interpreter's width semantics *)
      match bty with
      | Ty.Char ->
        let m = Int64.to_int (Int64.logand v 0xffL) in
        Some (Ir.Vint (Int64.of_int (if m land 0x80 <> 0 then m - 256 else m), bty))
      | Ty.Int -> Some (Ir.Vint (Int64.of_int32 (Int64.to_int32 v), bty))
      | _ -> Some (Ir.Vint (v, bty))
    in
    match op with
    | Add -> wrap (Int64.add x y)
    | Sub -> wrap (Int64.sub x y)
    | Mul -> wrap (Int64.mul x y)
    | Div -> if Int64.equal y 0L then None else wrap (Int64.div x y)
    | Mod -> if Int64.equal y 0L then None else wrap (Int64.rem x y)
    | Shl -> wrap (Int64.shift_left x (Int64.to_int y land 63))
    | Shr -> wrap (Int64.shift_right x (Int64.to_int y land 63))
    | Band -> wrap (Int64.logand x y)
    | Bor -> wrap (Int64.logor x y)
    | Bxor -> wrap (Int64.logxor x y)
    | Eq -> bool (Int64.equal x y)
    | Ne -> bool (not (Int64.equal x y))
    | Lt -> bool (Int64.compare x y < 0)
    | Le -> bool (Int64.compare x y <= 0)
    | Gt -> bool (Int64.compare x y > 0)
    | Ge -> bool (Int64.compare x y >= 0)
    | Land -> bool ((not (Int64.equal x 0L)) && not (Int64.equal y 0L))
    | Lor -> bool ((not (Int64.equal x 0L)) || not (Int64.equal y 0L)))
  | Ir.Vfloat (x, _), Ir.Vfloat (y, _) -> (
    (* fold only total float operations; keep arithmetic exact *)
    match op with
    | Eq -> bool (x = y)
    | Ne -> bool (x <> y)
    | Lt -> bool (x < y)
    | Le -> bool (x <= y)
    | Gt -> bool (x > y)
    | Ge -> bool (x >= y)
    | Add -> Some (Ir.Vfloat (x +. y, bty))
    | Sub -> Some (Ir.Vfloat (x -. y, bty))
    | Mul -> Some (Ir.Vfloat (x *. y, bty))
    | _ -> None)
  | _ -> None

let eval_const_unop uop uty (a : Ir.value) : Ir.value option =
  match (uop, a) with
  | Ast.Neg, Ir.Vint (n, _) -> Some (Ir.Vint (Int64.neg n, uty))
  | Ast.Neg, Ir.Vfloat (f, _) -> Some (Ir.Vfloat (-.f, uty))
  | Ast.Lnot, v -> (
    match is_truthy v with
    | Some b -> Some (Ir.Vint ((if b then 0L else 1L), Ty.Int))
    | None -> None)
  | Ast.Bnot, Ir.Vint (n, _) -> Some (Ir.Vint (Int64.lognot n, uty))
  | _ -> None

(* -- passes ------------------------------------------------------------------- *)

(** Fold constant instructions and trivial phis; returns replacement
    count.  Replacements are applied through a substitution map so later
    uses see the folded value. *)
let fold_constants (f : Ir.func) : int =
  let changes = ref 0 in
  let repl : (Ir.vid, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  let rec subst v =
    match v with
    | Ir.Vreg id -> (
      match Hashtbl.find_opt repl id with Some v' -> subst v' | None -> v)
    | _ -> v
  in
  (* pass A: collect foldable definitions without removing anything, so
     uses in earlier blocks (loop phis) can still be rewritten later *)
  let grew = ref true in
  while !grew do
    grew := false;
    let add id v =
      if not (Hashtbl.mem repl id) then begin
        Hashtbl.replace repl id v;
        incr changes;
        grew := true
      end
    in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (p : Ir.phi) ->
            if not (Hashtbl.mem repl p.Ir.pid) then
              match List.map (fun (_, v) -> subst v) p.Ir.incoming with
              | first :: rest
                when List.for_all (fun v -> v = first) rest
                     && (match first with Ir.Vreg id -> id <> p.Ir.pid | _ -> true) ->
                add p.Ir.pid first
              | _ -> ())
          b.Ir.phis;
        List.iter
          (fun (i : Ir.instr) ->
            if Ir.defines i && not (Hashtbl.mem repl i.Ir.iid) then
              match i.Ir.idesc with
              | Ir.Binop { op; bty; lhs; rhs } -> (
                match eval_const_binop op bty (subst lhs) (subst rhs) with
                | Some v -> add i.Ir.iid v
                | None -> ())
              | Ir.Unop { uop; uty; operand } -> (
                match eval_const_unop uop uty (subst operand) with
                | Some v -> add i.Ir.iid v
                | None -> ())
              | Ir.Cast { to_ty; cval; _ } when Ty.is_integer to_ty -> (
                match subst cval with
                | Ir.Vint (n, _) -> add i.Ir.iid (Ir.Vint (n, to_ty))
                | _ -> ())
              | _ -> ())
          b.Ir.instrs)
      f.Ir.blocks
  done;
  (* pass B: rewrite every operand, drop replaced definitions, fold
     terminators *)
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.phis <- List.filter (fun (p : Ir.phi) -> not (Hashtbl.mem repl p.Ir.pid)) b.Ir.phis;
      List.iter
        (fun (p : Ir.phi) ->
          p.Ir.incoming <- List.map (fun (bid, v) -> (bid, subst v)) p.Ir.incoming)
        b.Ir.phis;
      b.Ir.instrs <-
        List.filter
          (fun (i : Ir.instr) ->
            if Ir.defines i && Hashtbl.mem repl i.Ir.iid then false
            else begin
              i.Ir.idesc <-
                (match i.Ir.idesc with
                | Ir.Alloca _ as d -> d
                | Ir.Load { ptr; lty } -> Ir.Load { ptr = subst ptr; lty }
                | Ir.Store { ptr; sval; sty } ->
                  Ir.Store { ptr = subst ptr; sval = subst sval; sty }
                | Ir.Binop bo ->
                  Ir.Binop { bo with lhs = subst bo.lhs; rhs = subst bo.rhs }
                | Ir.Unop u -> Ir.Unop { u with operand = subst u.operand }
                | Ir.Cast c -> Ir.Cast { c with cval = subst c.cval }
                | Ir.Gep g -> Ir.Gep { g with base = subst g.base; idx = subst g.idx }
                | Ir.Call c -> Ir.Call { c with args = List.map subst c.args }
                | Ir.Annotation { clause; aval } ->
                  Ir.Annotation { clause; aval = Option.map subst aval });
              true
            end)
          b.Ir.instrs;
      b.Ir.termin <-
        (match b.Ir.termin with
        | Ir.Br t -> Ir.Br t
        | Ir.Cbr (v, t, e) -> (
          let v = subst v in
          match is_truthy v with
          | Some true ->
            incr changes;
            Ir.Br t
          | Some false ->
            incr changes;
            Ir.Br e
          | None -> Ir.Cbr (v, t, e))
        | Ir.Switch (v, cases, d) -> (
          let v = subst v in
          match v with
          | Ir.Vint (n, _) ->
            incr changes;
            Ir.Br (match List.assoc_opt n cases with Some t -> t | None -> d)
          | _ -> Ir.Switch (v, cases, d))
        | Ir.Ret (Some v) -> Ir.Ret (Some (subst v))
        | (Ir.Ret None | Ir.Unreachable) as t -> t))
    f.Ir.blocks;
  !changes

(** Remove pure instructions whose results are never used. *)
let eliminate_dead (f : Ir.func) : int =
  let uses = Ir.use_table f in
  let changes = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.instrs <-
        List.filter
          (fun (i : Ir.instr) ->
            let pure =
              match i.Ir.idesc with
              | Ir.Binop _ | Ir.Unop _ | Ir.Cast _ | Ir.Gep _ | Ir.Load _ -> true
              | Ir.Alloca _ | Ir.Store _ | Ir.Call _ | Ir.Annotation _ -> false
            in
            if pure && Ir.defines i && not (Hashtbl.mem uses i.Ir.iid) then begin
              incr changes;
              false
            end
            else true)
          b.Ir.instrs)
    f.Ir.blocks;
  !changes

(** Merge a block into its unique predecessor when that predecessor
    branches unconditionally to it (and it has no phis). *)
let merge_blocks (f : Ir.func) : int =
  let changes = ref 0 in
  let continue = ref true in
  while !continue do
    continue := false;
    let preds = Ir.predecessors f in
    let merged =
      List.find_map
        (fun (b : Ir.block) ->
          if b.Ir.bbid = f.Ir.fentry then None
          else
            match Hashtbl.find_opt preds b.Ir.bbid with
            | Some [ p ] when b.Ir.phis = [] -> (
              match Ir.block_opt f p with
              | Some pb when pb.Ir.termin = Ir.Br b.Ir.bbid -> Some (pb, b)
              | _ -> None)
            | _ -> None)
        f.Ir.blocks
    in
    match merged with
    | Some (pb, b) ->
      pb.Ir.instrs <- pb.Ir.instrs @ b.Ir.instrs;
      pb.Ir.termin <- b.Ir.termin;
      (* successors' phis referring to b now come from pb *)
      List.iter
        (fun (s : Ir.block) ->
          List.iter
            (fun (p : Ir.phi) ->
              p.Ir.incoming <-
                List.map
                  (fun (bid, v) -> ((if bid = b.Ir.bbid then pb.Ir.bbid else bid), v))
                  p.Ir.incoming)
            s.Ir.phis)
        f.Ir.blocks;
      f.Ir.blocks <- List.filter (fun x -> x.Ir.bbid <> b.Ir.bbid) f.Ir.blocks;
      incr changes;
      continue := true
    | None -> ()
  done;
  !changes

(** Drop blocks made unreachable by branch folding, fixing up phis. *)
let prune_unreachable (f : Ir.func) : int =
  let reachable = Ir.reverse_postorder f in
  let keep = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace keep bid ()) reachable;
  let removed = List.length f.Ir.blocks - Hashtbl.length keep in
  if removed > 0 then begin
    f.Ir.blocks <- List.filter (fun b -> Hashtbl.mem keep b.Ir.bbid) f.Ir.blocks;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (p : Ir.phi) ->
            p.Ir.incoming <-
              List.filter (fun (bid, _) -> Hashtbl.mem keep bid) p.Ir.incoming)
          b.Ir.phis)
      f.Ir.blocks
  end;
  removed

let run_func (f : Ir.func) : int =
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let n =
      fold_constants f + prune_unreachable f + eliminate_dead f + merge_blocks f
    in
    total := !total + n;
    continue := n > 0
  done;
  !total

(** Optimize every function; returns the total number of rewrites. *)
let run (p : Ir.program) : int =
  List.fold_left (fun acc f -> acc + run_func f) 0 p.Ir.funcs
