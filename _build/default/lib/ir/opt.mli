(** Scalar optimizations over the SSA IR: constant and branch folding,
    trivial-phi elimination, dead-code elimination, block merging and
    unreachable-block pruning — to a fixpoint.  Semantics-preserving
    (checked differentially in the tests) and analysis-stable
    (annotations and their operands always survive). *)

val run_func : Ir.func -> int
(** optimize one function; returns the number of rewrites *)

val run : Ir.program -> int
