(** IR well-formedness verifier, used by tests and as a guard between
    pipeline stages.

    Checked invariants:
    - every block has exactly one terminator and all branch targets exist;
    - instruction/phi ids are unique within a function;
    - every [Vreg] use refers to a defined id;
    - after SSA construction, each use is dominated by its definition and
      each phi has exactly one incoming value per CFG predecessor. *)

type violation = { vfunc : string; vmsg : string }

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.vfunc v.vmsg

let check_func ?(ssa = false) (f : Ir.func) : violation list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun m -> errs := { vfunc = f.fname; vmsg = m } :: !errs) fmt in
  let block_ids = List.map (fun b -> b.Ir.bbid) f.blocks in
  (* unique block ids *)
  if List.length block_ids <> List.length (List.sort_uniq compare block_ids) then
    err "duplicate block ids";
  if not (List.mem f.fentry block_ids) then err "entry block missing";
  (* branch targets exist *)
  List.iter
    (fun b ->
      List.iter
        (fun t -> if not (List.mem t block_ids) then err "b%d: branch to unknown b%d" b.Ir.bbid t)
        (Ir.succs_of_term b.Ir.termin))
    f.blocks;
  (* unique value ids *)
  let def_ids = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun (p : Ir.phi) ->
          if Hashtbl.mem def_ids p.pid then err "duplicate id %%%d" p.pid;
          Hashtbl.replace def_ids p.pid b.Ir.bbid)
        b.Ir.phis;
      List.iter
        (fun i ->
          if Ir.defines i then begin
            if Hashtbl.mem def_ids i.Ir.iid then err "duplicate id %%%d" i.Ir.iid;
            Hashtbl.replace def_ids i.Ir.iid b.Ir.bbid
          end)
        b.Ir.instrs)
    f.blocks;
  (* all uses defined *)
  let check_use where v =
    match v with
    | Ir.Vreg id ->
      if not (Hashtbl.mem def_ids id) then err "%s: use of undefined %%%d" where id
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun (p : Ir.phi) ->
          List.iter (fun (_, v) -> check_use (Fmt.str "phi %%%d" p.pid) v) p.incoming)
        b.Ir.phis;
      List.iter
        (fun i ->
          List.iter (fun v -> check_use (Fmt.str "instr %%%d" i.Ir.iid) v)
            (Ir.operands_of_instr i))
        b.Ir.instrs;
      List.iter (fun v -> check_use (Fmt.str "term of b%d" b.Ir.bbid) v)
        (Ir.operands_of_term b.Ir.termin))
    f.blocks;
  if ssa then begin
    let tree = Dom.compute f in
    let preds_tbl = Ir.predecessors f in
    (* phi arity: one incoming per predecessor *)
    List.iter
      (fun b ->
        let preds =
          Option.value ~default:[] (Hashtbl.find_opt preds_tbl b.Ir.bbid)
          |> List.sort_uniq compare
        in
        List.iter
          (fun (p : Ir.phi) ->
            let inc = List.map fst p.incoming |> List.sort_uniq compare in
            if inc <> preds then
              err "phi %%%d in b%d: incoming %a but preds %a" p.pid b.Ir.bbid
                Fmt.(Dump.list int) inc
                Fmt.(Dump.list int) preds)
          b.Ir.phis)
      f.blocks;
    (* defs dominate uses *)
    let pos_in_block = Hashtbl.create 64 in
    List.iter
      (fun b ->
        List.iteri
          (fun k i -> if Ir.defines i then Hashtbl.replace pos_in_block i.Ir.iid k)
          b.Ir.instrs)
      f.blocks;
    let dominates_use def_id ~use_block ~use_pos =
      match Hashtbl.find_opt def_ids def_id with
      | None -> false
      | Some def_block ->
        if def_block = use_block then begin
          match Hashtbl.find_opt pos_in_block def_id with
          | None -> true (* phi defs precede all instrs in the block *)
          | Some def_pos -> def_pos < use_pos
        end
        else Dom.dominates tree def_block use_block
    in
    List.iter
      (fun b ->
        List.iteri
          (fun k i ->
            List.iter
              (fun v ->
                match v with
                | Ir.Vreg id ->
                  if not (dominates_use id ~use_block:b.Ir.bbid ~use_pos:k) then
                    err "instr %%%d in b%d: operand %%%d does not dominate use" i.Ir.iid
                      b.Ir.bbid id
                | _ -> ())
              (Ir.operands_of_instr i))
          b.Ir.instrs;
        (* phi incoming (bid, v): v must dominate the *end* of bid *)
        List.iter
          (fun (p : Ir.phi) ->
            List.iter
              (fun (inb, v) ->
                match v with
                | Ir.Vreg id ->
                  if
                    not
                      (dominates_use id ~use_block:inb ~use_pos:max_int)
                  then
                    err "phi %%%d: incoming %%%d via b%d does not dominate edge" p.pid id
                      inb
                | _ -> ())
              p.incoming)
          b.Ir.phis)
      f.blocks
  end;
  List.rev !errs

let check_program ?ssa (p : Ir.program) : violation list =
  List.concat_map (check_func ?ssa) p.funcs
