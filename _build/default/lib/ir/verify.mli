(** IR well-formedness verifier: unique ids, existing branch targets,
    defined uses, and (with [~ssa:true]) dominance of uses by definitions
    and phi/predecessor agreement. *)

type violation = { vfunc : string; vmsg : string }

val pp_violation : Format.formatter -> violation -> unit

val check_func : ?ssa:bool -> Ir.func -> violation list

val check_program : ?ssa:bool -> Ir.program -> violation list
