(** Small dense linear-algebra kernel.

    Provides exactly what the Simplex-architecture substrate needs:
    matrix/vector arithmetic, Gaussian-elimination solve and inverse, the
    discrete-time Lyapunov equation (for the stability-envelope monitor)
    and the discrete-time algebraic Riccati equation via fixed-point
    iteration (for LQR safety-controller synthesis). *)

type mat = float array array  (* row major *)
type vec = float array

exception Singular

let mat_make n m v : mat = Array.init n (fun _ -> Array.make m v)

let identity n : mat = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))

let dims (a : mat) = (Array.length a, if Array.length a = 0 then 0 else Array.length a.(0))

let copy (a : mat) : mat = Array.map Array.copy a

let transpose (a : mat) : mat =
  let n, m = dims a in
  Array.init m (fun j -> Array.init n (fun i -> a.(i).(j)))

let add (a : mat) (b : mat) : mat =
  let n, m = dims a in
  Array.init n (fun i -> Array.init m (fun j -> a.(i).(j) +. b.(i).(j)))

let sub (a : mat) (b : mat) : mat =
  let n, m = dims a in
  Array.init n (fun i -> Array.init m (fun j -> a.(i).(j) -. b.(i).(j)))

let scale (k : float) (a : mat) : mat = Array.map (Array.map (fun x -> k *. x)) a

let mul (a : mat) (b : mat) : mat =
  let n, p = dims a in
  let p', m = dims b in
  if p <> p' then invalid_arg "Linalg.mul: dimension mismatch";
  Array.init n (fun i ->
      Array.init m (fun j ->
          let s = ref 0.0 in
          for k = 0 to p - 1 do
            s := !s +. (a.(i).(k) *. b.(k).(j))
          done;
          !s))

let mat_vec (a : mat) (x : vec) : vec =
  let n, m = dims a in
  if m <> Array.length x then invalid_arg "Linalg.mat_vec: dimension mismatch";
  Array.init n (fun i ->
      let s = ref 0.0 in
      for j = 0 to m - 1 do
        s := !s +. (a.(i).(j) *. x.(j))
      done;
      !s)

let vec_add (x : vec) (y : vec) : vec = Array.mapi (fun i xi -> xi +. y.(i)) x
let vec_sub (x : vec) (y : vec) : vec = Array.mapi (fun i xi -> xi -. y.(i)) x
let vec_scale k (x : vec) : vec = Array.map (fun v -> k *. v) x

let dot (x : vec) (y : vec) : float =
  let s = ref 0.0 in
  Array.iteri (fun i xi -> s := !s +. (xi *. y.(i))) x;
  !s

let norm2 x = sqrt (dot x x)

(** xᵀ A x — the quadratic form used by Lyapunov monitors. *)
let quadratic_form (a : mat) (x : vec) : float = dot x (mat_vec a x)

(** Solve A x = b by Gaussian elimination with partial pivoting. *)
let solve (a : mat) (b : vec) : vec =
  let n, m = dims a in
  if n <> m || n <> Array.length b then invalid_arg "Linalg.solve: dimension mismatch";
  let a = copy a in
  let b = Array.copy b in
  for col = 0 to n - 1 do
    (* pivot *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    if Float.abs a.(!pivot).(col) < 1e-12 then raise Singular;
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for r = col + 1 to n - 1 do
      let f = a.(r).(col) /. a.(col).(col) in
      if f <> 0.0 then begin
        for c = col to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  x

(** Matrix inverse via column-wise solves. *)
let inverse (a : mat) : mat =
  let n, _ = dims a in
  let cols =
    Array.init n (fun j ->
        let e = Array.make n 0.0 in
        e.(j) <- 1.0;
        solve a e)
  in
  Array.init n (fun i -> Array.init n (fun j -> cols.(j).(i)))

let max_abs_diff (a : mat) (b : mat) : float =
  let n, m = dims a in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      worst := Float.max !worst (Float.abs (a.(i).(j) -. b.(i).(j)))
    done
  done;
  !worst

(** Discrete-time Lyapunov equation AᵀPA − P + Q = 0, solved by the
    fixed-point iteration P ← Q + AᵀPA (converges for Schur-stable A). *)
let dlyap ?(iters = 10_000) ?(tol = 1e-12) (a : mat) (q : mat) : mat =
  let at = transpose a in
  let rec go p k =
    let p' = add q (mul at (mul p a)) in
    if k >= iters || max_abs_diff p p' < tol then p' else go p' (k + 1)
  in
  go (copy q) 0

(** Discrete-time algebraic Riccati equation
    P = AᵀPA − AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q, by fixed-point iteration.
    Returns [P]. *)
let dare ?(iters = 10_000) ?(tol = 1e-10) (a : mat) (b : mat) (q : mat) (r : mat) : mat =
  let at = transpose a and bt = transpose b in
  let step p =
    let pa = mul p a and pb = mul p b in
    let g = add r (mul bt pb) in
    let k = mul (inverse g) (mul bt pa) in
    (* Q + AᵀPA − AᵀPB·K *)
    add q (sub (mul at pa) (mul at (mul pb k)))
  in
  let rec go p n =
    let p' = step p in
    if n >= iters || max_abs_diff p p' < tol then p' else go p' (n + 1)
  in
  go (copy q) 0

(** LQR gain K = (R + BᵀPB)⁻¹ BᵀPA from a DARE solution [p]:
    u = −Kx is the optimal state feedback. *)
let lqr_gain (a : mat) (b : mat) (p : mat) (r : mat) : mat =
  let bt = transpose b in
  let g = add r (mul bt (mul p b)) in
  mul (inverse g) (mul bt (mul p a))

(** Closed-loop matrix A − BK. *)
let closed_loop (a : mat) (b : mat) (k : mat) : mat = sub a (mul b k)

(** Spectral radius estimate by power iteration on AᵀA (upper bound via
    the 2-norm); adequate for stability checks in tests. *)
let norm_two_estimate ?(iters = 200) (a : mat) : float =
  let n, _ = dims a in
  let x = ref (Array.init n (fun i -> 1.0 /. float_of_int (i + 1))) in
  let ata = mul (transpose a) a in
  for _ = 1 to iters do
    let y = mat_vec ata !x in
    let n2 = norm2 y in
    if n2 > 1e-300 then x := vec_scale (1.0 /. n2) y
  done;
  sqrt (norm2 (mat_vec ata !x) /. Float.max 1e-300 (norm2 !x))

let pp_mat ppf (a : mat) =
  Array.iter
    (fun row ->
      Fmt.pf ppf "[ %a ]@." Fmt.(array ~sep:(any ", ") (fmt "%8.4f")) row)
    a
