(** Small dense linear-algebra kernel for the Simplex-architecture
    substrate: matrix/vector arithmetic, Gaussian-elimination solve and
    inverse, the discrete-time Lyapunov equation (stability-envelope
    monitors) and the discrete-time algebraic Riccati equation (LQR
    synthesis). *)

type mat = float array array  (** row-major *)

type vec = float array

exception Singular
(** raised by {!solve} / {!inverse} on (numerically) singular systems *)

(** {1 Construction} *)

val mat_make : int -> int -> float -> mat
(** [mat_make n m v] — n×m matrix filled with [v]. *)

val identity : int -> mat

val copy : mat -> mat

(** {1 Arithmetic} *)

val dims : mat -> int * int
(** (rows, columns) *)

val transpose : mat -> mat

val add : mat -> mat -> mat

val sub : mat -> mat -> mat

val scale : float -> mat -> mat

val mul : mat -> mat -> mat
(** matrix product; raises [Invalid_argument] on dimension mismatch *)

val mat_vec : mat -> vec -> vec

val vec_add : vec -> vec -> vec

val vec_sub : vec -> vec -> vec

val vec_scale : float -> vec -> vec

val dot : vec -> vec -> float

val norm2 : vec -> float

val quadratic_form : mat -> vec -> float
(** [quadratic_form p x] = xᵀ·P·x — the Lyapunov value used by monitors. *)

(** {1 Solving} *)

val solve : mat -> vec -> vec
(** [solve a b] solves A·x = b by Gaussian elimination with partial
    pivoting.  @raise Singular when no unique solution exists. *)

val inverse : mat -> mat

val max_abs_diff : mat -> mat -> float
(** largest elementwise absolute difference (convergence tests) *)

(** {1 Control-theoretic equations} *)

val dlyap : ?iters:int -> ?tol:float -> mat -> mat -> mat
(** [dlyap a q] solves the discrete Lyapunov equation AᵀPA − P + Q = 0 by
    fixed-point iteration; converges for Schur-stable [a]. *)

val dare : ?iters:int -> ?tol:float -> mat -> mat -> mat -> mat -> mat
(** [dare a b q r] solves the discrete algebraic Riccati equation; the
    result feeds {!lqr_gain}. *)

val lqr_gain : mat -> mat -> mat -> mat -> mat
(** [lqr_gain a b p r] = (R + BᵀPB)⁻¹BᵀPA; u = −K·x is the optimal
    state feedback for the DARE solution [p]. *)

val closed_loop : mat -> mat -> mat -> mat
(** [closed_loop a b k] = A − B·K *)

val norm_two_estimate : ?iters:int -> mat -> float
(** power-iteration estimate of ‖A‖₂ (stability sanity checks) *)

val pp_mat : Format.formatter -> mat -> unit
