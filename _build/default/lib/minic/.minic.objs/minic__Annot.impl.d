lib/minic/annot.ml: Fmt List String Ty
