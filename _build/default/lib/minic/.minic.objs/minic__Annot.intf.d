lib/minic/annot.mli: Format Ty
