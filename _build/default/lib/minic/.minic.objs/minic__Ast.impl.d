lib/minic/ast.ml: Annot Fmt Int64 List Loc Option Ty
