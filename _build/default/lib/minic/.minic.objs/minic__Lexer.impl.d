lib/minic/lexer.ml: Annot Buffer Int64 List Loc Re String Token
