lib/minic/loc.ml: Fmt Int String
