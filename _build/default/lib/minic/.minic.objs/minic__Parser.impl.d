lib/minic/parser.ml: Annot Array Ast Char Fmt Hashtbl Int64 Lexer List Loc Token Ty
