lib/minic/parser.mli: Ast Lexer
