lib/minic/pretty.ml: Annot Ast Float Fmt Ty
