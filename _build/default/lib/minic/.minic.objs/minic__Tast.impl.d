lib/minic/tast.ml: Annot Ast List Loc Option String Ty
