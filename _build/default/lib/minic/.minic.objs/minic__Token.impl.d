lib/minic/token.ml: Fmt Int64
