lib/minic/ty.ml: Fmt Hashtbl List String
