lib/minic/ty.mli: Format Hashtbl
