lib/minic/typecheck.ml: Ast Char Fmt Hashtbl Int64 List Loc Option Tast Ty
