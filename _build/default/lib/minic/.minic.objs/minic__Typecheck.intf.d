lib/minic/typecheck.mli: Ast Tast Ty
