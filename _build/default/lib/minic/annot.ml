(** SafeFlow annotation language (paper §3.1, §3.2.1, §3.4.3).

    Annotations are embedded in C comments opening with the marker
    ["SafeFlow Annotation"].  The lexer carves such comments out of the
    token stream and this module parses their payload.

    Grammar (clauses separated by [;] or juxtaposition):
    {v
      clause ::= assume(core(ptr, aexpr, aexpr))
               | assume(shmvar(ptr, aexpr))
               | assume(noncore(ptr))
               | assert(safe(ident))
               | shminit
    v} *)

(** Arithmetic expressions allowed inside annotations: integer literals,
    [sizeof(type)] and sums/products thereof. *)
type aexpr =
  | Aint of int
  | Asizeof of Ty.t
  | Aadd of aexpr * aexpr
  | Amul of aexpr * aexpr

type clause =
  | Assume_core of { ptr : string; off : aexpr; size : aexpr }
      (** [assume(core(p, off, sz))] — within the annotated (monitoring)
          function, locations [p+off .. p+off+sz) hold core values. *)
  | Assert_safe of string
      (** [assert(safe(x))] — local [x] is critical data; the analysis must
          prove it never depends on unmonitored non-core values. *)
  | Shminit
      (** marks a shared-memory initializing function; restrictions P2/P3
          are suspended inside it. *)
  | Shmvar of { ptr : string; size : aexpr }
      (** post-condition of an initializing function: [ptr] denotes a
          shared-memory region of [size] bytes. *)
  | Noncore of string
      (** the region named by this shm pointer (or the socket descriptor,
          §3.4.3) is writable by non-core components. *)

type t = clause list

let rec eval_aexpr env = function
  | Aint n -> n
  | Asizeof ty -> Ty.sizeof env ty
  | Aadd (a, b) -> eval_aexpr env a + eval_aexpr env b
  | Amul (a, b) -> eval_aexpr env a * eval_aexpr env b

let rec pp_aexpr ppf = function
  | Aint n -> Fmt.int ppf n
  | Asizeof ty -> Fmt.pf ppf "sizeof(%a)" Ty.pp ty
  | Aadd (a, b) -> Fmt.pf ppf "%a + %a" pp_aexpr a pp_aexpr b
  | Amul (a, b) -> Fmt.pf ppf "%a * %a" pp_aexpr a pp_aexpr b

let pp_clause ppf = function
  | Assume_core { ptr; off; size } ->
    Fmt.pf ppf "assume(core(%s, %a, %a))" ptr pp_aexpr off pp_aexpr size
  | Assert_safe x -> Fmt.pf ppf "assert(safe(%s))" x
  | Shminit -> Fmt.string ppf "shminit"
  | Shmvar { ptr; size } -> Fmt.pf ppf "assume(shmvar(%s, %a))" ptr pp_aexpr size
  | Noncore p -> Fmt.pf ppf "assume(noncore(%s))" p

let pp = Fmt.(list ~sep:(any ";@ ") pp_clause)

(* -- Payload parser -------------------------------------------------- *)

exception Parse_error of string

type stream = { text : string; mutable pos : int }

let peek s = if s.pos < String.length s.text then Some s.text.[s.pos] else None

let skip_ws s =
  let continue = ref true in
  while !continue do
    match peek s with
    | Some (' ' | '\t' | '\n' | '\r' | ';') -> s.pos <- s.pos + 1
    | _ -> continue := false
  done

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let read_ident s =
  skip_ws s;
  let start = s.pos in
  let continue = ref true in
  while !continue do
    match peek s with
    | Some c when is_ident_char c -> s.pos <- s.pos + 1
    | _ -> continue := false
  done;
  if s.pos = start then raise (Parse_error (Fmt.str "identifier expected at offset %d" start));
  String.sub s.text start (s.pos - start)

let expect s c =
  skip_ws s;
  match peek s with
  | Some c' when c' = c -> s.pos <- s.pos + 1
  | _ -> raise (Parse_error (Fmt.str "'%c' expected at offset %d" c s.pos))

let read_int s =
  skip_ws s;
  let start = s.pos in
  let continue = ref true in
  while !continue do
    match peek s with
    | Some c when c >= '0' && c <= '9' -> s.pos <- s.pos + 1
    | _ -> continue := false
  done;
  if s.pos = start then raise (Parse_error "integer expected");
  int_of_string (String.sub s.text start (s.pos - start))

(* Base type names usable inside sizeof() in an annotation; struct tags and
   typedef names are represented as [Named] and resolved later. *)
let type_of_name = function
  | "void" -> Ty.Void
  | "char" -> Ty.Char
  | "int" -> Ty.Int
  | "long" -> Ty.Long
  | "float" -> Ty.Float
  | "double" -> Ty.Double
  | name -> Ty.Named name

let rec parse_aexpr s =
  let lhs = parse_atom s in
  skip_ws s;
  match peek s with
  | Some '+' ->
    s.pos <- s.pos + 1;
    Aadd (lhs, parse_aexpr s)
  | _ -> lhs

and parse_atom s =
  skip_ws s;
  match peek s with
  | Some c when c >= '0' && c <= '9' ->
    let n = read_int s in
    parse_mul_tail s (Aint n)
  | _ ->
    let id = read_ident s in
    if String.equal id "sizeof" then begin
      expect s '(';
      let base = read_ident s in
      let ty =
        if String.equal base "struct" then Ty.Struct (read_ident s) else type_of_name base
      in
      (* allow a trailing '*' for pointer types *)
      skip_ws s;
      let ty = match peek s with
        | Some '*' -> s.pos <- s.pos + 1; Ty.Ptr ty
        | _ -> ty
      in
      expect s ')';
      parse_mul_tail s (Asizeof ty)
    end
    else raise (Parse_error (Fmt.str "unexpected identifier %S in annotation expression" id))

and parse_mul_tail s lhs =
  skip_ws s;
  match peek s with
  | Some '*' ->
    s.pos <- s.pos + 1;
    Amul (lhs, parse_atom s)
  | _ -> lhs

let parse_clause s : clause =
  let kw = read_ident s in
  match kw with
  | "shminit" -> Shminit
  | "assume" -> begin
    expect s '(';
    let pred = read_ident s in
    let clause =
      match pred with
      | "core" ->
        expect s '(';
        let ptr = read_ident s in
        expect s ',';
        let off = parse_aexpr s in
        expect s ',';
        let size = parse_aexpr s in
        expect s ')';
        Assume_core { ptr; off; size }
      | "shmvar" ->
        expect s '(';
        let ptr = read_ident s in
        expect s ',';
        let size = parse_aexpr s in
        expect s ')';
        Shmvar { ptr; size }
      | "noncore" ->
        expect s '(';
        let ptr = read_ident s in
        expect s ')';
        Noncore ptr
      | other -> raise (Parse_error (Fmt.str "unknown assume predicate %S" other))
    in
    expect s ')';
    clause
  end
  | "assert" ->
    expect s '(';
    let pred = read_ident s in
    if not (String.equal pred "safe") then
      raise (Parse_error (Fmt.str "unknown assert predicate %S" pred));
    expect s '(';
    let x = read_ident s in
    expect s ')';
    expect s ')';
    Assert_safe x
  | other -> raise (Parse_error (Fmt.str "unknown annotation keyword %S" other))

(** Parse the payload of a SafeFlow annotation comment (marker already
    stripped).  Raises [Parse_error]. *)
let parse_payload text : t =
  let s = { text; pos = 0 } in
  let starts_clause c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let rec go acc =
    skip_ws s;
    match peek s with
    | Some c when starts_clause c -> go (parse_clause s :: acc)
    | _ -> List.rev acc (* trailing comment decoration *)
  in
  go []

(** The marker string that introduces a SafeFlow annotation comment. *)
let marker = "SafeFlow Annotation"
