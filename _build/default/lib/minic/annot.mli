(** The SafeFlow annotation language (paper §3.1, §3.2.1, §3.4.3),
    embedded in C comments opening with {!marker}. *)

(** Arithmetic inside annotations: literals, [sizeof], sums, products. *)
type aexpr =
  | Aint of int
  | Asizeof of Ty.t
  | Aadd of aexpr * aexpr
  | Amul of aexpr * aexpr

type clause =
  | Assume_core of { ptr : string; off : aexpr; size : aexpr }
      (** within the annotated (monitoring) function and its callees,
          [ptr+off .. ptr+off+size) holds core values *)
  | Assert_safe of string
      (** the named local is critical data *)
  | Shminit
      (** marks a shared-memory initializing function *)
  | Shmvar of { ptr : string; size : aexpr }
      (** initializer post-condition: [ptr] names a region of [size] bytes *)
  | Noncore of string
      (** the region (or socket, §3.4.3) is writable by non-core components *)

type t = clause list

val eval_aexpr : Ty.env -> aexpr -> int

val pp_aexpr : Format.formatter -> aexpr -> unit

val pp_clause : Format.formatter -> clause -> unit

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val parse_payload : string -> t
(** parse a comment payload (marker already stripped).
    @raise Parse_error *)

val marker : string
(** ["SafeFlow Annotation"] *)
