(** Abstract syntax for MiniC — the C subset the paper's subject systems
    are written in.

    The subset covers: scalar/pointer/array/struct types, globals with
    constant initializers, functions, the usual statement forms including
    [switch], and expressions with casts, address-of, indexing and field
    access.  Function pointers, [goto] and variadic functions are outside
    the subset (matching the paper's language restrictions). *)

type unop =
  | Neg   (** arithmetic negation *)
  | Lnot  (** logical ! *)
  | Bnot  (** bitwise ~ *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuit && and || *)

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Cint of int64
  | Cfloat of float
  | Cstr of string
  | Cchar of char
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr          (** lhs must be an lvalue *)
  | Call of string * expr list     (** direct calls only *)
  | Deref of expr
  | Addr of expr
  | Index of expr * expr           (** a[i] *)
  | Field of expr * string         (** s.f *)
  | Arrow of expr * string         (** p->f *)
  | Cast of Ty.t * expr
  | Sizeof of Ty.t
  | Cond of expr * expr * expr     (** c ? a : b *)

type init =
  | Iexpr of expr
  | Ilist of init list  (** brace initializer for arrays/structs *)

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sexpr of expr
  | Sdecl of Ty.t * string * init option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr                       (** do ... while (e) *)
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sswitch of expr * case list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sannot of Annot.t  (** statement-level SafeFlow annotation *)

and case = { cval : int64 option (* None = default *); cbody : stmt list; cloc : Loc.t }

type param = { pname : string; pty : Ty.t }

type func = {
  fname : string;
  fret : Ty.t;
  fparams : param list;
  fbody : stmt list;
  fannot : Annot.t;  (** function-level annotations (shminit, assume(core ...)) *)
  floc : Loc.t;
}

type global = {
  gname : string;
  gty : Ty.t;
  ginit : init option;
  gloc : Loc.t;
}

type decl =
  | Dstruct of string * Ty.field list * Loc.t
  | Dtypedef of string * Ty.t * Loc.t
  | Dglobal of global
  | Dfunc of func
  | Dextern of string * Ty.t * Ty.t list * Loc.t  (** extern function declaration *)

type program = decl list

(* -- Convenience constructors (used heavily by tests and Synth) ------- *)

let mk_expr ?(loc = Loc.dummy) edesc = { edesc; eloc = loc }
let mk_stmt ?(loc = Loc.dummy) sdesc = { sdesc; sloc = loc }

let int_e ?loc n = mk_expr ?loc (Cint (Int64.of_int n))
let var_e ?loc x = mk_expr ?loc (Var x)
let call_e ?loc f args = mk_expr ?loc (Call (f, args))

let pp_unop ppf op =
  Fmt.string ppf (match op with Neg -> "-" | Lnot -> "!" | Bnot -> "~")

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    | Shl -> "<<" | Shr -> ">>" | Band -> "&" | Bor -> "|" | Bxor -> "^"
    | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
    | Land -> "&&" | Lor -> "||")

(** Fold over every expression in a statement list (pre-order). *)
let rec fold_expr_stmts f acc stmts = List.fold_left (fold_expr_stmt f) acc stmts

and fold_expr_stmt f acc stmt =
  match stmt.sdesc with
  | Sexpr e -> fold_expr f acc e
  | Sdecl (_, _, Some init) -> fold_expr_init f acc init
  | Sdecl (_, _, None) -> acc
  | Sif (c, t, e) ->
    let acc = fold_expr f acc c in
    let acc = fold_expr_stmts f acc t in
    fold_expr_stmts f acc e
  | Swhile (c, body) -> fold_expr_stmts f (fold_expr f acc c) body
  | Sdo (body, c) -> fold_expr f (fold_expr_stmts f acc body) c
  | Sfor (init, cond, step, body) ->
    let acc = Option.fold ~none:acc ~some:(fold_expr_stmt f acc) init in
    let acc = Option.fold ~none:acc ~some:(fold_expr f acc) cond in
    let acc = Option.fold ~none:acc ~some:(fold_expr_stmt f acc) step in
    fold_expr_stmts f acc body
  | Sswitch (e, cases) ->
    let acc = fold_expr f acc e in
    List.fold_left (fun acc c -> fold_expr_stmts f acc c.cbody) acc cases
  | Sreturn (Some e) -> fold_expr f acc e
  | Sreturn None | Sbreak | Scontinue | Sannot _ -> acc
  | Sblock body -> fold_expr_stmts f acc body

and fold_expr_init f acc = function
  | Iexpr e -> fold_expr f acc e
  | Ilist inits -> List.fold_left (fold_expr_init f) acc inits

and fold_expr f acc e =
  let acc = f acc e in
  match e.edesc with
  | Cint _ | Cfloat _ | Cstr _ | Cchar _ | Var _ | Sizeof _ -> acc
  | Unop (_, a) | Deref a | Addr a | Field (a, _) | Arrow (a, _) | Cast (_, a) ->
    fold_expr f acc a
  | Binop (_, a, b) | Assign (a, b) | Index (a, b) ->
    fold_expr f (fold_expr f acc a) b
  | Call (_, args) -> List.fold_left (fold_expr f) acc args
  | Cond (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b
