(** Hand-written lexer for MiniC.

    Block comments whose body contains the SafeFlow annotation marker are
    not discarded: their payload (marker stripped) is emitted as an
    [ANNOT] token so the parser can attach annotations to functions and
    statements. *)

type lexed = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let make ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let loc_of st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let lex_error st fmt = Loc.error (loc_of st) fmt

(** Consume a block comment (opening "/*" already consumed).  Returns the
    comment body. *)
let read_block_comment st =
  let buf = Buffer.create 64 in
  let rec go () =
    match (peek st, peek2 st) with
    | Some '*', Some '/' ->
      advance st;
      advance st
    | Some c, _ ->
      Buffer.add_char buf c;
      advance st;
      go ()
    | None, _ -> lex_error st "unterminated comment"
  in
  go ();
  Buffer.contents buf

(** Strip the leading annotation marker and decoration asterisks from an
    annotation comment body. *)
let annotation_payload body =
  match Re.exec_opt (Re.compile (Re.str Annot.marker)) body with
  | None -> None
  | Some g ->
    let _, stop = Re.Group.offset g 0 in
    Some (String.sub body stop (String.length body - stop))

let read_escaped st =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> advance st; c
  | None -> lex_error st "unterminated escape"

let read_string st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (read_escaped st);
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
    | None -> lex_error st "unterminated string literal"
  in
  go ();
  Buffer.contents buf

let read_number st =
  let start = st.pos in
  let is_hex =
    match (peek st, peek2 st) with
    | Some '0', Some ('x' | 'X') ->
      advance st;
      advance st;
      true
    | _ -> false
  in
  let digits_ok c = if is_hex then is_hex_digit c else is_digit c in
  while (match peek st with Some c -> digits_ok c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  if not is_hex then begin
    (match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | Some '.', _ ->
      is_float := true;
      advance st
    | _ -> ());
    (match peek st with
    | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | _ -> ())
  end;
  (* trailing suffixes f/F/l/L/u/U — not part of the numeric text *)
  let suffix_start = st.pos in
  let f_suffix = ref false in
  while
    match peek st with
    | Some ('f' | 'F') when not is_hex ->
      f_suffix := true;
      true
    | Some ('l' | 'L' | 'u' | 'U') -> true
    | _ -> false
  do
    advance st
  done;
  let text = String.sub st.src start (suffix_start - start) in
  if !is_float || !f_suffix then Token.FLOATLIT (float_of_string text)
  else Token.INT (Int64.of_string text)

(** Lex the next token.  Skips whitespace, line comments, preprocessor
    lines and plain block comments; annotation comments become tokens. *)
let rec next st : lexed =
  let loc = loc_of st in
  match peek st with
  | None -> { tok = EOF; loc }
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    next st
  | Some '#' ->
    (* preprocessor line: skipped wholesale (systems use #include/#define
       only for constants we inline) *)
    while (match peek st with Some c when c <> '\n' -> true | _ -> false) do
      advance st
    done;
    next st
  | Some '/' -> (
    match peek2 st with
    | Some '/' ->
      while (match peek st with Some c when c <> '\n' -> true | _ -> false) do
        advance st
      done;
      next st
    | Some '*' ->
      advance st;
      advance st;
      let body = read_block_comment st in
      (match annotation_payload body with
      | Some payload -> { tok = ANNOT payload; loc }
      | None -> next st)
    | _ ->
      advance st;
      if peek st = Some '=' then begin advance st; { tok = SLASHEQ; loc } end
      else { tok = SLASH; loc })
  | Some '"' ->
    advance st;
    { tok = STRING (read_string st); loc }
  | Some '\'' ->
    advance st;
    let c =
      match peek st with
      | Some '\\' ->
        advance st;
        read_escaped st
      | Some c ->
        advance st;
        c
      | None -> lex_error st "unterminated char literal"
    in
    (match peek st with
    | Some '\'' -> advance st
    | _ -> lex_error st "unterminated char literal");
    { tok = CHARLIT c; loc }
  | Some c when is_digit c -> { tok = read_number st; loc }
  | Some c when is_ident_start c ->
    let start = st.pos in
    while (match peek st with Some c -> is_ident_char c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    let tok =
      match Token.keyword_of_string text with
      | Some kw -> kw
      | None -> Token.IDENT text
    in
    { tok; loc }
  | Some c ->
    advance st;
    let two expected (tok1 : Token.t) (tok0 : Token.t) =
      if peek st = Some expected then begin
        advance st;
        tok1
      end
      else tok0
    in
    let tok : Token.t =
      match c with
      | '(' -> LPAREN
      | ')' -> RPAREN
      | '{' -> LBRACE
      | '}' -> RBRACE
      | '[' -> LBRACKET
      | ']' -> RBRACKET
      | ';' -> SEMI
      | ',' -> COMMA
      | ':' -> COLON
      | '?' -> QUESTION
      | '.' -> DOT
      | '+' -> (
        match peek st with
        | Some '+' -> advance st; PLUSPLUS
        | Some '=' -> advance st; PLUSEQ
        | _ -> PLUS)
      | '-' -> (
        match peek st with
        | Some '-' -> advance st; MINUSMINUS
        | Some '=' -> advance st; MINUSEQ
        | Some '>' -> advance st; ARROW
        | _ -> MINUS)
      | '*' -> two '=' STAREQ STAR
      | '%' -> two '=' PERCENTEQ PERCENT
      | '~' -> TILDE
      | '!' -> two '=' NEQ BANG
      | '^' -> two '=' CARETEQ CARET
      | '&' -> (
        match peek st with
        | Some '&' -> advance st; ANDAND
        | Some '=' -> advance st; AMPEQ
        | _ -> AMP)
      | '|' -> (
        match peek st with
        | Some '|' -> advance st; OROR
        | Some '=' -> advance st; PIPEEQ
        | _ -> PIPE)
      | '<' -> (
        match peek st with
        | Some '<' ->
          advance st;
          two '=' SHLEQ SHL
        | Some '=' -> advance st; LE
        | _ -> LT)
      | '>' -> (
        match peek st with
        | Some '>' ->
          advance st;
          two '=' SHREQ SHR
        | Some '=' -> advance st; GE
        | _ -> GT)
      | '=' -> two '=' EQEQ ASSIGN
      | c -> Loc.error loc "unexpected character %C" c
    in
    { tok; loc }

(** Lex an entire source buffer. *)
let tokenize ~file src : lexed list =
  let st = make ~file src in
  let rec go acc =
    let lx = next st in
    match lx.tok with EOF -> List.rev (lx :: acc) | _ -> go (lx :: acc)
  in
  go []
