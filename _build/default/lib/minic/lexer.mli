(** Hand-written lexer.  Block comments containing the SafeFlow
    annotation marker are emitted as [ANNOT] tokens; other comments and
    preprocessor lines are skipped. *)

type lexed = { tok : Token.t; loc : Loc.t }

val tokenize : file:string -> string -> lexed list
(** lex a whole buffer (last element is [EOF]).
    @raise Loc.Error on lexical errors *)
