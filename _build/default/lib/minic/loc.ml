(** Source locations and located diagnostics for the MiniC frontend. *)

type t = {
  file : string;  (** originating file name (may be "<string>") *)
  line : int;     (** 1-based line number *)
  col : int;      (** 1-based column number *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string loc = Fmt.str "%a" pp loc

(** A diagnostic raised by any frontend stage. *)
exception Error of t * string

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (loc, msg))) fmt

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0
