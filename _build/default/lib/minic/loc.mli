(** Source locations and located diagnostics for the frontend. *)

type t = { file : string; line : int; col : int }

val dummy : t

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

exception Error of t * string
(** any frontend stage's diagnostic *)

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** @raise Error *)

val compare : t -> t -> int

val equal : t -> t -> bool
