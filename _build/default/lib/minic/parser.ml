(** Recursive-descent parser for MiniC.

    Typedef names are tracked during parsing to disambiguate declarations
    from expressions (the classic C lexer hack, kept inside the parser).

    Compound assignments ([+=], ...) and increment operators are desugared
    into plain assignments; this duplicates the left-hand side
    syntactically, which is harmless for the analysis because the subset
    forbids side effects inside lvalues. *)

open Token

type state = {
  toks : Lexer.lexed array;
  mutable pos : int;
  typedefs : (string, unit) Hashtbl.t;
}

let make toks =
  { toks = Array.of_list toks; pos = 0; typedefs = Hashtbl.create 16 }

let cur st = st.toks.(st.pos).tok
let cur_loc st = st.toks.(st.pos).loc

let peek_at st n =
  let i = st.pos + n in
  if i < Array.length st.toks then st.toks.(i).tok else EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let parse_error st fmt =
  Loc.error (cur_loc st) ("parse error: " ^^ fmt)

let expect st tok =
  if cur st = tok then advance st
  else
    parse_error st "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (cur st))

let expect_ident st =
  match cur st with
  | IDENT x ->
    advance st;
    x
  | t -> parse_error st "expected identifier, found %s" (Token.to_string t)

let is_typedef_name st name = Hashtbl.mem st.typedefs name

(** Does the current token start a type specifier? *)
let starts_type st =
  match cur st with
  | KW_void | KW_char | KW_int | KW_long | KW_float | KW_double | KW_struct
  | KW_const | KW_unsigned | KW_static ->
    true
  | IDENT x -> is_typedef_name st x
  | _ -> false

(* -- Types ------------------------------------------------------------ *)

let rec parse_type_spec st : Ty.t =
  match cur st with
  | KW_const | KW_static ->
    advance st;
    parse_type_spec st
  | KW_unsigned ->
    advance st;
    (* unsigned is folded into the signed carrier type *)
    (match cur st with
    | KW_char | KW_int | KW_long -> parse_type_spec st
    | _ -> Ty.Int)
  | KW_void -> advance st; Ty.Void
  | KW_char -> advance st; Ty.Char
  | KW_int -> advance st; Ty.Int
  | KW_long ->
    advance st;
    (match cur st with KW_int -> advance st | _ -> ());
    Ty.Long
  | KW_float -> advance st; Ty.Float
  | KW_double -> advance st; Ty.Double
  | KW_struct ->
    advance st;
    let name = expect_ident st in
    Ty.Struct name
  | IDENT x when is_typedef_name st x ->
    advance st;
    Ty.Named x
  | t -> parse_error st "expected type, found %s" (Token.to_string t)

(** Pointer stars following a type specifier. *)
let parse_stars st base =
  let ty = ref base in
  while cur st = STAR do
    advance st;
    (match cur st with KW_const -> advance st | _ -> ());
    ty := Ty.Ptr !ty
  done;
  !ty

(** Array suffixes after a declarator name: [N][M]... *)
let parse_array_suffix st base =
  let dims = ref [] in
  while cur st = LBRACKET do
    advance st;
    (match cur st with
    | INT n ->
      advance st;
      dims := Int64.to_int n :: !dims
    | RBRACKET -> parse_error st "array size required in MiniC"
    | t -> parse_error st "expected array size, found %s" (Token.to_string t));
    expect st RBRACKET
  done;
  List.fold_left (fun ty n -> Ty.Array (ty, n)) base !dims

(* -- Expressions ------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  let loc = lhs.Ast.eloc in
  let mk_compound op =
    advance st;
    let rhs = parse_assign st in
    Ast.mk_expr ~loc (Ast.Assign (lhs, Ast.mk_expr ~loc (Ast.Binop (op, lhs, rhs))))
  in
  match cur st with
  | ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    Ast.mk_expr ~loc (Ast.Assign (lhs, rhs))
  | PLUSEQ -> mk_compound Ast.Add
  | MINUSEQ -> mk_compound Ast.Sub
  | STAREQ -> mk_compound Ast.Mul
  | SLASHEQ -> mk_compound Ast.Div
  | PERCENTEQ -> mk_compound Ast.Mod
  | AMPEQ -> mk_compound Ast.Band
  | PIPEEQ -> mk_compound Ast.Bor
  | CARETEQ -> mk_compound Ast.Bxor
  | SHLEQ -> mk_compound Ast.Shl
  | SHREQ -> mk_compound Ast.Shr
  | _ -> lhs

and parse_cond st =
  let c = parse_lor st in
  if cur st = QUESTION then begin
    advance st;
    let a = parse_expr st in
    expect st COLON;
    let b = parse_cond st in
    Ast.mk_expr ~loc:c.Ast.eloc (Ast.Cond (c, a, b))
  end
  else c

and parse_binop_level st ops next =
  let lhs = ref (next st) in
  let continue = ref true in
  while !continue do
    match List.assoc_opt (cur st) ops with
    | Some op ->
      advance st;
      let rhs = next st in
      lhs := Ast.mk_expr ~loc:(!lhs).Ast.eloc (Ast.Binop (op, !lhs, rhs))
    | None -> continue := false
  done;
  !lhs

and parse_lor st = parse_binop_level st [ (OROR, Ast.Lor) ] parse_land
and parse_land st = parse_binop_level st [ (ANDAND, Ast.Land) ] parse_bor
and parse_bor st = parse_binop_level st [ (PIPE, Ast.Bor) ] parse_bxor
and parse_bxor st = parse_binop_level st [ (CARET, Ast.Bxor) ] parse_band
and parse_band st = parse_binop_level st [ (AMP, Ast.Band) ] parse_equality

and parse_equality st =
  parse_binop_level st [ (EQEQ, Ast.Eq); (NEQ, Ast.Ne) ] parse_relational

and parse_relational st =
  parse_binop_level st
    [ (LT, Ast.Lt); (LE, Ast.Le); (GT, Ast.Gt); (GE, Ast.Ge) ]
    parse_shift

and parse_shift st = parse_binop_level st [ (SHL, Ast.Shl); (SHR, Ast.Shr) ] parse_additive

and parse_additive st =
  parse_binop_level st [ (PLUS, Ast.Add); (MINUS, Ast.Sub) ] parse_multiplicative

and parse_multiplicative st =
  parse_binop_level st
    [ (STAR, Ast.Mul); (SLASH, Ast.Div); (PERCENT, Ast.Mod) ]
    parse_unary

and parse_unary st =
  let loc = cur_loc st in
  match cur st with
  | MINUS ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Neg, parse_unary st))
  | BANG ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Lnot, parse_unary st))
  | TILDE ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Bnot, parse_unary st))
  | PLUS ->
    advance st;
    parse_unary st
  | STAR ->
    advance st;
    Ast.mk_expr ~loc (Ast.Deref (parse_unary st))
  | AMP ->
    advance st;
    Ast.mk_expr ~loc (Ast.Addr (parse_unary st))
  | PLUSPLUS ->
    advance st;
    let lv = parse_unary st in
    Ast.mk_expr ~loc
      (Ast.Assign (lv, Ast.mk_expr ~loc (Ast.Binop (Ast.Add, lv, Ast.int_e ~loc 1))))
  | MINUSMINUS ->
    advance st;
    let lv = parse_unary st in
    Ast.mk_expr ~loc
      (Ast.Assign (lv, Ast.mk_expr ~loc (Ast.Binop (Ast.Sub, lv, Ast.int_e ~loc 1))))
  | KW_sizeof ->
    advance st;
    expect st LPAREN;
    let ty =
      if starts_type st then parse_stars st (parse_type_spec st)
      else
        (* sizeof(expr) is restricted to sizeof(type) in MiniC *)
        parse_error st "sizeof requires a type in MiniC"
    in
    expect st RPAREN;
    Ast.mk_expr ~loc (Ast.Sizeof ty)
  | LPAREN when starts_type_cast st ->
    advance st;
    let ty = parse_stars st (parse_type_spec st) in
    expect st RPAREN;
    Ast.mk_expr ~loc (Ast.Cast (ty, parse_unary st))
  | _ -> parse_postfix st

(* A '(' begins a cast if the following token starts a type (and the parse
   is not a compound literal, which MiniC lacks). *)
and starts_type_cast st =
  match peek_at st 1 with
  | KW_void | KW_char | KW_int | KW_long | KW_float | KW_double | KW_struct
  | KW_const | KW_unsigned ->
    true
  | IDENT x -> is_typedef_name st x
  | _ -> false

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    let loc = cur_loc st in
    match cur st with
    | LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st RBRACKET;
      e := Ast.mk_expr ~loc (Ast.Index (!e, idx))
    | DOT ->
      advance st;
      let f = expect_ident st in
      e := Ast.mk_expr ~loc (Ast.Field (!e, f))
    | ARROW ->
      advance st;
      let f = expect_ident st in
      e := Ast.mk_expr ~loc (Ast.Arrow (!e, f))
    | PLUSPLUS ->
      advance st;
      let lv = !e in
      e :=
        Ast.mk_expr ~loc
          (Ast.Assign (lv, Ast.mk_expr ~loc (Ast.Binop (Ast.Add, lv, Ast.int_e ~loc 1))))
    | MINUSMINUS ->
      advance st;
      let lv = !e in
      e :=
        Ast.mk_expr ~loc
          (Ast.Assign (lv, Ast.mk_expr ~loc (Ast.Binop (Ast.Sub, lv, Ast.int_e ~loc 1))))
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  let loc = cur_loc st in
  match cur st with
  | INT n ->
    advance st;
    Ast.mk_expr ~loc (Ast.Cint n)
  | FLOATLIT f ->
    advance st;
    Ast.mk_expr ~loc (Ast.Cfloat f)
  | STRING s ->
    advance st;
    Ast.mk_expr ~loc (Ast.Cstr s)
  | CHARLIT c ->
    advance st;
    Ast.mk_expr ~loc (Ast.Cchar c)
  | IDENT x ->
    advance st;
    if cur st = LPAREN then begin
      advance st;
      let args = parse_args st in
      expect st RPAREN;
      Ast.mk_expr ~loc (Ast.Call (x, args))
    end
    else Ast.mk_expr ~loc (Ast.Var x)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | t -> parse_error st "unexpected token %s in expression" (Token.to_string t)

and parse_args st =
  if cur st = RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if cur st = COMMA then begin
        advance st;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []

(* -- Initializers ------------------------------------------------------ *)

let rec parse_init st : Ast.init =
  if cur st = LBRACE then begin
    advance st;
    let rec go acc =
      if cur st = RBRACE then begin
        advance st;
        List.rev acc
      end
      else begin
        let i = parse_init st in
        (match cur st with COMMA -> advance st | _ -> ());
        go (i :: acc)
      end
    in
    Ast.Ilist (go [])
  end
  else Ast.Iexpr (parse_expr st)

(* -- Statements -------------------------------------------------------- *)

let rec parse_stmt st : Ast.stmt =
  let loc = cur_loc st in
  match cur st with
  | ANNOT payload ->
    advance st;
    let clauses =
      try Annot.parse_payload payload
      with Annot.Parse_error msg -> Loc.error loc "bad annotation: %s" msg
    in
    Ast.mk_stmt ~loc (Ast.Sannot clauses)
  | LBRACE ->
    advance st;
    let body = parse_block_items st in
    expect st RBRACE;
    Ast.mk_stmt ~loc (Ast.Sblock body)
  | KW_if ->
    advance st;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    let then_branch = parse_branch st in
    let else_branch =
      if cur st = KW_else then begin
        advance st;
        parse_branch st
      end
      else []
    in
    Ast.mk_stmt ~loc (Ast.Sif (c, then_branch, else_branch))
  | KW_while ->
    advance st;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    Ast.mk_stmt ~loc (Ast.Swhile (c, parse_branch st))
  | KW_do ->
    advance st;
    let body = parse_branch st in
    expect st KW_while;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    expect st SEMI;
    Ast.mk_stmt ~loc (Ast.Sdo (body, c))
  | KW_for ->
    advance st;
    expect st LPAREN;
    let init =
      if cur st = SEMI then None
      else if starts_type st then Some (parse_decl_stmt st ~consume_semi:false)
      else Some (Ast.mk_stmt ~loc (Ast.Sexpr (parse_expr st)))
    in
    expect st SEMI;
    let cond = if cur st = SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    let step =
      if cur st = RPAREN then None
      else Some (Ast.mk_stmt ~loc (Ast.Sexpr (parse_expr st)))
    in
    expect st RPAREN;
    Ast.mk_stmt ~loc (Ast.Sfor (init, cond, step, parse_branch st))
  | KW_switch ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    expect st LBRACE;
    let cases = parse_cases st in
    expect st RBRACE;
    Ast.mk_stmt ~loc (Ast.Sswitch (e, cases))
  | KW_return ->
    advance st;
    let e = if cur st = SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    Ast.mk_stmt ~loc (Ast.Sreturn e)
  | KW_break ->
    advance st;
    expect st SEMI;
    Ast.mk_stmt ~loc Ast.Sbreak
  | KW_continue ->
    advance st;
    expect st SEMI;
    Ast.mk_stmt ~loc Ast.Scontinue
  | SEMI ->
    advance st;
    Ast.mk_stmt ~loc (Ast.Sblock [])
  | _ when starts_type st -> parse_decl_stmt st ~consume_semi:true
  | _ ->
    let e = parse_expr st in
    expect st SEMI;
    Ast.mk_stmt ~loc (Ast.Sexpr e)

(** A single statement or block used as a branch body, normalized to a
    statement list. *)
and parse_branch st : Ast.stmt list =
  match (parse_stmt st).sdesc with
  | Ast.Sblock body -> body
  | other -> [ Ast.mk_stmt other ]

and parse_cases st : Ast.case list =
  let rec go acc =
    let loc = cur_loc st in
    match cur st with
    | KW_case ->
      advance st;
      let v =
        match cur st with
        | INT n ->
          advance st;
          n
        | MINUS ->
          advance st;
          (match cur st with
          | INT n ->
            advance st;
            Int64.neg n
          | t -> parse_error st "expected integer case label, found %s" (Token.to_string t))
        | CHARLIT c ->
          advance st;
          Int64.of_int (Char.code c)
        | t -> parse_error st "expected integer case label, found %s" (Token.to_string t)
      in
      expect st COLON;
      let body = parse_case_body st in
      go ({ Ast.cval = Some v; cbody = body; cloc = loc } :: acc)
    | KW_default ->
      advance st;
      expect st COLON;
      let body = parse_case_body st in
      go ({ Ast.cval = None; cbody = body; cloc = loc } :: acc)
    | RBRACE -> List.rev acc
    | t -> parse_error st "expected case/default, found %s" (Token.to_string t)
  in
  go []

and parse_case_body st : Ast.stmt list =
  let rec go acc =
    match cur st with
    | KW_case | KW_default | RBRACE -> List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

and parse_block_items st : Ast.stmt list =
  let rec go acc =
    match cur st with RBRACE | EOF -> List.rev acc | _ -> go (parse_stmt st :: acc)
  in
  go []

(** Parse a local declaration statement: [ty d1 [= init] (, d2 [= init])* ;].
    Multiple declarators desugar into a block of single declarations. *)
and parse_decl_stmt st ~consume_semi : Ast.stmt =
  let loc = cur_loc st in
  let base = parse_type_spec st in
  let parse_one () =
    let ty = parse_stars st base in
    let name = expect_ident st in
    let ty = parse_array_suffix st ty in
    let init =
      if cur st = ASSIGN then begin
        advance st;
        Some (parse_init st)
      end
      else None
    in
    Ast.mk_stmt ~loc (Ast.Sdecl (ty, name, init))
  in
  let first = parse_one () in
  let rec more acc =
    if cur st = COMMA then begin
      advance st;
      more (parse_one () :: acc)
    end
    else List.rev acc
  in
  let rest = more [] in
  if consume_semi then expect st SEMI;
  match rest with [] -> first | _ -> Ast.mk_stmt ~loc (Ast.Sblock (first :: rest))

(* -- Top-level declarations -------------------------------------------- *)

let parse_params st : Ast.param list =
  if cur st = RPAREN then []
  else if cur st = KW_void && peek_at st 1 = RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let base = parse_type_spec st in
      let ty = parse_stars st base in
      (* prototypes may omit parameter names *)
      let name = match cur st with
        | IDENT x -> advance st; x
        | _ -> Fmt.str "$arg%d" (List.length acc)
      in
      let ty = parse_array_suffix st ty in
      (* array parameters decay to pointers *)
      let ty = match ty with Ty.Array (t, _) -> Ty.Ptr t | t -> t in
      let p = { Ast.pname = name; pty = ty } in
      if cur st = COMMA then begin
        advance st;
        go (p :: acc)
      end
      else List.rev (p :: acc)
    in
    go []
  end

let parse_struct_fields st : Ty.field list =
  let rec go acc =
    if cur st = RBRACE then List.rev acc
    else begin
      let base = parse_type_spec st in
      let rec declarators acc =
        let ty = parse_stars st base in
        let name = expect_ident st in
        let ty = parse_array_suffix st ty in
        let acc = { Ty.fname = name; fty = ty } :: acc in
        if cur st = COMMA then begin
          advance st;
          declarators acc
        end
        else acc
      in
      let acc = declarators acc in
      expect st SEMI;
      go acc
    end
  in
  go []

let rec parse_decl st ~(pending_annot : Annot.t) : Ast.decl list =
  let loc = cur_loc st in
  match cur st with
  | ANNOT payload ->
    advance st;
    let clauses =
      try Annot.parse_payload payload
      with Annot.Parse_error msg -> Loc.error loc "bad annotation: %s" msg
    in
    parse_decl st ~pending_annot:(pending_annot @ clauses)
  | KW_typedef ->
    advance st;
    let base = parse_type_spec st in
    let ty = parse_stars st base in
    let name = expect_ident st in
    let ty = parse_array_suffix st ty in
    expect st SEMI;
    Hashtbl.replace st.typedefs name ();
    [ Ast.Dtypedef (name, ty, loc) ]
  | KW_struct when peek_at st 2 = LBRACE ->
    advance st;
    let name = expect_ident st in
    expect st LBRACE;
    let fields = parse_struct_fields st in
    expect st RBRACE;
    (* allow "} TypedefName;" style?  MiniC: plain "};" *)
    expect st SEMI;
    [ Ast.Dstruct (name, fields, loc) ]
  | KW_extern ->
    advance st;
    let base = parse_type_spec st in
    let ty = parse_stars st base in
    let name = expect_ident st in
    if cur st = LPAREN then begin
      advance st;
      let params = parse_params st in
      expect st RPAREN;
      expect st SEMI;
      [ Ast.Dextern (name, ty, List.map (fun p -> p.Ast.pty) params, loc) ]
    end
    else begin
      let ty = parse_array_suffix st ty in
      expect st SEMI;
      (* extern data declaration: modeled as a global without initializer *)
      [ Ast.Dglobal { gname = name; gty = ty; ginit = None; gloc = loc } ]
    end
  | _ ->
    let base = parse_type_spec st in
    let ty = parse_stars st base in
    let name = expect_ident st in
    if cur st = LPAREN then begin
      (* function definition or prototype *)
      advance st;
      let params = parse_params st in
      expect st RPAREN;
      let annots = ref pending_annot in
      while (match cur st with ANNOT _ -> true | _ -> false) do
        (match cur st with
        | ANNOT payload ->
          let clauses =
            try Annot.parse_payload payload
            with Annot.Parse_error msg -> Loc.error (cur_loc st) "bad annotation: %s" msg
          in
          annots := !annots @ clauses
        | _ -> ());
        advance st
      done;
      if cur st = SEMI then begin
        advance st;
        [ Ast.Dextern (name, ty, List.map (fun p -> p.Ast.pty) params, loc) ]
      end
      else begin
        expect st LBRACE;
        let body = parse_block_items st in
        expect st RBRACE;
        [ Ast.Dfunc
            { fname = name; fret = ty; fparams = params; fbody = body;
              fannot = !annots; floc = loc } ]
      end
    end
    else begin
      (* global variable(s) *)
      let rec go acc ty name =
        let ty = parse_array_suffix st ty in
        let init =
          if cur st = ASSIGN then begin
            advance st;
            Some (parse_init st)
          end
          else None
        in
        let g = Ast.Dglobal { gname = name; gty = ty; ginit = init; gloc = loc } in
        if cur st = COMMA then begin
          advance st;
          let ty' = parse_stars st base in
          let name' = expect_ident st in
          go (g :: acc) ty' name'
        end
        else List.rev (g :: acc)
      in
      let decls = go [] ty name in
      expect st SEMI;
      decls
    end

(** Parse a full translation unit. *)
let parse_program toks : Ast.program =
  let st = make toks in
  let rec go acc =
    match cur st with
    | EOF -> List.concat (List.rev acc)
    | _ -> go (parse_decl st ~pending_annot:[] :: acc)
  in
  go []

(** Convenience: lex and parse a source string. *)
let parse_string ?(file = "<string>") src = parse_program (Lexer.tokenize ~file src)

(** Lex and parse a file on disk. *)
let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string ~file:path src
