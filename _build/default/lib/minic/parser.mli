(** Recursive-descent parser for MiniC.  Typedef names are tracked during
    parsing to disambiguate declarations from expressions; compound
    assignments and increments are desugared to plain assignments. *)

val parse_program : Lexer.lexed list -> Ast.program
(** @raise Loc.Error on parse errors *)

val parse_string : ?file:string -> string -> Ast.program

val parse_file : string -> Ast.program
