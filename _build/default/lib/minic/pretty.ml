(** Pretty-printer from the MiniC AST back to C source.

    Used by the parser round-trip tests (parse ∘ print ∘ parse must be
    stable) and by the synthetic-workload generator in the benchmark
    harness. *)

open Ast

(* declarators: print "t name" handling pointers and arrays *)
let rec pp_declarator ppf (ty, name) =
  match ty with
  | Ty.Array (t, n) -> Fmt.pf ppf "%a[%d]" pp_declarator (t, name) n
  | Ty.Ptr t -> pp_declarator ppf (t, "*" ^ name)
  | base -> Fmt.pf ppf "%a %s" Ty.pp base name

let prec_of_binop = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3
  | Land -> 2
  | Lor -> 1

let rec pp_expr_prec prec ppf e =
  let paren p body =
    if p < prec then Fmt.pf ppf "(%t)" body else body ppf
  in
  match e.edesc with
  | Cint n -> Fmt.pf ppf "%Ld" n
  | Cfloat f ->
    if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
    else Fmt.pf ppf "%.17g" f
  | Cstr s -> Fmt.pf ppf "%S" s
  | Cchar c -> Fmt.pf ppf "%C" c
  | Var x -> Fmt.string ppf x
  | Unop (op, a) ->
    (* parenthesize the operand so "-(-8)" never prints as "--8" *)
    paren 11 (fun ppf -> Fmt.pf ppf "%a(%a)" pp_unop op (pp_expr_prec 0) a)
  | Binop (op, a, b) ->
    let p = prec_of_binop op in
    paren p (fun ppf ->
        Fmt.pf ppf "%a %a %a" (pp_expr_prec p) a pp_binop op (pp_expr_prec (p + 1)) b)
  | Assign (l, r) ->
    paren 0 (fun ppf -> Fmt.pf ppf "%a = %a" (pp_expr_prec 1) l (pp_expr_prec 0) r)
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") (pp_expr_prec 0)) args
  | Deref a -> paren 11 (fun ppf -> Fmt.pf ppf "*%a" (pp_expr_prec 11) a)
  | Addr a -> paren 11 (fun ppf -> Fmt.pf ppf "&%a" (pp_expr_prec 11) a)
  | Index (a, i) -> Fmt.pf ppf "%a[%a]" (pp_expr_prec 12) a (pp_expr_prec 0) i
  | Field (s, f) -> Fmt.pf ppf "%a.%s" (pp_expr_prec 12) s f
  | Arrow (p, f) -> Fmt.pf ppf "%a->%s" (pp_expr_prec 12) p f
  | Cast (ty, a) -> paren 11 (fun ppf -> Fmt.pf ppf "(%a) %a" Ty.pp ty (pp_expr_prec 11) a)
  | Sizeof ty -> Fmt.pf ppf "sizeof(%a)" Ty.pp ty
  | Cond (c, a, b) ->
    paren 0 (fun ppf ->
        Fmt.pf ppf "%a ? %a : %a" (pp_expr_prec 1) c (pp_expr_prec 0) a
          (pp_expr_prec 0) b)

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec pp_init ppf = function
  | Iexpr e -> pp_expr ppf e
  | Ilist items -> Fmt.pf ppf "{ %a }" Fmt.(list ~sep:(any ", ") pp_init) items

let pp_annot_comment ppf (a : Annot.t) =
  Fmt.pf ppf "/*** %s %a ***/" Annot.marker Annot.pp a

let rec pp_stmt ppf s =
  match s.sdesc with
  | Sexpr e -> Fmt.pf ppf "%a;" pp_expr e
  | Sdecl (ty, name, None) -> Fmt.pf ppf "%a;" pp_declarator (ty, name)
  | Sdecl (ty, name, Some init) ->
    Fmt.pf ppf "%a = %a;" pp_declarator (ty, name) pp_init init
  | Sif (c, t, []) -> Fmt.pf ppf "if (%a) %a" pp_expr c pp_body t
  | Sif (c, t, e) -> Fmt.pf ppf "if (%a) %a else %a" pp_expr c pp_body t pp_body e
  | Swhile (c, b) -> Fmt.pf ppf "while (%a) %a" pp_expr c pp_body b
  | Sdo (b, c) -> Fmt.pf ppf "do %a while (%a);" pp_body b pp_expr c
  | Sfor (init, cond, step, b) ->
    let pp_opt_stmt ppf = function
      | Some { sdesc = Sexpr e; _ } -> pp_expr ppf e
      | Some { sdesc = Sdecl (ty, n, i); _ } -> (
        match i with
        | None -> pp_declarator ppf (ty, n)
        | Some i -> Fmt.pf ppf "%a = %a" pp_declarator (ty, n) pp_init i)
      | Some s -> pp_stmt ppf s
      | None -> ()
    in
    Fmt.pf ppf "for (%a; %a; %a) %a" pp_opt_stmt init
      Fmt.(option pp_expr) cond pp_opt_stmt step pp_body b
  | Sswitch (e, cases) ->
    Fmt.pf ppf "switch (%a) {@;<1 2>@[<v>%a@]@ }" pp_expr e
      Fmt.(list ~sep:cut pp_case) cases
  | Sreturn None -> Fmt.string ppf "return;"
  | Sreturn (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | Sbreak -> Fmt.string ppf "break;"
  | Scontinue -> Fmt.string ppf "continue;"
  | Sblock b -> pp_body ppf b
  | Sannot a -> pp_annot_comment ppf a

and pp_case ppf c =
  (match c.cval with
  | Some v -> Fmt.pf ppf "case %Ld:" v
  | None -> Fmt.string ppf "default:");
  Fmt.pf ppf "@;<1 2>@[<v>%a@]" Fmt.(list ~sep:cut pp_stmt) c.cbody

and pp_body ppf stmts =
  Fmt.pf ppf "{@;<1 2>@[<v>%a@]@ }" Fmt.(list ~sep:cut pp_stmt) stmts

let pp_decl ppf = function
  | Dstruct (name, fields, _) ->
    let pp_field ppf (f : Ty.field) = Fmt.pf ppf "%a;" pp_declarator (f.fty, f.fname) in
    Fmt.pf ppf "@[<v>struct %s {@;<1 2>@[<v>%a@]@ };@]" name
      Fmt.(list ~sep:cut pp_field) fields
  | Dtypedef (name, ty, _) -> Fmt.pf ppf "typedef %a;" pp_declarator (ty, name)
  | Dglobal g -> (
    match g.ginit with
    | None -> Fmt.pf ppf "%a;" pp_declarator (g.gty, g.gname)
    | Some i -> Fmt.pf ppf "%a = %a;" pp_declarator (g.gty, g.gname) pp_init i)
  | Dextern (name, ret, params, _) ->
    Fmt.pf ppf "extern %a(%a);" pp_declarator (ret, name)
      Fmt.(list ~sep:(any ", ") Ty.pp) params
  | Dfunc f ->
    let pp_param ppf (p : param) = pp_declarator ppf (p.pty, p.pname) in
    Fmt.pf ppf "@[<v>%a(%a)@ %a%a@]" pp_declarator (f.fret, f.fname)
      Fmt.(list ~sep:(any ", ") pp_param) f.fparams
      (fun ppf a -> if a <> [] then Fmt.pf ppf "%a@ " pp_annot_comment a) f.fannot
      pp_body f.fbody

let pp_program ppf prog =
  Fmt.pf ppf "@[<v>%a@]@." Fmt.(list ~sep:(any "@ @ ") pp_decl) prog

let program_to_string prog = Fmt.str "%a" pp_program prog
