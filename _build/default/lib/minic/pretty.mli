(** Pretty-printer from the AST back to C source; [parse ∘ print] is
    stable (round-trip tested). *)

val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val pp_decl : Format.formatter -> Ast.decl -> unit

val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
