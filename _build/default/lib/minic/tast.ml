(** Typed abstract syntax, produced by {!Typecheck}.

    Every expression carries its resolved type; typedefs are resolved,
    [sizeof] is folded to a constant, locals are alpha-renamed to unique
    names, and array-to-pointer decay is explicit via [Tdecay]. *)

type texpr = { tdesc : tdesc; tty : Ty.t; tloc : Loc.t }

and tdesc =
  | Tint of int64
  | Tfloat of float
  | Tstr of string
  | Tlocal of string           (** unique local / parameter name *)
  | Tglobal of string
  | Tunop of Ast.unop * texpr
  | Tbinop of Ast.binop * texpr * texpr
  | Tassign of texpr * texpr
  | Tcall of string * texpr list
  | Tderef of texpr
  | Taddr of texpr
  | Tindex of texpr * texpr    (** base (pointer or array lvalue), index *)
  | Tfield of texpr * string   (** struct lvalue, field name *)
  | Tcast of Ty.t * texpr
  | Tcond of texpr * texpr * texpr
  | Tdecay of texpr            (** array lvalue used as pointer rvalue *)

type tstmt = { tsdesc : tsdesc; tsloc : Loc.t }

and tsdesc =
  | TSexpr of texpr
  | TSdecl of string * Ty.t * texpr option
      (** unique name; brace initializers are desugared to element stores *)
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSdo of tstmt list * texpr
  | TSfor of tstmt option * texpr option * tstmt option * tstmt list
  | TSswitch of texpr * tcase list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list
  | TSannot of Annot.t

and tcase = { tcval : int64 option; tcbody : tstmt list; tcloc : Loc.t }

type tfunc = {
  tf_name : string;
  tf_ret : Ty.t;
  tf_params : (string * Ty.t) list;  (** unique names *)
  tf_locals : (string * Ty.t) list;  (** all locals after renaming *)
  tf_body : tstmt list;
  tf_annot : Annot.t;
  tf_loc : Loc.t;
}

(** A global scalar initializer element: (byte offset, value). *)
type ginit_elem = { gi_offset : int; gi_value : texpr }

type tglobal = {
  tg_name : string;
  tg_ty : Ty.t;
  tg_init : ginit_elem list;
  tg_loc : Loc.t;
}

type program = {
  p_env : Ty.env;
  p_globals : tglobal list;
  p_externs : (string * Ty.t * Ty.t list) list;  (** name, ret, params *)
  p_funcs : tfunc list;
}

let is_lvalue e =
  match e.tdesc with
  | Tlocal _ | Tglobal _ | Tderef _ | Tindex _ | Tfield _ -> true
  | _ -> false

let find_func prog name = List.find_opt (fun f -> String.equal f.tf_name name) prog.p_funcs

let find_extern prog name =
  List.find_opt (fun (n, _, _) -> String.equal n name) prog.p_externs

(** Fold [f] over every expression of a statement list, pre-order. *)
let rec fold_texpr_stmts f acc stmts = List.fold_left (fold_texpr_stmt f) acc stmts

and fold_texpr_stmt f acc s =
  match s.tsdesc with
  | TSexpr e -> fold_texpr f acc e
  | TSdecl (_, _, Some e) -> fold_texpr f acc e
  | TSdecl (_, _, None) -> acc
  | TSif (c, t, e) ->
    fold_texpr_stmts f (fold_texpr_stmts f (fold_texpr f acc c) t) e
  | TSwhile (c, b) -> fold_texpr_stmts f (fold_texpr f acc c) b
  | TSdo (b, c) -> fold_texpr f (fold_texpr_stmts f acc b) c
  | TSfor (i, c, st, b) ->
    let acc = Option.fold ~none:acc ~some:(fold_texpr_stmt f acc) i in
    let acc = Option.fold ~none:acc ~some:(fold_texpr f acc) c in
    let acc = Option.fold ~none:acc ~some:(fold_texpr_stmt f acc) st in
    fold_texpr_stmts f acc b
  | TSswitch (e, cases) ->
    List.fold_left (fun acc c -> fold_texpr_stmts f acc c.tcbody) (fold_texpr f acc e) cases
  | TSreturn (Some e) -> fold_texpr f acc e
  | TSreturn None | TSbreak | TScontinue | TSannot _ -> acc
  | TSblock b -> fold_texpr_stmts f acc b

and fold_texpr f acc e =
  let acc = f acc e in
  match e.tdesc with
  | Tint _ | Tfloat _ | Tstr _ | Tlocal _ | Tglobal _ -> acc
  | Tunop (_, a) | Tderef a | Taddr a | Tfield (a, _) | Tcast (_, a) | Tdecay a ->
    fold_texpr f acc a
  | Tbinop (_, a, b) | Tassign (a, b) | Tindex (a, b) -> fold_texpr f (fold_texpr f acc a) b
  | Tcall (_, args) -> List.fold_left (fold_texpr f) acc args
  | Tcond (c, a, b) -> fold_texpr f (fold_texpr f (fold_texpr f acc c) a) b
