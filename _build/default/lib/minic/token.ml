(** Tokens produced by the MiniC lexer. *)

type t =
  | INT of int64
  | FLOATLIT of float
  | STRING of string
  | CHARLIT of char
  | IDENT of string
  (* keywords *)
  | KW_void | KW_char | KW_int | KW_long | KW_float | KW_double
  | KW_struct | KW_typedef | KW_extern | KW_static | KW_const | KW_unsigned
  | KW_if | KW_else | KW_while | KW_for | KW_do | KW_return
  | KW_break | KW_continue | KW_switch | KW_case | KW_default | KW_sizeof
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | QUESTION
  | DOT | ARROW
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ | AMPEQ | PIPEEQ | CARETEQ | SHLEQ | SHREQ
  | PLUSPLUS | MINUSMINUS
  (* SafeFlow annotation comment payload *)
  | ANNOT of string
  | EOF

let keyword_of_string = function
  | "void" -> Some KW_void
  | "char" -> Some KW_char
  | "int" -> Some KW_int
  | "long" -> Some KW_long
  | "float" -> Some KW_float
  | "double" -> Some KW_double
  | "struct" -> Some KW_struct
  | "typedef" -> Some KW_typedef
  | "extern" -> Some KW_extern
  | "static" -> Some KW_static
  | "const" -> Some KW_const
  | "unsigned" -> Some KW_unsigned
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "while" -> Some KW_while
  | "for" -> Some KW_for
  | "do" -> Some KW_do
  | "return" -> Some KW_return
  | "break" -> Some KW_break
  | "continue" -> Some KW_continue
  | "switch" -> Some KW_switch
  | "case" -> Some KW_case
  | "default" -> Some KW_default
  | "sizeof" -> Some KW_sizeof
  | _ -> None

let to_string = function
  | INT n -> Int64.to_string n
  | FLOATLIT f -> string_of_float f
  | STRING s -> Fmt.str "%S" s
  | CHARLIT c -> Fmt.str "%C" c
  | IDENT s -> s
  | KW_void -> "void" | KW_char -> "char" | KW_int -> "int" | KW_long -> "long"
  | KW_float -> "float" | KW_double -> "double"
  | KW_struct -> "struct" | KW_typedef -> "typedef" | KW_extern -> "extern"
  | KW_static -> "static" | KW_const -> "const" | KW_unsigned -> "unsigned"
  | KW_if -> "if" | KW_else -> "else" | KW_while -> "while" | KW_for -> "for"
  | KW_do -> "do" | KW_return -> "return"
  | KW_break -> "break" | KW_continue -> "continue" | KW_switch -> "switch"
  | KW_case -> "case" | KW_default -> "default" | KW_sizeof -> "sizeof"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | COLON -> ":" | QUESTION -> "?"
  | DOT -> "." | ARROW -> "->"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | SHL -> "<<" | SHR -> ">>"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NEQ -> "!="
  | ANDAND -> "&&" | OROR -> "||"
  | ASSIGN -> "="
  | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*=" | SLASHEQ -> "/="
  | PERCENTEQ -> "%=" | AMPEQ -> "&=" | PIPEEQ -> "|=" | CARETEQ -> "^="
  | SHLEQ -> "<<=" | SHREQ -> ">>="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | ANNOT s -> Fmt.str "/*** %s ***/" s
  | EOF -> "<eof>"
