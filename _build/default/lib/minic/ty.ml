(** MiniC types, layout computation and compatibility rules.

    The type language mirrors the subset of C used by the embedded control
    systems analyzed in the paper: scalar arithmetic types, pointers,
    fixed-size arrays, named structs and typedefs.  Function types appear
    only at declaration sites (no function pointers — a restriction the
    paper's language subset shares). *)

type t =
  | Void
  | Char
  | Int
  | Long
  | Float
  | Double
  | Ptr of t
  | Array of t * int  (** element type, static length *)
  | Struct of string  (** by-name reference; fields live in the env *)
  | Named of string   (** unresolved typedef name *)
  | Fun of t * t list (** return type, parameter types *)

type field = { fname : string; fty : t }

(** Struct and typedef environment, filled by the typechecker. *)
type env = {
  structs : (string, field list) Hashtbl.t;
  typedefs : (string, t) Hashtbl.t;
}

let empty_env () = { structs = Hashtbl.create 16; typedefs = Hashtbl.create 16 }

(** [resolve env ty] chases typedef names until a structural type is
    reached.  Raises [Not_found] on an unknown typedef. *)
let rec resolve env = function
  | Named n -> resolve env (Hashtbl.find env.typedefs n)
  | ty -> ty

let rec pp ppf = function
  | Void -> Fmt.string ppf "void"
  | Char -> Fmt.string ppf "char"
  | Int -> Fmt.string ppf "int"
  | Long -> Fmt.string ppf "long"
  | Float -> Fmt.string ppf "float"
  | Double -> Fmt.string ppf "double"
  | Ptr t -> Fmt.pf ppf "%a*" pp t
  | Array (t, n) -> Fmt.pf ppf "%a[%d]" pp t n
  | Struct s -> Fmt.pf ppf "struct %s" s
  | Named n -> Fmt.string ppf n
  | Fun (r, args) -> Fmt.pf ppf "%a(%a)" pp r Fmt.(list ~sep:comma pp) args

let to_string t = Fmt.str "%a" pp t

let rec equal a b =
  match (a, b) with
  | Void, Void | Char, Char | Int, Int | Long, Long | Float, Float | Double, Double -> true
  | Ptr a, Ptr b -> equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | Struct a, Struct b -> String.equal a b
  | Named a, Named b -> String.equal a b
  | Fun (r1, a1), Fun (r2, a2) ->
    equal r1 r2 && List.length a1 = List.length a2 && List.for_all2 equal a1 a2
  | (Void | Char | Int | Long | Float | Double | Ptr _ | Array _ | Struct _ | Named _ | Fun _), _
    -> false

let is_integer = function Char | Int | Long -> true | _ -> false
let is_float = function Float | Double -> true | _ -> false
let is_arith t = is_integer t || is_float t
let is_pointer = function Ptr _ -> true | _ -> false
let is_scalar t = is_arith t || is_pointer t

(** Natural alignment following a conventional LP64 ABI. *)
let rec alignof env ty =
  match resolve env ty with
  | Void -> 1
  | Char -> 1
  | Int | Float -> 4
  | Long | Double | Ptr _ -> 8
  | Array (t, _) -> alignof env t
  | Struct s ->
    let fields = try Hashtbl.find env.structs s with Not_found -> [] in
    List.fold_left (fun a f -> max a (alignof env f.fty)) 1 fields
  | Named _ -> 1 (* unreachable after resolve *)
  | Fun _ -> 8

let align_up off a = (off + a - 1) / a * a

(** [sizeof env ty] — byte size under the LP64 layout used throughout the
    analysis (shared-memory offsets in annotations use the same layout). *)
let rec sizeof env ty =
  match resolve env ty with
  | Void -> 0
  | Char -> 1
  | Int | Float -> 4
  | Long | Double | Ptr _ -> 8
  | Array (t, n) -> n * sizeof env t
  | Struct s ->
    let fields = try Hashtbl.find env.structs s with Not_found -> [] in
    let off =
      List.fold_left
        (fun off f -> align_up off (alignof env f.fty) + sizeof env f.fty)
        0 fields
    in
    align_up (max off 1) (alignof env ty)
  | Named _ -> 0
  | Fun _ -> 8

(** Byte offset of field [fname] within struct [sname]. *)
let field_offset env sname fname =
  let fields = try Hashtbl.find env.structs sname with Not_found -> [] in
  let rec go off = function
    | [] -> None
    | f :: rest ->
      let off = align_up off (alignof env f.fty) in
      if String.equal f.fname fname then Some off else go (off + sizeof env f.fty) rest
  in
  go 0 fields

let field_type env sname fname =
  match Hashtbl.find_opt env.structs sname with
  | None -> None
  | Some fields ->
    List.find_map (fun f -> if String.equal f.fname fname then Some f.fty else None) fields

(** Structural compatibility after typedef resolution — the notion used by
    restriction P3 (casts between incompatible shared-memory pointer types
    are rejected). *)
let rec compatible env a b =
  match (resolve env a, resolve env b) with
  | Ptr a, Ptr b -> compatible env a b
  | Array (a, n), Array (b, m) -> n = m && compatible env a b
  | a, b -> equal a b
