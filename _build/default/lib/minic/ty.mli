(** MiniC types, LP64 layout computation and compatibility rules. *)

type t =
  | Void
  | Char
  | Int
  | Long
  | Float
  | Double
  | Ptr of t
  | Array of t * int
  | Struct of string  (** by-name; fields live in the {!env} *)
  | Named of string   (** unresolved typedef *)
  | Fun of t * t list

type field = { fname : string; fty : t }

(** Struct and typedef environment (filled by the typechecker). *)
type env = {
  structs : (string, field list) Hashtbl.t;
  typedefs : (string, t) Hashtbl.t;
}

val empty_env : unit -> env

val resolve : env -> t -> t
(** chase typedefs to a structural type. @raise Not_found *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool

val is_integer : t -> bool

val is_float : t -> bool

val is_arith : t -> bool

val is_pointer : t -> bool

val is_scalar : t -> bool

val alignof : env -> t -> int

val align_up : int -> int -> int

val sizeof : env -> t -> int
(** byte size under the LP64 layout the whole toolchain shares *)

val field_offset : env -> string -> string -> int option

val field_type : env -> string -> string -> t option

val compatible : env -> t -> t -> bool
(** structural compatibility after typedef resolution (restriction P3) *)
