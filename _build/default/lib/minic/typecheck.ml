(** Type checker and elaborator: [Ast.program] → [Tast.program].

    Responsibilities:
    - build the struct/typedef environment;
    - resolve typedefs and fold [sizeof];
    - insert explicit array-to-pointer decay and implicit arithmetic
      conversions (as casts);
    - alpha-rename block-scoped locals to unique names and collect them;
    - desugar brace initializers of locals into element assignments and of
      globals into (offset, value) lists;
    - reject constructs outside the MiniC subset. *)

type scope = {
  parent : scope option;
  vars : (string, string * Ty.t) Hashtbl.t;  (* source name -> unique name, type *)
}

type fstate = {
  env : Ty.env;
  globals : (string, Ty.t) Hashtbl.t;
  funcs : (string, Ty.t * Ty.t list) Hashtbl.t;  (* defined + extern *)
  mutable locals : (string * Ty.t) list;  (* accumulated, reverse order *)
  counters : (string, int) Hashtbl.t;
  ret : Ty.t;
}

let err loc fmt = Loc.error loc ("type error: " ^^ fmt)

let rec lookup_scope scope name =
  match Hashtbl.find_opt scope.vars name with
  | Some r -> Some r
  | None -> ( match scope.parent with Some p -> lookup_scope p name | None -> None)

let fresh_name fs name =
  let n = Option.value ~default:0 (Hashtbl.find_opt fs.counters name) in
  Hashtbl.replace fs.counters name (n + 1);
  if n = 0 then name else Fmt.str "%s$%d" name n

(** Resolve a possibly-typedef'd type, erroring on unknown names. *)
let resolve_ty env loc ty =
  try Ty.resolve env ty
  with Not_found -> err loc "unknown type %a" Ty.pp ty

(* deep-resolve: rewrite Named nodes everywhere inside the type *)
let rec deep_resolve env loc ty =
  match resolve_ty env loc ty with
  | Ty.Ptr t -> Ty.Ptr (deep_resolve env loc t)
  | Ty.Array (t, n) -> Ty.Array (deep_resolve env loc t, n)
  | Ty.Fun (r, args) ->
    Ty.Fun (deep_resolve env loc r, List.map (deep_resolve env loc) args)
  | t -> t

let mk ?(loc = Loc.dummy) tdesc tty : Tast.texpr = { tdesc; tty; tloc = loc }

(** Insert array decay when an array-typed expression is used as a value. *)
let decay e =
  match e.Tast.tty with
  | Ty.Array (t, _) -> mk ~loc:e.Tast.tloc (Tast.Tdecay e) (Ty.Ptr t)
  | _ -> e

(** Usual arithmetic conversion: the common type of two arithmetic
    operands. *)
let common_arith a b =
  match (a, b) with
  | Ty.Double, _ | _, Ty.Double -> Ty.Double
  | Ty.Float, _ | _, Ty.Float -> Ty.Float
  | Ty.Long, _ | _, Ty.Long -> Ty.Long
  | _ -> Ty.Int

(** Coerce [e] to type [want], inserting a cast when needed.  Allows
    arithmetic conversions, void*-to-pointer adjustments and null-pointer
    constants. *)
let coerce env loc want e =
  let have = e.Tast.tty in
  if Ty.compatible env want have then e
  else
    match (Ty.resolve env want, Ty.resolve env have) with
    | a, b when Ty.is_arith a && Ty.is_arith b -> mk ~loc (Tast.Tcast (want, e)) want
    | Ty.Ptr _, Ty.Ptr Ty.Void | Ty.Ptr Ty.Void, Ty.Ptr _ ->
      mk ~loc (Tast.Tcast (want, e)) want
    | Ty.Ptr _, _ when (match e.Tast.tdesc with Tast.Tint 0L -> true | _ -> false) ->
      mk ~loc (Tast.Tcast (want, e)) want
    | _ ->
      err loc "cannot convert %a to %a" Ty.pp have Ty.pp want

let rec check_expr fs scope (e : Ast.expr) : Tast.texpr =
  let loc = e.eloc in
  let env = fs.env in
  match e.edesc with
  | Ast.Cint n -> mk ~loc (Tast.Tint n) Ty.Int
  | Ast.Cfloat f -> mk ~loc (Tast.Tfloat f) Ty.Double
  | Ast.Cchar c -> mk ~loc (Tast.Tint (Int64.of_int (Char.code c))) Ty.Char
  | Ast.Cstr s -> mk ~loc (Tast.Tstr s) (Ty.Ptr Ty.Char)
  | Ast.Var x -> (
    match lookup_scope scope x with
    | Some (uname, ty) -> mk ~loc (Tast.Tlocal uname) ty
    | None -> (
      match Hashtbl.find_opt fs.globals x with
      | Some ty -> mk ~loc (Tast.Tglobal x) ty
      | None -> err loc "unbound variable %s" x))
  | Ast.Sizeof ty ->
    let ty = deep_resolve env loc ty in
    mk ~loc (Tast.Tint (Int64.of_int (Ty.sizeof env ty))) Ty.Long
  | Ast.Unop (op, a) -> (
    let a = decay (check_expr fs scope a) in
    match op with
    | Ast.Neg ->
      if not (Ty.is_arith (Ty.resolve env a.tty)) then err loc "negation of non-arithmetic";
      mk ~loc (Tast.Tunop (op, a)) a.tty
    | Ast.Lnot ->
      if not (Ty.is_scalar (Ty.resolve env a.tty)) then err loc "! of non-scalar";
      mk ~loc (Tast.Tunop (op, a)) Ty.Int
    | Ast.Bnot ->
      if not (Ty.is_integer (Ty.resolve env a.tty)) then err loc "~ of non-integer";
      mk ~loc (Tast.Tunop (op, a)) a.tty)
  | Ast.Binop (op, a, b) -> check_binop fs scope loc op a b
  | Ast.Assign (lhs, rhs) ->
    let lhs = check_expr fs scope lhs in
    if not (Tast.is_lvalue lhs) then err loc "assignment to non-lvalue";
    (match Ty.resolve env lhs.tty with
    | Ty.Array _ -> err loc "assignment to array"
    | _ -> ());
    let rhs = decay (check_expr fs scope rhs) in
    let rhs = coerce env loc lhs.tty rhs in
    mk ~loc (Tast.Tassign (lhs, rhs)) lhs.tty
  | Ast.Call (fname, args) -> (
    match Hashtbl.find_opt fs.funcs fname with
    | None -> err loc "call to undeclared function %s" fname
    | Some (ret, ptys) ->
      if List.length ptys <> List.length args then
        err loc "wrong number of arguments to %s (expected %d, got %d)" fname
          (List.length ptys) (List.length args);
      let args =
        List.map2
          (fun pty arg -> coerce env loc pty (decay (check_expr fs scope arg)))
          ptys args
      in
      mk ~loc (Tast.Tcall (fname, args)) ret)
  | Ast.Deref p -> (
    let p = decay (check_expr fs scope p) in
    match Ty.resolve env p.tty with
    | Ty.Ptr t -> mk ~loc (Tast.Tderef p) (deep_resolve env loc t)
    | t -> err loc "dereference of non-pointer (%a)" Ty.pp t)
  | Ast.Addr a ->
    let a = check_expr fs scope a in
    if not (Tast.is_lvalue a) then err loc "address of non-lvalue";
    mk ~loc (Tast.Taddr a) (Ty.Ptr a.tty)
  | Ast.Index (base, idx) -> (
    let base = check_expr fs scope base in
    let idx = decay (check_expr fs scope idx) in
    if not (Ty.is_integer (Ty.resolve env idx.tty)) then err loc "non-integer array index";
    match Ty.resolve env base.tty with
    | Ty.Array (t, _) -> mk ~loc (Tast.Tindex (base, idx)) (deep_resolve env loc t)
    | Ty.Ptr t -> mk ~loc (Tast.Tindex (decay base, idx)) (deep_resolve env loc t)
    | t -> err loc "indexing non-array (%a)" Ty.pp t)
  | Ast.Field (s, f) -> (
    let s = check_expr fs scope s in
    match Ty.resolve env s.tty with
    | Ty.Struct sname -> (
      match Ty.field_type env sname f with
      | Some fty -> mk ~loc (Tast.Tfield (s, f)) (deep_resolve env loc fty)
      | None -> err loc "struct %s has no field %s" sname f)
    | t -> err loc "field access on non-struct (%a)" Ty.pp t)
  | Ast.Arrow (p, f) ->
    check_expr fs scope
      (Ast.mk_expr ~loc (Ast.Field (Ast.mk_expr ~loc (Ast.Deref p), f)))
  | Ast.Cast (ty, a) ->
    let ty = deep_resolve env loc ty in
    let a = decay (check_expr fs scope a) in
    mk ~loc (Tast.Tcast (ty, a)) ty
  | Ast.Cond (c, a, b) ->
    let c = decay (check_expr fs scope c) in
    if not (Ty.is_scalar (Ty.resolve env c.tty)) then err loc "non-scalar condition";
    let a = decay (check_expr fs scope a) in
    let b = decay (check_expr fs scope b) in
    let ty =
      if Ty.compatible env a.tty b.tty then a.tty
      else if Ty.is_arith (Ty.resolve env a.tty) && Ty.is_arith (Ty.resolve env b.tty)
      then common_arith (Ty.resolve env a.tty) (Ty.resolve env b.tty)
      else err loc "incompatible branches of ?:"
    in
    mk ~loc (Tast.Tcond (c, coerce env loc ty a, coerce env loc ty b)) ty

and check_binop fs scope loc op a b =
  let env = fs.env in
  let a = decay (check_expr fs scope a) in
  let b = decay (check_expr fs scope b) in
  let ra = Ty.resolve env a.tty and rb = Ty.resolve env b.tty in
  match op with
  | Ast.Add | Ast.Sub -> (
    match (ra, rb) with
    | ta, tb when Ty.is_arith ta && Ty.is_arith tb ->
      let ty = common_arith ta tb in
      mk ~loc (Tast.Tbinop (op, coerce env loc ty a, coerce env loc ty b)) ty
    | Ty.Ptr _, tb when Ty.is_integer tb -> mk ~loc (Tast.Tbinop (op, a, b)) a.tty
    | ta, Ty.Ptr _ when Ty.is_integer ta && op = Ast.Add ->
      mk ~loc (Tast.Tbinop (op, b, a)) b.tty
    | Ty.Ptr _, Ty.Ptr _ when op = Ast.Sub ->
      mk ~loc (Tast.Tbinop (op, a, b)) Ty.Long
    | _ -> err loc "invalid operands of +/-")
  | Ast.Mul | Ast.Div ->
    if not (Ty.is_arith ra && Ty.is_arith rb) then err loc "invalid operands of */";
    let ty = common_arith ra rb in
    mk ~loc (Tast.Tbinop (op, coerce env loc ty a, coerce env loc ty b)) ty
  | Ast.Mod | Ast.Shl | Ast.Shr | Ast.Band | Ast.Bor | Ast.Bxor ->
    if not (Ty.is_integer ra && Ty.is_integer rb) then
      err loc "invalid operands of integer operator";
    let ty = common_arith ra rb in
    mk ~loc (Tast.Tbinop (op, coerce env loc ty a, coerce env loc ty b)) ty
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    match (ra, rb) with
    | ta, tb when Ty.is_arith ta && Ty.is_arith tb ->
      let ty = common_arith ta tb in
      mk ~loc (Tast.Tbinop (op, coerce env loc ty a, coerce env loc ty b)) Ty.Int
    | Ty.Ptr _, Ty.Ptr _ -> mk ~loc (Tast.Tbinop (op, a, b)) Ty.Int
    | Ty.Ptr _, tb when Ty.is_integer tb ->
      mk ~loc (Tast.Tbinop (op, a, coerce env loc a.tty b)) Ty.Int
    | ta, Ty.Ptr _ when Ty.is_integer ta ->
      mk ~loc (Tast.Tbinop (op, coerce env loc b.tty a, b)) Ty.Int
    | _ -> err loc "invalid comparison operands")
  | Ast.Land | Ast.Lor ->
    if not (Ty.is_scalar ra && Ty.is_scalar rb) then err loc "invalid logical operands";
    mk ~loc (Tast.Tbinop (op, a, b)) Ty.Int

(* -- Initializers ------------------------------------------------------- *)

(** Desugar a brace/scalar initializer for a local of type [ty] rooted at
    lvalue [lv] into assignment statements. *)
let rec lower_local_init fs scope loc (lv : Tast.texpr) ty (init : Ast.init) acc =
  let env = fs.env in
  match (init, Ty.resolve env ty) with
  | Ast.Iexpr e, _ ->
    let rhs = coerce env loc ty (decay (check_expr fs scope e)) in
    { Tast.tsdesc = Tast.TSexpr (mk ~loc (Tast.Tassign (lv, rhs)) ty); tsloc = loc } :: acc
  | Ast.Ilist items, Ty.Array (elt, n) ->
    if List.length items > n then err loc "too many initializers";
    List.fold_left
      (fun (acc, i) item ->
        let idx = mk ~loc (Tast.Tint (Int64.of_int i)) Ty.Int in
        let cell = mk ~loc (Tast.Tindex (lv, idx)) (deep_resolve env loc elt) in
        (lower_local_init fs scope loc cell elt item acc, i + 1))
      (acc, 0) items
    |> fst
  | Ast.Ilist items, Ty.Struct sname ->
    let fields = try Hashtbl.find env.Ty.structs sname with Not_found -> [] in
    if List.length items > List.length fields then err loc "too many initializers";
    List.fold_left2
      (fun acc item (f : Ty.field) ->
        let cell = mk ~loc (Tast.Tfield (lv, f.fname)) (deep_resolve env loc f.fty) in
        lower_local_init fs scope loc cell f.fty item acc)
      acc
      items
      (List.filteri (fun i _ -> i < List.length items) fields)
  | Ast.Ilist _, t -> err loc "brace initializer for non-aggregate %a" Ty.pp t

(** Flatten a global initializer into (offset, constant expression) pairs. *)
let rec flatten_global_init fs loc ty off (init : Ast.init) acc =
  let env = fs.env in
  match (init, Ty.resolve env ty) with
  | Ast.Iexpr e, _ ->
    let scope = { parent = None; vars = Hashtbl.create 1 } in
    let v = coerce env loc ty (decay (check_expr fs scope e)) in
    { Tast.gi_offset = off; gi_value = v } :: acc
  | Ast.Ilist items, Ty.Array (elt, n) ->
    if List.length items > n then err loc "too many initializers";
    let esz = Ty.sizeof env elt in
    List.fold_left
      (fun (acc, i) item ->
        (flatten_global_init fs loc elt (off + (i * esz)) item acc, i + 1))
      (acc, 0) items
    |> fst
  | Ast.Ilist items, Ty.Struct sname ->
    let fields = try Hashtbl.find env.Ty.structs sname with Not_found -> [] in
    List.fold_left2
      (fun acc item (f : Ty.field) ->
        let foff =
          match Ty.field_offset env sname f.fname with Some o -> o | None -> 0
        in
        flatten_global_init fs loc f.fty (off + foff) item acc)
      acc items
      (List.filteri (fun i _ -> i < List.length items) fields)
  | Ast.Ilist _, t -> err loc "brace initializer for non-aggregate %a" Ty.pp t

(* -- Statements ---------------------------------------------------------- *)

let rec check_stmts fs scope stmts = List.concat_map (check_stmt fs scope) stmts

and check_block fs scope stmts =
  let inner = { parent = Some scope; vars = Hashtbl.create 8 } in
  check_stmts fs inner stmts

and check_stmt fs scope (s : Ast.stmt) : Tast.tstmt list =
  let loc = s.sloc in
  let env = fs.env in
  let one tsdesc = [ { Tast.tsdesc; tsloc = loc } ] in
  match s.sdesc with
  | Ast.Sexpr e -> one (Tast.TSexpr (check_expr fs scope e))
  | Ast.Sdecl (ty, name, init) ->
    let ty = deep_resolve env loc ty in
    (match ty with Ty.Void -> err loc "void variable %s" name | _ -> ());
    let uname = fresh_name fs name in
    Hashtbl.replace scope.vars name (uname, ty);
    fs.locals <- (uname, ty) :: fs.locals;
    let decl = { Tast.tsdesc = Tast.TSdecl (uname, ty, None); tsloc = loc } in
    (match init with
    | None -> [ decl ]
    | Some (Ast.Iexpr e) ->
      let rhs = coerce env loc ty (decay (check_expr fs scope e)) in
      [ { Tast.tsdesc = Tast.TSdecl (uname, ty, Some rhs); tsloc = loc } ]
    | Some (Ast.Ilist _ as init) ->
      let lv = mk ~loc (Tast.Tlocal uname) ty in
      decl :: List.rev (lower_local_init fs scope loc lv ty init []))
  | Ast.Sif (c, t, e) ->
    let c = decay (check_expr fs scope c) in
    if not (Ty.is_scalar (Ty.resolve env c.tty)) then err loc "non-scalar if condition";
    one (Tast.TSif (c, check_block fs scope t, check_block fs scope e))
  | Ast.Swhile (c, body) ->
    let c = decay (check_expr fs scope c) in
    one (Tast.TSwhile (c, check_block fs scope body))
  | Ast.Sdo (body, c) ->
    let body = check_block fs scope body in
    let c = decay (check_expr fs scope c) in
    one (Tast.TSdo (body, c))
  | Ast.Sfor (init, cond, step, body) ->
    let inner = { parent = Some scope; vars = Hashtbl.create 4 } in
    let init =
      match init with
      | None -> None
      | Some s -> (
        match check_stmt fs inner s with
        | [ single ] -> Some single
        | many -> Some { Tast.tsdesc = Tast.TSblock many; tsloc = loc })
    in
    let cond = Option.map (fun c -> decay (check_expr fs inner c)) cond in
    let step =
      Option.map
        (fun s ->
          match check_stmt fs inner s with
          | [ single ] -> single
          | many -> { Tast.tsdesc = Tast.TSblock many; tsloc = loc })
        step
    in
    one (Tast.TSfor (init, cond, step, check_block fs inner body))
  | Ast.Sswitch (e, cases) ->
    let e = decay (check_expr fs scope e) in
    if not (Ty.is_integer (Ty.resolve env e.tty)) then err loc "non-integer switch";
    let cases =
      List.map
        (fun (c : Ast.case) ->
          { Tast.tcval = c.cval; tcbody = check_block fs scope c.cbody; tcloc = c.cloc })
        cases
    in
    one (Tast.TSswitch (e, cases))
  | Ast.Sreturn None ->
    if not (Ty.equal fs.ret Ty.Void) then err loc "return without value";
    one (Tast.TSreturn None)
  | Ast.Sreturn (Some e) ->
    if Ty.equal fs.ret Ty.Void then err loc "return with value in void function";
    let e = coerce env loc fs.ret (decay (check_expr fs scope e)) in
    one (Tast.TSreturn (Some e))
  | Ast.Sbreak -> one Tast.TSbreak
  | Ast.Scontinue -> one Tast.TScontinue
  | Ast.Sblock body -> one (Tast.TSblock (check_block fs scope body))
  | Ast.Sannot a -> one (Tast.TSannot a)

(* -- Programs ------------------------------------------------------------ *)

let builtin_externs : (string * Ty.t * Ty.t list) list =
  (* shared-memory and OS interface the paper's systems rely on; sizes use
     the LP64 model (int shmget(long,long,int), void* shmat(int,void*,int)) *)
  [ ("shmget", Ty.Int, [ Ty.Long; Ty.Long; Ty.Int ]);
    ("shmat", Ty.Ptr Ty.Void, [ Ty.Int; Ty.Ptr Ty.Void; Ty.Int ]);
    ("shmdt", Ty.Int, [ Ty.Ptr Ty.Void ]);
    ("shmctl", Ty.Int, [ Ty.Int; Ty.Int; Ty.Ptr Ty.Void ]);
    ("kill", Ty.Int, [ Ty.Int; Ty.Int ]);
    ("getpid", Ty.Int, []);
    ("InitCheck", Ty.Void, [ Ty.Ptr Ty.Void; Ty.Long ]);
  ]

let check_program (prog : Ast.program) : Tast.program =
  let env = Ty.empty_env () in
  let globals = Hashtbl.create 32 in
  let funcs = Hashtbl.create 32 in
  List.iter (fun (n, r, ps) -> Hashtbl.replace funcs n (r, ps)) builtin_externs;
  (* pass 1: collect type definitions and signatures *)
  List.iter
    (fun d ->
      match d with
      | Ast.Dstruct (name, fields, _) -> Hashtbl.replace env.Ty.structs name fields
      | Ast.Dtypedef (name, ty, _) -> Hashtbl.replace env.Ty.typedefs name ty
      | Ast.Dextern (name, ret, params, _) -> Hashtbl.replace funcs name (ret, params)
      | Ast.Dglobal g -> Hashtbl.replace globals g.gname g.gty
      | Ast.Dfunc f ->
        Hashtbl.replace funcs f.fname (f.fret, List.map (fun p -> p.Ast.pty) f.fparams))
    prog;
  (* resolve struct field types and global/function types *)
  let fix_ty loc ty =
    let fs_dummy =
      { env; globals; funcs; locals = []; counters = Hashtbl.create 1; ret = Ty.Void }
    in
    ignore fs_dummy;
    deep_resolve env loc ty
  in
  Hashtbl.iter
    (fun name fields ->
      let fields =
        List.map (fun (f : Ty.field) -> { f with fty = fix_ty Loc.dummy f.fty }) fields
      in
      Hashtbl.replace env.Ty.structs name fields)
    (Hashtbl.copy env.Ty.structs);
  Hashtbl.iter
    (fun name ty -> Hashtbl.replace globals name (fix_ty Loc.dummy ty))
    (Hashtbl.copy globals);
  Hashtbl.iter
    (fun name (r, ps) ->
      Hashtbl.replace funcs name (fix_ty Loc.dummy r, List.map (fix_ty Loc.dummy) ps))
    (Hashtbl.copy funcs);
  (* pass 2: check bodies *)
  let tglobals = ref [] in
  let tfuncs = ref [] in
  let texterns = ref [] in
  List.iter
    (fun d ->
      match d with
      | Ast.Dstruct _ | Ast.Dtypedef _ -> ()
      | Ast.Dextern (name, ret, params, loc) ->
        texterns :=
          (name, fix_ty loc ret, List.map (fix_ty loc) params) :: !texterns
      | Ast.Dglobal g ->
        let ty = fix_ty g.gloc g.gty in
        let fs =
          { env; globals; funcs; locals = []; counters = Hashtbl.create 4; ret = Ty.Void }
        in
        let init =
          match g.ginit with
          | None -> []
          | Some i -> List.rev (flatten_global_init fs g.gloc ty 0 i [])
        in
        tglobals :=
          { Tast.tg_name = g.gname; tg_ty = ty; tg_init = init; tg_loc = g.gloc }
          :: !tglobals
      | Ast.Dfunc f ->
        let ret = fix_ty f.floc f.fret in
        let fs =
          { env; globals; funcs; locals = []; counters = Hashtbl.create 16; ret }
        in
        let scope = { parent = None; vars = Hashtbl.create 8 } in
        let params =
          List.map
            (fun (p : Ast.param) ->
              let ty = fix_ty f.floc p.pty in
              let uname = fresh_name fs p.pname in
              Hashtbl.replace scope.vars p.pname (uname, ty);
              (uname, ty))
            f.fparams
        in
        let body = check_stmts fs scope f.fbody in
        tfuncs :=
          { Tast.tf_name = f.fname; tf_ret = ret; tf_params = params;
            tf_locals = List.rev fs.locals; tf_body = body; tf_annot = f.fannot;
            tf_loc = f.floc }
          :: !tfuncs)
    prog;
  (* add built-ins that were not explicitly declared *)
  let declared = List.map (fun (n, _, _) -> n) !texterns in
  let defined = List.map (fun f -> f.Tast.tf_name) !tfuncs in
  List.iter
    (fun (n, r, ps) ->
      if not (List.mem n declared || List.mem n defined) then
        texterns := (n, r, ps) :: !texterns)
    builtin_externs;
  { Tast.p_env = env; p_globals = List.rev !tglobals; p_externs = List.rev !texterns;
    p_funcs = List.rev !tfuncs }
