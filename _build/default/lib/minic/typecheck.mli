(** Type checker and elaborator: {!Ast.program} → {!Tast.program}.
    Resolves typedefs, folds [sizeof], inserts array decay and implicit
    conversions, alpha-renames block-scoped locals, desugars brace
    initializers, and rejects constructs outside the MiniC subset. *)

val builtin_externs : (string * Ty.t * Ty.t list) list
(** implicitly declared OS interface: shmget/shmat/shmdt/kill/... *)

val check_program : Ast.program -> Tast.program
(** @raise Loc.Error on type errors *)
