lib/omega/omega.ml: Fmt Linexpr List String
