lib/omega/omega.mli: Format Linexpr
