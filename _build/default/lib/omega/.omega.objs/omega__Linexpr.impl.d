lib/omega/linexpr.ml: Fmt Int List Map Option String
