lib/omega/linexpr.mli: Format Map
