(** Affine integer expressions over named variables, with
    overflow-checked 63-bit arithmetic.

    An expression denotes [const + Σ coeff_i · var_i].  All solver
    arithmetic goes through {!add_ov}/{!mul_ov}; on overflow the solver
    gives up with {!Overflow} and the client treats the query result as
    unknown (conservatively feasible). *)

exception Overflow

let add_ov a b =
  let r = a + b in
  (* overflow iff operands share sign and result differs in sign *)
  if (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0) then raise Overflow;
  r

let mul_ov a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a then raise Overflow;
    r

module Vmap = Map.Make (String)

type t = { coeffs : int Vmap.t; const : int }

let zero = { coeffs = Vmap.empty; const = 0 }

let const c = { coeffs = Vmap.empty; const = c }

let var ?(coeff = 1) v =
  if coeff = 0 then zero else { coeffs = Vmap.singleton v coeff; const = 0 }

let coeff_of t v = Option.value ~default:0 (Vmap.find_opt v t.coeffs)

let normalize_coeffs m = Vmap.filter (fun _ c -> c <> 0) m

let add a b =
  {
    coeffs =
      normalize_coeffs
        (Vmap.union (fun _ x y -> Some (add_ov x y)) a.coeffs b.coeffs);
    const = add_ov a.const b.const;
  }

let scale k t =
  if k = 0 then zero
  else
    { coeffs = Vmap.map (fun c -> mul_ov k c) t.coeffs; const = mul_ov k t.const }

let sub a b = add a (scale (-1) b)

let neg t = scale (-1) t

let is_const t = Vmap.is_empty t.coeffs

let vars t = Vmap.fold (fun v _ acc -> v :: acc) t.coeffs []

(** Substitute [v := e] in [t]. *)
let subst t v e =
  match Vmap.find_opt v t.coeffs with
  | None -> t
  | Some c -> add { t with coeffs = Vmap.remove v t.coeffs } (scale c e)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** gcd of all variable coefficients (0 when constant). *)
let coeff_gcd t = Vmap.fold (fun _ c g -> gcd c g) t.coeffs 0

let equal a b = a.const = b.const && Vmap.equal Int.equal a.coeffs b.coeffs

let compare a b =
  match Int.compare a.const b.const with
  | 0 -> Vmap.compare Int.compare a.coeffs b.coeffs
  | c -> c

let pp ppf t =
  let terms =
    Vmap.bindings t.coeffs
    |> List.map (fun (v, c) ->
           if c = 1 then v else if c = -1 then "-" ^ v else Fmt.str "%d%s" c v)
  in
  let parts = if t.const <> 0 || terms = [] then terms @ [ string_of_int t.const ] else terms in
  Fmt.string ppf (String.concat " + " parts)

(** Evaluate under a full assignment. *)
let eval t (assignment : string -> int) =
  Vmap.fold (fun v c acc -> add_ov acc (mul_ov c (assignment v))) t.coeffs t.const
