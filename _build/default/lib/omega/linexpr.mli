(** Affine integer expressions over named variables with overflow-checked
    63-bit arithmetic: [const + Σ coeffᵢ·varᵢ]. *)

exception Overflow
(** raised by any operation whose result would exceed native-int range;
    the solver treats the query as undecided *)

val add_ov : int -> int -> int
(** overflow-checked addition. @raise Overflow *)

val mul_ov : int -> int -> int
(** overflow-checked multiplication. @raise Overflow *)

module Vmap : Map.S with type key = string

type t = { coeffs : int Vmap.t; const : int }

val zero : t

val const : int -> t

val var : ?coeff:int -> string -> t

val coeff_of : t -> string -> int
(** coefficient of a variable (0 when absent) *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : int -> t -> t

val neg : t -> t

val is_const : t -> bool

val vars : t -> string list

val subst : t -> string -> t -> t
(** [subst t v e] replaces [v] by the expression [e] *)

val gcd : int -> int -> int

val coeff_gcd : t -> int
(** gcd of all variable coefficients; 0 for constant expressions *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val eval : t -> (string -> int) -> int
(** evaluate under a complete assignment. @raise Overflow *)
