lib/safeflow/safeflow.ml: Assume Config Driver Dyntaint Phase1 Phase2 Phase3 Report Shm Summary Synth Vfg
