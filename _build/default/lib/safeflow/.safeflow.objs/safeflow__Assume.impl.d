lib/safeflow/assume.ml: Annot Fmt List Minic Phase1 Pointsto Shm Ssair
