lib/safeflow/assume.mli: Format Phase1 Pointsto Shm Ssair
