lib/safeflow/config.ml:
