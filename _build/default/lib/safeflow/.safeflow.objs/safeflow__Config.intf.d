lib/safeflow/config.mli:
