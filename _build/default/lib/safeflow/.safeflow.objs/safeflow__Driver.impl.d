lib/safeflow/driver.ml: Ast Config List Loc Minic Option Parser Phase1 Phase2 Phase3 Pointsto Report Shm Ssair String Summary Typecheck
