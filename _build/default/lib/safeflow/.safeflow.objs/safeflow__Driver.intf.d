lib/safeflow/driver.mli: Config Minic Phase1 Phase3 Pointsto Report Shm Ssair Summary
