lib/safeflow/dyntaint.ml: Annot Bytes Config Fmt Fun Hashtbl List Loc Minic Shm Ssair String Ty
