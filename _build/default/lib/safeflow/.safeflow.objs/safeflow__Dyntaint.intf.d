lib/safeflow/dyntaint.mli: Config Minic Shm Ssair
