lib/safeflow/phase1.ml: Config Fmt Hashtbl Int64 List Minic Option Pointsto Set Shm Ssair Ty
