lib/safeflow/phase2.ml: Ast Config Fmt Hashtbl Int64 List Minic Omega Option Phase1 Pointsto Report Shm Ssair String Ty
