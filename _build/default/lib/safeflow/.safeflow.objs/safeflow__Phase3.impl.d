lib/safeflow/phase3.ml: Annot Assume Config Fmt Hashtbl List Loc Minic Option Phase1 Pointsto Report Shm Ssair String Ty
