lib/safeflow/report.ml: Fmt List Loc Minic
