lib/safeflow/report.mli: Format Loc Minic
