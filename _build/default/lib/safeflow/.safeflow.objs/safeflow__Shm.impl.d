lib/safeflow/shm.ml: Annot Fmt Hashtbl List Loc Minic Ssair String Ty
