lib/safeflow/shm.mli: Hashtbl Loc Minic Ssair Ty
