lib/safeflow/summary.ml: Annot Assume Config Dataflow Fmt Hashtbl List Loc Minic Option Phase1 Pointsto Queue Report Set Shm Ssair String Ty
