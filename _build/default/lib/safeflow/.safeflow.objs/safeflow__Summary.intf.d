lib/safeflow/summary.mli: Config Format Minic Phase1 Pointsto Report Set Shm Ssair
