lib/safeflow/synth.ml: Buffer Fmt List
