lib/safeflow/synth.mli:
