lib/safeflow/vfg.ml: Buffer Fmt Hashtbl List Phase3 String
