lib/safeflow/vfg.mli: Hashtbl Phase3
