(** Resolution of [assume(core(...))] annotations into monitoring
    assumptions — shared by the exact (per-context) phase 3 engine, the
    summary engine and the dynamic taint tracker. *)

open Minic
module Offset = Pointsto.Offset

type assumption =
  | Aregion of string * int * int  (** region, byte range [lo, hi) assumed core *)
  | Anode of Pointsto.Node.t       (** memory object assumed core (recv buffers) *)

let pp ppf = function
  | Aregion (r, lo, hi) -> Fmt.pf ppf "core(%s[%d..%d))" r lo hi
  | Anode n -> Fmt.pf ppf "core(%a)" Pointsto.Node.pp n

(** Monitoring assumptions contributed by [f]'s own annotations
    (function-level and statement-level). *)
let of_func ~(prog : Ssair.Ir.program) ~(shm : Shm.t) ~(p1 : Phase1.t)
    ~(pts : Pointsto.t) (f : Ssair.Ir.func) : assumption list =
  let env = prog.Ssair.Ir.env in
  let clause_assumptions = function
    | Annot.Assume_core { ptr; off; size } -> (
      let lo = Annot.eval_aexpr env off in
      let hi = lo + Annot.eval_aexpr env size in
      match Shm.region shm ptr with
      | Some _ -> [ Aregion (ptr, lo, hi) ]
      | None ->
        (* a parameter or local pointer: resolve through the shm facts and
           the points-to analysis *)
        let from_regions =
          Phase1.Rset.fold
            (fun tgt acc ->
              match tgt.Phase1.Rtgt.off with
              | Offset.Byte b -> Aregion (tgt.Phase1.Rtgt.region, b + lo, b + hi) :: acc
              | Offset.Top -> acc)
            (Phase1.param_get p1 (f.fname, ptr))
            []
        in
        let from_nodes =
          Pointsto.Tset.fold
            (fun tgt acc -> Anode tgt.Pointsto.Target.node :: acc)
            (Pointsto.pts_get pts (Pointsto.Kparam (f.fname, ptr)))
            []
        in
        from_regions @ from_nodes)
    | _ -> []
  in
  let fn_level = List.concat_map clause_assumptions f.fannot in
  let stmt_level =
    List.concat_map
      (fun (i : Ssair.Ir.instr) ->
        match i.Ssair.Ir.idesc with
        | Ssair.Ir.Annotation { clause; _ } -> clause_assumptions clause
        | _ -> [])
      (Ssair.Ir.all_instrs f)
  in
  fn_level @ stmt_level
