(** Resolution of [assume(core(...))] annotations into monitoring
    assumptions — shared by the exact engine, the summary engine and the
    dynamic taint tracker. *)

type assumption =
  | Aregion of string * int * int  (** region, byte range [lo, hi) assumed core *)
  | Anode of Pointsto.Node.t       (** memory object assumed core (recv buffers) *)

val pp : Format.formatter -> assumption -> unit

val of_func :
  prog:Ssair.Ir.program -> shm:Shm.t -> p1:Phase1.t -> pts:Pointsto.t ->
  Ssair.Ir.func -> assumption list
(** the function's own assumptions (function-level and statement-level
    annotations); region ranges resolved through phase-1 facts and the
    points-to analysis when the annotated pointer is a parameter *)
