(** Analysis configuration.

    The defaults correspond to the paper's tool; the toggles exist for the
    ablation benchmarks (B3) and for debugging. *)

type t = {
  field_sensitive : bool;
      (** track byte offsets into shared-memory regions; off = treat every
          region access as whole-region (more warnings) *)
  context_sensitive : bool;
      (** analyze (function, monitor-assumption-set) pairs separately; off
          = merge assumption sets over all call sites (can lose monitored
          reads and report spurious warnings) *)
  control_deps : bool;
      (** report critical data that is only control-dependent on
          unmonitored non-core values (§3.4.1 false-positive class) *)
  check_restrictions : bool;  (** run phase 2 (P1–P3, A1/A2) *)
  omega_fuel : int;           (** budget for each array-bounds query *)
  critical_sinks : (string * int list) list;
      (** extern functions whose listed argument positions are implicitly
          critical (the paper asserts the pid argument of [kill]) *)
  recv_functions : string list;
      (** message-passing extension (§3.4.3): extern receive calls whose
          buffer argument is tainted when the socket is non-core *)
}

let default =
  {
    field_sensitive = true;
    context_sensitive = true;
    control_deps = true;
    check_restrictions = true;
    omega_fuel = 200_000;
    critical_sinks = [ ("kill", [ 0 ]) ];
    recv_functions = [ "recv" ];
  }
