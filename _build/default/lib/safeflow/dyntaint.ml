(** Dynamic taint tracking on the IR interpreter.

    Shadow state follows one concrete execution: every byte of memory and
    every SSA value carries a taint bit that is set when the value derives
    from an unmonitored read of a non-core shared-memory region and
    propagated through arithmetic, memory and calls.  Monitoring contexts
    are honored dynamically: inside a function annotated
    [assume(core(p, off, size))] (and its callees), reads of the covered
    byte range are clean — mirroring the static semantics on the executed
    path.

    Purpose: differential validation of the static analysis.  On any
    execution, dynamically observed taint must be a subset of what phase 3
    reports statically — every dynamic source site must be a static
    warning site and every dynamic critical-data violation must be a
    static error dependency.  The property tests in
    [test/test_dyntaint.ml] check exactly this. *)

open Minic
module I = Ssair.Interp

type finding = {
  df_sink : string;   (** e.g. "assert(safe(output))" or "argument 0 of kill" *)
  df_func : string;
  df_loc : Loc.t;
}

type result = {
  violations : finding list;          (** tainted critical data observed *)
  read_sites : (Loc.t * string) list; (** dynamic unmonitored non-core reads *)
  ret : I.rtval;                      (** the program's result *)
}

type tracker = {
  prog : Ssair.Ir.program;
  shm : Shm.t;
  config : Config.t;
  vtaint : (int * Ssair.Ir.vid, unit) Hashtbl.t;   (* (frame id, value id) *)
  ptaint : (int * string, unit) Hashtbl.t;         (* (frame id, param) *)
  shadow : (int, Bytes.t) Hashtbl.t;               (* block id -> byte taints *)
  mutable assumptions : (int * (string * int * int) list) list;
      (* stack of (frame id, [(region, lo, hi)]) *)
  mutable exempt_depth : int;   (* >0 while inside an initializing function *)
  mutable pending_args : bool list list;  (* arg taints for in-flight calls *)
  mutable last_ret_taint : bool;
  mutable violations : (string * string * Loc.t) list;
  read_sites : (Loc.t * string, unit) Hashtbl.t;
}

let shadow_of t blk len =
  match Hashtbl.find_opt t.shadow blk with
  | Some b -> b
  | None ->
    let b = Bytes.make len '\000' in
    Hashtbl.replace t.shadow blk b;
    b

let shadow_any t (p : I.ptr) w =
  match Hashtbl.find_opt t.shadow p.I.pblk with
  | None -> false
  | Some b ->
    let rec go i = i < w && (Bytes.get b (p.I.poff + i) <> '\000' || go (i + 1)) in
    (try go 0 with Invalid_argument _ -> false)

let shadow_set t (p : I.ptr) w v (st : I.state) =
  let len =
    match Hashtbl.find_opt st.I.mem p.I.pblk with
    | Some blk -> Bytes.length blk.I.data
    | None -> p.I.poff + w
  in
  let b = shadow_of t p.I.pblk len in
  for i = 0 to w - 1 do
    if p.I.poff + i < Bytes.length b then
      Bytes.set b (p.I.poff + i) (if v then '\001' else '\000')
  done

let shadow_copy t ~(src : I.ptr) ~(dst : I.ptr) w (st : I.state) =
  for i = 0 to w - 1 do
    let bit = shadow_any t { src with I.poff = src.I.poff + i } 1 in
    shadow_set t { dst with I.poff = dst.I.poff + i } 1 bit st
  done

let value_taint t (frame : I.frame) (v : Ssair.Ir.value) : bool =
  match v with
  | Ssair.Ir.Vreg id -> Hashtbl.mem t.vtaint (frame.I.fid, id)
  | Ssair.Ir.Vparam p -> Hashtbl.mem t.ptaint (frame.I.fid, p)
  | _ -> false

let set_vtaint t (frame : I.frame) id v =
  if v then Hashtbl.replace t.vtaint (frame.I.fid, id) ()
  else Hashtbl.remove t.vtaint (frame.I.fid, id)

(* dynamic location of each region: the shm global holds a pointer *)
let region_of t (st : I.state) (p : I.ptr) : (Shm.region * int) option =
  List.find_map
    (fun (r : Shm.region) ->
      match Hashtbl.find_opt st.I.global_addr r.Shm.r_name with
      | None -> None
      | Some gp -> (
        match
          try Some (I.load_scalar st t.prog.Ssair.Ir.env (Ty.Ptr r.Shm.r_elem) gp)
          with I.Trap _ -> None
        with
        | Some (I.VPtr base)
          when base.I.pblk = p.I.pblk
               && p.I.poff >= base.I.poff
               && p.I.poff < base.I.poff + r.Shm.r_size ->
          Some (r, p.I.poff - base.I.poff)
        | _ -> None))
    t.shm.Shm.regions

let covered t region_name ~lo ~hi =
  List.exists
    (fun (_, assums) ->
      List.exists
        (fun (r, alo, ahi) -> String.equal r region_name && alo <= lo && hi <= ahi)
        assums)
    t.assumptions

(* resolve a function's assume(core(...)) clauses against the live frame *)
let resolve_assumptions t (st : I.state) (frame : I.frame) (f : Ssair.Ir.func) :
    (string * int * int) list =
  let env = t.prog.Ssair.Ir.env in
  let clauses =
    f.Ssair.Ir.fannot
    @ List.filter_map
        (fun (i : Ssair.Ir.instr) ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Annotation { clause; _ } -> Some clause
          | _ -> None)
        (Ssair.Ir.all_instrs f)
  in
  List.filter_map
    (fun clause ->
      match clause with
      | Annot.Assume_core { ptr; off; size } -> (
        let lo = Annot.eval_aexpr env off in
        let hi = lo + Annot.eval_aexpr env size in
        match Shm.region t.shm ptr with
        | Some _ -> Some (ptr, lo, hi)
        | None -> (
          (* parameter pointer: resolve its current value *)
          match Hashtbl.find_opt frame.I.params ptr with
          | Some (I.VPtr p) -> (
            match region_of t st p with
            | Some (r, base) -> Some (r.Shm.r_name, base + lo, base + hi)
            | None -> None)
          | _ -> None))
      | _ -> None)
    clauses

let width_of t ty =
  let env = t.prog.Ssair.Ir.env in
  match Ty.resolve env ty with
  | (Ty.Struct _ | Ty.Array _) as agg -> Ty.sizeof env agg
  | sc -> ( try I.scalar_width env sc with I.Trap _ -> 8)

let is_aggregate t ty =
  match Ty.resolve t.prog.Ssair.Ir.env ty with
  | Ty.Struct _ | Ty.Array _ -> true
  | _ -> false

(* -- hook bodies -------------------------------------------------------------- *)

let on_instr t (st : I.state) (frame : I.frame) (i : Ssair.Ir.instr) =
  let operand_taint vs = List.exists (value_taint t frame) vs in
  match i.Ssair.Ir.idesc with
  | Ssair.Ir.Alloca _ -> ()
  | Ssair.Ir.Load { ptr; lty } -> (
    match I.value st frame ptr with
    | I.VPtr p ->
      let w = width_of t lty in
      let mem_taint = shadow_any t p w in
      let source =
        if t.exempt_depth > 0 then None
        else
          match region_of t st p with
          | Some (r, off) when r.Shm.r_noncore ->
            if covered t r.Shm.r_name ~lo:off ~hi:(off + w) then None
            else Some r.Shm.r_name
          | _ -> None
      in
      (match source with
      | Some region -> Hashtbl.replace t.read_sites (i.Ssair.Ir.iloc, region) ()
      | None -> ());
      let tainted = mem_taint || source <> None || value_taint t frame ptr in
      (* aggregate loads materialize a fresh block: propagate its shadow *)
      if is_aggregate t lty then begin
        match Hashtbl.find_opt frame.I.regs i.Ssair.Ir.iid with
        | Some (I.VPtr tmp) ->
          shadow_copy t ~src:p ~dst:tmp (width_of t lty) st;
          if source <> None then shadow_set t tmp (width_of t lty) true st
        | _ -> ()
      end;
      set_vtaint t frame i.Ssair.Ir.iid tainted
    | _ -> ())
  | Ssair.Ir.Store { ptr; sval; sty } -> (
    match I.value st frame ptr with
    | I.VPtr p ->
      let w = width_of t sty in
      if is_aggregate t sty then begin
        match I.value st frame sval with
        | I.VPtr src -> shadow_copy t ~src ~dst:p w st
        | _ -> ()
      end
      else
        (* strong update: dynamic execution knows the exact cell *)
        shadow_set t p w (value_taint t frame sval) st
    | _ -> ())
  | Ssair.Ir.Binop { lhs; rhs; _ } ->
    set_vtaint t frame i.Ssair.Ir.iid (operand_taint [ lhs; rhs ])
  | Ssair.Ir.Unop { operand; _ } ->
    set_vtaint t frame i.Ssair.Ir.iid (operand_taint [ operand ])
  | Ssair.Ir.Cast { cval; _ } -> set_vtaint t frame i.Ssair.Ir.iid (operand_taint [ cval ])
  | Ssair.Ir.Gep { base; idx; _ } ->
    set_vtaint t frame i.Ssair.Ir.iid (operand_taint [ base; idx ])
  | Ssair.Ir.Annotation { clause = Annot.Assert_safe x; aval = Some v } ->
    if value_taint t frame v then
      t.violations <-
        (Fmt.str "assert(safe(%s))" x, frame.I.func.Ssair.Ir.fname, i.Ssair.Ir.iloc)
        :: t.violations
  | Ssair.Ir.Annotation _ -> ()
  | Ssair.Ir.Call { callee; args; rty } ->
    (* implicit critical sinks (the kill pid) *)
    (match List.assoc_opt callee t.config.Config.critical_sinks with
    | Some indices ->
      List.iter
        (fun k ->
          match List.nth_opt args k with
          | Some arg when value_taint t frame arg ->
            t.violations <-
              ( Fmt.str "argument %d of %s" k callee,
                frame.I.func.Ssair.Ir.fname,
                i.Ssair.Ir.iloc )
              :: t.violations
          | _ -> ())
        indices
    | None -> ());
    (* consume the pending argument-taint record *)
    let arg_taints =
      match t.pending_args with
      | top :: rest ->
        t.pending_args <- rest;
        top
      | [] -> []
    in
    let taint =
      match Ssair.Ir.find_func t.prog callee with
      | Some _ -> t.last_ret_taint
      | None -> List.exists Fun.id arg_taints (* extern: conservative *)
    in
    if not (Ty.equal rty Ty.Void) then set_vtaint t frame i.Ssair.Ir.iid taint

let on_call t (_st : I.state) (frame : I.frame) (i : Ssair.Ir.instr) =
  match i.Ssair.Ir.idesc with
  | Ssair.Ir.Call { args; _ } ->
    t.pending_args <- List.map (value_taint t frame) args :: t.pending_args
  | _ -> ()

let on_enter t (st : I.state) (_caller : I.frame option) (_args : I.rtval list)
    (frame : I.frame) =
  (* bind parameter taints from the caller's pending record *)
  (match t.pending_args with
  | top :: _ ->
    List.iteri
      (fun k taint ->
        match List.nth_opt frame.I.func.Ssair.Ir.fparams k with
        | Some (pname, _) ->
          if taint then Hashtbl.replace t.ptaint (frame.I.fid, pname) ()
        | None -> ())
      top
  | [] -> ());
  if Shm.is_init_func t.shm frame.I.func.Ssair.Ir.fname then
    t.exempt_depth <- t.exempt_depth + 1;
  let assums = resolve_assumptions t st frame frame.I.func in
  t.assumptions <- (frame.I.fid, assums) :: t.assumptions

let on_exit t (_st : I.state) (frame : I.frame) (ret : I.rtval) =
  (match t.assumptions with
  | (fid, _) :: rest when fid = frame.I.fid -> t.assumptions <- rest
  | _ -> ());
  if Shm.is_init_func t.shm frame.I.func.Ssair.Ir.fname then
    t.exempt_depth <- t.exempt_depth - 1;
  ignore ret;
  (* return-value taint: the Ret operand's taint in this frame *)
  let rt =
    List.exists
      (fun (b : Ssair.Ir.block) ->
        match b.Ssair.Ir.termin with
        | Ssair.Ir.Ret (Some v) -> value_taint t frame v
        | _ -> false)
      frame.I.func.Ssair.Ir.blocks
  in
  t.last_ret_taint <- rt

(* -- entry point ---------------------------------------------------------------- *)

(** Execute [prog] under taint tracking.  [extern_handler] supplies the
    environment; extern results are treated as clean unless their
    arguments were tainted. *)
let run ?(config = Config.default) ?extern_handler ?max_steps
    (prog : Ssair.Ir.program) (shm : Shm.t) : result =
  let st = I.create ?extern_handler ?max_steps prog in
  let t =
    {
      prog;
      shm;
      config;
      vtaint = Hashtbl.create 1024;
      ptaint = Hashtbl.create 64;
      shadow = Hashtbl.create 64;
      assumptions = [];
      exempt_depth = 0;
      pending_args = [];
      last_ret_taint = false;
      violations = [];
      read_sites = Hashtbl.create 32;
    }
  in
  I.set_hooks st ~on_enter:(on_enter t) ~on_exit:(on_exit t) ~on_instr:(on_instr t)
    ~on_call:(on_call t);
  I.init_globals st;
  (* a trapped run (fuel exhaustion on the infinite control loop, an
     injected fault) still yields the taint observed so far *)
  let ret = try I.run_state st ~entry:"main" [] with I.Trap _ -> I.VUndef in
  {
    violations =
      List.rev_map
        (fun (sink, func, loc) -> { df_sink = sink; df_func = func; df_loc = loc })
        t.violations
      |> List.sort_uniq compare;
    read_sites = Hashtbl.fold (fun k () acc -> k :: acc) t.read_sites [] |> List.sort compare;
    ret;
  }
