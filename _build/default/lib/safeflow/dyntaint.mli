(** Dynamic taint tracking on the IR interpreter — differential
    validation of the static analysis.

    Shadow taint (per memory byte, per SSA value) follows one concrete
    execution; monitoring contexts are honored on the executed path.  On
    any run, the observed taint must be a subset of the static report:
    dynamic source sites ⊆ static warnings, dynamic critical-data
    violations ⊆ static error dependencies. *)

type finding = {
  df_sink : string;  (** e.g. "assert(safe(output))" or "argument 0 of kill" *)
  df_func : string;
  df_loc : Minic.Loc.t;
}

type result = {
  violations : finding list;
  read_sites : (Minic.Loc.t * string) list;
      (** dynamically observed unmonitored non-core reads (site, region) *)
  ret : Ssair.Interp.rtval;
}

val run :
  ?config:Config.t ->
  ?extern_handler:(Ssair.Interp.state -> string -> Ssair.Interp.rtval list -> Ssair.Interp.rtval) ->
  ?max_steps:int ->
  Ssair.Ir.program ->
  Shm.t ->
  result
(** Execute [main] under taint tracking.  A trapped run (fuel exhaustion,
    injected fault) still returns the taint observed so far. *)
