(** Diagnostics emitted by the SafeFlow analysis.

    Terminology follows the paper's evaluation (§4):
    - a {e warning} is an unmonitored read of a non-core shared-memory
      value by the core component (reported "without any false positives
      or false negatives");
    - an {e error dependency} is critical data that is {b data}-dependent
      on an unmonitored non-core value;
    - a {e control dependency} is critical data that is only
      {b control}-dependent on such a value — the class the paper found to
      account for all its false positives, requiring manual review of the
      value-flow graph. *)

open Minic

type restriction = P1 | P2 | P3 | A1 | A2

let pp_restriction ppf r =
  Fmt.string ppf (match r with P1 -> "P1" | P2 -> "P2" | P3 -> "P3" | A1 -> "A1" | A2 -> "A2")

type violation = {
  v_rule : restriction;
  v_func : string;
  v_loc : Loc.t;
  v_msg : string;
}

type warning = {
  w_func : string;          (** core-component function performing the read *)
  w_region : string;        (** non-core shared-memory region *)
  w_loc : Loc.t;
  w_context : string list;  (** monitor-assumption context (region names assumed core) *)
}

type dep_kind =
  | Data          (** value flows into the critical computation *)
  | Control_only  (** only the control flow depends on the non-core value *)

let pp_dep_kind ppf = function
  | Data -> Fmt.string ppf "data"
  | Control_only -> Fmt.string ppf "control-only"

type dependency = {
  d_kind : dep_kind;
  d_sink : string;   (** description of the critical datum (assert or sink) *)
  d_func : string;
  d_loc : Loc.t;     (** location of the assert / sink call *)
  d_trace : string list;  (** one value-flow path, source first *)
}

type t = {
  violations : violation list;
  warnings : warning list;
  dependencies : dependency list;
  regions : (string * int * bool) list;  (** name, size, noncore *)
  annotation_lines : int;  (** number of annotation clauses in the program *)
  stats : (string * int) list;  (** misc counters for the benchmark harness *)
}

let errors t = List.filter (fun d -> d.d_kind = Data) t.dependencies
let control_deps t = List.filter (fun d -> d.d_kind = Control_only) t.dependencies

let pp_violation ppf v =
  Fmt.pf ppf "restriction %a violated in %s at %a: %s" pp_restriction v.v_rule v.v_func
    Loc.pp v.v_loc v.v_msg

let pp_warning ppf w =
  Fmt.pf ppf "warning: unmonitored non-core read of region '%s' in %s at %a" w.w_region
    w.w_func Loc.pp w.w_loc

let pp_dependency ppf d =
  Fmt.pf ppf "%a dependency: %s in %s at %a@,  flow: %a"
    pp_dep_kind d.d_kind d.d_sink d.d_func Loc.pp d.d_loc
    Fmt.(list ~sep:(any " ->@ ") string)
    d.d_trace

let pp ppf t =
  Fmt.pf ppf "@[<v>== SafeFlow report ==@,";
  Fmt.pf ppf "shared-memory regions:@,";
  List.iter
    (fun (n, sz, nc) ->
      Fmt.pf ppf "  %s: %d bytes%s@," n sz (if nc then " [noncore]" else " [core]"))
    t.regions;
  if t.violations <> [] then begin
    Fmt.pf ppf "restriction violations (%d):@," (List.length t.violations);
    List.iter (fun v -> Fmt.pf ppf "  %a@," pp_violation v) t.violations
  end;
  Fmt.pf ppf "warnings (%d):@," (List.length t.warnings);
  List.iter (fun w -> Fmt.pf ppf "  %a@," pp_warning w) t.warnings;
  let errs = errors t and ctrl = control_deps t in
  Fmt.pf ppf "error dependencies (%d):@," (List.length errs);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_dependency d) errs;
  Fmt.pf ppf "control-only dependencies — candidate false positives (%d):@,"
    (List.length ctrl);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_dependency d) ctrl;
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" pp t
