(** Shared-memory region model (paper §3.2.1).

    Regions are declared by the post-conditions of initializing functions
    (annotated [shminit]): [assume(shmvar(p, size))] binds the global
    pointer [p] to a fresh region of [size] bytes, and [assume(noncore(p))]
    marks that region writable by non-core components.

    The run-time [InitCheck] the paper inserts — verifying that the
    declared regions do not overlap — is implemented here by executing the
    initializing function in the IR interpreter with a simulated [shmat]
    and checking the resulting pointer layout. *)

open Minic

type region = {
  r_name : string;  (** the shm pointer global naming the region *)
  r_size : int;     (** bytes *)
  r_noncore : bool;
  r_elem : Ty.t;    (** pointee type of the region pointer *)
  r_loc : Loc.t;
}

type t = {
  regions : region list;
  init_funcs : string list;  (** functions annotated shminit *)
  by_name : (string, region) Hashtbl.t;
}

let region t name = Hashtbl.find_opt t.by_name name

let is_init_func t f = List.mem f t.init_funcs

(** Discover regions from the program's shminit functions. *)
let discover (prog : Ssair.Ir.program) : t =
  let env = prog.Ssair.Ir.env in
  let regions = ref [] in
  let init_funcs = ref [] in
  List.iter
    (fun (f : Ssair.Ir.func) ->
      (* function-level annotations plus statement-level post-conditions
         written at the end of the initializing function (Figure 3) *)
      let body_clauses =
        List.filter_map
          (fun (i : Ssair.Ir.instr) ->
            match i.Ssair.Ir.idesc with
            | Ssair.Ir.Annotation { clause; _ } -> Some clause
            | _ -> None)
          (Ssair.Ir.all_instrs f)
      in
      let clauses = f.fannot @ body_clauses in
      let is_init = List.exists (fun c -> c = Annot.Shminit) clauses in
      if is_init then begin
        init_funcs := f.fname :: !init_funcs;
        let noncore_names =
          List.filter_map (function Annot.Noncore p -> Some p | _ -> None) clauses
        in
        List.iter
          (function
            | Annot.Shmvar { ptr; size } ->
              let sz = Annot.eval_aexpr env size in
              let elem =
                match
                  List.find_opt (fun (g, _, _) -> String.equal g ptr) prog.Ssair.Ir.globals
                with
                | Some (_, Ty.Ptr t, _) -> Ty.resolve env t
                | _ -> Ty.Char
              in
              regions :=
                {
                  r_name = ptr;
                  r_size = sz;
                  r_noncore = List.mem ptr noncore_names;
                  r_elem = elem;
                  r_loc = f.floc;
                }
                :: !regions
            | _ -> ())
          clauses
      end)
    prog.Ssair.Ir.funcs;
  let by_name = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace by_name r.r_name r) !regions;
  { regions = List.rev !regions; init_funcs = !init_funcs; by_name }

(** Number of elements when the region is used as an array of its pointee
    type (paper: "the size of the array ... inferred by dividing the size
    of the shared memory by the size of the type"). *)
let array_length env r =
  let esz = max 1 (Ty.sizeof env r.r_elem) in
  r.r_size / esz

(* -- InitCheck -------------------------------------------------------------- *)

exception Init_check_failed of string

(** Execute the initializing function under the interpreter, providing
    [shmget]/[shmat] (one contiguous segment) and a tolerant stub for any
    other extern call, then verify that the regions bound to the shm
    globals are disjoint and within the attached segment.

    Returns the region layout [(name, start-offset, size)] on success.
    Raises [Init_check_failed] — the paper terminates the core component
    before bootstrap in that case. *)
let run_init_check (prog : Ssair.Ir.program) (t : t) : (string * int * int) list =
  match t.init_funcs with
  | [] -> []
  | init :: _ ->
    let seg_size =
      List.fold_left (fun acc r -> acc + r.r_size) 0 t.regions + 4096
    in
    let seg = ref None in
    let handler st name args =
      match (name, args) with
      | "shmget", _ -> Ssair.Interp.VInt 42L
      | "shmat", _ ->
        let p = Ssair.Interp.alloc_block st "shm-segment" seg_size in
        seg := Some p;
        Ssair.Interp.VPtr p
      | _ ->
        (* other externs during init (locks, logging) are no-ops *)
        Ssair.Interp.VInt 0L
    in
    let st = Ssair.Interp.create ~extern_handler:handler prog in
    Ssair.Interp.init_globals st;
    ignore (Ssair.Interp.run_state st ~entry:init []);
    let seg_block =
      match !seg with
      | Some p -> p.Ssair.Interp.pblk
      | None -> raise (Init_check_failed "initializing function never called shmat")
    in
    let layout =
      List.map
        (fun r ->
          let gp = Ssair.Interp.global_ptr st r.r_name in
          (* the global holds a pointer into the segment *)
          match
            Ssair.Interp.load_scalar st prog.Ssair.Ir.env
              (Ty.Ptr r.r_elem) gp
          with
          | Ssair.Interp.VPtr p when p.Ssair.Interp.pblk = seg_block ->
            if p.Ssair.Interp.poff + r.r_size > seg_size then
              raise
                (Init_check_failed
                   (Fmt.str "region %s exceeds the shared segment" r.r_name));
            (r.r_name, p.Ssair.Interp.poff, r.r_size)
          | Ssair.Interp.VPtr _ ->
            raise
              (Init_check_failed
                 (Fmt.str "region %s does not point into the shared segment" r.r_name))
          | _ ->
            raise
              (Init_check_failed (Fmt.str "region %s pointer left uninitialized" r.r_name)))
        t.regions
    in
    (* pairwise disjointness *)
    let rec pairs = function
      | [] -> ()
      | (n1, o1, s1) :: rest ->
        List.iter
          (fun (n2, o2, s2) ->
            let disjoint = o1 + s1 <= o2 || o2 + s2 <= o1 in
            if not disjoint then
              raise
                (Init_check_failed (Fmt.str "regions %s and %s overlap" n1 n2)))
          rest;
        pairs rest
    in
    pairs layout;
    layout
