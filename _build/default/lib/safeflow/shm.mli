(** Shared-memory region model (§3.2.1): regions are declared by the
    post-conditions of initializing functions ([shminit] / [shmvar] /
    [noncore]); {!run_init_check} implements the paper's one-time
    run-time InitCheck by executing the initializer on the interpreter
    and verifying the layout. *)

open Minic

type region = {
  r_name : string;   (** the shm-pointer global naming the region *)
  r_size : int;      (** bytes *)
  r_noncore : bool;  (** writable by non-core components *)
  r_elem : Ty.t;     (** pointee type (array element) *)
  r_loc : Loc.t;
}

type t = {
  regions : region list;
  init_funcs : string list;
  by_name : (string, region) Hashtbl.t;
}

val region : t -> string -> region option

val is_init_func : t -> string -> bool

val discover : Ssair.Ir.program -> t

val array_length : Ty.env -> region -> int
(** element count when the region is indexed as an array of its pointee
    type (size / sizeof(elem), per §3.2.1) *)

exception Init_check_failed of string

val run_init_check : Ssair.Ir.program -> t -> (string * int * int) list
(** Execute the initializing function with a simulated [shmat]; return
    the verified layout [(region, offset, size)].
    @raise Init_check_failed on overlap, escape or missing initialization
    — the paper terminates the core component before bootstrap. *)
