(** Summary-based value-flow engine — the ESP-style optimization sketched
    at the end of paper §3.3: per-function value-flow summaries (return
    and critical-sink dependencies on parameters, read sites and memory
    objects) inlined at call sites in a bottom-up pass over call-graph
    SCCs.

    Warnings match the exact engine; data dependencies match wherever
    every read site has uniform monitoring coverage across the contexts
    reaching it (and are conservative otherwise); control-only
    dependencies are not computed. *)

type source =
  | Sparam of string
  | Ssite of Minic.Loc.t * string
  | Ssocket of Minic.Loc.t * string

module Srcset : Set.S with type elt = source

type result = {
  warnings : Report.warning list;
  dependencies : Report.dependency list;  (** data dependencies only *)
  passes : int;
}

val pp_source : Format.formatter -> source -> unit

val run :
  ?config:Config.t -> Ssair.Ir.program -> Shm.t -> Phase1.t -> Pointsto.t -> result
