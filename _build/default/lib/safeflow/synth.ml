(** Synthetic core-component generator for the scalability benchmarks
    (experiment B2).

    Generates MiniC core components with a configurable number of shared
    regions, worker functions and call-chain depth.  Workers read the
    regions (a configurable fraction through monitoring functions),
    massage the values through local arithmetic and feed a critical
    output; the result is a family of programs whose analysis cost can be
    plotted against size. *)

type params = {
  regions : int;        (** shared-memory regions *)
  workers : int;        (** worker functions *)
  chain_depth : int;    (** helpers called under each worker *)
  monitored_fraction : float;  (** fraction of workers that monitor *)
}

let default = { regions = 4; workers = 8; chain_depth = 2; monitored_fraction = 0.5 }

let buf_add = Buffer.add_string

let generate (p : params) : string =
  let b = Buffer.create 4096 in
  buf_add b "struct Block { double a; double bfield; double c; long seq; };\n";
  buf_add b "typedef struct Block Block;\n\n";
  for r = 0 to p.regions - 1 do
    buf_add b (Fmt.str "Block *region%d;\n" r)
  done;
  buf_add b "\nextern void sendControl(double v);\n";
  buf_add b "extern void log_event(char *m, double v);\n\n";
  (* init function *)
  buf_add b "void initShm()\n/*** SafeFlow Annotation shminit ***/\n{\n";
  buf_add b "  int id;\n  void *base;\n  char *cursor;\n";
  buf_add b
    (Fmt.str "  id = shmget(6000, %d * sizeof(Block), 438);\n" p.regions);
  buf_add b "  base = shmat(id, (void *) 0, 0);\n  cursor = (char *) base;\n";
  for r = 0 to p.regions - 1 do
    buf_add b (Fmt.str "  region%d = (Block *) cursor;\n" r);
    if r < p.regions - 1 then buf_add b "  cursor = cursor + sizeof(Block);\n"
  done;
  buf_add b "  /*** SafeFlow Annotation\n";
  for r = 0 to p.regions - 1 do
    buf_add b (Fmt.str "       assume(shmvar(region%d, sizeof(Block)))\n" r)
  done;
  for r = 0 to p.regions - 1 do
    buf_add b (Fmt.str "       assume(noncore(region%d))\n" r)
  done;
  buf_add b "  ***/\n}\n\n";
  (* helper chains: pure local arithmetic *)
  for w = 0 to p.workers - 1 do
    for d = p.chain_depth - 1 downto 0 do
      if d = p.chain_depth - 1 then
        buf_add b
          (Fmt.str
             "double helper_%d_%d(double x)\n{\n  double y = x * 1.01 + 0.5;\n  int i;\n  for (i = 0; i < 4; i++) {\n    y = y * 0.99 + x * 0.01;\n  }\n  return y;\n}\n\n"
             w d)
      else
        buf_add b
          (Fmt.str
             "double helper_%d_%d(double x)\n{\n  double y = helper_%d_%d(x) - 0.25;\n  if (y > 10.0) {\n    y = 10.0;\n  }\n  return y;\n}\n\n"
             w d w (d + 1))
    done;
    let region = w mod p.regions in
    let monitored =
      float_of_int w < (p.monitored_fraction *. float_of_int p.workers) -. 1e-9
    in
    if monitored then
      buf_add b
        (Fmt.str
           "double worker%d()\n/*** SafeFlow Annotation assume(core(region%d, 0, sizeof(Block))) ***/\n{\n  double v = region%d->a;\n  if (v > 5.0 || v < -5.0) {\n    return 0.0;\n  }\n  return helper_%d_0(v);\n}\n\n"
           w region region w)
    else
      buf_add b
        (Fmt.str
           "double worker%d()\n{\n  double v = region%d->bfield;\n  return helper_%d_0(v);\n}\n\n"
           w region w)
  done;
  (* main: combine everything *)
  buf_add b "int main()\n{\n  double total = 0.0;\n  long tick = 0;\n";
  buf_add b "  initShm();\n  while (tick < 1000) {\n";
  for w = 0 to p.workers - 1 do
    buf_add b (Fmt.str "    total = total + worker%d();\n" w)
  done;
  buf_add b "    /*** SafeFlow Annotation assert(safe(total)) ***/\n";
  buf_add b "    sendControl(total);\n    total = 0.0;\n    tick = tick + 1;\n  }\n";
  buf_add b "  return 0;\n}\n";
  Buffer.contents b

(** Scale by a single knob: worker count (size grows roughly linearly). *)
let of_size n =
  generate { default with workers = n; regions = max 2 (n / 4); chain_depth = 3 }

(** Worst-case workload for the exact phase-3 engine: a binary tree of
    monitoring functions.  Each level contributes two alternative
    monitors with distinct assumptions, both calling into the next level,
    so the number of distinct monitoring contexts reaching the leaves is
    2^depth — the paper's "exponential in run-time complexity" case.  The
    summary engine (B4) stays polynomial in per-instruction work. *)
let context_explosion ~depth : string =
  let b = Buffer.create 4096 in
  buf_add b "struct Block { double a; double bfield; };\n";
  buf_add b "typedef struct Block Block;\n\n";
  let nregions = 2 * depth in
  for r = 0 to nregions - 1 do
    buf_add b (Fmt.str "Block *region%d;\n" r)
  done;
  buf_add b "\nextern void sendControl(double v);\n\n";
  buf_add b "void initShm()\n/*** SafeFlow Annotation shminit ***/\n{\n";
  buf_add b "  int id;\n  void *base;\n  char *cursor;\n";
  buf_add b (Fmt.str "  id = shmget(6500, %d * sizeof(Block), 438);\n" nregions);
  buf_add b "  base = shmat(id, (void *) 0, 0);\n  cursor = (char *) base;\n";
  for r = 0 to nregions - 1 do
    buf_add b (Fmt.str "  region%d = (Block *) cursor;\n" r);
    if r < nregions - 1 then buf_add b "  cursor = cursor + sizeof(Block);\n"
  done;
  buf_add b "  /*** SafeFlow Annotation\n";
  for r = 0 to nregions - 1 do
    buf_add b (Fmt.str "       assume(shmvar(region%d, sizeof(Block)))\n" r)
  done;
  for r = 0 to nregions - 1 do
    buf_add b (Fmt.str "       assume(noncore(region%d))\n" r)
  done;
  buf_add b "  ***/\n}\n\n";
  (* the leaf does some arithmetic on a monitored read of region 0 *)
  buf_add b
    "double leaf()\n{\n  double v = region0->a;\n  if (v > 5.0 || v < -5.0) {\n    return 0.0;\n  }\n  return v * 0.5;\n}\n\n";
  (* levels from the bottom up: level d has two monitors calling level d+1 *)
  for level = depth - 1 downto 0 do
    let callee side =
      if level = depth - 1 then "leaf()"
      else Fmt.str "m%c%d()" side (level + 1)
    in
    List.iteri
      (fun k side ->
        let region = (2 * level) + k in
        buf_add b
          (Fmt.str
             "double m%c%d()\n/*** SafeFlow Annotation assume(core(region%d, 0, sizeof(Block))) ***/\n{\n  double v = %s + %s;\n  if (v > 10.0) {\n    v = 10.0;\n  }\n  return v;\n}\n\n"
             side level region (callee 'A') (callee 'B')))
      [ 'A'; 'B' ]
  done;
  buf_add b
    "int main()\n{\n  double total;\n  initShm();\n  total = mA0() + mB0();\n\
     \  /*** SafeFlow Annotation assert(safe(total)) ***/\n  sendControl(total);\n\
     \  return 0;\n}\n";
  Buffer.contents b
