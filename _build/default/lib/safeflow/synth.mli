(** Synthetic core-component generator for the scalability benchmarks
    (B2): configurable region count, worker functions, helper-chain depth
    and monitored fraction. *)

type params = {
  regions : int;
  workers : int;
  chain_depth : int;
  monitored_fraction : float;
}

val default : params

val generate : params -> string
(** MiniC source of a synthetic core component *)

val of_size : int -> string
(** single-knob scaling: worker count (size grows roughly linearly) *)

val context_explosion : depth:int -> string
(** binary tree of monitoring functions: 2^depth distinct monitoring
    contexts reach the leaf — the exact engine's exponential case (B4) *)
