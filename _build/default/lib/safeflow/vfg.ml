(** Value-flow-graph export.

    The paper requires the reported errors to be "verified using the value
    flow graphs manually" (§1, §4).  This module renders the taint state
    of {!Phase3} as a DOT graph: nodes are tainted entities (values,
    parameters, returns, memory objects, non-core regions), edges follow
    the recorded propagation origins. *)

let dot_id = ref 0

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> " " | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(** Render one taint table (data or control) as DOT. *)
let table_to_dot ~name (table : (Phase3.entity, Phase3.origin) Hashtbl.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Fmt.str "digraph %s {\n  rankdir=LR;\n  node [shape=box];\n" name);
  let ids = Hashtbl.create 64 in
  let node_id e =
    match Hashtbl.find_opt ids e with
    | Some i -> i
    | None ->
      incr dot_id;
      let i = !dot_id in
      Hashtbl.replace ids e i;
      let shape =
        match e with
        | Phase3.Eregion _ -> "ellipse, style=filled, fillcolor=\"#f4cccc\""
        | Phase3.Enode _ -> "box, style=filled, fillcolor=\"#fff2cc\""
        | _ -> "box"
      in
      Buffer.add_string buf
        (Fmt.str "  n%d [label=\"%s\", shape=%s];\n" i
           (escape (Fmt.str "%a" Phase3.pp_entity e))
           shape);
      i
  in
  Hashtbl.iter
    (fun e (o : Phase3.origin) ->
      let dst = node_id e in
      match o.parent with
      | Some p ->
        let src = node_id p in
        Buffer.add_string buf
          (Fmt.str "  n%d -> n%d [label=\"%s\"];\n" src dst (escape o.why))
      | None ->
        Buffer.add_string buf (Fmt.str "  n%d [color=red];\n" dst))
    table;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** DOT rendering of the full value-flow graph of a phase-3 result
    (data-flow edges; control taint in a second cluster). *)
let to_dot (r : Phase3.result) : string =
  table_to_dot ~name:"value_flow" r.Phase3.taint_state.Phase3.data

let control_to_dot (r : Phase3.result) : string =
  table_to_dot ~name:"control_flow" r.Phase3.taint_state.Phase3.ctrl

let write_dot path (r : Phase3.result) =
  let oc = open_out path in
  output_string oc (to_dot r);
  close_out oc
