(** Value-flow-graph export: DOT rendering of the taint state, used for
    the manual review of reported dependencies the paper requires
    (§1, §4). *)

val table_to_dot :
  name:string -> (Phase3.entity, Phase3.origin) Hashtbl.t -> string

val to_dot : Phase3.result -> string
(** data-flow taint graph *)

val control_to_dot : Phase3.result -> string
(** control-taint graph *)

val write_dot : string -> Phase3.result -> unit
