lib/simplex/simplex.ml: Controller Monitor Plant Shm_rt Sim
