lib/simplex/controller.ml: Array Float Linalg Plant
