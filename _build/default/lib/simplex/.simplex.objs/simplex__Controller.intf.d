lib/simplex/controller.mli: Linalg Plant
