lib/simplex/monitor.ml: Array Controller Float Linalg Plant
