lib/simplex/monitor.mli: Controller Linalg Plant
