lib/simplex/plant.ml: Array Float Fmt Linalg List
