lib/simplex/plant.mli: Linalg
