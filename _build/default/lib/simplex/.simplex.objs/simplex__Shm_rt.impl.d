lib/simplex/shm_rt.ml: Fmt Hashtbl Option
