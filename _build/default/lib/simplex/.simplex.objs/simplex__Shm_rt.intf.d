lib/simplex/shm_rt.mli: Hashtbl
