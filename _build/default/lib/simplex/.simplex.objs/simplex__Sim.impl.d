lib/simplex/sim.ml: Array Controller Float Fmt Int64 Linalg Monitor Plant Shm_rt
