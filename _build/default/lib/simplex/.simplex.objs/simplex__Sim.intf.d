lib/simplex/sim.mli: Controller Linalg Plant
