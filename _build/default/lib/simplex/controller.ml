(** Controllers for the Simplex architecture.

    The {e safety controller} is a conservatively tuned LQR synthesized
    with {!Linalg.dare}; the {e complex controller} stands in for the
    non-core high-performance controller: better tracking when healthy,
    but it can be configured with the failure modes the paper's
    experiments exercise (destabilizing gains, saturated output, NaN
    output, stuck output). *)

type t = {
  cname : string;
  gain : Linalg.mat;  (** 1×n state-feedback gain: u = −K x *)
}

(** Synthesize an LQR controller.  [q_diag] weights the states, [r]
    weights the input. *)
let lqr ~name (plant : Plant.t) ~(q_diag : float array) ~(r : float) : t =
  let n = plant.Plant.state_dim in
  let q = Array.init n (fun i -> Array.init n (fun j -> if i = j then q_diag.(i) else 0.0)) in
  let rm = [| [| r |] |] in
  let p = Linalg.dare plant.Plant.a plant.Plant.b q rm in
  let k = Linalg.lqr_gain plant.Plant.a plant.Plant.b p rm in
  { cname = name; gain = k }

(** The conservative safety (core) controller. *)
let safety (plant : Plant.t) : t =
  let n = plant.Plant.state_dim in
  lqr ~name:"safety-lqr" plant ~q_diag:(Array.make n 1.0) ~r:1.0

(** The aggressive complex (non-core) controller: heavier state weights,
    cheap control — faster convergence, smaller stability margins. *)
let complex (plant : Plant.t) : t =
  let n = plant.Plant.state_dim in
  let q = Array.init n (fun i -> if i = 0 then 80.0 else 20.0) in
  lqr ~name:"complex-lqr" plant ~q_diag:q ~r:0.05

let output (c : t) (x : Linalg.vec) : float =
  -.(Linalg.mat_vec c.gain x).(0)

(** Failure modes for the non-core controller (paper §1: "newer, untested
    components"). *)
type fault =
  | Healthy
  | Destabilizing  (** sign-flipped gain: actively pushes the plant over *)
  | Stuck of float (** output frozen at a constant *)
  | Noisy of float (** bounded white noise added to the output *)
  | Nan_output     (** emits NaN (e.g. uninitialized data race read) *)

let faulty_output (c : t) (fault : fault) (x : Linalg.vec) ~(noise : unit -> float) : float =
  match fault with
  | Healthy -> output c x
  | Destabilizing -> -.(output c x)
  | Stuck v -> v
  | Noisy amp -> output c x +. (amp *. noise ())
  | Nan_output -> Float.nan
