(** Controllers for the Simplex architecture: a conservative LQR safety
    controller and an aggressive complex controller with configurable
    failure modes (the paper's untrusted non-core component). *)

type t = {
  cname : string;
  gain : Linalg.mat;  (** 1×n state feedback: u = −K·x *)
}

val lqr : name:string -> Plant.t -> q_diag:float array -> r:float -> t
(** synthesize an LQR controller via {!Linalg.dare} *)

val safety : Plant.t -> t
(** the conservative core controller *)

val complex : Plant.t -> t
(** the aggressive non-core controller (heavy state weights, cheap
    control) *)

val output : t -> Linalg.vec -> float

(** Failure modes injected into the complex controller. *)
type fault =
  | Healthy
  | Destabilizing   (** sign-flipped gain *)
  | Stuck of float  (** output frozen *)
  | Noisy of float  (** bounded white noise added *)
  | Nan_output      (** emits NaN *)

val faulty_output : t -> fault -> Linalg.vec -> noise:(unit -> float) -> float
