(** Run-time recoverability monitor — the Lyapunov stability envelope of
    the Simplex architecture ([22] in the paper).

    Given the closed-loop system under the safety controller,
    A_c = A − B·K, we solve the discrete Lyapunov equation
    A_cᵀ P A_c − P + Q = 0.  The set { x | xᵀPx ≤ c } is invariant under
    the safety controller, so the system is {e recoverable} from any
    state inside it.  A proposed non-core control output [u] is accepted
    only if the {e predicted next state} A x + B u stays inside the
    envelope (and [u] itself is a sane actuator value). *)

type t = {
  p : Linalg.mat;       (** Lyapunov matrix of the safety closed loop *)
  envelope : float;     (** level c of the invariant set *)
  plant : Plant.t;
  u_min : float;
  u_max : float;
}

(** Build the monitor from the plant and its safety controller.
    [envelope] defaults to the Lyapunov level of the largest admissible
    initial condition (angle 0.3 rad, centered). *)
let make ?(envelope_state : Linalg.vec option) (plant : Plant.t) (safety : Controller.t) : t =
  let n = plant.Plant.state_dim in
  let ac = Linalg.closed_loop plant.Plant.a plant.Plant.b safety.Controller.gain in
  let q = Linalg.identity n in
  let p = Linalg.dlyap ac q in
  let reference =
    match envelope_state with
    | Some x -> x
    | None ->
      (* conservative: the linear Lyapunov argument ignores actuator
         saturation, so the envelope must leave the safety controller
         enough authority to recover with |u| ≤ u_max; higher-order
         plants get a tighter envelope (less control authority per
         unstable mode) *)
      let angle = if n >= 6 then 0.05 else 0.12 in
      let pos = if n >= 6 then 0.12 else 0.3 in
      Array.init n (fun i -> if i = 2 then angle else if i = 0 then pos else 0.0)
  in
  let envelope = Linalg.quadratic_form p reference in
  { p; envelope; plant; u_min = plant.Plant.u_min; u_max = plant.Plant.u_max }

(** Lyapunov value of a state. *)
let value (m : t) (x : Linalg.vec) : float = Linalg.quadratic_form m.p x

let inside (m : t) (x : Linalg.vec) : bool = value m x <= m.envelope

(** The recoverability check applied to a proposed control output: the
    paper's "checkSafety".  Rejects non-finite and out-of-range outputs,
    then requires the one-step prediction to stay inside the envelope. *)
let check (m : t) (x : Linalg.vec) ~(u : float) : bool =
  Float.is_finite u
  && u >= m.u_min -. 1e-9
  && u <= m.u_max +. 1e-9
  &&
  let ax = Linalg.mat_vec m.plant.Plant.a x in
  let bu = Array.map (fun row -> row.(0) *. u) m.plant.Plant.b in
  let next = Linalg.vec_add ax bu in
  value m next <= m.envelope

(** Collision-recoverability monitor for the car-following plant (the
    paper's autonomous-car example): accept an acceleration only if,
    should the lead vehicle brake at [brake] from now on, the ego vehicle
    can still stop outside [min_gap] using the same braking authority. *)
let collision_check ?(min_gap = 8.0) ?(brake = 6.0) ?(horizon = 0.4) (plant : Plant.t)
    (x : Linalg.vec) ~(u : float) : bool =
  Float.is_finite u
  && u >= plant.Plant.u_min -. 1e-9
  && u <= plant.Plant.u_max +. 1e-9
  &&
  let gap = x.(0) and closing = x.(1) and own = x.(2) in
  (* hold the proposed acceleration for [horizon] seconds (lead coasting) *)
  let own1 = own +. (u *. horizon) in
  let gap1 = gap -. ((closing +. (0.5 *. u *. horizon)) *. horizon) in
  let lead1 = own1 -. (closing +. (u *. horizon)) in
  (* worst case afterwards: both brake at full authority *)
  let stop_ego = own1 *. own1 /. (2.0 *. brake) in
  let stop_lead = Float.max 0.0 lead1 *. Float.max 0.0 lead1 /. (2.0 *. brake) in
  gap1 +. stop_lead -. stop_ego >= min_gap
