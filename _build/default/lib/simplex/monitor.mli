(** The run-time recoverability monitor: the Lyapunov stability envelope
    of the safety closed loop (the Simplex architecture's decision
    criterion, [22] in the paper).

    The envelope { x | xᵀPx ≤ c } with P from the discrete Lyapunov
    equation of A − B·K_safety is invariant under the safety controller,
    so any admitted state is recoverable. *)

type t = {
  p : Linalg.mat;
  envelope : float;
  plant : Plant.t;
  u_min : float;
  u_max : float;
}

val make : ?envelope_state:Linalg.vec -> Plant.t -> Controller.t -> t
(** [envelope_state] sets the boundary reference state; the default is a
    conservative deflection that stays recoverable under actuator
    saturation. *)

val value : t -> Linalg.vec -> float
(** Lyapunov value xᵀPx *)

val inside : t -> Linalg.vec -> bool

val check : t -> Linalg.vec -> u:float -> bool
(** the paper's "checkSafety": reject non-finite / out-of-range outputs
    and anything whose one-step prediction leaves the envelope *)

val collision_check :
  ?min_gap:float -> ?brake:float -> ?horizon:float -> Plant.t -> Linalg.vec ->
  u:float -> bool
(** collision-recoverability check for {!Plant.car_following} (the
    paper's autonomous-car monitor): the ego vehicle must be able to stop
    outside [min_gap] even if the lead vehicle brakes hard *)
