(** Discrete-time plant models.

    The paper's systems control an inverted pendulum (Figure 1) and a
    double inverted pendulum; both are supplied here as linearized
    cart-pole models about the upright equilibrium, discretized from the
    continuous dynamics ẋ = Ax + Bu with a truncated matrix exponential.
    A generic LTI constructor supports the "generic Simplex for simple
    plants" configuration of the second system. *)

type t = {
  name : string;
  a : Linalg.mat;  (** discrete-time state matrix *)
  b : Linalg.mat;  (** discrete-time input matrix (single input: n×1) *)
  dt : float;
  u_min : float;   (** actuator saturation, e.g. −5V *)
  u_max : float;
  state_dim : int;
}

(** Discretize ẋ = Ax + Bu with step [dt]:
    A_d = I + A·dt + A²dt²/2 + A³dt³/6 + A⁴dt⁴/24,
    B_d = (I·dt + A·dt²/2 + A²dt³/6 + A³dt⁴/24)·B. *)
let discretize ~(a : Linalg.mat) ~(b : Linalg.mat) ~dt =
  let n, _ = Linalg.dims a in
  let i = Linalg.identity n in
  let term k m = Linalg.scale (Float.pow dt (float_of_int k) /. float_of_int (List.fold_left ( * ) 1 (List.init k (fun x -> x + 1)))) m in
  let a2 = Linalg.mul a a in
  let a3 = Linalg.mul a2 a in
  let a4 = Linalg.mul a3 a in
  let ad =
    List.fold_left Linalg.add i [ term 1 a; term 2 a2; term 3 a3; term 4 a4 ]
  in
  let bint =
    List.fold_left Linalg.add (term 1 i) [ term 2 a; term 3 a2; term 4 a3 ]
  in
  (ad, Linalg.mul bint b)

let make ~name ~a ~b ~dt ?(u_min = -5.0) ?(u_max = 5.0) () =
  let ad, bd = discretize ~a ~b ~dt in
  { name; a = ad; b = bd; dt; u_min; u_max; state_dim = fst (Linalg.dims a) }

(** Linearized cart-pole (inverted pendulum on a trolley), state
    [position; velocity; angle; angular velocity], input = trolley force.
    Parameters: cart mass [mc], pole mass [mp], pole length [l]. *)
let inverted_pendulum ?(mc = 1.0) ?(mp = 0.1) ?(l = 0.5) ?(dt = 0.01) () =
  let g = 9.81 in
  let a =
    [| [| 0.0; 1.0; 0.0; 0.0 |];
       [| 0.0; 0.0; -.(mp *. g) /. mc; 0.0 |];
       [| 0.0; 0.0; 0.0; 1.0 |];
       [| 0.0; 0.0; (mc +. mp) *. g /. (mc *. l); 0.0 |] |]
  in
  let b = [| [| 0.0 |]; [| 1.0 /. mc |]; [| 0.0 |]; [| -1.0 /. (mc *. l) |] |] in
  make ~name:"inverted-pendulum" ~a ~b ~dt ()

(** Linearized double inverted pendulum: two independent poles of
    different lengths hinged on one trolley, state
    [x; ẋ; θ1; θ̇1; θ2; θ̇2].  Small-angle dynamics:
    ẍ = (u − m1·g·θ1 − m2·g·θ2)/mc and θ̈ᵢ = (g·θᵢ − ẍ)/lᵢ.
    Controllable iff l1 ≠ l2; open-loop unstable. *)
let double_inverted_pendulum ?(mc = 1.0) ?(m1 = 0.1) ?(m2 = 0.1) ?(l1 = 0.6) ?(l2 = 0.3)
    ?(dt = 0.005) () =
  let g = 9.81 in
  let xdd = [| 0.0; 0.0; -.(m1 *. g) /. mc; 0.0; -.(m2 *. g) /. mc; 0.0 |] in
  let theta_row l self_col =
    Array.init 6 (fun j ->
        let coupling = -.xdd.(j) /. l in
        if j = self_col then (g /. l) +. coupling else coupling)
  in
  let a =
    [| [| 0.0; 1.0; 0.0; 0.0; 0.0; 0.0 |];
       xdd;
       [| 0.0; 0.0; 0.0; 1.0; 0.0; 0.0 |];
       theta_row l1 2;
       [| 0.0; 0.0; 0.0; 0.0; 0.0; 1.0 |];
       theta_row l2 4 |]
  in
  let b =
    [| [| 0.0 |]; [| 1.0 /. mc |]; [| 0.0 |]; [| -1.0 /. (mc *. l1) |]; [| 0.0 |];
       [| -1.0 /. (mc *. l2) |] |]
  in
  make ~name:"double-inverted-pendulum" ~a ~b ~dt ()

(** A generic stable-izable LTI plant used by the "generic Simplex"
    system: a chain of integrators with a configurable instability pole. *)
let generic_lti ?(dim = 3) ?(pole = 0.8) ?(dt = 0.01) () =
  let a =
    Array.init dim (fun i ->
        Array.init dim (fun j ->
            if j = i + 1 then 1.0 else if i = dim - 1 && j = 0 then pole else 0.0))
  in
  let b = Array.init dim (fun i -> [| (if i = dim - 1 then 1.0 else 0.0) |]) in
  make ~name:(Fmt.str "generic-lti-%d" dim) ~a ~b ~dt ()

let saturate t u = Float.min t.u_max (Float.max t.u_min u)

(** One simulation step: x' = A_d x + B_d·sat(u) + w. *)
let step t (x : Linalg.vec) ~(u : float) ~(w : Linalg.vec) : Linalg.vec =
  let u = saturate t u in
  let ax = Linalg.mat_vec t.a x in
  let bu = Array.map (fun row -> row.(0) *. u) t.b in
  Linalg.vec_add (Linalg.vec_add ax bu) w

(** Has the plant left the physically meaningful envelope (fallen over /
    run off the track)? *)
let crashed t (x : Linalg.vec) =
  match t.state_dim with
  | 4 -> Float.abs x.(0) > 2.0 || Float.abs x.(2) > 0.8
  | 6 -> Float.abs x.(0) > 2.0 || Float.abs x.(2) > 0.8 || Float.abs x.(4) > 0.8
  | _ -> Linalg.norm2 x > 100.0

(** Longitudinal car-following model (adaptive cruise): state
    [gap; closing speed; own speed], input = ego acceleration.  The lead
    vehicle's acceleration enters through the disturbance term of
    {!step}.  Linear and open-loop marginally stable (integrators), so
    the interesting safety question is the collision constraint, not
    stabilization. *)
let car_following ?(dt = 0.02) () =
  let a =
    [| [| 0.0; -1.0; 0.0 |];   (* gap' = -closing speed *)
       [| 0.0; 0.0; 0.0 |];    (* closing' = a_ego - a_lead (input/disturbance) *)
       [| 0.0; 0.0; 0.0 |] |]  (* own' = a_ego *)
  in
  let b = [| [| 0.0 |]; [| 1.0 |]; [| 1.0 |] |] in
  make ~name:"car-following" ~a ~b ~dt ~u_min:(-6.0) ~u_max:2.0 ()

(** Has the ego vehicle collided (gap exhausted)? *)
let collided (x : Linalg.vec) = x.(0) <= 0.0
