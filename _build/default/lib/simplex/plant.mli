(** Discrete-time plant models: linearized inverted pendulum (Figure 1 of
    the paper), double inverted pendulum (two poles of different lengths
    on one trolley), and a generic LTI plant for the "generic Simplex"
    configuration.  Continuous dynamics are discretized with a truncated
    matrix exponential. *)

type t = {
  name : string;
  a : Linalg.mat;   (** discrete-time state matrix *)
  b : Linalg.mat;   (** discrete-time input matrix (n×1) *)
  dt : float;
  u_min : float;    (** actuator saturation *)
  u_max : float;
  state_dim : int;
}

val discretize : a:Linalg.mat -> b:Linalg.mat -> dt:float -> Linalg.mat * Linalg.mat
(** 4th-order series approximation of the exact zero-order-hold pair *)

val make :
  name:string -> a:Linalg.mat -> b:Linalg.mat -> dt:float ->
  ?u_min:float -> ?u_max:float -> unit -> t
(** build a plant from continuous-time matrices *)

val inverted_pendulum : ?mc:float -> ?mp:float -> ?l:float -> ?dt:float -> unit -> t
(** linearized cart-pole; state [pos; vel; angle; angvel] *)

val double_inverted_pendulum :
  ?mc:float -> ?m1:float -> ?m2:float -> ?l1:float -> ?l2:float -> ?dt:float ->
  unit -> t
(** two independent poles on one trolley; controllable iff l1 ≠ l2;
    state [x; ẋ; θ1; θ̇1; θ2; θ̇2] *)

val generic_lti : ?dim:int -> ?pole:float -> ?dt:float -> unit -> t

val saturate : t -> float -> float

val step : t -> Linalg.vec -> u:float -> w:Linalg.vec -> Linalg.vec
(** one simulation step x' = A·x + B·sat(u) + w *)

val crashed : t -> Linalg.vec -> bool
(** has the plant left the physically meaningful envelope? *)

val car_following : ?dt:float -> unit -> t
(** longitudinal car-following: state [gap; closing speed; own speed],
    input = ego acceleration; the lead vehicle acts through the
    disturbance *)

val collided : Linalg.vec -> bool
