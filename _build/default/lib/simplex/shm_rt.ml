(** Simulated shared memory between core and non-core components.

    Cells are named, typed slots grouped into regions; non-core regions
    can be overwritten by the (simulated) non-core component at any point
    — including between the core's write and its read-back, which is how
    the paper's "rigged feedback" error becomes exploitable at run time.
    A lock is modeled so scenarios can also violate the synchronization
    protocol deliberately. *)

type value = F of float | I of int

type cell = { mutable v : value; cell_region : string }

type t = {
  cells : (string, cell) Hashtbl.t;
  regions : (string, bool) Hashtbl.t;  (** region → noncore? *)
  mutable locked : bool;
  mutable lock_violations : int;
  mutable noncore_writes : (string * value) list;  (** log, newest first *)
}

let create () =
  {
    cells = Hashtbl.create 16;
    regions = Hashtbl.create 4;
    locked = false;
    lock_violations = 0;
    noncore_writes = [];
  }

let add_region t name ~noncore = Hashtbl.replace t.regions name noncore

let add_cell t ~region name v =
  if not (Hashtbl.mem t.regions region) then invalid_arg "Shm_rt.add_cell: unknown region";
  Hashtbl.replace t.cells name { v; cell_region = region }

let lock t = t.locked <- true
let unlock t = t.locked <- false

let get t name =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c.v
  | None -> invalid_arg (Fmt.str "Shm_rt.get: unknown cell %s" name)

let get_f t name = match get t name with F x -> x | I n -> float_of_int n
let get_i t name = match get t name with I n -> n | F x -> int_of_float x

(** Core-component write (honors the lock by construction). *)
let set t name v =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c.v <- v
  | None -> invalid_arg (Fmt.str "Shm_rt.set: unknown cell %s" name)

(** Non-core component write: allowed into non-core regions; a write into
    a core region or while the core holds the lock is recorded as a
    protocol violation but still performed — non-core encapsulation
    cannot be assumed (paper §3.4.2). *)
let noncore_set t name v =
  match Hashtbl.find_opt t.cells name with
  | Some c ->
    let noncore_region =
      Option.value ~default:false (Hashtbl.find_opt t.regions c.cell_region)
    in
    if t.locked || not noncore_region then t.lock_violations <- t.lock_violations + 1;
    c.v <- v;
    t.noncore_writes <- (name, v) :: t.noncore_writes
  | None -> invalid_arg (Fmt.str "Shm_rt.noncore_set: unknown cell %s" name)
