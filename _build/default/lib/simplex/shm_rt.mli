(** Simulated shared memory between core and non-core components.

    Non-core writes into core regions or under the core's lock are
    recorded as protocol violations but still performed — non-core
    encapsulation cannot be assumed (paper §3.4.2). *)

type value = F of float | I of int

type cell = { mutable v : value; cell_region : string }

type t = {
  cells : (string, cell) Hashtbl.t;
  regions : (string, bool) Hashtbl.t;  (** region → noncore? *)
  mutable locked : bool;
  mutable lock_violations : int;
  mutable noncore_writes : (string * value) list;  (** newest first *)
}

val create : unit -> t

val add_region : t -> string -> noncore:bool -> unit

val add_cell : t -> region:string -> string -> value -> unit

val lock : t -> unit

val unlock : t -> unit

val get : t -> string -> value

val get_f : t -> string -> float

val get_i : t -> string -> int

val set : t -> string -> value -> unit
(** core-component write *)

val noncore_set : t -> string -> value -> unit
(** non-core write: always performed; counted as a violation when it
    targets a core region or races the lock *)
