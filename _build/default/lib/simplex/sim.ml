(** Closed-loop simulation of the Simplex architecture.

    Each period: the core controller publishes the sensor feedback to
    shared memory, computes its own safe control, lets the (simulated)
    non-core controller publish its output, runs the decision module and
    actuates.  Scenarios inject the faults from the paper's evaluation:
    a faulty complex controller, a non-core component that rigs the
    feedback cells to fool the monitor, and a non-core component that
    overwrites the pid cell consumed by a [kill] call. *)

(* deterministic split-mix RNG so simulations are reproducible *)
module Rng = struct
  type t = { mutable s : int64 }

  let create seed = { s = Int64.of_int seed }

  let next t =
    t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
    let z = t.s in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* uniform in [-1, 1] *)
  let uniform t = Int64.to_float (next t) /. 9.223372036854775807e18
end

type scenario =
  | Nominal                       (** healthy complex controller *)
  | Complex_fault of Controller.fault  (** complex controller misbehaves *)
  | Rigged_feedback of int
      (** from the given step, the non-core component overwrites the
          feedback cells the decision module re-reads from shared memory,
          making the recoverability check pass for its own (destabilizing)
          output — the paper's generic-Simplex error *)
  | Kill_pid of int
      (** from the given step, the non-core component overwrites the pid
          cell that the core passes to [kill] — the paper's error found in
          all three systems *)

(** Which decision-module implementation to run. *)
type core_variant =
  | Vulnerable  (** reads the feedback for the check from shared memory
                    (exactly Figure 2: flagged by SafeFlow) *)
  | Fixed       (** uses a local copy of the feedback (the paper's fix) *)

type event =
  | Switched_to_safety of int
  | Switched_to_complex of int
  | Monitor_reject of int
  | Crash of int
  | Core_killed of int  (** the kill(pid) victim was the core itself *)

type result = {
  steps_run : int;
  crashed : bool;
  core_killed : bool;
  safety_engagements : int;
  monitor_rejections : int;
  max_angle : float;
  max_position : float;
  final_state : Linalg.vec;
  events : event list;  (** newest first *)
  cost : float;  (** Σ xᵀx·dt — tracking performance measure *)
}

type config = {
  plant : Plant.t;
  scenario : scenario;
  variant : core_variant;
  steps : int;
  seed : int;
  disturbance : float;  (** magnitude of the per-step state disturbance *)
  x0 : Linalg.vec option;
}

let default_config plant =
  {
    plant;
    scenario = Nominal;
    variant = Fixed;
    steps = 2000;
    seed = 1;
    disturbance = 0.002;
    x0 = None;
  }

let core_pid = 1000
let other_pid = 4242

let run (cfg : config) : result =
  let plant = cfg.plant in
  let n = plant.Plant.state_dim in
  let rng = Rng.create cfg.seed in
  let safety = Controller.safety plant in
  let complex = Controller.complex plant in
  let monitor = Monitor.make plant safety in
  let shm = Shm_rt.create () in
  Shm_rt.add_region shm "fb" ~noncore:true;    (* feedback published for the non-core *)
  Shm_rt.add_region shm "ctl" ~noncore:true;   (* non-core control output *)
  Shm_rt.add_region shm "sys" ~noncore:true;   (* misc: watchdog pid cell *)
  for i = 0 to n - 1 do
    Shm_rt.add_cell shm ~region:"fb" (Fmt.str "x%d" i) (Shm_rt.F 0.0)
  done;
  Shm_rt.add_cell shm ~region:"ctl" "u_nc" (Shm_rt.F 0.0);
  Shm_rt.add_cell shm ~region:"sys" "watchdog_pid" (Shm_rt.I other_pid);
  let x =
    ref
      (match cfg.x0 with
      | Some x -> Array.copy x
      | None -> Array.init n (fun i -> if i = 2 then 0.05 else 0.0))
  in
  let events = ref [] in
  let safety_engagements = ref 0 in
  let monitor_rejections = ref 0 in
  let crashed = ref false in
  let core_killed = ref false in
  let using_complex = ref true in
  let max_angle = ref 0.0 and max_position = ref 0.0 in
  let cost = ref 0.0 in
  let steps_run = ref 0 in
  let complex_fault =
    match cfg.scenario with
    | Complex_fault f -> f
    | Rigged_feedback _ ->
      (* an in-range but destabilizing output: the range check cannot
         reject it, only the envelope check can — which is what the
         rigged feedback defeats *)
      Controller.Stuck (0.9 *. plant.Plant.u_max)
    | _ -> Controller.Healthy
  in
  let step_idx = ref 0 in
  (try
     while !step_idx < cfg.steps do
       let k = !step_idx in
       steps_run := k + 1;
       (* 1. core publishes feedback *)
       Shm_rt.lock shm;
       Array.iteri (fun i xi -> Shm_rt.set shm (Fmt.str "x%d" i) (Shm_rt.F xi)) !x;
       (* core computes its safe control from its own sensor data *)
       let u_safe = Controller.output safety !x in
       Shm_rt.unlock shm;
       (* 2. non-core period: complex controller reads feedback, publishes
          its output; fault scenarios act here *)
       let fb = Array.init n (fun i -> Shm_rt.get_f shm (Fmt.str "x%d" i)) in
       let u_nc =
         Controller.faulty_output complex complex_fault fb ~noise:(fun () ->
             Rng.uniform rng)
       in
       Shm_rt.noncore_set shm "u_nc" (Shm_rt.F u_nc);
       (match cfg.scenario with
       | Rigged_feedback from when k >= from ->
         (* the non-core component rewrites the published feedback to a
            calm state so the monitor's re-read sees no danger *)
         Array.iteri
           (fun i _ -> Shm_rt.noncore_set shm (Fmt.str "x%d" i) (Shm_rt.F 0.0))
           fb
       | Kill_pid from when k >= from ->
         Shm_rt.noncore_set shm "watchdog_pid" (Shm_rt.I core_pid)
       | _ -> ());
       (* 3. decision module *)
       Shm_rt.lock shm;
       let u_nc_read = Shm_rt.get_f shm "u_nc" in
       let check_state =
         match cfg.variant with
         | Vulnerable ->
           (* re-reads the (possibly rigged) shared feedback *)
           Array.init n (fun i -> Shm_rt.get_f shm (Fmt.str "x%d" i))
         | Fixed -> !x (* local copy, per the paper's suggested fix *)
       in
       let ok = Monitor.check monitor check_state ~u:u_nc_read in
       let u_applied =
         if ok then begin
           if not !using_complex then begin
             using_complex := true;
             events := Switched_to_complex k :: !events
           end;
           u_nc_read
         end
         else begin
           incr monitor_rejections;
           events := Monitor_reject k :: !events;
           if !using_complex then begin
             using_complex := false;
             incr safety_engagements;
             events := Switched_to_safety k :: !events
           end;
           u_safe
         end
       in
       Shm_rt.unlock shm;
       (* watchdog: periodically signals the stale non-core process; the
          pid comes from shared memory (the paper's kill error) *)
       if k mod 500 = 499 then begin
         let pid = Shm_rt.get_i shm "watchdog_pid" in
         if pid = core_pid then begin
           core_killed := true;
           events := Core_killed k :: !events;
           raise Exit
         end
       end;
       (* 4. actuate and evolve the plant *)
       let w =
         Array.init n (fun i ->
             if i = 1 || i = n - 1 then cfg.disturbance *. Rng.uniform rng else 0.0)
       in
       x := Plant.step plant !x ~u:u_applied ~w;
       max_angle := Float.max !max_angle (Float.abs !x.(min 2 (n - 1)));
       max_position := Float.max !max_position (Float.abs !x.(0));
       cost := !cost +. (Linalg.dot !x !x *. plant.Plant.dt);
       if Plant.crashed plant !x then begin
         crashed := true;
         events := Crash k :: !events;
         raise Exit
       end;
       incr step_idx
     done
   with Exit -> ());
  {
    steps_run = !steps_run;
    crashed = !crashed;
    core_killed = !core_killed;
    safety_engagements = !safety_engagements;
    monitor_rejections = !monitor_rejections;
    max_angle = !max_angle;
    max_position = !max_position;
    final_state = !x;
    events = !events;
    cost = !cost;
  }
