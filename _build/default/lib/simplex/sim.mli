(** Closed-loop simulation of the Simplex architecture with fault
    injection: the runtime counterpart of the paper's evaluation
    narrative (rigged feedback, kill-pid, faulty complex controllers). *)

(** Deterministic splitmix RNG (reproducible runs). *)
module Rng : sig
  type t

  val create : int -> t

  val next : t -> int64

  val uniform : t -> float
  (** uniform in [-1, 1] *)
end

type scenario =
  | Nominal
  | Complex_fault of Controller.fault
  | Rigged_feedback of int
      (** from the given step, the non-core component rewrites the
          published feedback so the vulnerable decision module's
          recoverability re-check sees a calm plant *)
  | Kill_pid of int
      (** from the given step, the watchdog pid cell holds the core's pid *)

type core_variant =
  | Vulnerable  (** decision re-reads the shared feedback (Figure 2) *)
  | Fixed       (** decision uses a local copy (the paper's fix) *)

type event =
  | Switched_to_safety of int
  | Switched_to_complex of int
  | Monitor_reject of int
  | Crash of int
  | Core_killed of int

type result = {
  steps_run : int;
  crashed : bool;
  core_killed : bool;
  safety_engagements : int;
  monitor_rejections : int;
  max_angle : float;
  max_position : float;
  final_state : Linalg.vec;
  events : event list;  (** newest first *)
  cost : float;         (** Σ xᵀx·dt *)
}

type config = {
  plant : Plant.t;
  scenario : scenario;
  variant : core_variant;
  steps : int;
  seed : int;
  disturbance : float;
  x0 : Linalg.vec option;
}

val default_config : Plant.t -> config

val core_pid : int

val other_pid : int

val run : config -> result
