(** Simplex-architecture runtime substrate: simulated plants, LQR
    controllers, the Lyapunov stability-envelope monitor, shared-memory
    emulation with fault injection, and the closed-loop simulation
    harness used by the examples and benchmarks. *)

module Plant = Plant
module Controller = Controller
module Monitor = Monitor
module Shm_rt = Shm_rt
module Sim = Sim
