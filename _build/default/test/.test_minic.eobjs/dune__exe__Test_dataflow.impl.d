test/test_dataflow.ml: Alcotest Array Dataflow Fmt Hashtbl Int List Minic QCheck QCheck_alcotest
