test/test_dyntaint.ml: Alcotest Astring Driver Dyntaint Fmt Int64 List Minic QCheck QCheck_alcotest Report Safeflow Ssair Synth Sys
