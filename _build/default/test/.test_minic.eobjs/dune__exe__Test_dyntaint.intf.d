test/test_dyntaint.mli:
