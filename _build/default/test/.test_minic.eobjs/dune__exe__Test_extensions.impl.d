test/test_extensions.ml: Alcotest Astring Driver Float Fmt List Minic Phase3 QCheck QCheck_alcotest Report Safeflow Shm String Summary Synth Sys Vfg
