test/test_ir.ml: Alcotest Astring Fmt Hashtbl Int64 List Loc Minic Option Parser QCheck QCheck_alcotest Ssair Ty Typecheck
