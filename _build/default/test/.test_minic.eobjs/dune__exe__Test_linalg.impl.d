test/test_linalg.ml: Alcotest Array Float Fmt Linalg List QCheck QCheck_alcotest Simplex
