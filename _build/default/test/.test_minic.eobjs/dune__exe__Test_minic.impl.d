test/test_minic.ml: Alcotest Annot Ast Astring Fmt Hashtbl Int64 Lexer List Loc Minic Parser Pretty QCheck QCheck_alcotest String Tast Token Ty Typecheck
