test/test_omega.ml: Alcotest Fmt List Omega QCheck QCheck_alcotest
