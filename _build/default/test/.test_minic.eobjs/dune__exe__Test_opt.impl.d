test/test_opt.ml: Alcotest Fmt Fun Int64 List Minic Option Parser QCheck QCheck_alcotest Safeflow Ssair Sys Typecheck
