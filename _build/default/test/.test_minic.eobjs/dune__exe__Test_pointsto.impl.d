test/test_pointsto.ml: Alcotest Dump Fmt List Minic Option Parser Pointsto Ssair Typecheck
