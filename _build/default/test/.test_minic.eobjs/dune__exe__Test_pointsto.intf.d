test/test_pointsto.mli:
