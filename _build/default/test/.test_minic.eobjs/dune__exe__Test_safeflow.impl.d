test/test_safeflow.ml: Alcotest Astring Config Driver List Report Safeflow Shm Vfg
