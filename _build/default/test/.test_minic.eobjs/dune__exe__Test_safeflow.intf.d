test/test_safeflow.mli:
