test/test_simplex.ml: Alcotest Array Controller Float Fmt Monitor Plant QCheck QCheck_alcotest Shm_rt Sim Simplex
