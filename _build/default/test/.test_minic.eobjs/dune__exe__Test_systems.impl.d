test/test_systems.ml: Alcotest Array Astring Driver Fmt Int64 List Minic Report Safeflow Shm Ssair String Sys
