(* Tests for the dataflow toolkit: Tarjan SCC, the generic worklist
   solver, and the call graph. *)

let adj edges n =
  ( List.init n (fun i -> i),
    fun v -> List.filter_map (fun (a, b) -> if a = v then Some b else None) edges )

(* -- SCC -------------------------------------------------------------------- *)

let test_scc_dag () =
  let nodes, succs = adj [ (0, 1); (1, 2); (0, 2) ] 3 in
  let scc = Dataflow.Scc.compute nodes succs in
  Alcotest.(check int) "three singleton components" 3 (Array.length scc.components);
  (* reverse topological: sinks first *)
  let order = Dataflow.Scc.reverse_topological scc in
  Alcotest.(check (list int)) "sink first" [ 2 ] (List.hd order)

let test_scc_cycle () =
  let nodes, succs = adj [ (0, 1); (1, 2); (2, 0); (2, 3) ] 4 in
  let scc = Dataflow.Scc.compute nodes succs in
  Alcotest.(check int) "two components" 2 (Array.length scc.components);
  Alcotest.(check bool) "0,1,2 in one component" true
    (scc.index_of 0 = scc.index_of 1 && scc.index_of 1 = scc.index_of 2);
  Alcotest.(check bool) "3 separate" true (scc.index_of 3 <> scc.index_of 0)

let test_scc_self_loop () =
  let nodes, succs = adj [ (0, 0); (0, 1) ] 2 in
  let scc = Dataflow.Scc.compute nodes succs in
  Alcotest.(check bool) "self loop is a cycle" true (Dataflow.Scc.in_cycle scc succs 0);
  Alcotest.(check bool) "plain node is not" false (Dataflow.Scc.in_cycle scc succs 1)

let test_scc_topological_respects_edges () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 1); (0, 4); (4, 3) ] in
  let nodes, succs = adj edges 5 in
  let scc = Dataflow.Scc.compute nodes succs in
  let topo = Dataflow.Scc.topological scc in
  let pos v =
    let rec go i = function
      | [] -> -1
      | comp :: rest -> if List.mem v comp then i else go (i + 1) rest
    in
    go 0 topo
  in
  List.iter
    (fun (a, b) ->
      if scc.index_of a <> scc.index_of b then
        Alcotest.(check bool) (Fmt.str "edge %d->%d ordered" a b) true (pos a < pos b))
    edges

(* random graphs: every node is in exactly one component *)
let prop_scc_partition =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 20 in
      let* m = int_range 0 40 in
      let* edges = list_size (return m) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, edges))
  in
  let arb = QCheck.make ~print:(fun (n, e) -> Fmt.str "n=%d edges=%d" n (List.length e)) gen in
  QCheck.Test.make ~name:"scc components partition the nodes" ~count:200 arb
    (fun (n, edges) ->
      let nodes, succs = adj edges n in
      let scc = Dataflow.Scc.compute nodes succs in
      let total = Array.fold_left (fun acc c -> acc + List.length c) 0 scc.components in
      total = n
      && List.for_all
           (fun v -> List.mem v scc.components.(scc.index_of v))
           nodes)

(* -- Worklist ----------------------------------------------------------------- *)

(* reaching "max value" analysis over a diamond with a loop *)
let test_worklist_constant_reaches_fixpoint () =
  (* graph: 0 -> 1 -> 2 -> 1 (loop), 2 -> 3 *)
  let succs = function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 1; 3 ] | _ -> [] in
  let preds = function 1 -> [ 0; 2 ] | 2 -> [ 1 ] | 3 -> [ 2 ] | _ -> [] in
  let problem =
    {
      Dataflow.Worklist.entry = 0;
      nodes = [ 0; 1; 2; 3 ];
      succs;
      preds;
      init = 5;
      bottom = 0;
      join = max;
      equal = Int.equal;
      transfer = (fun n fact -> if n = 2 then max fact 7 else fact);
    }
  in
  let sol = Dataflow.Worklist.solve problem in
  Alcotest.(check int) "out of entry" 5 (sol.out_fact 0);
  (* the loop pumps 7 back into node 1 *)
  Alcotest.(check int) "loop head sees 7" 7 (sol.in_fact 1);
  Alcotest.(check int) "exit sees 7" 7 (sol.out_fact 3);
  Alcotest.(check bool) "terminates in few iterations" true (sol.iterations < 50)

let test_worklist_unreachable_node () =
  let succs = function 0 -> [ 1 ] | _ -> [] in
  let preds = function 1 -> [ 0 ] | _ -> [] in
  let problem =
    {
      Dataflow.Worklist.entry = 0;
      nodes = [ 0; 1; 9 ];
      succs;
      preds;
      init = 3;
      bottom = 0;
      join = max;
      equal = Int.equal;
      transfer = (fun _ f -> f);
    }
  in
  let sol = Dataflow.Worklist.solve problem in
  Alcotest.(check int) "unreachable keeps bottom" 0 (sol.out_fact 9)

(* -- Call graph ----------------------------------------------------------------- *)

let prog_of src = Minic.Typecheck.check_program (Minic.Parser.parse_string src)

let test_callgraph_basic () =
  let p =
    prog_of
      "void c() { } void b() { c(); } void a() { b(); c(); } int main() { a(); return 0; }"
  in
  let cg = Dataflow.Callgraph.build p in
  Alcotest.(check (list string)) "callees of a" [ "b"; "c" ]
    (List.sort compare (Dataflow.Callgraph.callees_of cg "a"));
  Alcotest.(check (list string)) "callers of c" [ "a"; "b" ]
    (List.sort compare (Dataflow.Callgraph.callers_of cg "c"));
  Alcotest.(check bool) "main reaches c" true
    (Dataflow.Callgraph.reachable cg ~from:"main" "c");
  Alcotest.(check bool) "c does not reach main" false
    (Dataflow.Callgraph.reachable cg ~from:"c" "main")

let test_callgraph_recursion () =
  let p = prog_of "int f(int n) { if (n > 0) { return g(n - 1); } return 0; } \
                   int g(int n) { return f(n); } int main() { return f(3); }" in
  let cg = Dataflow.Callgraph.build p in
  let bottom_up = Dataflow.Callgraph.bottom_up cg in
  (* f and g form one SCC processed before main *)
  let fg_comp = List.find (fun c -> List.mem "f" c) bottom_up in
  Alcotest.(check bool) "f,g same SCC" true (List.mem "g" fg_comp);
  let pos name =
    let rec go i = function
      | [] -> -1
      | c :: rest -> if List.mem name c then i else go (i + 1) rest
    in
    go 0 bottom_up
  in
  Alcotest.(check bool) "callee SCC before main (bottom-up)" true (pos "f" < pos "main")

let test_callgraph_externs_in_all_callees () =
  let p = prog_of "extern void ext(int); void a() { ext(1); } int main() { a(); return 0; }" in
  let cg = Dataflow.Callgraph.build p in
  Alcotest.(check (list string)) "all callees include extern" [ "ext" ]
    (Dataflow.Callgraph.all_callees_of cg "a");
  Alcotest.(check (list string)) "defined callees exclude extern" []
    (Dataflow.Callgraph.callees_of cg "a")

let test_callgraph_reachable_set () =
  let p =
    prog_of
      "void leaf() { } void mid() { leaf(); } void island() { } \
       int main() { mid(); return 0; }"
  in
  let cg = Dataflow.Callgraph.build p in
  let set = Dataflow.Callgraph.reachable_set cg "main" in
  Alcotest.(check bool) "leaf reachable" true (Hashtbl.mem set "leaf");
  Alcotest.(check bool) "island not reachable" false (Hashtbl.mem set "island")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dataflow"
    [ ( "scc",
        [ Alcotest.test_case "dag" `Quick test_scc_dag;
          Alcotest.test_case "cycle" `Quick test_scc_cycle;
          Alcotest.test_case "self loop" `Quick test_scc_self_loop;
          Alcotest.test_case "topological order" `Quick test_scc_topological_respects_edges;
          qt prop_scc_partition ] );
      ( "worklist",
        [ Alcotest.test_case "loop fixpoint" `Quick test_worklist_constant_reaches_fixpoint;
          Alcotest.test_case "unreachable" `Quick test_worklist_unreachable_node ] );
      ( "callgraph",
        [ Alcotest.test_case "basic" `Quick test_callgraph_basic;
          Alcotest.test_case "recursion scc" `Quick test_callgraph_recursion;
          Alcotest.test_case "externs" `Quick test_callgraph_externs_in_all_callees;
          Alcotest.test_case "reachable set" `Quick test_callgraph_reachable_set ] ) ]
