(* Differential validation: dynamic taint observed on a concrete execution
   must be a subset of what the static analysis reports.

   - every dynamic unmonitored non-core read site is a static warning site;
   - every dynamic critical-data violation is a static Data error at the
     same location;
   - monitored reads stay clean in both. *)

open Safeflow

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

(* a permissive environment: shm via one segment, sensors wiggle, config
   values mild, everything else returns 0 *)
let extern_handler tick st name args =
  match (name, args) with
  | "shmget", _ -> Ssair.Interp.VInt 11L
  | "shmat", _ -> Ssair.Interp.VPtr (Ssair.Interp.alloc_block st "shm" 8192)
  | ( ("readTrackSensor" | "readAngleSensor" | "readCartSensor" | "readAngle1Sensor"
      | "readAngle2Sensor"), _ ) ->
    incr tick;
    Ssair.Interp.VFloat (0.01 *. sin (float_of_int !tick *. 0.01))
  | "readSensorChannel", _ ->
    incr tick;
    Ssair.Interp.VFloat (0.004 *. cos (float_of_int !tick *. 0.05))
  | "readMotorCurrent", _ -> Ssair.Interp.VFloat 0.0
  | "readConfigValue", [ Ssair.Interp.VInt idx ] ->
    let i = Int64.to_int idx in
    Ssair.Interp.VFloat
      (if i = 0 then 2.0
       else if i >= 25 && i <= 40 then if (i - 25) mod 5 = 0 then 1.0 else 0.0
       else if i = 41 then 100.0
       else if i >= 46 && i <= 49 then -10.0
       else if i >= 50 && i <= 53 then 10.0
       else if i >= 66 then 1000.0
       else 0.1)
  | "current_time", _ ->
    incr tick;
    Ssair.Interp.VInt (Int64.of_int (!tick * 37))
  | "spawn_noncore", _ -> Ssair.Interp.VInt 4242L
  | "getpid", _ -> Ssair.Interp.VInt 1000L
  | _ -> Ssair.Interp.VInt 0L

(* minimal environment for inline snippets: just shared memory *)
let basic_handler st name _args =
  match name with
  | "shmget" -> Ssair.Interp.VInt 11L
  | "shmat" -> Ssair.Interp.VPtr (Ssair.Interp.alloc_block st "shm" 8192)
  | _ -> Ssair.Interp.VInt 0L

let dynamic_run ?(max_steps = 2_000_000) path =
  let a = Driver.analyze_file path in
  let tick = ref 0 in
  let dyn =
    Dyntaint.run ~extern_handler:(extern_handler tick) ~max_steps
      a.Driver.prepared.Driver.ir a.Driver.shm
  in
  (a.Driver.report, dyn)

let check_subset name (static : Report.t) (dyn : Dyntaint.result) =
  let static_warn_sites =
    List.map (fun w -> (w.Report.w_loc, w.Report.w_region)) static.Report.warnings
  in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Fmt.str "%s: dynamic read %a/%s is a static warning" name Minic.Loc.pp (fst site)
           (snd site))
        true
        (List.mem site static_warn_sites))
    dyn.Dyntaint.read_sites;
  let static_error_locs =
    List.map (fun d -> d.Report.d_loc) (Report.errors static)
  in
  List.iter
    (fun (f : Dyntaint.finding) ->
      Alcotest.(check bool)
        (Fmt.str "%s: dynamic violation %s at %a is a static error" name f.df_sink
           Minic.Loc.pp f.df_loc)
        true
        (List.mem f.df_loc static_error_locs))
    dyn.Dyntaint.violations

let test_figure2_dynamic () =
  let static, dyn = dynamic_run (find_system "figure2.c") in
  check_subset "figure2" static dyn;
  (* the error actually manifests on this execution: computeSafety reads
     the feedback region and the value reaches the output assert *)
  Alcotest.(check bool) "output assert violated dynamically" true
    (List.exists
       (fun (f : Dyntaint.finding) ->
         Astring.String.is_infix ~affix:"output" f.Dyntaint.df_sink)
       dyn.Dyntaint.violations);
  Alcotest.(check bool) "some dynamic read sites observed" true
    (dyn.Dyntaint.read_sites <> [])

let test_systems_dynamic_subset () =
  List.iter
    (fun name ->
      let static, dyn = dynamic_run (find_system name) in
      check_subset name static dyn)
    [ "ip_controller.c"; "generic_simplex.c"; "double_ip.c" ]

let test_ip_kill_manifests () =
  (* the kill-pid error manifests when the (simulated) non-core component
     has armed the watchdog and its heartbeat stalls: arm it in the shm
     segment right after attachment *)
  let path = find_system "ip_controller.c" in
  let a = Driver.analyze_file path in
  let tick = ref 0 in
  let env = a.Driver.prepared.Driver.ir.Ssair.Ir.env in
  let handler st name args =
    match name with
    | "shmat" ->
      let p = Ssair.Interp.alloc_block st "shm" 8192 in
      (* WatchdogInfo at offset 96: nc_pid=96 (int), enable=100 (int) *)
      Ssair.Interp.store_scalar st env Minic.Ty.Int
        { p with Ssair.Interp.poff = 96 } (Ssair.Interp.VInt 4242L);
      Ssair.Interp.store_scalar st env Minic.Ty.Int
        { p with Ssair.Interp.poff = 100 } (Ssair.Interp.VInt 1L);
      Ssair.Interp.VPtr p
    | _ -> extern_handler tick st name args
  in
  let dyn =
    Dyntaint.run ~extern_handler:handler ~max_steps:2_000_000
      a.Driver.prepared.Driver.ir a.Driver.shm
  in
  check_subset "ip-kill" a.Driver.report dyn;
  Alcotest.(check bool) "kill sink observed dynamically" true
    (List.exists
       (fun (f : Dyntaint.finding) ->
         Astring.String.is_infix ~affix:"kill" f.Dyntaint.df_sink)
       dyn.Dyntaint.violations)

let test_monitored_read_clean_dynamically () =
  let src =
    {|
struct B { double a; double b2; };
typedef struct B B;
B *reg;
extern void sendControl(double v);
void initShm()
/*** SafeFlow Annotation shminit ***/
{
  void *s; int id;
  id = shmget(6300, sizeof(B), 438);
  s = shmat(id, (void *) 0, 0);
  reg = (B *) s;
  /*** SafeFlow Annotation assume(shmvar(reg, sizeof(B))) assume(noncore(reg)) ***/
}
double monitor(B *p)
/*** SafeFlow Annotation assume(core(reg, 0, sizeof(B))) ***/
{
  double v = p->a;
  if (v > 5.0 || v < -5.0) { return 0.0; }
  return v;
}
int main() {
  initShm();
  double ok = monitor(reg);
  /*** SafeFlow Annotation assert(safe(ok)) ***/
  double bad = reg->b2;
  /*** SafeFlow Annotation assert(safe(bad)) ***/
  sendControl(ok + bad);
  return 0;
}
|}
  in
  let a = Driver.analyze src in
  let dyn = Dyntaint.run a.Driver.prepared.Driver.ir a.Driver.shm
      ~extern_handler:basic_handler
  in
  (* exactly one dynamic source (the unmonitored read) and one violation *)
  Alcotest.(check int) "one dynamic read site" 1 (List.length dyn.Dyntaint.read_sites);
  Alcotest.(check int) "one dynamic violation" 1 (List.length dyn.Dyntaint.violations);
  (match dyn.Dyntaint.violations with
  | [ f ] ->
    Alcotest.(check bool) "violation is assert(safe(bad))" true
      (Astring.String.is_infix ~affix:"bad" f.Dyntaint.df_sink)
  | _ -> Alcotest.fail "expected one violation");
  check_subset "monitored-clean" a.Driver.report dyn

let test_strong_update_clears_taint () =
  (* overwriting a tainted cell with a clean value clears it dynamically *)
  let src =
    {|
double *reg;
extern void sendControl(double v);
void initShm()
/*** SafeFlow Annotation shminit ***/
{
  void *s; int id;
  id = shmget(6400, 8 * sizeof(double), 438);
  s = shmat(id, (void *) 0, 0);
  reg = (double *) s;
  /*** SafeFlow Annotation assume(shmvar(reg, 8 * sizeof(double))) assume(noncore(reg)) ***/
}
double buffer[2];
int main() {
  initShm();
  buffer[0] = reg[0];     /* tainted */
  buffer[0] = 1.5;        /* strong update: clean again */
  double v = buffer[0];
  /*** SafeFlow Annotation assert(safe(v)) ***/
  sendControl(v);
  return 0;
}
|}
  in
  let a = Driver.analyze src in
  let dyn = Dyntaint.run a.Driver.prepared.Driver.ir a.Driver.shm
      ~extern_handler:basic_handler
  in
  (* dynamically clean (strong update); statically reported (no strong
     updates in the flow-insensitive memory model) — the static analysis
     is conservative, as expected *)
  Alcotest.(check int) "no dynamic violation" 0 (List.length dyn.Dyntaint.violations);
  Alcotest.(check bool) "static analysis conservatively reports" true
    (List.length (Report.errors a.Driver.report) >= 1)

let prop_synth_dynamic_subset =
  let gen = QCheck.Gen.(pair (int_range 2 10) (oneofl [ 0.0; 0.25; 0.5; 1.0 ])) in
  let arb = QCheck.make ~print:(fun (w, f) -> Fmt.str "w=%d f=%.2f" w f) gen in
  QCheck.Test.make ~name:"synth: dynamic taint subset of static" ~count:15 arb
    (fun (workers, monitored_fraction) ->
      let src =
        Synth.generate { Synth.default with workers; monitored_fraction; chain_depth = 2 }
      in
      let a = Driver.analyze src in
      let dyn =
        Dyntaint.run ~max_steps:3_000_000 a.Driver.prepared.Driver.ir a.Driver.shm
          ~extern_handler:basic_handler
      in
      let static_sites =
        List.map (fun w -> (w.Report.w_loc, w.Report.w_region)) a.Driver.report.Report.warnings
      in
      List.for_all (fun s -> List.mem s static_sites) dyn.Dyntaint.read_sites)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dyntaint"
    [ ( "subset",
        [ Alcotest.test_case "figure2" `Quick test_figure2_dynamic;
          Alcotest.test_case "three systems" `Slow test_systems_dynamic_subset;
          Alcotest.test_case "ip kill manifests" `Slow test_ip_kill_manifests ] );
      ( "semantics",
        [ Alcotest.test_case "monitored reads clean" `Quick
            test_monitored_read_clean_dynamically;
          Alcotest.test_case "strong update" `Quick test_strong_update_clears_taint ] );
      ("properties", [ qt prop_synth_dynamic_subset ]) ]
