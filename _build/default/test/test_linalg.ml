(* Tests for the dense linear-algebra kernel: solvers, Lyapunov and
   Riccati equations, with property tests on random well-conditioned
   systems. *)

let approx ?(eps = 1e-8) a b = Float.abs (a -. b) <= eps

let check_mat name ?(eps = 1e-8) (a : Linalg.mat) (b : Linalg.mat) =
  Alcotest.(check bool) name true (Linalg.max_abs_diff a b <= eps)

(* -- Basics ------------------------------------------------------------- *)

let test_mul_identity () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_mat "I*A = A" (Linalg.mul (Linalg.identity 2) a) a;
  check_mat "A*I = A" (Linalg.mul a (Linalg.identity 2)) a

let test_transpose_involution () =
  let a = [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  check_mat "(Aᵀ)ᵀ = A" (Linalg.transpose (Linalg.transpose a)) a

let test_solve_simple () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let b = [| 5.0; 10.0 |] in
  let x = Linalg.solve a b in
  Alcotest.(check bool) "x0" true (approx x.(0) 1.0);
  Alcotest.(check bool) "x1" true (approx x.(1) 3.0)

let test_solve_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Linalg.solve a [| 1.0; 2.0 |] with
  | exception Linalg.Singular -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_inverse () =
  let a = [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  check_mat "A·A⁻¹ = I" (Linalg.mul a (Linalg.inverse a)) (Linalg.identity 2)

let test_quadratic_form () =
  let p = [| [| 2.0; 0.0 |]; [| 0.0; 3.0 |] |] in
  Alcotest.(check bool) "xᵀPx" true
    (approx (Linalg.quadratic_form p [| 1.0; 2.0 |]) 14.0)

(* -- Lyapunov ------------------------------------------------------------ *)

let test_dlyap_residual () =
  (* stable A *)
  let a = [| [| 0.5; 0.1 |]; [| -0.2; 0.6 |] |] in
  let q = Linalg.identity 2 in
  let p = Linalg.dlyap a q in
  (* AᵀPA − P + Q = 0 *)
  let residual =
    Linalg.add (Linalg.sub (Linalg.mul (Linalg.transpose a) (Linalg.mul p a)) p) q
  in
  check_mat ~eps:1e-8 "lyapunov residual" residual (Linalg.mat_make 2 2 0.0)

let test_dlyap_positive_definite () =
  let a = [| [| 0.5; 0.1 |]; [| -0.2; 0.6 |] |] in
  let p = Linalg.dlyap a (Linalg.identity 2) in
  List.iter
    (fun x ->
      Alcotest.(check bool) "xᵀPx > 0" true (Linalg.quadratic_form p x > 0.0))
    [ [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; -1.0 |]; [| 0.3; 0.7 |] ]

(* -- Riccati / LQR ---------------------------------------------------------- *)

let test_dare_residual () =
  let plant = Simplex.Plant.inverted_pendulum () in
  let a = plant.Simplex.Plant.a and b = plant.Simplex.Plant.b in
  let q = Linalg.identity 4 and r = [| [| 1.0 |] |] in
  let p = Linalg.dare a b q r in
  let bt = Linalg.transpose b and at = Linalg.transpose a in
  let g = Linalg.add r (Linalg.mul bt (Linalg.mul p b)) in
  let k = Linalg.mul (Linalg.inverse g) (Linalg.mul bt (Linalg.mul p a)) in
  let rhs =
    Linalg.add q
      (Linalg.sub (Linalg.mul at (Linalg.mul p a))
         (Linalg.mul at (Linalg.mul p (Linalg.mul b k))))
  in
  Alcotest.(check bool) "riccati residual small" true (Linalg.max_abs_diff p rhs < 1e-6)

let lqr_stabilizes plant x0 steps =
  let ctrl = Simplex.Controller.safety plant in
  let x = ref (Array.copy x0) in
  let n = plant.Simplex.Plant.state_dim in
  for _ = 1 to steps do
    let u = Simplex.Controller.output ctrl !x in
    x := Simplex.Plant.step plant !x ~u ~w:(Array.make n 0.0)
  done;
  Linalg.norm2 !x

let test_lqr_stabilizes_pendulum () =
  let plant = Simplex.Plant.inverted_pendulum () in
  let final = lqr_stabilizes plant [| 0.1; 0.0; 0.08; 0.0 |] 3000 in
  Alcotest.(check bool) "pendulum converges" true (final < 1e-4)

let test_lqr_stabilizes_double_pendulum () =
  let plant = Simplex.Plant.double_inverted_pendulum () in
  let final = lqr_stabilizes plant [| 0.0; 0.0; 0.05; 0.0; 0.02; 0.0 |] 6000 in
  Alcotest.(check bool) "double pendulum converges" true (final < 1e-4)

let test_open_loop_unstable () =
  let plant = Simplex.Plant.inverted_pendulum () in
  let x = ref [| 0.0; 0.0; 0.01; 0.0 |] in
  for _ = 1 to 500 do
    x := Simplex.Plant.step plant !x ~u:0.0 ~w:(Array.make 4 0.0)
  done;
  Alcotest.(check bool) "pendulum falls without control" true (Float.abs !x.(2) > 0.1)

(* -- Properties ---------------------------------------------------------------- *)

let gen_spd_system =
  (* A = MᵀM + I is SPD and well conditioned for small entries *)
  let open QCheck.Gen in
  let* n = int_range 2 5 in
  let* entries = list_size (return (n * n)) (float_range (-1.0) 1.0) in
  let* b = list_size (return n) (float_range (-5.0) 5.0) in
  let m = Array.init n (fun i -> Array.init n (fun j -> List.nth entries ((i * n) + j))) in
  let a = Linalg.add (Linalg.mul (Linalg.transpose m) m) (Linalg.identity n) in
  return (a, Array.of_list b)

let arb_spd =
  QCheck.make
    ~print:(fun (a, _) -> Fmt.str "%a" Linalg.pp_mat a)
    gen_spd_system

let prop_solve_residual =
  QCheck.Test.make ~name:"solve: ‖Ax − b‖ small" ~count:200 arb_spd (fun (a, b) ->
      let x = Linalg.solve a b in
      let r = Linalg.vec_sub (Linalg.mat_vec a x) b in
      Linalg.norm2 r < 1e-6 *. (1.0 +. Linalg.norm2 b))

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"inverse: A·A⁻¹ = I" ~count:100 arb_spd (fun (a, _) ->
      let n, _ = Linalg.dims a in
      Linalg.max_abs_diff (Linalg.mul a (Linalg.inverse a)) (Linalg.identity n) < 1e-6)

let prop_quadratic_form_nonneg =
  QCheck.Test.make ~name:"SPD quadratic form positive" ~count:100
    (QCheck.pair arb_spd (QCheck.list_of_size (QCheck.Gen.return 5) (QCheck.float_range (-3.0) 3.0)))
    (fun ((a, _), xs) ->
      let n, _ = Linalg.dims a in
      let x = Array.init n (fun i -> try List.nth xs i with _ -> 0.5) in
      if Linalg.norm2 x < 1e-9 then true else Linalg.quadratic_form a x > 0.0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "linalg"
    [ ( "basics",
        [ Alcotest.test_case "mul identity" `Quick test_mul_identity;
          Alcotest.test_case "transpose" `Quick test_transpose_involution;
          Alcotest.test_case "solve" `Quick test_solve_simple;
          Alcotest.test_case "singular" `Quick test_solve_singular;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "quadratic form" `Quick test_quadratic_form ] );
      ( "lyapunov",
        [ Alcotest.test_case "residual" `Quick test_dlyap_residual;
          Alcotest.test_case "positive definite" `Quick test_dlyap_positive_definite ] );
      ( "riccati",
        [ Alcotest.test_case "dare residual" `Quick test_dare_residual;
          Alcotest.test_case "lqr pendulum" `Quick test_lqr_stabilizes_pendulum;
          Alcotest.test_case "lqr double pendulum" `Quick test_lqr_stabilizes_double_pendulum;
          Alcotest.test_case "open loop unstable" `Quick test_open_loop_unstable ] );
      ( "properties",
        [ qt prop_solve_residual; qt prop_inverse_roundtrip; qt prop_quadratic_form_nonneg ] ) ]
