(* Tests for the MiniC frontend: lexer, parser, annotations, typechecker,
   layout, and parse/print round-trips. *)

open Minic

let parse = Parser.parse_string ~file:"<test>"
let check_prog src = Typecheck.check_program (parse src)

(* -- Lexer ------------------------------------------------------------- *)

let tok_kinds src =
  Lexer.tokenize ~file:"<t>" src |> List.map (fun l -> l.Lexer.tok)

let test_lex_basic () =
  let toks = tok_kinds "int x = 42;" in
  Alcotest.(check int) "token count" 6 (List.length toks);
  (match toks with
  | [ KW_int; IDENT "x"; ASSIGN; INT 42L; SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens")

let test_lex_operators () =
  let toks = tok_kinds "a<<=b >>= == != <= >= && || -> ++ --" in
  let has t = List.mem t toks in
  List.iter
    (fun t -> Alcotest.(check bool) (Token.to_string t) true (has t))
    Token.[ SHLEQ; SHREQ; EQEQ; NEQ; LE; GE; ANDAND; OROR; ARROW; PLUSPLUS; MINUSMINUS ]

let test_lex_floats () =
  (match tok_kinds "3.14 1e3 2.5f 10L 0x1F" with
  | [ FLOATLIT a; FLOATLIT b; FLOATLIT c; INT 10L; INT 31L; EOF ] ->
    Alcotest.(check (float 1e-9)) "pi" 3.14 a;
    Alcotest.(check (float 1e-9)) "1e3" 1000.0 b;
    Alcotest.(check (float 1e-9)) "2.5f" 2.5 c
  | _ -> Alcotest.fail "unexpected float tokens")

let test_lex_comments () =
  let toks = tok_kinds "a /* plain comment */ b // line\nc" in
  Alcotest.(check int) "comments skipped" 4 (List.length toks)

let test_lex_annotation () =
  let toks = tok_kinds "x; /*** SafeFlow Annotation shminit ***/ y;" in
  let annots =
    List.filter_map (function Token.ANNOT s -> Some s | _ -> None) toks
  in
  Alcotest.(check int) "one annotation token" 1 (List.length annots)

let test_lex_string_escape () =
  match tok_kinds {|"a\nb"|} with
  | [ STRING "a\nb"; EOF ] -> ()
  | _ -> Alcotest.fail "string escape"

let test_lex_preprocessor_skipped () =
  let toks = tok_kinds "#include <stdio.h>\nint x;" in
  Alcotest.(check int) "pp line skipped" 4 (List.length toks)

let test_lex_error_position () =
  match Lexer.tokenize ~file:"<t>" "int x;\n  @" with
  | exception Loc.Error (loc, _) ->
    Alcotest.(check int) "line" 2 loc.Loc.line;
    Alcotest.(check int) "col" 3 loc.Loc.col
  | _ -> Alcotest.fail "expected lex error"

(* -- Annotation payloads ------------------------------------------------ *)

let test_annot_core () =
  match Annot.parse_payload " assume(core(noncoreCtrl, 0, sizeof(SHMData))) " with
  | [ Annot.Assume_core { ptr = "noncoreCtrl"; off = Aint 0; size = Asizeof (Ty.Named "SHMData") } ]
    -> ()
  | _ -> Alcotest.fail "assume(core) parse"

let test_annot_multi () =
  let clauses =
    Annot.parse_payload
      "shminit; assume(shmvar(feedback, sizeof(struct SHM))); assume(noncore(ctrl))"
  in
  Alcotest.(check int) "three clauses" 3 (List.length clauses);
  (match clauses with
  | [ Annot.Shminit; Annot.Shmvar { ptr = "feedback"; _ }; Annot.Noncore "ctrl" ] -> ()
  | _ -> Alcotest.fail "clause shapes")

let test_annot_assert_safe () =
  match Annot.parse_payload "assert(safe(output))" with
  | [ Annot.Assert_safe "output" ] -> ()
  | _ -> Alcotest.fail "assert(safe)"

let test_annot_arith () =
  match Annot.parse_payload "assume(shmvar(p, sizeof(double) * 16))" with
  | [ Annot.Shmvar { size; _ } ] ->
    let env = Ty.empty_env () in
    Alcotest.(check int) "size value" 128 (Annot.eval_aexpr env size)
  | _ -> Alcotest.fail "shmvar arith"

let test_annot_trailing_stars () =
  (* payload as it appears inside a boxed comment *)
  match Annot.parse_payload " assert(safe(v)) **" with
  | [ Annot.Assert_safe "v" ] -> ()
  | _ -> Alcotest.fail "trailing decoration"

let test_annot_bad () =
  match Annot.parse_payload "assume(bogus(x))" with
  | exception Annot.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

(* -- Parser -------------------------------------------------------------- *)

let test_parse_function () =
  match parse "int add(int a, int b) { return a + b; }" with
  | [ Ast.Dfunc f ] ->
    Alcotest.(check string) "name" "add" f.fname;
    Alcotest.(check int) "params" 2 (List.length f.fparams)
  | _ -> Alcotest.fail "expected one function"

let test_parse_struct_typedef () =
  let prog =
    parse "struct Point { double x; double y; }; typedef struct Point Point;\n\
           Point origin;"
  in
  Alcotest.(check int) "three decls" 3 (List.length prog)

let test_parse_precedence () =
  match parse "int f() { return 1 + 2 * 3; }" with
  | [ Ast.Dfunc { fbody = [ { sdesc = Sreturn (Some e); _ } ]; _ } ] -> (
    match e.edesc with
    | Ast.Binop (Ast.Add, _, { edesc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
    | _ -> Alcotest.fail "precedence shape")
  | _ -> Alcotest.fail "parse shape"

let test_parse_compound_assign () =
  match parse "int f(int x) { x += 2; return x; }" with
  | [ Ast.Dfunc { fbody = { sdesc = Sexpr { edesc = Assign (_, rhs); _ }; _ } :: _; _ } ]
    -> (
    match rhs.edesc with
    | Ast.Binop (Ast.Add, _, _) -> ()
    | _ -> Alcotest.fail "compound assign desugar")
  | _ -> Alcotest.fail "parse shape"

let test_parse_pointer_decl () =
  match parse "int f() { int x; int *p; p = &x; *p = 3; return *p; }" with
  | [ Ast.Dfunc f ] -> Alcotest.(check int) "stmts" 5 (List.length f.fbody)
  | _ -> Alcotest.fail "pointer decl"

let test_parse_for_loop () =
  match parse "int f() { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }" with
  | [ Ast.Dfunc { fbody = [ _; { sdesc = Sfor (Some _, Some _, Some _, _); _ }; _ ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "for loop shape"

let test_parse_switch () =
  let src =
    "int f(int m) { switch (m) { case 0: return 1; case 1: case 2: return 5; default: \
     break; } return 0; }"
  in
  match parse src with
  | [ Ast.Dfunc { fbody = [ { sdesc = Sswitch (_, cases); _ }; _ ]; _ } ] ->
    Alcotest.(check int) "cases" 4 (List.length cases)
  | _ -> Alcotest.fail "switch shape"

let test_parse_func_annotation () =
  let src =
    "float decision(float x)\n\
     /*** SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(struct SHMData))) ***/\n\
     { return x; }"
  in
  match parse src with
  | [ Ast.Dfunc f ] -> (
    match f.fannot with
    | [ Annot.Assume_core { ptr = "noncoreCtrl"; _ } ] -> ()
    | _ -> Alcotest.fail "annotation attached")
  | _ -> Alcotest.fail "parse shape"

let test_parse_stmt_annotation () =
  let src = "int f() { int v = 1; /*** SafeFlow Annotation assert(safe(v)) ***/ return v; }" in
  match parse src with
  | [ Ast.Dfunc f ] ->
    let has_annot =
      List.exists (fun s -> match s.Ast.sdesc with Ast.Sannot _ -> true | _ -> false) f.fbody
    in
    Alcotest.(check bool) "annot stmt present" true has_annot
  | _ -> Alcotest.fail "parse shape"

let test_parse_global_array_init () =
  match parse "double K[4] = { 1.0, 2.0, 3.0, 4.0 };" with
  | [ Ast.Dglobal { gty = Ty.Array (Ty.Double, 4); ginit = Some (Ilist l); _ } ] ->
    Alcotest.(check int) "init elems" 4 (List.length l)
  | _ -> Alcotest.fail "global array init"

let test_parse_cast () =
  let src = "typedef struct S SHMData; struct S { int v; }; \n\
             SHMData *g; int f(void *p) { g = (SHMData *) p; return g->v; }" in
  match List.rev (parse src) with
  | Ast.Dfunc f :: _ ->
    (match f.fbody with
    | { sdesc = Sexpr { edesc = Assign (_, { edesc = Cast (Ty.Ptr (Ty.Named "SHMData"), _); _ }); _ }; _ } :: _ ->
      ()
    | _ -> Alcotest.fail "cast shape")
  | _ -> Alcotest.fail "parse shape"

let test_parse_error_reports_location () =
  match parse "int f() { return + ; }" with
  | exception Loc.Error (_, msg) ->
    Alcotest.(check bool) "mentions parse" true
      (Astring.String.is_infix ~affix:"" msg || String.length msg > 0)
  | _ -> Alcotest.fail "expected error"

(* -- Round trip ---------------------------------------------------------- *)

let roundtrip src =
  let p1 = parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 = Parser.parse_string ~file:"<rt>" printed in
  let printed2 = Pretty.program_to_string p2 in
  Alcotest.(check string) "print/parse/print stable" printed printed2

let test_roundtrip_simple () =
  roundtrip
    "struct S { int a; double b[3]; };\n\
     typedef struct S S;\n\
     S glob;\n\
     int f(int x, double *p) { if (x > 0) { return x; } else { return -x; } }"

let test_roundtrip_control () =
  roundtrip
    "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } \
     while (s > 100) { s /= 2; } do { s++; } while (s < 3); \
     switch (n) { case 1: return s; default: break; } return s ? s : n; }"

(* -- Typechecker --------------------------------------------------------- *)

let test_tc_simple () =
  let p = check_prog "int add(int a, int b) { return a + b; }" in
  Alcotest.(check int) "one function" 1 (List.length p.Tast.p_funcs)

let test_tc_promotion () =
  let p = check_prog "double f(int a, double b) { return a + b; }" in
  let f = List.hd p.Tast.p_funcs in
  (match f.tf_body with
  | [ { tsdesc = Tast.TSreturn (Some e); _ } ] ->
    Alcotest.(check bool) "result is double" true (Ty.equal e.tty Ty.Double)
  | _ -> Alcotest.fail "body shape")

let test_tc_pointer_arith () =
  let p = check_prog "int f(int *p) { return *(p + 2); }" in
  ignore p

let test_tc_field_access () =
  let p =
    check_prog
      "struct V { double x; double y; }; double f(struct V *v) { return v->x + v->y; }"
  in
  ignore p

let test_tc_unbound_var () =
  match check_prog "int f() { return y; }" with
  | exception Loc.Error (_, msg) ->
    Alcotest.(check bool) "mentions unbound" true
      (Astring.String.is_infix ~affix:"unbound" msg)
  | _ -> Alcotest.fail "expected type error"

let test_tc_bad_call_arity () =
  match check_prog "int g(int x) { return x; } int f() { return g(1, 2); }" with
  | exception Loc.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_tc_undeclared_function () =
  match check_prog "int f() { return mystery(); }" with
  | exception Loc.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected undeclared error"

let test_tc_void_assign () =
  match check_prog "void g() { } int f() { int x; x = g(); return x; }" with
  | exception Loc.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected void assign error"

let test_tc_shadowing_renamed () =
  let p =
    check_prog
      "int f(int x) { int s = 0; { int t = x; s += t; } { int t = 2 * x; s += t; } return s; }"
  in
  let f = List.hd p.Tast.p_funcs in
  let names = List.map fst f.tf_locals in
  Alcotest.(check int) "three locals" 3 (List.length names);
  Alcotest.(check bool) "renamed uniquely" true
    (List.length (List.sort_uniq compare names) = 3)

let test_tc_sizeof_folded () =
  let p =
    check_prog "struct S { double a; int b; }; long f() { return sizeof(struct S); }"
  in
  let f = List.hd p.Tast.p_funcs in
  (match f.tf_body with
  | [ { tsdesc = Tast.TSreturn (Some { tdesc = Tast.Tint n; _ }); _ } ] ->
    Alcotest.(check int64) "sizeof folded (8 + 4 pad to 16)" 16L n
  | _ -> Alcotest.fail "sizeof shape")

let test_tc_array_decay () =
  let p = check_prog "double sum(double *p, int n) { return p[0]; } \
                      double f() { double a[4]; return sum(a, 4); }" in
  let f = List.find (fun f -> f.Tast.tf_name = "f") p.Tast.p_funcs in
  let found_decay = ref false in
  Tast.fold_texpr_stmts
    (fun () e -> match e.Tast.tdesc with Tast.Tdecay _ -> found_decay := true | _ -> ())
    () f.tf_body;
  Alcotest.(check bool) "decay inserted" true !found_decay

let test_tc_global_init_flatten () =
  let p =
    check_prog
      "struct G { double k[2]; int mode; }; struct G cfg = { { 1.5, 2.5 }, 7 };"
  in
  match p.Tast.p_globals with
  | [ g ] ->
    Alcotest.(check int) "three scalar inits" 3 (List.length g.tg_init);
    let offs = List.map (fun i -> i.Tast.gi_offset) g.tg_init in
    Alcotest.(check (list int)) "offsets" [ 0; 8; 16 ] (List.sort compare offs)
  | _ -> Alcotest.fail "globals shape"

let test_tc_builtin_externs () =
  (* shmget/shmat/kill are implicitly declared *)
  let p =
    check_prog
      "void f() { int id = shmget(100, 4096, 0); void *base = shmat(id, 0, 0); \
       kill(7, 9); shmdt(base); }"
  in
  ignore p

(* -- Layout --------------------------------------------------------------- *)

let test_layout_struct_padding () =
  let env = Ty.empty_env () in
  Hashtbl.replace env.Ty.structs "S"
    [ { Ty.fname = "c"; fty = Ty.Char }; { Ty.fname = "d"; fty = Ty.Double };
      { Ty.fname = "i"; fty = Ty.Int } ];
  Alcotest.(check int) "sizeof" 24 (Ty.sizeof env (Ty.Struct "S"));
  Alcotest.(check (option int)) "offset c" (Some 0) (Ty.field_offset env "S" "c");
  Alcotest.(check (option int)) "offset d" (Some 8) (Ty.field_offset env "S" "d");
  Alcotest.(check (option int)) "offset i" (Some 16) (Ty.field_offset env "S" "i")

let test_layout_nested_array () =
  let env = Ty.empty_env () in
  Alcotest.(check int) "double[3][4]" 96
    (Ty.sizeof env (Ty.Array (Ty.Array (Ty.Double, 4), 3)))

let test_layout_typedef_resolution () =
  let env = Ty.empty_env () in
  Hashtbl.replace env.Ty.typedefs "myint" Ty.Int;
  Hashtbl.replace env.Ty.typedefs "myint2" (Ty.Named "myint");
  Alcotest.(check int) "chained typedef" 4 (Ty.sizeof env (Ty.Named "myint2"));
  Alcotest.(check bool) "compat through typedef" true
    (Ty.compatible env (Ty.Named "myint2") Ty.Int)

(* -- Property tests -------------------------------------------------------- *)

(* random well-formed arithmetic expressions over ints should roundtrip *)
let gen_expr =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof [ map (fun i -> Ast.int_e (abs i mod 1000)) small_int; return (Ast.var_e "x") ]
      else
        let sub = self (n / 2) in
        oneof
          [ map2 (fun a b -> Ast.mk_expr (Ast.Binop (Ast.Add, a, b))) sub sub;
            map2 (fun a b -> Ast.mk_expr (Ast.Binop (Ast.Mul, a, b))) sub sub;
            map2 (fun a b -> Ast.mk_expr (Ast.Binop (Ast.Lt, a, b))) sub sub;
            map (fun a -> Ast.mk_expr (Ast.Unop (Ast.Neg, a))) sub;
            map (fun a -> Ast.mk_expr (Ast.Unop (Ast.Lnot, a))) sub ])

let arb_expr = QCheck.make ~print:(fun e -> Fmt.str "%a" Pretty.pp_expr e) gen_expr

let rec expr_equal_modulo_loc (a : Ast.expr) (b : Ast.expr) =
  match (a.edesc, b.edesc) with
  | Ast.Cint x, Ast.Cint y -> Int64.equal x y
  | Ast.Var x, Ast.Var y -> String.equal x y
  | Ast.Unop (o1, a1), Ast.Unop (o2, a2) -> o1 = o2 && expr_equal_modulo_loc a1 a2
  | Ast.Binop (o1, a1, b1), Ast.Binop (o2, a2, b2) ->
    o1 = o2 && expr_equal_modulo_loc a1 a2 && expr_equal_modulo_loc b1 b2
  | _ -> false

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr print/parse roundtrip" ~count:200 arb_expr (fun e ->
      let src = Fmt.str "int f(int x) { return %a; }" Pretty.pp_expr e in
      match parse src with
      | [ Ast.Dfunc { fbody = [ { sdesc = Sreturn (Some e'); _ } ]; _ } ] ->
        expr_equal_modulo_loc e e'
      | _ -> false)

let prop_typecheck_roundtrip =
  QCheck.Test.make ~name:"random exprs typecheck" ~count:100 arb_expr (fun e ->
      let src = Fmt.str "int f(int x) { return %a; }" Pretty.pp_expr e in
      match check_prog src with _ -> true)

(* layout properties *)
let gen_ty =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then oneofl [ Ty.Char; Ty.Int; Ty.Long; Ty.Float; Ty.Double ]
      else
        frequency
          [ (3, oneofl [ Ty.Char; Ty.Int; Ty.Long; Ty.Float; Ty.Double ]);
            (1, map (fun t -> Ty.Ptr t) (self (n / 2)));
            (1, map2 (fun t k -> Ty.Array (t, 1 + (abs k mod 8))) (self (n / 2)) small_int) ])

let arb_ty = QCheck.make ~print:Ty.to_string gen_ty

let prop_size_multiple_of_align =
  QCheck.Test.make ~name:"sizeof is a multiple of alignof" ~count:200 arb_ty (fun ty ->
      let env = Ty.empty_env () in
      Ty.sizeof env ty mod Ty.alignof env ty = 0)

let prop_array_size_linear =
  QCheck.Test.make ~name:"array size is n * element size" ~count:200
    (QCheck.pair arb_ty QCheck.small_int) (fun (ty, n) ->
      let n = 1 + (abs n mod 16) in
      let env = Ty.empty_env () in
      Ty.sizeof env (Ty.Array (ty, n)) = n * Ty.sizeof env ty)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "minic"
    [ ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "floats" `Quick test_lex_floats;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "annotation token" `Quick test_lex_annotation;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escape;
          Alcotest.test_case "preprocessor skipped" `Quick test_lex_preprocessor_skipped;
          Alcotest.test_case "error position" `Quick test_lex_error_position ] );
      ( "annotations",
        [ Alcotest.test_case "assume core" `Quick test_annot_core;
          Alcotest.test_case "multi clause" `Quick test_annot_multi;
          Alcotest.test_case "assert safe" `Quick test_annot_assert_safe;
          Alcotest.test_case "size arithmetic" `Quick test_annot_arith;
          Alcotest.test_case "trailing stars" `Quick test_annot_trailing_stars;
          Alcotest.test_case "bad payload" `Quick test_annot_bad ] );
      ( "parser",
        [ Alcotest.test_case "function" `Quick test_parse_function;
          Alcotest.test_case "struct+typedef" `Quick test_parse_struct_typedef;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "compound assign" `Quick test_parse_compound_assign;
          Alcotest.test_case "pointer decl" `Quick test_parse_pointer_decl;
          Alcotest.test_case "for loop" `Quick test_parse_for_loop;
          Alcotest.test_case "switch" `Quick test_parse_switch;
          Alcotest.test_case "function annotation" `Quick test_parse_func_annotation;
          Alcotest.test_case "stmt annotation" `Quick test_parse_stmt_annotation;
          Alcotest.test_case "global array init" `Quick test_parse_global_array_init;
          Alcotest.test_case "cast" `Quick test_parse_cast;
          Alcotest.test_case "error location" `Quick test_parse_error_reports_location ] );
      ( "roundtrip",
        [ Alcotest.test_case "simple" `Quick test_roundtrip_simple;
          Alcotest.test_case "control flow" `Quick test_roundtrip_control;
          qt prop_expr_roundtrip;
          qt prop_typecheck_roundtrip ] );
      ( "typecheck",
        [ Alcotest.test_case "simple" `Quick test_tc_simple;
          Alcotest.test_case "promotion" `Quick test_tc_promotion;
          Alcotest.test_case "pointer arith" `Quick test_tc_pointer_arith;
          Alcotest.test_case "field access" `Quick test_tc_field_access;
          Alcotest.test_case "unbound var" `Quick test_tc_unbound_var;
          Alcotest.test_case "bad call arity" `Quick test_tc_bad_call_arity;
          Alcotest.test_case "undeclared function" `Quick test_tc_undeclared_function;
          Alcotest.test_case "void assign" `Quick test_tc_void_assign;
          Alcotest.test_case "shadowing renamed" `Quick test_tc_shadowing_renamed;
          Alcotest.test_case "sizeof folded" `Quick test_tc_sizeof_folded;
          Alcotest.test_case "array decay" `Quick test_tc_array_decay;
          Alcotest.test_case "global init flatten" `Quick test_tc_global_init_flatten;
          Alcotest.test_case "builtin externs" `Quick test_tc_builtin_externs ] );
      ( "layout",
        [ Alcotest.test_case "struct padding" `Quick test_layout_struct_padding;
          Alcotest.test_case "nested array" `Quick test_layout_nested_array;
          Alcotest.test_case "typedef resolution" `Quick test_layout_typedef_resolution;
          qt prop_size_multiple_of_align;
          qt prop_array_size_linear ] ) ]
