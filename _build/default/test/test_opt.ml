(* Tests for the IR optimizer: folding behavior, SSA preservation,
   semantics preservation (differential against the interpreter) and
   SafeFlow-analysis stability under optimization. *)

open Minic

let compile src =
  let ir = Ssair.Build.lower (Typecheck.check_program (Parser.parse_string src)) in
  ignore (Ssair.Mem2reg.run ir);
  ir

let run_int ir =
  match Ssair.Interp.run ir with
  | Ssair.Interp.VInt n -> n
  | VFloat f -> Int64.of_float f
  | _ -> Alcotest.fail "expected integer result"

let instr_count f = List.length (Ssair.Ir.all_instrs f)
let block_count (f : Ssair.Ir.func) = List.length f.Ssair.Ir.blocks

(* -- folding behavior --------------------------------------------------------- *)

let test_constant_folding () =
  let ir = compile "int main() { return 2 + 3 * 4 - 1; }" in
  let n = Ssair.Opt.run ir in
  Alcotest.(check bool) "some rewrites" true (n > 0);
  let f = Option.get (Ssair.Ir.find_func ir "main") in
  (* everything folds into a constant return *)
  Alcotest.(check int) "no instructions left" 0 (instr_count f);
  Alcotest.(check int64) "still 13" 13L (run_int ir)

let test_branch_folding () =
  let ir = compile "int main() { if (1 < 2) { return 10; } return 20; }" in
  ignore (Ssair.Opt.run ir);
  let f = Option.get (Ssair.Ir.find_func ir "main") in
  Alcotest.(check int) "collapsed to one block" 1 (block_count f);
  Alcotest.(check int64) "result" 10L (run_int ir)

let test_switch_folding () =
  let ir =
    compile "int main() { switch (2) { case 1: return 100; case 2: return 200; \
             default: return 300; } }"
  in
  ignore (Ssair.Opt.run ir);
  let f = Option.get (Ssair.Ir.find_func ir "main") in
  Alcotest.(check int) "one block" 1 (block_count f);
  Alcotest.(check int64) "result" 200L (run_int ir)

let test_dead_code_removed () =
  let ir = compile "int main(){ int unused = 5 * 7; int x = 2; return x + 1; }" in
  ignore (Ssair.Opt.run ir);
  let f = Option.get (Ssair.Ir.find_func ir "main") in
  Alcotest.(check int) "all folded away" 0 (instr_count f)

let test_calls_not_removed () =
  let ir =
    compile
      "extern int effectful(void); int main() { effectful(); return 1; }"
  in
  ignore (Ssair.Opt.run ir);
  let f = Option.get (Ssair.Ir.find_func ir "main") in
  let calls =
    List.filter
      (fun i -> match i.Ssair.Ir.idesc with Ssair.Ir.Call _ -> true | _ -> false)
      (Ssair.Ir.all_instrs f)
  in
  Alcotest.(check int) "call kept" 1 (List.length calls)

let test_annotations_kept () =
  let ir =
    compile
      "extern void sendControl(double v); \
       int main() { double v = 1.5; /*** SafeFlow Annotation assert(safe(v)) ***/ \
       sendControl(v); return 0; }"
  in
  ignore (Ssair.Opt.run ir);
  let f = Option.get (Ssair.Ir.find_func ir "main") in
  let annots =
    List.filter
      (fun i -> match i.Ssair.Ir.idesc with Ssair.Ir.Annotation _ -> true | _ -> false)
      (Ssair.Ir.all_instrs f)
  in
  Alcotest.(check int) "annotation kept" 1 (List.length annots)

let test_ssa_preserved () =
  let ir =
    compile
      "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 2 == 0) { s += i; } } return s; } \
       int main() { return f(10); }"
  in
  ignore (Ssair.Opt.run ir);
  Alcotest.(check (list string)) "ssa verifies" []
    (List.map (fun v -> v.Ssair.Verify.vmsg) (Ssair.Verify.check_program ~ssa:true ir))

(* -- differential semantics ---------------------------------------------------- *)

let gen_prog =
  let open QCheck.Gen in
  let expr_leaf =
    oneof [ map (fun n -> string_of_int (abs n mod 50)) small_int; return "x"; return "y" ]
  in
  let expr =
    let* a = expr_leaf and* b = expr_leaf and* op = oneofl [ "+"; "-"; "*"; "%" ] in
    if op = "%" then return (Fmt.str "(%s %s (%s + 7))" a op b)
    else return (Fmt.str "(%s %s %s)" a op b)
  in
  let assign =
    let* v = oneofl [ "x"; "y" ] and* e = expr in
    return (Fmt.str "%s = %s;" v e)
  in
  let rec stmt n =
    if n <= 0 then assign
    else
      frequency
        [ (3, assign);
          ( 1,
            let* c = expr and* s1 = stmt (n / 2) and* s2 = stmt (n / 2) in
            return (Fmt.str "if (%s > 10) { %s } else { %s }" c s1 s2) );
          ( 1,
            let* s1 = stmt (n / 2) in
            return (Fmt.str "{ int k = 0; while (k < 4) { %s k++; } }" s1) );
          ( 1,
            let* c = expr and* s1 = stmt (n / 2) in
            return
              (Fmt.str "switch ((%s) %% 3) { case 0: %s break; case 1: x = x + 1; \
                        default: y = y - 1; }"
                 c s1) ) ]
  in
  let* body = stmt 6 in
  return (Fmt.str "int main() { int x = 3; int y = 17; %s return x * 31 + y; }" body)

let arb_prog = QCheck.make ~print:Fun.id gen_prog

let prop_opt_preserves_semantics =
  QCheck.Test.make ~name:"optimization preserves semantics" ~count:150 arb_prog
    (fun src ->
      let plain = compile src in
      let opt = compile src in
      ignore (Ssair.Opt.run opt);
      run_int plain = run_int opt)

let prop_opt_preserves_ssa =
  QCheck.Test.make ~name:"optimization preserves SSA invariants" ~count:100 arb_prog
    (fun src ->
      let opt = compile src in
      ignore (Ssair.Opt.run opt);
      Ssair.Verify.check_program ~ssa:true opt = [])

let prop_opt_idempotent_result =
  QCheck.Test.make ~name:"second optimization pass changes nothing" ~count:80 arb_prog
    (fun src ->
      let opt = compile src in
      ignore (Ssair.Opt.run opt);
      Ssair.Opt.run opt = 0)

(* -- analysis stability ---------------------------------------------------------- *)

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

let analyze_with_opt path =
  (* replicate Driver.analyze but optimize the IR first *)
  let p = Safeflow.Driver.prepare_file path in
  ignore (Ssair.Opt.run p.Safeflow.Driver.ir);
  let shm = Safeflow.Driver.stage_shm p in
  let p1 = Safeflow.Driver.stage_phase1 p shm in
  let pts = Safeflow.Driver.stage_pointsto p in
  Safeflow.Driver.stage_phase3 p shm p1 pts

let test_analysis_stable_under_optimization () =
  List.iter
    (fun name ->
      let path = find_system name in
      let plain = (Safeflow.Driver.analyze_file path).Safeflow.Driver.report in
      let optimized = analyze_with_opt path in
      Alcotest.(check int) (name ^ ": warnings stable")
        (List.length plain.Safeflow.Report.warnings)
        (List.length optimized.Safeflow.Phase3.warnings);
      let data_deps l =
        List.filter (fun d -> d.Safeflow.Report.d_kind = Safeflow.Report.Data) l
      in
      Alcotest.(check int) (name ^ ": errors stable")
        (List.length (data_deps plain.Safeflow.Report.dependencies))
        (List.length (data_deps optimized.Safeflow.Phase3.dependencies)))
    [ "figure2.c"; "ip_controller.c"; "generic_simplex.c"; "double_ip.c"; "car_follow.c" ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "opt"
    [ ( "folding",
        [ Alcotest.test_case "constants" `Quick test_constant_folding;
          Alcotest.test_case "branches" `Quick test_branch_folding;
          Alcotest.test_case "switch" `Quick test_switch_folding;
          Alcotest.test_case "dead code" `Quick test_dead_code_removed;
          Alcotest.test_case "calls kept" `Quick test_calls_not_removed;
          Alcotest.test_case "annotations kept" `Quick test_annotations_kept;
          Alcotest.test_case "ssa preserved" `Quick test_ssa_preserved ] );
      ( "properties",
        [ qt prop_opt_preserves_semantics; qt prop_opt_preserves_ssa;
          qt prop_opt_idempotent_result ] );
      ( "analysis-stability",
        [ Alcotest.test_case "systems stable" `Quick
            test_analysis_stable_under_optimization ] ) ]
