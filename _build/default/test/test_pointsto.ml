(* Tests for the points-to analysis: targets of allocas, globals, geps,
   loads/stores through the heap, call/return propagation, reachability
   and may-alias queries. *)

open Minic

let compile src =
  let ir = Ssair.Build.lower (Typecheck.check_program (Parser.parse_string src)) in
  ignore (Ssair.Mem2reg.run ir);
  (ir, Pointsto.analyze ir)

let func ir name = Option.get (Ssair.Ir.find_func ir name)

(* the points-to set of the value returned by [fname] *)
let ret_pts pts fname = Pointsto.pts_get pts (Pointsto.Kret fname)

let nodes_of set =
  Pointsto.Tset.elements set |> List.map (fun t -> t.Pointsto.Target.node)

let test_global_address () =
  let ir, pts = compile "int g; int *addr_of_g() { return &g; }" in
  ignore ir;
  match nodes_of (ret_pts pts "addr_of_g") with
  | [ Pointsto.Node.Nglobal "g" ] -> ()
  | other ->
    Alcotest.failf "unexpected targets: %a" Fmt.(Dump.list Pointsto.Node.pp) other

let test_alloca_address_taken () =
  let ir, pts = compile "int f() { int x = 1; int *p = &x; return *p; }" in
  let f = func ir "f" in
  (* some load in f goes through a stack node *)
  let through_stack = ref false in
  List.iter
    (fun i ->
      match i.Ssair.Ir.idesc with
      | Ssair.Ir.Load { ptr; _ } ->
        Pointsto.Tset.iter
          (fun t ->
            match t.Pointsto.Target.node with
            | Pointsto.Node.Nalloca ("f", _) -> through_stack := true
            | _ -> ())
          (Pointsto.points_to pts f ptr)
      | _ -> ())
    (Ssair.Ir.all_instrs f);
  Alcotest.(check bool) "load resolved to the stack slot" true !through_stack

let test_field_offsets_tracked () =
  let ir, pts =
    compile
      "struct S { double a; double b; }; struct S gs; \
       double *addr_b() { return &gs.b; }"
  in
  ignore ir;
  match Pointsto.Tset.elements (ret_pts pts "addr_b") with
  | [ { Pointsto.Target.node = Pointsto.Node.Nglobal "gs"; off = Pointsto.Offset.Byte 8 } ]
    -> ()
  | other ->
    Alcotest.failf "unexpected: %a" Fmt.(Dump.list Pointsto.Target.pp) other

let test_variable_index_top () =
  let ir, pts = compile "double ga[8]; double *cell(int i) { return &ga[i]; }" in
  ignore ir;
  match Pointsto.Tset.elements (ret_pts pts "cell") with
  | [ { Pointsto.Target.node = Pointsto.Node.Nglobal "ga"; off = Pointsto.Offset.Top } ] -> ()
  | other -> Alcotest.failf "unexpected: %a" Fmt.(Dump.list Pointsto.Target.pp) other

let test_heap_store_load () =
  let ir, pts =
    compile
      "int g1; int *slot; \
       void put() { slot = &g1; } \
       int *get() { return slot; } \
       int main() { put(); return *get(); }"
  in
  ignore ir;
  (* get() returns whatever was stored into the global slot *)
  let nodes = nodes_of (ret_pts pts "get") in
  Alcotest.(check bool) "g1 flows through the heap" true
    (List.mem (Pointsto.Node.Nglobal "g1") nodes)

let test_call_argument_binding () =
  let ir, pts =
    compile
      "int g2; int deref(int *p) { return *p; } int main() { return deref(&g2); }"
  in
  ignore ir;
  let param = Pointsto.pts_get pts (Pointsto.Kparam ("deref", "p")) in
  Alcotest.(check bool) "param bound to argument" true
    (List.mem (Pointsto.Node.Nglobal "g2") (nodes_of param))

let test_extern_opaque () =
  let ir, pts =
    compile "extern int *mystery(void); int use() { return *mystery(); }" in
  let f = func ir "use" in
  let has_extern = ref false in
  List.iter
    (fun i ->
      match i.Ssair.Ir.idesc with
      | Ssair.Ir.Load { ptr; _ } ->
        Pointsto.Tset.iter
          (fun t ->
            match t.Pointsto.Target.node with
            | Pointsto.Node.Nextern "mystery" -> has_extern := true
            | _ -> ())
          (Pointsto.points_to pts f ptr)
      | _ -> ())
    (Ssair.Ir.all_instrs f);
  Alcotest.(check bool) "extern result is opaque region" true !has_extern

let test_reachability () =
  let ir, pts =
    compile
      "int g3; int *inner; int **outer; \
       void build() { inner = &g3; outer = &inner; } \
       int main() { build(); return 0; }"
  in
  ignore ir;
  let roots =
    Pointsto.Tset.singleton
      { Pointsto.Target.node = Pointsto.Node.Nglobal "outer"; off = Pointsto.Offset.Byte 0 }
  in
  let reach = Pointsto.reachable pts roots in
  let nodes = nodes_of reach in
  Alcotest.(check bool) "inner reachable" true
    (List.mem (Pointsto.Node.Nglobal "inner") nodes);
  Alcotest.(check bool) "g3 transitively reachable" true
    (List.mem (Pointsto.Node.Nglobal "g3") nodes)

let test_may_alias () =
  let ir, pts =
    compile
      "int a; int b; \
       int *pick(int c) { if (c) { return &a; } return &b; } \
       int *left() { return &a; } \
       int *right() { return &b; }"
  in
  let fpick = func ir "pick" in
  ignore fpick;
  let pa = ret_pts pts "left" and pb = ret_pts pts "right" and pp = ret_pts pts "pick" in
  let inter x y =
    not
      (Pointsto.Tset.is_empty
         (Pointsto.Tset.inter
            (Pointsto.Tset.map (fun t -> { t with Pointsto.Target.off = Pointsto.Offset.Top }) x)
            (Pointsto.Tset.map (fun t -> { t with Pointsto.Target.off = Pointsto.Offset.Top }) y)))
  in
  Alcotest.(check bool) "left vs right disjoint" false (inter pa pb);
  Alcotest.(check bool) "pick may alias left" true (inter pp pa);
  Alcotest.(check bool) "pick may alias right" true (inter pp pb)

let () =
  Alcotest.run "pointsto"
    [ ( "targets",
        [ Alcotest.test_case "global address" `Quick test_global_address;
          Alcotest.test_case "alloca address" `Quick test_alloca_address_taken;
          Alcotest.test_case "field offsets" `Quick test_field_offsets_tracked;
          Alcotest.test_case "variable index top" `Quick test_variable_index_top ] );
      ( "flow",
        [ Alcotest.test_case "heap store/load" `Quick test_heap_store_load;
          Alcotest.test_case "call binding" `Quick test_call_argument_binding;
          Alcotest.test_case "extern opaque" `Quick test_extern_opaque ] );
      ( "queries",
        [ Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "may alias" `Quick test_may_alias ] ) ]
