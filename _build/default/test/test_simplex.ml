(* Tests for the Simplex runtime substrate: monitor soundness, shared
   memory semantics, and the fault-injection scenarios that mirror the
   paper's five discovered errors. *)

open Simplex

let ip () = Plant.inverted_pendulum ()

(* -- Monitor ------------------------------------------------------------- *)

let test_monitor_accepts_safe_output () =
  let plant = ip () in
  let safety = Controller.safety plant in
  let m = Monitor.make plant safety in
  let x = [| 0.1; 0.0; 0.03; 0.0 |] in
  let u = Controller.output safety x in
  Alcotest.(check bool) "safety output accepted" true (Monitor.check m x ~u)

let test_monitor_rejects_nan () =
  let plant = ip () in
  let m = Monitor.make plant (Controller.safety plant) in
  Alcotest.(check bool) "nan rejected" false
    (Monitor.check m [| 0.0; 0.0; 0.0; 0.0 |] ~u:Float.nan)

let test_monitor_rejects_out_of_range () =
  let plant = ip () in
  let m = Monitor.make plant (Controller.safety plant) in
  Alcotest.(check bool) "12V rejected" false
    (Monitor.check m [| 0.0; 0.0; 0.0; 0.0 |] ~u:12.0)

let test_monitor_rejects_destabilizing_near_boundary () =
  let plant = ip () in
  let safety = Controller.safety plant in
  let m = Monitor.make plant safety in
  (* at the envelope boundary (the reference state), propose a push that
     accelerates the fall *)
  let x = [| 0.3; 0.0; 0.12; 0.0 |] in
  Alcotest.(check bool) "boundary state inside" true (Monitor.inside m x);
  let u_out = -.plant.Plant.u_max in
  Alcotest.(check bool) "outward push rejected" false (Monitor.check m x ~u:u_out)

(* Property: the envelope is invariant under the safety controller — from
   any state inside, one safety step stays inside (linear model, no
   saturation active). *)
let prop_envelope_invariant =
  let gen =
    QCheck.Gen.(
      let* a = float_range (-0.1) 0.1 in
      let* pos = float_range (-0.25) 0.25 in
      let* vel = float_range (-0.2) 0.2 in
      let* av = float_range (-0.2) 0.2 in
      return [| pos; vel; a; av |])
  in
  let arb = QCheck.make ~print:(fun x -> Fmt.str "%a" Fmt.(array ~sep:comma float) x) gen in
  QCheck.Test.make ~name:"safety step keeps Lyapunov value non-increasing" ~count:300 arb
    (fun x ->
      let plant = ip () in
      let safety = Controller.safety plant in
      let m = Monitor.make plant safety in
      if not (Monitor.inside m x) then true (* only states inside the envelope *)
      else begin
        let u = Controller.output safety x in
        if Float.abs u > plant.Plant.u_max then true (* saturation: out of scope *)
        else
          let x' = Plant.step plant x ~u ~w:(Array.make 4 0.0) in
          Monitor.value m x' <= Monitor.value m x +. 1e-9
      end)

(* -- Shared memory -------------------------------------------------------- *)

let test_shm_basic () =
  let shm = Shm_rt.create () in
  Shm_rt.add_region shm "r" ~noncore:true;
  Shm_rt.add_cell shm ~region:"r" "a" (Shm_rt.F 1.5);
  Alcotest.(check (float 0.0)) "read back" 1.5 (Shm_rt.get_f shm "a");
  Shm_rt.set shm "a" (Shm_rt.F 2.5);
  Alcotest.(check (float 0.0)) "after write" 2.5 (Shm_rt.get_f shm "a")

let test_shm_noncore_write_allowed () =
  let shm = Shm_rt.create () in
  Shm_rt.add_region shm "r" ~noncore:true;
  Shm_rt.add_cell shm ~region:"r" "a" (Shm_rt.F 0.0);
  Shm_rt.noncore_set shm "a" (Shm_rt.F 9.0);
  Alcotest.(check int) "no violation" 0 shm.Shm_rt.lock_violations;
  Alcotest.(check (float 0.0)) "value changed" 9.0 (Shm_rt.get_f shm "a")

let test_shm_lock_violation_recorded () =
  let shm = Shm_rt.create () in
  Shm_rt.add_region shm "r" ~noncore:true;
  Shm_rt.add_cell shm ~region:"r" "a" (Shm_rt.F 0.0);
  Shm_rt.lock shm;
  Shm_rt.noncore_set shm "a" (Shm_rt.F 9.0);
  Alcotest.(check int) "violation recorded" 1 shm.Shm_rt.lock_violations;
  (* the write still happened: non-core encapsulation cannot be assumed *)
  Alcotest.(check (float 0.0)) "write happened anyway" 9.0 (Shm_rt.get_f shm "a")

let test_shm_core_region_protected () =
  let shm = Shm_rt.create () in
  Shm_rt.add_region shm "core" ~noncore:false;
  Shm_rt.add_cell shm ~region:"core" "c" (Shm_rt.I 7);
  Shm_rt.noncore_set shm "c" (Shm_rt.I 1);
  Alcotest.(check int) "violation recorded" 1 shm.Shm_rt.lock_violations

(* -- Scenarios -------------------------------------------------------------- *)

let run_scenario ?(variant = Sim.Fixed) ?(steps = 2000) scenario =
  let cfg = { (Sim.default_config (ip ())) with scenario; variant; steps } in
  Sim.run cfg

let test_nominal_survives () =
  let r = run_scenario Sim.Nominal in
  Alcotest.(check bool) "no crash" false r.Sim.crashed;
  Alcotest.(check bool) "angle stays small" true (r.Sim.max_angle < 0.1)

let test_destabilizing_controller_contained () =
  let r = run_scenario (Sim.Complex_fault Controller.Destabilizing) in
  Alcotest.(check bool) "no crash" false r.Sim.crashed;
  Alcotest.(check bool) "monitor engaged" true (r.Sim.monitor_rejections > 0)

let test_nan_controller_contained () =
  let r = run_scenario (Sim.Complex_fault Controller.Nan_output) in
  Alcotest.(check bool) "no crash" false r.Sim.crashed;
  Alcotest.(check bool) "all rejected" true (r.Sim.monitor_rejections >= r.Sim.steps_run - 1)

let test_stuck_controller_contained () =
  let r = run_scenario (Sim.Complex_fault (Controller.Stuck 4.5)) in
  Alcotest.(check bool) "no crash" false r.Sim.crashed

let test_rigged_feedback_defeats_vulnerable_core () =
  let fixed = run_scenario ~variant:Sim.Fixed (Sim.Rigged_feedback 300) in
  let vulnerable = run_scenario ~variant:Sim.Vulnerable (Sim.Rigged_feedback 300) in
  Alcotest.(check bool) "fixed core survives" false fixed.Sim.crashed;
  Alcotest.(check bool) "vulnerable core crashes" true vulnerable.Sim.crashed;
  Alcotest.(check bool) "crash happens after the rigging begins" true
    (vulnerable.Sim.steps_run >= 300)

let test_kill_pid_attack () =
  let r = run_scenario (Sim.Kill_pid 100) in
  Alcotest.(check bool) "core killed itself" true r.Sim.core_killed;
  Alcotest.(check bool) "stopped early" true (r.Sim.steps_run < 2000)

let test_double_pendulum_scenarios () =
  let plant = Plant.double_inverted_pendulum () in
  let cfg = Sim.default_config plant in
  let nominal = Sim.run cfg in
  Alcotest.(check bool) "dip nominal survives" false nominal.Sim.crashed;
  let faulty = Sim.run { cfg with scenario = Sim.Complex_fault Controller.Destabilizing } in
  Alcotest.(check bool) "dip faulty contained" false faulty.Sim.crashed

let test_determinism () =
  let r1 = run_scenario ~steps:500 Sim.Nominal in
  let r2 = run_scenario ~steps:500 Sim.Nominal in
  Alcotest.(check (float 0.0)) "same cost" r1.Sim.cost r2.Sim.cost;
  Alcotest.(check int) "same rejections" r1.Sim.monitor_rejections r2.Sim.monitor_rejections

let test_seed_changes_trajectory () =
  let cfg = { (Sim.default_config (ip ())) with steps = 500 } in
  let r1 = Sim.run cfg in
  let r2 = Sim.run { cfg with seed = 2 } in
  Alcotest.(check bool) "different disturbance, different cost" true
    (r1.Sim.cost <> r2.Sim.cost)

let test_generic_lti_plant () =
  let plant = Plant.generic_lti ~dim:3 () in
  let r = Sim.run { (Sim.default_config plant) with steps = 1000 } in
  Alcotest.(check bool) "generic plant survives" false r.Sim.crashed

(* -- Car-following collision monitor (the paper's autonomous-car example) -- *)

let test_collision_monitor_accepts_safe () =
  let plant = Plant.car_following () in
  (* big gap, matched speeds: mild acceleration is fine *)
  let x = [| 40.0; 0.0; 20.0 |] in
  Alcotest.(check bool) "accepted" true (Monitor.collision_check plant x ~u:1.0)

let test_collision_monitor_rejects_closing () =
  let plant = Plant.car_following () in
  (* closing at 4 m/s with a 20 m gap: accelerating is unrecoverable,
     braking is fine *)
  let x = [| 20.0; 4.0; 20.0 |] in
  Alcotest.(check bool) "accelerating rejected" false
    (Monitor.collision_check plant x ~u:1.0);
  Alcotest.(check bool) "braking accepted" true
    (Monitor.collision_check plant x ~u:(-6.0))

let test_collision_monitor_rejects_nan_and_range () =
  let plant = Plant.car_following () in
  let x = [| 40.0; 0.0; 20.0 |] in
  Alcotest.(check bool) "nan" false (Monitor.collision_check plant x ~u:Float.nan);
  Alcotest.(check bool) "out of range" false (Monitor.collision_check plant x ~u:5.0)

(* closed loop: an aggressive planner pushes; the monitor-gated core
   never collides even when the lead vehicle brakes hard; the ungated
   variant collides *)
let run_cruise ~gated ~steps =
  let plant = Plant.car_following () in
  let x = ref [| 30.0; 0.0; 25.0 |] in
  let collided = ref false in
  (for k = 0 to steps - 1 do
     if not !collided then begin
       let planner_u = 1.5 (* always wants to close the gap *) in
       let safe_u =
         (* headway policy *)
         let desired = 8.0 +. (1.6 *. !x.(2)) in
         Float.max (-6.0) (Float.min 2.0 ((0.25 *. (!x.(0) -. desired)) -. (0.9 *. !x.(1))))
       in
       let u =
         if (not gated) || Monitor.collision_check plant !x ~u:planner_u then planner_u
         else safe_u
       in
       (* the lead vehicle brakes hard between steps 100 and 250 *)
       let lead_acc = if k >= 100 && k < 250 then -5.0 else 0.0 in
       let w = [| 0.0; -.lead_acc *. plant.Plant.dt; 0.0 |] in
       x := Plant.step plant !x ~u ~w;
       if Plant.collided !x then collided := true
     end
   done);
  !collided

let test_cruise_monitor_prevents_collision () =
  Alcotest.(check bool) "gated core never collides" false
    (run_cruise ~gated:true ~steps:600);
  Alcotest.(check bool) "ungated core collides" true
    (run_cruise ~gated:false ~steps:600)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "simplex"
    [ ( "monitor",
        [ Alcotest.test_case "accepts safe" `Quick test_monitor_accepts_safe_output;
          Alcotest.test_case "rejects nan" `Quick test_monitor_rejects_nan;
          Alcotest.test_case "rejects range" `Quick test_monitor_rejects_out_of_range;
          Alcotest.test_case "rejects boundary push" `Quick
            test_monitor_rejects_destabilizing_near_boundary;
          qt prop_envelope_invariant ] );
      ( "shm",
        [ Alcotest.test_case "basic" `Quick test_shm_basic;
          Alcotest.test_case "noncore write" `Quick test_shm_noncore_write_allowed;
          Alcotest.test_case "lock violation" `Quick test_shm_lock_violation_recorded;
          Alcotest.test_case "core region" `Quick test_shm_core_region_protected ] );
      ( "collision-monitor",
        [ Alcotest.test_case "accepts safe" `Quick test_collision_monitor_accepts_safe;
          Alcotest.test_case "rejects closing" `Quick test_collision_monitor_rejects_closing;
          Alcotest.test_case "rejects nan/range" `Quick
            test_collision_monitor_rejects_nan_and_range;
          Alcotest.test_case "prevents collision" `Quick
            test_cruise_monitor_prevents_collision ] );
      ( "scenarios",
        [ Alcotest.test_case "nominal" `Quick test_nominal_survives;
          Alcotest.test_case "destabilizing" `Quick test_destabilizing_controller_contained;
          Alcotest.test_case "nan output" `Quick test_nan_controller_contained;
          Alcotest.test_case "stuck output" `Quick test_stuck_controller_contained;
          Alcotest.test_case "rigged feedback" `Quick
            test_rigged_feedback_defeats_vulnerable_core;
          Alcotest.test_case "kill pid" `Quick test_kill_pid_attack;
          Alcotest.test_case "double pendulum" `Quick test_double_pendulum_scenarios;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_trajectory;
          Alcotest.test_case "generic plant" `Quick test_generic_lti_plant ] ) ]
