(* Table 1 reproduction tests: the three subject systems must produce the
   paper's exact annotation counts, error dependencies, warnings and
   false positives — plus InitCheck layouts, runnable analyses of the
   non-core components, and parseability of the pre-split originals. *)

open Safeflow

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

let analyze name = Driver.analyze_file (find_system name)

type expectation = {
  e_regions : int;
  e_annot : int;
  e_errors : int;
  e_warnings : int;
  e_false_positives : int;
  e_core_loc_min : int;
  e_core_loc_max : int;
}

let check_table1 name e =
  let a = analyze name in
  let r = a.Driver.report in
  Alcotest.(check int) (name ^ ": regions") e.e_regions (List.length r.Report.regions);
  Alcotest.(check int) (name ^ ": annotation lines") e.e_annot r.Report.annotation_lines;
  Alcotest.(check int) (name ^ ": restriction violations") 0
    (List.length r.Report.violations);
  Alcotest.(check int) (name ^ ": error dependencies") e.e_errors
    (List.length (Report.errors r));
  Alcotest.(check int) (name ^ ": warnings") e.e_warnings (List.length r.Report.warnings);
  Alcotest.(check int) (name ^ ": false positives") e.e_false_positives
    (List.length (Report.control_deps r));
  let loc = List.assoc "loc" r.Report.stats in
  Alcotest.(check bool)
    (Fmt.str "%s: core LOC %d within [%d, %d]" name loc e.e_core_loc_min e.e_core_loc_max)
    true
    (loc >= e.e_core_loc_min && loc <= e.e_core_loc_max)

(* Paper Table 1: IP = 11 annot, 1 error, 7 warnings, 2 FP, core 820 LOC *)
let test_ip_table1 () =
  check_table1 "ip_controller.c"
    { e_regions = 4; e_annot = 11; e_errors = 1; e_warnings = 7; e_false_positives = 2;
      e_core_loc_min = 780; e_core_loc_max = 860 }

(* Generic Simplex = 22 annot, 2 errors, 7 warnings, 6 FP, core 1020 LOC *)
let test_generic_table1 () =
  check_table1 "generic_simplex.c"
    { e_regions = 7; e_annot = 22; e_errors = 2; e_warnings = 7; e_false_positives = 6;
      e_core_loc_min = 970; e_core_loc_max = 1070 }

(* Double IP = 23 annot, 2 errors, 8 warnings, 2 FP, core 929 LOC *)
let test_double_ip_table1 () =
  check_table1 "double_ip.c"
    { e_regions = 7; e_annot = 23; e_errors = 2; e_warnings = 8; e_false_positives = 2;
      e_core_loc_min = 880; e_core_loc_max = 980 }

(* -- Error identities -------------------------------------------------------- *)

let test_ip_error_is_kill_pid () =
  let r = (analyze "ip_controller.c").Driver.report in
  match Report.errors r with
  | [ d ] ->
    Alcotest.(check bool) "sink is kill" true
      (Astring.String.is_infix ~affix:"kill" d.Report.d_sink);
    Alcotest.(check bool) "source is the watchdog region" true
      (List.exists (Astring.String.is_infix ~affix:"wdInfo") d.Report.d_trace)
  | _ -> Alcotest.fail "expected exactly one error"

let test_generic_errors_are_feedback_and_kill () =
  let r = (analyze "generic_simplex.c").Driver.report in
  let errs = Report.errors r in
  Alcotest.(check bool) "one error is the rigged feedback path" true
    (List.exists
       (fun d ->
         Astring.String.is_infix ~affix:"output" d.Report.d_sink
         && List.exists (Astring.String.is_infix ~affix:"fbShm") d.Report.d_trace)
       errs);
  Alcotest.(check bool) "one error is the kill pid" true
    (List.exists (fun d -> Astring.String.is_infix ~affix:"kill" d.Report.d_sink) errs)

let test_double_ip_errors () =
  let r = (analyze "double_ip.c").Driver.report in
  let errs = Report.errors r in
  Alcotest.(check bool) "one error is the tuning propagation" true
    (List.exists
       (fun d -> List.exists (Astring.String.is_infix ~affix:"tuneShm") d.Report.d_trace)
       errs);
  Alcotest.(check bool) "one error is the kill pid" true
    (List.exists (fun d -> Astring.String.is_infix ~affix:"kill" d.Report.d_sink) errs)

(* all control-only reports come from mode/config/ui selection — the
   paper's false-positive class *)
let test_fp_class_is_control_dependence () =
  List.iter
    (fun name ->
      let r = (analyze name).Driver.report in
      List.iter
        (fun d -> Alcotest.(check bool) "kind" true (d.Report.d_kind = Report.Control_only))
        (Report.control_deps r))
    [ "ip_controller.c"; "generic_simplex.c"; "double_ip.c" ]

(* -- InitCheck ------------------------------------------------------------------ *)

let test_initcheck_layouts () =
  List.iter
    (fun (name, nregions) ->
      let a = analyze name in
      let layout = Shm.run_init_check a.Driver.prepared.Driver.ir a.Driver.shm in
      Alcotest.(check int) (name ^ ": layout entries") nregions (List.length layout);
      (* regions are disjoint and ordered *)
      let sorted = List.sort (fun (_, a, _) (_, b, _) -> compare a b) layout in
      let rec disjoint = function
        | (_, o1, s1) :: ((_, o2, _) :: _ as rest) ->
          Alcotest.(check bool) "no overlap" true (o1 + s1 <= o2);
          disjoint rest
        | _ -> ()
      in
      disjoint sorted)
    [ ("ip_controller.c", 4); ("generic_simplex.c", 7); ("double_ip.c", 7) ]

(* -- Non-core components and originals ------------------------------------------- *)

let test_noncore_components_parse () =
  List.iter
    (fun name ->
      let path = find_system ("noncore/" ^ name) in
      let prog = Minic.Parser.parse_file path in
      let tast = Minic.Typecheck.check_program prog in
      let ir = Ssair.Build.lower tast in
      ignore (Ssair.Mem2reg.run ir);
      Alcotest.(check (list string)) (name ^ " verifies") []
        (List.map (fun v -> v.Ssair.Verify.vmsg) (Ssair.Verify.check_program ~ssa:true ir)))
    [ "ip_complex.c"; "generic_complex.c"; "dip_complex.c" ]

(* the pre-split originals parse; their monitored reads are necessarily
   unmonitored (no annotation is possible), so they warn more *)
let test_originals_show_why_split_was_needed () =
  List.iter
    (fun (orig, split) ->
      let ro = (Driver.analyze_file (find_system ("originals/" ^ orig))).Driver.report in
      let rs = (analyze split).Driver.report in
      Alcotest.(check bool)
        (orig ^ ": unannotated original warns strictly more")
        true
        (List.length ro.Report.warnings > List.length rs.Report.warnings))
    [ ("ip_controller_orig.c", "ip_controller.c");
      ("double_ip_orig.c", "double_ip.c") ]

(* the source-change diff between original and split versions is small
   (the paper reports 7 changed lines / 1 function for IP and double IP) *)
let diff_size a b =
  (* lines exclusive to either side, via LCS *)
  let la = Array.of_list (String.split_on_char '\n' a) in
  let lb = Array.of_list (String.split_on_char '\n' b) in
  let n = Array.length la and m = Array.length lb in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      dp.(i).(j) <-
        (if String.equal la.(i) lb.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  n + m - (2 * dp.(0).(0))

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_source_change_size () =
  List.iter
    (fun (orig, split) ->
      let d =
        diff_size
          (read_file (find_system ("originals/" ^ orig)))
          (read_file (find_system split))
      in
      (* one function split: bounded, local change *)
      Alcotest.(check bool) (split ^ Fmt.str ": diff %d lines bounded" d) true
        (d > 0 && d < 120))
    [ ("ip_controller_orig.c", "ip_controller.c");
      ("double_ip_orig.c", "double_ip.c") ]

(* -- Executability: the core controllers actually run under the interpreter -- *)

let run_core_system name ~steps =
  let a = analyze name in
  let ir = a.Driver.prepared.Driver.ir in
  let outputs = ref [] in
  let tick = ref 0 in
  let handler st ename args =
    match (ename, args) with
    | "shmget", _ -> Ssair.Interp.VInt 9L
    | "shmat", _ -> Ssair.Interp.VPtr (Ssair.Interp.alloc_block st "shm" 4096)
    | ("readTrackSensor" | "readAngleSensor" | "readCartSensor"
      | "readAngle1Sensor" | "readAngle2Sensor"), _ ->
      incr tick;
      Ssair.Interp.VFloat (0.01 *. sin (float_of_int !tick *. 0.01))
    | "readSensorChannel", _ ->
      incr tick;
      Ssair.Interp.VFloat (0.005 *. cos (float_of_int !tick *. 0.02))
    | "readMotorCurrent", _ -> Ssair.Interp.VFloat 0.0
    | "readConfigValue", [ Ssair.Interp.VInt idx ] ->
      (* identity-ish plant description: dim 2, mild gains, PD-shaped P *)
      let i = Int64.to_int idx in
      Ssair.Interp.VFloat
        (if i = 0 then 2.0
         else if i >= 25 && i <= 40 then if (i - 25) mod 5 = 0 then 1.0 else 0.0
         else if i = 41 then 100.0
         else if i >= 46 && i <= 49 then -10.0
         else if i >= 50 && i <= 53 then 10.0
         else if i >= 66 then 1000.0
         else 0.1)
    | "sendControl", [ v ] ->
      (outputs := v :: !outputs);
      Ssair.Interp.VInt 0L
    | "current_time", _ ->
      incr tick;
      Ssair.Interp.VInt (Int64.of_int (!tick * 100))
    | "spawn_noncore", _ -> Ssair.Interp.VInt 4242L
    | "getpid", _ -> Ssair.Interp.VInt 1000L
    | "kill", _ -> Ssair.Interp.VInt 0L
    | _ -> Ssair.Interp.VInt 0L
  in
  (* bound the run with fuel: the control loop is infinite by design *)
  (try ignore (Ssair.Interp.run ~extern_handler:handler ~max_steps:steps ir)
   with Ssair.Interp.Trap _ -> ());
  List.length !outputs

let test_systems_execute () =
  List.iter
    (fun name ->
      let sent = run_core_system name ~steps:300_000 in
      Alcotest.(check bool) (name ^ " actuates") true (sent > 0))
    [ "ip_controller.c"; "generic_simplex.c"; "double_ip.c" ]

let () =
  Alcotest.run "systems"
    [ ( "table1",
        [ Alcotest.test_case "IP row" `Quick test_ip_table1;
          Alcotest.test_case "Generic Simplex row" `Quick test_generic_table1;
          Alcotest.test_case "Double IP row" `Quick test_double_ip_table1 ] );
      ( "error identities",
        [ Alcotest.test_case "IP kill pid" `Quick test_ip_error_is_kill_pid;
          Alcotest.test_case "generic feedback+kill" `Quick
            test_generic_errors_are_feedback_and_kill;
          Alcotest.test_case "double IP tuning+kill" `Quick test_double_ip_errors;
          Alcotest.test_case "FP class" `Quick test_fp_class_is_control_dependence ] );
      ( "initcheck",
        [ Alcotest.test_case "layouts" `Quick test_initcheck_layouts ] );
      ( "companions",
        [ Alcotest.test_case "noncore parse+verify" `Quick test_noncore_components_parse;
          Alcotest.test_case "originals warn more" `Quick
            test_originals_show_why_split_was_needed;
          Alcotest.test_case "source change size" `Quick test_source_change_size ] );
      ( "execution",
        [ Alcotest.test_case "cores actuate" `Slow test_systems_execute ] ) ]
