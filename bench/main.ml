(* SafeFlow benchmark harness.

   Usage: main.exe [SUBCOMMAND] [--json FILE] [--iters N] [--system NAME]

   Subcommands (default: all):
     table1    - regenerate the paper's Table 1 (paper vs measured)
     phases    - per-phase analysis timing on the three systems (B1)
     scale     - analysis time vs synthetic core-component size (B2)
     engines   - legacy dense engine vs sparse worklist engine (B1 + B2)
     cache     - content-addressed cache: cold vs warm vs one-function edit
     fleet     - sharded multi-system analysis over a shared cache
                 (analyses/sec cold vs warm, cross-system dedupe)
     ablation  - field/context/control-dependence toggles (B3)
     summary   - exact vs ESP-style summary engine (B4)
     sim       - closed-loop Simplex scenario outcomes (Figure 1 / §4 narrative)
     ranges    - value-range A1/A2 discharge and control-dependence pruning
     micro     - bechamel microbenchmarks of the substrates

   Options:
     --json FILE    also write the subcommand's results as JSON
     --iters N      samples per measurement (median is reported; default 5)
     --system NAME  restrict table rows to the named system (e.g. IP)
     --synth SIZES  engines: run only the synthetic grid at these
                    comma-separated worker counts (CI perf smoke);
                    fleet: member counts of the synthetic fleets
     --seed N       seed for synthetic program generation (engines,
                    fleet); same seed => byte-identical sources on
                    every host
     --jobs N       fleet: worker processes per fleet run (default 2) *)

let find path =
  let candidates = [ path; "../" ^ path; "../../" ^ path; "../../../" ^ path ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith ("cannot find " ^ path)

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let median l = List.nth (List.sort compare l) (List.length l / 2)

(* one timed sample; the heap is compacted first so a major collection
   triggered by the previous sample's garbage does not land inside this
   one (the dominant source of run-to-run variance) *)
let timed f =
  Gc.compact ();
  time_ms f

type stats = { st_median : float; st_min : float; st_mean : float; st_stddev : float }

let stats_of (samples : float list) : stats =
  let n = max 1 (List.length samples) in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 samples
    /. float_of_int n
  in
  {
    st_median = median samples;
    st_min = List.fold_left Float.min Float.infinity samples;
    st_mean = mean;
    st_stddev = sqrt var;
  }

(* -- options ---------------------------------------------------------------- *)

type opts = {
  json : string option;
  iters : int;
  system : string option;
  synth : int list option;  (* engines: restrict B2 to these sizes, skip B1;
                               fleet: member counts *)
  seed : int;  (* synthetic-generation seed (engines, fleet) *)
  jobs : int option;  (* fleet: worker processes *)
  threshold : float option;  (* diff: regression threshold, percent *)
  rest : string list;  (* positionals after the command (diff: OLD NEW) *)
}

let default_opts =
  { json = None; iters = 5; system = None; synth = None; seed = 0; jobs = None;
    threshold = None; rest = [] }

let parse_args () : string * opts =
  let rec go cmd o = function
    | [] -> (Option.value ~default:"all" cmd, { o with rest = List.rev o.rest })
    | "--json" :: v :: rest -> go cmd { o with json = Some v } rest
    | "--iters" :: v :: rest -> go cmd { o with iters = int_of_string v } rest
    | "--system" :: v :: rest -> go cmd { o with system = Some v } rest
    | "--synth" :: v :: rest ->
      let sizes = List.map int_of_string (String.split_on_char ',' v) in
      go cmd { o with synth = Some sizes } rest
    | "--seed" :: v :: rest -> go cmd { o with seed = int_of_string v } rest
    | "--jobs" :: v :: rest -> go cmd { o with jobs = Some (int_of_string v) } rest
    | "--threshold" :: v :: rest ->
      go cmd { o with threshold = Some (float_of_string v) } rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' ->
      if cmd = None then go (Some a) o rest
      else go cmd { o with rest = a :: o.rest } rest
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  go None default_opts (List.tl (Array.to_list Sys.argv))

(* -- minimal JSON emitter (no external dependency) --------------------------- *)

type json =
  | Jobj of (string * json) list
  | Jarr of json list
  | Jstr of string
  | Jint of int
  | Jfloat of float
  | Jbool of bool

let rec json_to_buf b = function
  | Jobj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%S:" k);
        json_to_buf b v)
      fields;
    Buffer.add_char b '}'
  | Jarr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        json_to_buf b v)
      items;
    Buffer.add_char b ']'
  | Jstr s -> Buffer.add_string b (Printf.sprintf "%S" s)
  | Jint n -> Buffer.add_string b (string_of_int n)
  | Jfloat f -> Buffer.add_string b (Printf.sprintf "%.3f" f)
  | Jbool v -> Buffer.add_string b (string_of_bool v)

let write_json (o : opts) (j : json) : unit =
  match o.json with
  | None -> ()
  | Some path ->
    let b = Buffer.create 4096 in
    json_to_buf b j;
    Buffer.add_char b '\n';
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    if path <> "/dev/null" then Fmt.pr "results written to %s@." path

(* JSON fields for one measurement: median under the historical "_ms" name
   plus the min/mean/stddev spread *)
let jstats prefix (st : stats) =
  [ (prefix ^ "_ms", Jfloat st.st_median);
    (prefix ^ "_min_ms", Jfloat st.st_min);
    (prefix ^ "_mean_ms", Jfloat st.st_mean);
    (prefix ^ "_stddev_ms", Jfloat st.st_stddev) ]

(* Self-describing records: the semantic-config fingerprint
   (Digest_ir.semantic_config — engine-independent by construction) ties
   each record to the exact analysis semantics that produced it, so two
   BENCH files can be compared without guessing at flag drift. *)
let config_fingerprint (c : Safeflow.Config.t) = Safeflow.Digest_ir.semantic_config c

let jmeta ~benchmark ~engines =
  ( "meta",
    Jobj
      [ ("benchmark", Jstr benchmark);
        ("engines", Jarr (List.map (fun e -> Jstr e) engines));
        ("tool_version", Jstr Safeflow.Version.tool);
        ("ocaml_version", Jstr Sys.ocaml_version);
        ("word_size", Jint Sys.word_size);
        (* bench numbers only transfer between identical hosts; diff
           treats a hostname mismatch as non-blocking *)
        ("hostname", Jstr (try Unix.gethostname () with _ -> "unknown"));
        ("config_fingerprint", Jstr (config_fingerprint Safeflow.Config.default));
        ("cache_format_version", Jint Safeflow.Cache.format_version);
        ("telemetry_schema", Jstr Safeflow.Telemetry.stats_json_schema);
        ("sarif_version", Jstr Safeflow.Sarif.sarif_version);
        ("findings_format", Jstr Safeflow.Diffreport.format_version);
        ("fingerprint_version", Jstr Safeflow.Fingerprint.version) ] )

(* Counter snapshot from one dedicated instrumented run of [f] — never
   from the timed samples, which run with telemetry off so the recorded
   times stay comparable with older BENCH files.  Latency histograms ride
   along under "histograms": count plus bucket-ceiling p50/p90/p99 in µs
   for every populated histogram (omega.query, absint.summary, ...). *)
let jtelemetry f =
  Safeflow.Telemetry.set_enabled true;
  Safeflow.Telemetry.reset ();
  ignore (f ());
  let counters = Safeflow.Telemetry.counters () in
  let hists = Safeflow.Telemetry.histograms () in
  Safeflow.Telemetry.set_enabled false;
  let us ns = float_of_int ns /. 1000.0 in
  let jhist (h : Safeflow.Telemetry.hist_view) =
    ( h.Safeflow.Telemetry.hv_name,
      Jobj
        [ ("count", Jint h.Safeflow.Telemetry.hv_count);
          ("total_ms", Jfloat (float_of_int h.Safeflow.Telemetry.hv_sum_ns /. 1e6));
          ("p50_us", Jfloat (us h.Safeflow.Telemetry.hv_p50_ns));
          ("p90_us", Jfloat (us h.Safeflow.Telemetry.hv_p90_ns));
          ("p99_us", Jfloat (us h.Safeflow.Telemetry.hv_p99_ns)) ] )
  in
  let populated =
    List.filter (fun (h : Safeflow.Telemetry.hist_view) -> h.Safeflow.Telemetry.hv_count > 0)
      hists
  in
  ( "telemetry",
    Jobj
      (List.map (fun (k, v) -> (k, Jint v)) counters
      @ [ ("histograms", Jobj (List.map jhist populated)) ]) )

(* -- parallel map over independent work items (one domain per core) ---------- *)

let par_map (f : 'a -> 'b) (items : 'a list) : 'b list =
  let n = List.length items in
  if n <= 1 then List.map f items
  else begin
    let input = Array.of_list items in
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (f input.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let extra = min (Domain.recommended_domain_count () - 1) (n - 1) in
    let domains = List.init (max 0 extra) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error e) -> raise e
         | None -> assert false)
  end

(* ==================================================== Table 1 ============ *)

type paper_row = {
  p_name : string;
  p_core_file : string;
  p_noncore_files : string list;
  p_orig_file : string option;
  p_loc_total : string;  (* as printed in the paper *)
  p_loc_core : int;
  p_changes : string;
  p_annot : int;
  p_errors : int;
  p_warnings : int;
  p_fps : int;
}

let paper_rows =
  [ { p_name = "IP"; p_core_file = "ip_controller.c";
      p_noncore_files = [ "noncore/ip_complex.c" ];
      p_orig_file = Some "originals/ip_controller_orig.c";
      p_loc_total = "7079"; p_loc_core = 820; p_changes = "diff 86, 1 func";
      p_annot = 11; p_errors = 1; p_warnings = 7; p_fps = 2 };
    { p_name = "Generic Simplex"; p_core_file = "generic_simplex.c";
      p_noncore_files = [ "noncore/generic_complex.c" ];
      p_orig_file = None;
      p_loc_total = "8057"; p_loc_core = 1020; p_changes = "0";
      p_annot = 22; p_errors = 2; p_warnings = 7; p_fps = 6 };
    { p_name = "Double IP"; p_core_file = "double_ip.c";
      p_noncore_files = [ "noncore/dip_complex.c" ];
      p_orig_file = Some "originals/double_ip_orig.c";
      p_loc_total = ">7188"; p_loc_core = 929; p_changes = "diff 88, 1 func";
      p_annot = 23; p_errors = 2; p_warnings = 8; p_fps = 2 } ]

let selected_rows (o : opts) =
  match o.system with
  | None -> paper_rows
  | Some name -> (
    match
      List.filter
        (fun r -> String.lowercase_ascii r.p_name = String.lowercase_ascii name)
        paper_rows
    with
    | [] -> failwith ("unknown system " ^ name)
    | rows -> rows)

(* changed-line count between original and split source via LCS *)
let diff_size a b =
  let la = Array.of_list (String.split_on_char '\n' a) in
  let lb = Array.of_list (String.split_on_char '\n' b) in
  let n = Array.length la and m = Array.length lb in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      dp.(i).(j) <-
        (if String.equal la.(i) lb.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  n + m - (2 * dp.(0).(0))

let table1 (o : opts) =
  Fmt.pr "@.== Table 1: Applying SafeFlow to Control Systems ==@.";
  Fmt.pr "   (paper value / measured value)@.@.";
  Fmt.pr "%-16s %-15s %-13s %-14s %-9s %-8s %-10s %-7s@." "System" "LOC(total)"
    "LOC(core)" "SrcChanges" "Annot" "Errors" "Warnings" "FalseP";
  let rows = selected_rows o in
  let analyses =
    Safeflow.Driver.analyze_files_par
      (List.map (fun row -> find ("systems/" ^ row.p_core_file)) rows)
  in
  let cells =
    List.map2
      (fun row a ->
        let r = a.Safeflow.Driver.report in
        let core_loc = List.assoc "loc" r.Safeflow.Report.stats in
        let total_loc =
          List.fold_left
            (fun acc f -> acc + Safeflow.Driver.count_loc (read_file (find ("systems/" ^ f))))
            core_loc row.p_noncore_files
        in
        let changes =
          match row.p_orig_file with
          | None -> "0"
          | Some orig ->
            let d =
              diff_size
                (read_file (find ("systems/" ^ orig)))
                (read_file (find ("systems/" ^ row.p_core_file)))
            in
            Fmt.str "diff %d, 1 func" d
        in
        Fmt.pr "%-16s %-15s %-13s %-14s %-9s %-8s %-10s %-7s@." row.p_name
          (Fmt.str "%s/%d" row.p_loc_total total_loc)
          (Fmt.str "%d/%d" row.p_loc_core core_loc)
          (Fmt.str "%s/%s" row.p_changes changes)
          (Fmt.str "%d/%d" row.p_annot r.Safeflow.Report.annotation_lines)
          (Fmt.str "%d/%d" row.p_errors (List.length (Safeflow.Report.errors r)))
          (Fmt.str "%d/%d" row.p_warnings (List.length r.Safeflow.Report.warnings))
          (Fmt.str "%d/%d" row.p_fps (List.length (Safeflow.Report.control_deps r)));
        Jobj
          [ ("system", Jstr row.p_name);
            ("engine", Jstr (Safeflow.Config.engine_name Safeflow.Config.default.Safeflow.Config.engine));
            ("config_fingerprint", Jstr (config_fingerprint Safeflow.Config.default));
            ("loc_core", Jint core_loc);
            ("annotations", Jint r.Safeflow.Report.annotation_lines);
            ("errors", Jint (List.length (Safeflow.Report.errors r)));
            ("warnings", Jint (List.length r.Safeflow.Report.warnings));
            ("false_positives", Jint (List.length (Safeflow.Report.control_deps r)));
            ( "noncore_read_sites",
              Jint a.Safeflow.Driver.coverage.Safeflow.Coverage.cov_read_sites );
            ( "monitored_read_sites",
              Jint a.Safeflow.Driver.coverage.Safeflow.Coverage.cov_monitored_sites );
            ( "monitored_fraction",
              Jfloat (Safeflow.Coverage.monitored_fraction a.Safeflow.Driver.coverage) ) ])
      rows analyses
  in
  Fmt.pr "@.Notes: LOC(total) differs because the authors' lab codebases bundle@.";
  Fmt.pr "years of non-core GUI code we do not have; the analyzed core components@.";
  Fmt.pr "are recreated at the paper's scale.  All seven analysis columns match.@.";
  write_json o (Jobj [ ("table1", Jarr cells) ])

(* ==================================================== phases (B1) ======== *)

let phases (o : opts) =
  Fmt.pr "@.== B1: per-phase analysis time (ms, median of %d; total med/min/mean) ==@.@."
    o.iters;
  Fmt.pr "%-18s %9s %9s %9s %9s %9s %9s %9s %9s@." "System" "frontend" "shm+ph1"
    "phase2" "pointsto" "phase3" "tot-med" "tot-min" "tot-mean";
  let measure row =
    let path = find ("systems/" ^ row.p_core_file) in
    let src = read_file path in
    let samples =
      List.init (max 1 o.iters) (fun _ ->
          let p, t_front =
            timed (fun () -> Safeflow.Driver.prepare_source ~file:path src)
          in
          let (shm, p1), t_p1 =
            timed (fun () ->
                let shm = Safeflow.Driver.stage_shm p in
                (shm, Safeflow.Driver.stage_phase1 p shm))
          in
          let _, t_p2 = timed (fun () -> Safeflow.Driver.stage_phase2 p p1) in
          let pts, t_pts = timed (fun () -> Safeflow.Driver.stage_pointsto p) in
          let _, t_p3 =
            timed (fun () -> Safeflow.Driver.stage_phase3 p shm p1 pts)
          in
          (t_front, t_p1, t_p2, t_pts, t_p3))
    in
    let sel f = stats_of (List.map f samples) in
    let f = sel (fun (a,_,_,_,_) -> a) and p1 = sel (fun (_,a,_,_,_) -> a)
    and p2 = sel (fun (_,_,a,_,_) -> a) and pts = sel (fun (_,_,_,a,_) -> a)
    and p3 = sel (fun (_,_,_,_,a) -> a) in
    let total =
      sel (fun (a, b, c, d, e) -> a +. b +. c +. d +. e)
    in
    ( Fmt.str "%-18s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f" row.p_name
        f.st_median p1.st_median p2.st_median pts.st_median p3.st_median
        total.st_median total.st_min total.st_mean,
      Jobj
        (("system", Jstr row.p_name)
        :: ("engine", Jstr (Safeflow.Config.engine_name Safeflow.Config.default.Safeflow.Config.engine))
        :: ("config_fingerprint", Jstr (config_fingerprint Safeflow.Config.default))
        :: (jstats "frontend" f @ jstats "shm_phase1" p1 @ jstats "phase2" p2
           @ jstats "pointsto" pts @ jstats "phase3" p3 @ jstats "total" total)) )
  in
  (* the three systems are measured concurrently; rows print in order *)
  let results = par_map measure (selected_rows o) in
  List.iter (fun (line, _) -> Fmt.pr "%s@." line) results;
  write_json o
    (Jobj [ ("iters", Jint o.iters); ("phases", Jarr (List.map snd results)) ])

(* ==================================================== scale (B2) ========= *)

let scale_sizes = [ 4; 8; 16; 32; 64; 96; 128; 192; 256; 384 ]

let scale (o : opts) =
  Fmt.pr "@.== B2: analysis time vs synthetic core size ==@.@.";
  Fmt.pr "%8s %8s %10s %10s %10s %10s@." "workers" "LOC" "time(ms)" "warnings"
    "contexts" "passes";
  let cells =
    List.map
      (fun n ->
        let src = Safeflow.Synth.of_size n in
        let loc = Safeflow.Driver.count_loc src in
        let a, t = time_ms (fun () -> Safeflow.Driver.analyze src) in
        let r = a.Safeflow.Driver.report in
        Fmt.pr "%8d %8d %10.2f %10d %10d %10d@." n loc t
          (List.length r.Safeflow.Report.warnings)
          (List.assoc "phase3_contexts" r.Safeflow.Report.stats)
          (List.assoc "phase3_passes" r.Safeflow.Report.stats);
        Jobj
          [ ("workers", Jint n);
            ("engine", Jstr (Safeflow.Config.engine_name Safeflow.Config.default.Safeflow.Config.engine));
            ("config_fingerprint", Jstr (config_fingerprint Safeflow.Config.default));
            ("loc", Jint loc);
            ("time_ms", Jfloat t);
            ("warnings", Jint (List.length r.Safeflow.Report.warnings));
            ("contexts", Jint (List.assoc "phase3_contexts" r.Safeflow.Report.stats)) ])
      scale_sizes
  in
  write_json o (Jobj [ ("scale", Jarr cells) ])

(* ==================================================== engines ============ *)

(* Legacy dense fixpoint vs sparse worklist engine: same systems (B1) and
   synthetic programs (B2), asserting report equivalence and recording the
   speedup.  This is the experiment behind BENCH_phase3.json. *)
let engines (o : opts) =
  let iters = max 1 o.iters in
  let legacy_cfg = { Safeflow.Config.default with engine = Safeflow.Config.Legacy } in
  let worklist_cfg = { Safeflow.Config.default with engine = Safeflow.Config.Worklist } in
  let counts (r : Safeflow.Report.t) =
    ( List.length (Safeflow.Report.errors r),
      List.length r.Safeflow.Report.warnings,
      List.length (Safeflow.Report.control_deps r) )
  in
  (* median phase-3 stage time under each engine, from shared prepared state *)
  let measure_stage (p : Safeflow.Driver.prepared) =
    let shm = Safeflow.Driver.stage_shm p in
    let p1 = Safeflow.Driver.stage_phase1 p shm in
    let pts = Safeflow.Driver.stage_pointsto p in
    let sample config =
      (* warmup: populate allocator/caches and fault code pages so the
         first timed iteration is not an outlier *)
      for _ = 1 to 2 do
        ignore (Safeflow.Driver.stage_phase3 ~config p shm p1 pts)
      done;
      stats_of
        (List.init iters (fun _ ->
             snd (timed (fun () -> Safeflow.Driver.stage_phase3 ~config p shm p1 pts))))
    in
    let t_legacy = sample legacy_cfg in
    let t_worklist = sample worklist_cfg in
    let r3 = Safeflow.Driver.stage_phase3 ~config:worklist_cfg p shm p1 pts in
    (t_legacy, t_worklist, r3.Safeflow.Phase3.engine_stats)
  in
  let cell (st : stats) = Fmt.str "%.2f/%.2f/%.2f" st.st_median st.st_min st.st_mean in
  Fmt.pr "@.== Engines: legacy dense fixpoint vs sparse worklist (med/min/mean of %d) ==@.@."
    iters;
  Fmt.pr "%-18s %22s %22s %9s %12s %7s@." "input" "legacy(ms)" "worklist(ms)"
    "speedup" "err/warn/fp" "agree";
  let b1 =
    if o.synth <> None then []
    else
      List.map
      (fun row ->
        let path = find ("systems/" ^ row.p_core_file) in
        let src = read_file path in
        let rl = (Safeflow.Driver.analyze ~config:legacy_cfg ~file:path src).report in
        let rw = (Safeflow.Driver.analyze ~config:worklist_cfg ~file:path src).report in
        let el, wl, fl = counts rl and ew, ww, fw = counts rw in
        let agree = el = ew && wl = ww && fl = fw in
        if not agree then
          Fmt.failwith "engine mismatch on %s: legacy %d/%d/%d vs worklist %d/%d/%d"
            row.p_name el wl fl ew ww fw;
        let t_legacy, t_worklist, _ =
          measure_stage (Safeflow.Driver.prepare_source ~file:path src)
        in
        let speedup = t_legacy.st_median /. Float.max 0.001 t_worklist.st_median in
        Fmt.pr "%-18s %22s %22s %8.2fx %12s %7b@." row.p_name (cell t_legacy)
          (cell t_worklist) speedup
          (Fmt.str "%d/%d/%d" el wl fl) agree;
        Jobj
          (("system", Jstr row.p_name)
          :: ("config_fingerprint", Jstr (config_fingerprint legacy_cfg))
          :: ("engines", Jarr [ Jstr "legacy"; Jstr "worklist" ])
          :: jstats "legacy" t_legacy
          @ jstats "worklist" t_worklist
          @ [ ("speedup", Jfloat speedup);
              ("errors", Jint el);
              ("warnings", Jint wl);
              ("false_positives", Jint fl);
              ("identical_reports", Jbool agree);
              jtelemetry (fun () ->
                  Safeflow.Driver.analyze ~config:worklist_cfg ~file:path src) ]))
      (selected_rows o)
  in
  let b2_sizes =
    match o.synth with Some sizes -> sizes | None -> [ 32; 64; 128; 192; 256; 384 ]
  in
  Fmt.pr "@.%8s %22s %22s %9s %10s %10s@." "workers" "legacy(ms)" "worklist(ms)"
    "speedup" "passes" "vf_edges";
  let b2 =
    List.map
      (fun n ->
        let src = Safeflow.Synth.of_size ~seed:o.seed n in
        let rl = (Safeflow.Driver.analyze ~config:legacy_cfg src).report in
        let rw = (Safeflow.Driver.analyze ~config:worklist_cfg src).report in
        let el, wl, fl = counts rl and ew, ww, fw = counts rw in
        if not (el = ew && wl = ww && fl = fw) then
          Fmt.failwith "engine mismatch on synth %d: legacy %d/%d/%d vs worklist %d/%d/%d"
            n el wl fl ew ww fw;
        let passes = List.assoc "phase3_passes" rl.Safeflow.Report.stats in
        let p = Safeflow.Driver.prepare_source src in
        let t_legacy, t_worklist, stats = measure_stage p in
        let vf_edges = try List.assoc "vf_edges" stats with Not_found -> 0 in
        let speedup = t_legacy.st_median /. Float.max 0.001 t_worklist.st_median in
        Fmt.pr "%8d %22s %22s %8.2fx %10d %10d@." n (cell t_legacy) (cell t_worklist)
          speedup passes vf_edges;
        Jobj
          (("workers", Jint n)
          :: ("config_fingerprint", Jstr (config_fingerprint legacy_cfg))
          :: ("engines", Jarr [ Jstr "legacy"; Jstr "worklist" ])
          :: jstats "legacy" t_legacy
          @ jstats "worklist" t_worklist
          @ [ ("legacy_passes", Jint passes);
              ("vf_edges", Jint vf_edges);
              ("speedup", Jfloat speedup);
              ("identical_reports", Jbool true) ]))
      b2_sizes
  in
  Fmt.pr "@.(reports are asserted identical under both engines on every input)@.";
  write_json o
    (Jobj
       [ ("benchmark", Jstr "phase3 engines: legacy dense fixpoint vs sparse worklist");
         jmeta ~benchmark:"engines" ~engines:[ "legacy"; "worklist" ];
         ("iters", Jint iters);
         ("seed", Jint o.seed);
         ("b1_systems", Jarr b1);
         ("b2_synthetic", Jarr b2) ])

(* ==================================================== cache ============== *)

(* Content-addressed incremental cache: cold run (fresh cache) vs warm rerun
   (every digest hits) vs one-function edit (everything except the edited
   function's dependent entries hits).  Each report is compared structurally
   against a cache-less analysis of the same source; this is the experiment
   behind BENCH_cache.json. *)
let cache_bench (o : opts) =
  let iters = max 1 o.iters in
  let probe = "\ndouble __cache_probe(double x) { return x * 2.0; }\n" in
  let systems =
    [ "car_follow.c"; "double_ip.c"; "figure2.c"; "generic_simplex.c";
      "ip_controller.c" ]
  in
  let inputs =
    List.map
      (fun f -> (Filename.remove_extension f, read_file (find ("systems/" ^ f))))
      systems
    @ List.map
        (fun n -> (Fmt.str "synth-%d" n, Safeflow.Synth.of_size n))
        [ 32; 64; 128; 192; 256; 384 ]
  in
  let engines =
    [ ("legacy", { Safeflow.Config.default with engine = Safeflow.Config.Legacy });
      ("worklist", { Safeflow.Config.default with engine = Safeflow.Config.Worklist }) ]
  in
  Fmt.pr "@.== Cache: cold vs warm vs one-function edit (med/min/mean of %d) ==@.@."
    iters;
  Fmt.pr "%-18s %-9s %20s %20s %20s %9s %10s@." "input" "engine" "cold(ms)" "warm(ms)"
    "dirty(ms)" "speedup" "identical";
  let cell (st : stats) = Fmt.str "%.1f/%.1f/%.1f" st.st_median st.st_min st.st_mean in
  let rows =
    List.concat_map
      (fun (name, src) ->
        List.map
          (fun (ename, config) ->
            let report src cache =
              (Safeflow.Driver.analyze ~config ?cache src).Safeflow.Driver.report
            in
            let baseline = report src None in
            let dirty_src = src ^ probe in
            let dirty_baseline = report dirty_src None in
            (* cold: every sample starts from an empty cache *)
            let cold_ok = ref true in
            let cold =
              stats_of
                (List.init iters (fun _ ->
                     let c = Safeflow.Cache.create () in
                     let r, t = timed (fun () -> report src (Some c)) in
                     if r <> baseline then cold_ok := false;
                     t))
            in
            (* warm: one untimed priming run, then timed reruns against the
               populated cache *)
            let warm_ok = ref true in
            let c = Safeflow.Cache.create () in
            ignore (report src (Some c));
            let warm =
              stats_of
                (List.init iters (fun _ ->
                     let r, t = timed (fun () -> report src (Some c)) in
                     if r <> baseline then warm_ok := false;
                     t))
            in
            (* dirty: prime a fresh cache with the unedited source (untimed),
               then analyze the edited source against it *)
            let dirty_ok = ref true in
            let dirty =
              stats_of
                (List.init iters (fun _ ->
                     let c = Safeflow.Cache.create () in
                     ignore (report src (Some c));
                     let r, t = timed (fun () -> report dirty_src (Some c)) in
                     if r <> dirty_baseline then dirty_ok := false;
                     t))
            in
            let speedup = cold.st_median /. Float.max 0.001 warm.st_median in
            let identical = !cold_ok && !warm_ok && !dirty_ok in
            Fmt.pr "%-18s %-9s %20s %20s %20s %8.1fx %10b@." name ename (cell cold)
              (cell warm) (cell dirty) speedup identical;
            ( (name, ename, speedup, identical),
              Jobj
                (("input", Jstr name) :: ("engine", Jstr ename)
                :: ("config_fingerprint", Jstr (config_fingerprint config))
                :: jstats "cold" cold
                @ jstats "warm" warm
                @ jstats "dirty" dirty
                @ [ ("warm_speedup", Jfloat speedup);
                    ("identical_cold", Jbool !cold_ok);
                    ("identical_warm", Jbool !warm_ok);
                    ("identical_dirty", Jbool !dirty_ok);
                    ("identical_reports", Jbool identical);
                    (* warm-rerun counters: cache.*.hits should dominate *)
                    jtelemetry (fun () -> report src (Some c)) ]) ))
          engines)
      inputs
  in
  let all_identical = List.for_all (fun ((_, _, _, ok), _) -> ok) rows in
  let headline =
    List.filter_map
      (fun ((name, ename, speedup, _), _) ->
        if name = "synth-384" then Some (ename ^ "_warm_speedup", Jfloat speedup)
        else None)
      rows
  in
  Fmt.pr "@.(every report above is structurally identical to a cache-less analysis)@.";
  write_json o
    (Jobj
       [ ("benchmark", Jstr "content-addressed cache: cold vs warm vs one-function edit");
         jmeta ~benchmark:"cache" ~engines:[ "legacy"; "worklist" ];
         ("iters", Jint iters);
         ("identical_reports", Jbool all_identical);
         ("headline", Jobj (("input", Jstr "synth-384") :: headline));
         ("rows", Jarr (List.map snd rows)) ])

(* ==================================================== fleet ============== *)

(* Fleet mode (BENCH_fleet.json): synthetic fleets with controlled
   cross-member function overlap and duplicate members, analyzed three
   ways per fleet size — sequential with no cache (the baseline every
   report is byte-compared against), cold through a fresh shared cache,
   and warm through the populated cache — recording analyses/sec, the
   warm/cold speedup and the cross-system hit rate, plus a jobs sweep
   (worker-process scaling) on the largest fleet. *)
let fleet_bench (o : opts) =
  let seed = if o.seed = 0 then 1 else o.seed in
  let sizes = match o.synth with Some s -> s | None -> [ 100; 500; 1000 ] in
  let jobs = Option.value o.jobs ~default:2 in
  let shard_domains = 2 in
  let overlap = 0.5 and dup = 0.25 and workers = 4 in
  let mkdtemp prefix =
    let base = Filename.get_temp_dir_name () in
    let rec go k =
      let d = Filename.concat base (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) k) in
      if Sys.file_exists d then go (k + 1)
      else begin
        try Sys.mkdir d 0o700; d with Sys_error _ -> go (k + 1)
      end
    in
    go 0
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      let rec go d =
        Array.iter
          (fun f ->
            let p = Filename.concat d f in
            if Sys.is_directory p then go p else Sys.remove p)
          (Sys.readdir d);
        Sys.rmdir d
      in
      try go dir with Sys_error _ -> ()
    end
  in
  let write_members dir members =
    List.map
      (fun (name, src) ->
        let path = Filename.concat dir name in
        let oc = open_out_bin path in
        output_string oc src;
        close_out oc;
        path)
      members
  in
  let reports (r : Safeflow.Fleet.result) =
    List.map (fun m -> m.Safeflow.Fleet.mr_report) r.Safeflow.Fleet.f_results
  in
  Fmt.pr "@.== Fleet: sharded multi-system analysis over a shared cache ==@.";
  Fmt.pr "   (%d jobs x %d domains, overlap %.2f, dup %.2f, seed %d)@.@." jobs
    shard_domains overlap dup seed;
  Fmt.pr "%8s %10s %10s %10s %10s %9s %11s %10s@." "systems" "base(a/s)" "cold(a/s)"
    "warm(a/s)" "speedup" "cross" "cross-rate" "identical";
  let rows =
    List.map
      (fun n ->
        let fp =
          { Safeflow.Synth.fleet_n = n; fleet_workers = workers;
            fleet_overlap = overlap; fleet_dup = dup }
        in
        let src_dir = mkdtemp "sf-fleet-src" in
        let cache_dir = mkdtemp "sf-fleet-cache" in
        let paths = write_members src_dir (Safeflow.Synth.fleet ~seed fp) in
        (* sequential, no cache: the identity baseline *)
        let base = Safeflow.Fleet.run paths in
        let cold = Safeflow.Fleet.run ~cache_dir ~jobs ~shard_domains paths in
        let warm = Safeflow.Fleet.run ~cache_dir ~jobs ~shard_domains paths in
        let identical =
          reports base = reports cold && reports base = reports warm
        in
        if not identical then
          Fmt.failwith "fleet %d: sharded/cached reports differ from baseline" n;
        let cc = cold.Safeflow.Fleet.f_cache and wc = warm.Safeflow.Fleet.f_cache in
        let cross_rate =
          let h = cc.Safeflow.Fleet.ct_hits in
          if h = 0 then 0.0
          else float_of_int cc.Safeflow.Fleet.ct_cross /. float_of_int h
        in
        let speedup =
          warm.Safeflow.Fleet.f_analyses_per_sec
          /. Float.max 0.001 cold.Safeflow.Fleet.f_analyses_per_sec
        in
        Fmt.pr "%8d %10.1f %10.1f %10.1f %9.1fx %9d %11.3f %10b@." n
          base.Safeflow.Fleet.f_analyses_per_sec
          cold.Safeflow.Fleet.f_analyses_per_sec
          warm.Safeflow.Fleet.f_analyses_per_sec speedup cc.Safeflow.Fleet.ct_cross
          cross_rate identical;
        rm_rf cache_dir;
        rm_rf src_dir;
        Jobj
          [ ("systems", Jint n);
            ("jobs", Jint jobs);
            ("shard_domains", Jint shard_domains);
            ("workers_per_member", Jint workers);
            ("overlap", Jfloat overlap);
            ("dup", Jfloat dup);
            ("baseline_s", Jfloat base.Safeflow.Fleet.f_elapsed_s);
            ("cold_s", Jfloat cold.Safeflow.Fleet.f_elapsed_s);
            ("warm_s", Jfloat warm.Safeflow.Fleet.f_elapsed_s);
            ("baseline_analyses_per_sec", Jfloat base.Safeflow.Fleet.f_analyses_per_sec);
            ("cold_analyses_per_sec", Jfloat cold.Safeflow.Fleet.f_analyses_per_sec);
            ("warm_analyses_per_sec", Jfloat warm.Safeflow.Fleet.f_analyses_per_sec);
            ("warm_speedup", Jfloat speedup);
            ("cold_hits", Jint cc.Safeflow.Fleet.ct_hits);
            ("cold_misses", Jint cc.Safeflow.Fleet.ct_misses);
            ("cold_cross_hits", Jint cc.Safeflow.Fleet.ct_cross);
            ("cold_cross_hit_rate", Jfloat cross_rate);
            ("warm_hits", Jint wc.Safeflow.Fleet.ct_hits);
            ("warm_misses", Jint wc.Safeflow.Fleet.ct_misses);
            ("warm_cross_hits", Jint wc.Safeflow.Fleet.ct_cross);
            ("stale", Jint (cc.Safeflow.Fleet.ct_stale + wc.Safeflow.Fleet.ct_stale));
            ("corrupt", Jint (cc.Safeflow.Fleet.ct_corrupt + wc.Safeflow.Fleet.ct_corrupt));
            ("identical_reports", Jbool identical) ])
      sizes
  in
  (* worker-process scaling on the largest fleet, warm cache: isolates
     the sharding machinery from analysis cost *)
  let sweep_n = List.fold_left max 1 sizes in
  let fp =
    { Safeflow.Synth.fleet_n = sweep_n; fleet_workers = workers;
      fleet_overlap = overlap; fleet_dup = dup }
  in
  let src_dir = mkdtemp "sf-fleet-src" in
  let cache_dir = mkdtemp "sf-fleet-cache" in
  let paths = write_members src_dir (Safeflow.Synth.fleet ~seed fp) in
  ignore (Safeflow.Fleet.run ~cache_dir paths);
  Fmt.pr "@.%8s %10s %12s@." "jobs" "warm(a/s)" "elapsed(s)";
  let sweep =
    List.map
      (fun j ->
        let r = Safeflow.Fleet.run ~cache_dir ~jobs:j ~shard_domains paths in
        Fmt.pr "%8d %10.1f %12.2f@." j r.Safeflow.Fleet.f_analyses_per_sec
          r.Safeflow.Fleet.f_elapsed_s;
        Jobj
          [ ("jobs", Jint j);
            ("systems", Jint sweep_n);
            ("warm_analyses_per_sec", Jfloat r.Safeflow.Fleet.f_analyses_per_sec);
            ("elapsed_s", Jfloat r.Safeflow.Fleet.f_elapsed_s) ])
      [ 1; 2; 4 ]
  in
  rm_rf cache_dir;
  rm_rf src_dir;
  Fmt.pr "@.(every fleet report above is byte-identical to its sequential@.";
  Fmt.pr "no-cache baseline; cross = cache hits on entries another member wrote)@.";
  write_json o
    (Jobj
       [ ("benchmark",
          Jstr "fleet: sharded multi-system analysis over a shared content-addressed cache");
         jmeta ~benchmark:"fleet" ~engines:[ "worklist" ];
         ("seed", Jint seed);
         ("fleet", Jarr rows);
         ("jobs_sweep", Jarr sweep) ])

(* ==================================================== ablation (B3) ====== *)

let ablation (_o : opts) =
  Fmt.pr "@.== B3: ablations (errors/warnings/false-positives) ==@.@.";
  let configs =
    [ ("full analysis", Safeflow.Config.default);
      ("no context sensitivity", { Safeflow.Config.default with context_sensitive = false });
      ("no field sensitivity", { Safeflow.Config.default with field_sensitive = false });
      ("no control deps", { Safeflow.Config.default with control_deps = false }) ]
  in
  Fmt.pr "%-26s %-18s %-8s %-10s %-7s@." "Config" "System" "Errors" "Warnings" "FalseP";
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun row ->
          let a =
            Safeflow.Driver.analyze_file ~config (find ("systems/" ^ row.p_core_file))
          in
          let r = a.Safeflow.Driver.report in
          Fmt.pr "%-26s %-18s %-8d %-10d %-7d@." cname row.p_name
            (List.length (Safeflow.Report.errors r))
            (List.length r.Safeflow.Report.warnings)
            (List.length (Safeflow.Report.control_deps r)))
        paper_rows)
    configs;
  (* the three systems monitor whole regions from single contexts, so the
     first two toggles do not move their numbers; two crafted probes show
     what each dimension buys (cf. unit tests in test/test_safeflow.ml) *)
  let ctx_probe =
    {|
struct B { double a; double b2; double c; };
typedef struct B B;
B *reg;
extern void sendControl(double v);
void initShm()
/*** SafeFlow Annotation shminit ***/
{
  void *s; int id;
  id = shmget(6100, sizeof(B), 438);
  s = shmat(id, (void *) 0, 0);
  reg = (B *) s;
  /*** SafeFlow Annotation assume(shmvar(reg, sizeof(B))) assume(noncore(reg)) ***/
}
double readval(B *p) { return p->a; }
double monitored(B *p)
/*** SafeFlow Annotation assume(core(reg, 0, sizeof(B))) ***/
{
  double v = readval(p);
  if (v > 5.0 || v < -5.0) { return 0.0; }
  return v;
}
int main() {
  initShm();
  double x = monitored(reg);
  /*** SafeFlow Annotation assert(safe(x)) ***/
  double y = readval(reg);
  sendControl(x + y);
  return 0;
}
|}
  in
  let field_probe =
    {|
struct B { double a; double b2; double c; };
typedef struct B B;
B *reg;
extern void sendControl(double v);
void initShm()
/*** SafeFlow Annotation shminit ***/
{
  void *s; int id;
  id = shmget(6200, sizeof(B), 438);
  s = shmat(id, (void *) 0, 0);
  reg = (B *) s;
  /*** SafeFlow Annotation assume(shmvar(reg, sizeof(B))) assume(noncore(reg)) ***/
}
double monitorA(B *p)
/*** SafeFlow Annotation assume(core(reg, 0, 8)) ***/
{
  double v = p->a;
  if (v > 5.0 || v < -5.0) { return 0.0; }
  return v;
}
int main() { initShm(); sendControl(monitorA(reg)); return 0; }
|}
  in
  Fmt.pr "@.crafted probes:@.";
  List.iter
    (fun (cname, config) ->
      let rc = (Safeflow.Driver.analyze ~config ctx_probe).Safeflow.Driver.report in
      let rf = (Safeflow.Driver.analyze ~config field_probe).Safeflow.Driver.report in
      Fmt.pr "%-26s ctx-probe: errors=%d warnings=%d | field-probe: warnings=%d@." cname
        (List.length (Safeflow.Report.errors rc))
        (List.length rc.Safeflow.Report.warnings)
        (List.length rf.Safeflow.Report.warnings))
    configs;
  Fmt.pr "@.Reading: dropping context sensitivity conflates monitored and@.";
  Fmt.pr "unmonitored call sites (the ctx probe gains a spurious error);@.";
  Fmt.pr "dropping field sensitivity voids partial-range monitor annotations@.";
  Fmt.pr "(the field probe's covered read starts warning); dropping control-@.";
  Fmt.pr "dependence tracking silences the paper's false-positive class.@."

(* ==================================================== summary (B4) ======= *)

let summary (_o : opts) =
  Fmt.pr "@.== B4: exact vs summary engine (paper §3.3's ESP optimization) ==@.@.";
  Fmt.pr "The exact engine re-analyzes each function per monitoring context@.";
  Fmt.pr "(exponential worst case); the summary engine inlines per-function@.";
  Fmt.pr "value-flow summaries in a single bottom-up pass.@.@.";
  (* equivalence on the subject systems *)
  Fmt.pr "%-20s %18s %18s %10s@." "input" "exact warn/err" "summary warn/err" "agree";
  List.iter
    (fun row ->
      let path = find ("systems/" ^ row.p_core_file) in
      let src = read_file path in
      let exact = (Safeflow.Driver.analyze ~file:path src).Safeflow.Driver.report in
      let rs, _ = Safeflow.Driver.analyze_summary ~file:path src in
      let we = List.length exact.Safeflow.Report.warnings
      and ee = List.length (Safeflow.Report.errors exact)
      and ws = List.length rs.Safeflow.Report.warnings
      and es = List.length (Safeflow.Report.errors rs) in
      Fmt.pr "%-20s %14d/%-3d %14d/%-3d %10b@." row.p_name we ee ws es
        (we = ws && ee = es))
    paper_rows;
  (* the exponential case: a binary tree of monitoring functions *)
  Fmt.pr "@.%8s %8s %12s %12s %10s@." "depth" "contexts" "exact(ms)" "summary(ms)" "speedup";
  List.iter
    (fun depth ->
      let src = Safeflow.Synth.context_explosion ~depth in
      let a, t_exact = time_ms (fun () -> Safeflow.Driver.analyze src) in
      let _, t_sum = time_ms (fun () -> Safeflow.Driver.analyze_summary src) in
      let ctxs =
        List.assoc "phase3_contexts" a.Safeflow.Driver.report.Safeflow.Report.stats
      in
      Fmt.pr "%8d %8d %12.1f %12.1f %9.1fx@." depth ctxs t_exact t_sum
        (t_exact /. Float.max 0.01 t_sum))
    [ 2; 4; 6; 8; 10 ];
  Fmt.pr "@.(both engines report identical warnings and error dependencies on@.";
  Fmt.pr "every input above; the summary engine does not classify control-only@.";
  Fmt.pr "dependencies — ESP summaries capture data flow)@."

(* ==================================================== sim (F1/E1) ======== *)

let sim (_o : opts) =
  Fmt.pr "@.== F1/E1: Simplex architecture closed-loop outcomes ==@.@.";
  let open Simplex in
  let run_table plant_label plant =
    Fmt.pr "--- %s ---@." plant_label;
    Fmt.pr "%-34s %-10s %8s %8s %10s@." "scenario" "outcome" "rejects" "switches" "cost";
    let base = Sim.default_config plant in
    let show name cfg =
      let r = Sim.run cfg in
      let outcome =
        if r.Sim.core_killed then "killed"
        else if r.Sim.crashed then "CRASH"
        else "ok"
      in
      Fmt.pr "%-34s %-10s %8d %8d %10.3f@." name outcome r.Sim.monitor_rejections
        r.Sim.safety_engagements r.Sim.cost
    in
    show "nominal" base;
    show "complex destabilizing" { base with scenario = Sim.Complex_fault Controller.Destabilizing };
    show "complex NaN" { base with scenario = Sim.Complex_fault Controller.Nan_output };
    show "complex stuck 4.5V" { base with scenario = Sim.Complex_fault (Controller.Stuck 4.5) };
    show "rigged feedback (fixed core)" { base with scenario = Sim.Rigged_feedback 300 };
    show "rigged feedback (vulnerable)"
      { base with scenario = Sim.Rigged_feedback 300; variant = Sim.Vulnerable };
    show "kill-pid attack" { base with scenario = Sim.Kill_pid 100 };
    Fmt.pr "@."
  in
  run_table "inverted pendulum" (Plant.inverted_pendulum ());
  run_table "double inverted pendulum" (Plant.double_inverted_pendulum ())

(* ==================================================== ranges ============ *)

(* Synthetic clamp component: a non-core mode value is clamped into
   [0,3], then a branch on mode > 7 guards the critical output.  The
   branch can never be taken, so the C-CONTROL-DEP the guard induces is
   a false positive that the value-range analysis removes. *)
let clamp_demo_src =
  {|
struct SHMData { int mode; int cmd; };
typedef struct SHMData SHMData;
SHMData *modeShm;
int shmLock;
extern void sendControl(int out);
void initComm()
/*** SafeFlow Annotation shminit ***/
{
  int shmid;
  void *shmStart;
  shmid = shmget(9000, sizeof(SHMData), 438);
  shmStart = shmat(shmid, (void *) 0, 0);
  modeShm = (SHMData *) shmStart;
  InitCheck(shmStart, sizeof(SHMData));
  /*** SafeFlow Annotation
       assume(shmvar(modeShm, sizeof(SHMData)))
       assume(noncore(modeShm)) ***/
}
int main()
{
  int m;
  int out;
  initComm();
  m = modeShm->mode;
  if (m < 0) { m = 0; }
  if (m > 3) { m = 3; }
  out = 1;
  if (m > 7) { out = 2; }
  /*** SafeFlow Annotation assert(safe(out)) ***/
  sendControl(out);
  return 0;
}
|}

(* Value-range discharge experiment (BENCH_ranges.json): per system and
   engine, the A1/A2 bounds obligations broken down by discharge method
   (range analysis alone vs Omega), the Omega queries avoided, and
   phase-2 wall time with the range analysis on and off — plus the
   report-level guarantee that the on-findings are a fingerprint-subset
   of the off-findings.  The clamp synthetic demonstrates the phase-3
   control-dependence pruning under both engines. *)
let ranges_bench (o : opts) =
  Fmt.pr "@.== value-range discharge: A1/A2 obligations and phase-2 time ==@.@.";
  let sys_files =
    [ "figure2.c"; "ip_controller.c"; "double_ip.c"; "car_follow.c";
      "generic_simplex.c" ]
  in
  let fingerprints (a : Safeflow.Driver.analysis) =
    let ctx =
      Safeflow.Fingerprint.ctx_of_program a.Safeflow.Driver.prepared.Safeflow.Driver.ir
    in
    List.sort_uniq compare
      (List.map fst (Safeflow.Fingerprint.of_report ctx a.Safeflow.Driver.report))
  in
  Fmt.pr "%-20s %-8s %-6s %6s %7s %6s %7s %8s %11s %7s@." "system" "engine"
    "absint" "oblig" "ranges" "omega" "failed" "avoided" "phase2 ms" "subset";
  let records =
    List.concat_map
      (fun file ->
        let path = find ("systems/" ^ file) in
        let src = read_file path in
        List.concat_map
          (fun engine ->
            let analyze absint =
              let config = { Safeflow.Config.default with engine; absint } in
              Safeflow.Driver.analyze ~config ~file:path src
            in
            let a_on = analyze true and a_off = analyze false in
            let fps_on = fingerprints a_on and fps_off = fingerprints a_off in
            let is_subset =
              List.for_all (fun fp -> List.mem fp fps_off) fps_on
            in
            List.map
              (fun absint ->
                let config = { Safeflow.Config.default with engine; absint } in
                let a = if absint then a_on else a_off in
                let p = a.Safeflow.Driver.prepared in
                let shm = Safeflow.Driver.stage_shm p in
                let p1 = Safeflow.Driver.stage_phase1 ~config p shm in
                let ai = Safeflow.Driver.stage_absint ~config p in
                let samples =
                  List.init o.iters (fun _ ->
                      snd
                        (timed (fun () ->
                             Safeflow.Driver.stage_phase2 ~config ?absint:ai p p1)))
                in
                let b =
                  a.Safeflow.Driver.coverage.Safeflow.Coverage.cov_bounds
                in
                let ctrl_deps =
                  List.length (Safeflow.Report.control_deps a.Safeflow.Driver.report)
                in
                let st = stats_of samples in
                Fmt.pr "%-20s %-8s %-6s %6d %7d %6d %7d %8d %11.2f %7b@." file
                  (Safeflow.Config.engine_name engine)
                  (if absint then "on" else "off")
                  b.Safeflow.Phase2.bs_total b.Safeflow.Phase2.bs_ranges
                  b.Safeflow.Phase2.bs_omega b.Safeflow.Phase2.bs_failed
                  b.Safeflow.Phase2.bs_omega_avoided st.st_median is_subset;
                Jobj
                  ([ ("system", Jstr file);
                     ("engine", Jstr (Safeflow.Config.engine_name engine));
                     ("absint", Jbool absint);
                     ("config_fingerprint", Jstr (config_fingerprint config));
                     ("a1a2_obligations", Jint b.Safeflow.Phase2.bs_total);
                     ("a1a2_by_ranges", Jint b.Safeflow.Phase2.bs_ranges);
                     ("a1a2_by_omega", Jint b.Safeflow.Phase2.bs_omega);
                     ("a1a2_failed", Jint b.Safeflow.Phase2.bs_failed);
                     ("omega_queries_avoided",
                      Jint b.Safeflow.Phase2.bs_omega_avoided);
                     ("control_only_deps", Jint ctrl_deps);
                     ("findings", Jint (List.length fps_on));
                     ("findings_on_subset_of_off", Jbool is_subset) ]
                  @ jstats "phase2" st))
              [ true; false ])
          [ Safeflow.Config.Legacy; Safeflow.Config.Worklist ])
      sys_files
  in
  Fmt.pr "@.-- clamp synthetic: control-dependence pruning --@.";
  let demo =
    List.map
      (fun engine ->
        let deps absint =
          let config = { Safeflow.Config.default with engine; absint } in
          List.length
            (Safeflow.Report.control_deps
               (Safeflow.Driver.analyze ~config ~file:"clamp_demo.c"
                  clamp_demo_src)
                 .Safeflow.Driver.report)
        in
        let off_deps = deps false and on_deps = deps true in
        Fmt.pr "clamp demo (%s): C-CONTROL-DEP %d -> %d with ranges@."
          (Safeflow.Config.engine_name engine)
          off_deps on_deps;
        Jobj
          [ ("engine", Jstr (Safeflow.Config.engine_name engine));
            ("control_only_deps_off", Jint off_deps);
            ("control_only_deps_on", Jint on_deps) ])
      [ Safeflow.Config.Legacy; Safeflow.Config.Worklist ]
  in
  write_json o
    (Jobj
       [ jmeta ~benchmark:"ranges" ~engines:[ "legacy"; "worklist" ];
         ("systems", Jarr records);
         ("clamp_demo", Jarr demo) ])

(* ==================================================== micro ============== *)

let micro (_o : opts) =
  Fmt.pr "@.== Microbenchmarks (bechamel, monotonic clock) ==@.@.";
  let open Bechamel in
  let open Toolkit in
  let fig2_src = read_file (find "systems/figure2.c") in
  let synth16 = Safeflow.Synth.of_size 16 in
  let prepared16 = Safeflow.Driver.prepare_source synth16 in
  let ip_src = read_file (find "systems/ip_controller.c") in
  let omega_query () =
    let open Omega in
    let i = Linexpr.var "i" in
    feasible
      [ ge i (Linexpr.const 0); lt i (Linexpr.const 16); ge i (Linexpr.const 16) ]
  in
  let tests =
    Test.make_grouped ~name:"safeflow"
      [ Test.make ~name:"lex+parse figure2" (Staged.stage (fun () ->
            Minic.Parser.parse_string ~file:"f" fig2_src));
        Test.make ~name:"frontend+ssa figure2" (Staged.stage (fun () ->
            Safeflow.Driver.prepare_source fig2_src));
        Test.make ~name:"omega bounds query" (Staged.stage omega_query);
        Test.make ~name:"pointsto synth16" (Staged.stage (fun () ->
            Pointsto.analyze prepared16.Safeflow.Driver.ir));
        Test.make ~name:"full analysis figure2" (Staged.stage (fun () ->
            Safeflow.Driver.analyze fig2_src));
        Test.make ~name:"full analysis ip_controller" (Staged.stage (fun () ->
            Safeflow.Driver.analyze ip_src));
        Test.make ~name:"optimizer ip_controller" (Staged.stage (fun () ->
            let p = Safeflow.Driver.prepare_source ip_src in
            Ssair.Opt.run p.Safeflow.Driver.ir)) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Fmt.pr "%-34s %12.1f ns/run (%8.3f ms)@." name est (est /. 1e6)
      | _ -> Fmt.pr "%-34s (no estimate)@." name)
    results

(* ========================================= diff (regression gate) ======== *)

(* bench diff OLD.json NEW.json [--threshold PCT]: compare two BENCH
   files (Safeflow.Benchdiff: rows matched by identity key incl. the
   semantic-config fingerprint, time metrics judged against the
   threshold, hostname mismatch non-blocking) and exit non-zero on a
   same-host regression.  Not part of "all": it needs positionals and
   gates instead of measuring. *)
let diff_cmd (o : opts) =
  match o.rest with
  | [ old_path; new_path ] ->
    let read path =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    let threshold = Option.map (fun pct -> pct /. 100.0) o.threshold in
    (match
       Safeflow.Benchdiff.diff ?threshold ~old_text:(read old_path)
         ~new_text:(read new_path) ()
     with
    | Error msg ->
      Fmt.epr "bench diff: %s@." msg;
      exit 3
    | Ok v ->
      Safeflow.Benchdiff.print_report stdout v;
      exit (Safeflow.Benchdiff.gate v))
  | _ ->
    Fmt.epr "usage: bench diff OLD.json NEW.json [--threshold PCT]@.";
    exit 2

(* ==================================================== driver ============= *)

let () =
  let which, opts = parse_args () in
  if which = "diff" then diff_cmd opts;
  let all = [ ("table1", table1); ("phases", phases); ("scale", scale);
              ("engines", engines); ("cache", cache_bench); ("fleet", fleet_bench);
              ("ablation", ablation); ("summary", summary); ("sim", sim);
              ("ranges", ranges_bench); ("micro", micro) ] in
  match List.assoc_opt which all with
  | Some f -> f opts
  | None ->
    if which <> "all" then Fmt.epr "unknown benchmark %S, running all@." which;
    List.iter (fun (_, f) -> f opts) all
