(* SafeFlow command-line interface.

   Usage:
     safeflow analyze file.c [file2.c ...]
                             [--no-control-deps] [--ctx-insensitive]
                             [--field-insensitive] [--vfg out.dot]
                             [--engine worklist|legacy]   (default: worklist)
                             [--stats] [--trace out.json] [--stats-json out.json]
                             [--sarif out.sarif] [--save-findings out.findings]
                             [--baseline FILE] [--fail-on never|error|warning]
     safeflow fleet DIR | --manifest FILE
                             [--jobs N] [--shard-domains N] [--cache DIR]
                             [--engine ...] [--absint on|off] [--print-reports]
                             [--save-findings OUT] [--baseline FILE] [--fail-on ...]
     safeflow diff OLD NEW       (findings files or MiniC sources)
     safeflow explain file.c
     safeflow audit file.c       [--audit-json out.json] [--failed-only]
     safeflow hotspots PATH | --manifest FILE
                             [--top N] [--regions] [--json] [--jobs N] [--cache DIR]
     safeflow initcheck file.c
     safeflow dump-ir file.c
     safeflow synth N
     safeflow version

   Exit codes (analyze and diff): 0 clean, 1 error-level findings,
   2 warning-level findings only, 3 frontend (parse/type) failure.
   With --baseline, only findings NEW relative to the baseline gate. *)

open Cmdliner

let tool_version = Safeflow.Version.tool

let config_of ~control_deps ~context_sensitive ~field_sensitive ~engine ~pair_domains =
  {
    Safeflow.Config.default with
    control_deps;
    context_sensitive;
    field_sensitive;
    engine;
    pair_domains;
  }

(* Shared telemetry plumbing: any observability output requested turns
   the subsystem on for the run and writes the artifacts afterwards.
   Telemetry never feeds back into reports, so analysis output is
   identical with and without these flags. *)
let telemetry_flags =
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"print the phase-span tree and counter table to stderr after the run")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.json" ~doc:"write a Chrome trace-event JSON of all phase spans (open in chrome://tracing or Perfetto)")
  in
  let stats_json =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"OUT.json" ~doc:"write a machine-readable counter/span snapshot")
  in
  Term.(const (fun stats trace stats_json -> (stats, trace, stats_json)) $ stats $ trace $ stats_json)

let telemetry_setup (stats, trace, stats_json) =
  if stats || trace <> None || stats_json <> None then Safeflow.Telemetry.set_enabled true

let telemetry_finish (stats, trace, stats_json) =
  Option.iter Safeflow.Telemetry.write_chrome_trace trace;
  Option.iter Safeflow.Telemetry.write_stats_json stats_json;
  if stats then Fmt.epr "%a@." Safeflow.Telemetry.pp_stats ()

let engine_conv =
  Arg.enum [ ("legacy", Safeflow.Config.Legacy); ("worklist", Safeflow.Config.Worklist) ]

let absint_conv = Arg.enum [ ("on", true); ("off", false) ]

let absint_arg =
  Arg.(
    value
    & opt absint_conv Safeflow.Config.default.Safeflow.Config.absint
    & info [ "absint" ] ~docv:"on|off"
        ~doc:
          "interprocedural value-range analysis (default $(b,on)): discharges A1/A2 \
           bounds obligations without Omega queries and drops control dependence of \
           branches whose direction the ranges decide.  Precision-only: $(b,off) \
           reproduces the pre-range reports byte-identically, $(b,on) reports a \
           fingerprint-subset of them.")

let fail_on_conv = Arg.enum [ ("never", `Never); ("error", `Error); ("warning", `Warning) ]

let fail_on_arg =
  Arg.(
    value
    & opt fail_on_conv `Warning
    & info [ "fail-on" ] ~docv:"LEVEL"
        ~doc:
          "findings that make the exit code non-zero: $(b,never) always exits 0, \
           $(b,error) exits 1 on error-level findings (critical dependencies and \
           restriction violations), $(b,warning) (default) additionally exits 2 when \
           only warning-level findings are present.  With $(b,--baseline), only \
           findings new relative to the baseline gate.")

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let analyze_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"MiniC source files (several are analyzed in parallel)")
  in
  let no_control = Arg.(value & flag & info [ "no-control-deps" ] ~doc:"disable control-dependence reporting") in
  let ctx_insensitive = Arg.(value & flag & info [ "ctx-insensitive" ] ~doc:"merge monitoring contexts (ablation)") in
  let field_insensitive = Arg.(value & flag & info [ "field-insensitive" ] ~doc:"ignore byte offsets in regions (ablation)") in
  let vfg = Arg.(value & opt (some string) None & info [ "vfg" ] ~docv:"OUT.dot" ~doc:"write the value-flow graph as DOT (single file only)") in
  let use_summary = Arg.(value & flag & info [ "summary" ] ~doc:"use the ESP-style summary engine (single bottom-up pass; data dependencies only)") in
  let engine =
    Arg.(
      value
      & opt engine_conv Safeflow.Config.default.Safeflow.Config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"phase-3 engine: $(b,worklist) (sparse CSR value-flow graph with packed bitset taint state; the default) or $(b,legacy) (dense fixpoint, kept as an equivalence oracle); reports are byte-identical under both")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "content-addressed analysis cache directory (created if missing); reruns of \
             unchanged sources skip phases 1-3, edits recompute only the affected \
             functions.  Stale or corrupt entries are discarded and recomputed (counted \
             in --stats, reported per file with --verbose); reports are identical with \
             and without the cache")
  in
  let pair_domains =
    Arg.(
      value
      & opt int Safeflow.Config.default.Safeflow.Config.pair_domains
      & info [ "pair-domains" ] ~docv:"N"
          ~doc:
            "worklist engine: build value-flow edge blocks on $(docv) domains (1 = \
             sequential, 0 = one per hardware thread); reports are identical")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:
            "one-line stderr diagnostics for otherwise-silent recoveries (stale or \
             corrupt cache entries); never changes reports")
  in
  let sarif =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"OUT.sarif"
          ~doc:
            "write all findings as SARIF 2.1.0 (rule metadata for every diagnostic \
             code, witness paths as codeFlows, stable partialFingerprints)")
  in
  let save_findings =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-findings" ] ~docv:"OUT"
          ~doc:
            "write the findings as a fingerprinted baseline file (format \
             safeflow-findings/1) for later $(b,--baseline) or $(b,safeflow diff) runs")
  in
  let baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "suppression baseline (a $(b,--save-findings) file): findings are \
             classified new/fixed/unchanged by fingerprint, the delta is printed, and \
             only new findings drive the exit code")
  in
  let emit_certs =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-certs" ] ~docv:"DIR"
          ~doc:
            "write a machine-checkable certificate bundle (format safeflow-cert/1): one \
             certificate per finding and per discharged P1-P3/A1/A2 obligation, the \
             value-range fixpoint snapshot, and a manifest binding everything to the \
             program fingerprint by content digest.  With several inputs each file gets \
             a $(docv)/<basename> sub-bundle.  Validate with $(b,safeflow check-cert); \
             reports are byte-identical with and without this option")
  in
  let run files no_control ctx_insensitive field_insensitive vfg use_summary engine
      absint cache_dir pair_domains verbose sarif save_findings baseline emit_certs
      fail_on tele =
    try
      telemetry_setup tele;
      let config =
        {
          (config_of ~control_deps:(not no_control)
             ~context_sensitive:(not ctx_insensitive)
             ~field_sensitive:(not field_insensitive)
             ~engine ~pair_domains)
          with
          Safeflow.Config.verbose = verbose;
          absint;
        }
      in
      let cache =
        Option.map (fun dir -> Safeflow.Cache.create ~dir ~verbose ()) cache_dir
      in
      (* one row per input: report + fingerprint context (+ coverage for
         the exact engines; the summary engine has no pair universe or
         obligation ledger) *)
      if use_summary && emit_certs <> None then begin
        Fmt.epr "--emit-certs is not supported with --summary@.";
        exit 2
      end;
      let rows, ledgers =
        if use_summary then
          ( List.map
              (fun file ->
                let r, _ = Safeflow.Driver.analyze_summary ~config ~file (read_file file) in
                Fmt.pr "%a@." Safeflow.Report.pp r;
                (file, r, Safeflow.Fingerprint.ctx_empty, None))
              files,
            [] )
        else begin
          let analyses = Safeflow.Driver.analyze_files_par ~config ?cache files in
          List.iter2
            (fun file (a : Safeflow.Driver.analysis) ->
              if List.length files > 1 then Fmt.pr "== %s ==@." file;
              Fmt.pr "%a@." Safeflow.Report.pp a.Safeflow.Driver.report)
            files analyses;
          (match (vfg, analyses) with
          | Some path, [ a ] ->
            Safeflow.Vfg.write_dot path a.Safeflow.Driver.phase3;
            Fmt.pr "value-flow graph written to %s@." path
          | Some _, _ -> Fmt.epr "--vfg ignored: more than one input file@."
          | None, _ -> ());
          (match emit_certs with
          | Some dir ->
            let multi = List.length files > 1 in
            List.iter2
              (fun file (a : Safeflow.Driver.analysis) ->
                let bdir =
                  if multi then
                    Filename.concat dir
                      (Filename.remove_extension (Filename.basename file))
                  else dir
                in
                match Safeflow.Cert.emit_bundle ~config ~label:file ~dir:bdir a with
                | Ok s ->
                  Fmt.pr "certificates: %d written to %s%s@."
                    s.Safeflow.Cert.cs_written bdir
                    (match s.Safeflow.Cert.cs_skipped with
                    | [] -> ""
                    | sk -> Fmt.str " (%d skipped)" (List.length sk))
                | Error e ->
                  Fmt.epr "certificate emission failed for %s: %s@." file e;
                  exit 3)
              files analyses
          | None -> ());
          ( List.map2
              (fun file (a : Safeflow.Driver.analysis) ->
                ( file,
                  a.Safeflow.Driver.report,
                  Safeflow.Fingerprint.ctx_of_program
                    a.Safeflow.Driver.prepared.Safeflow.Driver.ir,
                  Some a.Safeflow.Driver.coverage ))
              files analyses,
            List.map2
              (fun file (a : Safeflow.Driver.analysis) ->
                (file, a.Safeflow.Driver.ledger))
              files analyses )
        end
      in
      (match sarif with
      | Some path ->
        Safeflow.Sarif.write ~tool_version path
          (List.map
             (fun (file, r, ctx, _) ->
               { Safeflow.Sarif.i_file = file; i_report = r; i_ctx = ctx })
             rows);
        Fmt.pr "SARIF written to %s@." path
      | None -> ());
      let entries =
        List.concat_map
          (fun (file, r, ctx, _) -> Safeflow.Diffreport.entries_of_report ctx ~file r)
          rows
      in
      (match save_findings with
      | Some path ->
        Safeflow.Diffreport.save path entries;
        Fmt.pr "findings written to %s@." path
      | None -> ());
      let stats_flag, _, stats_json = tele in
      List.iter
        (fun (file, _, _, cov) ->
          match cov with
          | Some cov ->
            if stats_flag then Fmt.epr "== %s ==@.%a@." file Safeflow.Coverage.pp cov;
            if stats_json <> None then
              Safeflow.Telemetry.set_section ("coverage:" ^ file)
                (Safeflow.Coverage.to_json cov)
          | None -> ())
        rows;
      if stats_json <> None then
        List.iter
          (fun (file, ledger) ->
            Safeflow.Telemetry.set_section ("ledger:" ^ file)
              (Safeflow.Ledger.summary_json ledger))
          ledgers;
      telemetry_finish tele;
      let gated =
        match baseline with
        | Some bl ->
          let d =
            Safeflow.Diffreport.diff ~baseline:(Safeflow.Diffreport.load bl)
              ~current:entries
          in
          Fmt.pr "%a@." Safeflow.Diffreport.pp_diff d;
          d.Safeflow.Diffreport.d_new
        | None -> entries
      in
      exit (Safeflow.Diffreport.gate ~fail_on gated)
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "run the full SafeFlow analysis on core components.  Exits 0 when clean, 1 on \
          error-level findings, 2 on warning-level findings only (see $(b,--fail-on)), \
          3 on frontend failure.")
    Term.(const run $ files $ no_control $ ctx_insensitive $ field_insensitive $ vfg
          $ use_summary $ engine $ absint_arg $ cache_dir $ pair_domains $ verbose $ sarif
          $ save_findings $ baseline $ emit_certs $ fail_on_arg $ telemetry_flags)

let explain_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let no_control = Arg.(value & flag & info [ "no-control-deps" ] ~doc:"disable control-dependence reporting") in
  let ctx_insensitive = Arg.(value & flag & info [ "ctx-insensitive" ] ~doc:"merge monitoring contexts (ablation)") in
  let field_insensitive = Arg.(value & flag & info [ "field-insensitive" ] ~doc:"ignore byte offsets in regions (ablation)") in
  let engine =
    Arg.(
      value
      & opt engine_conv Safeflow.Config.default.Safeflow.Config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"phase-3 engine: $(b,worklist) (default) or $(b,legacy); witnesses are identical under both")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR" ~doc:"content-addressed analysis cache directory")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "machine-readable output (one JSON document, schema safeflow-explain/1): \
             every finding with its stable fingerprint id, dependencies carrying their \
             full witness path in the certificate step encoding (hash-chained links)")
  in
  let run file no_control ctx_insensitive field_insensitive engine absint cache_dir json
      =
    try
      let config =
        {
          (config_of ~control_deps:(not no_control)
             ~context_sensitive:(not ctx_insensitive)
             ~field_sensitive:(not field_insensitive)
             ~engine ~pair_domains:Safeflow.Config.default.Safeflow.Config.pair_domains)
          with
          Safeflow.Config.absint = absint;
        }
      in
      let cache = Option.map (fun dir -> Safeflow.Cache.create ~dir ()) cache_dir in
      let a = Safeflow.Driver.analyze_file ~config ?cache file in
      if json then
        print_string
          (Safeflow.Jsonlite.emit (Safeflow.Cert.explain_json ~label:file a) ^ "\n")
      else Fmt.pr "%a@." Safeflow.Report.pp_explain a.Safeflow.Driver.report
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "show the value-flow witness behind every reported dependency: read sites with \
          their monitoring context, then each dependency's step-by-step path from \
          non-core source to critical sink.  Exits 0 regardless of findings (a review \
          aid, not a gate).")
    Term.(const run $ file $ no_control $ ctx_insensitive $ field_insensitive $ engine
          $ absint_arg $ cache_dir $ json_flag)

(* -- check-cert: independently validate a certificate bundle ------------------- *)

let check_cert_cmd =
  let bundle =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE"
          ~doc:
            "certificate bundle directory (with several FILEs: the root holding one \
             $(docv)/<basename> sub-bundle per file, the layout $(b,analyze \
             --emit-certs) produces)")
  in
  let files =
    Arg.(
      non_empty & pos_right 0 file []
      & info [] ~docv:"FILE" ~doc:"MiniC source files the bundle(s) were emitted for")
  in
  let allow_skipped =
    Arg.(
      value & flag
      & info [ "allow-skipped" ]
          ~doc:
            "exit 0 even when the manifest lists skipped obligations (certificates the \
             emitter could not produce); by default skipped entries fail the check")
  in
  let source_label =
    Arg.(
      value
      & opt (some string) None
      & info [ "source-label" ] ~docv:"LABEL"
          ~doc:
            "parse each FILE under $(docv) instead of its path before checking.  \
             Needed for bundles a $(b,fleet --emit-certs) run produced: fleet members \
             are analyzed under a normalized label (default $(b,<system>)), so their \
             certificate digests bind to the label-based IR, not the real path.")
  in
  let run bundle files allow_skipped source_label =
    let multi = List.length files > 1 in
    let failed = ref false in
    List.iter
      (fun file ->
        let bdir =
          if multi then
            Filename.concat bundle (Filename.remove_extension (Filename.basename file))
          else bundle
        in
        try
          let prep =
            match source_label with
            | None -> Safeflow.Driver.prepare_file file
            | Some label ->
              let ic = open_in_bin file in
              let src = really_input_string ic (in_channel_length ic) in
              close_in ic;
              Safeflow.Driver.prepare_source ~file:label src
          in
          let ir = prep.Safeflow.Driver.ir in
          let shm = Safeflow.Driver.stage_shm prep in
          let regions =
            List.map
              (fun (r : Safeflow.Shm.region) ->
                (r.Safeflow.Shm.r_name, r.Safeflow.Shm.r_size))
              shm.Safeflow.Shm.regions
          in
          let d = Safeflow.Digest_ir.of_program ir in
          let expect =
            [
              ("program", d.Safeflow.Digest_ir.program);
              ("env", d.Safeflow.Digest_ir.env);
            ]
          in
          let o =
            Checker.validate_bundle ~ir ~regions ~expect
              ~check_finding:(Safeflow.Cert.check_finding_binding ir)
              bdir
          in
          List.iter
            (fun (f : Checker.failure) ->
              Fmt.pr "%s: FAIL %s: %s@." file f.Checker.ce_id f.Checker.ce_msg)
            o.Checker.failures;
          Fmt.pr "%s: %d certificate%s verified, %d failed, %d skipped@." file
            o.Checker.passed
            (if o.Checker.passed = 1 then "" else "s")
            (List.length o.Checker.failures)
            o.Checker.skipped;
          if
            o.Checker.failures <> []
            || (o.Checker.skipped > 0 && not allow_skipped)
          then failed := true
        with Minic.Loc.Error (loc, msg) ->
          Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
          failed := true)
      files;
    exit (if !failed then 1 else 0)
  in
  Cmd.v
    (Cmd.info "check-cert"
       ~doc:
         "independently validate a certificate bundle against freshly parsed sources: \
          witness hash chains, the recorded value-range fixpoint (checked as a \
          post-fixpoint in one pass), constant-index arithmetic, range discharges and \
          Omega unsat-core substitutions are all re-verified with local checks only — \
          no phase 3, no worklist engine, no solver search.  Exits 0 when every \
          certificate verifies, 1 otherwise.")
    Term.(const run $ bundle $ files $ allow_skipped $ source_label)

(* -- audit: render the phase-2 obligation ledger -------------------------------- *)

let audit_schema = "safeflow-audit/1"

let audit_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let audit_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-json" ] ~docv:"OUT.json"
          ~doc:
            "write the full ledger as machine-readable JSON (schema \
             $(b,safeflow-audit/1)): per-entry discharge facts, the per-discharge \
             summary, and the phase-2 bounds counters the ledger must reconcile with")
  in
  let failed_only =
    Arg.(
      value & flag
      & info [ "failed-only" ]
          ~doc:"show only obligations that produced a violation (with their witness)")
  in
  let engine =
    Arg.(
      value
      & opt engine_conv Safeflow.Config.default.Safeflow.Config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"phase-3 engine (the ledger is a phase-2 artifact and identical under both)")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "content-addressed analysis cache directory; ledger entries ride the \
             per-function cache, so a warm audit reconciles exactly like a cold one")
  in
  let pp_entry ppf (e : Safeflow.Ledger.entry) =
    Fmt.pf ppf "%-7s %-24s %-12s %-12s" e.Safeflow.Ledger.l_rule
      (Fmt.str "%a" Minic.Loc.pp e.Safeflow.Ledger.l_loc)
      (if String.equal e.Safeflow.Ledger.l_region "" then "-"
       else e.Safeflow.Ledger.l_region)
      (Safeflow.Ledger.discharge_name e.Safeflow.Ledger.l_discharge);
    (match e.Safeflow.Ledger.l_itv with
    | Some (lo, hi) -> Fmt.pf ppf " itv=[%d,%d]" lo hi
    | None -> ());
    if e.Safeflow.Ledger.l_bound >= 0 then Fmt.pf ppf " bound=%d" e.Safeflow.Ledger.l_bound;
    if e.Safeflow.Ledger.l_queries > 0 then
      Fmt.pf ppf " queries=%d" e.Safeflow.Ledger.l_queries;
    if e.Safeflow.Ledger.l_avoided > 0 then
      Fmt.pf ppf " avoided=%d" e.Safeflow.Ledger.l_avoided;
    if e.Safeflow.Ledger.l_cstrs > 0 then Fmt.pf ppf " cstrs=%d" e.Safeflow.Ledger.l_cstrs;
    if e.Safeflow.Ledger.l_hyps > 0 then Fmt.pf ppf " hyps=%d" e.Safeflow.Ledger.l_hyps;
    if e.Safeflow.Ledger.l_ns > 0 then
      Fmt.pf ppf " %.3fms" (float_of_int e.Safeflow.Ledger.l_ns /. 1e6)
  in
  let run file audit_json failed_only engine absint cache_dir =
    try
      let config = { Safeflow.Config.default with engine; absint } in
      let cache = Option.map (fun dir -> Safeflow.Cache.create ~dir ()) cache_dir in
      let a = Safeflow.Driver.analyze_file ~config ?cache file in
      let ledger = Safeflow.Ledger.sort a.Safeflow.Driver.ledger in
      let shown =
        if failed_only then
          List.filter
            (fun (e : Safeflow.Ledger.entry) ->
              e.Safeflow.Ledger.l_discharge = Safeflow.Ledger.Failed)
            ledger
        else ledger
      in
      (* one group per function, entries in stable ledger order; failed
         obligations drill down into the violation they produced *)
      let by_func = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun (e : Safeflow.Ledger.entry) ->
          let f = e.Safeflow.Ledger.l_func in
          if not (Hashtbl.mem by_func f) then begin
            Hashtbl.replace by_func f [];
            order := f :: !order
          end;
          Hashtbl.replace by_func f (e :: Hashtbl.find by_func f))
        shown;
      Fmt.pr "== %s ==@." file;
      List.iter
        (fun f ->
          Fmt.pr "function %s@." f;
          List.iter
            (fun (e : Safeflow.Ledger.entry) ->
              Fmt.pr "  %a@." pp_entry e;
              if e.Safeflow.Ledger.l_discharge = Safeflow.Ledger.Failed then
                List.iter
                  (fun (v : Safeflow.Report.violation) ->
                    if
                      String.equal v.Safeflow.Report.v_func e.Safeflow.Ledger.l_func
                      && v.Safeflow.Report.v_loc = e.Safeflow.Ledger.l_loc
                    then
                      Fmt.pr "      -> %a: %s@." Safeflow.Report.pp_restriction
                        v.Safeflow.Report.v_rule v.Safeflow.Report.v_msg)
                  a.Safeflow.Driver.report.Safeflow.Report.violations)
            (List.rev (Hashtbl.find by_func f)))
        (List.rev !order);
      let r = Safeflow.Ledger.reconcile ledger in
      let b = a.Safeflow.Driver.coverage.Safeflow.Coverage.cov_bounds in
      Fmt.pr
        "ledger: %d entries; bounds obligations %d = %d ranges + %d omega + %d failed; \
         %d queries issued, %d avoided@."
        (List.length ledger) r.Safeflow.Ledger.r_total r.Safeflow.Ledger.r_ranges
        r.Safeflow.Ledger.r_omega r.Safeflow.Ledger.r_failed r.Safeflow.Ledger.r_queries
        r.Safeflow.Ledger.r_avoided;
      if
        r.Safeflow.Ledger.r_total <> b.Safeflow.Phase2.bs_total
        || r.Safeflow.Ledger.r_ranges <> b.Safeflow.Phase2.bs_ranges
        || r.Safeflow.Ledger.r_omega <> b.Safeflow.Phase2.bs_omega
        || r.Safeflow.Ledger.r_failed <> b.Safeflow.Phase2.bs_failed
      then begin
        Fmt.epr
          "RECONCILIATION FAILURE: phase-2 summary says %d = %d ranges + %d omega + %d \
           failed@."
          b.Safeflow.Phase2.bs_total b.Safeflow.Phase2.bs_ranges
          b.Safeflow.Phase2.bs_omega b.Safeflow.Phase2.bs_failed;
        exit 1
      end;
      match audit_json with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Printf.fprintf oc
          "{\"schema\":\"%s\",\"tool_version\":\"%s\",\"file\":\"%s\",\"summary\":%s,\"phase2_bounds\":{\"total\":%d,\"ranges\":%d,\"omega\":%d,\"failed\":%d,\"avoided\":%d},\"entries\":%s}\n"
          audit_schema tool_version
          (Safeflow.Jsonlite.escape file)
          (Safeflow.Ledger.summary_json ledger)
          b.Safeflow.Phase2.bs_total b.Safeflow.Phase2.bs_ranges
          b.Safeflow.Phase2.bs_omega b.Safeflow.Phase2.bs_failed
          b.Safeflow.Phase2.bs_omega_avoided
          (Safeflow.Ledger.entries_json ledger);
        close_out oc;
        Fmt.pr "audit JSON written to %s@." path
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "render the per-obligation ledger: every A1/A2 bounds obligation and P1-P3 \
          restriction-check site with the prover that discharged it (value ranges, \
          Omega, range-hypothesis-assisted Omega), the facts used (interval bounds, \
          constraint counts) and the time spent.  The ledger totals are verified \
          against the phase-2 discharge summary; a mismatch exits 1.  Exits 0 \
          otherwise regardless of findings (a review aid, not a gate).")
    Term.(const run $ file $ audit_json $ failed_only $ engine $ absint_arg $ cache_dir)

(* -- hotspots: rank functions/regions by ledger cost ----------------------------- *)

let hotspots_schema = "safeflow-hotspots/1"

let hotspots_cmd =
  let path =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PATH"
          ~doc:"a MiniC source file, or a directory whose $(b,*.c) files are the member systems")
  in
  let manifest =
    Arg.(
      value
      & opt (some file) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:"member list, one path per line; alternative to the positional $(i,PATH)")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"worker processes, as for $(b,fleet)")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR" ~doc:"shared content-addressed cache directory")
  in
  let engine =
    Arg.(
      value
      & opt engine_conv Safeflow.Config.default.Safeflow.Config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"phase-3 engine (the ledger is a phase-2 artifact and identical under both)")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"rows per table (0 = all); default 10")
  in
  let regions =
    Arg.(
      value & flag
      & info [ "regions" ] ~doc:"also rank shared-memory regions, not just functions")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "print machine-readable JSON (schema $(b,safeflow-hotspots/1)) instead of \
             tables")
  in
  let run path manifest jobs cache_dir engine absint top regions json =
    try
      let members =
        match (path, manifest) with
        | Some p, None ->
          if Sys.is_directory p then Safeflow.Fleet.members_of_dir p else [ p ]
        | None, Some m -> Safeflow.Fleet.members_of_manifest m
        | Some _, Some _ ->
          Fmt.epr "give either a PATH or --manifest, not both@.";
          exit 2
        | None, None ->
          Fmt.epr "give a MiniC file, a DIR of member systems, or --manifest FILE@.";
          exit 2
      in
      if members = [] then begin
        Fmt.epr "no member systems found@.";
        exit 2
      end;
      (* histograms (Omega query / absint summary latency) want telemetry
         on; it never changes reports or the ledger *)
      Safeflow.Telemetry.set_enabled true;
      let config = { Safeflow.Config.default with engine; absint } in
      let r = Safeflow.Fleet.run ~config ?cache_dir ~jobs members in
      let pairs =
        List.map
          (fun (m : Safeflow.Fleet.member_result) ->
            ( (if List.length members = 1 then "" else m.Safeflow.Fleet.mr_path),
              m.Safeflow.Fleet.mr_ledger ))
          r.Safeflow.Fleet.f_results
      in
      let funcs = Safeflow.Hotspots.rank ~top pairs in
      let regs = Safeflow.Hotspots.rank_regions ~top pairs in
      if json then
        Fmt.pr "{\"schema\":\"%s\",\"functions\":%s,\"regions\":%s}@." hotspots_schema
          (Safeflow.Hotspots.rows_json funcs)
          (Safeflow.Hotspots.rows_json regs)
      else begin
        Fmt.pr "hot functions (analysis time x obligations x failure rate):@.%a@."
          Safeflow.Hotspots.pp_rows funcs;
        if regions then
          Fmt.pr "hot regions:@.%a@." Safeflow.Hotspots.pp_rows regs;
        (* solver/absint latency footer from the run's histograms *)
        List.iter
          (fun (hv : Safeflow.Telemetry.hist_view) ->
            if
              hv.Safeflow.Telemetry.hv_count > 0
              && List.mem hv.Safeflow.Telemetry.hv_name
                   [ "omega.query"; "absint.summary"; "pair.build"; "cache.disk_read" ]
            then
              Fmt.pr "%-16s %8d x  p50/p90/p99 %8.1f/%8.1f/%8.1f us@."
                hv.Safeflow.Telemetry.hv_name hv.Safeflow.Telemetry.hv_count
                (float_of_int hv.Safeflow.Telemetry.hv_p50_ns /. 1e3)
                (float_of_int hv.Safeflow.Telemetry.hv_p90_ns /. 1e3)
                (float_of_int hv.Safeflow.Telemetry.hv_p99_ns /. 1e3))
          (Safeflow.Telemetry.histograms ())
      end
    with
    | Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
    | Failure msg ->
      Fmt.epr "%s@." msg;
      exit 3
  in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:
         "rank functions (and with $(b,--regions), shared-memory regions) by where the \
          analysis budget goes: phase-2 time x obligation count x failure rate, \
          attributed from the obligation ledger.  Works on one file or fleet-wide, \
          where every member's ledger arrives over the worker result channel.  A \
          latency footer shows Omega-query and absint-summary percentiles.  Exits 0 \
          regardless of findings (a review aid, not a gate).")
    Term.(const run $ path $ manifest $ jobs $ cache_dir $ engine $ absint_arg $ top
          $ regions $ json)

let ranges_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let fname =
    Arg.(
      value
      & opt (some string) None
      & info [ "function" ] ~docv:"NAME" ~doc:"print only this function's summary")
  in
  let run file fname =
    try
      let p = Safeflow.Driver.prepare_file file in
      match Safeflow.Driver.stage_absint p with
      | None ->
        Fmt.epr "value-range analysis is disabled@.";
        exit 1
      | Some ai ->
        List.iter
          (fun (f : Ssair.Ir.func) ->
            match fname with
            | Some n when not (String.equal n f.Ssair.Ir.fname) -> ()
            | _ -> Fmt.pr "%a@." (Absint.pp_func_summary ai) f)
          p.Safeflow.Driver.ir.Ssair.Ir.funcs
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
  in
  Cmd.v
    (Cmd.info "ranges"
       ~doc:
         "print the interprocedural value-range summaries the analysis computes: the \
          interval of every SSA value and parameter, the return range, and the branches \
          whose direction the ranges decide (the ones pruned from control dependence).  \
          A review aid for $(b,I-RANGE-PROVED) notes and disappearing \
          $(b,C-CONTROL-DEP) findings.")
    Term.(const run $ file $ fname)

let initcheck_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let run file =
    try
      let a = Safeflow.Driver.analyze_file file in
      let layout =
        Safeflow.Shm.run_init_check a.Safeflow.Driver.prepared.Safeflow.Driver.ir
          a.Safeflow.Driver.shm
      in
      Fmt.pr "InitCheck passed; shared-memory layout:@.";
      List.iter (fun (n, off, sz) -> Fmt.pr "  %-16s offset %5d size %5d@." n off sz) layout
    with
    | Safeflow.Shm.Init_check_failed msg ->
      Fmt.epr "InitCheck FAILED: %s@." msg;
      exit 1
    | Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
  in
  Cmd.v
    (Cmd.info "initcheck"
       ~doc:"execute the initializing function and verify the region layout")
    Term.(const run $ file)

let dump_ir_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let optimize =
    Arg.(value & flag & info [ "opt" ] ~doc:"run the optimizer before printing")
  in
  let run file optimize =
    try
      let p = Safeflow.Driver.prepare_file file in
      if optimize then begin
        let n = Ssair.Opt.run p.Safeflow.Driver.ir in
        Fmt.epr "; %d rewrites@." n
      end;
      Fmt.pr "%a@." Ssair.Ir.pp_program p.Safeflow.Driver.ir
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
  in
  Cmd.v (Cmd.info "dump-ir" ~doc:"print the SSA IR of a source file")
    Term.(const run $ file $ optimize)

let diff_cmd =
  let old_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"baseline: a findings file or a MiniC source")
  in
  let new_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"current: a findings file or a MiniC source")
  in
  let engine =
    Arg.(
      value
      & opt engine_conv Safeflow.Config.default.Safeflow.Config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"phase-3 engine used when an argument is a source file; fingerprints are \
                engine-invariant, so the delta is too")
  in
  (* Sources are analyzed on the spot; findings files (--save-findings
     output) are loaded as-is, so either side can be a checked-in
     baseline. *)
  let entries_of ~config file =
    let content = read_file file in
    if Safeflow.Diffreport.looks_like_findings content then
      Safeflow.Diffreport.parse content
    else begin
      let a = Safeflow.Driver.analyze ~config ~file content in
      let ctx =
        Safeflow.Fingerprint.ctx_of_program a.Safeflow.Driver.prepared.Safeflow.Driver.ir
      in
      Safeflow.Diffreport.entries_of_report ctx ~file a.Safeflow.Driver.report
    end
  in
  let run old_file new_file engine fail_on =
    try
      let config = { Safeflow.Config.default with engine } in
      let baseline = entries_of ~config old_file in
      let current = entries_of ~config new_file in
      let d = Safeflow.Diffreport.diff ~baseline ~current in
      Fmt.pr "%a@." Safeflow.Diffreport.pp_diff d;
      exit (Safeflow.Diffreport.gate ~fail_on d.Safeflow.Diffreport.d_new)
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "classify findings between two runs as new/fixed/unchanged by stable \
          fingerprint.  Each argument is either a findings file ($(b,--save-findings) \
          output) or a MiniC source, which is analyzed on the spot.  Exits 0 when no \
          new findings, otherwise per $(b,--fail-on) applied to the new findings only.")
    Term.(const run $ old_arg $ new_arg $ engine $ fail_on_arg)

let fleet_cmd =
  let dir =
    Arg.(
      value
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"directory whose $(b,*.c) files are the member systems")
  in
  let manifest =
    Arg.(
      value
      & opt (some file) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "member list, one path per line ($(b,#) comments and blank lines skipped; \
             relative paths resolve against the manifest's directory).  Alternative to \
             the positional $(i,DIR).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "shard the fleet across $(docv) worker processes (member $(i,i) goes to \
             shard $(i,i) mod $(docv)); every worker shares the same $(b,--cache) \
             directory")
  in
  let shard_domains =
    Arg.(
      value & opt int 1
      & info [ "shard-domains" ] ~docv:"N"
          ~doc:"domains per worker process draining that worker's members")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "shared content-addressed cache directory (created if missing).  Safe under \
             concurrent multi-process access; content-identical functions from \
             different members are analyzed once fleet-wide (cross-system hits are \
             reported in the summary line).")
  in
  let engine =
    Arg.(
      value
      & opt engine_conv Safeflow.Config.default.Safeflow.Config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"phase-3 engine, as for $(b,analyze); reports are byte-identical under both")
  in
  let source_label =
    Arg.(
      value
      & opt string "<system>"
      & info [ "source-label" ] ~docv:"LABEL"
          ~doc:
            "normalized source label every member is analyzed under, so \
             content-identical functions from different members key identically in the \
             cache.  Findings and baselines still carry each member's real path.")
  in
  let print_reports =
    Arg.(
      value & flag
      & info [ "print-reports" ]
          ~doc:"print each member's full report instead of one summary line per member")
  in
  let save_findings =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-findings" ] ~docv:"OUT"
          ~doc:
            "write all members' findings as one fingerprinted baseline file for later \
             $(b,--baseline) runs")
  in
  let baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "suppression baseline across the whole fleet: the delta is printed and only \
             new findings drive the exit code")
  in
  let progress_flag =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "force the live stderr progress line on (members done/total, analyses/sec, \
             ETA, slowest worker), driven by the worker event stream; throttled, never \
             changes reports.  On by default when stderr is a terminal; automatically \
             off when piped or redirected (CI logs stay clean).")
  in
  let no_progress =
    Arg.(
      value & flag
      & info [ "no-progress" ]
          ~doc:"force the progress line off, even on a terminal")
  in
  let log_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-json" ] ~docv:"OUT.ndjson"
          ~doc:
            "tee the raw worker event stream (newline-delimited JSON, schema \
             $(b,safeflow-events/1): fleet/worker/member lifecycle, per-member cache \
             deltas, heartbeats) to $(docv) for post-hoc analysis")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:
            "one-line stderr diagnostics for otherwise-silent recoveries (stale or \
             corrupt cache entries), tagged $(b,[worker N]) so interleaved fleet output \
             stays attributable; never changes reports")
  in
  let emit_certs =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-certs" ] ~docv:"DIR"
          ~doc:
            "write each member's certificate bundle (schema $(b,safeflow-cert/1)) to \
             $(docv)/<member-basename>/; see $(b,analyze --emit-certs) and \
             $(b,check-cert).  Standalone re-validation of a fleet bundle needs \
             $(b,check-cert --source-label) with this run's label, because digests \
             bind to the IR as analyzed under the normalized label.")
  in
  let check_certs =
    Arg.(
      value & flag
      & info [ "check-certs" ]
          ~doc:
            "with $(b,--emit-certs): re-validate every member's bundle in the worker \
             against a fresh parse, print per-member pass/fail/skipped counts, and \
             fail the run (exit 1) if any certificate fails")
  in
  let run dir manifest jobs shard_domains cache_dir engine absint source_label
      print_reports save_findings baseline fail_on progress_flag no_progress log_json
      verbose emit_certs check_certs tele =
    try
      telemetry_setup tele;
      let members =
        match (dir, manifest) with
        | Some d, None -> Safeflow.Fleet.members_of_dir d
        | None, Some m -> Safeflow.Fleet.members_of_manifest m
        | Some _, Some _ ->
          Fmt.epr "give either a DIR or --manifest, not both@.";
          exit 2
        | None, None ->
          Fmt.epr "give a DIR of member systems or --manifest FILE@.";
          exit 2
      in
      if members = [] then begin
        Fmt.epr "no member systems found@.";
        exit 2
      end;
      let config = { Safeflow.Config.default with engine; absint; verbose } in
      let log_oc = Option.map open_out log_json in
      (* progress defaults to the terminal: forced on by --progress,
         forced off by --no-progress, otherwise on iff stderr is a TTY
         (so piped/redirected CI logs stay clean without any flag) *)
      let progress_on =
        (not no_progress) && (progress_flag || Unix.isatty Unix.stderr)
      in
      let progress =
        if progress_on then
          Some (Safeflow.Progress.create ~total:(List.length members) ())
        else None
      in
      let on_event =
        match (log_oc, progress) with
        | None, None -> None
        | _ ->
          Some
            (fun line ->
              (match log_oc with
              | Some oc ->
                output_string oc line;
                output_char oc '\n'
              | None -> ());
              match progress with
              | Some p -> Safeflow.Progress.feed p line
              | None -> ())
      in
      if check_certs && emit_certs = None then begin
        Fmt.epr "--check-certs needs --emit-certs DIR@.";
        exit 2
      end;
      let r =
        Safeflow.Fleet.run ~config ?cache_dir ~jobs ~shard_domains ~source_label
          ?on_event ?emit_certs ~check_certs members
      in
      (match progress with Some p -> Safeflow.Progress.finish p | None -> ());
      (match (log_oc, log_json) with
      | Some oc, Some path ->
        close_out oc;
        Fmt.epr "event log written to %s@." path
      | _ -> ());
      List.iter
        (fun (m : Safeflow.Fleet.member_result) ->
          if print_reports then
            Fmt.pr "== %s ==@.%s@." m.Safeflow.Fleet.mr_path m.Safeflow.Fleet.mr_report
          else
            let certs =
              match m.Safeflow.Fleet.mr_certs with
              | None -> ""
              | Some c when not check_certs ->
                Fmt.str "  %3d certs" c.Safeflow.Fleet.cc_written
              | Some c ->
                Fmt.str "  %3d certs (%d pass, %d fail, %d skipped)"
                  c.Safeflow.Fleet.cc_written c.Safeflow.Fleet.cc_passed
                  c.Safeflow.Fleet.cc_failed c.Safeflow.Fleet.cc_skipped
            in
            Fmt.pr "%-48s %3d errors  %3d warnings%s@." m.Safeflow.Fleet.mr_path
              m.Safeflow.Fleet.mr_errors m.Safeflow.Fleet.mr_warnings certs)
        r.Safeflow.Fleet.f_results;
      Fmt.pr "fleet: %d systems on %d process(es) x %d domain(s) in %.2fs — %.1f analyses/sec@."
        r.Safeflow.Fleet.f_systems r.Safeflow.Fleet.f_jobs r.Safeflow.Fleet.f_shard_domains
        r.Safeflow.Fleet.f_elapsed_s r.Safeflow.Fleet.f_analyses_per_sec;
      (if cache_dir <> None then
         let c = r.Safeflow.Fleet.f_cache in
         Fmt.pr "cache: %d hits (%d cross-system), %d misses, %d stale, %d corrupt@."
           c.Safeflow.Fleet.ct_hits c.Safeflow.Fleet.ct_cross c.Safeflow.Fleet.ct_misses
           c.Safeflow.Fleet.ct_stale c.Safeflow.Fleet.ct_corrupt);
      let certs_failed =
        match emit_certs with
        | None -> false
        | Some root ->
          let w, p, f, s =
            List.fold_left
              (fun (w, p, f, s) (m : Safeflow.Fleet.member_result) ->
                match m.Safeflow.Fleet.mr_certs with
                | None -> (w, p, f, s)
                | Some c ->
                  ( w + c.Safeflow.Fleet.cc_written,
                    p + c.Safeflow.Fleet.cc_passed,
                    f + c.Safeflow.Fleet.cc_failed,
                    s + c.Safeflow.Fleet.cc_skipped ))
              (0, 0, 0, 0) r.Safeflow.Fleet.f_results
          in
          if check_certs then
            Fmt.pr "certificates: %d written to %s — %d verified, %d failed, %d skipped@."
              w root p f s
          else Fmt.pr "certificates: %d written to %s (%d skipped)@." w root s;
          check_certs && f > 0
      in
      telemetry_finish tele;
      let entries =
        List.concat_map
          (fun (m : Safeflow.Fleet.member_result) -> m.Safeflow.Fleet.mr_entries)
          r.Safeflow.Fleet.f_results
      in
      (match save_findings with
      | Some path ->
        Safeflow.Diffreport.save path entries;
        Fmt.pr "findings written to %s@." path
      | None -> ());
      let gated =
        match baseline with
        | Some bl ->
          let d =
            Safeflow.Diffreport.diff ~baseline:(Safeflow.Diffreport.load bl)
              ~current:entries
          in
          Fmt.pr "%a@." Safeflow.Diffreport.pp_diff d;
          d.Safeflow.Diffreport.d_new
        | None -> entries
      in
      let code = Safeflow.Diffreport.gate ~fail_on gated in
      exit (if certs_failed && code = 0 then 1 else code)
    with
    | Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 3
    | Failure msg ->
      Fmt.epr "%s@." msg;
      exit 3
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "analyze a fleet of member systems sharded across processes and domains over \
          one shared content-addressed cache.  Content-identical functions from \
          different members are analyzed once fleet-wide; reports are byte-identical to \
          per-member sequential runs.  Exit codes as for $(b,analyze), applied to the \
          union of all members' findings.")
    Term.(const run $ dir $ manifest $ jobs $ shard_domains $ cache_dir $ engine
          $ absint_arg $ source_label $ print_reports $ save_findings $ baseline
          $ fail_on_arg $ progress_flag $ no_progress $ log_json $ verbose
          $ emit_certs $ check_certs $ telemetry_flags)

let version_cmd =
  let run () =
    Fmt.pr "safeflow %s@." tool_version;
    Fmt.pr "cache format:      v%d@." Safeflow.Cache.format_version;
    Fmt.pr "cache generation:  %s@." Safeflow.Cache.generation;
    Fmt.pr "telemetry schema:  %s@." Safeflow.Telemetry.stats_json_schema;
    Fmt.pr "events schema:     %s@." Safeflow.Events.schema;
    Fmt.pr "findings format:   %s@." Safeflow.Diffreport.format_version;
    Fmt.pr "fingerprint:       %s@." Safeflow.Fingerprint.version;
    Fmt.pr "certificates:      %s@." Safeflow.Cert.schema;
    Fmt.pr "explain JSON:      %s@." Safeflow.Cert.explain_schema;
    Fmt.pr "SARIF:             %s@." Safeflow.Sarif.sarif_version
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "print the tool version and every artifact format version (cache, telemetry \
          JSON, findings baseline, fingerprint scheme, SARIF) so artifacts are traceable")
    Term.(const run $ const ())

let synth_cmd =
  let n = Arg.(value & pos 0 int 8 & info [] ~docv:"N" ~doc:"worker count") in
  let fleet_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "fleet" ] ~docv:"N"
          ~doc:
            "instead of one component on stdout, write a deterministic $(docv)-member \
             synthetic fleet (controlled cross-member overlap and duplicates) into \
             $(b,--out); the input generator behind $(b,bench fleet) and the CI \
             fleet-smoke job")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S" ~doc:"generation seed (with $(b,--fleet)); same seed, same fleet")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"output directory for $(b,--fleet) members (created if missing)")
  in
  let run n fleet_n seed out =
    match fleet_n with
    | None -> print_string (Safeflow.Synth.of_size n)
    | Some fn -> (
      match out with
      | None ->
        Fmt.epr "--fleet needs --out DIR@.";
        exit 2
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let members =
          Safeflow.Synth.fleet ~seed
            { Safeflow.Synth.default_fleet with Safeflow.Synth.fleet_n = fn }
        in
        List.iter
          (fun (name, src) ->
            let oc = open_out (Filename.concat dir name) in
            output_string oc src;
            close_out oc)
          members;
        Fmt.pr "wrote %d members to %s@." (List.length members) dir)
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "emit a synthetic core component of the given size, or with $(b,--fleet) a \
          seeded deterministic fleet of member systems")
    Term.(const run $ n $ fleet_n $ seed $ out)

let () =
  let doc = "static analysis to enforce safe value flow in embedded control systems" in
  let info = Cmd.info "safeflow" ~version:tool_version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; fleet_cmd; diff_cmd; explain_cmd; check_cert_cmd; audit_cmd;
            hotspots_cmd; ranges_cmd; initcheck_cmd; dump_ir_cmd; synth_cmd;
            version_cmd ]))
