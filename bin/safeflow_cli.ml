(* SafeFlow command-line interface.

   Usage:
     safeflow analyze file.c [file2.c ...]
                             [--no-control-deps] [--ctx-insensitive]
                             [--field-insensitive] [--vfg out.dot]
                             [--engine legacy|worklist]
                             [--stats] [--trace out.json] [--stats-json out.json]
     safeflow explain file.c
     safeflow initcheck file.c
     safeflow dump-ir file.c
     safeflow synth N *)

open Cmdliner

let config_of ~control_deps ~context_sensitive ~field_sensitive ~engine ~pair_domains =
  {
    Safeflow.Config.default with
    control_deps;
    context_sensitive;
    field_sensitive;
    engine;
    pair_domains;
  }

(* Shared telemetry plumbing: any observability output requested turns
   the subsystem on for the run and writes the artifacts afterwards.
   Telemetry never feeds back into reports, so analysis output is
   identical with and without these flags. *)
let telemetry_flags =
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"print the phase-span tree and counter table to stderr after the run")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.json" ~doc:"write a Chrome trace-event JSON of all phase spans (open in chrome://tracing or Perfetto)")
  in
  let stats_json =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"OUT.json" ~doc:"write a machine-readable counter/span snapshot")
  in
  Term.(const (fun stats trace stats_json -> (stats, trace, stats_json)) $ stats $ trace $ stats_json)

let telemetry_setup (stats, trace, stats_json) =
  if stats || trace <> None || stats_json <> None then Safeflow.Telemetry.set_enabled true

let telemetry_finish (stats, trace, stats_json) =
  Option.iter Safeflow.Telemetry.write_chrome_trace trace;
  Option.iter Safeflow.Telemetry.write_stats_json stats_json;
  if stats then Fmt.epr "%a@." Safeflow.Telemetry.pp_stats ()

let engine_conv =
  Arg.enum [ ("legacy", Safeflow.Config.Legacy); ("worklist", Safeflow.Config.Worklist) ]

let analyze_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"MiniC source files (several are analyzed in parallel)")
  in
  let no_control = Arg.(value & flag & info [ "no-control-deps" ] ~doc:"disable control-dependence reporting") in
  let ctx_insensitive = Arg.(value & flag & info [ "ctx-insensitive" ] ~doc:"merge monitoring contexts (ablation)") in
  let field_insensitive = Arg.(value & flag & info [ "field-insensitive" ] ~doc:"ignore byte offsets in regions (ablation)") in
  let vfg = Arg.(value & opt (some string) None & info [ "vfg" ] ~docv:"OUT.dot" ~doc:"write the value-flow graph as DOT (single file only)") in
  let use_summary = Arg.(value & flag & info [ "summary" ] ~doc:"use the ESP-style summary engine (single bottom-up pass; data dependencies only)") in
  let engine =
    Arg.(
      value
      & opt engine_conv Safeflow.Config.default.Safeflow.Config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"phase-3 engine: $(b,legacy) (dense fixpoint) or $(b,worklist) (sparse value-flow graph); reports are identical")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "content-addressed analysis cache directory (created if missing); reruns of \
             unchanged sources skip phases 1-3, edits recompute only the affected \
             functions.  Stale or corrupt entries are discarded and recomputed (counted \
             in --stats, reported per file with --verbose); reports are identical with \
             and without the cache")
  in
  let pair_domains =
    Arg.(
      value
      & opt int Safeflow.Config.default.Safeflow.Config.pair_domains
      & info [ "pair-domains" ] ~docv:"N"
          ~doc:
            "worklist engine: build value-flow edge blocks on $(docv) domains (1 = \
             sequential, 0 = one per hardware thread); reports are identical")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:
            "one-line stderr diagnostics for otherwise-silent recoveries (stale or \
             corrupt cache entries); never changes reports")
  in
  let run files no_control ctx_insensitive field_insensitive vfg use_summary engine
      cache_dir pair_domains verbose tele =
    try
      telemetry_setup tele;
      let config =
        {
          (config_of ~control_deps:(not no_control)
             ~context_sensitive:(not ctx_insensitive)
             ~field_sensitive:(not field_insensitive)
             ~engine ~pair_domains)
          with
          Safeflow.Config.verbose = verbose;
        }
      in
      let cache =
        Option.map (fun dir -> Safeflow.Cache.create ~dir ~verbose ()) cache_dir
      in
      let reports =
        if use_summary then
          List.map
            (fun file ->
              let ic = open_in_bin file in
              let n = in_channel_length ic in
              let src = really_input_string ic n in
              close_in ic;
              let r, _ = Safeflow.Driver.analyze_summary ~config ~file src in
              Fmt.pr "%a@." Safeflow.Report.pp r;
              r)
            files
        else begin
          let analyses = Safeflow.Driver.analyze_files_par ~config ?cache files in
          List.iter2
            (fun file (a : Safeflow.Driver.analysis) ->
              if List.length files > 1 then Fmt.pr "== %s ==@." file;
              Fmt.pr "%a@." Safeflow.Report.pp a.Safeflow.Driver.report)
            files analyses;
          (match (vfg, analyses) with
          | Some path, [ a ] ->
            Safeflow.Vfg.write_dot path a.Safeflow.Driver.phase3;
            Fmt.pr "value-flow graph written to %s@." path
          | Some _, _ -> Fmt.epr "--vfg ignored: more than one input file@."
          | None, _ -> ());
          List.map (fun (a : Safeflow.Driver.analysis) -> a.Safeflow.Driver.report) analyses
        end
      in
      telemetry_finish tele;
      if List.exists (fun r -> Safeflow.Report.errors r <> []) reports then exit 1
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"run the full SafeFlow analysis on core components")
    Term.(const run $ files $ no_control $ ctx_insensitive $ field_insensitive $ vfg
          $ use_summary $ engine $ cache_dir $ pair_domains $ verbose $ telemetry_flags)

let explain_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let no_control = Arg.(value & flag & info [ "no-control-deps" ] ~doc:"disable control-dependence reporting") in
  let ctx_insensitive = Arg.(value & flag & info [ "ctx-insensitive" ] ~doc:"merge monitoring contexts (ablation)") in
  let field_insensitive = Arg.(value & flag & info [ "field-insensitive" ] ~doc:"ignore byte offsets in regions (ablation)") in
  let engine =
    Arg.(
      value
      & opt engine_conv Safeflow.Config.default.Safeflow.Config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"phase-3 engine: $(b,legacy) or $(b,worklist); witnesses are identical")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR" ~doc:"content-addressed analysis cache directory")
  in
  let run file no_control ctx_insensitive field_insensitive engine cache_dir =
    try
      let config =
        config_of ~control_deps:(not no_control)
          ~context_sensitive:(not ctx_insensitive)
          ~field_sensitive:(not field_insensitive)
          ~engine ~pair_domains:Safeflow.Config.default.Safeflow.Config.pair_domains
      in
      let cache = Option.map (fun dir -> Safeflow.Cache.create ~dir ()) cache_dir in
      let a = Safeflow.Driver.analyze_file ~config ?cache file in
      Fmt.pr "%a@." Safeflow.Report.pp_explain a.Safeflow.Driver.report
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "show the value-flow witness behind every reported dependency: read sites with \
          their monitoring context, then each dependency's step-by-step path from \
          non-core source to critical sink.  Exits 0 regardless of findings (a review \
          aid, not a gate).")
    Term.(const run $ file $ no_control $ ctx_insensitive $ field_insensitive $ engine
          $ cache_dir)

let initcheck_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let run file =
    try
      let a = Safeflow.Driver.analyze_file file in
      let layout =
        Safeflow.Shm.run_init_check a.Safeflow.Driver.prepared.Safeflow.Driver.ir
          a.Safeflow.Driver.shm
      in
      Fmt.pr "InitCheck passed; shared-memory layout:@.";
      List.iter (fun (n, off, sz) -> Fmt.pr "  %-16s offset %5d size %5d@." n off sz) layout
    with
    | Safeflow.Shm.Init_check_failed msg ->
      Fmt.epr "InitCheck FAILED: %s@." msg;
      exit 1
    | Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "initcheck"
       ~doc:"execute the initializing function and verify the region layout")
    Term.(const run $ file)

let dump_ir_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let optimize =
    Arg.(value & flag & info [ "opt" ] ~doc:"run the optimizer before printing")
  in
  let run file optimize =
    try
      let p = Safeflow.Driver.prepare_file file in
      if optimize then begin
        let n = Ssair.Opt.run p.Safeflow.Driver.ir in
        Fmt.epr "; %d rewrites@." n
      end;
      Fmt.pr "%a@." Ssair.Ir.pp_program p.Safeflow.Driver.ir
    with Minic.Loc.Error (loc, msg) ->
      Fmt.epr "%a: %s@." Minic.Loc.pp loc msg;
      exit 2
  in
  Cmd.v (Cmd.info "dump-ir" ~doc:"print the SSA IR of a source file")
    Term.(const run $ file $ optimize)

let synth_cmd =
  let n = Arg.(value & pos 0 int 8 & info [] ~docv:"N" ~doc:"worker count") in
  let run n = print_string (Safeflow.Synth.of_size n) in
  Cmd.v (Cmd.info "synth" ~doc:"emit a synthetic core component of the given size")
    Term.(const run $ n)

let () =
  let doc = "static analysis to enforce safe value flow in embedded control systems" in
  let info = Cmd.info "safeflow" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ analyze_cmd; explain_cmd; initcheck_cmd; dump_ir_cmd; synth_cmd ]))
