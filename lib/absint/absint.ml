(* Interprocedural value-range abstract interpretation over the SSA IR.
   See absint.mli for the contract. *)

open Minic

(* -- Interval domain ---------------------------------------------------- *)

module Itv = struct
  type bound = MInf | Fin of int | PInf

  type t = Bot | Iv of bound * bound

  let top = Iv (MInf, PInf)
  let bot = Bot

  (* bound comparison: MInf < Fin _ < PInf *)
  let bcmp a b =
    match (a, b) with
    | MInf, MInf | PInf, PInf -> 0
    | MInf, _ -> -1
    | _, MInf -> 1
    | PInf, _ -> 1
    | _, PInf -> -1
    | Fin x, Fin y -> compare x y

  let bmin a b = if bcmp a b <= 0 then a else b
  let bmax a b = if bcmp a b >= 0 then a else b

  let norm lo hi = if bcmp lo hi > 0 then Bot else Iv (lo, hi)

  let const n = Iv (Fin n, Fin n)
  let range lo hi = norm (Fin lo) (Fin hi)

  let is_bot t = t = Bot

  let equal a b = a = b

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | _, Bot -> false
    | Iv (l1, h1), Iv (l2, h2) -> bcmp l2 l1 <= 0 && bcmp h1 h2 <= 0

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Iv (l1, h1), Iv (l2, h2) -> Iv (bmin l1 l2, bmax h1 h2)

  let meet a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) -> norm (bmax l1 l2) (bmin h1 h2)

  (* [widen old next]: a bound that moved since [old] jumps to infinity *)
  let widen a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Iv (l1, h1), Iv (l2, h2) ->
      let lo = if bcmp l2 l1 < 0 then MInf else l1 in
      let hi = if bcmp h2 h1 > 0 then PInf else h1 in
      Iv (lo, hi)

  (* [narrow old next]: refine only the infinite bounds of [old] *)
  let narrow a b =
    match (a, b) with
    | Bot, _ -> Bot
    | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) ->
      let lo = if l1 = MInf then l2 else l1 in
      let hi = if h1 = PInf then h2 else h1 in
      norm lo hi

  (* saturating bound arithmetic; on mixed infinities the caller picks the
     conservative direction *)
  let badd ~inf a b =
    match (a, b) with
    | MInf, PInf | PInf, MInf -> inf
    | MInf, _ | _, MInf -> MInf
    | PInf, _ | _, PInf -> PInf
    | Fin x, Fin y ->
      let s = x + y in
      if x >= 0 = (y >= 0) && s >= 0 <> (x >= 0) then if x >= 0 then PInf else MInf
      else Fin s

  let bneg = function
    | MInf -> PInf
    | PInf -> MInf
    | Fin x -> if x = min_int then PInf else Fin (-x)

  let bmul a b =
    match (a, b) with
    | Fin 0, _ | _, Fin 0 -> Fin 0
    | (MInf | PInf), (MInf | PInf) -> if a = b then PInf else MInf
    | ((MInf | PInf) as i), Fin x | Fin x, ((MInf | PInf) as i) ->
      if x > 0 then i else bneg i
    | Fin x, Fin y ->
      let p = x * y in
      if (x = -1 && y = min_int) || (y = -1 && x = min_int) || p / y <> x then
        if x > 0 = (y > 0) then PInf else MInf
      else Fin p

  let add a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) -> Iv (badd ~inf:MInf l1 l2, badd ~inf:PInf h1 h2)

  let neg = function Bot -> Bot | Iv (l, h) -> Iv (bneg h, bneg l)

  let sub a b = add a (neg b)

  let mul a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) ->
      let ps = [ bmul l1 l2; bmul l1 h2; bmul h1 l2; bmul h1 h2 ] in
      Iv (List.fold_left bmin PInf ps, List.fold_left bmax MInf ps)

  let contains t n =
    match t with
    | Bot -> false
    | Iv (l, h) -> bcmp l (Fin n) <= 0 && bcmp (Fin n) h <= 0

  let is_zero t = t = Iv (Fin 0, Fin 0)

  let excludes_zero t = t <> Bot && not (contains t 0)

  let within t ~lo ~hi =
    match t with
    | Bot -> true
    | Iv (l, h) -> bcmp (Fin lo) l <= 0 && bcmp h (Fin hi) <= 0

  let finite_lo = function Iv (Fin l, _) -> Some l | _ -> None
  let finite_hi = function Iv (_, Fin h) -> Some h | _ -> None

  let pp_bound ppf = function
    | MInf -> Fmt.string ppf "-oo"
    | PInf -> Fmt.string ppf "+oo"
    | Fin n -> Fmt.int ppf n

  let pp ppf = function
    | Bot -> Fmt.string ppf "_|_"
    | Iv (MInf, PInf) -> Fmt.string ppf "T"
    | Iv (l, h) when l = h -> Fmt.pf ppf "[%a]" pp_bound l
    | Iv (l, h) -> Fmt.pf ppf "[%a,%a]" pp_bound l pp_bound h
end

(* -- Summaries ----------------------------------------------------------- *)

type key = Kvid of Ssair.Ir.vid | Kparam of string

type dead = Dead_then | Dead_else

type func_summary = {
  s_env : (key * Itv.t) list;          (* sorted by key *)
  s_params : (string * Itv.t) list;    (* declaration order *)
  s_ret : Itv.t;
  s_ret_raw : Itv.t;  (* pre-promotion join over reachable rets (Bot if none) *)
  s_dead : (Ssair.Ir.bid * dead) list; (* sorted by block id *)
  s_iters : int;
  s_widen : int;
}

type t = {
  prog : Ssair.Ir.program;
  summaries : (string, func_summary) Hashtbl.t;
  envs : (string, (key, Itv.t) Hashtbl.t) Hashtbl.t;  (* s_env as a table *)
}

(* -- Per-function fixpoint ----------------------------------------------- *)

module Ir = Ssair.Ir

type fctx = {
  func : Ir.func;
  defs : (Ir.vid, Ir.def_site) Hashtbl.t;
  preds : (Ir.bid, Ir.bid list) Hashtbl.t;
  env : (key, Itv.t) Hashtbl.t;
  params : (string * Itv.t) list;
  ret_of : string -> Itv.t;  (* callee return summary (Top for externs) *)
  reach : (Ir.bid, unit) Hashtbl.t;
  mutable iters : int;
  mutable widens : int;
}

let lookup ctx k = Option.value ~default:Itv.Bot (Hashtbl.find_opt ctx.env k)

let int_roundtrips n = Int64.of_int (Int64.to_int n) = n

let itv_of_int64 n =
  if int_roundtrips n then Itv.const (Int64.to_int n)
  else if Int64.compare n 0L > 0 then Itv.Iv (Itv.Fin max_int, Itv.PInf)
  else Itv.Iv (Itv.MInf, Itv.Fin min_int)

let eval_value ctx = function
  | Ir.Vint (n, _) -> itv_of_int64 n
  | Ir.Vreg id -> lookup ctx (Kvid id)
  | Ir.Vparam p ->
    (match List.assoc_opt p ctx.params with Some i -> i | None -> Itv.top)
  | Ir.Vfloat _ | Ir.Vglobal _ | Ir.Vstr _ | Ir.Vundef _ -> Itv.top

let key_of_value = function
  | Ir.Vreg id -> Some (Kvid id)
  | Ir.Vparam p -> Some (Kparam p)
  | _ -> None

(* interval of [a op b] for a comparison: decided comparisons collapse to
   [0,0]/[1,1], otherwise [0,1] *)
let eval_cmp op a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    let al, ah, bl, bh =
      match (a, b) with
      | Iv (al, ah), Iv (bl, bh) -> (al, ah, bl, bh)
      | _ -> assert false
    in
    let always, never =
      match op with
      | Ast.Lt -> (bcmp ah bl < 0, bcmp al bh >= 0)
      | Ast.Le -> (bcmp ah bl <= 0, bcmp al bh > 0)
      | Ast.Gt -> (bcmp al bh > 0, bcmp ah bl <= 0)
      | Ast.Ge -> (bcmp al bh >= 0, bcmp ah bl < 0)
      | Ast.Eq -> (al = ah && bl = bh && al = bl && al <> MInf && al <> PInf,
                   is_bot (meet a b))
      | Ast.Ne -> (is_bot (meet a b),
                   al = ah && bl = bh && al = bl && al <> MInf && al <> PInf)
      | _ -> (false, false)
    in
    if always then const 1 else if never then const 0 else range 0 1

(* x mod y under OCaml/C truncated-division semantics: the result's sign
   follows the dividend, magnitude is below |y| *)
let eval_rem a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    match finite_hi (join b (neg b)) with
    | Some m when m >= 1 ->
      let hi = m - 1 in
      (match finite_lo a with
      | Some l when l >= 0 -> range 0 hi
      | _ -> range (-hi) hi)
    | _ -> top

let eval_div a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    match (finite_lo b, finite_hi b) with
    | Some bl, Some bh when bl = bh && bl <> 0 ->
      let k = bl in
      (match (a, excludes_zero b) with
      | Iv (l, h), _ ->
        let bdiv = function
          | MInf -> if k > 0 then MInf else PInf
          | PInf -> if k > 0 then PInf else MInf
          | Fin x -> Fin (x / k)
        in
        let c1 = bdiv l and c2 = bdiv h in
        Iv (bmin c1 c2, bmax c1 c2)
      | Bot, _ -> Bot)
    | _ -> (
      (* |a / b| <= |a| whenever the division executes *)
      match (finite_lo a, finite_hi a) with
      | Some l, Some h ->
        let m = max (abs l) (abs h) in
        range (-m) m
      | _ -> top)

let next_pow2_mask n =
  let rec go m = if m >= n && m > 0 then m else go ((m * 2) + 1) in
  go 1

let eval_bitop op a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    match (finite_lo a, finite_hi a, finite_lo b, finite_hi b) with
    | Some al, Some ah, Some bl, Some bh when al >= 0 && bl >= 0 -> (
      match op with
      | Ast.Band -> range 0 (min ah bh)
      | Ast.Bor | Ast.Bxor -> range 0 (next_pow2_mask (max ah bh))
      | _ -> top)
    | _ -> top

let eval_shift op a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    match (op, finite_lo b, finite_hi b) with
    | Ast.Shl, Some k, Some k' when k = k' && k >= 0 && k < 62 ->
      mul a (const (1 lsl k))
    | Ast.Shr, Some k, _ when k >= 0 -> (
      match (finite_lo a, finite_hi a) with
      | Some l, Some h when l >= 0 -> range 0 (h asr k)
      | _ -> top)
    | _ -> top

let eval_binop op a b =
  match op with
  | Ast.Add -> Itv.add a b
  | Ast.Sub -> Itv.sub a b
  | Ast.Mul -> Itv.mul a b
  | Ast.Div -> eval_div a b
  | Ast.Mod -> eval_rem a b
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> eval_cmp op a b
  | Ast.Land | Ast.Lor ->
    if Itv.is_bot a || Itv.is_bot b then Itv.Bot else Itv.range 0 1
  | Ast.Band | Ast.Bor | Ast.Bxor -> eval_bitop op a b
  | Ast.Shl | Ast.Shr -> eval_shift op a b

(* truncating casts: pass the value through when it already fits, else
   fall back to the target's representable range (covers both signedness
   interpretations of the stored bits) *)
let eval_cast env_ty to_ty v =
  let open Itv in
  match Ty.resolve env_ty to_ty with
  | Ty.Char -> if within v ~lo:(-128) ~hi:127 then v else range (-128) 255
  | Ty.Int ->
    if within v ~lo:(-0x4000_0000 * 2) ~hi:0x7fff_ffff then v
    else range (-0x4000_0000 * 2) 0xffff_ffff
  | Ty.Long -> v
  | _ -> top

(* -- Branch-condition refinement ----------------------------------------- *)

let negate_cmp = function
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt
  | Ast.Eq -> Ast.Ne
  | Ast.Ne -> Ast.Eq
  | op -> op

let flip_cmp = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | op -> op

(* interval to meet into [a] given that [a op b] holds *)
let refine_cmp op b =
  let open Itv in
  match op with
  | Ast.Lt -> Iv (MInf, badd ~inf:PInf (match b with Bot -> PInf | Iv (_, h) -> h) (Fin (-1)))
  | Ast.Le -> Iv (MInf, (match b with Bot -> PInf | Iv (_, h) -> h))
  | Ast.Gt -> Iv (badd ~inf:MInf (match b with Bot -> MInf | Iv (l, _) -> l) (Fin 1), PInf)
  | Ast.Ge -> Iv ((match b with Bot -> MInf | Iv (l, _) -> l), PInf)
  | Ast.Eq -> b
  | _ -> top

(* endpoint trim for [a != k] with singleton k *)
let refine_ne a b =
  let open Itv in
  match (a, b) with
  | Iv (l, h), Iv (Fin k, Fin k') when k = k' ->
    if l = Fin k then norm (Fin (k + 1)) h
    else if h = Fin k then norm l (Fin (k - 1))
    else a
  | _ -> a

(* refinements implied by boolean [v] holding with [pol]arity, as a list
   of (key, interval-to-meet).  Mirrors Phase 2's cond_constraints,
   including the short-circuit phi shapes lowered from && and ||. *)
let rec refine_cond ctx v pol depth : (key * Itv.t) list =
  if depth > 8 then []
  else
    match v with
    | Ir.Vreg id -> (
      let self =
        if pol then
          (* truthy: non-convex in general; usable when the sign is known *)
          let cur = lookup ctx (Kvid id) in
          if Itv.leq cur (Itv.Iv (Itv.Fin 0, Itv.PInf)) then
            [ (Kvid id, Itv.Iv (Itv.Fin 1, Itv.PInf)) ]
          else []
        else [ (Kvid id, Itv.const 0) ]
      in
      match Hashtbl.find_opt ctx.defs id with
      | Some (Ir.Def_instr ({ idesc = Ir.Binop { op; lhs; rhs; _ }; _ }, _)) -> (
        match (op, lhs, rhs) with
        | Ast.Ne, x, Ir.Vint (0L, _) -> self @ refine_cond ctx x pol (depth + 1)
        | Ast.Eq, x, Ir.Vint (0L, _) -> self @ refine_cond ctx x (not pol) (depth + 1)
        | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), _, _ ->
          let op = if pol then op else negate_cmp op in
          let li = eval_value ctx lhs and ri = eval_value ctx rhs in
          let refine_side side_v other_itv op =
            match key_of_value side_v with
            | None -> []
            | Some k ->
              let cur = eval_value ctx side_v in
              let r =
                if op = Ast.Ne then refine_ne cur other_itv
                else Itv.meet cur (refine_cmp op other_itv)
              in
              [ (k, r) ]
          in
          self @ refine_side lhs ri op @ refine_side rhs li (flip_cmp op)
        | _ -> self)
      | Some (Ir.Def_instr ({ idesc = Ir.Unop { uop = Ast.Lnot; operand; _ }; _ }, _)) ->
        self @ refine_cond ctx operand (not pol) (depth + 1)
      | Some (Ir.Def_phi (p, pblk)) -> (
        (* short-circuit shapes (see Phase2.cond_constraints) *)
        match p.Ir.incoming with
        | [ (b1, v1); (b2, v2) ] -> (
          let classify (ba, va) (br, vr) =
            match ((Ir.block ctx.func ba).Ir.termin, va) with
            | Ir.Cbr (Ir.Vreg c, tb, eb), Ir.Vreg vc when vc = c && tb <> eb ->
              if eb = pblk && tb = br then Some (`And, c, vr)
              else if tb = pblk && eb = br then Some (`Or, c, vr)
              else None
            | _ -> None
          in
          let shape =
            match classify (b1, v1) (b2, v2) with
            | Some s -> Some s
            | None -> classify (b2, v2) (b1, v1)
          in
          match shape with
          | Some (`And, c, vr) when pol ->
            self
            @ refine_cond ctx (Ir.Vreg c) true (depth + 1)
            @ refine_cond ctx vr true (depth + 1)
          | Some (`Or, c, vr) when not pol ->
            self
            @ refine_cond ctx (Ir.Vreg c) false (depth + 1)
            @ refine_cond ctx vr false (depth + 1)
          | _ -> self)
        | _ -> self)
      | _ -> self)
    | Ir.Vparam p ->
      if pol then []
      else [ (Kparam p, Itv.const 0) ]
    | _ -> []

(* -- CFG fixpoint -------------------------------------------------------- *)

let edge_feasible ctx pred_blk succ =
  match pred_blk.Ir.termin with
  | Ir.Cbr (c, tb, eb) when tb <> eb ->
    let cv = eval_value ctx c in
    if Itv.is_bot cv then false
    else if succ = tb then not (Itv.is_zero cv)
    else if succ = eb then not (Itv.excludes_zero cv)
    else true
  | _ -> true

(* Conditions that decide control ever reaching the end of [blk]: climb
   the chain of single-predecessor blocks (the lowering's empty branch
   arms forward straight to the join, so the deciding [Cbr] usually sits
   one or more blocks above the phi's direct predecessor).  Each
   single-predecessor step means the edge into the block dominates it,
   so its branch refinement is valid.  Depth-capped: a self-looping
   single-predecessor block would otherwise climb forever. *)
let chain_refinements ctx blk =
  let rec climb current n acc =
    if n = 0 then acc
    else
      match Hashtbl.find_opt ctx.preds current with
      | Some [ p ] -> (
        match Ir.block_opt ctx.func p with
        | Some pp ->
          let acc =
            match pp.Ir.termin with
            | Ir.Cbr (c, tb, eb) when tb <> eb && (current = tb || current = eb) ->
              refine_cond ctx c (current = tb) 0 @ acc
            | _ -> acc
          in
          climb p (n - 1) acc
        | None -> acc)
      | _ -> acc
  in
  climb blk 8 []

let eval_phi ctx b (p : Ir.phi) =
  List.fold_left
    (fun acc (pred, v) ->
      match Ir.block_opt ctx.func pred with
      | None -> acc
      | Some pb ->
        if not (Hashtbl.mem ctx.reach pred) then acc
        else if not (edge_feasible ctx pb b.Ir.bbid) then acc
        else
          let base = eval_value ctx v in
          let refs =
            (match pb.Ir.termin with
            | Ir.Cbr (c, tb, eb) when tb <> eb ->
              refine_cond ctx c (b.Ir.bbid = tb) 0
            | _ -> [])
            @ chain_refinements ctx pred
          in
          let refined =
            match key_of_value v with
            | None -> base
            | Some k ->
              List.fold_left
                (fun acc' (k', itv) -> if k' = k then Itv.meet acc' itv else acc')
                base refs
          in
          Itv.join acc refined)
    Itv.Bot p.Ir.incoming

let eval_instr ctx env_ty (i : Ir.instr) =
  match i.Ir.idesc with
  | Ir.Binop { op; lhs; rhs; _ } ->
    eval_binop op (eval_value ctx lhs) (eval_value ctx rhs)
  | Ir.Unop { uop = Ast.Neg; operand; _ } -> Itv.neg (eval_value ctx operand)
  | Ir.Unop { uop = Ast.Lnot; operand; _ } ->
    let v = eval_value ctx operand in
    if Itv.is_bot v then Itv.Bot
    else if Itv.is_zero v then Itv.const 1
    else if Itv.excludes_zero v then Itv.const 0
    else Itv.range 0 1
  | Ir.Unop { uop = Ast.Bnot; _ } -> Itv.top
  | Ir.Cast { to_ty; cval; from_ty } ->
    if Ty.is_integer (Ty.resolve env_ty from_ty) || Ty.is_pointer (Ty.resolve env_ty from_ty)
    then eval_cast env_ty to_ty (eval_value ctx cval)
    else Itv.top
  | Ir.Call { callee; _ } -> ctx.ret_of callee
  | Ir.Load _ | Ir.Alloca _ | Ir.Gep _ | Ir.Store _ | Ir.Annotation _ -> Itv.top

let widen_delay = 3
let max_ascending = 100

let run_function ~(prog : Ir.program) ~params ~ret_of (f : Ir.func) : func_summary =
  let ctx =
    {
      func = f;
      defs = Ir.def_table f;
      preds = Ir.predecessors f;
      env = Hashtbl.create 64;
      params;
      ret_of;
      reach = Hashtbl.create 16;
      iters = 0;
      widens = 0;
    }
  in
  let rpo = Ir.reverse_postorder f in
  let blocks = List.filter_map (Ir.block_opt f) rpo in
  Hashtbl.replace ctx.reach f.Ir.fentry ();
  let set k v changed =
    let old = lookup ctx k in
    if not (Itv.equal old v) then begin
      Hashtbl.replace ctx.env k v;
      changed := true
    end
  in
  let pass ~widening ~narrowing =
    let changed = ref false in
    List.iter
      (fun b ->
        if Hashtbl.mem ctx.reach b.Ir.bbid then begin
          List.iter
            (fun p ->
              let nv = eval_phi ctx b p in
              let old = lookup ctx (Kvid p.Ir.pid) in
              let nv =
                if narrowing then Itv.narrow old nv
                else if widening && not (Itv.leq nv old) then begin
                  let w = Itv.widen old (Itv.join old nv) in
                  if not (Itv.equal w old) then ctx.widens <- ctx.widens + 1;
                  w
                end
                else Itv.join old nv
              in
              set (Kvid p.Ir.pid) nv changed)
            b.Ir.phis;
          List.iter
            (fun i ->
              if Ir.defines i then
                set (Kvid i.Ir.iid) (eval_instr ctx prog.Ir.env i) changed)
            b.Ir.instrs;
          List.iter
            (fun s ->
              if edge_feasible ctx b s && not (Hashtbl.mem ctx.reach s) then begin
                Hashtbl.replace ctx.reach s ();
                changed := true
              end)
            (Ir.succs_of_term b.Ir.termin)
        end)
      blocks;
    ctx.iters <- ctx.iters + 1;
    !changed
  in
  (* ascending chain with delayed widening at phis *)
  let rec ascend n =
    if n < max_ascending && pass ~widening:(n >= widen_delay) ~narrowing:false then
      ascend (n + 1)
  in
  ascend 0;
  (* two descending (narrowing) passes recover precision lost to widening *)
  ignore (pass ~widening:false ~narrowing:true);
  ignore (pass ~widening:false ~narrowing:true);
  (* return range: join over reachable ret blocks *)
  let ret =
    List.fold_left
      (fun acc b ->
        if not (Hashtbl.mem ctx.reach b.Ir.bbid) then acc
        else
          match b.Ir.termin with
          | Ir.Ret (Some v) -> Itv.join acc (eval_value ctx v)
          | _ -> acc)
      Itv.Bot blocks
  in
  let ret_raw = ret in
  let ret = if Itv.is_bot ret then Itv.top else ret in
  (* decided two-way branches in reachable blocks *)
  let dead =
    List.filter_map
      (fun b ->
        if not (Hashtbl.mem ctx.reach b.Ir.bbid) then None
        else
          match b.Ir.termin with
          | Ir.Cbr (c, tb, eb) when tb <> eb ->
            let cv = eval_value ctx c in
            if Itv.is_zero cv then Some (b.Ir.bbid, Dead_then)
            else if Itv.excludes_zero cv then Some (b.Ir.bbid, Dead_else)
            else None
          | _ -> None)
      blocks
    |> List.sort compare
  in
  let env_list =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.env [] |> List.sort compare
  in
  {
    s_env = env_list;
    s_params = params;
    s_ret = ret;
    s_ret_raw = ret_raw;
    s_dead = dead;
    s_iters = ctx.iters;
    s_widen = ctx.widens;
  }

(* -- Interprocedural driver ---------------------------------------------- *)

let pp_itv_string i = Fmt.str "%a" Itv.pp i

let summary_repr s =
  let b = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      (match k with
      | Kvid id -> Buffer.add_string b (Printf.sprintf "v%d=" id)
      | Kparam p -> Buffer.add_string b ("p_" ^ p ^ "="));
      Buffer.add_string b (pp_itv_string v);
      Buffer.add_char b ';')
    s.s_env;
  Buffer.add_string b ("ret=" ^ pp_itv_string s.s_ret ^ ";");
  List.iter
    (fun (p, v) -> Buffer.add_string b ("P" ^ p ^ "=" ^ pp_itv_string v ^ ";"))
    s.s_params;
  List.iter
    (fun (bid, d) ->
      Buffer.add_string b
        (Printf.sprintf "dead%d=%s;" bid
           (match d with Dead_then -> "t" | Dead_else -> "e")))
    s.s_dead;
  Buffer.contents b

let analyze ?memo (prog : Ir.program) : t =
  let defined = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace defined f.Ir.fname f) prog.Ir.funcs;
  let callees_of f =
    List.filter_map
      (fun (i : Ir.instr) ->
        match i.Ir.idesc with
        | Ir.Call { callee; _ } when Hashtbl.mem defined callee -> Some callee
        | _ -> None)
      (Ir.all_instrs f)
    |> List.sort_uniq compare
  in
  let names = List.map (fun f -> f.Ir.fname) prog.Ir.funcs in
  let succs n =
    match Hashtbl.find_opt defined n with Some f -> callees_of f | None -> []
  in
  let scc = Dataflow.Scc.compute names succs in
  let memo =
    match memo with
    | Some m -> m
    | None -> fun ~fname:_ ~inputs_digest:_ compute -> compute ()
  in
  let func_text = Hashtbl.create 16 in
  let text_of n =
    match Hashtbl.find_opt func_text n with
    | Some t -> t
    | None ->
      let t = Ir.func_to_string (Hashtbl.find defined n) in
      Hashtbl.replace func_text n t;
      t
  in
  let rets = Hashtbl.create 16 in
  let ret_of callee =
    match Hashtbl.find_opt rets callee with Some i -> i | None -> Itv.top
  in
  let analyze_one f ~params =
    let digest =
      Digest.string
        (String.concat "\x00"
           (text_of f.Ir.fname
           :: List.map (fun (p, i) -> p ^ "=" ^ pp_itv_string i) params
           @ List.map (fun c -> c ^ ":" ^ pp_itv_string (ret_of c)) (callees_of f)))
      |> Digest.to_hex
    in
    memo ~fname:f.Ir.fname ~inputs_digest:digest (fun () ->
        run_function ~prog ~params ~ret_of f)
  in
  let top_params f = List.map (fun (p, _) -> (p, Itv.top)) f.Ir.fparams in
  (* pass 1, bottom-up: return summaries under unconstrained parameters *)
  List.iter
    (List.iter (fun n ->
         let f = Hashtbl.find defined n in
         let s = analyze_one f ~params:(top_params f) in
         Hashtbl.replace rets n s.s_ret))
    (Dataflow.Scc.reverse_topological scc);
  (* call-site counts: entry points (never called) keep ⊤ parameters *)
  let ncallers = Hashtbl.create 16 in
  List.iter
    (fun f ->
      List.iter
        (fun c ->
          Hashtbl.replace ncallers c (1 + Option.value ~default:0 (Hashtbl.find_opt ncallers c)))
        (callees_of f))
    prog.Ir.funcs;
  (* pass 2, top-down: join call-site argument ranges into parameters *)
  let summaries = Hashtbl.create 16 in
  let envs = Hashtbl.create 16 in
  let arg_join : (string, Itv.t array) Hashtbl.t = Hashtbl.create 16 in
  let record_call caller_env (i : Ir.instr) =
    match i.Ir.idesc with
    | Ir.Call { callee; args; _ } when Hashtbl.mem defined callee ->
      let g = Hashtbl.find defined callee in
      let nparams = List.length g.Ir.fparams in
      let acc =
        match Hashtbl.find_opt arg_join callee with
        | Some a -> a
        | None ->
          let a = Array.make nparams Itv.Bot in
          Hashtbl.replace arg_join callee a;
          a
      in
      List.iteri
        (fun j a ->
          if j < nparams then
            let itv =
              match a with
              | Ir.Vint (n, _) -> itv_of_int64 n
              | Ir.Vreg id ->
                Option.value ~default:Itv.top (Hashtbl.find_opt caller_env (Kvid id))
              | Ir.Vparam _ | Ir.Vfloat _ | Ir.Vglobal _ | Ir.Vstr _ | Ir.Vundef _ ->
                Itv.top
            in
            acc.(j) <- Itv.join acc.(j) itv)
        args
    | _ -> ()
  in
  (* a Vparam argument's range depends on the caller's own parameters; use
     ⊤ above for simplicity — still sound, rarely binding in practice *)
  List.iter
    (List.iter (fun n ->
         let f = Hashtbl.find defined n in
         let params =
           if
             Dataflow.Scc.in_cycle scc succs n
             || not (Hashtbl.mem ncallers n)
           then top_params f
           else
             match Hashtbl.find_opt arg_join n with
             | None -> top_params f
             | Some a ->
               List.mapi
                 (fun j (p, _) ->
                   let itv = if j < Array.length a then a.(j) else Itv.top in
                   (* a callee listed in ncallers has >= 1 recorded site,
                      but guard against Bot from unreachable call sites *)
                   (p, if Itv.is_bot itv then Itv.top else itv))
                 f.Ir.fparams
         in
         let s = analyze_one f ~params in
         Hashtbl.replace summaries n s;
         let env = Hashtbl.create 64 in
         List.iter (fun (k, v) -> Hashtbl.replace env k v) s.s_env;
         Hashtbl.replace envs n env;
         List.iter (record_call env) (Ir.all_instrs f)))
    (Dataflow.Scc.topological scc);
  { prog; summaries; envs }

(* -- Accessors ----------------------------------------------------------- *)

let summary_digest t fname =
  match Hashtbl.find_opt t.summaries fname with
  | None -> ""
  | Some s -> Digest.to_hex (Digest.string (summary_repr s))

let iterations t =
  Hashtbl.fold (fun _ s acc -> acc + s.s_iters) t.summaries 0

let widenings t =
  Hashtbl.fold (fun _ s acc -> acc + s.s_widen) t.summaries 0

let dead_branch t ~fname ~bid =
  match Hashtbl.find_opt t.summaries fname with
  | None -> None
  | Some s -> List.assoc_opt bid s.s_dead

(* -- Query context (dominator-refined ranges at a program point) --------- *)

type qctx = {
  q_t : t;
  q_func : Ir.func;
  q_defs : (Ir.vid, Ir.def_site) Hashtbl.t;
  q_dom : Ssair.Dom.tree;
  q_preds : (Ir.bid, Ir.bid list) Hashtbl.t;
  q_env : (key, Itv.t) Hashtbl.t;
  q_params : (string * Itv.t) list;
}

let query_ctx t (f : Ir.func) =
  let env =
    match Hashtbl.find_opt t.envs f.Ir.fname with
    | Some e -> e
    | None -> Hashtbl.create 0
  in
  let params =
    match Hashtbl.find_opt t.summaries f.Ir.fname with
    | Some s -> s.s_params
    | None -> []
  in
  {
    q_t = t;
    q_func = f;
    q_defs = Ir.def_table f;
    q_dom = Ssair.Dom.compute f;
    q_preds = Ir.predecessors f;
    q_env = env;
    q_params = params;
  }

let qctx_as_fctx q =
  {
    func = q.q_func;
    defs = q.q_defs;
    preds = q.q_preds;
    env = q.q_env;
    params = q.q_params;
    ret_of = (fun _ -> Itv.top);
    reach = Hashtbl.create 0;
    iters = 0;
    widens = 0;
  }

(* branch refinements from conditions dominating [bid]; mirrors Phase 2's
   dominating_constraints (edge dominance via single-predecessor test) *)
let dominating_refinements q bid =
  let ctx = qctx_as_fctx q in
  let single_pred blk from =
    match Hashtbl.find_opt q.q_preds blk with Some [ p ] -> p = from | _ -> false
  in
  let rec climb child acc =
    match Ssair.Dom.idom q.q_dom child with
    | None -> acc
    | Some parent when parent = child -> acc
    | Some parent ->
      let acc =
        match (Ir.block q.q_func parent).Ir.termin with
        | Ir.Cbr (c, tb, eb) when tb <> eb -> (
          let polarity =
            if child = tb && single_pred child parent then Some true
            else if child = eb && single_pred child parent then Some false
            else None
          in
          match polarity with
          | None -> acc
          | Some pol -> refine_cond ctx c pol 0 @ acc)
        | _ -> acc
      in
      climb parent acc
  in
  climb bid []

let range_of_key q ~at k =
  let base =
    match k with
    | Kvid id -> Option.value ~default:Itv.Bot (Hashtbl.find_opt q.q_env (Kvid id))
    | Kparam p ->
      (match List.assoc_opt p q.q_params with Some i -> i | None -> Itv.top)
  in
  List.fold_left
    (fun acc (k', itv) -> if k' = k then Itv.meet acc itv else acc)
    base (dominating_refinements q at)

let range_of_value q ~at v =
  match v with
  | Ir.Vint (n, _) -> itv_of_int64 n
  | Ir.Vreg id -> range_of_key q ~at (Kvid id)
  | Ir.Vparam p -> range_of_key q ~at (Kparam p)
  | Ir.Vfloat _ | Ir.Vglobal _ | Ir.Vstr _ | Ir.Vundef _ -> Itv.top

(* Phase 2 symbol syntax: "v<id>" for SSA values, "p_<name>" for params *)
let range_of_sym q ~at sym =
  let n = String.length sym in
  if n > 1 && sym.[0] = 'v' then
    match int_of_string_opt (String.sub sym 1 (n - 1)) with
    | Some id when Hashtbl.mem q.q_defs id -> Some (range_of_key q ~at (Kvid id))
    | _ -> None
  else if n > 2 && sym.[0] = 'p' && sym.[1] = '_' then
    let p = String.sub sym 2 (n - 2) in
    if List.mem_assoc p q.q_func.Ir.fparams then Some (range_of_key q ~at (Kparam p))
    else None
  else None

(* -- Pretty-printing ----------------------------------------------------- *)

let pp_func_summary t ppf (f : Ir.func) =
  match Hashtbl.find_opt t.summaries f.Ir.fname with
  | None -> Fmt.pf ppf "function %s: no summary@." f.Ir.fname
  | Some s ->
    Fmt.pf ppf "function %s:@." f.Ir.fname;
    if s.s_params <> [] then
      Fmt.pf ppf "  params: %a@."
        Fmt.(list ~sep:comma (fun ppf (p, i) -> Fmt.pf ppf "%s %a" p Itv.pp i))
        s.s_params;
    if not (Ty.equal f.Ir.fret Ty.Void) then Fmt.pf ppf "  ret: %a@." Itv.pp s.s_ret;
    List.iter
      (fun (k, v) ->
        match k with
        | Kvid id -> if not (Itv.equal v Itv.top) then Fmt.pf ppf "  %%%d = %a@." id Itv.pp v
        | Kparam _ -> ())
      s.s_env;
    List.iter
      (fun (bid, d) ->
        Fmt.pf ppf "  b%d: %s branch dead@." bid
          (match d with Dead_then -> "then" | Dead_else -> "else"))
      s.s_dead;
    Fmt.pf ppf "  fixpoint: %d passes, %d widenings@." s.s_iters s.s_widen

(* -- Summary views (certificate emission) -------------------------------- *)

type summary_view = {
  sv_func : string;
  sv_params : (string * Itv.t) list;
  sv_ret : Itv.t;
  sv_ret_raw : Itv.t;
  sv_env : (Ssair.Ir.vid * Itv.t) list;
}

let summary_views t =
  Hashtbl.fold
    (fun name s acc ->
      let env =
        List.filter_map
          (function Kvid id, v -> Some (id, v) | Kparam _, _ -> None)
          s.s_env
      in
      {
        sv_func = name;
        sv_params = s.s_params;
        sv_ret = s.s_ret;
        sv_ret_raw = s.s_ret_raw;
        sv_env = env;
      }
      :: acc)
    t.summaries []
  |> List.sort (fun a b -> compare a.sv_func b.sv_func)
