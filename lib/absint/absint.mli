(** Interprocedural value-range abstract interpretation over the SSA IR.

    Computes, per function, an interval for every SSA value (plus the
    formal parameters and the return value) by a worklist fixpoint over
    the CFG with widening/narrowing at phi nodes and branch-condition
    refinement on CFG edges ([x < n] narrows the interval flowing into
    the true successor).  Call summaries are propagated over the
    {!Dataflow.Scc} condensation of the call graph: a bottom-up pass
    derives sound return-value ranges, then a top-down pass joins the
    argument ranges of every call site into formal-parameter ranges
    (entry points and recursion cycles keep ⊤).

    Consumers: Phase 2 discharges A1/A2 index obligations whose range is
    provably within bounds (and feeds finite ranges to the Omega solver
    as extra hypotheses); Phase 3 drops control-dependence edges for
    branches whose condition has a decided value; [safeflow ranges]
    dumps the summaries.  The analysis is purely an over-approximation:
    consumers may only ever {e remove} findings based on it. *)

(** Integer intervals with infinite bounds and saturating arithmetic. *)
module Itv : sig
  type bound = MInf | Fin of int | PInf

  type t = Bot | Iv of bound * bound
      (** [Iv (lo, hi)] with [lo <= hi]; [Bot] is the empty set *)

  val top : t
  val bot : t
  val const : int -> t
  val range : int -> int -> t
  (** [range lo hi] — [Bot] when [lo > hi] *)

  val is_bot : t -> bool
  val equal : t -> t -> bool
  val leq : t -> t -> bool  (** subset order *)

  val join : t -> t -> t
  val meet : t -> t -> t

  val widen : t -> t -> t
  (** [widen old next] jumps unstable bounds to ±∞ *)

  val narrow : t -> t -> t
  (** [narrow old next] refines only the infinite bounds of [old] *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t

  val contains : t -> int -> bool

  val is_zero : t -> bool
  (** exactly [0,0] *)

  val excludes_zero : t -> bool
  (** non-empty and 0 ∉ interval *)

  val within : t -> lo:int -> hi:int -> bool
  (** is the interval (possibly empty) contained in [lo, hi]? *)

  val finite_lo : t -> int option
  val finite_hi : t -> int option

  val pp : Format.formatter -> t -> unit
end

type func_summary
(** per-function result: value/param/return ranges, decided branches and
    fixpoint statistics.  Pure data — safe to marshal for caching. *)

type t
(** whole-program result *)

val analyze :
  ?memo:(fname:string -> inputs_digest:string -> (unit -> func_summary) -> func_summary) ->
  Ssair.Ir.program ->
  t
(** [analyze prog] runs both interprocedural passes.  [~memo] is called
    around every per-function fixpoint with a digest of everything the
    fixpoint reads (function body, parameter ranges, callee return
    ranges); the driver uses it to back the computation with the
    content-addressed cache. *)

val summary_digest : t -> string -> string
(** stable digest of a function's summary (empty string when the
    function is unknown); folded into downstream cache keys so cached
    phase-2/phase-3 artifacts are invalidated when ranges change *)

val iterations : t -> int
(** total fixpoint passes, all functions *)

val widenings : t -> int
(** total widening events, all functions *)

(** {1 Queries} *)

type dead = Dead_then | Dead_else
    (** which successor of a two-way branch is never taken *)

val dead_branch : t -> fname:string -> bid:Ssair.Ir.bid -> dead option
(** for a reachable block ending in [Cbr] with distinct successors:
    [Some _] when the condition's interval is decided (always zero or
    never zero), i.e. the branch cannot actually select at run time *)

type qctx
(** per-function query context (caches the dominator tree used for
    branch refinement at query sites) *)

val query_ctx : t -> Ssair.Ir.func -> qctx

val range_of_value : qctx -> at:Ssair.Ir.bid -> Ssair.Ir.value -> Itv.t
(** interval of a value as observed in block [at]: the fixpoint interval
    refined by every branch condition dominating [at] *)

val range_of_sym : qctx -> at:Ssair.Ir.bid -> string -> Itv.t option
(** interval for one of Phase 2's Omega symbols ([v<id>] for SSA values,
    [p_<name>] for parameters); [None] for opaque symbols *)

val pp_func_summary : t -> Format.formatter -> Ssair.Ir.func -> unit
(** human-readable dump used by [safeflow ranges] *)

(** {1 Summary views}

    A concrete, read-only projection of the per-function fixpoint —
    everything a certificate needs to record so an independent checker
    can re-verify the summaries as a post-fixpoint.  [sv_env] lists
    every SSA value the fixpoint ever stored (absence means Bot, the
    same convention the engine's own lookups use); [sv_ret_raw] is the
    join over reachable [ret] evaluations {e before} the Bot→top
    promotion applied to [sv_ret] (the promotion is for summary
    consumers; the raw join is the inductively justifiable fact). *)

type summary_view = {
  sv_func : string;
  sv_params : (string * Itv.t) list;
  sv_ret : Itv.t;
  sv_ret_raw : Itv.t;
  sv_env : (Ssair.Ir.vid * Itv.t) list;
}

val summary_views : t -> summary_view list
(** one view per analyzed function, sorted by function name *)
