(* Independent certificate checker (see checker.mli).

   This library re-verifies `safeflow-cert/1` bundles against freshly
   parsed IR using only local checks.  It deliberately does NOT depend
   on the analyzer libraries (safeflow, absint, omega, pointsto,
   dataflow): every semantic rule it needs — the interval domain and
   its transfer functions, the affine abstraction of SSA values, the
   branch-refinement and induction rules — is re-implemented here from
   the written-down semantics, so a bug in the analyzer's implementation
   of those rules is caught rather than reproduced.  The shared trusted
   base is the MiniC frontend and the SSA IR builder (minic + ssair),
   which both sides must agree on by construction: certificates are
   statements about that IR.

   Layout of this file:
     1. interval domain (mirror of the absint lattice)
     2. transfer functions + branch refinement (mirror of absint)
     3. post-fixpoint verification of recorded function summaries
     4. query mirror (dominator-refined ranges at a program point)
     5. affine expressions + constraint derivation (mirror of phase 2)
     6. rational Fourier–Motzkin refuter with integer tightening
     7. certificate JSON decoding and per-kind validation
     8. bundle validation driver *)

open Minic
module Ir = Ssair.Ir
module J = Jsonlite

let md5_hex s = Digest.to_hex (Digest.string s)

(* the witness hash chain: each step commits to its content and to the
   link of the step before it (empty link before the first step) *)
let step_link ~desc ~why ~key ~prev =
  let why = match why with None -> "-" | Some w -> "+" ^ w in
  md5_hex (String.concat "\x00" [ "step"; desc; why; key; prev ])

(* -- 1. Interval domain --------------------------------------------------- *)

module Itv = struct
  type bound = MInf | Fin of int | PInf

  type t = Bot | Iv of bound * bound

  let top = Iv (MInf, PInf)

  let bcmp a b =
    match (a, b) with
    | MInf, MInf | PInf, PInf -> 0
    | MInf, _ -> -1
    | _, MInf -> 1
    | PInf, _ -> 1
    | _, PInf -> -1
    | Fin x, Fin y -> compare x y

  let bmin a b = if bcmp a b <= 0 then a else b
  let bmax a b = if bcmp a b >= 0 then a else b

  let norm lo hi = if bcmp lo hi > 0 then Bot else Iv (lo, hi)

  let const n = Iv (Fin n, Fin n)
  let range lo hi = norm (Fin lo) (Fin hi)

  let is_bot t = t = Bot
  let equal (a : t) b = a = b

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | _, Bot -> false
    | Iv (l1, h1), Iv (l2, h2) -> bcmp l2 l1 <= 0 && bcmp h1 h2 <= 0

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Iv (l1, h1), Iv (l2, h2) -> Iv (bmin l1 l2, bmax h1 h2)

  let meet a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) -> norm (bmax l1 l2) (bmin h1 h2)

  let badd ~inf a b =
    match (a, b) with
    | MInf, PInf | PInf, MInf -> inf
    | MInf, _ | _, MInf -> MInf
    | PInf, _ | _, PInf -> PInf
    | Fin x, Fin y ->
      let s = x + y in
      if x >= 0 = (y >= 0) && s >= 0 <> (x >= 0) then if x >= 0 then PInf else MInf
      else Fin s

  let bneg = function
    | MInf -> PInf
    | PInf -> MInf
    | Fin x -> if x = min_int then PInf else Fin (-x)

  let bmul a b =
    match (a, b) with
    | Fin 0, _ | _, Fin 0 -> Fin 0
    | (MInf | PInf), (MInf | PInf) -> if a = b then PInf else MInf
    | ((MInf | PInf) as i), Fin x | Fin x, ((MInf | PInf) as i) ->
      if x > 0 then i else bneg i
    | Fin x, Fin y ->
      let p = x * y in
      if (x = -1 && y = min_int) || (y = -1 && x = min_int) || p / y <> x then
        if x > 0 = (y > 0) then PInf else MInf
      else Fin p

  let add a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) -> Iv (badd ~inf:MInf l1 l2, badd ~inf:PInf h1 h2)

  let neg = function Bot -> Bot | Iv (l, h) -> Iv (bneg h, bneg l)

  let sub a b = add a (neg b)

  let mul a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) ->
      let ps = [ bmul l1 l2; bmul l1 h2; bmul h1 l2; bmul h1 h2 ] in
      Iv (List.fold_left bmin PInf ps, List.fold_left bmax MInf ps)

  let contains t n =
    match t with
    | Bot -> false
    | Iv (l, h) -> bcmp l (Fin n) <= 0 && bcmp (Fin n) h <= 0

  let is_zero t = t = Iv (Fin 0, Fin 0)

  let excludes_zero t = t <> Bot && not (contains t 0)

  let within t ~lo ~hi =
    match t with
    | Bot -> true
    | Iv (l, h) -> bcmp (Fin lo) l <= 0 && bcmp h (Fin hi) <= 0

  let finite_lo = function Iv (Fin l, _) -> Some l | _ -> None
  let finite_hi = function Iv (_, Fin h) -> Some h | _ -> None

  let pp_bound ppf = function
    | MInf -> Fmt.string ppf "-oo"
    | PInf -> Fmt.string ppf "+oo"
    | Fin n -> Fmt.int ppf n

  let pp ppf = function
    | Bot -> Fmt.string ppf "_|_"
    | Iv (MInf, PInf) -> Fmt.string ppf "T"
    | Iv (l, h) when l = h -> Fmt.pf ppf "[%a]" pp_bound l
    | Iv (l, h) -> Fmt.pf ppf "[%a,%a]" pp_bound l pp_bound h
end

let itv_str i = Fmt.str "%a" Itv.pp i

(* -- 2. Transfer functions and branch refinement -------------------------- *)

type key = Kvid of Ir.vid | Kparam of string

(* recorded facts for one function, decoded from the bundle's absenv *)
type fsum = {
  fs_params : (string * Itv.t) list;
  fs_ret : Itv.t;
  fs_ret_raw : Itv.t;  (* pre-promotion join over reachable rets *)
  fs_env : (Ir.vid, Itv.t) Hashtbl.t;
}

type fenv = {
  func : Ir.func;
  defs : (Ir.vid, Ir.def_site) Hashtbl.t;
  preds : (Ir.bid, Ir.bid list) Hashtbl.t;
  env : (Ir.vid, Itv.t) Hashtbl.t;
  params : (string * Itv.t) list;
  ret_of : string -> Itv.t;
  reach : (Ir.bid, unit) Hashtbl.t;
}

let lookup ctx id = Option.value ~default:Itv.Bot (Hashtbl.find_opt ctx.env id)

let int_roundtrips n = Int64.of_int (Int64.to_int n) = n

let itv_of_int64 n =
  if int_roundtrips n then Itv.const (Int64.to_int n)
  else if Int64.compare n 0L > 0 then Itv.Iv (Itv.Fin max_int, Itv.PInf)
  else Itv.Iv (Itv.MInf, Itv.Fin min_int)

let eval_value ctx = function
  | Ir.Vint (n, _) -> itv_of_int64 n
  | Ir.Vreg id -> lookup ctx id
  | Ir.Vparam p ->
    (match List.assoc_opt p ctx.params with Some i -> i | None -> Itv.top)
  | Ir.Vfloat _ | Ir.Vglobal _ | Ir.Vstr _ | Ir.Vundef _ -> Itv.top

let key_of_value = function
  | Ir.Vreg id -> Some (Kvid id)
  | Ir.Vparam p -> Some (Kparam p)
  | _ -> None

let eval_cmp op a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    let al, ah, bl, bh =
      match (a, b) with
      | Iv (al, ah), Iv (bl, bh) -> (al, ah, bl, bh)
      | _ -> assert false
    in
    let always, never =
      match op with
      | Ast.Lt -> (bcmp ah bl < 0, bcmp al bh >= 0)
      | Ast.Le -> (bcmp ah bl <= 0, bcmp al bh > 0)
      | Ast.Gt -> (bcmp al bh > 0, bcmp ah bl <= 0)
      | Ast.Ge -> (bcmp al bh >= 0, bcmp ah bl < 0)
      | Ast.Eq -> (al = ah && bl = bh && al = bl && al <> MInf && al <> PInf,
                   is_bot (meet a b))
      | Ast.Ne -> (is_bot (meet a b),
                   al = ah && bl = bh && al = bl && al <> MInf && al <> PInf)
      | _ -> (false, false)
    in
    if always then const 1 else if never then const 0 else range 0 1

let eval_rem a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    match finite_hi (join b (neg b)) with
    | Some m when m >= 1 ->
      let hi = m - 1 in
      (match finite_lo a with
      | Some l when l >= 0 -> range 0 hi
      | _ -> range (-hi) hi)
    | _ -> top

let eval_div a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    match (finite_lo b, finite_hi b) with
    | Some bl, Some bh when bl = bh && bl <> 0 ->
      let k = bl in
      (match (a, excludes_zero b) with
      | Iv (l, h), _ ->
        let bdiv = function
          | MInf -> if k > 0 then MInf else PInf
          | PInf -> if k > 0 then PInf else MInf
          | Fin x -> Fin (x / k)
        in
        let c1 = bdiv l and c2 = bdiv h in
        Iv (bmin c1 c2, bmax c1 c2)
      | Bot, _ -> Bot)
    | _ -> (
      match (finite_lo a, finite_hi a) with
      | Some l, Some h ->
        let m = max (abs l) (abs h) in
        range (-m) m
      | _ -> top)

let next_pow2_mask n =
  let rec go m = if m >= n && m > 0 then m else go ((m * 2) + 1) in
  go 1

let eval_bitop op a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    match (finite_lo a, finite_hi a, finite_lo b, finite_hi b) with
    | Some al, Some ah, Some bl, Some bh when al >= 0 && bl >= 0 -> (
      match op with
      | Ast.Band -> range 0 (min ah bh)
      | Ast.Bor | Ast.Bxor -> range 0 (next_pow2_mask (max ah bh))
      | _ -> top)
    | _ -> top

let eval_shift op a b =
  let open Itv in
  if is_bot a || is_bot b then Bot
  else
    match (op, finite_lo b, finite_hi b) with
    | Ast.Shl, Some k, Some k' when k = k' && k >= 0 && k < 62 ->
      mul a (const (1 lsl k))
    | Ast.Shr, Some k, _ when k >= 0 -> (
      match (finite_lo a, finite_hi a) with
      | Some l, Some h when l >= 0 -> range 0 (h asr k)
      | _ -> top)
    | _ -> top

let eval_binop op a b =
  match op with
  | Ast.Add -> Itv.add a b
  | Ast.Sub -> Itv.sub a b
  | Ast.Mul -> Itv.mul a b
  | Ast.Div -> eval_div a b
  | Ast.Mod -> eval_rem a b
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> eval_cmp op a b
  | Ast.Land | Ast.Lor ->
    if Itv.is_bot a || Itv.is_bot b then Itv.Bot else Itv.range 0 1
  | Ast.Band | Ast.Bor | Ast.Bxor -> eval_bitop op a b
  | Ast.Shl | Ast.Shr -> eval_shift op a b

let eval_cast env_ty to_ty v =
  let open Itv in
  match Ty.resolve env_ty to_ty with
  | Ty.Char -> if within v ~lo:(-128) ~hi:127 then v else range (-128) 255
  | Ty.Int ->
    if within v ~lo:(-0x4000_0000 * 2) ~hi:0x7fff_ffff then v
    else range (-0x4000_0000 * 2) 0xffff_ffff
  | Ty.Long -> v
  | _ -> top

let negate_cmp = function
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt
  | Ast.Eq -> Ast.Ne
  | Ast.Ne -> Ast.Eq
  | op -> op

let flip_cmp = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | op -> op

let refine_cmp op b =
  let open Itv in
  match op with
  | Ast.Lt -> Iv (MInf, badd ~inf:PInf (match b with Bot -> PInf | Iv (_, h) -> h) (Fin (-1)))
  | Ast.Le -> Iv (MInf, (match b with Bot -> PInf | Iv (_, h) -> h))
  | Ast.Gt -> Iv (badd ~inf:MInf (match b with Bot -> MInf | Iv (l, _) -> l) (Fin 1), PInf)
  | Ast.Ge -> Iv ((match b with Bot -> MInf | Iv (l, _) -> l), PInf)
  | Ast.Eq -> b
  | _ -> top

let refine_ne a b =
  let open Itv in
  match (a, b) with
  | Iv (l, h), Iv (Fin k, Fin k') when k = k' ->
    if l = Fin k then norm (Fin (k + 1)) h
    else if h = Fin k then norm l (Fin (k - 1))
    else a
  | _ -> a

let rec refine_cond ctx v pol depth : (key * Itv.t) list =
  if depth > 8 then []
  else
    match v with
    | Ir.Vreg id -> (
      let self =
        if pol then
          let cur = lookup ctx id in
          if Itv.leq cur (Itv.Iv (Itv.Fin 0, Itv.PInf)) then
            [ (Kvid id, Itv.Iv (Itv.Fin 1, Itv.PInf)) ]
          else []
        else [ (Kvid id, Itv.const 0) ]
      in
      match Hashtbl.find_opt ctx.defs id with
      | Some (Ir.Def_instr ({ idesc = Ir.Binop { op; lhs; rhs; _ }; _ }, _)) -> (
        match (op, lhs, rhs) with
        | Ast.Ne, x, Ir.Vint (0L, _) -> self @ refine_cond ctx x pol (depth + 1)
        | Ast.Eq, x, Ir.Vint (0L, _) -> self @ refine_cond ctx x (not pol) (depth + 1)
        | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), _, _ ->
          let op = if pol then op else negate_cmp op in
          let li = eval_value ctx lhs and ri = eval_value ctx rhs in
          let refine_side side_v other_itv op =
            match key_of_value side_v with
            | None -> []
            | Some k ->
              let cur = eval_value ctx side_v in
              let r =
                if op = Ast.Ne then refine_ne cur other_itv
                else Itv.meet cur (refine_cmp op other_itv)
              in
              [ (k, r) ]
          in
          self @ refine_side lhs ri op @ refine_side rhs li (flip_cmp op)
        | _ -> self)
      | Some (Ir.Def_instr ({ idesc = Ir.Unop { uop = Ast.Lnot; operand; _ }; _ }, _)) ->
        self @ refine_cond ctx operand (not pol) (depth + 1)
      | Some (Ir.Def_phi (p, pblk)) -> (
        match p.Ir.incoming with
        | [ (b1, v1); (b2, v2) ] -> (
          let classify (ba, va) (br, vr) =
            match ((Ir.block ctx.func ba).Ir.termin, va) with
            | Ir.Cbr (Ir.Vreg c, tb, eb), Ir.Vreg vc when vc = c && tb <> eb ->
              if eb = pblk && tb = br then Some (`And, c, vr)
              else if tb = pblk && eb = br then Some (`Or, c, vr)
              else None
            | _ -> None
          in
          let shape =
            match classify (b1, v1) (b2, v2) with
            | Some s -> Some s
            | None -> classify (b2, v2) (b1, v1)
          in
          match shape with
          | Some (`And, c, vr) when pol ->
            self
            @ refine_cond ctx (Ir.Vreg c) true (depth + 1)
            @ refine_cond ctx vr true (depth + 1)
          | Some (`Or, c, vr) when not pol ->
            self
            @ refine_cond ctx (Ir.Vreg c) false (depth + 1)
            @ refine_cond ctx vr false (depth + 1)
          | _ -> self)
        | _ -> self)
      | _ -> self)
    | Ir.Vparam p -> if pol then [] else [ (Kparam p, Itv.const 0) ]
    | _ -> []

let edge_feasible ctx pred_blk succ =
  match pred_blk.Ir.termin with
  | Ir.Cbr (c, tb, eb) when tb <> eb ->
    let cv = eval_value ctx c in
    if Itv.is_bot cv then false
    else if succ = tb then not (Itv.is_zero cv)
    else if succ = eb then not (Itv.excludes_zero cv)
    else true
  | _ -> true

let chain_refinements ctx blk =
  let rec climb current n acc =
    if n = 0 then acc
    else
      match Hashtbl.find_opt ctx.preds current with
      | Some [ p ] -> (
        match Ir.block_opt ctx.func p with
        | Some pp ->
          let acc =
            match pp.Ir.termin with
            | Ir.Cbr (c, tb, eb) when tb <> eb && (current = tb || current = eb) ->
              refine_cond ctx c (current = tb) 0 @ acc
            | _ -> acc
          in
          climb p (n - 1) acc
        | None -> acc)
      | _ -> acc
  in
  climb blk 8 []

let eval_phi ctx b (p : Ir.phi) =
  List.fold_left
    (fun acc (pred, v) ->
      match Ir.block_opt ctx.func pred with
      | None -> acc
      | Some pb ->
        if not (Hashtbl.mem ctx.reach pred) then acc
        else if not (edge_feasible ctx pb b.Ir.bbid) then acc
        else
          let base = eval_value ctx v in
          let refs =
            (match pb.Ir.termin with
            | Ir.Cbr (c, tb, eb) when tb <> eb ->
              refine_cond ctx c (b.Ir.bbid = tb) 0
            | _ -> [])
            @ chain_refinements ctx pred
          in
          let refined =
            match key_of_value v with
            | None -> base
            | Some k ->
              List.fold_left
                (fun acc' (k', itv) -> if k' = k then Itv.meet acc' itv else acc')
                base refs
          in
          Itv.join acc refined)
    Itv.Bot p.Ir.incoming

let eval_instr ctx env_ty (i : Ir.instr) =
  match i.Ir.idesc with
  | Ir.Binop { op; lhs; rhs; _ } ->
    eval_binop op (eval_value ctx lhs) (eval_value ctx rhs)
  | Ir.Unop { uop = Ast.Neg; operand; _ } -> Itv.neg (eval_value ctx operand)
  | Ir.Unop { uop = Ast.Lnot; operand; _ } ->
    let v = eval_value ctx operand in
    if Itv.is_bot v then Itv.Bot
    else if Itv.is_zero v then Itv.const 1
    else if Itv.excludes_zero v then Itv.const 0
    else Itv.range 0 1
  | Ir.Unop { uop = Ast.Bnot; _ } -> Itv.top
  | Ir.Cast { to_ty; cval; from_ty } ->
    if Ty.is_integer (Ty.resolve env_ty from_ty) || Ty.is_pointer (Ty.resolve env_ty from_ty)
    then eval_cast env_ty to_ty (eval_value ctx cval)
    else Itv.top
  | Ir.Call { callee; _ } -> ctx.ret_of callee
  | Ir.Load _ | Ir.Alloca _ | Ir.Gep _ | Ir.Store _ | Ir.Annotation _ -> Itv.top

(* -- 3. Post-fixpoint verification of recorded summaries ------------------ *)

(* The recorded environments are checked to be *inductive*: starting
   from the entry block, every phi and defining instruction of every
   reachable block must evaluate (under the recorded facts) to a value
   the recorded fact contains.  This is abstraction-carrying code: the
   expensive part of abstract interpretation is finding the fixpoint;
   checking that a claimed assignment IS a post-fixpoint needs a single
   pass and no widening, narrowing or iteration strategy.

   Reachability is re-derived here (closure from the entry under the
   recorded branch-condition intervals), so it can only be a subset of
   what the analyzer explored — joins over fewer predecessors are
   smaller, so an honest bundle still passes, and the induction only
   relies on facts this pass itself verified.

   Interprocedural facts are verified as one simultaneous induction:
   call results are checked against the callee's recorded raw return
   join, parameter facts against the joined argument values at every
   recorded call site, with all functions' environments assumed and
   discharged together (sound for recursion for the same reason a
   simultaneous induction over mutually recursive lemmas is). *)

let make_fenv (f : Ir.func) (sums : (string, fsum) Hashtbl.t) (fs : fsum) =
  {
    func = f;
    defs = Ir.def_table f;
    preds = Ir.predecessors f;
    env = fs.fs_env;
    params = fs.fs_params;
    ret_of =
      (fun callee ->
        match Hashtbl.find_opt sums callee with
        | Some s -> s.fs_ret_raw
        | None -> Itv.top);
    reach = Hashtbl.create 16;
  }

let compute_reach ctx =
  Hashtbl.replace ctx.reach ctx.func.Ir.fentry ();
  let rec go bid =
    match Ir.block_opt ctx.func bid with
    | None -> ()
    | Some b ->
      List.iter
        (fun s ->
          if edge_feasible ctx b s && not (Hashtbl.mem ctx.reach s) then begin
            Hashtbl.replace ctx.reach s ();
            go s
          end)
        (Ir.succs_of_term b.Ir.termin)
  in
  go ctx.func.Ir.fentry

let verify_function ~(ir : Ir.program) (sums : (string, fsum) Hashtbl.t)
    (f : Ir.func) (fs : fsum) : (unit, string) result =
  let fname = f.Ir.fname in
  let err fmt = Fmt.kstr (fun m -> Error m) fmt in
  (* recorded facts must speak about values this function defines *)
  let ctx = make_fenv f sums fs in
  let bad =
    Hashtbl.fold
      (fun id _ acc ->
        match acc with
        | Some _ -> acc
        | None -> if Hashtbl.mem ctx.defs id then None else Some id)
      fs.fs_env None
  in
  match bad with
  | Some id -> err "function %s: recorded fact for unknown value %%%d" fname id
  | None -> (
    if List.map fst fs.fs_params <> List.map fst f.Ir.fparams then
      err "function %s: recorded parameter list does not match the IR" fname
    else begin
      compute_reach ctx;
      let failure = ref None in
      let fail fmt = Fmt.kstr (fun m -> if !failure = None then failure := Some m) fmt in
      List.iter
        (fun (b : Ir.block) ->
          if Hashtbl.mem ctx.reach b.Ir.bbid && !failure = None then begin
            List.iter
              (fun (p : Ir.phi) ->
                let nv = eval_phi ctx b p in
                let rec_v = lookup ctx p.Ir.pid in
                if not (Itv.leq nv rec_v) then
                  fail
                    "function %s: recorded range %s for phi %%%d (block %d) does not \
                     contain its one-step evaluation %s"
                    fname (itv_str rec_v) p.Ir.pid b.Ir.bbid (itv_str nv))
              b.Ir.phis;
            List.iter
              (fun (i : Ir.instr) ->
                if Ir.defines i && !failure = None then begin
                  let nv = eval_instr ctx ir.Ir.env i in
                  let rec_v = lookup ctx i.Ir.iid in
                  if not (Itv.leq nv rec_v) then
                    fail
                      "function %s: recorded range %s for %%%d (block %d) does not \
                       contain its one-step evaluation %s"
                      fname (itv_str rec_v) i.Ir.iid b.Ir.bbid (itv_str nv)
                end)
              b.Ir.instrs
          end)
        f.Ir.blocks;
      match !failure with
      | Some m -> Error m
      | None ->
        (* return fact: the raw join must cover every reachable ret *)
        let rjoin =
          List.fold_left
            (fun acc (b : Ir.block) ->
              if not (Hashtbl.mem ctx.reach b.Ir.bbid) then acc
              else
                match b.Ir.termin with
                | Ir.Ret (Some v) -> Itv.join acc (eval_value ctx v)
                | _ -> acc)
            Itv.Bot f.Ir.blocks
        in
        if not (Itv.leq rjoin fs.fs_ret_raw) then
          err "function %s: recorded return range %s does not contain %s" fname
            (itv_str fs.fs_ret_raw) (itv_str rjoin)
        else
          let promoted = if Itv.is_bot fs.fs_ret_raw then Itv.top else fs.fs_ret_raw in
          if not (Itv.equal fs.fs_ret promoted) then
            err "function %s: summary return %s is not the promotion of %s" fname
              (itv_str fs.fs_ret) (itv_str fs.fs_ret_raw)
          else Ok ()
    end)

(* parameter facts: mirror of the analyzer's call-site argument join —
   constant arguments by value, register arguments by the caller's
   recorded fact (defaulting to top), everything else top *)
let verify_params ~(ir : Ir.program) (sums : (string, fsum) Hashtbl.t) :
    (unit, string) result =
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.fname f) ir.Ir.funcs;
  let result = ref (Ok ()) in
  Hashtbl.iter
    (fun gname (gs : fsum) ->
      if !result = Ok () && List.exists (fun (_, i) -> not (Itv.equal i Itv.top)) gs.fs_params
      then begin
        let g = Hashtbl.find funcs gname in
        let nparams = List.length g.Ir.fparams in
        let joins = Array.make nparams Itv.Bot in
        let sites = ref 0 in
        List.iter
          (fun (f : Ir.func) ->
            let fs = Hashtbl.find_opt sums f.Ir.fname in
            List.iter
              (fun (i : Ir.instr) ->
                match i.Ir.idesc with
                | Ir.Call { callee; args; _ } when callee = gname ->
                  incr sites;
                  List.iteri
                    (fun j a ->
                      if j < nparams then
                        let itv =
                          match a with
                          | Ir.Vint (n, _) -> itv_of_int64 n
                          | Ir.Vreg id ->
                            Option.value ~default:Itv.top
                              (Option.bind fs (fun fs ->
                                   Hashtbl.find_opt fs.fs_env id))
                          | Ir.Vparam _ | Ir.Vfloat _ | Ir.Vglobal _ | Ir.Vstr _
                          | Ir.Vundef _ -> Itv.top
                        in
                        joins.(j) <- Itv.join joins.(j) itv)
                    args
                | _ -> ())
              (Ir.all_instrs f))
          ir.Ir.funcs;
        if !sites = 0 then
          result :=
            Error
              (Fmt.str
                 "function %s: constrained parameters recorded but no call site \
                  justifies them"
                 gname)
        else
          List.iteri
            (fun j (pname, rec_itv) ->
              if !result = Ok () && not (Itv.equal rec_itv Itv.top) then
                if not (Itv.leq joins.(j) rec_itv) then
                  result :=
                    Error
                      (Fmt.str
                         "function %s: recorded range %s for parameter %s does not \
                          contain the call-site join %s"
                         gname (itv_str rec_itv) pname (itv_str joins.(j))))
            gs.fs_params
      end)
    sums;
  !result

(* -- 4. Query mirror: dominator-refined ranges at a program point --------- *)

type qmir = { q_fe : fenv; q_dom : Ssair.Dom.tree }

let make_qmir (f : Ir.func) (sums : (string, fsum) Hashtbl.t) (fs : fsum) =
  { q_fe = make_fenv f sums fs; q_dom = Ssair.Dom.compute f }

let dominating_refinements q bid =
  let ctx = q.q_fe in
  let single_pred blk from =
    match Hashtbl.find_opt ctx.preds blk with Some [ p ] -> p = from | _ -> false
  in
  let rec climb child acc =
    match Ssair.Dom.idom q.q_dom child with
    | None -> acc
    | Some parent when parent = child -> acc
    | Some parent ->
      let acc =
        match (Ir.block ctx.func parent).Ir.termin with
        | Ir.Cbr (c, tb, eb) when tb <> eb -> (
          let polarity =
            if child = tb && single_pred child parent then Some true
            else if child = eb && single_pred child parent then Some false
            else None
          in
          match polarity with
          | None -> acc
          | Some pol -> refine_cond ctx c pol 0 @ acc)
        | _ -> acc
      in
      climb parent acc
  in
  climb bid []

let range_of_key q ~at k =
  let base =
    match k with
    | Kvid id -> lookup q.q_fe id
    | Kparam p ->
      (match List.assoc_opt p q.q_fe.params with Some i -> i | None -> Itv.top)
  in
  List.fold_left
    (fun acc (k', itv) -> if k' = k then Itv.meet acc itv else acc)
    base (dominating_refinements q at)

let range_of_value q ~at v =
  match v with
  | Ir.Vint (n, _) -> itv_of_int64 n
  | Ir.Vreg id -> range_of_key q ~at (Kvid id)
  | Ir.Vparam p -> range_of_key q ~at (Kparam p)
  | Ir.Vfloat _ | Ir.Vglobal _ | Ir.Vstr _ | Ir.Vundef _ -> Itv.top

let range_of_sym q ~at sym =
  let n = String.length sym in
  if n > 1 && sym.[0] = 'v' then
    match int_of_string_opt (String.sub sym 1 (n - 1)) with
    | Some id when Hashtbl.mem q.q_fe.defs id -> Some (range_of_key q ~at (Kvid id))
    | _ -> None
  else if n > 2 && sym.[0] = 'p' && sym.[1] = '_' then
    let p = String.sub sym 2 (n - 2) in
    if List.mem_assoc p q.q_fe.func.Ir.fparams then Some (range_of_key q ~at (Kparam p))
    else None
  else None

(* -- 5. Affine expressions and constraint derivation ---------------------- *)

module Lin = struct
  exception Overflow

  let add_ov a b =
    let r = a + b in
    if (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0) then raise Overflow;
    r

  let mul_ov a b =
    if a = 0 || b = 0 then 0
    else
      let r = a * b in
      if r / b <> a then raise Overflow;
      r

  module Vmap = Map.Make (String)

  type t = { coeffs : int Vmap.t; const : int }

  let zero = { coeffs = Vmap.empty; const = 0 }
  let const c = { coeffs = Vmap.empty; const = c }

  let var ?(coeff = 1) v =
    if coeff = 0 then zero else { coeffs = Vmap.singleton v coeff; const = 0 }

  let normalize_coeffs m = Vmap.filter (fun _ c -> c <> 0) m

  let add a b =
    {
      coeffs =
        normalize_coeffs
          (Vmap.union (fun _ x y -> Some (add_ov x y)) a.coeffs b.coeffs);
      const = add_ov a.const b.const;
    }

  let scale k t =
    if k = 0 then zero
    else
      { coeffs = Vmap.map (fun c -> mul_ov k c) t.coeffs; const = mul_ov k t.const }

  let sub a b = add a (scale (-1) b)

  let is_const t = Vmap.is_empty t.coeffs

  (* mirror of Linexpr.vars: fold prepends, so descending name order *)
  let vars t = Vmap.fold (fun v _ acc -> v :: acc) t.coeffs []

  let bindings t = Vmap.bindings t.coeffs

  let subst t v e =
    match Vmap.find_opt v t.coeffs with
    | None -> t
    | Some c -> add { t with coeffs = Vmap.remove v t.coeffs } (scale c e)

  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

  let coeff_gcd t = Vmap.fold (fun _ c g -> gcd c g) t.coeffs 0

  let equal a b = a.const = b.const && Vmap.equal Int.equal a.coeffs b.coeffs

  let pp ppf t =
    let terms =
      Vmap.bindings t.coeffs
      |> List.map (fun (v, c) ->
             if c = 1 then v else if c = -1 then "-" ^ v else Fmt.str "%d%s" c v)
    in
    let parts =
      if t.const <> 0 || terms = [] then terms @ [ string_of_int t.const ] else terms
    in
    Fmt.string ppf (String.concat " + " parts)
end

type cstr = Eq of Lin.t | Geq of Lin.t

let pp_cstr ppf = function
  | Eq e -> Fmt.pf ppf "%a = 0" Lin.pp e
  | Geq e -> Fmt.pf ppf "%a >= 0" Lin.pp e

let cstr_equal a b =
  match (a, b) with
  | Eq x, Eq y | Geq x, Geq y -> Lin.equal x y
  | _ -> false

(* constraint constructors, total under overflow like the solver's *)
let trivially_true = Geq (Lin.const 0)
let c_le e1 e2 = try Geq (Lin.sub e2 e1) with Lin.Overflow -> trivially_true
let c_lt e1 e2 =
  try Geq (Lin.add (Lin.sub e2 e1) (Lin.const (-1))) with Lin.Overflow -> trivially_true
let c_ge e1 e2 = c_le e2 e1
let c_gt e1 e2 = c_lt e2 e1
let c_eq e1 e2 = try Eq (Lin.sub e1 e2) with Lin.Overflow -> trivially_true

type actx = {
  a_func : Ir.func;
  a_defs : (Ir.vid, Ir.def_site) Hashtbl.t;
  a_dom : Ssair.Dom.tree;
  a_memo : (Ir.vid, Lin.t option) Hashtbl.t;
  mutable a_visiting : Ir.vid list;
  a_unknowns : (Ir.value, string) Hashtbl.t;
  mutable a_n_unknowns : int;
}

let mk_actx f =
  {
    a_func = f;
    a_defs = Ir.def_table f;
    a_dom = Ssair.Dom.compute f;
    a_memo = Hashtbl.create 32;
    a_visiting = [];
    a_unknowns = Hashtbl.create 4;
    a_n_unknowns = 0;
  }

let sym_of_vid id = Fmt.str "v%d" id
let sym_of_param p = "p_" ^ p

let sym_of_unknown ctx (v : Ir.value) =
  match Hashtbl.find_opt ctx.a_unknowns v with
  | Some s -> s
  | None ->
    let s = Fmt.str "u%d" ctx.a_n_unknowns in
    ctx.a_n_unknowns <- ctx.a_n_unknowns + 1;
    Hashtbl.replace ctx.a_unknowns v s;
    s

let rec affine_of_value ctx (v : Ir.value) : Lin.t =
  match v with
  | Ir.Vint (n, _) -> Lin.const (Int64.to_int n)
  | Ir.Vparam p -> Lin.var (sym_of_param p)
  | Ir.Vreg id -> affine_of_vid ctx id
  | Ir.Vfloat _ | Ir.Vglobal _ | Ir.Vstr _ | Ir.Vundef _ ->
    Lin.var (sym_of_unknown ctx v)

and affine_of_vid ctx id : Lin.t =
  if List.mem id ctx.a_visiting then Lin.var (sym_of_vid id)
  else
    match Hashtbl.find_opt ctx.a_memo id with
    | Some (Some e) -> e
    | Some None -> Lin.var (sym_of_vid id)
    | None ->
      let e =
        match Hashtbl.find_opt ctx.a_defs id with
        | Some (Ir.Def_instr (i, _)) -> (
          match i.Ir.idesc with
          | Ir.Binop { op = Ast.Add; lhs; rhs; _ } ->
            Lin.add (affine_of_value ctx lhs) (affine_of_value ctx rhs)
          | Ir.Binop { op = Ast.Sub; lhs; rhs; _ } ->
            Lin.sub (affine_of_value ctx lhs) (affine_of_value ctx rhs)
          | Ir.Binop { op = Ast.Mul; lhs = Ir.Vint (n, _); rhs; _ } ->
            Lin.scale (Int64.to_int n) (affine_of_value ctx rhs)
          | Ir.Binop { op = Ast.Mul; lhs; rhs = Ir.Vint (n, _); _ } ->
            Lin.scale (Int64.to_int n) (affine_of_value ctx lhs)
          | Ir.Cast { to_ty; cval; _ } when Ty.is_integer to_ty ->
            affine_of_value ctx cval
          | _ -> Lin.var (sym_of_vid id))
        | Some (Ir.Def_phi _) -> Lin.var (sym_of_vid id)
        | None -> Lin.var (sym_of_vid id)
      in
      Hashtbl.replace ctx.a_memo id (Some e);
      e

let constraint_of_cmp ctx op lhs rhs polarity : cstr option =
  let a = affine_of_value ctx lhs and b = affine_of_value ctx rhs in
  match (op, polarity) with
  | Ast.Lt, true -> Some (c_lt a b)
  | Ast.Lt, false -> Some (c_ge a b)
  | Ast.Le, true -> Some (c_le a b)
  | Ast.Le, false -> Some (c_gt a b)
  | Ast.Gt, true -> Some (c_gt a b)
  | Ast.Gt, false -> Some (c_le a b)
  | Ast.Ge, true -> Some (c_ge a b)
  | Ast.Ge, false -> Some (c_lt a b)
  | Ast.Eq, true -> Some (c_eq a b)
  | Ast.Ne, false -> Some (c_eq a b)
  | _ -> None

let rec cond_constraints ctx id pol depth : cstr list =
  if depth > 8 then []
  else
    match Hashtbl.find_opt ctx.a_defs id with
    | Some (Ir.Def_instr ({ idesc = Ir.Binop { op; lhs; rhs; _ }; _ }, _)) -> (
      match (op, lhs, rhs) with
      | Ast.Ne, Ir.Vreg x, Ir.Vint (0L, _) -> cond_constraints ctx x pol (depth + 1)
      | Ast.Eq, Ir.Vreg x, Ir.Vint (0L, _) ->
        cond_constraints ctx x (not pol) (depth + 1)
      | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), _, _ ->
        Option.to_list (constraint_of_cmp ctx op lhs rhs pol)
      | _ -> [])
    | Some
        (Ir.Def_instr
           ({ idesc = Ir.Unop { uop = Ast.Lnot; operand = Ir.Vreg x; _ }; _ }, _)) ->
      cond_constraints ctx x (not pol) (depth + 1)
    | Some (Ir.Def_phi (p, pblk)) -> (
      match p.Ir.incoming with
      | [ (b1, v1); (b2, v2) ] -> (
        let classify (ba, va) (br, vr) =
          match ((Ir.block ctx.a_func ba).Ir.termin, va) with
          | Ir.Cbr (Ir.Vreg c, tb, eb), Ir.Vreg vc when vc = c && tb <> eb ->
            if eb = pblk && tb = br then Some (`And, c, vr)
            else if tb = pblk && eb = br then Some (`Or, c, vr)
            else None
          | _ -> None
        in
        let shape =
          match classify (b1, v1) (b2, v2) with
          | Some s -> Some s
          | None -> classify (b2, v2) (b1, v1)
        in
        match shape with
        | Some (`And, c, vr) when pol -> (
          match vr with
          | Ir.Vreg r ->
            cond_constraints ctx c true (depth + 1)
            @ cond_constraints ctx r true (depth + 1)
          | _ -> cond_constraints ctx c true (depth + 1))
        | Some (`Or, c, vr) when not pol -> (
          match vr with
          | Ir.Vreg r ->
            cond_constraints ctx c false (depth + 1)
            @ cond_constraints ctx r false (depth + 1)
          | _ -> cond_constraints ctx c false (depth + 1))
        | _ -> [])
      | _ -> [])
    | _ -> []

let dominating_constraints ctx bid : cstr list =
  let preds = Ir.predecessors ctx.a_func in
  let single_pred blk from =
    match Hashtbl.find_opt preds blk with Some [ p ] -> p = from | _ -> false
  in
  let rec climb child acc =
    match Ssair.Dom.idom ctx.a_dom child with
    | None -> acc
    | Some parent when parent = child -> acc
    | Some parent ->
      let acc =
        match (Ir.block ctx.a_func parent).Ir.termin with
        | Ir.Cbr (Ir.Vreg c, tb, eb) when tb <> eb -> (
          let polarity =
            if child = tb && single_pred child parent then Some true
            else if child = eb && single_pred child parent then Some false
            else None
          in
          match polarity with
          | None -> acc
          | Some pol -> cond_constraints ctx c pol 0 @ acc)
        | _ -> acc
      in
      climb parent acc
  in
  climb bid []

let induction_constraints ctx (e : Lin.t) : cstr list =
  let cs = ref [] in
  List.iter
    (fun sym ->
      match
        if String.length sym > 1 && sym.[0] = 'v' then
          int_of_string_opt (String.sub sym 1 (String.length sym - 1))
        else None
      with
      | None -> ()
      | Some id -> (
        match Hashtbl.find_opt ctx.a_defs id with
        | Some (Ir.Def_phi (p, _)) ->
          let steps = ref [] and inits = ref [] and ok = ref true in
          List.iter
            (fun (_, v) ->
              match v with
              | Ir.Vreg w -> (
                match Hashtbl.find_opt ctx.a_defs w with
                | Some (Ir.Def_instr ({ idesc = Ir.Binop { op; lhs; rhs; _ }; _ }, _))
                  -> (
                  match (op, lhs, rhs) with
                  | Ast.Add, Ir.Vreg x, Ir.Vint (c, _) when x = p.Ir.pid ->
                    steps := Int64.to_int c :: !steps
                  | Ast.Add, Ir.Vint (c, _), Ir.Vreg x when x = p.Ir.pid ->
                    steps := Int64.to_int c :: !steps
                  | Ast.Sub, Ir.Vreg x, Ir.Vint (c, _) when x = p.Ir.pid ->
                    steps := -Int64.to_int c :: !steps
                  | _ ->
                    ctx.a_visiting <- p.Ir.pid :: ctx.a_visiting;
                    inits := affine_of_value ctx v :: !inits;
                    ctx.a_visiting <- List.tl ctx.a_visiting)
                | _ ->
                  ctx.a_visiting <- p.Ir.pid :: ctx.a_visiting;
                  inits := affine_of_value ctx v :: !inits;
                  ctx.a_visiting <- List.tl ctx.a_visiting)
              | Ir.Vint (n, _) -> inits := Lin.const (Int64.to_int n) :: !inits
              | Ir.Vparam q -> inits := Lin.var (sym_of_param q) :: !inits
              | _ -> ok := false)
            p.Ir.incoming;
          if !ok && !inits <> [] then begin
            let phi_e = Lin.var sym in
            if List.for_all (fun s -> s >= 0) !steps then
              List.iter (fun init -> cs := c_ge phi_e init :: !cs) !inits
            else if List.for_all (fun s -> s <= 0) !steps then
              List.iter (fun init -> cs := c_le phi_e init :: !cs) !inits
          end
        | _ -> ()))
    (Lin.vars e);
  !cs

let hyp_clamp = 1 lsl 40

let range_hypotheses (aq : qmir option) ~bid (e : Lin.t) : cstr list =
  match aq with
  | None -> []
  | Some q ->
    List.concat_map
      (fun sym ->
        match range_of_sym q ~at:bid sym with
        | None -> []
        | Some itv ->
          let v = Lin.var sym in
          let lo =
            match Itv.finite_lo itv with
            | Some l when abs l <= hyp_clamp -> [ c_ge v (Lin.const l) ]
            | _ -> []
          in
          let hi =
            match Itv.finite_hi itv with
            | Some h when abs h <= hyp_clamp -> [ c_le v (Lin.const h) ]
            | _ -> []
          in
          lo @ hi)
      (Lin.vars e)

let opaque_syms ctx (e : Lin.t) =
  List.exists
    (fun sym ->
      match
        if String.length sym > 1 && sym.[0] = 'v' then
          int_of_string_opt (String.sub sym 1 (String.length sym - 1))
        else None
      with
      | None -> not (String.length sym > 2 && String.sub sym 0 2 = "p_")
      | Some id -> (
        match Hashtbl.find_opt ctx.a_defs id with
        | Some (Ir.Def_phi _) -> false
        | _ -> true))
    (Lin.vars e)

(* -- 6. Refuter: rational Fourier–Motzkin with integer tightening --------- *)

(* Decide whether a constraint system is infeasible over the integers,
   without solver search: repeatedly (a) normalize every constraint by
   the gcd of its coefficients — an equality whose constant is not
   divisible is an immediate contradiction, an inequality's constant
   rounds down (the integer cut) — (b) substitute away equalities with
   a unit coefficient, and (c) eliminate one variable of the remaining
   inequalities by pairwise Fourier–Motzkin combination.  Each step is
   a sound consequence over the integers, so reaching [c >= 0] with
   [c < 0] (or an unsatisfiable equality) proves the original system
   infeasible.  The procedure is conservative: overflow, blow-up past
   the budget, or a system it cannot reduce all answer "not refuted".
   For the deletion-minimal cores the emitter records — a handful of
   constraints over loop counters and bounds — elimination terminates
   in a few steps. *)

let fm_budget = 400

let refute (cs : cstr list) : bool =
  let exception Contradiction in
  let exception Cannot in
  let floordiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
  let normalize c =
    match c with
    | Eq e ->
      if Lin.is_const e then if e.Lin.const <> 0 then raise Contradiction else None
      else
        let g = Lin.coeff_gcd e in
        if e.Lin.const mod g <> 0 then raise Contradiction
        else
          Some
            (Eq
               {
                 Lin.coeffs = Lin.Vmap.map (fun k -> k / g) e.Lin.coeffs;
                 const = e.Lin.const / g;
               })
    | Geq e ->
      if Lin.is_const e then if e.Lin.const < 0 then raise Contradiction else None
      else
        let g = Lin.coeff_gcd e in
        Some
          (Geq
             {
               Lin.coeffs = Lin.Vmap.map (fun k -> k / g) e.Lin.coeffs;
               const = floordiv e.Lin.const g;
             })
  in
  let rec go cs depth =
    if depth > 64 then raise Cannot;
    let cs = List.filter_map normalize cs in
    if List.length cs > fm_budget then raise Cannot;
    (* substitute one unit-coefficient equality if any *)
    let unit_eq =
      List.find_map
        (function
          | Eq e ->
            List.find_map
              (fun (v, k) ->
                if k = 1 || k = -1 then Some (v, k, e) else None)
              (Lin.bindings e)
          | Geq _ -> None)
        cs
    in
    match unit_eq with
    | Some (v, k, e) ->
      (* k*v + rest = 0  =>  v = -(rest)/k; with k = ±1 exact *)
      let rest = { e with Lin.coeffs = Lin.Vmap.remove v e.Lin.coeffs } in
      let vdef = Lin.scale (-k) rest in
      let cs' =
        List.filter_map
          (fun c ->
            match c with
            | Eq x when Lin.equal x e -> None
            | Eq x -> Some (Eq (Lin.subst x v vdef))
            | Geq x -> Some (Geq (Lin.subst x v vdef)))
          cs
      in
      go cs' (depth + 1)
    | None ->
      (* split remaining equalities, then eliminate one variable *)
      let geqs =
        List.concat_map
          (function Eq e -> [ e; Lin.scale (-1) e ] | Geq e -> [ e ])
          cs
      in
      let vars =
        List.sort_uniq compare (List.concat_map (fun e -> Lin.vars e) geqs)
      in
      (match vars with
      | [] ->
        if List.exists (fun e -> e.Lin.const < 0) geqs then raise Contradiction
        else raise Cannot
      | _ ->
        (* pick the variable minimizing the pos*neg product *)
        let cost v =
          let pos = List.length (List.filter (fun e -> Lin.Vmap.find_opt v e.Lin.coeffs > Some 0) geqs) in
          let neg =
            List.length
              (List.filter
                 (fun e ->
                   match Lin.Vmap.find_opt v e.Lin.coeffs with
                   | Some k -> k < 0
                   | None -> false)
                 geqs)
          in
          (pos * neg) - pos - neg
        in
        let v = List.fold_left (fun b v -> if cost v < cost b then v else b) (List.hd vars) vars in
        let pos, neg, rest =
          List.fold_left
            (fun (p, n, r) e ->
              match Lin.Vmap.find_opt v e.Lin.coeffs with
              | Some k when k > 0 -> (e :: p, n, r)
              | Some _ -> (p, e :: n, r)
              | None -> (p, n, e :: r))
            ([], [], []) geqs
        in
        let combos =
          List.concat_map
            (fun ep ->
              let a = Lin.Vmap.find v ep.Lin.coeffs in
              List.map
                (fun en ->
                  let b = -Lin.Vmap.find v en.Lin.coeffs in
                  (* b*ep + a*en eliminates v; a,b > 0 keeps direction *)
                  Lin.add (Lin.scale b ep) (Lin.scale a en))
                neg)
            pos
        in
        if List.length combos + List.length rest > fm_budget then raise Cannot;
        go (List.map (fun e -> Geq e) (combos @ rest)) (depth + 1))
  in
  match go cs 0 with
  | () -> false
  | exception Contradiction -> true
  | exception Cannot -> false
  | exception Lin.Overflow -> false

(* -- 7. Certificate JSON decoding ----------------------------------------- *)

exception Bad of string

let bad fmt = Fmt.kstr (fun m -> raise (Bad m)) fmt

let jstr name j =
  match Option.bind (J.member name j) J.to_string with
  | Some s -> s
  | None -> bad "missing or non-string field %S" name

let jstr_opt name j =
  match J.member name j with
  | Some J.Null | None -> None
  | Some v -> (
    match J.to_string v with Some s -> Some s | None -> bad "non-string field %S" name)

let jint name j =
  match Option.bind (J.member name j) J.to_int with
  | Some n -> n
  | None -> bad "missing or non-integer field %S" name

let jbool name j =
  match Option.bind (J.member name j) J.to_bool with
  | Some b -> b
  | None -> bad "missing or non-boolean field %S" name

let jlist name j =
  match Option.bind (J.member name j) J.to_list with
  | Some l -> l
  | None -> bad "missing or non-array field %S" name

(* wide integers (interval bounds, linexpr constants) travel as strings
   to dodge double rounding above 2^53 *)
let jwide name j =
  match J.member name j with
  | Some (J.Str s) -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> bad "field %S is not an integer string" name)
  | _ -> bad "missing or non-string integer field %S" name

let jwide_opt name j =
  match J.member name j with
  | Some J.Null | None -> None
  | Some (J.Str s) -> (
    match int_of_string_opt s with
    | Some n -> Some n
    | None -> bad "field %S is not an integer string" name)
  | Some _ -> bad "field %S is not an integer string" name

let itv_of_json j =
  match j with
  | J.Null -> Itv.Bot
  | _ ->
    let lo = match jwide_opt "lo" j with Some l -> Itv.Fin l | None -> Itv.MInf in
    let hi = match jwide_opt "hi" j with Some h -> Itv.Fin h | None -> Itv.PInf in
    if Itv.bcmp lo hi > 0 then bad "malformed interval (lo > hi)" else Itv.Iv (lo, hi)

let lin_of_json j =
  let const = jwide "const" j in
  let terms =
    List.map
      (function
        | J.Arr [ J.Str v; J.Str k ] -> (
          match int_of_string_opt k with
          | Some k -> (v, k)
          | None -> bad "linexpr coefficient is not an integer string")
        | _ -> bad "malformed linexpr term")
      (jlist "terms" j)
  in
  List.fold_left
    (fun acc (v, k) ->
      if k = 0 then bad "linexpr term with zero coefficient"
      else if Lin.Vmap.mem v acc.Lin.coeffs then bad "duplicate linexpr variable %s" v
      else { acc with Lin.coeffs = Lin.Vmap.add v k acc.Lin.coeffs })
    (Lin.const const) terms

let cstr_of_json j =
  let e = lin_of_json j in
  match jstr "op" j with
  | "eq" -> Eq e
  | "geq" -> Geq e
  | op -> bad "unknown constraint operator %S" op

let refutable (cs : J.t list) : bool =
  match List.map cstr_of_json cs with
  | cs -> refute cs
  | exception Bad _ -> false

(* -- 8. Bundle validation -------------------------------------------------- *)

type failure = { ce_id : string; ce_msg : string }

type outcome = {
  passed : int;
  failures : failure list;
  skipped : int;  (* manifest-declared skipped obligations *)
}

let schema = "safeflow-cert/1"

let decode_absenv (txt : string) : (string, fsum) Hashtbl.t =
  let j = match J.parse txt with Ok j -> j | Error e -> bad "absenv: %s" e in
  if jstr "schema" j <> schema then bad "absenv: wrong schema";
  let sums = Hashtbl.create 16 in
  List.iter
    (fun fj ->
      let name = jstr "func" fj in
      let params =
        List.map
          (function
            | J.Arr [ J.Str p; ij ] -> (p, itv_of_json ij)
            | _ -> bad "absenv: malformed parameter entry")
          (jlist "params" fj)
      in
      let env = Hashtbl.create 64 in
      List.iter
        (function
          | J.Arr [ J.Num vid; ij ] ->
            let vid = int_of_float vid in
            if Hashtbl.mem env vid then bad "absenv: duplicate fact for %%%d" vid;
            Hashtbl.replace env vid (itv_of_json ij)
          | _ -> bad "absenv: malformed environment entry")
        (jlist "env" fj);
      let ret =
        match J.member "ret" fj with Some ij -> itv_of_json ij | None -> bad "absenv: missing ret"
      in
      let ret_raw =
        match J.member "ret_raw" fj with
        | Some ij -> itv_of_json ij
        | None -> bad "absenv: missing ret_raw"
      in
      if Hashtbl.mem sums name then bad "absenv: duplicate function %s" name;
      Hashtbl.replace sums name
        { fs_params = params; fs_ret = ret; fs_ret_raw = ret_raw; fs_env = env })
    (jlist "funcs" j);
  sums

let verify_absenv ~(ir : Ir.program) (sums : (string, fsum) Hashtbl.t) :
    (unit, string) result =
  let ir_names = List.map (fun (f : Ir.func) -> f.Ir.fname) ir.Ir.funcs in
  let sum_names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) sums []) in
  if List.sort compare ir_names <> sum_names then
    Error "absenv: recorded function set does not match the program"
  else
    let rec go = function
      | [] -> verify_params ~ir sums
      | (f : Ir.func) :: rest -> (
        match verify_function ~ir sums f (Hashtbl.find sums f.Ir.fname) with
        | Ok () -> go rest
        | Error _ as e -> e)
    in
    go ir.Ir.funcs

(* find the instruction carrying [iid] and the block holding it *)
let find_instr (f : Ir.func) iid : (Ir.instr * Ir.bid) option =
  List.find_map
    (fun (b : Ir.block) ->
      List.find_map
        (fun (i : Ir.instr) -> if i.Ir.iid = iid then Some (i, b.Ir.bbid) else None)
        b.Ir.instrs)
    f.Ir.blocks

let loc_matches j (loc : Loc.t) =
  jstr "file" j = loc.Loc.file && jint "line" j = loc.Loc.line
  && jint "col" j = loc.Loc.col

let find_func (ir : Ir.program) name =
  match List.find_opt (fun (f : Ir.func) -> f.Ir.fname = name) ir.Ir.funcs with
  | Some f -> f
  | None -> bad "function %s not in program" name

(* ---- witness certificates ---- *)

let check_witness cert =
  let steps = jlist "steps" cert in
  if steps = [] then bad "witness certificate with no steps";
  let keys = Hashtbl.create 16 in
  ignore
    (List.fold_left
       (fun (idx, prev) sj ->
         let desc = jstr "desc" sj in
         let why = jstr_opt "why" sj in
         let key = jstr "key" sj in
         let parent = jstr_opt "parent" sj in
         let link = jstr "link" sj in
         let expect = step_link ~desc ~why ~key ~prev in
         if link <> expect then
           bad "witness step %d: link digest mismatch (chain broken at %S)" idx desc;
         (match parent with
         | None -> ()  (* sources and synthetic narrative steps *)
         | Some pk ->
           if pk = "" || not (Hashtbl.mem keys pk) then
             bad "witness step %d: parent %S is not the key of an earlier step" idx pk);
         if key <> "" then Hashtbl.replace keys key ();
         (idx + 1, link))
       (0, "") steps)

(* ---- site certificates (P1–P3) ---- *)

let dealloc_functions = [ "shmdt"; "shmctl"; "free" ]

let check_site ~ir cert =
  let rule = jstr "rule" cert in
  let f = find_func ir (jstr "func" cert) in
  let matching (i : Ir.instr) =
    loc_matches cert i.Ir.iloc
    &&
    match (rule, i.Ir.idesc) with
    | "P1", Ir.Call { callee; _ } -> List.mem callee dealloc_functions
    | "P2", Ir.Store _ -> true
    | "P3", Ir.Cast _ -> true
    | _ -> false
  in
  if not (List.mem rule [ "P1"; "P2"; "P3" ]) then bad "unknown site rule %S" rule;
  if not (List.exists matching (Ir.all_instrs f)) then
    bad "no %s-shaped instruction at the recorded location in %s" rule f.Ir.fname

(* ---- obligation certificates (A1/A2 bounds) ---- *)

let check_obligation ~(ir : Ir.program) ~(regions : (string * int) list)
    ~(qmir_of : string -> qmir option) cert =
  let f = find_func ir (jstr "func" cert) in
  let iid = jint "iid" cert in
  let i, bid =
    match find_instr f iid with
    | Some ib -> ib
    | None -> bad "no instruction %%%d in %s" iid f.Ir.fname
  in
  if jint "bid" cert <> bid then bad "recorded block does not hold %%%d" iid;
  if not (loc_matches cert i.Ir.iloc) then
    bad "recorded location does not match instruction %%%d" iid;
  let base_off = jint "base_off" cert in
  let elsize = jint "elsize" cert in
  let bound = jint "bound" cert in
  let region = jstr "region" cert in
  let idx =
    match i.Ir.idesc with
    | Ir.Gep { kind = Ir.Gindex elt; idx; _ } ->
      if max 1 (Ty.sizeof ir.Ir.env elt) <> elsize then
        bad "recorded element size %d does not match the indexed type" elsize;
      idx
    | _ -> bad "%%%d is not an array-indexing gep" iid
  in
  (match List.assoc_opt region regions with
  | None -> bad "region %s is not a shared-memory region of the program" region
  | Some size ->
    if jint "region_size" cert <> size then
      bad "recorded size of region %s does not match the program (%d)" region size;
    if base_off < 0 || base_off > size then bad "base offset %d outside region" base_off;
    if (size - base_off) / elsize <> bound then
      bad "recorded bound %d does not equal (%d - %d) / %d" bound size base_off elsize);
  let discharge = jstr "discharge" cert in
  let index_kind = jstr "kind" (Option.get (J.member "index" cert)) in
  match discharge with
  | "const" -> (
    if index_kind <> "const" then bad "const discharge with non-constant index";
    match idx with
    | Ir.Vint (n, _) ->
      let n = Int64.to_int n in
      if jint "value" (Option.get (J.member "index" cert)) <> n then
        bad "recorded constant index does not match the instruction";
      if n < 0 || n >= bound then
        bad "constant index %d is outside [0,%d)" n bound
    | _ -> bad "const discharge but the index is not a constant")
  | "ranges" | "omega" | "omega+ranges" -> (
    (match idx with
    | Ir.Vint _ -> bad "counted obligation with a constant index"
    | _ -> ());
    let aq = qmir_of f.Ir.fname in
    let actx = mk_actx f in
    (* canonical derivation order: the index expression, then the
       dominating branch constraints, then the induction facts, then the
       range hypotheses — emission uses the same fresh-context order, so
       the "u<n>" unknown symbols line up *)
    let idx_e = affine_of_value actx idx in
    let doms = dominating_constraints actx bid in
    let inds = induction_constraints actx idx_e in
    let hyps = range_hypotheses aq ~bid idx_e in
    let expect_rule = if opaque_syms actx idx_e then "A2" else "A1" in
    if jstr "rule" cert <> expect_rule then
      bad "recorded rule %S does not match the derived %S" (jstr "rule" cert)
        expect_rule;
    let check_side name goal_c =
      let sj =
        match J.member name (Option.get (J.member "sides" cert)) with
        | Some s -> s
        | None -> bad "missing %s side" name
      in
      match jstr "by" sj with
      | "ranges" -> (
        match aq with
        | None -> bad "%s side claims a range proof but the bundle has no absenv" name
        | Some q ->
          let rng = range_of_value q ~at:bid idx in
          let proved =
            if name = "low" then
              Itv.is_bot rng
              || (match Itv.finite_lo rng with Some l -> l >= 0 | None -> false)
            else
              Itv.is_bot rng
              ||
              match Itv.finite_hi rng with
              | Some h -> h <= bound - 1
              | None -> false
          in
          if not (proved) then
            bad "%s side: the recorded ranges do not prove the bound (index in %s)"
              name (itv_str rng))
      | "omega" ->
        let goal = cstr_of_json (Option.get (J.member "goal" sj)) in
        if not (cstr_equal goal goal_c) then
          bad "%s side: recorded goal %a is not the canonical goal %a" name pp_cstr
            goal pp_cstr goal_c;
        let pool = doms @ inds @ hyps in
        let core =
          List.map
            (fun cj ->
              let c = cstr_of_json cj in
              if not (List.exists (cstr_equal c) pool) then
                bad
                  "%s side: core constraint %a is not among the derived hypotheses"
                  name pp_cstr c;
              c)
            (jlist "core" sj)
        in
        if not (refute (goal_c :: core)) then
          bad "%s side: could not refute the goal from the recorded core" name
      | by -> bad "unknown side discharge %S" by
    in
    check_side "low" (c_le idx_e (Lin.const (-1)));
    check_side "high" (c_ge idx_e (Lin.const bound));
    (* discharge-name consistency with the sides *)
    let side_by name =
      jstr "by" (Option.get (J.member name (Option.get (J.member "sides" cert))))
    in
    let lo_by = side_by "low" and hi_by = side_by "high" in
    (match discharge with
    | "ranges" ->
      if lo_by <> "ranges" || hi_by <> "ranges" then
        bad "discharge \"ranges\" with a non-range side"
    | _ ->
      if lo_by <> "omega" && hi_by <> "omega" then
        bad "discharge %S without an omega side" discharge))
  | d -> bad "unknown obligation discharge %S" d

(* ---- driver ---- *)

let validate ~(ir : Ir.program) ~(regions : (string * int) list)
    ~(expect : (string * string) list)
    ?(check_finding : (J.t -> (unit, string) result) option)
    ~(manifest : J.t) ~(load : string -> (string, string) result) () : outcome =
  let failures = ref [] in
  let passed = ref 0 in
  let record_failure id msg = failures := { ce_id = id; ce_msg = msg } :: !failures in
  (try
     if jstr "schema" manifest <> schema then bad "manifest: unknown schema";
     List.iter
       (fun (name, digest) ->
         if jstr name manifest <> digest then
           bad "manifest: %s digest does not match the freshly parsed program" name)
       expect
   with Bad m -> record_failure "<manifest>" m);
  if !failures <> [] then { passed = 0; failures = List.rev !failures; skipped = 0 }
  else begin
    let absint_on = try jbool "absint" manifest with Bad _ -> false in
    let sums =
      if not absint_on then None
      else
        try
          let aj =
            match J.member "absenv" manifest with
            | Some a when a <> J.Null -> a
            | _ -> bad "manifest: absint on but no absenv recorded"
          in
          let path = jstr "path" aj in
          let body =
            match load path with Ok b -> b | Error e -> bad "absenv: %s" e
          in
          if md5_hex body <> jstr "digest" aj then
            bad "absenv: content digest mismatch";
          let sums = decode_absenv body in
          (match verify_absenv ~ir sums with Ok () -> () | Error m -> bad "%s" m);
          Some sums
        with Bad m ->
          record_failure "<absenv>" m;
          None
    in
    if absint_on && sums = None then
      { passed = 0; failures = List.rev !failures; skipped = 0 }
    else begin
      let qmirs = Hashtbl.create 8 in
      let qmir_of fname =
        match sums with
        | None -> None
        | Some sums -> (
          match Hashtbl.find_opt qmirs fname with
          | Some q -> Some q
          | None -> (
            match Hashtbl.find_opt sums fname with
            | None -> None
            | Some fs ->
              let q = make_qmir (find_func ir fname) sums fs in
              Hashtbl.replace qmirs fname q;
              Some q))
      in
      let skipped =
        match J.member "skipped" manifest with
        | Some (J.Arr l) -> List.length l
        | _ -> 0
      in
      let certs = try jlist "certs" manifest with Bad _ -> [] in
      List.iter
        (fun entry ->
          let id = try jstr "id" entry with Bad _ -> "<unknown>" in
          try
            let path = jstr "path" entry in
            let body =
              match load path with Ok b -> b | Error e -> bad "%s" e
            in
            if md5_hex body <> jstr "digest" entry then
              bad "certificate content digest mismatch";
            let cert =
              match J.parse body with Ok j -> j | Error e -> bad "parse: %s" e
            in
            if jstr "schema" cert <> schema then bad "unknown certificate schema";
            if jstr "id" cert <> id then bad "certificate id does not match manifest";
            (match jstr "kind" cert with
            | "witness" ->
              check_witness cert;
              (match check_finding with
              | Some f -> (
                match f cert with Ok () -> () | Error m -> bad "%s" m)
              | None -> ())
            | "finding" -> (
              let _ = find_func ir (jstr "func" cert) in
              match check_finding with
              | Some f -> (
                match f cert with Ok () -> () | Error m -> bad "%s" m)
              | None -> ())
            | "site" -> check_site ~ir cert
            | "obligation" -> check_obligation ~ir ~regions ~qmir_of cert
            | k -> bad "unknown certificate kind %S" k);
            incr passed
          with
          | Bad m -> record_failure id m
          | Loc.Error (_, m) -> record_failure id m)
        certs;
      { passed = !passed; failures = List.rev !failures; skipped }
    end
  end

let validate_bundle ~ir ~regions ~expect ?check_finding (dir : string) : outcome =
  let read path =
    let full = Filename.concat dir path in
    match
      let ic = open_in_bin full in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with
    | s -> Ok s
    | exception Sys_error e -> Error e
  in
  match read "manifest.json" with
  | Error e ->
    { passed = 0; failures = [ { ce_id = "<manifest>"; ce_msg = e } ]; skipped = 0 }
  | Ok txt -> (
    match J.parse txt with
    | Error e ->
      {
        passed = 0;
        failures = [ { ce_id = "<manifest>"; ce_msg = "parse: " ^ e } ];
        skipped = 0;
      }
    | Ok manifest -> validate ~ir ~regions ~expect ?check_finding ~manifest ~load:read ())
