(** Independent validator for [safeflow-cert/1] certificate bundles.

    This library re-verifies certificates emitted by [safeflow analyze
    --emit-certs] against freshly parsed IR using only local checks:

    - witness certificates: hash-chain connectivity and per-step digest
      agreement;
    - the recorded abstract environment: a single-pass post-fixpoint
      (abstraction-carrying-code) check that every recorded interval
      contains the one-step evaluation of its definition;
    - array-bounds obligations: constant indices by arithmetic, range
      discharges by re-evaluating the dominator-refined interval query,
      Omega discharges by substituting the recorded unsat core into the
      negated obligation and refuting it with bounded Fourier–Motzkin
      elimination — no solver search.

    It depends only on [minic] and [ssair] (the shared frontend both the
    analyzer and the checker must agree on by construction) plus
    [jsonlite]; none of the analysis libraries are linked, so an
    analyzer bug in interval transfer, affine abstraction or the solver
    cannot silently leak into the checker. *)

val md5_hex : string -> string
(** MD5 of a string, lowercase hex — the bundle's content-digest
    function *)

val step_link : desc:string -> why:string option -> key:string -> prev:string -> string
(** The witness hash chain: the link of a step commits to its content
    and to the link of the preceding step ([prev = ""] before the first
    step).  Exported so the emitter and [safeflow explain --json] use
    the identical encoding; the checker recomputes it independently. *)

val schema : string
(** ["safeflow-cert/1"] *)

val refutable : Jsonlite.t list -> bool
(** Can the checker's bounded Fourier–Motzkin refuter prove this
    constraint system (JSON-encoded, as in certificates) infeasible over
    the integers?  The emitter uses this as an oracle when minimizing
    unsat cores, so it never records a core the independent checker
    cannot replay. *)

type failure = {
  ce_id : string;   (** certificate id, or ["<manifest>"]/["<absenv>"] *)
  ce_msg : string;  (** precise reason the certificate was rejected *)
}

type outcome = {
  passed : int;
  failures : failure list;
  skipped : int;  (** obligations the emitter declared unable to certify *)
}

val validate :
  ir:Ssair.Ir.program ->
  regions:(string * int) list ->
  expect:(string * string) list ->
  ?check_finding:(Jsonlite.t -> (unit, string) result) ->
  manifest:Jsonlite.t ->
  load:(string -> (string, string) result) ->
  unit ->
  outcome
(** Validate every certificate listed in [manifest].

    [ir] is the freshly parsed and lowered program; [regions] maps each
    shared-memory region name to its size in bytes; [expect] is a list
    of (manifest field, required value) pairs used to bind the bundle to
    the program (e.g. the [Digest_ir] program fingerprint) — a mismatch
    fails the whole bundle; [check_finding], when given, is consulted
    for finding and witness certificates to verify their binding to
    recomputed report fingerprints (the checker itself has no notion of
    report identity); [load] resolves a bundle-relative path to file
    contents. *)

val validate_bundle :
  ir:Ssair.Ir.program ->
  regions:(string * int) list ->
  expect:(string * string) list ->
  ?check_finding:(Jsonlite.t -> (unit, string) result) ->
  string ->
  outcome
(** [validate_bundle ~ir ~regions ~expect dir] reads [dir/manifest.json]
    and validates the bundle rooted at [dir]. *)
