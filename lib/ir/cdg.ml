(** Control-dependence graph (Ferrante–Ottenstein–Warren).

    Block B is control-dependent on block A iff A has successors S1, S2
    such that B post-dominates S1 but not A.  Computed from the
    post-dominator tree: for each CFG edge A→S where S does not
    post-dominate A, every node on the post-dominator-tree path from S up
    to (but excluding) ipostdom(A) is control-dependent on A.

    The whole computation runs on dense block indices (blocks numbered in
    [f.blocks] order, the virtual exit last) with int-array CHK
    post-dominators — this is called once per function on the phase-3
    prewarm path, where per-function constant cost dominates on programs
    made of many small functions.  The dependence relation is therefore
    delivered primarily as dense slot arrays ([slot_bid], [ctrl_slots]);
    the bid-keyed hashtables are built lazily, only for consumers that
    ask for them (emission order and cons-list shape match the original
    hashtable construction exactly).

    Used by SafeFlow phase 3 to detect critical data that is control-
    dependent on unmonitored non-core values (§3.4.1). *)

type t = {
  deps : (Ir.bid, Ir.bid list) Hashtbl.t Lazy.t;
      (** block → blocks it is control-dependent on *)
  controls : (Ir.bid, Ir.bid list) Hashtbl.t Lazy.t;
      (** block → blocks control-dependent on it *)
  slot_of : Ir.bid -> int;
      (** block id → canonical dense slot (first block with that id), or
          [-1] when no block has that id *)
  slot_bid : int array;  (** dense slot → block id *)
  ctrl_slots : int list array;
      (** dense [controls] relation: slot → slots control-dependent on
          it; lets closure walks (phase 3 branch info) run on arrays
          instead of per-node hashtable probes *)
}

let compute (f : Ir.func) : t =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  if n = 0 then
    {
      deps = lazy (Hashtbl.create 1);
      controls = lazy (Hashtbl.create 1);
      slot_of = (fun _ -> -1);
      slot_bid = [||];
      ctrl_slots = [||];
    }
  else begin
    (* dense numbering; duplicate bbids resolve to the first block, as
       [Ir.block_opt] does.  Almost always bbids already ARE the block
       positions — detect that and skip the lookup table entirely. *)
    let identity_bids = ref true in
    Array.iteri
      (fun i (b : Ir.block) -> if b.bbid <> i then identity_bids := false)
      blocks;
    let slot_of, canon =
      if !identity_bids then
        ((fun bid -> if bid >= 0 && bid < n then bid else -1), None)
      else begin
        let idx_of = Hashtbl.create (2 * n) in
        Array.iteri
          (fun i (b : Ir.block) ->
            if not (Hashtbl.mem idx_of b.bbid) then Hashtbl.add idx_of b.bbid i)
          blocks;
        ( (fun bid ->
            match Hashtbl.find_opt idx_of bid with Some i -> i | None -> -1),
          Some
            (Array.map (fun (b : Ir.block) -> Hashtbl.find idx_of b.bbid) blocks)
        )
      end
    in
    (* canonical slot of a dense index (collapses duplicate bbids) *)
    let canon_of i = match canon with None -> i | Some c -> c.(i) in
    let succs =
      Array.map
        (fun (b : Ir.block) ->
          Array.of_list
            (List.filter_map
               (fun s ->
                 let i = slot_of s in
                 if i >= 0 then Some i else None)
               (Ir.successors f b)))
        blocks
    in
    let preds = Array.make n [] in
    Array.iteri
      (fun i sa -> Array.iter (fun s -> preds.(s) <- i :: preds.(s)) sa)
      succs;
    (* exits: [Ret]/[Unreachable] blocks, then promoted representatives
       of regions with no path to a return (e.g. the periodic "while(1)"
       control loop), in block order, so every block post-dominates
       something and the virtual exit post-dominates everything *)
    let is_exit = Array.make n false in
    let reaches = Array.make n false in
    let rec mark i =
      if not reaches.(i) then begin
        reaches.(i) <- true;
        List.iter mark preds.(i)
      end
    in
    Array.iteri
      (fun i (b : Ir.block) ->
        match b.termin with
        | Ir.Ret _ | Ir.Unreachable ->
          is_exit.(i) <- true;
          mark i
        | _ -> ())
      blocks;
    for i = 0 to n - 1 do
      if not reaches.(i) then begin
        is_exit.(i) <- true;
        mark i
      end
    done;
    (* post-dominators = dominators of the reversed CFG rooted at the
       virtual exit (index [n]); reverse postorder over reversed edges *)
    let exit_i = n in
    let nn = n + 1 in
    let order = ref [] in
    let visited = Array.make nn false in
    let rec dfs u =
      if not visited.(u) then begin
        visited.(u) <- true;
        if u = exit_i then
          for i = 0 to n - 1 do
            if is_exit.(i) then dfs i
          done
        else List.iter dfs preds.(u);
        order := u :: !order
      end
    in
    dfs exit_i;
    let rpo = Array.of_list !order in
    let rpo_num = Array.make nn (-1) in
    Array.iteri (fun i u -> rpo_num.(u) <- i) rpo;
    let undef = -1 in
    let idom = Array.make nn undef in
    idom.(exit_i) <- exit_i;
    let rec intersect b1 b2 =
      if b1 = b2 then b1
      else if rpo_num.(b1) > rpo_num.(b2) then intersect idom.(b1) b2
      else intersect b1 idom.(b2)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun u ->
          if u <> exit_i then begin
            (* predecessors in the reversed graph = CFG successors, plus
               the virtual exit for exit blocks *)
            let nid = ref undef in
            let consider p =
              if idom.(p) <> undef then
                nid := if !nid = undef then p else intersect !nid p
            in
            if is_exit.(u) then consider exit_i;
            Array.iter consider succs.(u);
            if !nid <> undef && idom.(u) <> !nid then begin
              idom.(u) <- !nid;
              changed := true
            end
          end)
        rpo
    done;
    (* FOW: for each CFG edge a→s, everything on the post-dominator-tree
       path from s up to (excluding) ipostdom(a) is control-dependent on
       a.  Dependences accumulate in bid-canonical array slots (duplicate
       bbids share the first block's slot, merging exactly as the
       hashtable version did). *)
    let deps_a = Array.make n [] in
    let ctrl_a = Array.make n [] in
    let ctrl_s = Array.make n [] in
    let add b a =
      let bs = canon_of b and asl = canon_of a in
      let a_bid = blocks.(asl).Ir.bbid in
      if not (List.mem a_bid deps_a.(bs)) then begin
        deps_a.(bs) <- a_bid :: deps_a.(bs);
        ctrl_a.(asl) <- blocks.(bs).Ir.bbid :: ctrl_a.(asl);
        ctrl_s.(asl) <- bs :: ctrl_s.(asl)
      end
    in
    Array.iteri
      (fun a _ ->
        let stop = idom.(a) in
        Array.iter
          (fun s ->
            let rec walk u =
              if u <> stop && u <> exit_i then begin
                add u a;
                let p = idom.(u) in
                if p <> undef && p <> u then walk p
              end
            in
            walk s)
          succs.(a))
      blocks;
    let tbl_of arr =
      lazy
        (let t = Hashtbl.create 16 in
         Array.iteri
           (fun i l -> if l <> [] then Hashtbl.replace t blocks.(i).Ir.bbid l)
           arr;
         t)
    in
    {
      deps = tbl_of deps_a;
      controls = tbl_of ctrl_a;
      slot_of;
      slot_bid = Array.map (fun (b : Ir.block) -> b.Ir.bbid) blocks;
      ctrl_slots = ctrl_s;
    }
  end

(** Blocks that [b] is control-dependent on. *)
let deps_of t b = Option.value ~default:[] (Hashtbl.find_opt (Lazy.force t.deps) b)

(** Transitive closure of control dependence for [b] (not including [b]
    unless it controls itself through a loop). *)
let transitive_deps t b =
  let seen = Hashtbl.create 16 in
  let rec go n =
    List.iter
      (fun a ->
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.replace seen a ();
          go a
        end)
      (deps_of t n)
  in
  go b;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []
