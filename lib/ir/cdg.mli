(** Control-dependence graph (Ferrante–Ottenstein–Warren), computed from
    the post-dominator tree.  Used by phase 3 to detect critical data
    that is control-dependent on unmonitored non-core values. *)

type t = {
  deps : (Ir.bid, Ir.bid list) Hashtbl.t Lazy.t;
      (** block → its controllers; built on first use *)
  controls : (Ir.bid, Ir.bid list) Hashtbl.t Lazy.t;
      (** block → blocks it controls; built on first use *)
  slot_of : Ir.bid -> int;  (** block id → canonical dense slot, -1 if unknown *)
  slot_bid : int array;  (** dense slot → block id *)
  ctrl_slots : int list array;
      (** [controls] on dense slots, for array-based closure walks *)
}

val compute : Ir.func -> t

val deps_of : t -> Ir.bid -> Ir.bid list

val transitive_deps : t -> Ir.bid -> Ir.bid list
