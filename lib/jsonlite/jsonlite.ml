(* Minimal JSON reader (and escape helper).  The repo deliberately has
   no JSON dependency — emitters are hand-rolled Buffer code — but the
   observability layer needs to *read* JSON back: bench records for
   [Benchdiff], NDJSON fleet events for [Progress], stats files in
   tests.  Recursive-descent parser over a string; numbers are kept as
   floats, which covers every value the tool itself emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          let hex4 () =
            if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let ok =
              String.for_all
                (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
                hex
            in
            if not ok then fail st "bad \\u escape";
            int_of_string ("0x" ^ hex)
          in
          let code = hex4 () in
          (* surrogate pairs: a high surrogate must be followed by
             [\uDC00-\uDFFF]; together they name one supplementary-plane
             code point.  An unpaired surrogate is malformed input. *)
          let code =
            if code >= 0xD800 && code <= 0xDBFF then begin
              if
                not
                  (st.pos + 2 <= String.length st.src
                  && st.src.[st.pos] = '\\'
                  && st.src.[st.pos + 1] = 'u')
              then fail st "unpaired high surrogate";
              st.pos <- st.pos + 2;
              let low = hex4 () in
              if low < 0xDC00 || low > 0xDFFF then fail st "invalid low surrogate";
              0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
            end
            else if code >= 0xDC00 && code <= 0xDFFF then
              fail st "unpaired low surrogate"
            else code
          in
          (* UTF-8 encode the code point (1-4 bytes) *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else if code < 0x10000 then begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail st (Printf.sprintf "bad escape '\\%c'" c));
        loop ())
    | Some c ->
      advance st;
      Buffer.add_char b c;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail st (Printf.sprintf "bad number '%s'" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elems (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (elems [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing data at byte %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> raise (Parse_error msg)

(* -- Accessors -------------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function Arr l -> Some l | _ -> None

let to_obj = function Obj l -> Some l | _ -> None

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit (j : t) : string =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f ->
      if Float.is_integer f && Float.abs f <= 9.007199254740992e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        l;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          go v)
        fields;
      Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b
