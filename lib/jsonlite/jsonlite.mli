(** Minimal dependency-free JSON reader.

    The repo's emitters are hand-rolled; this is the matching reader
    for the observability layer — fleet NDJSON events ({!Events},
    {!Progress}), bench records ({!Benchdiff}), and stats files in
    tests.  Numbers are represented as floats, which is lossless for
    everything the tool itself emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** parse a complete JSON document; trailing non-whitespace is an error *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input *)

val member : string -> t -> t option
(** field lookup on an [Obj]; [None] on missing field or non-object *)

val to_string : t -> string option

val to_float : t -> float option

val to_int : t -> int option
(** [Some] only for numbers with an exact integer value *)

val to_bool : t -> bool option

val to_list : t -> t list option

val to_obj : t -> (string * t) list option

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes) *)

val emit : t -> string
(** compact serialization ([parse (emit j) = Ok j] for trees whose
    numbers are exact integers below 2{^53}, which is all this repo
    emits); inverse direction of {!parse} for the certificate and
    explain emitters *)
