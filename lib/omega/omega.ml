(** Integer linear-arithmetic feasibility — the core of the Omega test
    (Pugh, 1991), which the paper invokes for the A1/A2 array-bounds
    restrictions ("the set of affine constraints are given to an integer
    programming solver such as Omega", §3.3).

    Capabilities: conjunctions of affine equalities and inequalities over
    integer variables.  Equalities are eliminated with Pugh's symmetric-
    modulus substitution; inequalities with Fourier–Motzkin elimination
    using the real shadow / dark shadow refinement and splinter search, so
    the answer is exact whenever the solver terminates within budget.

    On arithmetic overflow or budget exhaustion the solver answers
    [Unknown], which clients must treat conservatively. *)

module Linexpr = Linexpr
(** Re-export: affine expressions (the library's main module shadows its
    siblings, so clients reach them through here). *)

type cstr =
  | Eq of Linexpr.t   (** e = 0 *)
  | Geq of Linexpr.t  (** e ≥ 0 *)

type result = Sat | Unsat | Unknown

let pp_cstr ppf = function
  | Eq e -> Fmt.pf ppf "%a = 0" Linexpr.pp e
  | Geq e -> Fmt.pf ppf "%a >= 0" Linexpr.pp e

let pp_result ppf r =
  Fmt.string ppf (match r with Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown")

exception Infeasible
exception Give_up

type budget = { mutable fuel : int }

let spend budget n =
  budget.fuel <- budget.fuel - n;
  if budget.fuel < 0 then raise Give_up

(* symmetric residue in (-m/2, m/2] *)
let mod_hat a m =
  let r = ((a mod m) + m) mod m in
  if 2 * r > m then r - m else r

(** Normalize one constraint; raises [Infeasible] for contradictory
    constants, returns [None] for trivially-true constraints. *)
let normalize (c : cstr) : cstr option =
  match c with
  | Eq e ->
    let g = Linexpr.coeff_gcd e in
    if g = 0 then if e.Linexpr.const = 0 then None else raise Infeasible
    else if e.Linexpr.const mod g <> 0 then raise Infeasible
    else if g = 1 then Some (Eq e)
    else
      Some
        (Eq
           {
             Linexpr.coeffs = Linexpr.Vmap.map (fun c -> c / g) e.Linexpr.coeffs;
             const = e.Linexpr.const / g;
           })
  | Geq e ->
    let g = Linexpr.coeff_gcd e in
    if g = 0 then if e.Linexpr.const >= 0 then None else raise Infeasible
    else if g = 1 then Some (Geq e)
    else
      (* floor-divide the constant: tightening is sound and complete for
         integer solutions *)
      let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
      Some
        (Geq
           {
             Linexpr.coeffs = Linexpr.Vmap.map (fun c -> c / g) e.Linexpr.coeffs;
             const = fdiv e.Linexpr.const g;
           })

let normalize_all cs = List.filter_map normalize cs

let subst_cstr v e = function
  | Eq x -> Eq (Linexpr.subst x v e)
  | Geq x -> Geq (Linexpr.subst x v e)

let vars_of cs =
  List.fold_left
    (fun acc c ->
      let e = match c with Eq e | Geq e -> e in
      List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) acc
        (Linexpr.vars e))
    [] cs

let sigma_counter = ref 0

let fresh_sigma () =
  incr sigma_counter;
  Fmt.str "$sigma%d" !sigma_counter

(** Eliminate all equalities, producing an inequality-only system. *)
let rec eliminate_equalities budget (cs : cstr list) : cstr list =
  spend budget 1;
  let cs = normalize_all cs in
  match
    List.find_opt (function Eq e -> not (Linexpr.is_const e) | _ -> false) cs
  with
  | None ->
    (* any remaining Eq is constant: normalize_all already checked them *)
    List.filter (function Eq _ -> false | Geq _ -> true) cs
  | Some (Eq e as eq) -> (
    let rest = List.filter (fun c -> c != eq) cs in
    (* choose the variable with the smallest |coefficient| *)
    let k, ak =
      Linexpr.Vmap.fold
        (fun v c (bv, bc) -> if abs c < abs bc || bc = 0 then (v, c) else (bv, bc))
        e.Linexpr.coeffs ("", 0)
    in
    if abs ak = 1 then begin
      (* x_k = -sign(ak) * (e - ak x_k) *)
      let without_k = { e with Linexpr.coeffs = Linexpr.Vmap.remove k e.Linexpr.coeffs } in
      let rhs = Linexpr.scale (-ak) without_k in
      (* ak = ±1 so -1/ak = -ak *)
      eliminate_equalities budget (List.map (subst_cstr k rhs) rest)
    end
    else begin
      let m = abs ak + 1 in
      let sigma = fresh_sigma () in
      (* x_k = sign(ak) * ( Σ_{i≠k} mod̂(a_i,m) x_i + mod̂(c,m) − m·σ ) *)
      let s = if ak > 0 then 1 else -1 in
      let sum =
        Linexpr.Vmap.fold
          (fun v c acc ->
            if String.equal v k then acc
            else Linexpr.add acc (Linexpr.var ~coeff:(mod_hat c m) v))
          e.Linexpr.coeffs
          (Linexpr.const (mod_hat e.Linexpr.const m))
      in
      let rhs =
        Linexpr.scale s (Linexpr.add sum (Linexpr.var ~coeff:(-m) sigma))
      in
      (* substitute into every constraint, including the equality itself:
         its coefficients shrink geometrically (Pugh 1991) *)
      eliminate_equalities budget (List.map (subst_cstr k rhs) (eq :: rest))
    end)
  | Some (Geq _) -> assert false

(** Feasibility of an inequality-only system. *)
let rec ineq_feasible budget (cs : cstr list) : bool =
  spend budget (1 + List.length cs);
  let cs = normalize_all cs in
  match vars_of cs with
  | [] -> true (* all constraints were constant-true after normalize *)
  | vars ->
    (* choose elimination variable: prefer exact eliminations and few pairs *)
    let info v =
      let lowers = ref 0 and uppers = ref 0 and exact = ref true in
      List.iter
        (fun c ->
          let e = match c with Eq e | Geq e -> e in
          let a = Linexpr.coeff_of e v in
          if a > 0 then begin
            incr lowers;
            if a <> 1 then exact := false
          end
          else if a < 0 then begin
            incr uppers;
            if a <> -1 then exact := false
          end)
        cs;
      (!exact, !lowers * !uppers)
    in
    let v, (exact, _) =
      List.fold_left
        (fun (bv, (bex, bp)) v ->
          let ex, p = info v in
          if (ex && not bex) || ((ex = bex) && p < bp) then (v, (ex, p)) else (bv, (bex, bp)))
        (List.hd vars, info (List.hd vars))
        (List.tl vars)
    in
    let lowers = ref [] and uppers = ref [] and others = ref [] in
    List.iter
      (fun c ->
        let e = match c with Eq e | Geq e -> e in
        let a = Linexpr.coeff_of e v in
        let rest = { e with Linexpr.coeffs = Linexpr.Vmap.remove v e.Linexpr.coeffs } in
        if a > 0 then
          (* a·v + rest ≥ 0  ⇔  a·v ≥ −rest *)
          lowers := (a, Linexpr.neg rest) :: !lowers
        else if a < 0 then
          (* a·v + rest ≥ 0  ⇔  (−a)·v ≤ rest *)
          uppers := (-a, rest) :: !uppers
        else others := c :: !others)
      cs;
    if !lowers = [] || !uppers = [] then
      (* v is unbounded on one side: drop all constraints involving it *)
      ineq_feasible budget !others
    else begin
      let shadow ~dark =
        List.concat_map
          (fun (a, l) ->
            List.map
              (fun (c, u) ->
                (* a·v ≥ l, c·v ≤ u  ⇒  a·u − c·l ≥ (a−1)(c−1) for dark *)
                let lhs = Linexpr.sub (Linexpr.scale a u) (Linexpr.scale c l) in
                let slack = if dark then (a - 1) * (c - 1) else 0 in
                Geq (Linexpr.add lhs (Linexpr.const (-slack))))
              !uppers)
          !lowers
      in
      if exact then ineq_feasible budget (shadow ~dark:false @ !others)
      else begin
        (* dark shadow: sufficient for satisfiability *)
        let dark_ok =
          try ineq_feasible budget (shadow ~dark:true @ !others) with Infeasible -> false
        in
        if dark_ok then true
        else
          let real_ok =
            try ineq_feasible budget (shadow ~dark:false @ !others)
            with Infeasible -> false
          in
          if not real_ok then false
          else begin
            (* splinters: an integer solution, if any, has a·v within a
               bounded distance of some lower bound (Pugh 1991) *)
            let cmax = List.fold_left (fun acc (c, _) -> max acc c) 1 !uppers in
            List.exists
              (fun (a, l) ->
                let range = ((a * cmax) - a - cmax) / cmax in
                let rec try_i i =
                  if i > range then false
                  else begin
                    spend budget 10;
                    (* a·v = l + i *)
                    let eqc =
                      Eq
                        (Linexpr.add
                           (Linexpr.sub (Linexpr.var ~coeff:a v) l)
                           (Linexpr.const (-i)))
                    in
                    let sat =
                      try ineq_feasible budget (eliminate_equalities budget (eqc :: cs))
                      with Infeasible -> false
                    in
                    sat || try_i (i + 1)
                  end
                in
                try_i 0)
              !lowers
          end
      end
    end

(** Decide feasibility of a conjunction of constraints. *)
(* Query probe (PR 9): an observability hook wrapped around every
   [feasible] call.  The start callback receives the constraint-system
   size and distinct-variable count and returns a finish callback that
   sees the verdict — enough for a caller to time queries (this library
   has no clock of its own) and histogram them by outcome.  The probe
   must not raise; it is invisible to solving. *)
let query_probe : (cstrs:int -> vars:int -> result -> unit) option ref = ref None

let set_query_probe p = query_probe := p

let feasible ?(fuel = 200_000) (cs : cstr list) : result =
  let finish =
    match !query_probe with
    | None -> None
    | Some probe -> Some (probe ~cstrs:(List.length cs) ~vars:(List.length (vars_of cs)))
  in
  let budget = { fuel } in
  let r =
    try
      let ineqs = eliminate_equalities budget (normalize_all cs) in
      if ineq_feasible budget ineqs then Sat else Unsat
    with
    | Infeasible -> Unsat
    | Give_up | Linexpr.Overflow -> Unknown
  in
  (match finish with None -> () | Some f -> f r);
  r

(* -- Convenience constructors -------------------------------------------- *)

(* Construction-time overflow (constants near max_int, e.g. derived from
   value-range bounds) must not escape: [feasible]'s handler only covers
   solving, not building the constraint.  An overflowing constraint is
   weakened to the always-true 0 ≥ 0 — dropping a conjunct can only make
   the system more feasible, so verdicts err toward Sat/Unknown and
   never a false Unsat. *)
let trivially_true = Geq (Linexpr.const 0)

(** e1 ≤ e2 *)
let le e1 e2 = try Geq (Linexpr.sub e2 e1) with Linexpr.Overflow -> trivially_true

(** e1 < e2 (integers: e1 ≤ e2 − 1) *)
let lt e1 e2 =
  try Geq (Linexpr.add (Linexpr.sub e2 e1) (Linexpr.const (-1)))
  with Linexpr.Overflow -> trivially_true

(** e1 ≥ e2 *)
let ge e1 e2 = le e2 e1

(** e1 > e2 *)
let gt e1 e2 = lt e2 e1

(** e1 = e2 *)
let eq e1 e2 = try Eq (Linexpr.sub e1 e2) with Linexpr.Overflow -> trivially_true

(** Is [cs ∧ extra] infeasible — i.e. does [cs] entail ¬extra?  Utility
    for bounds checking: indices violate bounds iff
    [constraints ∧ (idx < 0 ∨ idx ≥ size)] is satisfiable. *)
let entails_not cs extra =
  match feasible (extra :: cs) with
  | Unsat -> true
  | Sat | Unknown -> false

(* -- Unsat cores --------------------------------------------------------- *)

(* Deletion-based minimization: starting from a known-Unsat system
   [pinned @ candidates], drop each candidate in turn and keep it only if
   the system turns Sat/Unknown without it.  The [pinned] constraints
   (typically the negated obligation goal) are never dropped.  Every
   probe is a fresh [feasible] call under the same fuel, so an Unknown
   verdict conservatively keeps the candidate.  The result is a minimal
   hitting set in the deletion sense: removing any single member of the
   returned core leaves the remainder (plus [pinned]) satisfiable or
   undecided. *)
let unsat_core ?fuel (pinned : cstr list) (candidates : cstr list) : cstr list option =
  match feasible ?fuel (pinned @ candidates) with
  | Sat | Unknown -> None
  | Unsat ->
    let rec shrink kept = function
      | [] -> List.rev kept
      | c :: rest -> (
        match feasible ?fuel (pinned @ List.rev_append kept rest) with
        | Unsat -> shrink kept rest
        | Sat | Unknown -> shrink (c :: kept) rest)
    in
    Some (shrink [] candidates)
