(** Integer linear-arithmetic feasibility — the core of the Omega test
    (Pugh, 1991), used by SafeFlow's A1/A2 array-bounds restrictions.

    Decides satisfiability of conjunctions of affine equalities and
    inequalities over the integers.  Equalities are eliminated with
    Pugh's symmetric-modulus substitution; inequalities with
    Fourier–Motzkin using the real-shadow / dark-shadow refinement and
    splinter search, so answers are exact whenever the solver finishes
    within budget.  Arithmetic overflow or budget exhaustion yields
    [Unknown], which clients must treat conservatively. *)

module Linexpr = Linexpr
(** affine expressions (re-exported: the library's main module shadows
    its siblings) *)

type cstr =
  | Eq of Linexpr.t   (** e = 0 *)
  | Geq of Linexpr.t  (** e ≥ 0 *)

type result = Sat | Unsat | Unknown

val pp_cstr : Format.formatter -> cstr -> unit

val pp_result : Format.formatter -> result -> unit

val feasible : ?fuel:int -> cstr list -> result
(** Decide the conjunction.  [fuel] bounds the total work (default
    200_000 abstract steps); exhaustion returns [Unknown]. *)

val set_query_probe : (cstrs:int -> vars:int -> result -> unit) option -> unit
(** Observability hook around every {!feasible} call.  The probe is
    applied to the constraint count and distinct-variable count when the
    query starts; the closure it returns is called with the verdict when
    the query finishes — so a client that wants latency reads its own
    clock in the outer application (this library has none).  The probe
    runs on the solver's thread and must not raise.  [None] (the
    default) disables it. *)

(** {1 Constraint constructors} *)

val le : Linexpr.t -> Linexpr.t -> cstr
(** e1 ≤ e2.  All constructors are overflow-total: if building the
    difference overflows (constants near [max_int], e.g. derived from
    value-range bounds), the constraint degrades to the always-true
    0 ≥ 0 — a conservative weakening, never a false Unsat. *)

val lt : Linexpr.t -> Linexpr.t -> cstr
(** e1 < e2 (integer semantics: e1 ≤ e2 − 1) *)

val ge : Linexpr.t -> Linexpr.t -> cstr

val gt : Linexpr.t -> Linexpr.t -> cstr

val eq : Linexpr.t -> Linexpr.t -> cstr

val entails_not : cstr list -> cstr -> bool
(** [entails_not cs c] — true iff [cs ∧ c] is definitely unsatisfiable
    ([Unknown] counts as "no"). *)

val unsat_core : ?fuel:int -> cstr list -> cstr list -> cstr list option
(** [unsat_core pinned candidates] minimizes a known-infeasible system.
    Returns [Some core] with [core ⊆ candidates] such that
    [pinned @ core] is still Unsat and dropping any single member of
    [core] makes the probe Sat/Unknown — the deletion-minimal
    hypothesis subset certificate emission records.  Returns [None]
    when [pinned @ candidates] is not Unsat to begin with.  Runs one
    {!feasible} probe per candidate; [fuel] bounds each probe as in
    {!feasible}. *)
