(** Whole-program points-to analysis over the IR.

    The paper uses Data Structure Analysis (DSA) as its alias analysis.
    We provide the same service interface — which abstract memory objects
    can each pointer value reference, and what does each object's memory
    point to — with an inclusion-based (Andersen-style) analysis that is
    field-sensitive on pointer *targets* (byte offsets tracked through
    geps, collapsing to [Top] when indices are not constant) and
    field-insensitive on the *heap* (one points-to set per object).  This
    is more conservative than DSA in heap precision and more precise in
    direction (inclusion vs. unification); the ablation benchmark B3
    quantifies the effect on false positives.

    Context-insensitive: one points-to set per SSA value across all call
    sites; the SafeFlow phase-3 dependency analysis adds the context-
    sensitive treatment on top (per the paper, the value-flow phase is the
    context-sensitive one). *)

open Minic

module Node = struct
  type t =
    | Nglobal of string
    | Nalloca of string * int  (** function, alloca instruction id *)
    | Nshm of string           (** shared-memory region, named by its shmvar pointer *)
    | Nextern of string        (** opaque memory returned by an extern function *)
    | Nstr of string

  let compare = compare

  let pp ppf = function
    | Nglobal g -> Fmt.pf ppf "glob:%s" g
    | Nalloca (f, id) -> Fmt.pf ppf "stack:%s.%%%d" f id
    | Nshm r -> Fmt.pf ppf "shm:%s" r
    | Nextern f -> Fmt.pf ppf "ext:%s" f
    | Nstr s -> Fmt.pf ppf "str:%S" s
end

module Offset = struct
  type t = Byte of int | Top

  let add a b = match (a, b) with Byte x, Byte y -> Byte (x + y) | _ -> Top

  let pp ppf = function Byte n -> Fmt.pf ppf "+%d" n | Top -> Fmt.string ppf "+T"
end

module Target = struct
  type t = { node : Node.t; off : Offset.t }

  let compare = compare

  let pp ppf t = Fmt.pf ppf "%a%a" Node.pp t.node Offset.pp t.off
end

module Tset = Set.Make (Target)

type key =
  | Kreg of string * Ssair.Ir.vid    (** function, value id *)
  | Kparam of string * string  (** function, parameter name *)
  | Kret of string             (** function return value *)

type t = {
  pts : (key, Tset.t) Hashtbl.t;
  heap : (Node.t, Tset.t) Hashtbl.t;
  prog : Ssair.Ir.program;
  shm_regions : (string, unit) Hashtbl.t;  (** globals treated as shm region handles *)
}

let pts_get t k = Option.value ~default:Tset.empty (Hashtbl.find_opt t.pts k)

let fold_pts f t acc = Hashtbl.fold f t.pts acc

let fold_heap f t acc = Hashtbl.fold f t.heap acc
let heap_get t n = Option.value ~default:Tset.empty (Hashtbl.find_opt t.heap n)

(* returns true if the set grew *)
let pts_add t k s =
  let old = pts_get t k in
  let merged = Tset.union old s in
  if Tset.cardinal merged > Tset.cardinal old then begin
    Hashtbl.replace t.pts k merged;
    true
  end
  else false

let heap_add t n s =
  let old = heap_get t n in
  let merged = Tset.union old s in
  if Tset.cardinal merged > Tset.cardinal old then begin
    Hashtbl.replace t.heap n merged;
    true
  end
  else false

let is_pointer env ty = match Ty.resolve env ty with Ty.Ptr _ -> true | _ -> false

(** Points-to set of an IR value within function [f]. *)
let value_pts t (f : Ssair.Ir.func) (v : Ssair.Ir.value) : Tset.t =
  match v with
  | Ssair.Ir.Vreg id -> pts_get t (Kreg (f.fname, id))
  | Ssair.Ir.Vparam p -> pts_get t (Kparam (f.fname, p))
  | Ssair.Ir.Vglobal g ->
    Tset.singleton { Target.node = Node.Nglobal g; off = Offset.Byte 0 }
  | Ssair.Ir.Vstr s -> Tset.singleton { Target.node = Node.Nstr s; off = Offset.Byte 0 }
  | Ssair.Ir.Vint _ | Ssair.Ir.Vfloat _ | Ssair.Ir.Vundef _ -> Tset.empty

(** One propagation pass over an instruction; returns true on any change. *)
let transfer t (f : Ssair.Ir.func) (i : Ssair.Ir.instr) : bool =
  let env = t.prog.Ssair.Ir.env in
  let changed = ref false in
  let ( <+ ) k s = if pts_add t k s then changed := true in
  let self = Kreg (f.fname, i.Ssair.Ir.iid) in
  (match i.Ssair.Ir.idesc with
  | Ssair.Ir.Alloca _ ->
    self <+ Tset.singleton
              { Target.node = Node.Nalloca (f.fname, i.Ssair.Ir.iid); off = Offset.Byte 0 }
  | Ssair.Ir.Load { ptr; lty } ->
    if is_pointer env lty then
      (* read the heap cells of every object the pointer may reference *)
      Tset.iter
        (fun tgt -> self <+ heap_get t tgt.Target.node)
        (value_pts t f ptr)
  | Ssair.Ir.Store { ptr; sval; sty } ->
    if is_pointer env sty then
      let sv = value_pts t f sval in
      Tset.iter
        (fun tgt -> if heap_add t tgt.Target.node sv then changed := true)
        (value_pts t f ptr)
  | Ssair.Ir.Gep { base; kind; idx } ->
    let base_pts = value_pts t f base in
    let delta =
      match kind with
      | Ssair.Ir.Gfield (sname, fname) -> (
        match Ty.field_offset env sname fname with
        | Some off -> Offset.Byte off
        | None -> Offset.Top)
      | Ssair.Ir.Gindex elt -> (
        match idx with
        | Ssair.Ir.Vint (0L, _) -> Offset.Byte 0
        | Ssair.Ir.Vint (n, _) -> Offset.Byte (Int64.to_int n * Ty.sizeof env elt)
        | _ -> Offset.Top)
    in
    self <+ Tset.map
              (fun tgt -> { tgt with Target.off = Offset.add tgt.Target.off delta })
              base_pts
  | Ssair.Ir.Cast { to_ty; cval; _ } ->
    if is_pointer env to_ty then self <+ value_pts t f cval
  | Ssair.Ir.Binop { lhs; rhs; _ } ->
    (* pointer comparisons produce ints; pointer arithmetic is gep-only.
       Still, conservatively flow operand targets into the result when it
       is pointer-typed (does not occur in lowered code). *)
    if is_pointer env i.Ssair.Ir.ity then begin
      self <+ value_pts t f lhs;
      self <+ value_pts t f rhs
    end
  | Ssair.Ir.Unop _ | Ssair.Ir.Annotation _ -> ()
  | Ssair.Ir.Call { callee; args; rty } -> (
    match Ssair.Ir.find_func t.prog callee with
    | Some g ->
      (* bind arguments to parameters *)
      List.iteri
        (fun k arg ->
          match List.nth_opt g.Ssair.Ir.fparams k with
          | Some (pname, pty) ->
            if is_pointer env pty then Kparam (g.Ssair.Ir.fname, pname) <+ value_pts t f arg
          | None -> ())
        args;
      if is_pointer env rty then self <+ pts_get t (Kret g.Ssair.Ir.fname)
    | None ->
      (* extern: pointer arguments escape into an opaque region; a pointer
         result may alias that region *)
      let ext = Node.Nextern callee in
      List.iter
        (fun arg ->
          let s = value_pts t f arg in
          if not (Tset.is_empty s) then
            if heap_add t ext s then changed := true)
        args;
      if is_pointer env rty then
        self <+ Tset.singleton { Target.node = ext; off = Offset.Top }));
  !changed

let transfer_term t (f : Ssair.Ir.func) (b : Ssair.Ir.block) : bool =
  match b.Ssair.Ir.termin with
  | Ssair.Ir.Ret (Some v) ->
    if is_pointer t.prog.Ssair.Ir.env f.Ssair.Ir.fret then pts_add t (Kret f.Ssair.Ir.fname) (value_pts t f v)
    else false
  | _ -> false

let transfer_phis t (f : Ssair.Ir.func) (b : Ssair.Ir.block) : bool =
  List.fold_left
    (fun changed (p : Ssair.Ir.phi) ->
      if is_pointer t.prog.Ssair.Ir.env p.Ssair.Ir.pty then
        List.fold_left
          (fun ch (_, v) -> pts_add t (Kreg (f.fname, p.Ssair.Ir.pid)) (value_pts t f v) || ch)
          changed p.Ssair.Ir.incoming
      else changed)
    false b.Ssair.Ir.phis

(** Initial facts from global variables that hold pointers initialized by
    other globals (rare; conservative). *)
let seed_globals t =
  List.iter
    (fun (name, ty, _) ->
      ignore name;
      ignore ty)
    t.prog.Ssair.Ir.globals

(** Run the analysis to fixpoint. *)
let analyze (prog : Ssair.Ir.program) : t =
  let t =
    {
      pts = Hashtbl.create 256;
      heap = Hashtbl.create 64;
      prog;
      shm_regions = Hashtbl.create 8;
    }
  in
  seed_globals t;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        List.iter
          (fun b ->
            if transfer_phis t f b then changed := true;
            List.iter (fun i -> if transfer t f i then changed := true) b.Ssair.Ir.instrs;
            if transfer_term t f b then changed := true)
          f.Ssair.Ir.blocks)
      prog.Ssair.Ir.funcs
  done;
  t

(** All memory objects a value may point to. *)
let points_to t (f : Ssair.Ir.func) (v : Ssair.Ir.value) : Tset.t = value_pts t f v

(** Objects transitively reachable from a target set through the heap. *)
let reachable t (roots : Tset.t) : Tset.t =
  let seen = ref Tset.empty in
  let rec go tgt =
    if not (Tset.mem tgt !seen) then begin
      seen := Tset.add tgt !seen;
      Tset.iter go (heap_get t tgt.Target.node)
    end
  in
  Tset.iter go roots;
  !seen

(** May two values alias (point to a common object)? *)
let may_alias t (f : Ssair.Ir.func) a b =
  let na = Tset.map (fun x -> { x with Target.off = Offset.Top }) (points_to t f a) in
  let nb = Tset.map (fun x -> { x with Target.off = Offset.Top }) (points_to t f b) in
  not (Tset.is_empty (Tset.inter na nb))

let pp_target_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma Target.pp) (Tset.elements s)
