(** Whole-program points-to analysis over the IR — the service DSA
    provides in the paper, implemented as an inclusion-based
    (Andersen-style) analysis: field-sensitive on pointer targets (byte
    offsets through geps), field-insensitive on the heap. *)

(** Abstract memory objects. *)
module Node : sig
  type t =
    | Nglobal of string
    | Nalloca of string * int  (** function, alloca instruction id *)
    | Nshm of string           (** shared-memory region *)
    | Nextern of string        (** opaque memory from an extern function *)
    | Nstr of string

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit
end

module Offset : sig
  type t = Byte of int | Top

  val add : t -> t -> t

  val pp : Format.formatter -> t -> unit
end

module Target : sig
  type t = { node : Node.t; off : Offset.t }

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit
end

module Tset : Set.S with type elt = Target.t

(** Points-to set keys. *)
type key =
  | Kreg of string * Ssair.Ir.vid
  | Kparam of string * string
  | Kret of string

type t

val analyze : Ssair.Ir.program -> t
(** run to fixpoint over the whole program *)

val pts_get : t -> key -> Tset.t

val fold_pts : (key -> Tset.t -> 'a -> 'a) -> t -> 'a -> 'a
(** fold over every points-to binding (iteration order unspecified) *)

val fold_heap : (Node.t -> Tset.t -> 'a -> 'a) -> t -> 'a -> 'a
(** fold over every heap cell (iteration order unspecified) *)

val points_to : t -> Ssair.Ir.func -> Ssair.Ir.value -> Tset.t
(** objects a value may reference *)

val reachable : t -> Tset.t -> Tset.t
(** objects transitively reachable through the heap *)

val may_alias : t -> Ssair.Ir.func -> Ssair.Ir.value -> Ssair.Ir.value -> bool

val pp_target_set : Format.formatter -> Tset.t -> unit
