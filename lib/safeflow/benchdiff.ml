(* Perf-regression comparison over self-describing BENCH_*.json files.

   Both files are parsed with Jsonlite; every top-level array of
   objects ("b1_systems", "fleet", "jobs_sweep", ...) contributes rows.
   Rows are matched by an identity key — the array name plus the row's
   discriminating fields (system/input/engine/jobs/..., including the
   semantic-config fingerprint, so rows from semantically different
   configurations never get compared).  Within a matched pair only
   time-like metrics are judged:

     *_ms / *_s           lower is better (except the _min/_mean/_stddev
                          noise companions, which are informational)
     *analyses_per_sec    higher is better

   counts, rates and speedups are derived values and are skipped.  Tiny
   rows are too noisy to gate on: a metric is only judged when at least
   one side is >= 0.5 ms.

   Host rule: benchmark numbers only transfer between identical hosts.
   When either file lacks a hostname, or the hostnames differ, the
   verdict carries [host_match = false] and {!gate} treats regressions
   as non-blocking (warn, exit 0). *)

type direction = Lower_better | Higher_better

type delta = {
  d_row : string;  (* human-readable row label *)
  d_metric : string;
  d_old : float;
  d_new : float;
  d_change_pct : float;  (* signed; positive = metric value went up *)
  d_regression : bool;
}

type verdict = {
  v_threshold : float;  (* fraction, e.g. 0.10 *)
  v_host_match : bool;
  v_rows_matched : int;
  v_rows_old_only : int;
  v_rows_new_only : int;
  v_deltas : delta list;  (* regressions and improvements past threshold *)
  v_notes : string list;
}

(* identity fields: everything that names a configuration rather than
   measuring it.  Order fixed so keys are stable. *)
let identity_fields =
  [
    "system"; "input"; "engine"; "engines"; "systems"; "jobs"; "shard_domains";
    "workers_per_member"; "depth"; "absint"; "overlap"; "dup"; "seed";
    "config_fingerprint";
  ]

let string_of_value (j : Jsonlite.t) =
  match j with
  | Str s -> s
  | Num f -> if Float.is_integer f then string_of_int (int_of_float f) else Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Null -> "null"
  | Arr l -> String.concat "+" (List.filter_map Jsonlite.to_string l)
  | Obj _ -> "<obj>"

let row_key ~array_name fields =
  let parts =
    List.filter_map
      (fun f ->
        match List.assoc_opt f fields with
        | Some v -> Some (f ^ "=" ^ string_of_value v)
        | None -> None)
      identity_fields
  in
  array_name ^ "[" ^ String.concat "," parts ^ "]"

(* display label: like the key but without the fingerprint noise *)
let row_label ~array_name fields =
  let parts =
    List.filter_map
      (fun f ->
        if f = "config_fingerprint" then None
        else
          match List.assoc_opt f fields with
          | Some v -> Some (f ^ "=" ^ string_of_value v)
          | None -> None)
      identity_fields
  in
  match parts with
  | [] -> array_name
  | _ -> array_name ^ " " ^ String.concat " " parts

let ends_with suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let metric_direction name =
  if ends_with "_min_ms" name || ends_with "_mean_ms" name || ends_with "_stddev_ms" name
  then None
  else if ends_with "analyses_per_sec" name then Some Higher_better
  else if ends_with "_ms" name || ends_with "_s" name then Some Lower_better
  else None

(* value in milliseconds, for the noise floor *)
let in_ms name v = if ends_with "_ms" name then v else v *. 1000.0

let noise_floor_ms = 0.5

let rows_of_file (j : Jsonlite.t) =
  match j with
  | Obj top ->
    List.concat_map
      (fun (name, v) ->
        match v with
        | Jsonlite.Arr elems ->
          List.filter_map
            (fun e ->
              match e with Jsonlite.Obj fields -> Some (name, fields) | _ -> None)
            elems
        | _ -> [])
      top
  | _ -> []

let meta_field j name =
  Option.bind (Jsonlite.member "meta" j) (fun m ->
      Option.bind (Jsonlite.member name m) Jsonlite.to_string)

let diff ?(threshold = 0.10) ~old_text ~new_text () =
  match (Jsonlite.parse old_text, Jsonlite.parse new_text) with
  | Error e, _ -> Error ("old file: " ^ e)
  | _, Error e -> Error ("new file: " ^ e)
  | Ok jold, Ok jnew ->
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    let host_old = meta_field jold "hostname" in
    let host_new = meta_field jnew "hostname" in
    let host_match =
      match (host_old, host_new) with
      | Some a, Some b when a = b -> true
      | None, None ->
        note "neither file records a hostname; treating as different hosts";
        false
      | Some a, Some b ->
        note "hostname mismatch: %s vs %s" a b;
        false
      | _ ->
        note "hostname present in only one file";
        false
    in
    (match (meta_field jold "config_fingerprint", meta_field jnew "config_fingerprint") with
    | Some a, Some b when a <> b ->
      note "semantic-config fingerprint differs (%s vs %s): rows will not match" a b
    | _ -> ());
    let old_rows = rows_of_file jold and new_rows = rows_of_file jnew in
    let old_tbl = Hashtbl.create 32 in
    List.iter
      (fun (name, fields) -> Hashtbl.replace old_tbl (row_key ~array_name:name fields) fields)
      old_rows;
    let matched = ref 0 and new_only = ref 0 in
    let deltas = ref [] in
    List.iter
      (fun (name, nfields) ->
        let key = row_key ~array_name:name nfields in
        match Hashtbl.find_opt old_tbl key with
        | None -> incr new_only
        | Some ofields ->
          Hashtbl.remove old_tbl key;
          incr matched;
          let label = row_label ~array_name:name nfields in
          List.iter
            (fun (mname, nval) ->
              match (metric_direction mname, Jsonlite.to_float nval) with
              | Some dir, Some nv -> (
                match Option.bind (List.assoc_opt mname ofields) Jsonlite.to_float with
                | Some ov
                  when ov > 0.0
                       && Float.max (in_ms mname ov) (in_ms mname nv) >= noise_floor_ms ->
                  let change = (nv -. ov) /. ov in
                  let regression =
                    match dir with
                    | Lower_better -> change > threshold
                    | Higher_better -> change < -.threshold
                  in
                  let improvement =
                    match dir with
                    | Lower_better -> change < -.threshold
                    | Higher_better -> change > threshold
                  in
                  if regression || improvement then
                    deltas :=
                      {
                        d_row = label;
                        d_metric = mname;
                        d_old = ov;
                        d_new = nv;
                        d_change_pct = change *. 100.0;
                        d_regression = regression;
                      }
                      :: !deltas
                | _ -> ())
              | _ -> ())
            nfields)
      new_rows;
    let old_only = Hashtbl.length old_tbl in
    if !matched = 0 then note "no rows matched between the two files";
    Ok
      {
        v_threshold = threshold;
        v_host_match = host_match;
        v_rows_matched = !matched;
        v_rows_old_only = old_only;
        v_rows_new_only = !new_only;
        v_deltas = List.rev !deltas;
        v_notes = List.rev !notes;
      }

let regressions v = List.filter (fun d -> d.d_regression) v.v_deltas

let print_report oc v =
  Printf.fprintf oc "bench diff: %d row(s) matched, %d old-only, %d new-only, threshold %.0f%%\n"
    v.v_rows_matched v.v_rows_old_only v.v_rows_new_only (v.v_threshold *. 100.0);
  List.iter (fun n -> Printf.fprintf oc "note: %s\n" n) v.v_notes;
  let regs = regressions v in
  let imps = List.filter (fun d -> not d.d_regression) v.v_deltas in
  if v.v_deltas = [] then
    Printf.fprintf oc "no metric moved by more than %.0f%%\n" (v.v_threshold *. 100.0)
  else begin
    let print_delta tag d =
      Printf.fprintf oc "%-10s %-60s %-28s %12.3f -> %12.3f  (%+.1f%%)\n" tag d.d_row
        d.d_metric d.d_old d.d_new d.d_change_pct
    in
    List.iter (print_delta "REGRESSED") regs;
    List.iter (print_delta "improved") imps
  end;
  if regs <> [] && not v.v_host_match then
    Printf.fprintf oc
      "note: hosts differ — regressions reported above are non-blocking\n"

let gate v = if regressions v <> [] && v.v_host_match then 1 else 0
