(** Perf-regression comparison over self-describing [BENCH_*.json]
    files ([bench diff OLD NEW] in the bench harness, and the CI perf
    gates).

    Rows from every top-level array of objects are matched by an
    identity key (array name + discriminating fields, including the
    semantic-config fingerprint).  Only time-like metrics are judged —
    [*_ms]/[*_s] lower-better (excluding the [_min]/[_mean]/[_stddev]
    noise companions), [*analyses_per_sec] higher-better — and only
    when at least one side is ≥ 0.5 ms, so sub-noise rows cannot gate.

    Benchmark numbers only transfer between identical hosts: when the
    [meta.hostname] fields are missing or differ, regressions are
    reported but {!gate} stays 0 (non-blocking warn). *)

type delta = {
  d_row : string;  (** human-readable row label *)
  d_metric : string;
  d_old : float;
  d_new : float;
  d_change_pct : float;  (** signed; positive = value went up *)
  d_regression : bool;  (** false = improvement past threshold *)
}

type verdict = {
  v_threshold : float;  (** fraction, e.g. [0.10] *)
  v_host_match : bool;
  v_rows_matched : int;
  v_rows_old_only : int;
  v_rows_new_only : int;
  v_deltas : delta list;  (** changes past threshold, file order *)
  v_notes : string list;
}

val diff :
  ?threshold:float -> old_text:string -> new_text:string -> unit ->
  (verdict, string) result
(** compare two bench JSON documents (contents, not paths);
    [threshold] defaults to [0.10] (10 %).  [Error] only on malformed
    JSON. *)

val regressions : verdict -> delta list

val print_report : out_channel -> verdict -> unit
(** regression/improvement table plus notes *)

val gate : verdict -> int
(** process exit code: [1] iff there is at least one regression {e and}
    the hosts match, else [0] *)
