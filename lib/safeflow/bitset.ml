(** Growable packed bitsets (see the interface for the contract).

    Layout: 32 bits per [int] word.  OCaml ints are 63-bit on 64-bit
    hosts, but 32 bits per word keeps the shift/mask arithmetic identical
    across word sizes and leaves the sign bit untouched, so [lsr]/[lsl]
    never wrap.  [set] grows on demand by doubling; [get] out of range is
    [false], mirroring a hashtable-membership reading of the set. *)

type t = { mutable words : int array }

let bits_per_word = 32

let words_for nbits = (max nbits 1 + (bits_per_word - 1)) / bits_per_word

let create nbits = { words = Array.make (words_for nbits) 0 }

let words t = Array.length t.words

let capacity t = Array.length t.words * bits_per_word

let ensure t nbits =
  let need = words_for nbits in
  let cap = Array.length t.words in
  if need > cap then begin
    let w = Array.make (max need (2 * cap)) 0 in
    Array.blit t.words 0 w 0 cap;
    t.words <- w
  end

let get t i =
  if i < 0 then invalid_arg "Bitset.get";
  let w = i / bits_per_word in
  w < Array.length t.words
  && (Array.unsafe_get t.words w lsr (i land (bits_per_word - 1))) land 1 = 1

let set t i =
  if i < 0 then invalid_arg "Bitset.set";
  ensure t (i + 1);
  let w = i / bits_per_word in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i land (bits_per_word - 1))))

let clear t i =
  if i < 0 then invalid_arg "Bitset.clear";
  let w = i / bits_per_word in
  if w < Array.length t.words then
    Array.unsafe_set t.words w
      (Array.unsafe_get t.words w land lnot (1 lsl (i land (bits_per_word - 1))))

let count t =
  let n = ref 0 in
  Array.iter
    (fun w ->
      let w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr n
      done)
    t.words;
  !n
