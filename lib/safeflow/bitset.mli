(** Growable packed bitsets over dense non-negative ids.

    The sparse phase-3 engine ({!Vfgraph}) interns taint entities to
    dense integer ids and keeps per-entity data/control taint membership
    here: one bit per entity instead of a hashtable entry, so the hot
    propagation loop tests and sets membership with a shift and a mask.
    32 bits are packed per [int] word. *)

type t

val create : int -> t
(** [create n] is an empty set with capacity for ids [0 .. n-1]
    preallocated (the set still grows past [n] on demand). *)

val get : t -> int -> bool
(** membership; ids beyond the current capacity are absent.
    @raise Invalid_argument on a negative id *)

val set : t -> int -> unit
(** add an id, growing the backing array (by doubling) when needed *)

val clear : t -> int -> unit
(** remove an id; no-op beyond current capacity *)

val ensure : t -> int -> unit
(** [ensure t n] pre-grows the capacity to at least [n] bits, so a
    subsequent in-range {!set} performs no bounds work *)

val count : t -> int
(** number of set bits *)

val words : t -> int
(** allocated backing words (32 bits each) — telemetry *)

val capacity : t -> int
(** current capacity in bits *)
