(** Content-addressed analysis cache (see the interface). *)

(* Version 2: Report.dependency gained the structured [d_path] witness
   field, changing the marshalled layout of the "phase3" namespace.
   Version 3: the "phase2"/"phase2fn" namespaces store a result record
   (violations + range-discharge infos + bounds statistics) instead of a
   bare violation list, and the new "absint" namespace holds per-function
   range summaries.
   Version 4: the "pair" namespace stores the flattened edge-block
   layout (packed int entity descriptors and op words plus local value
   tables) instead of the symbolic op-variant arrays. *)
let format_version = 4

let magic = "SAFEFLOW-CACHE"

type ns_stats = { hits : int; misses : int; stale : int; corrupt : int }

type counters = {
  c_hits : int ref;
  c_misses : int ref;
  c_stale : int ref;
  c_corrupt : int ref;
}

type t = {
  dir : string option;
  verbose : bool;  (** one-line stderr note per discarded disk entry *)
  tbl : (string, Obj.t) Hashtbl.t;  (** "ns:key" ↦ value *)
  counters : (string, counters) Hashtbl.t;  (** per-namespace outcomes *)
  lock : Mutex.t;
}

(* Telemetry counter inventory.  The namespaces are known statically, so
   registering them here makes every "cache.<ns>.<outcome>" key present
   (as 0) in any stats snapshot — the CI schema check relies on that.
   Unknown namespaces still register lazily inside [count]. *)
let tele_counter ns outcome = Telemetry.counter (Printf.sprintf "cache.%s.%s" ns outcome)

let outcomes = [ "hits"; "misses"; "stale"; "corrupt" ]

let () =
  List.iter
    (fun ns -> List.iter (fun o -> ignore (tele_counter ns o)) outcomes)
    [ "prepared"; "phase1"; "phase2"; "phase2fn"; "pointsto"; "phase3"; "pair" ]

let create ?dir ?(verbose = false) () =
  let dir =
    match dir with
    | None -> None
    | Some d ->
      (try
         if not (Sys.file_exists d) then Sys.mkdir d 0o755;
         if Sys.is_directory d then Some d else None
       with Sys_error _ -> None)
  in
  {
    dir;
    verbose;
    tbl = Hashtbl.create 256;
    counters = Hashtbl.create 8;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Disk-read outcomes.  [Stale] is a well-formed entry from another cache
   format or compiler version; [Corrupt] is a file that failed to
   unmarshal at all (truncated write, bit rot).  Both are recovered from
   identically — drop and recompute — but are counted separately. *)
type 'a outcome = Hit of 'a | Absent | Stale | Corrupt

let count t ns (o : _ outcome) =
  let c =
    match Hashtbl.find_opt t.counters ns with
    | Some c -> c
    | None ->
      let c = { c_hits = ref 0; c_misses = ref 0; c_stale = ref 0; c_corrupt = ref 0 } in
      Hashtbl.replace t.counters ns c;
      c
  in
  (* [misses] keeps its historical meaning of "every lookup that was not
     a hit", so the (hits, misses) view is unchanged by the split *)
  (match o with
  | Hit _ -> incr c.c_hits
  | Absent -> incr c.c_misses
  | Stale ->
    incr c.c_misses;
    incr c.c_stale
  | Corrupt ->
    incr c.c_misses;
    incr c.c_corrupt);
  if Telemetry.enabled () then begin
    (match o with
    | Hit _ -> Telemetry.incr (tele_counter ns "hits")
    | Absent | Stale | Corrupt -> Telemetry.incr (tele_counter ns "misses"));
    match o with
    | Stale -> Telemetry.incr (tele_counter ns "stale")
    | Corrupt -> Telemetry.incr (tele_counter ns "corrupt")
    | Hit _ | Absent -> ()
  end

(* Keys are hex digests and namespaces are short alphanumeric tags, so
   "ns-key.bin" is a safe file name on every platform. *)
let path_of dir ns key = Filename.concat dir (ns ^ "-" ^ key ^ ".bin")

type header = {
  h_magic : string;
  h_version : int;
  h_ocaml : string;
  h_ns : string;
  h_key : string;
}

let read_disk t ns key : Obj.t outcome =
  match t.dir with
  | None -> Absent
  | Some dir ->
    let path = path_of dir ns key in
    if not (Sys.file_exists path) then Absent
    else begin
      let result =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let (h : header), (v : Obj.t) = Marshal.from_channel ic in
              if
                String.equal h.h_magic magic
                && h.h_version = format_version
                && String.equal h.h_ocaml Sys.ocaml_version
                && String.equal h.h_ns ns && String.equal h.h_key key
              then Hit v
              else Stale)
        with _ -> Corrupt
      in
      (match result with
      | Hit _ | Absent -> ()
      | Stale | Corrupt ->
        (* drop the file so it is rewritten on the next store *)
        if t.verbose then
          Printf.eprintf "safeflow: cache: discarding %s entry %s\n%!"
            (if result = Stale then "stale" else "corrupt")
            (Filename.basename path);
        (try Sys.remove path with Sys_error _ -> ()));
      result
    end

let write_disk t ns key (v : Obj.t) =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = path_of dir ns key in
    let tmp = path ^ ".tmp" in
    (try
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           let h =
             {
               h_magic = magic;
               h_version = format_version;
               h_ocaml = Sys.ocaml_version;
               h_ns = ns;
               h_key = key;
             }
           in
           Marshal.to_channel oc (h, v) []);
       Sys.rename tmp path
     with _ -> (try Sys.remove tmp with Sys_error _ -> ()))

let find t ~ns ~key : 'a option =
  Telemetry.span "cache.find" ~args:[ ("ns", ns) ] (fun () ->
      locked t (fun () ->
          let k = ns ^ ":" ^ key in
          match Hashtbl.find_opt t.tbl k with
          | Some v ->
            count t ns (Hit v);
            Some (Obj.obj v)
          | None -> (
            let o = read_disk t ns key in
            count t ns o;
            match o with
            | Hit v ->
              Hashtbl.replace t.tbl k v;
              Some (Obj.obj v)
            | Absent | Stale | Corrupt -> None)))

let store t ~ns ~key v =
  Telemetry.span "cache.store" ~args:[ ("ns", ns) ] (fun () ->
      locked t (fun () ->
          let v = Obj.repr v in
          Hashtbl.replace t.tbl (ns ^ ":" ^ key) v;
          write_disk t ns key v))

let stats t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun ns c acc -> (ns, (!(c.c_hits), !(c.c_misses))) :: acc)
           t.counters []))

let detailed_stats t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun ns c acc ->
             ( ns,
               {
                 hits = !(c.c_hits);
                 misses = !(c.c_misses);
                 stale = !(c.c_stale);
                 corrupt = !(c.c_corrupt);
               } )
             :: acc)
           t.counters []))

let reset_stats t = locked t (fun () -> Hashtbl.reset t.counters)
