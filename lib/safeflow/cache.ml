(** Content-addressed analysis cache (see the interface). *)

let format_version = 1

let magic = "SAFEFLOW-CACHE"

type t = {
  dir : string option;
  tbl : (string, Obj.t) Hashtbl.t;  (** "ns:key" ↦ value *)
  counters : (string, int ref * int ref) Hashtbl.t;  (** ns ↦ hits, misses *)
  lock : Mutex.t;
}

let create ?dir () =
  let dir =
    match dir with
    | None -> None
    | Some d ->
      (try
         if not (Sys.file_exists d) then Sys.mkdir d 0o755;
         if Sys.is_directory d then Some d else None
       with Sys_error _ -> None)
  in
  { dir; tbl = Hashtbl.create 256; counters = Hashtbl.create 8; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count t ns hit =
  let h, m =
    match Hashtbl.find_opt t.counters ns with
    | Some c -> c
    | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace t.counters ns c;
      c
  in
  incr (if hit then h else m)

(* Keys are hex digests and namespaces are short alphanumeric tags, so
   "ns-key.bin" is a safe file name on every platform. *)
let path_of dir ns key = Filename.concat dir (ns ^ "-" ^ key ^ ".bin")

type header = {
  h_magic : string;
  h_version : int;
  h_ocaml : string;
  h_ns : string;
  h_key : string;
}

let read_disk t ns key : Obj.t option =
  match t.dir with
  | None -> None
  | Some dir ->
    let path = path_of dir ns key in
    let result =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let (h : header), (v : Obj.t) = Marshal.from_channel ic in
            if
              String.equal h.h_magic magic
              && h.h_version = format_version
              && String.equal h.h_ocaml Sys.ocaml_version
              && String.equal h.h_ns ns && String.equal h.h_key key
            then Some v
            else None)
      with _ -> None
    in
    (* corrupt or stale: drop the file so it is rewritten on store *)
    (if result = None && Sys.file_exists path then try Sys.remove path with Sys_error _ -> ());
    result

let write_disk t ns key (v : Obj.t) =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = path_of dir ns key in
    let tmp = path ^ ".tmp" in
    (try
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           let h =
             {
               h_magic = magic;
               h_version = format_version;
               h_ocaml = Sys.ocaml_version;
               h_ns = ns;
               h_key = key;
             }
           in
           Marshal.to_channel oc (h, v) []);
       Sys.rename tmp path
     with _ -> (try Sys.remove tmp with Sys_error _ -> ()))

let find t ~ns ~key : 'a option =
  locked t (fun () ->
      let k = ns ^ ":" ^ key in
      match Hashtbl.find_opt t.tbl k with
      | Some v ->
        count t ns true;
        Some (Obj.obj v)
      | None -> (
        match read_disk t ns key with
        | Some v ->
          Hashtbl.replace t.tbl k v;
          count t ns true;
          Some (Obj.obj v)
        | None ->
          count t ns false;
          None))

let store t ~ns ~key v =
  locked t (fun () ->
      let v = Obj.repr v in
      Hashtbl.replace t.tbl (ns ^ ":" ^ key) v;
      write_disk t ns key v)

let stats t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold (fun ns (h, m) acc -> (ns, (!h, !m)) :: acc) t.counters []))

let reset_stats t = locked t (fun () -> Hashtbl.reset t.counters)
