(** Content-addressed analysis cache (see the interface). *)

(* Version 2: Report.dependency gained the structured [d_path] witness
   field, changing the marshalled layout of the "phase3" namespace.
   Version 3: the "phase2"/"phase2fn" namespaces store a result record
   (violations + range-discharge infos + bounds statistics) instead of a
   bare violation list, and the new "absint" namespace holds per-function
   range summaries.
   Version 4: the "pair" namespace stores the flattened edge-block
   layout (packed int entity descriptors and op words plus local value
   tables) instead of the symbolic op-variant arrays.
   Version 5: every entry header records the origin system that wrote it
   (fleet-mode cross-system dedupe accounting), and on-disk entries live
   under a generation-stamped subdirectory so concurrent processes built
   against different cache formats or compiler versions never fight over
   the same files.
   Version 6: the "phase2"/"phase2fn" results carry the obligation
   ledger (one audit entry per A1/A2 obligation and P1-P3 site), so a
   warm run reconciles discharge counts exactly like a cold one.
   Version 7: entry headers record a content digest of the marshalled
   payload, written and verified separately from the header — a payload
   swapped or damaged after the header was written is detected as
   corrupt instead of unmarshalling into the wrong value; and the
   "absint" func_summary layout gained the raw (pre-promotion) return
   join that certificate emission records. *)
let format_version = 7

let magic = "SAFEFLOW-CACHE"

(* The generation stamp names everything that decides whether two
   processes can share marshalled entries at all: the cache format and
   the compiler that produced the [Marshal] encoding.  Processes with
   different stamps write to disjoint subdirectories, so a version skew
   across a fleet degrades to double-compute instead of stale-entry
   churn (two generations repeatedly deleting each other's files). *)
let generation = Printf.sprintf "v%d-ocaml%s" format_version Sys.ocaml_version

let generation_dir_name =
  "gen-" ^ String.sub (Digest.to_hex (Digest.string generation)) 0 12

type ns_stats = { hits : int; misses : int; stale : int; corrupt : int; cross : int }

type counters = {
  c_hits : int ref;
  c_misses : int ref;
  c_stale : int ref;
  c_corrupt : int ref;
  c_cross : int ref;
}

type entry = {
  e_v : Obj.t;
  e_origin : string;  (** system that first computed it; "" when unknown *)
}

type t = {
  dir : string option;  (** generation subdirectory, entries live here *)
  verbose : bool;  (** one-line stderr note per discarded disk entry *)
  tbl : (string, entry) Hashtbl.t;  (** "ns:key" ↦ entry *)
  counters : (string, counters) Hashtbl.t;  (** per-namespace outcomes *)
  lock : Mutex.t;
  on_recovery : (kind:string -> ns:string -> key:string -> unit) option;
      (** observer for stale/corrupt disk discards (fleet event stream) *)
}

(* Telemetry counter inventory.  The namespaces are known statically, so
   registering them here makes every "cache.<ns>.<outcome>" key present
   (as 0) in any stats snapshot — the CI schema check relies on that.
   Unknown namespaces still register lazily inside [count]. *)
let tele_counter ns outcome = Telemetry.counter (Printf.sprintf "cache.%s.%s" ns outcome)

let outcomes = [ "hits"; "misses"; "stale"; "corrupt" ]

let c_cross_hits = Telemetry.counter "cache.cross_hits"

let () =
  List.iter
    (fun ns -> List.iter (fun o -> ignore (tele_counter ns o)) outcomes)
    [ "prepared"; "phase1"; "phase2"; "phase2fn"; "pointsto"; "phase3"; "pair"; "absint" ]

(* -- origin tracking ------------------------------------------------------------

   The current origin is the identity of the system whose analysis is
   running on this domain ("" = unknown).  A hit on an entry recorded
   under a different origin is a cross-system hit: work another system's
   analysis already paid for.  Origins are domain-local so the
   multi-system driver can analyze several systems concurrently over one
   shared cache and still attribute hits correctly. *)

let origin_dls : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")

let current_origin () = Domain.DLS.get origin_dls

let with_origin origin f =
  let prev = Domain.DLS.get origin_dls in
  Domain.DLS.set origin_dls origin;
  Fun.protect ~finally:(fun () -> Domain.DLS.set origin_dls prev) f

let create ?dir ?(verbose = false) ?on_recovery () =
  let dir =
    match dir with
    | None -> None
    | Some d ->
      (try
         if not (Sys.file_exists d) then Sys.mkdir d 0o755;
         if not (Sys.is_directory d) then None
         else begin
           (* entries live under the generation subdirectory; a sibling
              generation left by another build is simply ignored *)
           let gdir = Filename.concat d generation_dir_name in
           if not (Sys.file_exists gdir) then Sys.mkdir gdir 0o755;
           (* human-readable stamp; best-effort and write-once *)
           let stamp = Filename.concat gdir "GENERATION" in
           if not (Sys.file_exists stamp) then begin
             let tmp =
               Printf.sprintf "%s.%d.tmp" stamp (Unix.getpid ())
             in
             let oc = open_out tmp in
             output_string oc (generation ^ "\n");
             close_out oc;
             (try Sys.rename tmp stamp
              with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ()))
           end;
           Some gdir
         end
       with Sys_error _ | Unix.Unix_error _ -> None)
  in
  {
    dir;
    verbose;
    tbl = Hashtbl.create 256;
    counters = Hashtbl.create 8;
    lock = Mutex.create ();
    on_recovery;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Disk-read outcomes.  [Stale] is a well-formed entry from another cache
   format or compiler version; [Corrupt] is a file that failed to
   unmarshal at all (truncated write, bit rot).  Both are recovered from
   identically — drop and recompute — but are counted separately. *)
type 'a outcome = Hit of 'a | Absent | Stale | Corrupt

let count t ns ~cross (o : _ outcome) =
  let c =
    match Hashtbl.find_opt t.counters ns with
    | Some c -> c
    | None ->
      let c =
        { c_hits = ref 0; c_misses = ref 0; c_stale = ref 0; c_corrupt = ref 0;
          c_cross = ref 0 }
      in
      Hashtbl.replace t.counters ns c;
      c
  in
  (* [misses] keeps its historical meaning of "every lookup that was not
     a hit", so the (hits, misses) view is unchanged by the split *)
  (match o with
  | Hit _ ->
    incr c.c_hits;
    if cross then incr c.c_cross
  | Absent -> incr c.c_misses
  | Stale ->
    incr c.c_misses;
    incr c.c_stale
  | Corrupt ->
    incr c.c_misses;
    incr c.c_corrupt);
  if Telemetry.enabled () then begin
    (match o with
    | Hit _ ->
      Telemetry.incr (tele_counter ns "hits");
      if cross then Telemetry.incr c_cross_hits
    | Absent | Stale | Corrupt -> Telemetry.incr (tele_counter ns "misses"));
    match o with
    | Stale -> Telemetry.incr (tele_counter ns "stale")
    | Corrupt -> Telemetry.incr (tele_counter ns "corrupt")
    | Hit _ | Absent -> ()
  end

(* Keys are hex digests and namespaces are short alphanumeric tags, so
   "ns-key.bin" is a safe file name on every platform. *)
let path_of dir ns key = Filename.concat dir (ns ^ "-" ^ key ^ ".bin")

type header = {
  h_magic : string;
  h_version : int;
  h_ocaml : string;
  h_ns : string;
  h_key : string;
  h_origin : string;
  h_cert : string;
      (** MD5 (hex) of the marshalled payload bytes that follow the
          header.  The payload is marshalled separately and verified
          against this digest before unmarshalling, so a payload that
          was swapped between entries or damaged after the header was
          written is detected as corrupt instead of decoding into the
          wrong value. *)
}

let h_disk_read = Telemetry.histogram "cache.disk_read"

let read_disk t ns key : entry outcome =
  match t.dir with
  | None -> Absent
  | Some dir ->
    let path = path_of dir ns key in
    if not (Sys.file_exists path) then Absent
    else begin
      let result =
        Telemetry.time_hist h_disk_read @@ fun () ->
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let (h : header) = Marshal.from_channel ic in
              if
                not
                  (String.equal h.h_magic magic
                  && h.h_version = format_version
                  && String.equal h.h_ocaml Sys.ocaml_version
                  && String.equal h.h_ns ns && String.equal h.h_key key)
              then Stale
              else begin
                (* the payload travels as separately-marshalled bytes;
                   digest-check them against the header before trusting
                   [Marshal] with them *)
                let pos = pos_in ic in
                let len = in_channel_length ic - pos in
                let payload = really_input_string ic len in
                if not (String.equal (Digest.to_hex (Digest.string payload)) h.h_cert)
                then Corrupt
                else
                  Hit { e_v = Marshal.from_string payload 0; e_origin = h.h_origin }
              end)
        with _ -> Corrupt
      in
      (match result with
      | Hit _ | Absent -> ()
      | Stale | Corrupt ->
        (* drop the file so it is rewritten on the next store; unlink is
           atomic, so a concurrent reader either sees the whole entry or
           none of it *)
        let kind = if result = Stale then "stale" else "corrupt" in
        if t.verbose then
          Printf.eprintf "%ssafeflow: cache: discarding %s entry %s\n%!"
            (Logctx.get ()) kind (Filename.basename path);
        (match t.on_recovery with
        | Some f -> ( try f ~kind ~ns ~key with _ -> ())
        | None -> ());
        (try Sys.remove path with Sys_error _ -> ()));
      result
    end

(* Writers never touch the destination path directly: each write goes to
   a temp name unique across processes AND within this process (pid +
   atomic counter — two domains, or two forked workers of a fleet run,
   storing the same key concurrently must not interleave into one temp
   file), then rename(2) publishes it atomically.  Readers therefore
   observe either no file or a complete entry, never a torn one. *)
let tmp_seq = Atomic.make 0

let write_disk t ns key (e : entry) =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = path_of dir ns key in
    (* entries are content-addressed: same key ⇒ same value, so if some
       process already published this entry there is nothing to add and
       rewriting it would only churn the directory under concurrent
       readers *)
    if not (Sys.file_exists path) then begin
      let tmp =
        Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
          (Atomic.fetch_and_add tmp_seq 1)
      in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            let payload = Marshal.to_string e.e_v [] in
            let h =
              {
                h_magic = magic;
                h_version = format_version;
                h_ocaml = Sys.ocaml_version;
                h_ns = ns;
                h_key = key;
                h_origin = e.e_origin;
                h_cert = Digest.to_hex (Digest.string payload);
              }
            in
            Marshal.to_channel oc h [];
            output_string oc payload);
        Sys.rename tmp path
      with _ -> (try Sys.remove tmp with Sys_error _ -> ())
    end

let find t ~ns ~key : 'a option =
  Telemetry.span "cache.find" ~args:[ ("ns", ns) ] (fun () ->
      let origin = current_origin () in
      locked t (fun () ->
          let is_cross e_origin =
            (not (String.equal origin ""))
            && (not (String.equal e_origin ""))
            && not (String.equal e_origin origin)
          in
          let k = ns ^ ":" ^ key in
          match Hashtbl.find_opt t.tbl k with
          | Some e ->
            count t ns ~cross:(is_cross e.e_origin) (Hit ());
            Some (Obj.obj e.e_v)
          | None -> (
            let o = read_disk t ns key in
            count t ns
              ~cross:(match o with Hit e -> is_cross e.e_origin | _ -> false)
              (match o with Hit _ -> Hit () | Absent -> Absent | Stale -> Stale | Corrupt -> Corrupt);
            match o with
            | Hit e ->
              Hashtbl.replace t.tbl k e;
              Some (Obj.obj e.e_v)
            | Absent | Stale | Corrupt -> None)))

let store t ~ns ~key v =
  Telemetry.span "cache.store" ~args:[ ("ns", ns) ] (fun () ->
      let e = { e_v = Obj.repr v; e_origin = current_origin () } in
      locked t (fun () ->
          Hashtbl.replace t.tbl (ns ^ ":" ^ key) e;
          write_disk t ns key e))

let stats t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun ns c acc -> (ns, (!(c.c_hits), !(c.c_misses))) :: acc)
           t.counters []))

let detailed_stats t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun ns c acc ->
             ( ns,
               {
                 hits = !(c.c_hits);
                 misses = !(c.c_misses);
                 stale = !(c.c_stale);
                 corrupt = !(c.c_corrupt);
                 cross = !(c.c_cross);
               } )
             :: acc)
           t.counters []))

let cross_hits t =
  locked t (fun () ->
      Hashtbl.fold (fun _ c acc -> acc + !(c.c_cross)) t.counters 0)

let reset_stats t = locked t (fun () -> Hashtbl.reset t.counters)
