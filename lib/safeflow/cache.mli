(** Content-addressed analysis cache: an in-memory store with an
    optional on-disk tier shared safely by concurrent readers {e and}
    writers — the domains of one process and the forked workers of a
    fleet run alike.

    Entries are keyed by [(namespace, digest)] where the digest is
    computed by {!Digest_ir} over everything the cached computation
    reads; a stale input therefore changes the key and the entry is
    simply never found again — there is no explicit invalidation.

    The store is type-unsafe by construction (one table holds values of
    many types); safety is by the namespace discipline: a namespace is
    only ever read and written with one type.  All in-memory operations
    are mutex-guarded, so one cache may be shared by the domains of
    {!Driver.analyze_files_par} and the pair-build pool of {!Vfgraph}.

    {b Disk-tier concurrency protocol.}  On-disk entries (one file per
    entry) live under a {e generation-stamped} subdirectory of the cache
    root named from {!format_version} and the compiler version, so
    processes with incompatible marshalled layouts never touch the same
    files.  Within a generation, writers marshal to a temp file whose
    name is unique per process {e and} per write (pid + atomic counter)
    and publish it with an atomic [rename(2)]; a key that already exists
    on disk is left alone (same key ⇒ same value).  Readers validate
    lock-free: every entry carries a versioned header recording the
    cache format, compiler version and entry key, and a file that is
    absent, truncated, corrupt, or written by a different
    format/compiler is discarded and the result recomputed.  Discards
    are never silent to the observability layer: {e stale} (header
    mismatch) and {e corrupt} (unmarshal failure) recoveries are counted
    separately — in {!detailed_stats} and in the
    ["cache.<ns>.stale"/".corrupt"] telemetry counters — and [~verbose]
    adds a one-line stderr note per discarded file.

    {b Cross-system dedupe accounting.}  Per-function entries are keyed
    by content digest, so identical functions appearing in many systems
    are computed once fleet-wide.  Each entry records the {e origin}
    system whose analysis stored it (see {!with_origin}); a hit whose
    origin differs from the current one is a {e cross hit} — work some
    other system already paid for — counted in {!detailed_stats},
    {!cross_hits} and the ["cache.cross_hits"] telemetry counter. *)

type t

val create :
  ?dir:string ->
  ?verbose:bool ->
  ?on_recovery:(kind:string -> ns:string -> key:string -> unit) ->
  unit ->
  t
(** [create ()] is memory-only; [create ~dir ()] adds a disk tier rooted
    at [dir] (created if missing; creation failure degrades silently to
    memory-only), with entries under [dir]'s generation subdirectory.
    [~verbose] (default false) reports each discarded stale/corrupt disk
    entry on stderr; it never affects results.  [~on_recovery] is called
    once per discarded disk entry with [kind] (["stale"] or ["corrupt"])
    and the entry's namespace and key — fleet workers use it to emit
    [cache.recovered] events; exceptions it raises are swallowed, and it
    must not call back into this cache (it runs under the cache lock). *)

val find : t -> ns:string -> key:string -> 'a option
(** memory first, then disk (populating memory on a disk hit).  The
    caller must request the type that [store] put in [ns]. *)

val store : t -> ns:string -> key:string -> 'a -> unit
(** the value must be pure data (no closures); disk writes go to a
    pid+sequence-unique temp file published by atomic rename (write
    errors are ignored), and a key already present on disk is not
    rewritten *)

val stats : t -> (string * (int * int)) list
(** per-namespace (hits, misses) counters, sorted by namespace — kept
    here rather than in {!Report.t.stats} so warm and cold reports stay
    bit-identical.  [misses] counts every lookup that was not a hit,
    including stale/corrupt recoveries. *)

type ns_stats = {
  hits : int;
  misses : int;
  stale : int;
  corrupt : int;
  cross : int;  (** hits on entries another system's analysis stored *)
}
(** [stale + corrupt <= misses] (both are recovered misses) and
    [cross <= hits] *)

val detailed_stats : t -> (string * ns_stats) list
(** like {!stats} but splitting out stale/corrupt disk recoveries and
    cross-system hits *)

val cross_hits : t -> int
(** total cross-system hits over all namespaces *)

val reset_stats : t -> unit

(** {1 Origin tracking} *)

val with_origin : string -> (unit -> 'a) -> 'a
(** [with_origin sys f] runs [f] with the current domain's origin set to
    [sys] (the identity of the system being analyzed — the fleet member
    path, or the source label for a plain run).  Stores record the
    origin; hits compare against it.  The previous origin is restored on
    exit.  An empty origin (the default on every domain) disables
    cross-hit attribution for that code. *)

val current_origin : unit -> string
(** this domain's current origin ("" when unset) *)

(** {1 Format identity} *)

val format_version : int

val generation : string
(** the generation stamp: cache format + compiler version.  Processes
    with different stamps share a cache root but never share entries. *)
