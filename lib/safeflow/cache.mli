(** Content-addressed analysis cache: an in-memory store with an
    optional on-disk tier.

    Entries are keyed by [(namespace, digest)] where the digest is
    computed by {!Digest_ir} over everything the cached computation
    reads; a stale input therefore changes the key and the entry is
    simply never found again — there is no explicit invalidation.

    The store is type-unsafe by construction (one table holds values of
    many types); safety is by the namespace discipline: a namespace is
    only ever read and written with one type.  All operations are
    mutex-guarded, so one cache may be shared by the domains of
    {!Driver.analyze_files_par} and the pair-build pool of {!Vfgraph}.

    On-disk entries (one file per entry under the cache directory) are
    marshalled with a versioned header recording the cache format
    version, the OCaml version and the entry key; a file that is absent,
    truncated, corrupt, or written by a different format/compiler
    version is discarded and the result recomputed.  Discards are never
    silent to the observability layer: {e stale} (header mismatch) and
    {e corrupt} (unmarshal failure) recoveries are counted separately —
    in {!detailed_stats} and in the ["cache.<ns>.stale"/".corrupt"]
    telemetry counters — and [~verbose] adds a one-line stderr note per
    discarded file. *)

type t

val create : ?dir:string -> ?verbose:bool -> unit -> t
(** [create ()] is memory-only; [create ~dir ()] adds a disk tier rooted
    at [dir] (created if missing; creation failure degrades silently to
    memory-only).  [~verbose] (default false) reports each discarded
    stale/corrupt disk entry on stderr; it never affects results. *)

val find : t -> ns:string -> key:string -> 'a option
(** memory first, then disk (populating memory on a disk hit).  The
    caller must request the type that [store] put in [ns]. *)

val store : t -> ns:string -> key:string -> 'a -> unit
(** the value must be pure data (no closures); disk writes are atomic
    (temp file + rename) and write errors are ignored *)

val stats : t -> (string * (int * int)) list
(** per-namespace (hits, misses) counters, sorted by namespace — kept
    here rather than in {!Report.t.stats} so warm and cold reports stay
    bit-identical.  [misses] counts every lookup that was not a hit,
    including stale/corrupt recoveries. *)

type ns_stats = { hits : int; misses : int; stale : int; corrupt : int }
(** [stale + corrupt <= misses]: both are recovered misses *)

val detailed_stats : t -> (string * ns_stats) list
(** like {!stats} but splitting out stale/corrupt disk recoveries *)

val reset_stats : t -> unit

val format_version : int
