(* Certificate emission: the analyzer-side counterpart of the [checker]
   library.  Everything here is *recording*, not proving — each
   certificate carries exactly the facts the independent checker needs
   to re-verify a finding or a discharged obligation with local checks
   (hash chains, interval evaluation, core substitution), and the
   emitter uses {!Checker.refutable} as an oracle so it never records an
   Omega core the checker's bounded Fourier–Motzkin refuter cannot
   replay.

   Encodings must match the checker's decoders byte for byte:
   - wide integers (interval bounds, linexpr coefficients/constants)
     travel as JSON strings — values near 2^62 exceed double precision;
   - intervals: [null] is Bot, else [{"lo":str|null,"hi":str|null}]
     with [null] bounds meaning ±∞;
   - constraints: [{"op":"eq"|"geq","terms":[[var,coeff]...],"const":c}]
     meaning op(Σ terms + const, 0), terms in ascending variable order
     (what [Vmap.bindings] yields);
   - witness steps: each step's [link] is {!Checker.step_link} over its
     content and the previous step's link. *)

open Minic
module J = Jsonlite
module Offset = Pointsto.Offset

let schema = Checker.schema
let explain_schema = "safeflow-explain/1"
let md5_hex = Checker.md5_hex

(* ---- JSON encoders ------------------------------------------------------ *)

let num n = J.Num (float_of_int n)
let wide n = J.Str (string_of_int n)

let itv_json (itv : Absint.Itv.t) : J.t =
  match itv with
  | Absint.Itv.Bot -> J.Null
  | Absint.Itv.Iv (lo, hi) ->
    let b = function Absint.Itv.Fin n -> wide n | Absint.Itv.MInf | Absint.Itv.PInf -> J.Null in
    J.Obj [ ("lo", b lo); ("hi", b hi) ]

let lin_fields (e : Omega.Linexpr.t) =
  let terms =
    Omega.Linexpr.Vmap.bindings e.Omega.Linexpr.coeffs
    |> List.filter (fun (_, k) -> k <> 0)
    |> List.map (fun (v, k) -> J.Arr [ J.Str v; wide k ])
  in
  [ ("terms", J.Arr terms); ("const", wide e.Omega.Linexpr.const) ]

let cstr_json (c : Omega.cstr) : J.t =
  match c with
  | Omega.Eq e -> J.Obj (("op", J.Str "eq") :: lin_fields e)
  | Omega.Geq e -> J.Obj (("op", J.Str "geq") :: lin_fields e)

let loc_fields (l : Loc.t) =
  [ ("file", J.Str l.Loc.file); ("line", num l.Loc.line); ("col", num l.Loc.col) ]

let steps_json (steps : Report.path_step list) : J.t =
  let rec go prev acc = function
    | [] -> List.rev acc
    | (s : Report.path_step) :: rest ->
      let link =
        Checker.step_link ~desc:s.Report.p_desc ~why:s.Report.p_why
          ~key:s.Report.p_key ~prev
      in
      let sj =
        J.Obj
          [
            ("desc", J.Str s.Report.p_desc);
            ("why", match s.Report.p_why with None -> J.Null | Some w -> J.Str w);
            ("key", J.Str s.Report.p_key);
            ("parent", match s.Report.p_parent with None -> J.Null | Some p -> J.Str p);
            ("link", J.Str link);
          ]
      in
      go link (sj :: acc) rest
  in
  J.Arr (go "" [] steps)

let restriction_name = function
  | Report.P1 -> "P1"
  | Report.P2 -> "P2"
  | Report.P3 -> "P3"
  | Report.A1 -> "A1"
  | Report.A2 -> "A2"

let dep_kind_name = function Report.Data -> "data" | Report.Control_only -> "control"

(* ---- finding reconstruction (the fingerprint binding check) ------------- *)

exception Bind of string

let bindf fmt = Fmt.kstr (fun m -> raise (Bind m)) fmt

let gfield name j =
  match J.member name j with Some v -> v | None -> bindf "missing field %S" name

let gstr name j =
  match J.to_string (gfield name j) with
  | Some s -> s
  | None -> bindf "non-string field %S" name

let gint name j =
  match J.to_int (gfield name j) with
  | Some n -> n
  | None -> bindf "non-integer field %S" name

let restriction_of_name = function
  | "P1" -> Report.P1
  | "P2" -> Report.P2
  | "P3" -> Report.P3
  | "A1" -> Report.A1
  | "A2" -> Report.A2
  | s -> bindf "unknown restriction %S" s

let dep_kind_of_name = function
  | "data" -> Report.Data
  | "control" -> Report.Control_only
  | s -> bindf "unknown dependency kind %S" s

let loc_of_cert j =
  Loc.make ~file:(gstr "file" j) ~line:(gint "line" j) ~col:(gint "col" j)

(* rebuild the finding a certificate describes; only the fields
   {!Fingerprint.compute} consumes matter, the rest stay empty *)
let finding_of_cert j : Fingerprint.finding =
  match gstr "finding" j with
  | "violation" ->
    Fingerprint.Violation
      {
        Report.v_rule = restriction_of_name (gstr "rule" j);
        v_func = gstr "func" j;
        v_loc = loc_of_cert j;
        v_msg = gstr "msg" j;
      }
  | "warning" ->
    Fingerprint.Warning
      {
        Report.w_func = gstr "func" j;
        w_region = gstr "region" j;
        w_loc = loc_of_cert j;
        w_context = [];
      }
  | "dependency" ->
    Fingerprint.Dependency
      {
        Report.d_kind = dep_kind_of_name (gstr "dep_kind" j);
        d_sink = gstr "sink" j;
        d_func = gstr "func" j;
        d_loc = loc_of_cert j;
        d_trace = [];
        d_path = [];
      }
  | k -> bindf "unknown finding class %S" k

let check_finding_binding (ir : Ssair.Ir.program) : J.t -> (unit, string) result =
  let ctx = Fingerprint.ctx_of_program ir in
  fun cert ->
    match
      let f = finding_of_cert cert in
      let fp = Fingerprint.compute ctx f in
      if fp <> gstr "id" cert then
        bindf "recomputed fingerprint %s does not match the certificate id" fp
    with
    | () -> Ok ()
    | exception Bind m -> Error m

(* ---- finding / witness certificates ------------------------------------- *)

let header ~kind ~id = [ ("schema", J.Str schema); ("kind", J.Str kind); ("id", J.Str id) ]

let violation_cert ~id (v : Report.violation) =
  J.Obj
    (header ~kind:"finding" ~id
    @ [
        ("finding", J.Str "violation");
        ("rule", J.Str (restriction_name v.Report.v_rule));
        ("func", J.Str v.Report.v_func);
      ]
    @ loc_fields v.Report.v_loc
    @ [ ("msg", J.Str v.Report.v_msg) ])

let warning_cert ~id (w : Report.warning) =
  J.Obj
    (header ~kind:"finding" ~id
    @ [
        ("finding", J.Str "warning");
        ("region", J.Str w.Report.w_region);
        ("func", J.Str w.Report.w_func);
      ]
    @ loc_fields w.Report.w_loc
    @ [ ("context", J.Arr (List.map (fun c -> J.Str c) w.Report.w_context)) ])

(* a dependency with an empty recorded path still gets a one-step chain
   anchored at its sink, so the witness chain is never vacuous *)
let dep_steps (d : Report.dependency) =
  match d.Report.d_path with
  | [] ->
    [ { Report.p_desc = d.Report.d_sink; p_why = None; p_key = ""; p_parent = None } ]
  | steps -> steps

let witness_cert ~id (d : Report.dependency) =
  J.Obj
    (header ~kind:"witness" ~id
    @ [
        ("finding", J.Str "dependency");
        ("dep_kind", J.Str (dep_kind_name d.Report.d_kind));
        ("sink", J.Str d.Report.d_sink);
        ("func", J.Str d.Report.d_func);
      ]
    @ loc_fields d.Report.d_loc
    @ [
        ("trace", J.Arr (List.map (fun s -> J.Str s) d.Report.d_trace));
        ("steps", steps_json (dep_steps d));
      ])

(* ---- site certificates (P1–P3 Site_ok ledger entries) -------------------- *)

let site_certs (ledger : Ledger.entry list) : (string * string * J.t) list =
  let seq = Hashtbl.create 16 in
  List.filter_map
    (fun (e : Ledger.entry) ->
      if e.Ledger.l_discharge <> Ledger.Site_ok then None
      else begin
        let key =
          String.concat "|"
            [
              e.Ledger.l_rule;
              e.Ledger.l_func;
              e.Ledger.l_loc.Loc.file;
              string_of_int e.Ledger.l_loc.Loc.line;
              string_of_int e.Ledger.l_loc.Loc.col;
              e.Ledger.l_region;
            ]
        in
        let n = Option.value ~default:0 (Hashtbl.find_opt seq key) in
        Hashtbl.replace seq key (n + 1);
        let id = md5_hex (String.concat "|" [ "site"; key; string_of_int n ]) in
        let cert =
          J.Obj
            (header ~kind:"site" ~id
            @ [ ("rule", J.Str e.Ledger.l_rule); ("func", J.Str e.Ledger.l_func) ]
            @ loc_fields e.Ledger.l_loc
            @ [ ("region", J.Str e.Ledger.l_region) ])
        in
        Some (id, "site", cert)
      end)
    ledger

(* ---- obligation certificates (A1/A2 bounds) ------------------------------ *)

(* phase 2's opacity test, applied to a fresh affine context: symbols
   that are neither loop phis nor parameters make the obligation A2 *)
let opaque_syms (actx : Phase2.affine_ctx) (e : Omega.Linexpr.t) =
  List.exists
    (fun sym ->
      match
        if String.length sym > 1 && sym.[0] = 'v' then
          int_of_string_opt (String.sub sym 1 (String.length sym - 1))
        else None
      with
      | None -> not (String.length sym > 2 && String.sub sym 0 2 = "p_")
      | Some id -> (
        match Hashtbl.find_opt actx.Phase2.defs id with
        | Some (Ssair.Ir.Def_phi _) -> false
        | _ -> true))
    (Omega.Linexpr.vars e)

type side_fail =
  | Side_failed  (* the analysis did not discharge this side either *)
  | Side_unreplayable of string  (* discharged, but the checker cannot replay it *)

(* certify one Omega side: re-decide the query exactly as phase 2 did,
   then find a core the independent refuter replays — the solver's
   deletion-minimal core first, the oracle-minimized full pool as
   fallback *)
let certify_omega_side ~fuel ~doms ~inds ~hyps goal :
    (J.t * [ `Omega | `Ranges ], side_fail) result =
  let feas cs = Omega.feasible ~fuel cs in
  let constraints = doms @ inds in
  let verdict =
    match hyps with
    | [] -> feas (goal :: constraints)
    | _ -> (
      match feas ((goal :: hyps) @ constraints) with
      | Omega.Unsat -> Omega.Unsat
      | Omega.Sat | Omega.Unknown -> feas (goal :: constraints))
  in
  match verdict with
  | Omega.Sat | Omega.Unknown -> Error Side_failed
  | Omega.Unsat -> (
    let pool = constraints @ hyps in
    let goal_j = cstr_json goal in
    let replayable core = Checker.refutable (goal_j :: List.map cstr_json core) in
    let core =
      match Omega.unsat_core ~fuel [ goal ] pool with
      | Some c when replayable c -> Some c
      | _ ->
        if not (replayable pool) then None
        else begin
          (* deletion-minimize with the checker itself as the oracle *)
          let rec shrink kept = function
            | [] -> List.rev kept
            | c :: rest ->
              if replayable (List.rev_append kept rest) then shrink kept rest
              else shrink (c :: kept) rest
          in
          Some (shrink [] pool)
        end
    in
    match core with
    | Some core ->
      Ok
        ( J.Obj
            [
              ("by", J.Str "omega");
              ("goal", goal_j);
              ("core", J.Arr (List.map cstr_json core));
            ],
          `Omega )
    | None ->
      Error
        (Side_unreplayable
           "Omega verdict not replayable by the independent refuter"))

let obligation_certs ~(config : Config.t) (an : Driver.analysis) :
    (string * string * J.t) list * (string * string) list =
  if not config.Config.check_restrictions then ([], [])
  else begin
    let prog = an.Driver.prepared.Driver.ir in
    let p1 = an.Driver.phase1 in
    let fuel = config.Config.omega_fuel in
    let certs = ref [] and skipped = ref [] in
    let seq_tbl = Hashtbl.create 32 in
    let emit_one (f : Ssair.Ir.func) bid (i : Ssair.Ir.instr) idx elsize
        (r : Shm.region) base_off aq =
      let bound = (r.Shm.r_size - base_off) / elsize in
      let loc = i.Ssair.Ir.iloc in
      let key =
        String.concat "|"
          [
            f.Ssair.Ir.fname;
            loc.Loc.file;
            string_of_int loc.Loc.line;
            string_of_int loc.Loc.col;
            r.Shm.r_name;
          ]
      in
      let seq = Option.value ~default:0 (Hashtbl.find_opt seq_tbl key) in
      Hashtbl.replace seq_tbl key (seq + 1);
      let mk_id rule =
        md5_hex (String.concat "|" [ "oblig"; rule; key; string_of_int seq ])
      in
      let base_fields ~rule ~discharge ~index =
        header ~kind:"obligation" ~id:(mk_id rule)
        @ [ ("rule", J.Str rule); ("func", J.Str f.Ssair.Ir.fname) ]
        @ loc_fields loc
        @ [
            ("iid", num i.Ssair.Ir.iid);
            ("bid", num bid);
            ("region", J.Str r.Shm.r_name);
            ("region_size", num r.Shm.r_size);
            ("base_off", num base_off);
            ("elsize", num elsize);
            ("bound", num bound);
            ("discharge", J.Str discharge);
            ("index", index);
          ]
      in
      match idx with
      | Ssair.Ir.Vint (n64, _) ->
        let n = Int64.to_int n64 in
        if n >= 0 && n < bound then
          (* in-range constant: pure arithmetic for the checker *)
          certs :=
            ( mk_id "A1",
              "obligation",
              J.Obj
                (base_fields ~rule:"A1" ~discharge:"const"
                   ~index:(J.Obj [ ("kind", J.Str "const"); ("value", num n) ])) )
            :: !certs
        (* out of range ⇒ the analysis reported a violation; its finding
           certificate covers the verdict, no obligation cert to emit *)
      | _ -> (
        (* counted obligation: fresh affine context in the canonical
           derivation order (index expression, dominating constraints,
           induction facts, range hypotheses) so the fresh "u<n>" symbols
           line up with the checker's own re-derivation *)
        let actx = Phase2.mk_affine_ctx f in
        let idx_e = Phase2.affine_of_value actx idx in
        let doms = Phase2.dominating_constraints actx bid in
        let inds = Phase2.induction_constraints actx idx_e in
        let hyps = Phase2.range_hypotheses aq ~bid idx_e in
        let rule = if opaque_syms actx idx_e then "A2" else "A1" in
        let rng = Option.map (fun q -> Absint.range_of_value q ~at:bid idx) aq in
        let lo_proved =
          match rng with
          | Some r ->
            Absint.Itv.is_bot r
            || (match Absint.Itv.finite_lo r with Some l -> l >= 0 | None -> false)
          | None -> false
        in
        let hi_proved =
          match rng with
          | Some r -> (
            Absint.Itv.is_bot r
            ||
            match Absint.Itv.finite_hi r with
            | Some h -> h <= bound - 1
            | None -> false)
          | None -> false
        in
        let side proved goal =
          if proved then Ok (J.Obj [ ("by", J.Str "ranges") ], `Ranges)
          else certify_omega_side ~fuel ~doms ~inds ~hyps goal
        in
        let low = side lo_proved (Omega.le idx_e (Omega.Linexpr.const (-1))) in
        let high = side hi_proved (Omega.ge idx_e (Omega.Linexpr.const bound)) in
        match (low, high) with
        | Ok (lj, lt), Ok (hj, ht) ->
          let discharge =
            match (lt, ht) with
            | `Ranges, `Ranges -> "ranges"
            | `Omega, `Omega -> "omega"
            | _ -> "omega+ranges"
          in
          certs :=
            ( mk_id rule,
              "obligation",
              J.Obj
                (base_fields ~rule ~discharge
                   ~index:(J.Obj [ ("kind", J.Str "counted") ])
                @ [ ("sides", J.Obj [ ("low", lj); ("high", hj) ]) ]) )
            :: !certs
        | _ ->
          let reasons =
            List.filter_map
              (fun (name, s) ->
                match s with
                | Error (Side_unreplayable m) -> Some (name ^ " side: " ^ m)
                | _ -> None)
              [ ("low", low); ("high", high) ]
          in
          (* only unreplayable sides are worth reporting: an undischarged
             side means the analysis failed the obligation too, and the
             violation's finding certificate carries that verdict *)
          if reasons <> [] then
            skipped := (mk_id rule, String.concat "; " reasons) :: !skipped)
    in
    List.iter
      (fun (f : Ssair.Ir.func) ->
        if not (Phase1.is_exempt p1 f.Ssair.Ir.fname) then begin
          let aq =
            lazy (Option.map (fun ai -> Absint.query_ctx ai f) an.Driver.absint)
          in
          List.iter
            (fun (b : Ssair.Ir.block) ->
              List.iter
                (fun (i : Ssair.Ir.instr) ->
                  match i.Ssair.Ir.idesc with
                  | Ssair.Ir.Gep { base; kind = Ssair.Ir.Gindex elt; idx } ->
                    let targets = Phase1.shm_targets p1 f base in
                    if not (Phase1.Rset.is_empty targets) then begin
                      let elsize = max 1 (Ty.sizeof prog.Ssair.Ir.env elt) in
                      Phase1.Rset.iter
                        (fun tgt ->
                          match Shm.region p1.Phase1.shm tgt.Phase1.Rtgt.region with
                          | None -> ()
                          | Some r -> (
                            match tgt.Phase1.Rtgt.off with
                            | Offset.Top -> () (* A2 violation; finding cert *)
                            | Offset.Byte base_off ->
                              emit_one f b.Ssair.Ir.bbid i idx elsize r base_off
                                (Lazy.force aq)))
                        targets
                    end
                  | _ -> ())
                b.Ssair.Ir.instrs)
            f.Ssair.Ir.blocks
        end)
      prog.Ssair.Ir.funcs;
    (List.rev !certs, List.rev !skipped)
  end

(* ---- absenv snapshot ----------------------------------------------------- *)

let absenv_json (ai : Absint.t) : J.t =
  J.Obj
    [
      ("schema", J.Str schema);
      ( "funcs",
        J.Arr
          (List.map
             (fun (v : Absint.summary_view) ->
               J.Obj
                 [
                   ("func", J.Str v.Absint.sv_func);
                   ( "params",
                     J.Arr
                       (List.map
                          (fun (p, itv) -> J.Arr [ J.Str p; itv_json itv ])
                          v.Absint.sv_params) );
                   ( "env",
                     J.Arr
                       (List.map
                          (fun (vid, itv) -> J.Arr [ num vid; itv_json itv ])
                          v.Absint.sv_env) );
                   ("ret", itv_json v.Absint.sv_ret);
                   ("ret_raw", itv_json v.Absint.sv_ret_raw);
                 ])
             (Absint.summary_views ai)) );
    ]

(* ---- manifest ------------------------------------------------------------ *)

let manifest_json ~label ~(digests : Digest_ir.t) ~(config : Config.t) ~absint_on
    ~absenv_entry ~entries ~skipped ~ledger =
  let recon = Ledger.reconcile ledger in
  let kind_counts =
    let t = Hashtbl.create 4 in
    List.iter
      (fun (_, kind, _, _) ->
        Hashtbl.replace t kind (1 + Option.value ~default:0 (Hashtbl.find_opt t kind)))
      entries;
    Hashtbl.fold (fun k n acc -> (k, num n) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  J.Obj
    [
      ("schema", J.Str schema);
      ("file", J.Str label);
      ("program", J.Str digests.Digest_ir.program);
      ("env", J.Str digests.Digest_ir.env);
      ("semantic_config", J.Str (Digest_ir.semantic_config config));
      ("engine", J.Str (Config.engine_name config.Config.engine));
      ("absint", J.Bool absint_on);
      ("absenv", absenv_entry);
      ( "certs",
        J.Arr
          (List.map
             (fun (id, kind, path, digest) ->
               J.Obj
                 [
                   ("id", J.Str id);
                   ("kind", J.Str kind);
                   ("path", J.Str path);
                   ("digest", J.Str digest);
                 ])
             entries) );
      ( "skipped",
        J.Arr
          (List.map
             (fun (id, reason) ->
               J.Obj [ ("id", J.Str id); ("reason", J.Str reason) ])
             skipped) );
      ( "reconciliation",
        J.Obj
          [
            ("emitted", J.Obj kind_counts);
            ( "ledger",
              J.Obj
                [
                  ("ranges", num recon.Ledger.r_ranges);
                  ("omega", num recon.Ledger.r_omega);
                  ("failed", num recon.Ledger.r_failed);
                  ("total", num recon.Ledger.r_total);
                  ("queries", num recon.Ledger.r_queries);
                  ("avoided", num recon.Ledger.r_avoided);
                ] );
          ] );
    ]

(* ---- bundle emission ----------------------------------------------------- *)

type summary = {
  cs_dir : string;
  cs_written : int;
  cs_kinds : (string * int) list;
  cs_skipped : (string * string) list;
}

let regions_of (an : Driver.analysis) =
  List.map (fun (r : Shm.region) -> (r.Shm.r_name, r.Shm.r_size)) an.Driver.shm.Shm.regions

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_file path body =
  let oc = open_out_bin path in
  output_string oc body;
  close_out oc

let emit_bundle ?(config = Config.default) ~label ~dir (an : Driver.analysis) :
    (summary, string) result =
  let ir = an.Driver.prepared.Driver.ir in
  let digests = Digest_ir.of_program ir in
  (* every certificate, in report order: findings and witnesses first
     (keyed by fingerprint), then P1–P3 sites, then A1/A2 obligations *)
  let fp_ctx = Fingerprint.ctx_of_program ir in
  let finding_certs =
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun (fp, f) ->
        if Hashtbl.mem seen fp then None
        else begin
          Hashtbl.replace seen fp ();
          match f with
          | Fingerprint.Violation v -> Some (fp, "finding", violation_cert ~id:fp v)
          | Fingerprint.Warning w -> Some (fp, "finding", warning_cert ~id:fp w)
          | Fingerprint.Dependency d -> Some (fp, "witness", witness_cert ~id:fp d)
          | Fingerprint.Info _ -> None
        end)
      (Fingerprint.of_report fp_ctx an.Driver.report)
  in
  let obligs, skipped0 = obligation_certs ~config an in
  let all_certs = finding_certs @ site_certs an.Driver.ledger @ obligs in
  let files =
    List.map
      (fun (id, kind, j) ->
        let body = J.emit j in
        (id, kind, "certs/" ^ id ^ ".json", body, md5_hex body))
      all_certs
  in
  let absint_on = an.Driver.absint <> None in
  let absenv_file =
    match an.Driver.absint with
    | None -> None
    | Some ai ->
      let body = J.emit (absenv_json ai) in
      Some ("absenv.json", body, md5_hex body)
  in
  let absenv_entry =
    match absenv_file with
    | None -> J.Null
    | Some (path, _, digest) ->
      J.Obj [ ("path", J.Str path); ("digest", J.Str digest) ]
  in
  let build_manifest entries skipped =
    manifest_json ~label ~digests ~config ~absint_on ~absenv_entry
      ~entries:(List.map (fun (id, kind, path, _, digest) -> (id, kind, path, digest)) entries)
      ~skipped ~ledger:an.Driver.ledger
  in
  (* in-memory self-check with the independent checker: a certificate it
     rejects is demoted to [skipped] rather than shipped *)
  let load_from files path =
    match
      List.find_opt (fun (_, _, p, _, _) -> p = path) files
    with
    | Some (_, _, _, body, _) -> Ok body
    | None -> (
      match absenv_file with
      | Some (p, body, _) when p = path -> Ok body
      | _ -> Error ("no such bundle file " ^ path))
  in
  let entries0 = files in
  let expect = [ ("program", digests.Digest_ir.program); ("env", digests.Digest_ir.env) ] in
  let outcome =
    Checker.validate ~ir ~regions:(regions_of an) ~expect
      ~check_finding:(check_finding_binding ir)
      ~manifest:(build_manifest entries0 skipped0)
      ~load:(load_from entries0) ()
  in
  let fatal =
    List.find_opt
      (fun (f : Checker.failure) ->
        f.Checker.ce_id = "<manifest>" || f.Checker.ce_id = "<absenv>")
      outcome.Checker.failures
  in
  match fatal with
  | Some f ->
    Error (Printf.sprintf "self-check failed (%s): %s" f.Checker.ce_id f.Checker.ce_msg)
  | None -> (
    let rejected =
      List.map (fun (f : Checker.failure) -> (f.Checker.ce_id, f.Checker.ce_msg))
        outcome.Checker.failures
    in
    let entries =
      List.filter (fun (id, _, _, _, _) -> not (List.mem_assoc id rejected)) entries0
    in
    let skipped =
      skipped0
      @ List.map (fun (id, msg) -> (id, "self-check: " ^ msg)) rejected
    in
    try
      mkdir_p (Filename.concat dir "certs");
      List.iter
        (fun (_, _, path, body, _) -> write_file (Filename.concat dir path) body)
        entries;
      (match absenv_file with
      | Some (path, body, _) -> write_file (Filename.concat dir path) body
      | None -> ());
      write_file (Filename.concat dir "manifest.json")
        (J.emit (build_manifest entries skipped));
      let kinds =
        let t = Hashtbl.create 4 in
        List.iter
          (fun (_, kind, _, _, _) ->
            Hashtbl.replace t kind
              (1 + Option.value ~default:0 (Hashtbl.find_opt t kind)))
          entries;
        Hashtbl.fold (fun k n acc -> (k, n) :: acc) t []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Ok
        {
          cs_dir = dir;
          cs_written = List.length entries;
          cs_kinds = kinds;
          cs_skipped = skipped;
        }
    with Sys_error e | Unix.Unix_error (_, e, _) -> Error e)

(* ---- explain --json ------------------------------------------------------ *)

let explain_json ~label (an : Driver.analysis) : J.t =
  let ir = an.Driver.prepared.Driver.ir in
  let fp_ctx = Fingerprint.ctx_of_program ir in
  let digests = Digest_ir.of_program ir in
  let violations = ref [] and warnings = ref [] and deps = ref [] and infos = ref [] in
  List.iter
    (fun (fp, f) ->
      match f with
      | Fingerprint.Violation v -> violations := violation_cert ~id:fp v :: !violations
      | Fingerprint.Warning w -> warnings := warning_cert ~id:fp w :: !warnings
      | Fingerprint.Dependency d -> deps := witness_cert ~id:fp d :: !deps
      | Fingerprint.Info i ->
        infos :=
          J.Obj
            ([
               ("id", J.Str fp);
               ("code", J.Str (Report.code_of_info i));
               ("func", J.Str i.Report.i_func);
             ]
            @ loc_fields i.Report.i_loc
            @ [ ("msg", J.Str i.Report.i_msg) ])
          :: !infos)
    (Fingerprint.of_report fp_ctx an.Driver.report);
  J.Obj
    [
      ("schema", J.Str explain_schema);
      ("file", J.Str label);
      ("program", J.Str digests.Digest_ir.program);
      ("fingerprint_version", J.Str Fingerprint.version);
      ("violations", J.Arr (List.rev !violations));
      ("warnings", J.Arr (List.rev !warnings));
      ("dependencies", J.Arr (List.rev !deps));
      ("infos", J.Arr (List.rev !infos));
    ]
