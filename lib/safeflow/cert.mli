(** Certificate emission ([safeflow analyze --emit-certs DIR]).

    A bundle is a directory holding one JSON certificate per finding and
    per discharged A1/A2 obligation or P1–P3 site, an [absenv.json]
    snapshot of the value-range fixpoint, and a [manifest.json] binding
    every certificate (by content digest) to the {!Digest_ir} program
    fingerprint.  The schema is {!Checker.schema} ([safeflow-cert/1]);
    bundles are validated by the independent [checker] library
    ([safeflow check-cert]), which re-verifies every certificate against
    freshly parsed IR using only local checks.

    Before anything is written to disk, the whole bundle is self-checked
    in memory with {!Checker.validate}; a certificate the independent
    checker would reject is demoted to the manifest's [skipped] list
    (with the rejection reason) rather than shipped — the emitter never
    publishes a certificate it cannot replay. *)

val schema : string
(** {!Checker.schema}, re-exported for the CLI *)

val explain_schema : string
(** ["safeflow-explain/1"] — the [safeflow explain --json] document *)

val steps_json : Report.path_step list -> Jsonlite.t
(** witness steps with their {!Checker.step_link} hash chain; shared by
    witness certificates and [explain --json] so both encode paths
    identically *)

val check_finding_binding :
  Ssair.Ir.program -> Jsonlite.t -> (unit, string) result
(** [check_finding_binding ir] is the [?check_finding] callback for
    {!Checker.validate}: reconstruct the finding a certificate records,
    recompute its {!Fingerprint.compute} against the freshly parsed
    program, and require it to equal the certificate id.  Used both by
    the emitter's self-check and by [safeflow check-cert]. *)

type summary = {
  cs_dir : string;  (** the bundle directory *)
  cs_written : int;  (** certificates written (excluding absenv/manifest) *)
  cs_kinds : (string * int) list;  (** written certificates per kind, sorted *)
  cs_skipped : (string * string) list;
      (** (certificate id, reason) for obligations the emitter could not
          certify; also listed in the manifest *)
}

val emit_bundle :
  ?config:Config.t ->
  label:string ->
  dir:string ->
  Driver.analysis ->
  (summary, string) result
(** Emit the certificate bundle for one analyzed system.  [label] is the
    source path recorded in the manifest.  [Error _] means the bundle
    could not be produced at all (an unwritable directory, or a
    self-check failure of the manifest/absenv themselves — individual
    certificate failures only demote to [skipped]). *)

val explain_json : label:string -> Driver.analysis -> Jsonlite.t
(** the [safeflow explain --json] document: every finding with its
    fingerprint id, dependencies carrying their full witness chain in
    the certificate step encoding *)
