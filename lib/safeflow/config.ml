(** Analysis configuration.

    The defaults correspond to the paper's tool; the toggles exist for the
    ablation benchmarks (B3) and for debugging. *)

(** Phase-3 engine selection.  Both engines produce the same warnings,
    violations and dependency classifications; they differ in cost model:
    [Legacy] re-scans every discovered (function, context) pair until no
    taint changes (simple, quadratic-ish in taint growth), [Worklist]
    builds an explicit value-flow graph per pair once and propagates
    taint sparsely along its edges (see {!Vfgraph}). *)
type engine = Legacy | Worklist

let engine_name = function Legacy -> "legacy" | Worklist -> "worklist"

let engine_of_string = function
  | "legacy" -> Some Legacy
  | "worklist" -> Some Worklist
  | _ -> None

type t = {
  field_sensitive : bool;
      (** track byte offsets into shared-memory regions; off = treat every
          region access as whole-region (more warnings) *)
  context_sensitive : bool;
      (** analyze (function, monitor-assumption-set) pairs separately; off
          = merge assumption sets over all call sites (can lose monitored
          reads and report spurious warnings) *)
  control_deps : bool;
      (** report critical data that is only control-dependent on
          unmonitored non-core values (§3.4.1 false-positive class) *)
  check_restrictions : bool;  (** run phase 2 (P1–P3, A1/A2) *)
  omega_fuel : int;           (** budget for each array-bounds query *)
  critical_sinks : (string * int list) list;
      (** extern functions whose listed argument positions are implicitly
          critical (the paper asserts the pid argument of [kill]) *)
  recv_functions : string list;
      (** message-passing extension (§3.4.3): extern receive calls whose
          buffer argument is tainted when the socket is non-core *)
  engine : engine;
      (** phase-3 propagation engine; [Legacy] is the paper-shaped dense
          fixpoint, [Worklist] (the default) the sparse value-flow-graph
          engine *)
  pair_domains : int;
      (** worklist engine: domains used to build (function, context)
          value-flow edge blocks in parallel; 1 = sequential, 0 = one per
          hardware thread.  Reports are identical for any value. *)
  verbose : bool;
      (** emit one-line diagnostics to stderr for otherwise-silent
          recoveries (stale/corrupt cache entries); never changes
          reports, so deliberately outside the semantic fingerprint *)
  absint : bool;
      (** interprocedural value-range abstract interpretation
          ({!Absint}): phase 2 discharges A1/A2 obligations whose index
          range is provably in bounds (and strengthens the remaining
          Omega queries with range hypotheses), phase 3 prunes
          control-dependence edges of branches with a decided condition.
          Precision-only: off reproduces byte-identical reports, on can
          only remove findings.  Part of the semantic fingerprint. *)
}

let default =
  {
    engine = Worklist;
    pair_domains = 1;
    verbose = false;
    absint = true;
    field_sensitive = true;
    context_sensitive = true;
    control_deps = true;
    check_restrictions = true;
    omega_fuel = 200_000;
    critical_sinks = [ ("kill", [ 0 ]) ];
    recv_functions = [ "recv" ];
  }
