(** Analysis configuration; defaults correspond to the paper's tool, the
    toggles drive the ablation benchmarks (B3). *)

type engine = Legacy | Worklist
(** phase-3 propagation engine: the dense per-pass fixpoint of {!Phase3}
    or the sparse worklist engine of {!Vfgraph}; both produce the same
    warnings, violations and dependency classifications *)

val engine_name : engine -> string

val engine_of_string : string -> engine option

type t = {
  field_sensitive : bool;
      (** track byte offsets into shared regions; off ⇒ whole-region *)
  context_sensitive : bool;
      (** analyze per (function, monitor-assumption-set) pair; off ⇒
          merge assumption sets over call sites *)
  control_deps : bool;
      (** report control-only dependencies (§3.4.1 false-positive class) *)
  check_restrictions : bool;  (** run phase 2 (P1–P3, A1/A2) *)
  omega_fuel : int;           (** budget per array-bounds query *)
  critical_sinks : (string * int list) list;
      (** extern functions with implicitly-critical argument positions
          (default: the pid argument of [kill]) *)
  recv_functions : string list;
      (** message-passing receive calls (§3.4.3), default [recv] *)
  engine : engine;  (** phase-3 engine, default [Worklist] *)
  pair_domains : int;
      (** worklist engine: pair-build pool size; 1 = sequential
          (default), 0 = one domain per hardware thread; reports are
          identical for any value *)
  verbose : bool;
      (** stderr diagnostics for silent recoveries (default false);
          report-invisible, excluded from {!Digest_ir.semantic_config} *)
  absint : bool;
      (** value-range abstract interpretation (default on): discharges
          A1/A2 bounds obligations and prunes decided control-dependence
          branches; precision-only (off ⇒ byte-identical to the
          pre-range analyzer).  Included in the semantic fingerprint. *)
}

val default : t
