open Minic

type region_coverage = {
  rc_region : string;
  rc_size : int;
  rc_read_sites : int;
  rc_unmonitored_sites : int;
  rc_assumed_bytes : int;
}

type t = {
  cov_read_sites : int;
  cov_monitored_sites : int;
  cov_regions : region_coverage list;
  cov_errors : int;
  cov_control_only : int;
  cov_warnings : int;
  cov_bounds : Phase2.bounds_stats;
}

(* byte count of the union of [lo, hi) intervals, clamped to [0, size) *)
let union_bytes ~size intervals =
  let clamped =
    List.filter_map
      (fun (lo, hi) ->
        let lo = max 0 lo and hi = min size hi in
        if hi > lo then Some (lo, hi) else None)
      intervals
  in
  let sorted = List.sort compare clamped in
  let acc = ref 0 and cur = ref None in
  List.iter
    (fun (lo, hi) ->
      match !cur with
      | None -> cur := Some (lo, hi)
      | Some (clo, chi) ->
        if lo <= chi then cur := Some (clo, max chi hi)
        else begin
          acc := !acc + (chi - clo);
          cur := Some (lo, hi)
        end)
    sorted;
  (match !cur with Some (clo, chi) -> acc := !acc + (chi - clo) | None -> ());
  !acc

let compute ?(bounds = Phase2.bounds_zero) ~(prog : Ssair.Ir.program) ~(shm : Shm.t)
    ~(p1 : Phase1.t) ~(pts : Pointsto.t) ~(analyzed : string list) (r : Report.t) : t =
  let analyzed_set = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace analyzed_set f ()) analyzed;
  let in_scope (f : Ssair.Ir.func) =
    Hashtbl.mem analyzed_set f.Ssair.Ir.fname
    && not (Phase1.is_exempt p1 f.Ssair.Ir.fname)
  in
  (* syntactic non-core read sites: loads whose phase-1 facts target a
     non-core region — the same site predicate the engines warn on *)
  let sites : (Loc.t * string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Ssair.Ir.func) ->
      if in_scope f then
        List.iter
          (fun (i : Ssair.Ir.instr) ->
            match i.Ssair.Ir.idesc with
            | Ssair.Ir.Load { ptr; _ } ->
              Phase1.Rset.iter
                (fun tgt ->
                  let rname = tgt.Phase1.Rtgt.region in
                  match Shm.region shm rname with
                  | Some reg when reg.Shm.r_noncore ->
                    Hashtbl.replace sites (i.Ssair.Ir.iloc, rname) ()
                  | _ -> ())
                (Phase1.shm_targets p1 f ptr)
            | _ -> ())
          (Ssair.Ir.all_instrs f))
    prog.Ssair.Ir.funcs;
  let unmonitored : (Loc.t * string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (w : Report.warning) ->
      Hashtbl.replace unmonitored (w.Report.w_loc, w.Report.w_region) ())
    r.Report.warnings;
  (* monitor assumptions anywhere in the analyzed program *)
  let assumed : (string, (int * int) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (f : Ssair.Ir.func) ->
      if in_scope f then
        List.iter
          (function
            | Assume.Aregion (rname, lo, hi) ->
              Hashtbl.replace assumed rname
                ((lo, hi) :: Option.value ~default:[] (Hashtbl.find_opt assumed rname))
            | Assume.Anode _ -> ())
          (Assume.of_func ~prog ~shm ~p1 ~pts f))
    prog.Ssair.Ir.funcs;
  let region_cov (reg : Shm.region) =
    let name = reg.Shm.r_name in
    let count tbl =
      Hashtbl.fold (fun (_, rn) () acc -> if String.equal rn name then acc + 1 else acc) tbl 0
    in
    {
      rc_region = name;
      rc_size = reg.Shm.r_size;
      rc_read_sites = count sites;
      rc_unmonitored_sites = count unmonitored;
      rc_assumed_bytes =
        union_bytes ~size:reg.Shm.r_size
          (Option.value ~default:[] (Hashtbl.find_opt assumed name));
    }
  in
  let regions =
    shm.Shm.regions
    |> List.filter (fun (reg : Shm.region) -> reg.Shm.r_noncore)
    |> List.map region_cov
    |> List.sort (fun a b -> compare a.rc_region b.rc_region)
  in
  let total = Hashtbl.length sites in
  let unmon = Hashtbl.length unmonitored in
  {
    cov_read_sites = total;
    cov_monitored_sites = max 0 (total - unmon);
    cov_regions = regions;
    cov_errors = List.length (Report.errors r);
    cov_control_only = List.length (Report.control_deps r);
    cov_warnings = List.length r.Report.warnings;
    cov_bounds = bounds;
  }

let monitored_fraction t =
  if t.cov_read_sites = 0 then 1.0
  else float_of_int t.cov_monitored_sites /. float_of_int t.cov_read_sites

let stats t =
  let b = t.cov_bounds in
  [
    ("noncore_read_sites", t.cov_read_sites);
    ("monitored_read_sites", t.cov_monitored_sites);
    ("control_only_deps", t.cov_control_only);
    ("a1a2_obligations", b.Phase2.bs_total);
    ("a1a2_by_ranges", b.Phase2.bs_ranges);
    ("a1a2_by_omega", b.Phase2.bs_omega);
    ("a1a2_failed", b.Phase2.bs_failed);
    ("omega_queries_avoided", b.Phase2.bs_omega_avoided);
  ]

let pp ppf t =
  Fmt.pf ppf "@[<v>== monitoring coverage ==@,";
  Fmt.pf ppf "non-core read sites: %d (%d monitored, %d unmonitored, %.0f%% covered)@,"
    t.cov_read_sites t.cov_monitored_sites
    (t.cov_read_sites - t.cov_monitored_sites)
    (100.0 *. monitored_fraction t);
  Fmt.pf ppf "error dependencies: %d   control-only (likely FP): %d@," t.cov_errors
    t.cov_control_only;
  (let b = t.cov_bounds in
   Fmt.pf ppf
     "A1/A2 bounds obligations: %d (%d by ranges, %d by Omega, %d failed; %d Omega queries avoided)@,"
     b.Phase2.bs_total b.Phase2.bs_ranges b.Phase2.bs_omega b.Phase2.bs_failed
     b.Phase2.bs_omega_avoided);
  Fmt.pf ppf "non-core regions:@,";
  List.iter
    (fun rc ->
      Fmt.pf ppf "  %-16s %5d bytes, %2d read sites (%d unmonitored), %d bytes under assumption@,"
        rc.rc_region rc.rc_size rc.rc_read_sites rc.rc_unmonitored_sites
        rc.rc_assumed_bytes)
    t.cov_regions;
  Fmt.pf ppf "@]"

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"read_sites\":%d,\"monitored_sites\":%d,\"monitored_fraction\":%.3f,\"errors\":%d,\"control_only\":%d,\"warnings\":%d,\"bounds\":{\"obligations\":%d,\"by_ranges\":%d,\"by_omega\":%d,\"failed\":%d,\"omega_avoided\":%d},\"regions\":["
       t.cov_read_sites t.cov_monitored_sites (monitored_fraction t) t.cov_errors
       t.cov_control_only t.cov_warnings t.cov_bounds.Phase2.bs_total
       t.cov_bounds.Phase2.bs_ranges t.cov_bounds.Phase2.bs_omega
       t.cov_bounds.Phase2.bs_failed t.cov_bounds.Phase2.bs_omega_avoided);
  List.iteri
    (fun i rc ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"region\":\"%s\",\"size\":%d,\"read_sites\":%d,\"unmonitored_sites\":%d,\"assumed_bytes\":%d}"
           rc.rc_region rc.rc_size rc.rc_read_sites rc.rc_unmonitored_sites
           rc.rc_assumed_bytes))
    t.cov_regions;
  Buffer.add_string b "]}";
  Buffer.contents b
