(** Monitoring-coverage metrics (per analyzed system).

    The paper's report answers "which reads are unmonitored"; these
    metrics answer "how much of the attack surface does monitoring
    cover", making precision work measurable in findings rather than
    seconds:

    - the fraction of non-core shared-memory read sites that are
      monitored in every context they are analyzed under (an unmonitored
      site is exactly a {!Report.warning} site);
    - per-region annotation coverage: how many bytes of each non-core
      region are covered by some [assume(core(...))] monitor assumption
      anywhere in the program;
    - the control-dependence-only error count — the paper's
      likely-false-positive class (§3.4.1), worth charting over time.

    Metrics are engine-, cache- and parallelism-independent: read sites
    are counted syntactically over the analyzed function universe (the
    phase-3 pair discovery, identical for both engines), and warnings
    are taken from the canonical report. *)

type region_coverage = {
  rc_region : string;
  rc_size : int;               (** bytes *)
  rc_read_sites : int;         (** read sites targeting this region *)
  rc_unmonitored_sites : int;  (** of those, warning sites *)
  rc_assumed_bytes : int;
      (** bytes covered by monitor assumptions somewhere in the program *)
}

type t = {
  cov_read_sites : int;       (** non-core read sites in analyzed functions *)
  cov_monitored_sites : int;  (** read sites that never warn *)
  cov_regions : region_coverage list;  (** non-core regions, sorted by name *)
  cov_errors : int;           (** data dependencies (E-CRITICAL-DEP) *)
  cov_control_only : int;     (** control-only deps — likely false positives *)
  cov_warnings : int;
  cov_bounds : Phase2.bounds_stats;
      (** A1/A2 bounds-obligation discharge accounting (ranges vs Omega) *)
}

val compute :
  ?bounds:Phase2.bounds_stats ->
  prog:Ssair.Ir.program ->
  shm:Shm.t ->
  p1:Phase1.t ->
  pts:Pointsto.t ->
  analyzed:string list ->
  Report.t ->
  t
(** [analyzed] is the function universe phase 3 visited (pair discovery
    minus exempt functions); read sites outside it are dead to the
    analysis and not counted.  [bounds] is phase 2's discharge
    accounting (defaults to all-zero when phase 2 was skipped). *)

val monitored_fraction : t -> float
(** monitored / total read sites; [1.0] when there are no reads *)

val stats : t -> (string * int) list
(** the headline integers merged into {!Report.t.stats}:
    [noncore_read_sites], [monitored_read_sites], [control_only_deps] *)

val pp : Format.formatter -> t -> unit
(** the [--stats] rendering *)

val to_json : t -> string
(** one JSON object, embedded in [--stats-json] (telemetry schema 2)
    and the bench meta blocks *)
