open Minic

type entry = {
  e_fp : string;
  e_code : string;
  e_where : string;
  e_msg : string;
}

let format_version = "safeflow-findings/1"

let header = Printf.sprintf "# %s %s" format_version Fingerprint.version

let entries_of_report ctx ~file (r : Report.t) : entry list =
  List.map
    (fun (fp, f) ->
      let l = Fingerprint.loc f in
      let where =
        if Loc.equal l Loc.dummy then file ^ ":0:0" else Fmt.str "%a" Loc.pp l
      in
      { e_fp = fp; e_code = Fingerprint.code f; e_where = where;
        e_msg = Fingerprint.message f })
    (Fingerprint.of_report ctx r)

let to_string entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      (* messages are single-line by construction; flatten defensively *)
      let msg = String.map (fun c -> if c = '\n' then ' ' else c) e.e_msg in
      Buffer.add_string b (Printf.sprintf "%s %s %s %s\n" e.e_fp e.e_code e.e_where msg))
    entries;
  Buffer.contents b

let save path entries =
  let oc = open_out path in
  output_string oc (to_string entries);
  close_out oc

let looks_like_findings content =
  let prefix = "# " ^ format_version in
  String.length content >= String.length prefix
  && String.equal (String.sub content 0 (String.length prefix)) prefix

let parse content : entry list =
  if not (looks_like_findings content) then
    failwith
      (Printf.sprintf "not a %s file (missing '# %s' header)" format_version
         format_version);
  String.split_on_char '\n' content
  |> List.filteri (fun i _ -> i > 0)
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           (* <fp> <code> <where> <message with spaces> *)
           match String.index_opt line ' ' with
           | None -> failwith ("malformed findings line: " ^ line)
           | Some i1 -> (
             let rest = String.sub line (i1 + 1) (String.length line - i1 - 1) in
             match String.index_opt rest ' ' with
             | None -> failwith ("malformed findings line: " ^ line)
             | Some i2 -> (
               let rest2 = String.sub rest (i2 + 1) (String.length rest - i2 - 1) in
               let where, msg =
                 match String.index_opt rest2 ' ' with
                 | None -> (rest2, "")
                 | Some i3 ->
                   ( String.sub rest2 0 i3,
                     String.sub rest2 (i3 + 1) (String.length rest2 - i3 - 1) )
               in
               Some
                 { e_fp = String.sub line 0 i1;
                   e_code = String.sub rest 0 i2;
                   e_where = where;
                   e_msg = msg })))

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

(* -- Classification ------------------------------------------------------------- *)

type diff = {
  d_new : entry list;
  d_fixed : entry list;
  d_unchanged : entry list;
}

(** Multiset matching by fingerprint: each baseline occurrence of a
    fingerprint absorbs one current occurrence. *)
let diff ~baseline ~current : diff =
  let remaining = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace remaining e.e_fp
        (1 + Option.value ~default:0 (Hashtbl.find_opt remaining e.e_fp)))
    baseline;
  let unchanged = ref [] and fresh = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt remaining e.e_fp with
      | Some n when n > 0 ->
        Hashtbl.replace remaining e.e_fp (n - 1);
        unchanged := e :: !unchanged
      | _ -> fresh := e :: !fresh)
    current;
  (* baseline occurrences never matched are fixed *)
  let matched = Hashtbl.create 64 in
  let fixed =
    List.filter
      (fun e ->
        let used = Option.value ~default:0 (Hashtbl.find_opt matched e.e_fp) in
        let left = Option.value ~default:0 (Hashtbl.find_opt remaining e.e_fp) in
        if used < left then begin
          Hashtbl.replace matched e.e_fp (used + 1);
          true
        end
        else false)
      baseline
  in
  { d_new = List.rev !fresh; d_fixed = fixed; d_unchanged = List.rev !unchanged }

let pp_entry ppf e = Fmt.pf ppf "%s %s %s  (%s)" e.e_code e.e_where e.e_msg e.e_fp

let pp_diff ppf d =
  Fmt.pf ppf "@[<v>== SafeFlow diff ==@,";
  Fmt.pf ppf "new (%d):@," (List.length d.d_new);
  List.iter (fun e -> Fmt.pf ppf "  + %a@," pp_entry e) d.d_new;
  Fmt.pf ppf "fixed (%d):@," (List.length d.d_fixed);
  List.iter (fun e -> Fmt.pf ppf "  - %a@," pp_entry e) d.d_fixed;
  Fmt.pf ppf "unchanged: %d@," (List.length d.d_unchanged);
  Fmt.pf ppf "@]"

(* -- CI gating ------------------------------------------------------------------- *)

let is_error_code code = (Report.rule_of_code code).Report.rule_level = `Error

let gate ~fail_on entries =
  match fail_on with
  | `Never -> 0
  | `Error -> if List.exists (fun e -> is_error_code e.e_code) entries then 1 else 0
  | `Warning ->
    if List.exists (fun e -> is_error_code e.e_code) entries then 1
    else if entries <> [] then 2
    else 0
