(** Differential finding reports and suppression baselines.

    Findings are serialized to a plain-text, line-oriented format
    (["safeflow-findings/1"]) keyed by {!Fingerprint} identities, so two
    runs — across commits, engines, cache states or machines — can be
    diffed into {e new} / {e fixed} / {e unchanged} classes.  The classes
    drive CI gating: a checked-in baseline file suppresses known
    findings, and the exit code reflects only what is new.

    File format: a header line [# safeflow-findings/1 <fingerprint
    version>], then one finding per line:
    [<fingerprint> <code> <file>:<line>:<col> <message>]. *)

type entry = {
  e_fp : string;     (** hex fingerprint ({!Fingerprint.compute}) *)
  e_code : string;   (** diagnostic code *)
  e_where : string;  (** printed location, [file:line:col] *)
  e_msg : string;    (** one-line message *)
}

val format_version : string
(** ["safeflow-findings/1"] *)

val entries_of_report : Fingerprint.ctx -> file:string -> Report.t -> entry list
(** the report's findings as entries, in canonical report order *)

val to_string : entry list -> string

val save : string -> entry list -> unit

val parse : string -> entry list
(** parse findings-file content.
    @raise Failure on a missing or incompatible header *)

val looks_like_findings : string -> bool
(** content sniff: does this text start with the findings header?
    (used by [safeflow diff] to accept findings files and sources) *)

val load : string -> entry list
(** {!parse} of a file's content *)

(** A classified delta between two runs.  Multiplicity is respected: if
    a fingerprint occurs twice before and once after, one occurrence is
    fixed and one unchanged. *)
type diff = {
  d_new : entry list;
  d_fixed : entry list;
  d_unchanged : entry list;
}

val diff : baseline:entry list -> current:entry list -> diff

val pp_diff : Format.formatter -> diff -> unit

(** {1 CI gating} *)

val is_error_code : string -> bool
(** [true] for codes whose registered level is [`Error]
    (E-CRITICAL-DEP and the restriction violations) *)

val gate : fail_on:[ `Never | `Error | `Warning ] -> entry list -> int
(** exit code for a finding set (the whole report, or [diff.d_new] when
    a baseline is in play): 0 when nothing gates, 1 when an error-level
    finding gates, 2 when only warning-level findings gate *)
