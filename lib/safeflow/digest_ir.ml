(** Structural digests of analysis inputs (see the interface).

    Canonical encoding: [Marshal.to_string v [Marshal.No_sharing]].  The
    IR is cycle-free pure data, so marshalling terminates and is
    deterministic for structurally equal values; [No_sharing] makes the
    byte stream independent of incidental sharing in the heap. *)

type t = {
  funcs : (string, string) Hashtbl.t;
  program : string;
  env : string;
}

let of_value v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

let combine ds = Digest.to_hex (Digest.string (String.concat "\x00" ds))

let source_key ?(file = "<input>") src = of_value (file, src)

(* [engine] and [pair_domains] deliberately omitted: they do not change
   reports, so phase-1/2 and points-to entries are shared across them. *)
let semantic_config (c : Config.t) =
  of_value
    ( c.Config.field_sensitive,
      c.Config.context_sensitive,
      c.Config.control_deps,
      c.Config.check_restrictions,
      c.Config.omega_fuel,
      c.Config.critical_sinks,
      c.Config.recv_functions,
      c.Config.absint )

let sorted_tbl tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let of_program (p : Ssair.Ir.program) : t =
  let funcs = Hashtbl.create 64 in
  let fds =
    List.map
      (fun (f : Ssair.Ir.func) ->
        let d = of_value f in
        Hashtbl.replace funcs f.Ssair.Ir.fname d;
        d)
      p.Ssair.Ir.funcs
  in
  let env =
    of_value
      ( sorted_tbl p.Ssair.Ir.env.Minic.Ty.structs,
        sorted_tbl p.Ssair.Ir.env.Minic.Ty.typedefs )
  in
  let program =
    combine (env :: of_value (p.Ssair.Ir.globals, p.Ssair.Ir.externs) :: fds)
  in
  { funcs; program; env }

let func t fname = Hashtbl.find t.funcs fname

let no_facts = Digest.to_hex (Digest.string "no-facts")

let facts_digest tbl fname = Option.value ~default:no_facts (Hashtbl.find_opt tbl fname)

(* Group per-function entries, sort within each group, digest. *)
let by_func_digests (entries : (string * 'a) list) : (string, string) Hashtbl.t =
  let groups : (string, 'a list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (fname, e) ->
      match Hashtbl.find_opt groups fname with
      | Some l -> l := e :: !l
      | None -> Hashtbl.replace groups fname (ref [ e ]))
    entries;
  let out = Hashtbl.create 64 in
  Hashtbl.iter (fun fname l -> Hashtbl.replace out fname (of_value (List.sort compare !l))) groups;
  out

let phase1_by_func (p1 : Phase1.t) : (string, string) Hashtbl.t =
  let entries = ref [] in
  Hashtbl.iter
    (fun (fname, vid) s -> entries := (fname, `Reg (vid, Phase1.Rset.elements s)) :: !entries)
    p1.Phase1.facts;
  Hashtbl.iter
    (fun (fname, pname) s ->
      entries := (fname, `Param (pname, Phase1.Rset.elements s)) :: !entries)
    p1.Phase1.param_facts;
  Hashtbl.iter
    (fun fname s -> entries := (fname, `Ret (Phase1.Rset.elements s)) :: !entries)
    p1.Phase1.ret_facts;
  by_func_digests !entries

let pointsto_by_func (pts : Pointsto.t) : (string, string) Hashtbl.t * string =
  let entries =
    Pointsto.fold_pts
      (fun key s acc ->
        let fname =
          match key with
          | Pointsto.Kreg (f, _) | Pointsto.Kparam (f, _) | Pointsto.Kret f -> f
        in
        (fname, (key, Pointsto.Tset.elements s)) :: acc)
      pts []
  in
  let heap =
    of_value
      (List.sort compare
         (Pointsto.fold_heap (fun n s acc -> (n, Pointsto.Tset.elements s) :: acc) pts []))
  in
  (by_func_digests entries, heap)

let shm (s : Shm.t) = of_value (s.Shm.regions, s.Shm.init_funcs)
