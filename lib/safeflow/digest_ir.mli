(** Stable structural digests of analysis inputs — the keys of the
    content-addressed analysis cache ({!Cache}).

    Every digest is a hex MD5 of a canonical [Marshal] encoding of pure
    data.  Hash-table-backed structures (type environments, phase-1
    facts, points-to sets) are first converted to sorted association
    lists so the digest does not depend on internal bucket order.

    Two digests are equal iff the digested structures are structurally
    equal; since SSA functions carry source locations, an edit that
    shifts line numbers of an unrelated function also changes that
    function's digest (a sound over-approximation — cached results are
    recomputed, never reused wrongly). *)

type t = {
  funcs : (string, string) Hashtbl.t;  (** function name ↦ digest of its SSA body *)
  program : string;
      (** whole program: env + globals + externs + every function digest
          (annotations and callgraph edges are part of the function
          bodies, so they are covered) *)
  env : string;  (** type environment only (drives [Ty.sizeof]) *)
}

val of_value : 'a -> string
(** hex MD5 of the canonical marshalling of an arbitrary pure value; the
    value must not contain closures or custom blocks *)

val combine : string list -> string
(** digest of a list of digests *)

val source_key : ?file:string -> string -> string
(** key for the frontend tier: digest of (file name, source text) *)

val semantic_config : Config.t -> string
(** fingerprint of the {e semantic} configuration fields — the ones that
    change analysis results.  [engine] and [pair_domains] are excluded:
    both engines produce identical reports, so their cached phase-1/2
    results are shared. *)

val of_program : Ssair.Ir.program -> t

val func : t -> string -> string
(** digest of one function (raises if unknown) *)

val phase1_by_func : Phase1.t -> (string, string) Hashtbl.t
(** per-function digest of the phase-1 shm-pointer facts concerning that
    function (register, parameter and return facts); functions without
    facts are absent — use {!facts_digest} for a total lookup *)

val pointsto_by_func : Pointsto.t -> (string, string) Hashtbl.t * string
(** per-function digest of the points-to bindings keyed by that
    function, plus the digest of the global heap graph *)

val facts_digest : (string, string) Hashtbl.t -> string -> string
(** total lookup into the tables above: a fixed "no facts" digest for
    absent functions *)

val shm : Shm.t -> string
(** digest of the region model (layout, non-coreness, init functions) *)
