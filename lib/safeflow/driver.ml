(** End-to-end SafeFlow pipeline: MiniC source → SSA IR → shared-memory
    model → phases 1–3 → report.

    The staged API ({!prepare}, {!stage1}...) exists so the benchmark
    harness can time each phase separately (experiment B1). *)

open Minic

type prepared = {
  ir : Ssair.Ir.program;
  annotation_lines : int;
  loc_total : int;
}

(** Count annotation clauses in a parsed program (the paper's "annotation
    line count" — each clause occupies one line in our systems). *)
let count_annotations (prog : Ast.program) : int =
  let stmt_clauses stmts =
    (* walk statements directly for Sannot *)
    let rec go acc (s : Ast.stmt) =
      match s.sdesc with
      | Ast.Sannot clauses -> acc + List.length clauses
      | Ast.Sif (_, a, b) -> List.fold_left go (List.fold_left go acc a) b
      | Ast.Swhile (_, a) | Ast.Sdo (a, _) -> List.fold_left go acc a
      | Ast.Sfor (i, _, st, a) ->
        let acc = Option.fold ~none:acc ~some:(go acc) i in
        let acc = Option.fold ~none:acc ~some:(go acc) st in
        List.fold_left go acc a
      | Ast.Sswitch (_, cases) ->
        List.fold_left (fun acc c -> List.fold_left go acc c.Ast.cbody) acc cases
      | Ast.Sblock a -> List.fold_left go acc a
      | _ -> acc
    in
    List.fold_left go 0 stmts
  in
  List.fold_left
    (fun acc d ->
      match d with
      | Ast.Dfunc f -> acc + List.length f.fannot + stmt_clauses f.fbody
      | _ -> acc)
    0 prog

let count_loc (src : string) : int =
  String.split_on_char '\n' src
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(** Frontend + IR construction (shared by all phases). *)
let prepare_source ?(file = "<input>") (src : string) : prepared =
  Telemetry.span "prepare" ~args:[ ("file", file) ] (fun () ->
      let ast = Telemetry.span "parse" (fun () -> Parser.parse_string ~file src) in
      let tast = Telemetry.span "typecheck" (fun () -> Typecheck.check_program ast) in
      let ir =
        Telemetry.span "ssa" (fun () ->
            let ir = Ssair.Build.lower tast in
            ignore (Ssair.Mem2reg.run ir);
            ir)
      in
      (match Ssair.Verify.check_program ~ssa:true ir with
      | [] -> ()
      | v :: _ ->
        Loc.error Loc.dummy "internal IR verification failed: %s" v.Ssair.Verify.vmsg);
      { ir; annotation_lines = count_annotations ast; loc_total = count_loc src })

let prepare_file path : prepared =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  prepare_source ~file:path src

(* -- Staged pipeline ------------------------------------------------------------ *)

let stage_shm (p : prepared) : Shm.t = Shm.discover p.ir

let stage_phase1 ?config (p : prepared) (shm : Shm.t) : Phase1.t =
  Phase1.run ?config p.ir shm

let stage_pointsto (p : prepared) : Pointsto.t = Pointsto.analyze p.ir

let c_absint_iters = Telemetry.counter "absint.iterations"
let c_absint_widenings = Telemetry.counter "absint.widenings"

(* Latency histograms for the solver stack (PR 9).  The Omega library
   has no clock of its own, so the query probe reads ours: the outer
   application fires at query start, the returned closure at the
   verdict.  When telemetry is off the probe costs one atomic load and
   never touches the clock. *)
let h_omega_query = Telemetry.histogram "omega.query"
let h_absint_summary = Telemetry.histogram "absint.summary"

let () =
  Omega.set_query_probe
    (Some
       (fun ~cstrs:_ ~vars:_ ->
         if not (Telemetry.enabled ()) then fun _ -> ()
         else begin
           let t0 = Telemetry.now_ns () in
           fun _verdict ->
             Telemetry.observe_ns h_omega_query (Int64.sub (Telemetry.now_ns ()) t0)
         end))

(** Interprocedural value-range analysis, or [None] when disabled by
    [Config.absint] (phases 2/3 then behave exactly as without it).
    With [~cache], per-function summaries are memoized in the ["absint"]
    namespace, keyed on the summary inputs (function text, parameter and
    callee-return intervals) — an edit recomputes only the functions
    whose inputs actually shifted. *)
let stage_absint ?(config = Config.default) ?cache (p : prepared) : Absint.t option =
  if not config.Config.absint then None
  else
    Telemetry.span "absint" (fun () ->
        (* the memo hook wraps every per-function fixpoint, so it is
           also where the summary latency histogram lives: with a cache
           only true recomputations are timed (hits are disk reads,
           already histogrammed by Cache), without one every summary is *)
        let memo =
          match cache with
          | Some c ->
            Some
              (fun ~fname:_ ~inputs_digest (compute : unit -> Absint.func_summary) ->
                match
                  (Cache.find c ~ns:"absint" ~key:inputs_digest
                    : Absint.func_summary option)
                with
                | Some s -> s
                | None ->
                  let s = Telemetry.time_hist h_absint_summary compute in
                  Cache.store c ~ns:"absint" ~key:inputs_digest s;
                  s)
          | None ->
            Some
              (fun ~fname:_ ~inputs_digest:_ (compute : unit -> Absint.func_summary) ->
                Telemetry.time_hist h_absint_summary compute)
        in
        let ai = Absint.analyze ?memo p.ir in
        Telemetry.add c_absint_iters (Absint.iterations ai);
        Telemetry.add c_absint_widenings (Absint.widenings ai);
        Some ai)

let stage_phase2 ?config ?cache ?digests ?absint (p : prepared) (p1 : Phase1.t) :
    Phase2.result =
  Phase2.run ?config ?cache ?digests ?absint p.ir p1

(* Whole-result phase-3 tier, keyed at program granularity: the
   report-visible lists verbatim (order preserved) plus the taint tables
   as association lists, from which a fresh state is rebuilt for the VFG
   export.  A warm rerun of an unchanged program under either engine
   restores from here and skips propagation entirely.  The legacy engine
   has no finer-grained build step to cache; the worklist engine
   additionally caches per-pair edge blocks inside {!Vfgraph.run}, so an
   edit that misses this tier still rebuilds only the edited functions'
   dependent pairs. *)
type phase3_cached = {
  lc_warnings : Report.warning list;
  lc_dependencies : Report.dependency list;
  lc_passes : int;
  lc_stats : (string * int) list;
  lc_data : (Phase3.entity * Phase3.origin) list;
  lc_ctrl : (Phase3.entity * Phase3.origin) list;
  lc_pairs : (string * Phase3.Ctx.t) list;
  lc_warn_tbl : ((Minic.Loc.t * string) * Report.warning) list;
}

let phase3_whole ~config ~tag ?cache ?digests ?absint (p : prepared) (shm : Shm.t)
    (p1 : Phase1.t) (pts : Pointsto.t) (runner : unit -> Phase3.result) : Phase3.result =
  let key =
    match digests with
    | Some (d : Digest_ir.t) ->
      Some
        (Digest_ir.combine [ d.Digest_ir.program; Digest_ir.semantic_config config; tag ])
    | None -> None
  in
  let restore (lc : phase3_cached) : Phase3.result =
    let st = Phase3.make_state ~config ?absint p.ir shm p1 pts in
    List.iter (fun (e, o) -> Hashtbl.replace st.Phase3.data e o) lc.lc_data;
    List.iter (fun (e, o) -> Hashtbl.replace st.Phase3.ctrl e o) lc.lc_ctrl;
    List.iter (fun pr -> Hashtbl.replace st.Phase3.pairs pr ()) lc.lc_pairs;
    List.iter (fun (k, w) -> Hashtbl.replace st.Phase3.warnings k w) lc.lc_warn_tbl;
    st.Phase3.passes <- lc.lc_passes;
    {
      Phase3.warnings = lc.lc_warnings;
      dependencies = lc.lc_dependencies;
      passes = lc.lc_passes;
      pair_count = List.length lc.lc_pairs;
      engine_stats = lc.lc_stats;
      taint_state = st;
    }
  in
  match (cache, key) with
  | Some c, Some key -> (
    match (Cache.find c ~ns:"phase3" ~key : phase3_cached option) with
    | Some lc -> restore lc
    | None ->
      let r = runner () in
      let st = r.Phase3.taint_state in
      let assoc tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      Cache.store c ~ns:"phase3" ~key
        {
          lc_warnings = r.Phase3.warnings;
          lc_dependencies = r.Phase3.dependencies;
          lc_passes = r.Phase3.passes;
          lc_stats = r.Phase3.engine_stats;
          lc_data = assoc st.Phase3.data;
          lc_ctrl = assoc st.Phase3.ctrl;
          lc_pairs = Hashtbl.fold (fun k () acc -> k :: acc) st.Phase3.pairs [];
          lc_warn_tbl = assoc st.Phase3.warnings;
        };
      r)
  | _ -> runner ()

let stage_phase3 ?(config = Config.default) ?cache ?digests ?absint (p : prepared)
    (shm : Shm.t) (p1 : Phase1.t) (pts : Pointsto.t) : Phase3.result =
  match config.Config.engine with
  | Config.Legacy ->
    phase3_whole ~config ~tag:"legacy" ?cache ?digests ?absint p shm p1 pts (fun () ->
        Phase3.run ~config ?absint p.ir shm p1 pts)
  | Config.Worklist ->
    phase3_whole ~config ~tag:"worklist" ?cache ?digests ?absint p shm p1 pts (fun () ->
        Vfgraph.run ~config ?cache ?digests ?absint p.ir shm p1 pts)

(* -- One-shot analysis ------------------------------------------------------------ *)

type analysis = {
  report : Report.t;
  phase3 : Phase3.result;
  prepared : prepared;
  shm : Shm.t;
  phase1 : Phase1.t;
  pointsto : Pointsto.t;
  coverage : Coverage.t;
  ledger : Ledger.entry list;
      (* phase-2 obligation audit trail; observability only, never
         consulted when building [report] *)
  absint : Absint.t option;
      (* the value-range analysis the run used ([None] when disabled);
         certificate emission serializes its summaries *)
}

(* -- Canonical report order ------------------------------------------------------ *)

(* The emission sites already sort by (file, line, code); this final
   (file, line, fingerprint) sort also covers results restored from a
   cache written by an older layout, making printed and serialized
   output byte-identical across {engines} x {cache states} x
   {parallelism}. *)
let canonicalize (fctx : Fingerprint.ctx) (r : Report.t) : Report.t =
  let by_fp to_finding natural a b =
    let c = Report.compare_loc (Fingerprint.loc (to_finding a)) (Fingerprint.loc (to_finding b)) in
    if c <> 0 then c
    else
      let c =
        compare
          (Fingerprint.compute fctx (to_finding a))
          (Fingerprint.compute fctx (to_finding b))
      in
      if c <> 0 then c else natural a b
  in
  {
    r with
    Report.violations =
      List.stable_sort
        (by_fp (fun v -> Fingerprint.Violation v) Report.compare_violation)
        r.Report.violations;
    warnings =
      List.stable_sort
        (by_fp (fun w -> Fingerprint.Warning w) Report.compare_warning)
        r.Report.warnings;
    dependencies =
      List.stable_sort
        (by_fp (fun d -> Fingerprint.Dependency d) Report.compare_dependency)
        r.Report.dependencies;
    infos =
      List.stable_sort (by_fp (fun i -> Fingerprint.Info i) Report.compare_info) r.Report.infos;
  }

(** The function universe phase 3 actually analyzed: discovered pairs
    minus exempt functions (identical for both engines — asserted by
    [test_engine_equiv.ml]'s pair-count check). *)
let analyzed_functions (ph3 : Phase3.result) (p1 : Phase1.t) : string list =
  let seen = Hashtbl.create 32 in
  Hashtbl.iter
    (fun (fname, _) () ->
      if not (Phase1.is_exempt p1 fname) then Hashtbl.replace seen fname ())
    ph3.Phase3.taint_state.Phase3.pairs;
  List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) seen [])

let cached (c : Cache.t) ~ns ~key (f : unit -> 'a) : 'a =
  match Cache.find c ~ns ~key with
  | Some v -> v
  | None ->
    let v = f () in
    Cache.store c ~ns ~key v;
    v

(* Cross-system dedupe attribution: record which system's analysis
   stored each cache entry.  An enclosing caller (the fleet driver) may
   have set a more precise origin — the member's real path rather than
   its normalized source label — so only fill in a default when none is
   set. *)
let with_default_origin label f =
  if not (String.equal (Cache.current_origin ()) "") then f ()
  else Cache.with_origin label f

let analyze ?(config = Config.default) ?cache ?file (src : string) : analysis =
  Telemetry.span "analyze"
    ~args:[ ("file", Option.value file ~default:"<input>") ]
    (fun () ->
  with_default_origin (Option.value file ~default:"<input>") (fun () ->
  let p =
    match cache with
    | Some c ->
      cached c ~ns:"prepared" ~key:(Digest_ir.source_key ?file src) (fun () ->
          prepare_source ?file src)
    | None -> prepare_source ?file src
  in
  (* program digests drive every later cache key; skip them entirely when
     no cache is attached *)
  let digests = Option.map (fun _ -> Digest_ir.of_program p.ir) cache in
  let shm = Telemetry.span "shm" (fun () -> stage_shm p) in
  let p1 =
    Telemetry.span "phase1" (fun () ->
        match (cache, digests) with
        | Some c, Some (d : Digest_ir.t) ->
          cached c ~ns:"phase1"
            ~key:
              (Digest_ir.combine [ d.Digest_ir.program; Digest_ir.semantic_config config ])
            (fun () -> stage_phase1 ~config p shm)
        | _ -> stage_phase1 ~config p shm)
  in
  let absint = stage_absint ~config ?cache p in
  let ph2 =
    Telemetry.span "phase2" (fun () -> stage_phase2 ~config ?cache ?digests ?absint p p1)
  in
  let pts =
    Telemetry.span "pointsto" (fun () ->
        match (cache, digests) with
        | Some c, Some (d : Digest_ir.t) ->
          (* config-independent, so keyed on the program alone *)
          cached c ~ns:"pointsto" ~key:d.Digest_ir.program (fun () -> stage_pointsto p)
        | _ -> stage_pointsto p)
  in
  let ph3 =
    Telemetry.span "phase3"
      ~args:[ ("engine", Config.engine_name config.Config.engine) ]
      (fun () -> stage_phase3 ~config ?cache ?digests ?absint p shm p1 pts)
  in
  let fctx = Fingerprint.ctx_of_program p.ir in
  let report =
    canonicalize fctx
      {
        Report.violations = ph2.Phase2.violations;
        warnings = ph3.Phase3.warnings;
        dependencies = ph3.Phase3.dependencies;
        (* infos are always computed (cache entries stay verbose-free);
           the report carries them only under --verbose *)
        infos = (if config.Config.verbose then ph2.Phase2.infos else []);
        regions =
          List.map (fun r -> (r.Shm.r_name, r.Shm.r_size, r.Shm.r_noncore)) shm.Shm.regions;
        annotation_lines = p.annotation_lines;
        stats = [];
      }
  in
  let coverage =
    Telemetry.span "coverage" (fun () ->
        Coverage.compute ~bounds:ph2.Phase2.bounds ~prog:p.ir ~shm ~p1 ~pts
          ~analyzed:(analyzed_functions ph3 p1) report)
  in
  let report =
    {
      report with
      Report.stats =
        [ ("loc", p.loc_total);
          ("functions", List.length p.ir.Ssair.Ir.funcs);
          ("phase3_passes", ph3.Phase3.passes);
          ("phase3_contexts", ph3.Phase3.pair_count) ]
        @ Coverage.stats coverage @ ph3.Phase3.engine_stats;
    }
  in
  { report; phase3 = ph3; prepared = p; shm; phase1 = p1; pointsto = pts; coverage;
    ledger = ph2.Phase2.ledger; absint }))

let analyze_file ?config ?cache path : analysis =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  analyze ?config ?cache ~file:path src

let c_file_tasks = Telemetry.counter "pool.file_tasks"
let c_file_peak = Telemetry.gauge "pool.file_peak"

(** Analyze several systems concurrently, one domain per hardware thread
    (bounded by [Domain.recommended_domain_count]).  Analysis state is
    per-run, so the systems are embarrassingly parallel; results come
    back in input order and exceptions are re-raised in input order. *)
let analyze_files_par ?config ?cache (paths : string list) : analysis list =
  let n = List.length paths in
  if n <= 1 then List.map (analyze_file ?config ?cache) paths
  else begin
    let files = Array.of_list paths in
    let results : (analysis, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    Telemetry.add c_file_tasks n;
    let active = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Telemetry.record_max c_file_peak (Atomic.fetch_and_add active 1 + 1);
          results.(i) <-
            Some (try Ok (analyze_file ?config ?cache files.(i)) with e -> Error e);
          Atomic.decr active;
          loop ()
        end
      in
      loop ()
    in
    let extra = min (Domain.recommended_domain_count () - 1) (n - 1) in
    let domains = List.init (max 0 extra) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok a) -> a
         | Some (Error e) -> raise e
         | None -> assert false)
  end

(** Summary-engine variant of phase 3 (paper §3.3's ESP-style
    optimization): single bottom-up pass with per-function value-flow
    summaries.  Warnings match the exact engine; dependencies are data
    only (no control-dependence classification). *)
let stage_summary ?config (p : prepared) (shm : Shm.t) (p1 : Phase1.t) (pts : Pointsto.t) :
    Summary.result =
  Summary.run ?config p.ir shm p1 pts

(** One-shot analysis with the summary engine. *)
let analyze_summary ?(config = Config.default) ?file (src : string) :
    Report.t * Summary.result =
  let p = prepare_source ?file src in
  let shm = stage_shm p in
  let p1 = stage_phase1 ~config p shm in
  let absint = stage_absint ~config p in
  let ph2 = stage_phase2 ~config ?absint p p1 in
  let pts = stage_pointsto p in
  let s = stage_summary ~config p shm p1 pts in
  ( canonicalize (Fingerprint.ctx_of_program p.ir)
      {
        Report.violations = ph2.Phase2.violations;
        warnings = s.Summary.warnings;
        dependencies = s.Summary.dependencies;
        infos = (if config.Config.verbose then ph2.Phase2.infos else []);
        regions =
          List.map (fun r -> (r.Shm.r_name, r.Shm.r_size, r.Shm.r_noncore)) shm.Shm.regions;
        annotation_lines = p.annotation_lines;
        stats = [ ("loc", p.loc_total); ("summary_passes", s.Summary.passes) ];
      },
    s )
