(** End-to-end pipeline: MiniC source → SSA IR → region model →
    phases 1–3 → report.  The staged functions exist so benchmarks can
    time each phase (experiment B1). *)

type prepared = {
  ir : Ssair.Ir.program;
  annotation_lines : int;
  loc_total : int;
}

val count_annotations : Minic.Ast.program -> int
(** annotation clauses in a parsed program (the paper's "lines of
    annotation": each clause occupies one line in our systems) *)

val count_loc : string -> int
(** non-empty source lines *)

val prepare_source : ?file:string -> string -> prepared
(** frontend + lowering + SSA + IR verification *)

val prepare_file : string -> prepared

(** {1 Staged pipeline} *)

val stage_shm : prepared -> Shm.t

val stage_phase1 : ?config:Config.t -> prepared -> Shm.t -> Phase1.t

val stage_pointsto : prepared -> Pointsto.t

val stage_absint : ?config:Config.t -> ?cache:Cache.t -> prepared -> Absint.t option
(** interprocedural value-range analysis, or [None] when disabled by
    {!Config.t.absint}; with [~cache], per-function summaries are
    memoized in the ["absint"] namespace *)

val stage_phase2 :
  ?config:Config.t ->
  ?cache:Cache.t ->
  ?digests:Digest_ir.t ->
  ?absint:Absint.t ->
  prepared ->
  Phase1.t ->
  Phase2.result

val stage_phase3 :
  ?config:Config.t ->
  ?cache:Cache.t ->
  ?digests:Digest_ir.t ->
  ?absint:Absint.t ->
  prepared ->
  Shm.t ->
  Phase1.t ->
  Pointsto.t ->
  Phase3.result

(** {1 One-shot analysis} *)

type analysis = {
  report : Report.t;  (** canonical order: (file, line, fingerprint) *)
  phase3 : Phase3.result;  (** taint state, for VFG export *)
  prepared : prepared;
  shm : Shm.t;
  phase1 : Phase1.t;
  pointsto : Pointsto.t;
  coverage : Coverage.t;  (** monitoring-coverage metrics *)
  ledger : Ledger.entry list;
      (** phase-2 obligation audit trail ([safeflow audit] /
          [safeflow hotspots]); observability only — never consulted
          when building [report] *)
  absint : Absint.t option;
      (** the value-range analysis the run used ([None] when
          {!Config.t.absint} is off); certificate emission serializes
          its summaries *)
}

val analyzed_functions : Phase3.result -> Phase1.t -> string list
(** the function universe phase 3 analyzed: discovered (function,
    context) pairs minus exempt functions; sorted *)

val analyze : ?config:Config.t -> ?cache:Cache.t -> ?file:string -> string -> analysis
(** With [~cache], every stage consults the content-addressed cache: the
    prepared IR is keyed on the source text, phase 1 / phase 2 /
    points-to / phase 3 on program and per-function digests
    ({!Digest_ir}).  Reports are bit-identical with and without the
    cache; a warm rerun of an unchanged system skips phases 1–3 and goes
    straight to taint propagation. *)

val analyze_file : ?config:Config.t -> ?cache:Cache.t -> string -> analysis

val analyze_files_par : ?config:Config.t -> ?cache:Cache.t -> string list -> analysis list
(** analyze several systems concurrently (one [Domain] per hardware
    thread, bounded by [Domain.recommended_domain_count]); results are
    returned in input order.  A shared [~cache] is safe: all cache
    operations are mutex-guarded. *)

(** {1 Summary engine (paper §3.3's ESP-style optimization)} *)

val stage_summary :
  ?config:Config.t -> prepared -> Shm.t -> Phase1.t -> Pointsto.t -> Summary.result

val analyze_summary :
  ?config:Config.t -> ?file:string -> string -> Report.t * Summary.result
(** one-shot analysis using per-function value-flow summaries; warnings
    match {!analyze}, dependencies are data-flow only *)
