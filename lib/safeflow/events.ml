(* Structured fleet event stream: one JSON object per line
   (schema "safeflow-events/1"), written by workers onto a dedicated
   pipe and consumed by the parent for live progress and --log-json.

   Lines stay far below PIPE_BUF, so a single Unix.write per line is
   atomic across concurrently-writing workers — no framing or locking
   needed.  Timestamps are wall-clock seconds (Unix.gettimeofday),
   self-labelled "t"; they are for humans and post-hoc analysis, not
   for correlating with telemetry spans (those use the monotonic
   epoch). *)

let schema = "safeflow-events/1"

let esc = Jsonlite.escape

let base ev fields =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"ev\":\"%s\",\"t\":%.3f" ev (Unix.gettimeofday ()));
  List.iter
    (fun f ->
      Buffer.add_char b ',';
      Buffer.add_string b f)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let fleet_start ~systems ~jobs ~shard_domains =
  base "fleet_start"
    [
      Printf.sprintf "\"schema\":\"%s\"" schema;
      Printf.sprintf "\"systems\":%d" systems;
      Printf.sprintf "\"jobs\":%d" jobs;
      Printf.sprintf "\"shard_domains\":%d" shard_domains;
    ]

let worker_start ~worker ~pid ~members =
  base "worker_start"
    [
      Printf.sprintf "\"worker\":%d" worker;
      Printf.sprintf "\"pid\":%d" pid;
      Printf.sprintf "\"members\":%d" members;
    ]

let member_start ~worker ~path =
  base "member_start"
    [ Printf.sprintf "\"worker\":%d" worker; Printf.sprintf "\"path\":\"%s\"" (esc path) ]

let member_done ~worker ~path ~errors ~warnings ~findings ~cache_hits ~cache_misses
    ?certs ~elapsed_ms () =
  base "member_done"
    ([
       Printf.sprintf "\"worker\":%d" worker;
       Printf.sprintf "\"path\":\"%s\"" (esc path);
       Printf.sprintf "\"errors\":%d" errors;
       Printf.sprintf "\"warnings\":%d" warnings;
       Printf.sprintf "\"findings\":%d" findings;
       Printf.sprintf "\"cache_hits\":%d" cache_hits;
       Printf.sprintf "\"cache_misses\":%d" cache_misses;
     ]
    @ (match certs with
      | None -> []
      | Some (pass, fail, skipped) ->
        [
          Printf.sprintf "\"certs_pass\":%d" pass;
          Printf.sprintf "\"certs_fail\":%d" fail;
          Printf.sprintf "\"certs_skipped\":%d" skipped;
        ])
    @ [ Printf.sprintf "\"elapsed_ms\":%.3f" elapsed_ms ])

let cache_recovered ~worker ~ns ~key ~kind =
  base "cache.recovered"
    [
      Printf.sprintf "\"worker\":%d" worker;
      Printf.sprintf "\"ns\":\"%s\"" (esc ns);
      Printf.sprintf "\"key\":\"%s\"" (esc key);
      Printf.sprintf "\"kind\":\"%s\"" (esc kind);
    ]

let heartbeat ~worker ~done_ ~total =
  base "heartbeat"
    [
      Printf.sprintf "\"worker\":%d" worker;
      Printf.sprintf "\"done\":%d" done_;
      Printf.sprintf "\"total\":%d" total;
    ]

let worker_done ~worker ~members ~errors ~warnings =
  base "worker_done"
    [
      Printf.sprintf "\"worker\":%d" worker;
      Printf.sprintf "\"members\":%d" members;
      Printf.sprintf "\"errors\":%d" errors;
      Printf.sprintf "\"warnings\":%d" warnings;
    ]

let fleet_done ~systems ~elapsed_s ~analyses_per_sec =
  base "fleet_done"
    [
      Printf.sprintf "\"systems\":%d" systems;
      Printf.sprintf "\"elapsed_s\":%.3f" elapsed_s;
      Printf.sprintf "\"analyses_per_sec\":%.3f" analyses_per_sec;
    ]

let write_line fd line =
  (* one write per line: atomic for lines < PIPE_BUF.  A closed read end
     (parent gone) must not kill the worker — callers ignore SIGPIPE,
     and we swallow the resulting EPIPE here. *)
  let msg = line ^ "\n" in
  try ignore (Unix.write_substring fd msg 0 (String.length msg))
  with Unix.Unix_error ((EPIPE | EBADF), _, _) -> ()
