(** Structured fleet event stream: newline-delimited JSON
    ([safeflow-events/1]).

    Fleet workers emit these on a dedicated pipe; the parent tees them
    to [--log-json FILE] and feeds {!Progress}.  Each constructor
    returns one complete JSON object on one line (no trailing newline)
    with an ["ev"] discriminator and a wall-clock ["t"] (seconds).
    Lines are far below [PIPE_BUF], so one {!write_line} per line is
    atomic across concurrently-writing workers. *)

val schema : string
(** ["safeflow-events/1"]; carried in the [fleet_start] event *)

val fleet_start : systems:int -> jobs:int -> shard_domains:int -> string

val worker_start : worker:int -> pid:int -> members:int -> string

val member_start : worker:int -> path:string -> string

val member_done :
  worker:int ->
  path:string ->
  errors:int ->
  warnings:int ->
  findings:int ->
  cache_hits:int ->
  cache_misses:int ->
  ?certs:int * int * int ->
  elapsed_ms:float ->
  unit ->
  string
(** [cache_hits]/[cache_misses] are the delta observed while analyzing
    this member (approximate under concurrent domains in the same
    worker).  [certs], present only under [--emit-certs --check-certs],
    is the member's (passed, failed, skipped) certificate validation
    counts. *)

val cache_recovered : worker:int -> ns:string -> key:string -> kind:string -> string
(** a stale or corrupt disk-cache entry was discarded and recomputed
    ([kind] is ["stale"] or ["corrupt"]); wired through
    {!Cache.create}'s [on_recovery] so [--log-json] captures silent
    recoveries fleet-wide *)

val heartbeat : worker:int -> done_:int -> total:int -> string

val worker_done : worker:int -> members:int -> errors:int -> warnings:int -> string

val fleet_done : systems:int -> elapsed_s:float -> analyses_per_sec:float -> string

val write_line : Unix.file_descr -> string -> unit
(** write [line ^ "\n"] with a single [Unix.write]; EPIPE/EBADF are
    swallowed (callers in workers also ignore [SIGPIPE]) so a vanished
    reader never kills an analysis *)
