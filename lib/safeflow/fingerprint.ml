(** Stable finding identities (see the interface for the invariance
    contract).  The digested payload is pure data built exclusively from
    components that survive engine choice, cache state and unrelated
    source edits:

    - the diagnostic code;
    - the enclosing function name;
    - the source span relative to the function's first line (so moving a
      whole function does not move its findings);
    - a finding-specific discriminator: the region for warnings, the
      normalized message for violations, and for dependencies the
      normalized witness digest.  The witness is digested by its {e
      stable endpoints} (kind and sink description) only: interior steps
      and [p_why] strings depend on propagation visit order, which
      neither engine guarantees (see [test_engine_equiv.ml]), and embed
      absolute source locations — including them would break engine
      invariance.  The endpoints coincide with the engines'
      deduplication key, so they identify the dependency exactly. *)

open Minic

type finding =
  | Violation of Report.violation
  | Warning of Report.warning
  | Dependency of Report.dependency
  | Info of Report.info

let code = function
  | Violation v -> Report.code_of_violation v
  | Warning w -> Report.code_of_warning w
  | Dependency d -> Report.code_of_dependency d
  | Info i -> Report.code_of_info i

let loc = function
  | Violation v -> v.Report.v_loc
  | Warning w -> w.Report.w_loc
  | Dependency d -> d.Report.d_loc
  | Info i -> i.Report.i_loc

let func = function
  | Violation v -> v.Report.v_func
  | Warning w -> w.Report.w_func
  | Dependency d -> d.Report.d_func
  | Info i -> i.Report.i_func

let message = function
  | Violation v -> Fmt.str "restriction %a: %s" Report.pp_restriction v.Report.v_rule v.Report.v_msg
  | Warning w -> Fmt.str "unmonitored non-core read of region '%s'" w.Report.w_region
  | Dependency d ->
    Fmt.str "%a dependency: %s" Report.pp_dep_kind d.Report.d_kind d.Report.d_sink
  | Info i -> i.Report.i_msg

type ctx = (string, int) Hashtbl.t  (* function ↦ first source line *)

let ctx_of_program (prog : Ssair.Ir.program) : ctx =
  let t = Hashtbl.create 32 in
  List.iter
    (fun (f : Ssair.Ir.func) ->
      Hashtbl.replace t f.Ssair.Ir.fname f.Ssair.Ir.floc.Loc.line)
    prog.Ssair.Ir.funcs;
  t

let ctx_empty : ctx = Hashtbl.create 1

(* span of a finding relative to its enclosing function's first line;
   columns are kept absolute (they do not move under reordering) *)
let norm_span (ctx : ctx) (fn : string) (l : Loc.t) : int * int =
  match Hashtbl.find_opt ctx fn with
  | Some first -> (l.Loc.line - first, l.Loc.col)
  | None -> (l.Loc.line, l.Loc.col)

(* normalized witness digest: the stable endpoints of the value-flow
   path.  The sink description ("assert(safe(x))", "argument 0 of kill")
   and the dependency kind are the engines' dedup key; interior steps
   are visit-order-dependent and excluded by design. *)
let witness_digest (d : Report.dependency) : string =
  Digest_ir.of_value (Fmt.str "%a" Report.pp_dep_kind d.Report.d_kind, d.Report.d_sink)

let compute (ctx : ctx) (f : finding) : string =
  let fn = func f in
  let span = norm_span ctx fn (loc f) in
  let payload =
    match f with
    | Violation v -> ("violation", v.Report.v_msg)
    | Warning w -> ("warning", w.Report.w_region)
    | Dependency d -> ("dependency", d.Report.d_sink ^ "\x00" ^ witness_digest d)
    | Info i -> ("info", i.Report.i_msg)
  in
  Digest_ir.of_value (code f, fn, span, payload)

let of_report (ctx : ctx) (r : Report.t) : (string * finding) list =
  let all =
    List.map (fun v -> Violation v) r.Report.violations
    @ List.map (fun w -> Warning w) r.Report.warnings
    @ List.map (fun d -> Dependency d) r.Report.dependencies
    @ List.map (fun i -> Info i) r.Report.infos
  in
  List.map (fun f -> (compute ctx f, f)) all

let version = "safeflow-fingerprint/1"
