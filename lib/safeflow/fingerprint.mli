(** Stable, content-addressed identities for analysis findings.

    A fingerprint names {e what} a finding is about — diagnostic code,
    function, the symbol or witness involved, and the source span
    normalized to the enclosing function — never {e where in the run} it
    was produced.  Fingerprints are therefore invariant under:

    - engine choice (legacy vs worklist) and parallelism settings;
    - cache state (no cache / cold / warm / dirty);
    - reordering of findings within a report;
    - reordering of functions within the source file, and unrelated
      edits that only shift other functions' line numbers (spans are
      recorded relative to the enclosing function's first line);

    which is exactly what lets {!Diffreport} track a finding across
    commits.  Construction reuses {!Digest_ir} machinery: each
    fingerprint is the hex MD5 of a canonical encoding of pure data. *)

open Minic

type finding =
  | Violation of Report.violation
  | Warning of Report.warning
  | Dependency of Report.dependency
  | Info of Report.info

val code : finding -> string  (** the diagnostic code ({!Report.rules}) *)

val loc : finding -> Loc.t

val func : finding -> string  (** enclosing function *)

val message : finding -> string
(** one-line human description (no embedded locations) *)

(** Normalization context: function name ↦ first source line, used to
    express finding spans relative to their enclosing function. *)
type ctx

val ctx_of_program : Ssair.Ir.program -> ctx

val ctx_empty : ctx
(** degrades gracefully: spans stay absolute for unknown functions *)

val compute : ctx -> finding -> string
(** hex fingerprint (32 chars) *)

val of_report : ctx -> Report.t -> (string * finding) list
(** every finding of the report paired with its fingerprint, in the
    report's canonical order (violations, then warnings, then
    dependencies, then infos) *)

val version : string
(** the fingerprint construction version, recorded in SARIF
    [partialFingerprints] keys and findings-file headers;
    ["safeflow-fingerprint/1"] *)
