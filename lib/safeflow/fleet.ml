(** Fleet mode: sharded analysis of many subject systems over one shared
    content-addressed cache (see the interface). *)

let c_fleet_systems = Telemetry.counter "fleet.systems"
let c_fleet_shards = Telemetry.counter "fleet.shards"
let c_fleet_members = Telemetry.counter "fleet.members"
let c_certs_pass = Telemetry.counter "fleet.certs_pass"
let c_certs_fail = Telemetry.counter "fleet.certs_fail"
let c_certs_skipped = Telemetry.counter "fleet.certs_skipped"

type cert_counts = {
  cc_written : int;
  cc_passed : int;
  cc_failed : int;
  cc_skipped : int;
}

type member_result = {
  mr_path : string;
  mr_report : string;
  mr_entries : Diffreport.entry list;
  mr_errors : int;
  mr_warnings : int;
  mr_ledger : Ledger.entry list;
  mr_certs : cert_counts option;
}

type cache_totals = {
  ct_hits : int;
  ct_misses : int;
  ct_stale : int;
  ct_corrupt : int;
  ct_cross : int;
}

let no_cache_totals = { ct_hits = 0; ct_misses = 0; ct_stale = 0; ct_corrupt = 0; ct_cross = 0 }

let cache_totals_of (c : Cache.t) : cache_totals =
  List.fold_left
    (fun acc (_, (s : Cache.ns_stats)) ->
      {
        ct_hits = acc.ct_hits + s.Cache.hits;
        ct_misses = acc.ct_misses + s.Cache.misses;
        ct_stale = acc.ct_stale + s.Cache.stale;
        ct_corrupt = acc.ct_corrupt + s.Cache.corrupt;
        ct_cross = acc.ct_cross + s.Cache.cross;
      })
    no_cache_totals (Cache.detailed_stats c)

let add_totals a b =
  {
    ct_hits = a.ct_hits + b.ct_hits;
    ct_misses = a.ct_misses + b.ct_misses;
    ct_stale = a.ct_stale + b.ct_stale;
    ct_corrupt = a.ct_corrupt + b.ct_corrupt;
    ct_cross = a.ct_cross + b.ct_cross;
  }

type result = {
  f_results : member_result list;
  f_systems : int;
  f_jobs : int;
  f_shard_domains : int;
  f_elapsed_s : float;
  f_analyses_per_sec : float;
  f_cache : cache_totals;
}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

(* One member: analyze under the normalized source label (so content
   digests align across members and per-function entries dedupe
   fleet-wide) but attribute cache traffic to the member's real path —
   a later hit from a different member is a cross-system hit. *)
let analyze_member ?config ?cache ?emit_certs ?(check_certs = false) ~source_label
    path : member_result =
  let src = read_file path in
  Cache.with_origin path (fun () ->
      let a = Driver.analyze ?config ?cache ~file:source_label src in
      let r = a.Driver.report in
      let ctx = Fingerprint.ctx_of_program a.Driver.prepared.Driver.ir in
      (* per-member certificate bundle under <root>/<basename>; the
         real path is recorded as the manifest label, but digests bind
         to the IR as analyzed (under the normalized source label) *)
      let certs =
        match emit_certs with
        | None -> None
        | Some root ->
          let bdir =
            Filename.concat root (Filename.remove_extension (Filename.basename path))
          in
          let s =
            match Cert.emit_bundle ?config ~label:path ~dir:bdir a with
            | Ok s -> s
            | Error e -> failwith (path ^ ": certificate emission failed: " ^ e)
          in
          if not check_certs then
            Some
              {
                cc_written = s.Cert.cs_written;
                cc_passed = 0;
                cc_failed = 0;
                cc_skipped = List.length s.Cert.cs_skipped;
              }
          else begin
            (* independent re-validation: a fresh parse of the member's
               source, never the analysis pipeline's own structures *)
            let prep = Driver.prepare_source ~file:source_label src in
            let ir = prep.Driver.ir in
            let shm = Driver.stage_shm prep in
            let regions =
              List.map (fun (rg : Shm.region) -> (rg.Shm.r_name, rg.Shm.r_size))
                shm.Shm.regions
            in
            let d = Digest_ir.of_program ir in
            let o =
              Checker.validate_bundle ~ir ~regions
                ~expect:
                  [ ("program", d.Digest_ir.program); ("env", d.Digest_ir.env) ]
                ~check_finding:(Cert.check_finding_binding ir) bdir
            in
            Telemetry.add c_certs_pass o.Checker.passed;
            Telemetry.add c_certs_fail (List.length o.Checker.failures);
            Telemetry.add c_certs_skipped o.Checker.skipped;
            Some
              {
                cc_written = s.Cert.cs_written;
                cc_passed = o.Checker.passed;
                cc_failed = List.length o.Checker.failures;
                cc_skipped = o.Checker.skipped;
              }
          end
      in
      (* finding locations come out under the normalized label; baselines
         and gating should attribute them to the real member *)
      let relabel (e : Diffreport.entry) =
        let ll = String.length source_label in
        if
          String.length e.Diffreport.e_where >= ll
          && String.equal (String.sub e.Diffreport.e_where 0 ll) source_label
        then
          {
            e with
            Diffreport.e_where =
              path ^ String.sub e.Diffreport.e_where ll (String.length e.Diffreport.e_where - ll);
          }
        else e
      in
      {
        mr_path = path;
        mr_report = Fmt.str "%a" Report.pp r;
        mr_entries =
          List.map relabel (Diffreport.entries_of_report ctx ~file:path r);
        mr_errors = List.length (Report.errors r);
        mr_warnings = List.length r.Report.warnings;
        (* pure data, so it marshals over the worker result channel
           unchanged — the fleet parent gets every member's audit trail *)
        mr_ledger = a.Driver.ledger;
        mr_certs = certs;
      })

(* bounded domain pool over an index list; results in input order,
   exceptions re-raised in input order *)
let pool_map ~domains (f : 'a -> 'b) (items : 'a array) : 'b array =
  let n = Array.length items in
  let domains = max 1 (min domains n) in
  if domains <= 1 || n <= 1 then Array.map f items
  else begin
    let results : ('b, exn) Stdlib.result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (f items.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let extra = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join extra;
    Array.map
      (function Some (Ok r) -> r | Some (Error e) -> raise e | None -> assert false)
      results
  end

(* one shard: the members at [indices], analyzed on [shard_domains]
   domains against a cache instance opened on the shared directory.
   [emit], when present, receives one Events line per lifecycle point;
   event emission is skipped entirely (not just dropped) when absent.
   [worker] is the shard index, used as the event/worker tag. *)
let run_shard ?config ?cache_dir ?emit_certs ?check_certs ~shard_domains
    ~source_label ~worker ~(emit : (string -> unit) option) (paths : string array)
    (indices : int array) : (int * member_result) array * cache_totals =
  let verbose = match config with Some c -> c.Config.verbose | None -> false in
  let on_recovery =
    Option.map
      (fun e ~kind ~ns ~key -> e (Events.cache_recovered ~worker ~ns ~key ~kind))
      emit
  in
  let cache =
    Option.map (fun dir -> Cache.create ~dir ~verbose ?on_recovery ()) cache_dir
  in
  Telemetry.add c_fleet_members (Array.length indices);
  let total = Array.length indices in
  let done_count = Atomic.make 0 in
  (* opportunistic heartbeat: whichever domain finishes a member first
     after a quiet second wins the CAS and emits *)
  let last_beat = Atomic.make (Int64.to_int (Telemetry.now_ns ())) in
  let analyze_one i =
    let path = paths.(i) in
    match emit with
    | None ->
      (i, analyze_member ?config ?cache ?emit_certs ?check_certs ~source_label path)
    | Some emit ->
      emit (Events.member_start ~worker ~path);
      let before =
        match cache with Some c -> cache_totals_of c | None -> no_cache_totals
      in
      let t0 = Unix.gettimeofday () in
      let r =
        analyze_member ?config ?cache ?emit_certs ?check_certs ~source_label path
      in
      let after =
        match cache with Some c -> cache_totals_of c | None -> no_cache_totals
      in
      emit
        (Events.member_done ~worker ~path ~errors:r.mr_errors
           ~warnings:r.mr_warnings
           ~findings:(List.length r.mr_entries)
           ~cache_hits:(after.ct_hits - before.ct_hits)
           ~cache_misses:(after.ct_misses - before.ct_misses)
           ?certs:
             (Option.map
                (fun c -> (c.cc_passed, c.cc_failed, c.cc_skipped))
                r.mr_certs)
           ~elapsed_ms:((Unix.gettimeofday () -. t0) *. 1000.0)
           ());
      let d = Atomic.fetch_and_add done_count 1 + 1 in
      let now = Int64.to_int (Telemetry.now_ns ()) in
      let last = Atomic.get last_beat in
      if now - last > 1_000_000_000 && Atomic.compare_and_set last_beat last now
      then emit (Events.heartbeat ~worker ~done_:d ~total);
      (i, r)
  in
  let results = pool_map ~domains:shard_domains analyze_one indices in
  (results, match cache with Some c -> cache_totals_of c | None -> no_cache_totals)

(* round-robin striping: member i belongs to shard (i mod jobs), so
   systems of similar generated size spread evenly across shards *)
let shard_indices n jobs j =
  Array.of_list (List.filter (fun i -> i mod jobs = j) (List.init n Fun.id))

let mkdtemp prefix =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d =
      Filename.concat base (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) k)
    in
    if Sys.file_exists d then go (k + 1)
    else begin
      try
        Sys.mkdir d 0o700;
        d
      with Sys_error _ -> go (k + 1)
    end
  in
  go 0

(* what a worker marshals back: its tagged member results, its cache
   totals, and — when telemetry is on — its telemetry snapshot *)
type shard_payload =
  ((int * member_result) array * cache_totals * Telemetry.snapshot option, string)
  Stdlib.result

(* Fork-based sharding.  Each worker process opens its own cache
   instance on the shared directory (the disk tier is the shared
   medium; see Cache for the write/validate protocol), analyzes its
   stripe, and marshals the per-member results — plus its telemetry
   snapshot — back through a temp file.  Results and exceptions are
   both round-tripped, so a failing member fails the fleet run with its
   original message.

   Event streaming rides a dedicated pipe: workers write atomic NDJSON
   lines (see Events), the parent drains to EOF — reached when the last
   worker exits and the kernel drops its write end — and only then
   reaps children, so draining cannot deadlock against a full pipe. *)
let run_forked ?config ~cache_dir ?emit_certs ?check_certs ~jobs ~shard_domains
    ~source_label ~(on_event : (string -> unit) option) (paths : string array) :
    (int * member_result) array * cache_totals =
  let n = Array.length paths in
  let tmpdir = mkdtemp "safeflow-fleet" in
  let shard_file j = Filename.concat tmpdir (Printf.sprintf "shard-%d.bin" j) in
  (* buffered output duplicated into children would be flushed twice *)
  flush stdout;
  flush stderr;
  let pipe = Option.map (fun _ -> Unix.pipe ()) on_event in
  let fork_child j =
    match Unix.fork () with
    | 0 ->
      (* fresh telemetry state on the parent's timeline; labelled
         verbose output; a vanished event reader must not kill us *)
      Telemetry.begin_worker ();
      Logctx.set (Printf.sprintf "[worker %d] " j);
      let emit =
        match pipe with
        | None -> None
        | Some (rfd, wfd) ->
          Unix.close rfd;
          (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
           with Invalid_argument _ -> ());
          Some (fun line -> Events.write_line wfd line)
      in
      let status =
        try
          let indices = shard_indices n jobs j in
          (match emit with
          | Some e ->
            e
              (Events.worker_start ~worker:j ~pid:(Unix.getpid ())
                 ~members:(Array.length indices))
          | None -> ());
          let tagged, totals =
            run_shard ?config ?cache_dir ?emit_certs ?check_certs ~shard_domains
              ~source_label ~worker:j ~emit paths indices
          in
          (match emit with
          | Some e ->
            let errors, warnings =
              Array.fold_left
                (fun (es, ws) (_, r) -> (es + r.mr_errors, ws + r.mr_warnings))
                (0, 0) tagged
            in
            e
              (Events.worker_done ~worker:j ~members:(Array.length tagged)
                 ~errors ~warnings)
          | None -> ());
          let snap = if Telemetry.enabled () then Some (Telemetry.snapshot ()) else None in
          let oc = open_out_bin (shard_file j) in
          Marshal.to_channel oc (Ok (tagged, totals, snap) : shard_payload) [];
          close_out oc;
          0
        with e ->
          (try
             let oc = open_out_bin (shard_file j) in
             Marshal.to_channel oc
               (Error (Printexc.to_string e) : shard_payload)
               [];
             close_out oc
           with _ -> ());
          1
      in
      (* _exit: no at_exit handlers, no double-flushed buffers; also
         drops our write end of the event pipe *)
      Unix._exit status
    | pid -> pid
  in
  let pids =
    try List.init jobs fork_child
    with e ->
      (* fork refused (a domain was spawned earlier in this process):
         release the pipe before the caller degrades to in-process *)
      (match pipe with
      | Some (rfd, wfd) ->
        (try Unix.close rfd with Unix.Unix_error _ -> ());
        (try Unix.close wfd with Unix.Unix_error _ -> ())
      | None -> ());
      raise e
  in
  (* drain the event pipe to EOF before reaping: every worker holds a
     write end until _exit, so EOF == all workers gone *)
  (match (pipe, on_event) with
  | Some (rfd, wfd), Some sink ->
    Unix.close wfd;
    let ic = Unix.in_channel_of_descr rfd in
    (try
       while true do
         sink (input_line ic)
       done
     with End_of_file | Sys_error _ -> ());
    close_in_noerr ic
  | _ -> ());
  (* reap every worker before acting on failures — no zombies *)
  let statuses =
    List.map (fun pid -> snd (Unix.waitpid [] pid)) pids
  in
  let shards =
    List.mapi
      (fun j status ->
        let fail fmt =
          Fmt.kstr
            (fun msg ->
              failwith (Printf.sprintf "fleet shard %d/%d: %s" j jobs msg))
            fmt
        in
        (match status with
        | Unix.WEXITED (0 | 1) -> ()
        | Unix.WEXITED c -> fail "worker exited with code %d" c
        | Unix.WSIGNALED s -> fail "worker killed by signal %d" s
        | Unix.WSTOPPED s -> fail "worker stopped by signal %d" s);
        let path = shard_file j in
        if not (Sys.file_exists path) then fail "worker produced no result file";
        let ic = open_in_bin path in
        let r =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> (Marshal.from_channel ic : shard_payload))
        in
        match r with Ok shard -> shard | Error msg -> fail "%s" msg)
      statuses
  in
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat tmpdir f) with Sys_error _ -> ())
       (Sys.readdir tmpdir);
     Sys.rmdir tmpdir
   with Sys_error _ -> ());
  (* fold worker telemetry into the parent's fleet-wide view *)
  List.iteri
    (fun j (_, _, snap) ->
      match snap with
      | Some s ->
        if not (Telemetry.merge_worker ~label:(Printf.sprintf "worker %d" j) s)
        then
          Printf.eprintf
            "safeflow: fleet: dropping worker %d telemetry (snapshot version mismatch)\n%!"
            j
      | None -> ())
    shards;
  ( Array.concat (List.map (fun (tagged, _, _) -> tagged) shards),
    List.fold_left (fun acc (_, t, _) -> add_totals acc t) no_cache_totals shards )

let run ?config ?cache_dir ?(jobs = 1) ?(shard_domains = 1)
    ?(source_label = "<system>") ?on_event ?emit_certs ?check_certs
    (paths : string list) : result =
  Telemetry.span "fleet.run" @@ fun () ->
  let n = List.length paths in
  let arr = Array.of_list paths in
  let jobs = max 1 (min jobs (max 1 n)) in
  let emit_parent line = match on_event with Some sink -> sink line | None -> () in
  emit_parent (Events.fleet_start ~systems:n ~jobs ~shard_domains);
  let t0 = Unix.gettimeofday () in
  let in_process () =
    run_shard ?config ?cache_dir ?emit_certs ?check_certs ~shard_domains
      ~source_label ~worker:0 ~emit:on_event arr (Array.init n Fun.id)
  in
  let tagged, totals =
    (* The parent must stay domain-free: the OCaml 5 runtime forbids
       Unix.fork forever after the first Domain.spawn in a process.  So
       any run that wants domains forks (a single child hosts them when
       [jobs = 1]), and only a fully sequential run stays in-process.
       If fork is already off the table (some earlier code in this
       process spawned a domain), degrade to in-process sequential
       rather than fail. *)
    if jobs <= 1 && shard_domains <= 1 then in_process ()
    else
      try
        run_forked ?config ~cache_dir ?emit_certs ?check_certs ~jobs
          ~shard_domains ~source_label ~on_event arr
      with Failure msg
        when String.length msg >= 9 && String.sub msg 0 9 = "Unix.fork" ->
        in_process ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let by_index : member_result option array = Array.make n None in
  Array.iter (fun (i, r) -> by_index.(i) <- Some r) tagged;
  let results =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> failwith "fleet: missing member result")
         by_index)
  in
  let aps = if elapsed > 0.0 then float_of_int n /. elapsed else 0.0 in
  Telemetry.add c_fleet_systems n;
  Telemetry.add c_fleet_shards jobs;
  Telemetry.record_float_max "fleet.analyses_per_sec" aps;
  emit_parent (Events.fleet_done ~systems:n ~elapsed_s:elapsed ~analyses_per_sec:aps);
  {
    f_results = results;
    f_systems = n;
    f_jobs = jobs;
    f_shard_domains = shard_domains;
    f_elapsed_s = elapsed;
    f_analyses_per_sec = aps;
    f_cache = totals;
  }

(* -- input collection --------------------------------------------------------- *)

let members_of_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".c")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let members_of_manifest path =
  read_file path |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else if Filename.is_relative line then
           Some (Filename.concat (Filename.dirname path) line)
         else Some line)
