(** Fleet mode: analyze many subject systems — a directory or manifest of
    independently-built core components — sharded across OS processes
    ([jobs]) and OCaml 5 domains per process ([shard_domains]), all
    sharing one content-addressed disk cache.

    {2 Sharding model}

    Member [i] of an [n]-member fleet belongs to shard [i mod jobs].
    Each shard is one forked worker process; inside a worker the
    members are drained by a work-stealing pool of [shard_domains]
    domains.  Workers marshal their per-member results back to the
    parent through temp files and exit with [Unix._exit], so parent
    buffers are never double-flushed.  The parent never spawns domains
    itself (the OCaml 5 runtime forbids [Unix.fork] in a process that
    ever did): with [jobs = 1] but [shard_domains > 1] a single forked
    child hosts the domains, and only a fully sequential run
    ([jobs = 1], [shard_domains = 1]) stays in-process — the mode used
    by tests that need deterministic single-process cache statistics.
    If fork itself is unavailable because earlier code in the process
    already spawned a domain, the run degrades to in-process.

    {2 Shared cache and cross-system dedupe}

    Every worker opens its own {!Cache.t} on the same directory; the
    disk tier is the shared medium and is safe under concurrent
    multi-process multi-domain access (atomic temp+rename writes,
    read-validate, generation stamping — see {!Cache}).  To make
    content-identical functions from {e different} members key
    identically, all members are analyzed under one normalized
    [source_label] (default ["<system>"]) while the member's real path
    is installed as the {!Cache.with_origin} origin — so a hit whose
    entry was written by a different member is counted as a
    cross-system hit ([cache.cross_hits]).

    Reports are unaffected by sharding, caching, or label choice: a
    fleet run's reports are byte-identical to sequential no-cache
    analyses of the same sources under the same label (asserted by
    [bench fleet] and [test/test_fleet.ml]).

    {2 Observability}

    Two side channels, both strictly write-only with respect to
    analysis results (reports are byte-identical with them on or off):

    - {b Events} ([?on_event]): workers write {!Events} NDJSON lines
      (worker/member lifecycle, cache deltas, heartbeats) to a
      dedicated pipe; single writes below [PIPE_BUF] keep concurrent
      lines atomic.  The parent drains the pipe to EOF {e before}
      reaping workers (every worker holds a write end until [_exit],
      so EOF means all workers are gone — draining cannot deadlock
      against a full pipe) and hands each line to [on_event].  The CLI
      tees these to [--log-json] and a live [--progress] line.
    - {b Telemetry}: when {!Telemetry.enabled}, each worker calls
      {!Telemetry.begin_worker} after the fork, records spans and
      counters as usual, and ships a {!Telemetry.snapshot} back with
      its results; the parent merges them ({!Telemetry.merge_worker})
      into the fleet-wide view used by [--stats], [--stats-json]
      (schema v3 [workers] section) and the multi-pid [--trace].

    Workers also tag their verbose stderr notes with a
    [\[worker N\]] {!Logctx} prefix. *)

type cert_counts = {
  cc_written : int;  (** certificates in the member's bundle *)
  cc_passed : int;
  cc_failed : int;
  cc_skipped : int;
      (** without [check_certs], the bundle's skipped-obligation count;
          with it, the checker's view of the same *)
}
(** per-member certificate accounting under [?emit_certs]; pass/fail
    are zero unless [?check_certs] revalidated the bundle *)

type member_result = {
  mr_path : string;  (** the member's real on-disk path *)
  mr_report : string;  (** rendered {!Report.pp} output *)
  mr_entries : Diffreport.entry list;
      (** fingerprinted findings, located at [mr_path] (not the
          normalized label), for baselines and gating *)
  mr_errors : int;
  mr_warnings : int;
  mr_ledger : Ledger.entry list;
      (** the member's phase-2 obligation audit trail, shipped verbatim
          over the worker result channel ([safeflow hotspots] ranks
          fleet-wide from these) *)
  mr_certs : cert_counts option;  (** present only under [?emit_certs] *)
}

type cache_totals = {
  ct_hits : int;
  ct_misses : int;
  ct_stale : int;
  ct_corrupt : int;
  ct_cross : int;  (** hits on entries written by a different member *)
}

type result = {
  f_results : member_result list;  (** in input order *)
  f_systems : int;
  f_jobs : int;
  f_shard_domains : int;
  f_elapsed_s : float;
  f_analyses_per_sec : float;
  f_cache : cache_totals;  (** summed over all shards and namespaces *)
}

val run :
  ?config:Config.t ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?shard_domains:int ->
  ?source_label:string ->
  ?on_event:(string -> unit) ->
  ?emit_certs:string ->
  ?check_certs:bool ->
  string list ->
  result
(** [run paths] analyzes every member and aggregates.  A member whose
    analysis raises fails the whole run with the original message
    (prefixed by its shard).  Cache totals are meaningful only with
    [~cache_dir]; without it every member is analyzed cold.
    [on_event] receives each {!Events} line (no trailing newline) on
    the parent, in arrival order; it is called from the parent's single
    thread, never concurrently.

    [~emit_certs:ROOT] writes each member's certificate bundle
    ({!Cert.emit_bundle}) to [ROOT/<basename-without-extension>]; an
    emission error fails that member.  [~check_certs:true] additionally
    revalidates every bundle in the worker with {!Checker.validate_bundle}
    against a {e fresh} parse of the member (the
    [fleet.certs_pass]/[_fail]/[_skipped] telemetry counters and the
    [member_done] event's cert fields record the outcome).  Note the
    bundle's digests bind to the IR as analyzed under [source_label];
    standalone [safeflow check-cert] on a fleet bundle therefore needs
    [--source-label] with the same label. *)

val members_of_dir : string -> string list
(** the [.c] files of a directory, sorted by name *)

val members_of_manifest : string -> string list
(** one path per line, [#] comments and blank lines skipped; relative
    paths resolve against the manifest's directory *)
