(* Hot-spot attribution (PR 9): rank functions and shm regions by where
   phase-2 analysis budget goes and why.  Input is the obligation ledger
   — per member in fleet mode, a single pseudo-member otherwise — so the
   ranking works identically for one file and for a thousand-member
   fleet (whose ledgers arrive over the worker result channel). *)

type row = {
  hs_member : string;  (* member path; "" for a single-file run *)
  hs_name : string;  (* function or region name *)
  hs_entries : int;  (* ledger entries attributed here (EXEMPT excluded) *)
  hs_failed : int;
  hs_queries : int;  (* Omega queries issued *)
  hs_avoided : int;  (* Omega queries skipped via interval proofs *)
  hs_time_ns : int;
  hs_score : float;
}

(* analysis time x obligation count x failure rate, with the rate
   Laplace-smoothed ((failed+1)/(entries+1)) so an expensive obligation-
   heavy function still ranks when everything discharges cleanly *)
let score ~time_ns ~entries ~failed =
  let time_ms = float_of_int time_ns /. 1e6 in
  let rate = (float_of_int failed +. 1.0) /. (float_of_int entries +. 1.0) in
  time_ms *. float_of_int entries *. rate

let rank_by key_of ?(top = 0) (members : (string * Ledger.entry list) list) :
    row list =
  let tbl : (string * string, int * int * int * int * int) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (m, entries) ->
      List.iter
        (fun (e : Ledger.entry) ->
          match key_of e with
          | None -> ()
          | Some name ->
            let key = (m, name) in
            let cnt, fail, q, av, ns =
              Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0, 0, 0, 0)
            in
            Hashtbl.replace tbl key
              ( cnt + 1,
                (if e.Ledger.l_discharge = Ledger.Failed then fail + 1 else fail),
                q + e.Ledger.l_queries,
                av + e.Ledger.l_avoided,
                ns + e.Ledger.l_ns ))
        entries)
    members;
  let rows =
    Hashtbl.fold
      (fun (m, name) (cnt, fail, q, av, ns) acc ->
        {
          hs_member = m;
          hs_name = name;
          hs_entries = cnt;
          hs_failed = fail;
          hs_queries = q;
          hs_avoided = av;
          hs_time_ns = ns;
          hs_score = score ~time_ns:ns ~entries:cnt ~failed:fail;
        }
        :: acc)
      tbl []
  in
  let rows =
    List.sort
      (fun a b ->
        match compare b.hs_score a.hs_score with
        | 0 -> compare (a.hs_member, a.hs_name) (b.hs_member, b.hs_name)
        | c -> c)
      rows
  in
  if top > 0 then List.filteri (fun i _ -> i < top) rows else rows

let rank ?top members =
  rank_by ?top
    (fun e -> if String.equal e.Ledger.l_rule "EXEMPT" then None else Some e.Ledger.l_func)
    members

let rank_regions ?top members =
  rank_by ?top
    (fun e -> if String.equal e.Ledger.l_region "" then None else Some e.Ledger.l_region)
    members

let rows_json rows =
  let b = Buffer.create 512 in
  Buffer.add_char b '[';
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"member\":\"%s\",\"name\":\"%s\",\"entries\":%d,\"failed\":%d,\"queries\":%d,\"avoided\":%d,\"time_ms\":%.3f,\"score\":%.6f}"
           (Jsonlite.escape r.hs_member) (Jsonlite.escape r.hs_name) r.hs_entries
           r.hs_failed r.hs_queries r.hs_avoided
           (float_of_int r.hs_time_ns /. 1e6)
           r.hs_score))
    rows;
  Buffer.add_char b ']';
  Buffer.contents b

let pp_rows ppf (rows : row list) =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "%-32s %-20s %7s %6s %7s %8s %10s@," "name" "member" "entries"
    "failed" "queries" "time" "score";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-32s %-20s %7d %6d %7d %7.2fms %10.3f@," r.hs_name
        (if String.equal r.hs_member "" then "-"
         else Filename.basename r.hs_member)
        r.hs_entries r.hs_failed r.hs_queries
        (float_of_int r.hs_time_ns /. 1e6)
        r.hs_score)
    rows;
  Fmt.pf ppf "@]"
