(** Hot-spot attribution (PR 9): rank functions and shm regions by
    analysis cost and obligation pressure, from the phase-2 obligation
    ledger ({!Ledger}).  Works identically for a single file and for a
    fleet — members' ledgers arrive over the worker result channel
    ({!Fleet.member_result}[.mr_ledger]) — answering "which member and
    which function is burning the budget, and why". *)

type row = {
  hs_member : string;  (** member path; [""] for a single-file run *)
  hs_name : string;  (** function or region name *)
  hs_entries : int;  (** ledger entries attributed here (EXEMPT excluded) *)
  hs_failed : int;
  hs_queries : int;  (** Omega queries issued *)
  hs_avoided : int;  (** Omega queries skipped via interval proofs *)
  hs_time_ns : int;
  hs_score : float;
}

val score : time_ns:int -> entries:int -> failed:int -> float
(** analysis time × obligation count × failure rate, the rate
    Laplace-smoothed ([(failed+1)/(entries+1)]) so obligation-heavy but
    clean functions still rank by cost *)

val rank : ?top:int -> (string * Ledger.entry list) list -> row list
(** per-function ranking over [(member path, ledger)] pairs, highest
    score first (ties broken by name for determinism); [top] truncates
    (0 or absent = all) *)

val rank_regions : ?top:int -> (string * Ledger.entry list) list -> row list
(** same, grouped by shm region name (entries without a region are
    skipped) *)

val rows_json : row list -> string
(** rows as a JSON array (the [functions] / [regions] payloads of
    [safeflow hotspots --json]) *)

val pp_rows : Format.formatter -> row list -> unit
(** aligned human-readable table *)
