(** Interning (hash-consing) support for the sparse phase-3 engine: see
    the interface for the rationale.  The reverse array grows by
    doubling; ids are dense and start at 0, so clients can mirror any
    per-entity attribute in a plain array. *)

type 'a t = {
  tbl : ('a, int) Hashtbl.t;
  mutable rev : 'a array;
  mutable len : int;
}

let create n = { tbl = Hashtbl.create n; rev = [||]; len = 0 }

let c_hits = Telemetry.counter "intern.hits"
let c_misses = Telemetry.counter "intern.misses"

let intern t x =
  match Hashtbl.find_opt t.tbl x with
  | Some i ->
    Telemetry.incr c_hits;
    i
  | None ->
    Telemetry.incr c_misses;
    let i = t.len in
    if i = Array.length t.rev then begin
      let cap = max 64 (2 * Array.length t.rev) in
      let arr = Array.make cap x in
      Array.blit t.rev 0 arr 0 t.len;
      t.rev <- arr
    end;
    t.rev.(i) <- x;
    t.len <- i + 1;
    Hashtbl.replace t.tbl x i;
    i

let get t i = t.rev.(i)

let length t = t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f i t.rev.(i)
  done

let to_array t = Array.sub t.rev 0 t.len

module Packed = struct
  (* Open-addressed (linear probing) int-key hash table mapping packed
     integer keys to dense ids.  Compared to [int t] above this avoids
     the per-entry box and bucket list of [Hashtbl]: probing walks a flat
     int array.  [ids.(slot) = -1] marks an empty slot, so any int —
     including negative ones — is a valid key.  Load is kept below 1/2
     by doubling. *)
  type t = {
    mutable keys : int array;
    mutable ids : int array;  (** -1 = empty slot *)
    mutable mask : int;  (** capacity - 1; capacity is a power of two *)
    mutable len : int;
  }

  let create n =
    let cap = ref 16 in
    while !cap < 2 * n do
      cap := !cap * 2
    done;
    { keys = Array.make !cap 0; ids = Array.make !cap (-1); mask = !cap - 1; len = 0 }

  (* Fibonacci-style multiplicative mixing; the constant is
     0x2545F4914F6CDD1D truncated to OCaml's 63-bit int range. *)
  let slot_of mask k =
    let h = k * 0x2545F4914F6CDD1 in
    (h lxor (h lsr 29)) land mask

  let grow t =
    let cap' = 2 * (t.mask + 1) in
    let keys' = Array.make cap' 0 in
    let ids' = Array.make cap' (-1) in
    let mask' = cap' - 1 in
    for s = 0 to t.mask do
      let id = Array.unsafe_get t.ids s in
      if id >= 0 then begin
        let k = Array.unsafe_get t.keys s in
        let j = ref (slot_of mask' k) in
        while Array.unsafe_get ids' !j >= 0 do
          j := (!j + 1) land mask'
        done;
        Array.unsafe_set keys' !j k;
        Array.unsafe_set ids' !j id
      end
    done;
    t.keys <- keys';
    t.ids <- ids';
    t.mask <- mask'

  let intern t k =
    let j = ref (slot_of t.mask k) in
    let id = ref (Array.unsafe_get t.ids !j) in
    while !id >= 0 && Array.unsafe_get t.keys !j <> k do
      j := (!j + 1) land t.mask;
      id := Array.unsafe_get t.ids !j
    done;
    if !id >= 0 then begin
      Telemetry.incr c_hits;
      !id
    end
    else begin
      Telemetry.incr c_misses;
      let i = t.len in
      Array.unsafe_set t.keys !j k;
      Array.unsafe_set t.ids !j i;
      t.len <- i + 1;
      if 2 * t.len > t.mask then grow t;
      i
    end

  let find_opt t k =
    let j = ref (slot_of t.mask k) in
    let id = ref (Array.unsafe_get t.ids !j) in
    while !id >= 0 && Array.unsafe_get t.keys !j <> k do
      j := (!j + 1) land t.mask;
      id := Array.unsafe_get t.ids !j
    done;
    if !id >= 0 then Some !id else None

  let length t = t.len
end

module Ctx = struct
  type store = {
    ids : Assume.assumption list t;
    union_memo : (int * int, int) Hashtbl.t;
  }

  let create () = { ids = create 64; union_memo = Hashtbl.create 64 }

  let intern s l = intern s.ids (List.sort_uniq compare l)

  let get s i = get s.ids i

  let c_union_hits = Telemetry.counter "intern.ctx_union_hits"
  let c_union_misses = Telemetry.counter "intern.ctx_union_misses"

  let union s a b =
    if a = b then a
    else
      (* union is symmetric: normalize the memo key *)
      let key = if a < b then (a, b) else (b, a) in
      match Hashtbl.find_opt s.union_memo key with
      | Some u ->
        Telemetry.incr c_union_hits;
        u
      | None ->
        Telemetry.incr c_union_misses;
        let u = intern s (get s a @ get s b) in
        Hashtbl.replace s.union_memo key u;
        u

  let length s = length s.ids
end
