(** Interning (hash-consing) support for the sparse phase-3 engine: see
    the interface for the rationale.  The reverse array grows by
    doubling; ids are dense and start at 0, so clients can mirror any
    per-entity attribute in a plain array. *)

type 'a t = {
  tbl : ('a, int) Hashtbl.t;
  mutable rev : 'a array;
  mutable len : int;
}

let create n = { tbl = Hashtbl.create n; rev = [||]; len = 0 }

let c_hits = Telemetry.counter "intern.hits"
let c_misses = Telemetry.counter "intern.misses"

let intern t x =
  match Hashtbl.find_opt t.tbl x with
  | Some i ->
    Telemetry.incr c_hits;
    i
  | None ->
    Telemetry.incr c_misses;
    let i = t.len in
    if i = Array.length t.rev then begin
      let cap = max 64 (2 * Array.length t.rev) in
      let arr = Array.make cap x in
      Array.blit t.rev 0 arr 0 t.len;
      t.rev <- arr
    end;
    t.rev.(i) <- x;
    t.len <- i + 1;
    Hashtbl.replace t.tbl x i;
    i

let get t i = t.rev.(i)

let length t = t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f i t.rev.(i)
  done

module Ctx = struct
  type store = {
    ids : Assume.assumption list t;
    union_memo : (int * int, int) Hashtbl.t;
  }

  let create () = { ids = create 64; union_memo = Hashtbl.create 64 }

  let intern s l = intern s.ids (List.sort_uniq compare l)

  let get s i = get s.ids i

  let c_union_hits = Telemetry.counter "intern.ctx_union_hits"
  let c_union_misses = Telemetry.counter "intern.ctx_union_misses"

  let union s a b =
    if a = b then a
    else
      (* union is symmetric: normalize the memo key *)
      let key = if a < b then (a, b) else (b, a) in
      match Hashtbl.find_opt s.union_memo key with
      | Some u ->
        Telemetry.incr c_union_hits;
        u
      | None ->
        Telemetry.incr c_union_misses;
        let u = intern s (get s a @ get s b) in
        Hashtbl.replace s.union_memo key u;
        u

  let length s = length s.ids
end
