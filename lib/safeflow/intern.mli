(** Interning (hash-consing) support for the sparse phase-3 engine.

    The legacy engine keys its taint tables by structural values —
    [(string * assumption list * vid)] tuples — so every membership test
    structurally hashes a monitoring context.  This module maps such
    values to dense integer ids once, after which membership is an array
    lookup and context union is a memoized table hit. *)

(** A generic interner: structural value ⇄ dense id, ids start at 0. *)
type 'a t

val create : int -> 'a t

val intern : 'a t -> 'a -> int
(** id of [x], allocating the next dense id on first sight *)

val get : 'a t -> int -> 'a
(** inverse of {!intern}; O(1) *)

val length : 'a t -> int

val iter : (int -> 'a -> unit) -> 'a t -> unit

val to_array : 'a t -> 'a array
(** the interned values in id order (a fresh array of length
    {!length}) *)

(** Interner specialized to packed integer keys (open addressing over
    flat int arrays — no per-entry allocation, no structural hashing).
    The sparse engine packs taint-entity descriptors and (function id,
    context id) pairs into single ints and maps them to dense ids
    here. *)
module Packed : sig
  type t

  val create : int -> t
  (** capacity hint: expected number of distinct keys *)

  val intern : t -> int -> int
  (** dense id of the key, allocating the next id on first sight.
      Detect first sight by comparing {!length} before and after. *)

  val find_opt : t -> int -> int option
  (** id of the key if already interned *)

  val length : t -> int
end

(** Hash-consed monitoring contexts (canonical sorted assumption lists)
    with memoized union. *)
module Ctx : sig
  type store

  val create : unit -> store

  val intern : store -> Assume.assumption list -> int
  (** canonicalizes (sorts, dedups) before interning, so structurally
      equal contexts share one id *)

  val get : store -> int -> Assume.assumption list

  val union : store -> int -> int -> int
  (** id of the union of two contexts; memoized on the id pair *)

  val length : store -> int
end
