(* Obligation ledger (PR 9): one structured entry per A1/A2 bounds
   obligation and per P1–P3 restriction-check site, recording which
   prover discharged it, with what facts, and at what cost.

   The ledger is observability-only data: it is carried alongside the
   phase-2 result (and through the per-function cache, so warm runs
   reconcile exactly like cold ones) but never feeds into [Report.t] —
   reports stay byte-identical whether anyone looks at the ledger or
   not (the PR 3 invariant, asserted by test_engine_equiv.ml). *)

open Minic

type discharge =
  | Ranges  (* absint interval proof; no Omega query issued for this side *)
  | Omega_unsat  (* Omega decided Unsat on the raw constraint system *)
  | Omega_hyp  (* Omega Unsat only after absint range hypotheses were added *)
  | Const  (* constant index statically inside the declared bound *)
  | Site_ok  (* P1–P3 site examined and found clean *)
  | Assumed  (* obligation suspended: initializing (exempt) function *)
  | Failed  (* a violation (or undischarged Unknown) was reported *)

type entry = {
  l_rule : string;  (* "A1" | "A2" | "P1" | "P2" | "P3" | "EXEMPT" *)
  l_func : string;
  l_loc : Loc.t;
  l_region : string;  (* shm region / array symbol; "" when not tied to one *)
  l_discharge : discharge;
  l_counted : bool;  (* participates in Phase2.bounds_stats accounting *)
  l_queries : int;  (* Omega queries issued for this obligation *)
  l_avoided : int;  (* Omega queries skipped thanks to interval proofs *)
  l_cstrs : int;  (* constraint-system size handed to Omega (max over queries) *)
  l_hyps : int;  (* absint range hypotheses injected into Omega queries *)
  l_itv : (int * int) option;  (* interval fact used, when absint had one *)
  l_bound : int;  (* declared element count for bounds obligations; -1 n/a *)
  l_ns : int;  (* wall time spent deciding this entry, nanoseconds *)
}

let discharge_name = function
  | Ranges -> "ranges"
  | Omega_unsat -> "omega"
  | Omega_hyp -> "omega+ranges"
  | Const -> "const"
  | Site_ok -> "ok"
  | Assumed -> "assumed"
  | Failed -> "failed"

(* stable order for rendering: by function, then source location, then
   rule, then region — entry emission order is an implementation detail
   of the phase-2 traversal (and of cache hits) and must not leak *)
let compare_entry a b =
  compare
    (a.l_func, a.l_loc, a.l_rule, a.l_region, discharge_name a.l_discharge)
    (b.l_func, b.l_loc, b.l_rule, b.l_region, discharge_name b.l_discharge)

let sort entries = List.sort compare_entry entries

(* -- Reconciliation with Phase2.bounds_stats ------------------------------- *)

(* counted bounds obligations must reproduce the phase-2 summary
   exactly: ranges ↔ bs_ranges, omega(+ranges) ↔ bs_omega,
   failed ↔ bs_failed, and their sum ↔ bs_total *)
type recon = {
  r_ranges : int;
  r_omega : int;
  r_failed : int;
  r_total : int;
  r_queries : int;
  r_avoided : int;
}

let reconcile entries =
  let counted = List.filter (fun e -> e.l_counted) entries in
  let count p = List.length (List.filter p counted) in
  {
    r_ranges = count (fun e -> e.l_discharge = Ranges);
    r_omega =
      count (fun e -> e.l_discharge = Omega_unsat || e.l_discharge = Omega_hyp);
    r_failed = count (fun e -> e.l_discharge = Failed);
    r_total = List.length counted;
    r_queries = List.fold_left (fun a e -> a + e.l_queries) 0 counted;
    r_avoided = List.fold_left (fun a e -> a + e.l_avoided) 0 counted;
  }

(* -- JSON ------------------------------------------------------------------ *)

let esc = Jsonlite.escape

let entry_json b e =
  Buffer.add_string b
    (Printf.sprintf
       "{\"rule\":\"%s\",\"func\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"region\":\"%s\",\"discharge\":\"%s\",\"counted\":%b,\"queries\":%d,\"avoided\":%d,\"cstrs\":%d,\"hyps\":%d"
       (esc e.l_rule) (esc e.l_func) (esc e.l_loc.Loc.file) e.l_loc.Loc.line
       e.l_loc.Loc.col (esc e.l_region)
       (discharge_name e.l_discharge)
       e.l_counted e.l_queries e.l_avoided e.l_cstrs e.l_hyps);
  (match e.l_itv with
  | Some (lo, hi) ->
    Buffer.add_string b (Printf.sprintf ",\"itv\":[%d,%d]" lo hi)
  | None -> ());
  if e.l_bound >= 0 then
    Buffer.add_string b (Printf.sprintf ",\"bound\":%d" e.l_bound);
  Buffer.add_string b (Printf.sprintf ",\"us\":%.3f}" (float_of_int e.l_ns /. 1_000.0))

let entries_json entries =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      entry_json b e)
    (sort entries);
  Buffer.add_char b ']';
  Buffer.contents b

(* compact per-file summary, suitable for a Telemetry section *)
let summary_json entries =
  let r = reconcile entries in
  let by_discharge =
    List.fold_left
      (fun acc e ->
        let k = discharge_name e.l_discharge in
        let n = try List.assoc k acc with Not_found -> 0 in
        (k, n + 1) :: List.remove_assoc k acc)
      [] entries
  in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"entries\":%d,\"bounds\":{\"total\":%d,\"ranges\":%d,\"omega\":%d,\"failed\":%d,\"queries\":%d,\"avoided\":%d},\"discharge\":{"
       (List.length entries) r.r_total r.r_ranges r.r_omega r.r_failed
       r.r_queries r.r_avoided);
  List.iteri
    (fun i (k, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (esc k) n))
    (List.sort compare by_discharge);
  Buffer.add_string b "}}";
  Buffer.contents b
