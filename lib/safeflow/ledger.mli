(** Obligation ledger (PR 9): a structured audit trail recording, for
    every A1/A2 bounds obligation and every P1–P3 restriction-check
    site, {e which} prover discharged it, {e with what} facts (interval
    bounds, constraint-system size, query counts) and {e at what} cost.

    Entries ride alongside the phase-2 result — including through the
    per-function result cache, so a warm run reconciles exactly like a
    cold one — but never feed into {!Report.t}: reports are
    byte-identical with or without anyone reading the ledger (the PR 3
    telemetry invariant).  [safeflow audit] renders the ledger as a
    human tree or as [--audit-json] (schema [safeflow-audit/1]);
    [safeflow hotspots] ranks functions by it. *)

open Minic

(** how an obligation / site check was settled *)
type discharge =
  | Ranges  (** absint interval proof; no Omega query issued for this side *)
  | Omega_unsat  (** Omega decided Unsat on the raw constraint system *)
  | Omega_hyp
      (** Omega Unsat only after absint range hypotheses were injected *)
  | Const  (** constant index statically inside the declared bound *)
  | Site_ok  (** P1–P3 site examined and found clean *)
  | Assumed  (** obligation suspended: initializing (exempt) function *)
  | Failed  (** a violation (or undischarged Unknown) was reported *)

type entry = {
  l_rule : string;  (** "A1" | "A2" | "P1" | "P2" | "P3" | "EXEMPT" *)
  l_func : string;
  l_loc : Loc.t;
  l_region : string;
      (** shm region / array symbol; [""] when not tied to one *)
  l_discharge : discharge;
  l_counted : bool;
      (** participates in {!Phase2.bounds_stats} accounting: exactly the
          non-constant A1/A2 obligations, so counted entries reconcile
          with [bs_total]/[bs_ranges]/[bs_omega]/[bs_failed] *)
  l_queries : int;  (** Omega queries issued for this obligation *)
  l_avoided : int;  (** Omega queries skipped thanks to interval proofs *)
  l_cstrs : int;
      (** constraint-system size handed to Omega (max over its queries) *)
  l_hyps : int;  (** absint range hypotheses injected into Omega queries *)
  l_itv : (int * int) option;  (** interval fact used, when absint had one *)
  l_bound : int;  (** declared element count for bounds obligations; -1 n/a *)
  l_ns : int;  (** wall time spent deciding this entry, nanoseconds *)
}

val discharge_name : discharge -> string
(** stable lower-case name used in JSON and CLI output *)

val compare_entry : entry -> entry -> int

val sort : entry list -> entry list
(** stable rendering order (function, location, rule, region) —
    emission order is a phase-2 traversal detail and must not leak *)

(** sums over the [l_counted] entries, mirroring {!Phase2.bounds_stats} *)
type recon = {
  r_ranges : int;
  r_omega : int;  (** [Omega_unsat] + [Omega_hyp] *)
  r_failed : int;
  r_total : int;
  r_queries : int;
  r_avoided : int;
}

val reconcile : entry list -> recon

val entries_json : entry list -> string
(** the sorted entries as a JSON array (the [entries] payload of the
    [safeflow-audit/1] schema) *)

val summary_json : entry list -> string
(** compact JSON object: entry count, bounds reconciliation block, and
    per-discharge totals — attached as a Telemetry section and embedded
    in audit JSON *)
