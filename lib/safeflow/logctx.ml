(* Process-wide stderr log prefix.  A forked fleet worker sets
   "[worker N] " right after the fork; subsystems that print one-line
   verbose notes (cache recovery, absint range proofs) prepend
   [get ()] so interleaved fleet output stays attributable. *)

let prefix = ref ""

let set p = prefix := p

let get () = !prefix
