(** Process-wide stderr log prefix for verbose notes.

    Fleet workers set ["[worker N] "] immediately after forking;
    subsystems printing one-line [--verbose] notes prepend {!get} so
    output interleaved from several workers stays attributable.  Plain
    mutable state: set once per process before any concurrent
    printing. *)

val set : string -> unit

val get : unit -> string
(** current prefix; [""] outside fleet workers *)
