(** Phase 1 (paper §3.3): interprocedural identification of pointers to
    shared memory.

    Shared-memory pointers originate at loads of the globals bound by the
    initializing function's [shmvar] post-conditions; they then flow
    through casts, address arithmetic (geps), phis, arguments and return
    values.  Restriction P2 guarantees they never flow through other
    memory, which is what makes this phase precise.

    Facts are sets of (region, byte-offset) pairs, offsets collapsing to
    [Top] under non-constant indexing (an array in shared memory is
    treated as a single unit, §3.1).  Interprocedural propagation merges
    facts over call edges to a fixpoint, equivalent to the paper's
    bottom-up + top-down passes over call-graph SCCs. *)

open Minic
module Offset = Pointsto.Offset

module Rtgt = struct
  type t = { region : string; off : Offset.t }

  let compare = compare

  let pp ppf t = Fmt.pf ppf "%s%a" t.region Offset.pp t.off
end

module Rset = Set.Make (Rtgt)

type t = {
  facts : (string * Ssair.Ir.vid, Rset.t) Hashtbl.t;
  param_facts : (string * string, Rset.t) Hashtbl.t;
  ret_facts : (string, Rset.t) Hashtbl.t;
  shm : Shm.t;
  exempt : (string, unit) Hashtbl.t;
      (** functions reachable from an initializing function: restrictions
          and warnings are suspended there *)
  config : Config.t;
  mutable iterations : int;
}

let fact_get t k = Option.value ~default:Rset.empty (Hashtbl.find_opt t.facts k)
let param_get t k = Option.value ~default:Rset.empty (Hashtbl.find_opt t.param_facts k)
let ret_get t k = Option.value ~default:Rset.empty (Hashtbl.find_opt t.ret_facts k)

let add tbl k s =
  let old = Option.value ~default:Rset.empty (Hashtbl.find_opt tbl k) in
  let merged = Rset.union old s in
  if Rset.cardinal merged > Rset.cardinal old then begin
    Hashtbl.replace tbl k merged;
    true
  end
  else false

(** Shared-memory targets of an IR value in function [f]. *)
let value_shm t (f : Ssair.Ir.func) (v : Ssair.Ir.value) : Rset.t =
  match v with
  | Ssair.Ir.Vreg id -> fact_get t (f.fname, id)
  | Ssair.Ir.Vparam p -> param_get t (f.fname, p)
  | _ -> Rset.empty

let is_exempt t fname = Hashtbl.mem t.exempt fname

(** Every exempt (initializing) function, sorted — the functions whose
    phase-2 obligations are suspended and appear in the audit ledger as
    "assumed". *)
let exempt_functions t =
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) t.exempt [])

let coarsen t s =
  if t.config.Config.field_sensitive then s
  else Rset.map (fun x -> { x with Rtgt.off = Offset.Top }) s

let transfer t (prog : Ssair.Ir.program) (f : Ssair.Ir.func) (i : Ssair.Ir.instr) : bool =
  let changed = ref false in
  let self s = if add t.facts (f.fname, i.Ssair.Ir.iid) (coarsen t s) then changed := true in
  (match i.Ssair.Ir.idesc with
  | Ssair.Ir.Load { ptr = Ssair.Ir.Vglobal g; _ } -> (
    (* reading a shm-pointer global yields a pointer to its region *)
    match Shm.region t.shm g with
    | Some r -> self (Rset.singleton { Rtgt.region = r.Shm.r_name; off = Offset.Byte 0 })
    | None -> ())
  | Ssair.Ir.Load _ -> ()
  | Ssair.Ir.Gep { base; kind; idx } ->
    let base_s = value_shm t f base in
    if not (Rset.is_empty base_s) then begin
      let env = prog.Ssair.Ir.env in
      let delta =
        match kind with
        | Ssair.Ir.Gfield (sname, fname) -> (
          match Ty.field_offset env sname fname with
          | Some off -> Offset.Byte off
          | None -> Offset.Top)
        | Ssair.Ir.Gindex elt -> (
          match idx with
          | Ssair.Ir.Vint (n, _) -> Offset.Byte (Int64.to_int n * Ty.sizeof env elt)
          | _ -> Offset.Top)
      in
      self (Rset.map (fun x -> { x with Rtgt.off = Offset.add x.Rtgt.off delta }) base_s)
    end
  | Ssair.Ir.Cast { cval; _ } -> self (value_shm t f cval)
  | Ssair.Ir.Binop { lhs; rhs; _ } ->
    (* pointer arithmetic lowers to geps; comparisons produce ints.  The
       conservative union is only relevant for exotic code. *)
    self (value_shm t f lhs);
    self (value_shm t f rhs)
  | Ssair.Ir.Call { callee; args; _ } -> (
    match Ssair.Ir.find_func prog callee with
    | Some g ->
      List.iteri
        (fun k arg ->
          match List.nth_opt g.Ssair.Ir.fparams k with
          | Some (pname, _) ->
            let s = coarsen t (value_shm t f arg) in
            if add t.param_facts (g.Ssair.Ir.fname, pname) s then changed := true
          | None -> ())
        args;
      self (ret_get t g.Ssair.Ir.fname)
    | None -> ())
  | Ssair.Ir.Alloca _ | Ssair.Ir.Store _ | Ssair.Ir.Unop _ | Ssair.Ir.Annotation _ -> ());
  !changed

let transfer_phis t (f : Ssair.Ir.func) (b : Ssair.Ir.block) : bool =
  List.fold_left
    (fun changed (p : Ssair.Ir.phi) ->
      List.fold_left
        (fun ch (_, v) ->
          add t.facts (f.fname, p.Ssair.Ir.pid) (coarsen t (value_shm t f v)) || ch)
        changed p.Ssair.Ir.incoming)
    false b.Ssair.Ir.phis

let transfer_ret t (f : Ssair.Ir.func) (b : Ssair.Ir.block) : bool =
  match b.Ssair.Ir.termin with
  | Ssair.Ir.Ret (Some v) -> add t.ret_facts f.fname (coarsen t (value_shm t f v))
  | _ -> false

(** Run phase 1 over the whole program. *)
let run ?(config = Config.default) (prog : Ssair.Ir.program) (shm : Shm.t) : t =
  let t =
    {
      facts = Hashtbl.create 256;
      param_facts = Hashtbl.create 32;
      ret_facts = Hashtbl.create 32;
      shm;
      exempt = Hashtbl.create 8;
      config;
      iterations = 0;
    }
  in
  (* exempt set: functions reachable from initializing functions *)
  let tprog_stub =
    (* build a minimal call graph over IR functions *)
    let callees fname =
      match Ssair.Ir.find_func prog fname with
      | None -> []
      | Some f ->
        List.filter_map
          (fun i ->
            match i.Ssair.Ir.idesc with
            | Ssair.Ir.Call { callee; _ } when Ssair.Ir.find_func prog callee <> None ->
              Some callee
            | _ -> None)
          (Ssair.Ir.all_instrs f)
    in
    callees
  in
  let rec mark_exempt fn =
    if not (Hashtbl.mem t.exempt fn) then begin
      Hashtbl.replace t.exempt fn ();
      List.iter mark_exempt (tprog_stub fn)
    end
  in
  List.iter mark_exempt shm.Shm.init_funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    t.iterations <- t.iterations + 1;
    List.iter
      (fun (f : Ssair.Ir.func) ->
        if not (is_exempt t f.fname) then
          List.iter
            (fun b ->
              if transfer_phis t f b then changed := true;
              List.iter (fun i -> if transfer t prog f i then changed := true) b.Ssair.Ir.instrs;
              if transfer_ret t f b then changed := true)
            f.Ssair.Ir.blocks)
      prog.Ssair.Ir.funcs
  done;
  t

(** Is this address value a pointer into shared memory? *)
let shm_targets = value_shm
