(** Phase 2 (paper §3.3): enforcement of the language restrictions on
    shared-memory pointer usage.

    - P1: shared memory must not be deallocated before the end of [main];
    - P2: shared-memory pointers must not be stored into memory (no
      aliasing through memory);
    - P3: no casts of shared-memory pointers to incompatible pointer types
      or to integers;
    - A1/A2: array indexing within shared memory must be provably in
      bounds; index expressions must be affine in loop induction
      variables.  Affine constraints are generated from dominating branch
      conditions and induction-variable structure and discharged by the
      {!Omega} integer feasibility test.

    Initializing functions (and their callees) are exempt (§3.2.1). *)

open Minic
module Offset = Pointsto.Offset

let dealloc_functions = [ "shmdt"; "shmctl"; "free" ]

(* -- Affine abstraction of integer SSA values -------------------------------- *)

type affine_ctx = {
  func : Ssair.Ir.func;
  defs : (Ssair.Ir.vid, Ssair.Ir.def_site) Hashtbl.t;
  dom : Ssair.Dom.tree;
  memo : (Ssair.Ir.vid, Omega.Linexpr.t option) Hashtbl.t;
  mutable visiting : Ssair.Ir.vid list;  (* cycle guard: phis under expansion *)
  unknowns : (Ssair.Ir.value, string) Hashtbl.t;
      (* distinct unresolvable values -> fresh "u<n>" symbols *)
  mutable n_unknowns : int;
}

let mk_affine_ctx f =
  {
    func = f;
    defs = Ssair.Ir.def_table f;
    dom = Ssair.Dom.compute f;
    memo = Hashtbl.create 32;
    visiting = [];
    unknowns = Hashtbl.create 4;
    n_unknowns = 0;
  }

let sym_of_vid id = Fmt.str "v%d" id
let sym_of_param p = "p_" ^ p

(* Unresolvable values (floats, globals, strings, undef) become fresh
   unconstrained Omega symbols.  These live in their own "u<n>"
   namespace, disjoint from the "v<id>" vid symbols and the "p_<name>"
   parameter symbols: the previous scheme hashed the value into the vid
   space ([sym_of_vid (Hashtbl.hash v land 0xffffff)]), which could
   collide with a real vid — or two distinct unknowns with each other —
   and silently merge independent values into one solver variable.
   Symbols are memoized per value within one [affine_ctx], so repeated
   uses of the same global still share one symbol. *)
let sym_of_unknown ctx (v : Ssair.Ir.value) =
  match Hashtbl.find_opt ctx.unknowns v with
  | Some s -> s
  | None ->
    let s = Fmt.str "u%d" ctx.n_unknowns in
    ctx.n_unknowns <- ctx.n_unknowns + 1;
    Hashtbl.replace ctx.unknowns v s;
    s

(** Affine view of a value: [Some e] when expressible, [None] otherwise
    (opaque values become fresh unconstrained symbols, so the result is
    always [Some]; [None] is reserved for non-integer shapes). *)
let rec affine_of_value ctx (v : Ssair.Ir.value) : Omega.Linexpr.t =
  match v with
  | Ssair.Ir.Vint (n, _) -> Omega.Linexpr.const (Int64.to_int n)
  | Ssair.Ir.Vparam p -> Omega.Linexpr.var (sym_of_param p)
  | Ssair.Ir.Vreg id -> affine_of_vid ctx id
  | Ssair.Ir.Vfloat _ | Ssair.Ir.Vglobal _ | Ssair.Ir.Vstr _ | Ssair.Ir.Vundef _ ->
    Omega.Linexpr.var (sym_of_unknown ctx v)

and affine_of_vid ctx id : Omega.Linexpr.t =
  if List.mem id ctx.visiting then Omega.Linexpr.var (sym_of_vid id)
  else
    match Hashtbl.find_opt ctx.memo id with
    | Some (Some e) -> e
    | Some None -> Omega.Linexpr.var (sym_of_vid id)
    | None ->
      let e =
        match Hashtbl.find_opt ctx.defs id with
        | Some (Ssair.Ir.Def_instr (i, _)) -> (
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Binop { op = Ast.Add; lhs; rhs; _ } ->
            Omega.Linexpr.add (affine_of_value ctx lhs) (affine_of_value ctx rhs)
          | Ssair.Ir.Binop { op = Ast.Sub; lhs; rhs; _ } ->
            Omega.Linexpr.sub (affine_of_value ctx lhs) (affine_of_value ctx rhs)
          | Ssair.Ir.Binop { op = Ast.Mul; lhs = Ssair.Ir.Vint (n, _); rhs; _ } ->
            Omega.Linexpr.scale (Int64.to_int n) (affine_of_value ctx rhs)
          | Ssair.Ir.Binop { op = Ast.Mul; lhs; rhs = Ssair.Ir.Vint (n, _); _ } ->
            Omega.Linexpr.scale (Int64.to_int n) (affine_of_value ctx lhs)
          | Ssair.Ir.Cast { to_ty; cval; _ }
            when Ty.is_integer to_ty ->
            affine_of_value ctx cval
          | _ -> Omega.Linexpr.var (sym_of_vid id)
          )
        | Some (Ssair.Ir.Def_phi (p, _)) ->
          ignore p;
          Omega.Linexpr.var (sym_of_vid id)
        | None -> Omega.Linexpr.var (sym_of_vid id)
      in
      Hashtbl.replace ctx.memo id (Some e);
      e

(** Constraints from the comparison [lhs op rhs] holding ([polarity] true)
    or failing. *)
let constraint_of_cmp ctx op lhs rhs polarity : Omega.cstr option =
  let a = affine_of_value ctx lhs and b = affine_of_value ctx rhs in
  let open Omega in
  match (op, polarity) with
  | Ast.Lt, true -> Some (lt a b)
  | Ast.Lt, false -> Some (ge a b)
  | Ast.Le, true -> Some (le a b)
  | Ast.Le, false -> Some (gt a b)
  | Ast.Gt, true -> Some (gt a b)
  | Ast.Gt, false -> Some (le a b)
  | Ast.Ge, true -> Some (ge a b)
  | Ast.Ge, false -> Some (lt a b)
  | Ast.Eq, true -> Some (eq a b)
  | Ast.Ne, false -> Some (eq a b)
  | _ -> None

(** Constraints implied by boolean value [id] holding with [pol]arity.
    Unwraps normalizations ((x != 0), (x == 0), !x) and recognizes the
    short-circuit phi patterns produced by lowering [&&] and [||], so that
    compound loop guards like [k >= 0 && k < n] contribute both
    conjuncts. *)
let rec cond_constraints ctx id pol depth : Omega.cstr list =
  if depth > 8 then []
  else
    match Hashtbl.find_opt ctx.defs id with
    | Some (Ssair.Ir.Def_instr ({ idesc = Ssair.Ir.Binop { op; lhs; rhs; _ }; _ }, _)) -> (
      match (op, lhs, rhs) with
      | Ast.Ne, Ssair.Ir.Vreg x, Ssair.Ir.Vint (0L, _) ->
        cond_constraints ctx x pol (depth + 1)
      | Ast.Eq, Ssair.Ir.Vreg x, Ssair.Ir.Vint (0L, _) ->
        cond_constraints ctx x (not pol) (depth + 1)
      | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), _, _ ->
        Option.to_list (constraint_of_cmp ctx op lhs rhs pol)
      | _ -> [])
    | Some
        (Ssair.Ir.Def_instr
           ({ idesc = Ssair.Ir.Unop { uop = Ast.Lnot; operand = Ssair.Ir.Vreg x; _ }; _ }, _))
      ->
      cond_constraints ctx x (not pol) (depth + 1)
    | Some (Ssair.Ir.Def_phi (p, pblk)) -> (
      (* short-circuit shapes: one incoming edge carries the left operand
         and is the edge taken when the left operand decides the result *)
      match p.Ssair.Ir.incoming with
      | [ (b1, v1); (b2, v2) ] -> (
        let classify (ba, va) (br, vr) =
          (* does [ba] branch on [va] with the phi block as the
             short-circuit target? *)
          match ((Ssair.Ir.block ctx.func ba).Ssair.Ir.termin, va) with
          | Ssair.Ir.Cbr (Ssair.Ir.Vreg c, tb, eb), Ssair.Ir.Vreg vc
            when vc = c && tb <> eb ->
            if eb = pblk && tb = br then Some (`And, c, vr)
            else if tb = pblk && eb = br then Some (`Or, c, vr)
            else None
          | _ -> None
        in
        let shape =
          match classify (b1, v1) (b2, v2) with
          | Some s -> Some s
          | None -> classify (b2, v2) (b1, v1)
        in
        match shape with
        | Some (`And, c, vr) when pol -> (
          (* (a && b) true: both hold *)
          match vr with
          | Ssair.Ir.Vreg r ->
            cond_constraints ctx c true (depth + 1)
            @ cond_constraints ctx r true (depth + 1)
          | _ -> cond_constraints ctx c true (depth + 1))
        | Some (`Or, c, vr) when not pol -> (
          (* (a || b) false: both fail *)
          match vr with
          | Ssair.Ir.Vreg r ->
            cond_constraints ctx c false (depth + 1)
            @ cond_constraints ctx r false (depth + 1)
          | _ -> cond_constraints ctx c false (depth + 1))
        | _ -> [])
      | _ -> [])
    | _ -> []

(** Branch conditions known to hold at [bid]: climb the dominator tree;
    a branch's polarity is known when the chain enters the branch through
    a successor whose only predecessor is the branching block (edge
    dominance). *)
let dominating_constraints ctx bid : Omega.cstr list =
  let preds = Ssair.Ir.predecessors ctx.func in
  let single_pred blk from =
    match Hashtbl.find_opt preds blk with Some [ p ] -> p = from | _ -> false
  in
  let rec climb child acc =
    match Ssair.Dom.idom ctx.dom child with
    | None -> acc
    | Some parent when parent = child -> acc
    | Some parent ->
      let acc =
        match (Ssair.Ir.block ctx.func parent).Ssair.Ir.termin with
        | Ssair.Ir.Cbr (Ssair.Ir.Vreg c, tb, eb) when tb <> eb -> (
          let polarity =
            if child = tb && single_pred child parent then Some true
            else if child = eb && single_pred child parent then Some false
            else None
          in
          match polarity with
          | None -> acc
          | Some pol -> cond_constraints ctx c pol 0 @ acc)
        | _ -> acc
      in
      climb parent acc
  in
  climb bid []

(** Induction constraints for the phi symbols appearing in [e]: a phi
    whose non-phi incomings are affine and whose self-updates all step by
    a non-negative (resp. non-positive) constant is bounded below (resp.
    above) by its initial values. *)
let induction_constraints ctx (e : Omega.Linexpr.t) : Omega.cstr list =
  let cs = ref [] in
  List.iter
    (fun sym ->
      match
        if String.length sym > 1 && sym.[0] = 'v' then int_of_string_opt (String.sub sym 1 (String.length sym - 1))
        else None
      with
      | None -> ()
      | Some id -> (
        match Hashtbl.find_opt ctx.defs id with
        | Some (Ssair.Ir.Def_phi (p, _)) ->
          let steps = ref [] and inits = ref [] and ok = ref true in
          List.iter
            (fun (_, v) ->
              match v with
              | Ssair.Ir.Vreg w -> (
                match Hashtbl.find_opt ctx.defs w with
                | Some
                    (Ssair.Ir.Def_instr
                       ({ idesc = Ssair.Ir.Binop { op; lhs; rhs; _ }; _ }, _)) -> (
                  match (op, lhs, rhs) with
                  | Ast.Add, Ssair.Ir.Vreg x, Ssair.Ir.Vint (c, _) when x = p.Ssair.Ir.pid ->
                    steps := Int64.to_int c :: !steps
                  | Ast.Add, Ssair.Ir.Vint (c, _), Ssair.Ir.Vreg x when x = p.Ssair.Ir.pid ->
                    steps := Int64.to_int c :: !steps
                  | Ast.Sub, Ssair.Ir.Vreg x, Ssair.Ir.Vint (c, _) when x = p.Ssair.Ir.pid ->
                    steps := -Int64.to_int c :: !steps
                  | _ ->
                    ctx.visiting <- p.Ssair.Ir.pid :: ctx.visiting;
                    inits := affine_of_value ctx v :: !inits;
                    ctx.visiting <- List.tl ctx.visiting)
                | _ ->
                  ctx.visiting <- p.Ssair.Ir.pid :: ctx.visiting;
                  inits := affine_of_value ctx v :: !inits;
                  ctx.visiting <- List.tl ctx.visiting)
              | Ssair.Ir.Vint (n, _) -> inits := Omega.Linexpr.const (Int64.to_int n) :: !inits
              | Ssair.Ir.Vparam q -> inits := Omega.Linexpr.var (sym_of_param q) :: !inits
              | _ -> ok := false)
            p.Ssair.Ir.incoming;
          if !ok && !inits <> [] then begin
            let phi_e = Omega.Linexpr.var sym in
            if List.for_all (fun s -> s >= 0) !steps then
              List.iter (fun init -> cs := Omega.ge phi_e init :: !cs) !inits
            else if List.for_all (fun s -> s <= 0) !steps then
              List.iter (fun init -> cs := Omega.le phi_e init :: !cs) !inits
          end
        | _ -> ()))
    (Omega.Linexpr.vars e);
  !cs

(* -- The checker -------------------------------------------------------------- *)

(** How the A1/A2 array-bounds obligations of a run were discharged.  An
    obligation is one (indexing gep, region target) pair with a
    non-constant index.  [bs_ranges] counts obligations proved in bounds
    by the value-range analysis alone (no Omega query), [bs_omega] those
    needing at least one Omega query but reported clean, [bs_failed]
    those that produced a violation.  [bs_omega_avoided] counts the
    individual solver queries skipped thanks to ranges (two per fully
    discharged obligation, one when only one side was range-proven). *)
type bounds_stats = {
  bs_total : int;
  bs_ranges : int;
  bs_omega : int;
  bs_failed : int;
  bs_omega_avoided : int;
}

let bounds_zero =
  { bs_total = 0; bs_ranges = 0; bs_omega = 0; bs_failed = 0; bs_omega_avoided = 0 }

let bounds_add a b =
  {
    bs_total = a.bs_total + b.bs_total;
    bs_ranges = a.bs_ranges + b.bs_ranges;
    bs_omega = a.bs_omega + b.bs_omega;
    bs_failed = a.bs_failed + b.bs_failed;
    bs_omega_avoided = a.bs_omega_avoided + b.bs_omega_avoided;
  }

type state = {
  prog : Ssair.Ir.program;
  p1 : Phase1.t;
  config : Config.t;
  absint : Absint.t option;
  mutable violations : Report.violation list;
  mutable infos : Report.info list;
  mutable bounds : bounds_stats;
  mutable ledger : Ledger.entry list;  (* newest first; audit trail only *)
}

(* The obligation ledger is collected unconditionally (like Telemetry
   sections): it rides the phase-2 result through the cache, so a warm
   run reconciles exactly like a cold one, and it never feeds into
   [Report.t].  [Telemetry.now_ns] is a raw CLOCK_MONOTONIC read, cheap
   enough to pay per obligation rather than per instruction. *)
let ledger_add st (e : Ledger.entry) = st.ledger <- e :: st.ledger

(* representative region name for a P1-P3 site touching shm *)
let region_name targets =
  match Phase1.Rset.min_elt_opt targets with
  | Some tgt -> tgt.Phase1.Rtgt.region
  | None -> ""

let site_entry ~rule ~func ~loc ~region ~(discharge : Ledger.discharge) =
  {
    Ledger.l_rule = rule;
    l_func = func;
    l_loc = loc;
    l_region = region;
    l_discharge = discharge;
    l_counted = false;
    l_queries = 0;
    l_avoided = 0;
    l_cstrs = 0;
    l_hyps = 0;
    l_itv = None;
    l_bound = -1;
    l_ns = 0;
  }

let violate st rule (f : Ssair.Ir.func) loc fmt =
  Fmt.kstr
    (fun msg ->
      st.violations <-
        { Report.v_rule = rule; v_func = f.fname; v_loc = loc; v_msg = msg }
        :: st.violations)
    fmt

let note st (f : Ssair.Ir.func) loc fmt =
  Fmt.kstr
    (fun msg ->
      st.infos <-
        { Report.i_code = Report.code_range_proved; i_func = f.fname; i_loc = loc;
          i_msg = msg }
        :: st.infos)
    fmt

(** Does function [fname] (transitively) load or store shared memory? *)
let shm_accessors (prog : Ssair.Ir.program) (p1 : Phase1.t) : (string, unit) Hashtbl.t =
  let direct = Hashtbl.create 16 in
  List.iter
    (fun (f : Ssair.Ir.func) ->
      List.iter
        (fun i ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Load { ptr; _ } | Ssair.Ir.Store { ptr; _ } ->
            if not (Phase1.Rset.is_empty (Phase1.shm_targets p1 f ptr)) then
              Hashtbl.replace direct f.fname ()
          | _ -> ())
        (Ssair.Ir.all_instrs f))
    prog.Ssair.Ir.funcs;
  (* close over the call graph: callers of accessors access too *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ssair.Ir.func) ->
        if not (Hashtbl.mem direct f.fname) then
          let calls_accessor =
            List.exists
              (fun i ->
                match i.Ssair.Ir.idesc with
                | Ssair.Ir.Call { callee; _ } -> Hashtbl.mem direct callee
                | _ -> false)
              (Ssair.Ir.all_instrs f)
          in
          if calls_accessor then begin
            Hashtbl.replace direct f.fname ();
            changed := true
          end)
      prog.Ssair.Ir.funcs
  done;
  direct

let check_p1 st (f : Ssair.Ir.func) accessors =
  List.iter
    (fun (b : Ssair.Ir.block) ->
      List.iteri
        (fun pos i ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Call { callee; args; _ } when List.mem callee dealloc_functions ->
            let arg_targets =
              List.fold_left
                (fun acc a -> Phase1.Rset.union acc (Phase1.shm_targets st.p1 f a))
                Phase1.Rset.empty args
            in
            let on_shm = not (Phase1.Rset.is_empty arg_targets) in
            let p1_entry discharge =
              ledger_add st
                (site_entry ~rule:"P1" ~func:f.fname ~loc:i.Ssair.Ir.iloc
                   ~region:(region_name arg_targets) ~discharge)
            in
            if on_shm then
              if not (String.equal f.fname "main") then begin
                p1_entry Ledger.Failed;
                violate st Report.P1 f i.Ssair.Ir.iloc
                  "shared memory deallocated outside main"
              end
              else begin
                (* allowed only at the end of main: no shared-memory access
                   may follow on any path *)
                let tail_instrs =
                  List.filteri (fun k _ -> k > pos) b.Ssair.Ir.instrs
                in
                let instr_touches_shm j =
                  match j.Ssair.Ir.idesc with
                  | Ssair.Ir.Load { ptr; _ } | Ssair.Ir.Store { ptr; _ } ->
                    not (Phase1.Rset.is_empty (Phase1.shm_targets st.p1 f ptr))
                  | Ssair.Ir.Call { callee = c; _ } -> Hashtbl.mem accessors c
                  | _ -> false
                in
                let later_same_block = List.exists instr_touches_shm tail_instrs in
                (* blocks reachable from here *)
                let seen = Hashtbl.create 16 in
                let rec reach bid =
                  if not (Hashtbl.mem seen bid) then begin
                    Hashtbl.replace seen bid ();
                    match Ssair.Ir.block_opt f bid with
                    | Some blk -> List.iter reach (Ssair.Ir.successors f blk)
                    | None -> ()
                  end
                in
                List.iter reach (Ssair.Ir.successors f b);
                let later_other_blocks =
                  Hashtbl.fold
                    (fun bid () acc ->
                      acc
                      ||
                      match Ssair.Ir.block_opt f bid with
                      | Some blk -> List.exists instr_touches_shm blk.Ssair.Ir.instrs
                      | None -> false)
                    seen false
                in
                if later_same_block || later_other_blocks then begin
                  p1_entry Ledger.Failed;
                  violate st Report.P1 f i.Ssair.Ir.iloc
                    "shared memory deallocated before the end of main"
                end
                else p1_entry Ledger.Site_ok
              end
          | _ -> ())
        b.Ssair.Ir.instrs)
    f.Ssair.Ir.blocks

let check_p2_p3 st (f : Ssair.Ir.func) =
  let env = st.prog.Ssair.Ir.env in
  List.iter
    (fun (i : Ssair.Ir.instr) ->
      match i.Ssair.Ir.idesc with
      | Ssair.Ir.Store { sval; _ } ->
        let targets = Phase1.shm_targets st.p1 f sval in
        if not (Phase1.Rset.is_empty targets) then begin
          ledger_add st
            (site_entry ~rule:"P2" ~func:f.fname ~loc:i.Ssair.Ir.iloc
               ~region:(region_name targets) ~discharge:Ledger.Failed);
          violate st Report.P2 f i.Ssair.Ir.iloc
            "shared-memory pointer stored into memory (aliasing through memory)"
        end
      | Ssair.Ir.Cast { from_ty; to_ty; cval } -> (
        let targets = Phase1.shm_targets st.p1 f cval in
        if not (Phase1.Rset.is_empty targets) then
          let p3_entry discharge =
            ledger_add st
              (site_entry ~rule:"P3" ~func:f.fname ~loc:i.Ssair.Ir.iloc
                 ~region:(region_name targets) ~discharge)
          in
          match (Ty.resolve env from_ty, Ty.resolve env to_ty) with
          | Ty.Ptr a, Ty.Ptr b ->
            if not (Ty.compatible env a b) then begin
              p3_entry Ledger.Failed;
              violate st Report.P3 f i.Ssair.Ir.iloc
                "shared-memory pointer cast to incompatible pointer type (%a to %a)"
                Ty.pp from_ty Ty.pp to_ty
            end
            else p3_entry Ledger.Site_ok
          | Ty.Ptr _, t when Ty.is_integer t ->
            p3_entry Ledger.Failed;
            violate st Report.P3 f i.Ssair.Ir.iloc
              "shared-memory pointer cast to integer"
          | _ -> p3_entry Ledger.Site_ok)
      | _ -> ())
    (Ssair.Ir.all_instrs f)

(* Range hypotheses carry concrete interval bounds into the Omega
   queries.  Constants beyond this magnitude add no precision over the
   ±inf they approximate and risk coefficient blow-up during
   elimination, so they are dropped. *)
let hyp_clamp = 1 lsl 40

(** Finite range facts for the symbols of [e] at block [bid], as Omega
    constraints ([lo <= sym <= hi]). *)
let range_hypotheses aq ~bid (e : Omega.Linexpr.t) : Omega.cstr list =
  match aq with
  | None -> []
  | Some q ->
    List.concat_map
      (fun sym ->
        match Absint.range_of_sym q ~at:bid sym with
        | None -> []
        | Some itv ->
          let v = Omega.Linexpr.var sym in
          let lo =
            match Absint.Itv.finite_lo itv with
            | Some l when abs l <= hyp_clamp -> [ Omega.ge v (Omega.Linexpr.const l) ]
            | _ -> []
          in
          let hi =
            match Absint.Itv.finite_hi itv with
            | Some h when abs h <= hyp_clamp -> [ Omega.le v (Omega.Linexpr.const h) ]
            | _ -> []
          in
          lo @ hi)
      (Omega.Linexpr.vars e)

(** Check one shm array access: gep with non-trivial index. *)
let check_bounds st ctx aq (f : Ssair.Ir.func) (i : Ssair.Ir.instr) bid base kind idx =
  let env = st.prog.Ssair.Ir.env in
  let targets = Phase1.shm_targets st.p1 f base in
  if not (Phase1.Rset.is_empty targets) then
    match kind with
    | Ssair.Ir.Gfield _ -> () (* field offsets are statically in range by typing *)
    | Ssair.Ir.Gindex elt ->
      let elsize = max 1 (Ty.sizeof env elt) in
      Phase1.Rset.iter
        (fun tgt ->
          match Shm.region st.p1.Phase1.shm tgt.Phase1.Rtgt.region with
          | None -> ()
          | Some r -> (
            match tgt.Phase1.Rtgt.off with
            | Offset.Top ->
              ledger_add st
                (site_entry ~rule:"A2" ~func:f.fname ~loc:i.Ssair.Ir.iloc
                   ~region:r.Shm.r_name ~discharge:Ledger.Failed);
              violate st Report.A2 f i.Ssair.Ir.iloc
                "indexing shared array in region %s from a statically unknown base offset"
                r.Shm.r_name
            | Offset.Byte base_off -> (
              let avail = r.Shm.r_size - base_off in
              let nelems = avail / elsize in
              let bounds_entry ~rule ~discharge ~counted ~queries ~avoided ~cstrs
                  ~hyps ~itv ~ns =
                ledger_add st
                  {
                    Ledger.l_rule = rule;
                    l_func = f.fname;
                    l_loc = i.Ssair.Ir.iloc;
                    l_region = r.Shm.r_name;
                    l_discharge = discharge;
                    l_counted = counted;
                    l_queries = queries;
                    l_avoided = avoided;
                    l_cstrs = cstrs;
                    l_hyps = hyps;
                    l_itv = itv;
                    l_bound = nelems;
                    l_ns = ns;
                  }
              in
              match idx with
              | Ssair.Ir.Vint (n, _) ->
                let n = Int64.to_int n in
                if n < 0 || n >= nelems then begin
                  bounds_entry ~rule:"A1" ~discharge:Ledger.Failed ~counted:false
                    ~queries:0 ~avoided:0 ~cstrs:0 ~hyps:0 ~itv:None ~ns:0;
                  violate st Report.A1 f i.Ssair.Ir.iloc
                    "constant index %d outside region %s (%d elements of %d bytes)" n
                    r.Shm.r_name nelems elsize
                end
                else
                  bounds_entry ~rule:"A1" ~discharge:Ledger.Const ~counted:false
                    ~queries:0 ~avoided:0 ~cstrs:0 ~hyps:0 ~itv:None ~ns:0
              | _ ->
                let tick d = st.bounds <- bounds_add st.bounds d in
                tick { bounds_zero with bs_total = 1 };
                let t0 = Telemetry.now_ns () in
                (* range verdicts first: each side an interval proves in
                   bounds skips its Omega query outright *)
                let rng = Option.map (fun q -> Absint.range_of_value q ~at:bid idx) aq in
                let lo_proved =
                  match rng with
                  | Some r -> (
                    Absint.Itv.is_bot r
                    || match Absint.Itv.finite_lo r with Some l -> l >= 0 | None -> false)
                  | None -> false
                in
                let hi_proved =
                  match rng with
                  | Some r -> (
                    Absint.Itv.is_bot r
                    ||
                    match Absint.Itv.finite_hi r with
                    | Some h -> h <= nelems - 1
                    | None -> false)
                  | None -> false
                in
                let itv_fact =
                  match rng with
                  | Some rg -> (
                    match (Absint.Itv.finite_lo rg, Absint.Itv.finite_hi rg) with
                    | Some l, Some h -> Some (l, h)
                    | _ -> None)
                  | None -> None
                in
                if lo_proved && hi_proved then begin
                  tick { bounds_zero with bs_ranges = 1; bs_omega_avoided = 2 };
                  bounds_entry ~rule:"A1" ~discharge:Ledger.Ranges ~counted:true
                    ~queries:0 ~avoided:2 ~cstrs:0 ~hyps:0 ~itv:itv_fact
                    ~ns:(Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0));
                  note st f i.Ssair.Ir.iloc
                    "index into region %s proven within [0,%d) by value-range analysis"
                    r.Shm.r_name nelems
                end
                else begin
                  let idx_e = affine_of_value ctx idx in
                  (* symbols that are neither loop phis nor parameters are
                     opaque (call results, memory loads): a satisfiable
                     violation query then means "cannot prove affine" (A2)
                     rather than a definite out-of-bounds access (A1) *)
                  let opaque =
                    List.exists
                      (fun sym ->
                        match
                          if String.length sym > 1 && sym.[0] = 'v' then
                            int_of_string_opt (String.sub sym 1 (String.length sym - 1))
                          else None
                        with
                        | None -> not (String.length sym > 2 && String.sub sym 0 2 = "p_")
                        | Some id -> (
                          match Hashtbl.find_opt ctx.defs id with
                          | Some (Ssair.Ir.Def_phi _) -> false
                          | _ -> true))
                      (Omega.Linexpr.vars idx_e)
                  in
                  let sat_rule = if opaque then Report.A2 else Report.A1 in
                  let constraints =
                    dominating_constraints ctx bid @ induction_constraints ctx idx_e
                  in
                  let hyps = range_hypotheses aq ~bid idx_e in
                  (* per-obligation solver accounting for the ledger *)
                  let n_queries = ref 0 in
                  let max_cstrs = ref 0 in
                  let hyp_settled = ref false in
                  let feas cs =
                    incr n_queries;
                    max_cstrs := max !max_cstrs (List.length cs);
                    Omega.feasible ~fuel:st.config.Config.omega_fuel cs
                  in
                  (* hypotheses may only strengthen a query towards Unsat: a
                     query they do not settle falls back to the baseline
                     verdict, so a run with ranges reports a subset of the
                     findings of a run without *)
                  let query goal =
                    match hyps with
                    | [] -> feas (goal :: constraints)
                    | _ -> (
                      match feas ((goal :: hyps) @ constraints) with
                      | Omega.Unsat ->
                        hyp_settled := true;
                        Omega.Unsat
                      | Omega.Sat | Omega.Unknown -> feas (goal :: constraints))
                  in
                  let low_q =
                    if lo_proved then begin
                      tick { bounds_zero with bs_omega_avoided = 1 };
                      Omega.Unsat
                    end
                    else query (Omega.le idx_e (Omega.Linexpr.const (-1)))
                  in
                  let high_q =
                    if hi_proved then begin
                      tick { bounds_zero with bs_omega_avoided = 1 };
                      Omega.Unsat
                    end
                    else query (Omega.ge idx_e (Omega.Linexpr.const nelems))
                  in
                  let clean = ref true in
                  (match low_q with
                  | Omega.Unsat -> ()
                  | Omega.Sat ->
                    clean := false;
                    violate st sat_rule f i.Ssair.Ir.iloc
                      "index into region %s can be negative" r.Shm.r_name
                  | Omega.Unknown ->
                    clean := false;
                    violate st Report.A2 f i.Ssair.Ir.iloc
                      "cannot prove index into region %s non-negative (non-affine)"
                      r.Shm.r_name);
                  (match high_q with
                  | Omega.Unsat -> ()
                  | Omega.Sat ->
                    clean := false;
                    violate st sat_rule f i.Ssair.Ir.iloc
                      "index into region %s can exceed %d elements" r.Shm.r_name nelems
                  | Omega.Unknown ->
                    clean := false;
                    violate st Report.A2 f i.Ssair.Ir.iloc
                      "cannot prove index into region %s below bound %d (non-affine)"
                      r.Shm.r_name nelems);
                  tick
                    (if !clean then { bounds_zero with bs_omega = 1 }
                     else { bounds_zero with bs_failed = 1 });
                  let discharge =
                    if not !clean then Ledger.Failed
                    else if !hyp_settled then Ledger.Omega_hyp
                    else Ledger.Omega_unsat
                  in
                  bounds_entry
                    ~rule:(if opaque then "A2" else "A1")
                    ~discharge ~counted:true ~queries:!n_queries
                    ~avoided:
                      ((if lo_proved then 1 else 0) + if hi_proved then 1 else 0)
                    ~cstrs:!max_cstrs ~hyps:(List.length hyps) ~itv:itv_fact
                    ~ns:(Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0))
                end)))
        targets

let check_arrays st (f : Ssair.Ir.func) =
  let ctx = mk_affine_ctx f in
  (* per-function range query context, built lazily so functions without
     array accesses never pay for the dominator tree *)
  let aq =
    lazy (Option.map (fun ai -> Absint.query_ctx ai f) st.absint)
  in
  List.iter
    (fun (b : Ssair.Ir.block) ->
      List.iter
        (fun (i : Ssair.Ir.instr) ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Gep { base; kind; idx } ->
            check_bounds st ctx (Lazy.force aq) f i b.Ssair.Ir.bbid base kind idx
          | _ -> ())
        b.Ssair.Ir.instrs)
    f.Ssair.Ir.blocks

(** Verdicts for one function: a fresh accumulator per function, so the
    result can be cached and reused independently.  Concatenating the
    per-function lists in program order reproduces exactly the order the
    original single-accumulator pass emitted. *)
let check_function ~config ~prog ~p1 ~absint accessors (f : Ssair.Ir.func) :
    Report.violation list * Report.info list * bounds_stats * Ledger.entry list =
  let st =
    { prog; p1; config; absint; violations = []; infos = []; bounds = bounds_zero;
      ledger = [] }
  in
  check_p1 st f accessors;
  check_p2_p3 st f;
  check_arrays st f;
  (List.rev st.violations, List.rev st.infos, st.bounds, List.rev st.ledger)

(** Everything phase 2 produces in one pass: restriction verdicts, the
    [I-RANGE-PROVED] audit notes, the A1/A2 discharge accounting, and
    the per-obligation audit ledger (PR 9; never part of the report). *)
type result = {
  violations : Report.violation list;
  infos : Report.info list;
  bounds : bounds_stats;
  ledger : Ledger.entry list;
}

let empty_result = { violations = []; infos = []; bounds = bounds_zero; ledger = [] }

(** Run phase 2.  Returns restriction violations (empty when the program
    adheres to the MiniC shared-memory discipline) together with range
    notes and bounds-obligation statistics.

    With [~cache] and [~digests], verdicts are cached at two
    granularities: the whole program (so an unchanged system skips even
    the accessor-closure computation) and per function — keyed on the
    function body, its phase-1 facts, the shm-accessor closure, the
    region model, the type environment, the semantic config and the
    function's value-range summary (ranges are interprocedural, so an
    edit elsewhere that shifts this function's ranges must miss) — so a
    one-function edit recomputes only that function. *)
let run ?(config = Config.default) ?cache ?digests ?absint (prog : Ssair.Ir.program)
    (p1 : Phase1.t) : result =
  if not config.Config.check_restrictions then empty_result
  else begin
    let sem_fp = lazy (Digest_ir.semantic_config config) in
    let whole_key =
      match digests with
      | Some (d : Digest_ir.t) ->
        Some (Digest_ir.combine [ d.Digest_ir.program; Lazy.force sem_fp ])
      | None -> None
    in
    let cached_whole =
      match (cache, whole_key) with
      | Some c, Some key -> (Cache.find c ~ns:"phase2" ~key : result option)
      | _ -> None
    in
    match cached_whole with
    | Some r -> r
    | None ->
      let accessors = shm_accessors prog p1 in
      let absint_digest fname =
        match absint with
        | Some ai -> Absint.summary_digest ai fname
        | None -> "no-absint"
      in
      let func_key =
        match (cache, digests) with
        | Some _, Some (d : Digest_ir.t) ->
          let p1_by = Digest_ir.phase1_by_func p1 in
          let global =
            Digest_ir.combine
              [ Digest_ir.of_value
                  (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) accessors []));
                Digest_ir.shm p1.Phase1.shm;
                d.Digest_ir.env;
                Lazy.force sem_fp ]
          in
          fun fname ->
            Some
              (Digest_ir.combine
                 [ Digest_ir.func d fname;
                   Digest_ir.facts_digest p1_by fname;
                   Digest_ir.of_value (absint_digest fname);
                   global ])
        | _ -> fun _ -> None
      in
      let per_func =
        List.map
          (fun (f : Ssair.Ir.func) ->
            if Phase1.is_exempt p1 f.Ssair.Ir.fname then
              (* obligation suspended under the initializing-function
                 exemption (§3.2.1): one "assumed" ledger entry marks the
                 whole function as unexamined by phases 2's provers *)
              ( [],
                [],
                bounds_zero,
                [
                  {
                    Ledger.l_rule = "EXEMPT";
                    l_func = f.Ssair.Ir.fname;
                    l_loc = f.Ssair.Ir.floc;
                    l_region = "";
                    l_discharge = Ledger.Assumed;
                    l_counted = false;
                    l_queries = 0;
                    l_avoided = 0;
                    l_cstrs = 0;
                    l_hyps = 0;
                    l_itv = None;
                    l_bound = -1;
                    l_ns = 0;
                  };
                ] )
            else
              match (cache, func_key f.Ssair.Ir.fname) with
              | Some c, Some key -> (
                match
                  (Cache.find c ~ns:"phase2fn" ~key
                    : (Report.violation list * Report.info list * bounds_stats
                      * Ledger.entry list)
                      option)
                with
                | Some r -> r
                | None ->
                  let r = check_function ~config ~prog ~p1 ~absint accessors f in
                  Cache.store c ~ns:"phase2fn" ~key r;
                  r)
              | _ -> check_function ~config ~prog ~p1 ~absint accessors f)
          prog.Ssair.Ir.funcs
      in
      let violations = List.concat_map (fun (vs, _, _, _) -> vs) per_func in
      let infos = List.concat_map (fun (_, is, _, _) -> is) per_func in
      let bounds =
        List.fold_left (fun acc (_, _, b, _) -> bounds_add acc b) bounds_zero per_func
      in
      let ledger = Ledger.sort (List.concat_map (fun (_, _, _, l) -> l) per_func) in
      (* canonical (file, line, code) order: emission follows program
         order, so sorting here makes the cached whole-program entry and
         a fresh run byte-identical regardless of function layout *)
      let violations = List.stable_sort Report.compare_violation violations in
      let infos = List.stable_sort Report.compare_info infos in
      let result = { violations; infos; bounds; ledger } in
      (match (cache, whole_key) with
      | Some c, Some key -> Cache.store c ~ns:"phase2" ~key result
      | _ -> ());
      result
  end
