(** Phase 3 (paper §3.3): value-flow analysis.

    Reads of unmonitored non-core shared memory produce [unsafe] values
    (each such read is a {e warning}); unsafeness propagates through the
    value-flow graph — SSA def-use edges, loads/stores resolved by the
    points-to analysis, call/return edges — and the analysis checks that
    no critical datum ([assert(safe(x))] annotations and implicit sinks
    such as the pid argument of [kill]) depends on an unsafe value.

    Monitoring functions are handled context-sensitively: each function is
    analyzed once per set of [assume(core(...))] assumptions accumulated
    along the call chain, which is the paper's "each function ... analyzed
    multiple times for different call sequences".  Control dependence on
    unsafe values is tracked separately (implicit flows through phis,
    conditional sinks and conditional stores) and reported as
    [Control_only] — the class the paper identifies as candidate false
    positives requiring value-flow-graph review (§3.4.1). *)

open Minic
module Offset = Pointsto.Offset

(* -- Monitoring contexts ------------------------------------------------------ *)

type assumption = Assume.assumption =
  | Aregion of string * int * int  (** region, byte range [lo, hi) assumed core *)
  | Anode of Pointsto.Node.t       (** memory object assumed core (recv buffers) *)

let pp_assumption = Assume.pp

module Ctx = struct
  type t = assumption list  (* sorted, deduplicated *)

  let empty : t = []
  let make l : t = List.sort_uniq compare l
  let union (a : t) (b : t) : t = List.sort_uniq compare (a @ b)
  let compare : t -> t -> int = compare

  let covers_region (ctx : t) region ~lo ~hi =
    List.exists
      (function Aregion (r, l, h) -> String.equal r region && l <= lo && hi <= h | _ -> false)
      ctx

  let covers_node (ctx : t) node =
    List.exists (function Anode n -> n = node | _ -> false) ctx

  let names (ctx : t) =
    List.map (function Aregion (r, _, _) -> r | Anode n -> Fmt.str "%a" Pointsto.Node.pp n) ctx
end

(* -- Taint entities ----------------------------------------------------------- *)

type entity =
  | Eval of string * Ctx.t * Ssair.Ir.vid
  | Eparam of string * Ctx.t * string
  | Eret of string * Ctx.t
  | Enode of Pointsto.Node.t
  | Eregion of string  (** a non-core region as a taint source *)

let pp_entity ppf = function
  | Eval (f, _, id) -> Fmt.pf ppf "%s:%%%d" f id
  | Eparam (f, _, p) -> Fmt.pf ppf "%s:param %s" f p
  | Eret (f, _) -> Fmt.pf ppf "%s:return" f
  | Enode n -> Fmt.pf ppf "mem %a" Pointsto.Node.pp n
  | Eregion r -> Fmt.pf ppf "non-core region %s" r

type origin = { parent : entity option; why : string }

(** Per-function control-dependence facts that do not depend on the
    monitoring context or the taint state: the undecided register-cond
    branches, and per branch block the transitive closure of the CDG
    "controls" relation.  Memoized in {!state} ([brinfos]) — the legacy
    engine recomputes {!block_control_taint} per (pair, pass) and
    {!collect_dependencies} per pair, and only the branch conditions'
    taint is dynamic. *)
type brinfo = {
  br_branches : (Ssair.Ir.bid * Ssair.Ir.vid * Ssair.Ir.bid list) list;
      (** blocks ending in [Cbr]/[Switch] on a register: block, cond
          vid, and the blocks transitively control-dependent on the
          block (as a set — member order is not meaningful) *)
}

type state = {
  prog : Ssair.Ir.program;
  shm : Shm.t;
  p1 : Phase1.t;
  pts : Pointsto.t;
  config : Config.t;
  absint : Absint.t option;
      (** value ranges; decided branches exert no control dependence *)
  mutable data : (entity, origin) Hashtbl.t;  (** data-tainted entities *)
  mutable ctrl : (entity, origin) Hashtbl.t;  (** control-tainted entities *)
  pairs : (string * Ctx.t, unit) Hashtbl.t;  (** discovered (function, context) pairs *)
  warnings : (Loc.t * string, Report.warning) Hashtbl.t;
  brinfos : (string, brinfo) Hashtbl.t;
  fidx : (string, Ssair.Ir.func) Hashtbl.t;
      (** function index — [Ssair.Ir.find_func] is a linear scan and the
          legacy engine resolves callees at every call site of every
          pass.  First occurrence wins, mirroring [find_func]. *)
  noncore_sockets : (string, unit) Hashtbl.t;
  mutable changed : bool;
  mutable passes : int;
}

let data_tainted st e = Hashtbl.mem st.data e
let ctrl_tainted st e = Hashtbl.mem st.ctrl e

(* A conditional branch whose condition's value range decides the
   direction takes the same successor in every concrete execution, so it
   exerts no control dependence.  Pruning it is precision-only: findings
   can disappear, never appear. *)
let branch_decided st (f : Ssair.Ir.func) (b : Ssair.Ir.block) : bool =
  match st.absint with
  | None -> false
  | Some ai -> Absint.dead_branch ai ~fname:f.Ssair.Ir.fname ~bid:b.Ssair.Ir.bbid <> None

let taint st table e ~parent ~why =
  if not (Hashtbl.mem table e) then begin
    Hashtbl.replace table e { parent; why };
    st.changed <- true
  end

(** Memoized {!brinfo} of [f].  Pure with respect to the taint state;
    must first run on the main domain (it writes the memo tables) — the
    sparse engine prewarms it before parallel pair builds, after which
    worker domains read it through {!Vfgraph}'s finfo table. *)
let branch_info st (f : Ssair.Ir.func) : brinfo =
  match Hashtbl.find_opt st.brinfos f.fname with
  | Some bi -> bi
  | None ->
    let br_branches =
      List.filter_map
        (fun (b : Ssair.Ir.block) ->
          (* decided branches exert no control dependence *)
          if branch_decided st f b then None
          else
            match b.Ssair.Ir.termin with
            | Ssair.Ir.Cbr (Ssair.Ir.Vreg id, _, _)
            | Ssair.Ir.Switch (Ssair.Ir.Vreg id, _, _) ->
              Some (b.Ssair.Ir.bbid, id)
            | _ -> None)
        f.Ssair.Ir.blocks
    in
    let br_branches =
      match br_branches with
      | [] -> []
      | _ ->
        (* the CDG is only consulted through the closures of undecided
           branches, so a branch-free (or all-decided) function never
           pays for post-dominator computation *)
        let c = Ssair.Cdg.compute f in
        (* per-function scratch; unmarked after each branch walk *)
        let seen = Array.make (Array.length c.Ssair.Cdg.slot_bid) false in
        List.map
          (fun (bB, id) ->
            (* transitive closure of the CDG "controls" relation from bB,
               excluding bB itself unless it controls itself — a DFS on
               the dense slot arrays (member order is irrelevant: every
               consumer treats the closure as a set) *)
            let acc = ref [] in
            let s0 = c.Ssair.Cdg.slot_of bB in
            (if s0 >= 0 then
               let rec go s =
                 List.iter
                   (fun d ->
                     if not seen.(d) then begin
                       seen.(d) <- true;
                       acc := d :: !acc;
                       go d
                     end)
                   c.Ssair.Cdg.ctrl_slots.(s)
               in
               go s0);
            let bids = List.map (fun s -> c.Ssair.Cdg.slot_bid.(s)) !acc in
            List.iter (fun s -> seen.(s) <- false) !acc;
            (bB, id, bids))
          br_branches
    in
    let bi = { br_branches } in
    Hashtbl.replace st.brinfos f.fname bi;
    bi

(* -- Resolving annotations ----------------------------------------------------- *)

(** Assumptions contributed by function [f]'s own [assume(core(...))]
    annotations (see {!Assume}). *)
let own_assumptions st (f : Ssair.Ir.func) : assumption list =
  Assume.of_func ~prog:st.prog ~shm:st.shm ~p1:st.p1 ~pts:st.pts f

(** Non-core sockets: [assume(noncore(s))] clauses naming something that is
    not a shared-memory region (message-passing extension §3.4.3). *)
let collect_noncore_sockets st =
  List.iter
    (fun (f : Ssair.Ir.func) ->
      List.iter
        (function
          | Annot.Noncore name when Shm.region st.shm name = None ->
            Hashtbl.replace st.noncore_sockets name ()
          | _ -> ())
        f.Ssair.Ir.fannot)
    st.prog.Ssair.Ir.funcs

(* -- Warning emission ----------------------------------------------------------- *)

let warn st (f : Ssair.Ir.func) ctx loc region =
  let key = (loc, region) in
  if not (Hashtbl.mem st.warnings key) then begin
    Hashtbl.replace st.warnings key
      { Report.w_func = f.fname; w_region = region; w_loc = loc; w_context = Ctx.names ctx };
    st.changed <- true
  end

(* -- The per-(function, context) transfer ---------------------------------------- *)

(** Blocks' tainted-control status: block → is any controlling branch
    condition tainted (data or ctrl)?  The closure of the "controls"
    relation is static per function ({!branch_info}); only the branch
    conditions' taint is dynamic, and the closure of a union of branch
    sets equals the union of the per-branch closures. *)
let block_control_taint st (f : Ssair.Ir.func) ctx : (Ssair.Ir.bid, unit) Hashtbl.t =
  let bi = branch_info st f in
  let closed = Hashtbl.create 8 in
  List.iter
    (fun (_bB, id, closure) ->
      let e = Eval (f.fname, ctx, id) in
      if data_tainted st e || ctrl_tainted st e then
        List.iter (fun dep -> Hashtbl.replace closed dep ()) closure)
    bi.br_branches;
  closed

let value_entity fname ctx (v : Ssair.Ir.value) : entity option =
  match v with
  | Ssair.Ir.Vreg id -> Some (Eval (fname, ctx, id))
  | Ssair.Ir.Vparam p -> Some (Eparam (fname, ctx, p))
  | _ -> None

let value_data_tainted st fname ctx v =
  match value_entity fname ctx v with Some e -> data_tainted st e | None -> false

let value_ctrl_tainted st fname ctx v =
  match value_entity fname ctx v with Some e -> ctrl_tainted st e | None -> false

let first_tainted _st fname ctx vs table =
  List.find_map
    (fun v ->
      match value_entity fname ctx v with
      | Some e when Hashtbl.mem table e -> Some e
      | _ -> None)
    vs

(** Analyze one function under one context; records taints, warnings and
    newly discovered (callee, context) pairs. *)
let analyze_pair st (f : Ssair.Ir.func) (ctx : Ctx.t) =
  let env = st.prog.Ssair.Ir.env in
  let fname = f.Ssair.Ir.fname in
  let blk_ctrl = block_control_taint st f ctx in
  let in_tainted_block bid = Hashtbl.mem blk_ctrl bid in
  List.iter
    (fun (b : Ssair.Ir.block) ->
      (* phis: data from incomings, control from the block's merge *)
      List.iter
        (fun (p : Ssair.Ir.phi) ->
          let self = Eval (fname, ctx, p.Ssair.Ir.pid) in
          List.iter
            (fun (_, v) ->
              match value_entity fname ctx v with
              | Some e when data_tainted st e ->
                taint st st.data self ~parent:(Some e) ~why:"phi merge"
              | Some e when ctrl_tainted st e ->
                taint st st.ctrl self ~parent:(Some e) ~why:"phi merge"
              | _ -> ())
            p.Ssair.Ir.incoming;
          (* implicit flow: the phi's value is selected by the branches
             controlling its incoming edges *)
          let incoming_controlled =
            in_tainted_block b.Ssair.Ir.bbid
            || List.exists
                 (fun (pred, _) ->
                   in_tainted_block pred
                   ||
                   match Ssair.Ir.block_opt f pred with
                   | Some pblk -> (
                     match pblk.Ssair.Ir.termin with
                     | Ssair.Ir.Cbr (Ssair.Ir.Vreg cid, _, _)
                     | Ssair.Ir.Switch (Ssair.Ir.Vreg cid, _, _) ->
                       (not (branch_decided st f pblk))
                       &&
                       let ce = Eval (fname, ctx, cid) in
                       data_tainted st ce || ctrl_tainted st ce
                     | _ -> false)
                   | None -> false)
                 p.Ssair.Ir.incoming
          in
          if st.config.Config.control_deps && incoming_controlled then
            taint st st.ctrl self ~parent:None
              ~why:"phi merges paths controlled by an unsafe condition")
        b.Ssair.Ir.phis;
      List.iter
        (fun (i : Ssair.Ir.instr) ->
          let self = Eval (fname, ctx, i.Ssair.Ir.iid) in
          let flow_operands vs why =
            (match first_tainted st fname ctx vs st.data with
            | Some e -> taint st st.data self ~parent:(Some e) ~why
            | None -> ());
            match first_tainted st fname ctx vs st.ctrl with
            | Some e -> taint st st.ctrl self ~parent:(Some e) ~why
            | None -> ()
          in
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Alloca _ -> ()
          | Ssair.Ir.Load { ptr; lty } -> (
            (* 1. shared-memory reads *)
            let shm_targets = Phase1.shm_targets st.p1 f ptr in
            Phase1.Rset.iter
              (fun tgt ->
                let rname = tgt.Phase1.Rtgt.region in
                match Shm.region st.shm rname with
                | None -> ()
                | Some r ->
                  if r.Shm.r_noncore then begin
                    let covered =
                      match tgt.Phase1.Rtgt.off with
                      | Offset.Byte b ->
                        Ctx.covers_region ctx rname ~lo:b ~hi:(b + Ty.sizeof env lty)
                      | Offset.Top ->
                        Ctx.covers_region ctx rname ~lo:0 ~hi:r.Shm.r_size
                    in
                    if not covered then begin
                      warn st f ctx i.Ssair.Ir.iloc rname;
                      taint st st.data self ~parent:(Some (Eregion rname))
                        ~why:
                          (Fmt.str "unmonitored read of non-core region %s at %a" rname
                             Loc.pp i.Ssair.Ir.iloc)
                    end
                  end
                  else begin
                    (* core region: safe unless some unsafe value was
                       stored into it *)
                    let node = Pointsto.Node.Nshm rname in
                    if data_tainted st (Enode node) && not (Ctx.covers_node ctx node) then
                      taint st st.data self ~parent:(Some (Enode node))
                        ~why:"read of core region holding an unsafe value"
                  end)
              shm_targets;
            (* 2. ordinary memory — only when the address is not a
               shared-memory pointer: shm reads are governed by the region
               model above (P2 guarantees shm pointers cannot also point
               to ordinary objects, and the opaque node backing the
               segment would otherwise conflate all regions) *)
            if Phase1.Rset.is_empty shm_targets then
            Pointsto.Tset.iter
              (fun tgt ->
                let node = tgt.Pointsto.Target.node in
                if not (Ctx.covers_node ctx node) then begin
                  if data_tainted st (Enode node) then
                    taint st st.data self ~parent:(Some (Enode node))
                      ~why:"load from unsafe memory object";
                  if ctrl_tainted st (Enode node) then
                    taint st st.ctrl self ~parent:(Some (Enode node))
                      ~why:"load from control-unsafe memory object"
                end)
              (Pointsto.points_to st.pts f ptr);
            (* 3. tainted address: attacker-chosen cell *)
            flow_operands [ ptr ] "load through unsafe pointer";
            ignore lty)
          | Ssair.Ir.Store { ptr; sval; _ } ->
            let mark table parent why =
              (* taint every object the store may write; shm-pointer
                 stores taint the region node, not the opaque segment *)
              let shm = Phase1.shm_targets st.p1 f ptr in
              if Phase1.Rset.is_empty shm then
                Pointsto.Tset.iter
                  (fun tgt ->
                    taint st table (Enode tgt.Pointsto.Target.node) ~parent ~why)
                  (Pointsto.points_to st.pts f ptr)
              else
                Phase1.Rset.iter
                  (fun tgt ->
                    taint st table
                      (Enode (Pointsto.Node.Nshm tgt.Phase1.Rtgt.region))
                      ~parent ~why)
                  shm
            in
            (match value_entity fname ctx sval with
            | Some e when data_tainted st e ->
              mark st.data (Some e) "unsafe value stored"
            | Some e when ctrl_tainted st e ->
              mark st.ctrl (Some e) "control-unsafe value stored"
            | _ -> ());
            if st.config.Config.control_deps && in_tainted_block b.Ssair.Ir.bbid then
              mark st.ctrl None "store controlled by an unsafe condition"
          | Ssair.Ir.Binop { lhs; rhs; _ } -> flow_operands [ lhs; rhs ] "arithmetic"
          | Ssair.Ir.Unop { operand; _ } -> flow_operands [ operand ] "arithmetic"
          | Ssair.Ir.Cast { cval; _ } -> flow_operands [ cval ] "cast"
          | Ssair.Ir.Gep { base; idx; _ } -> flow_operands [ base; idx ] "address arithmetic"
          | Ssair.Ir.Annotation _ -> ()
          | Ssair.Ir.Call { callee; args; _ } -> (
            match Hashtbl.find_opt st.fidx callee with
            | Some g ->
              let gctx =
                if st.config.Config.context_sensitive then
                  Ctx.union ctx (Ctx.make (own_assumptions st g))
                else Ctx.make (own_assumptions st g)
              in
              if not (Hashtbl.mem st.pairs (g.Ssair.Ir.fname, gctx)) then begin
                Hashtbl.replace st.pairs (g.Ssair.Ir.fname, gctx) ();
                st.changed <- true
              end;
              List.iteri
                (fun k arg ->
                  match List.nth_opt g.Ssair.Ir.fparams k with
                  | Some (pname, _) -> (
                    let pe = Eparam (g.Ssair.Ir.fname, gctx, pname) in
                    (match value_entity fname ctx arg with
                    | Some e when data_tainted st e ->
                      taint st st.data pe ~parent:(Some e)
                        ~why:(Fmt.str "argument %d of call to %s" k callee)
                    | Some e when ctrl_tainted st e ->
                      taint st st.ctrl pe ~parent:(Some e)
                        ~why:(Fmt.str "argument %d of call to %s" k callee)
                    | _ -> ());
                    if st.config.Config.control_deps && in_tainted_block b.Ssair.Ir.bbid
                    then
                      taint st st.ctrl pe ~parent:None
                        ~why:"call controlled by an unsafe condition")
                  | None -> ())
                args;
              let re = Eret (g.Ssair.Ir.fname, gctx) in
              if data_tainted st re then
                taint st st.data self ~parent:(Some re)
                  ~why:(Fmt.str "return value of %s" callee);
              if ctrl_tainted st re then
                taint st st.ctrl self ~parent:(Some re)
                  ~why:(Fmt.str "return value of %s" callee)
            | None ->
              (* extern *)
              (* message-passing: recv through a non-core socket taints the
                 buffer *)
              if List.mem callee st.config.Config.recv_functions then begin
                let socket_is_noncore =
                  match args with
                  | sock :: _ -> (
                    match sock with
                    | Ssair.Ir.Vparam p -> Hashtbl.mem st.noncore_sockets p
                    | Ssair.Ir.Vreg id -> (
                      (* a load of an annotated global *)
                      let defs = Ssair.Ir.def_table f in
                      match Hashtbl.find_opt defs id with
                      | Some
                          (Ssair.Ir.Def_instr
                             ( { idesc = Ssair.Ir.Load { ptr = Ssair.Ir.Vglobal g; _ }; _ },
                               _ )) ->
                        Hashtbl.mem st.noncore_sockets g
                      | _ -> false)
                    | _ -> false)
                  | [] -> false
                in
                if socket_is_noncore then
                  match args with
                  | _ :: buf :: _ ->
                    Pointsto.Tset.iter
                      (fun tgt ->
                        taint st st.data (Enode tgt.Pointsto.Target.node)
                          ~parent:(Some (Eregion (Fmt.str "socket via %s" callee)))
                          ~why:"data received from a non-core component")
                      (Pointsto.points_to st.pts f buf)
                  | _ -> ()
              end;
              (* conservative: extern results carry their arguments' taint *)
              flow_operands args (Fmt.str "through external call %s" callee)))
        b.Ssair.Ir.instrs;
      (* returns *)
      match b.Ssair.Ir.termin with
      | Ssair.Ir.Ret (Some v) -> (
        let re = Eret (fname, ctx) in
        (match value_entity fname ctx v with
        | Some e when data_tainted st e ->
          taint st st.data re ~parent:(Some e) ~why:"returned"
        | Some e when ctrl_tainted st e ->
          taint st st.ctrl re ~parent:(Some e) ~why:"returned"
        | _ -> ());
        if st.config.Config.control_deps && in_tainted_block b.Ssair.Ir.bbid then
          taint st st.ctrl re ~parent:None
            ~why:"returned value selected by an unsafe condition")
      | _ -> ())
    f.Ssair.Ir.blocks

(* -- Sinks and asserts ------------------------------------------------------------ *)

(** Stable opaque identity of a taint entity — the [p_key] of witness
    steps.  Entities are pure data, so the digest is deterministic
    across runs, engines and processes. *)
let entity_key (e : entity) : string =
  Digest.to_hex (Digest.string (Marshal.to_string e [ Marshal.No_sharing ]))

(** Walk first-taint origins from [e] back to a source, producing the
    structured witness path, source first.  Each step records the entity
    it came from ([p_parent]), so consecutive steps form a checkable
    chain; the legacy string trace is derived from this path
    ({!Report.path_strings}), keeping both in lockstep. *)
let path_of table e : Report.path_step list =
  let step e why parent =
    {
      Report.p_desc = Fmt.str "%a" pp_entity e;
      p_why = why;
      p_key = entity_key e;
      p_parent = Option.map entity_key parent;
    }
  in
  let rec go e acc depth =
    if depth > 32 then Report.synthetic_step "..." :: acc
    else
      match Hashtbl.find_opt table e with
      | Some { parent = Some p; why } -> go p (step e (Some why) (Some p) :: acc) (depth + 1)
      | Some { parent = None; why } -> step e (Some why) None :: acc
      | None -> step e None None :: acc
  in
  go e [] 0

(** After the fixpoint: evaluate assert(safe(x)) annotations and implicit
    critical sinks, producing dependencies. *)
let collect_dependencies st : Report.dependency list =
  let deps = ref [] in
  let add kind sink f loc path =
    deps :=
      {
        Report.d_kind = kind;
        d_sink = sink;
        d_func = f;
        d_loc = loc;
        d_trace = Report.path_strings path;
        d_path = path;
      }
      :: !deps
  in
  let check_value f ctx blk_ctrl bid loc sink (v : Ssair.Ir.value) =
    let fname = f.Ssair.Ir.fname in
    match value_entity fname ctx v with
    | Some e when data_tainted st e -> add Report.Data sink fname loc (path_of st.data e)
    | Some e when st.config.Config.control_deps && ctrl_tainted st e ->
      add Report.Control_only sink fname loc (path_of st.ctrl e)
    | Some e ->
      (* pointer-typed critical data: unsafe data reachable from it? *)
      let is_ptr =
        match v with
        | Ssair.Ir.Vreg id -> (
          match Hashtbl.find_opt (Ssair.Ir.def_table f) id with
          | Some (Ssair.Ir.Def_instr (i, _)) -> Minic.Ty.is_pointer i.Ssair.Ir.ity
          | Some (Ssair.Ir.Def_phi (p, _)) -> Minic.Ty.is_pointer p.Ssair.Ir.pty
          | None -> false)
        | _ -> false
      in
      if is_ptr then begin
        let reach = Pointsto.reachable st.pts (Pointsto.points_to st.pts f v) in
        match
          Pointsto.Tset.fold
            (fun tgt acc ->
              match acc with
              | Some _ -> acc
              | None ->
                let ne = Enode tgt.Pointsto.Target.node in
                if data_tainted st ne then Some ne else None)
            reach None
        with
        | Some ne ->
          add Report.Data sink f.Ssair.Ir.fname loc
            (path_of st.data ne @ [ Report.synthetic_step "reachable from critical pointer" ])
        | None -> ()
      end;
      if
        st.config.Config.control_deps
        && (not (data_tainted st e))
        && (not (ctrl_tainted st e))
        && Hashtbl.mem blk_ctrl bid
      then
        add Report.Control_only sink fname loc
          [
            Report.synthetic_step
              "critical site executes under a condition influenced by non-core values";
          ]
    | None ->
      if st.config.Config.control_deps && Hashtbl.mem blk_ctrl bid then
        add Report.Control_only sink fname loc
          [
            Report.synthetic_step
              "critical site executes under a condition influenced by non-core values";
          ]
  in
  (* sink sites are context-independent; collect them once per function
     (in block/instruction order — the order of the [check_value] calls
     below drives first-win dedup) and skip the control-taint closure
     for the many pairs of functions with no sinks at all *)
  let sites_memo : (string, (Ssair.Ir.bid * Loc.t * string * Ssair.Ir.value) list) Hashtbl.t =
    Hashtbl.create 32
  in
  (* the sink list is tiny but consulted once per call instruction *)
  let sink_tbl = Hashtbl.create 16 in
  List.iter
    (fun (callee, indices) ->
      if not (Hashtbl.mem sink_tbl callee) then Hashtbl.add sink_tbl callee indices)
    st.config.Config.critical_sinks;
  let sites_of (f : Ssair.Ir.func) =
    match Hashtbl.find_opt sites_memo f.Ssair.Ir.fname with
    | Some l -> l
    | None ->
      let acc = ref [] in
      List.iter
        (fun (b : Ssair.Ir.block) ->
          List.iter
            (fun (i : Ssair.Ir.instr) ->
              match i.Ssair.Ir.idesc with
              | Ssair.Ir.Annotation { clause = Annot.Assert_safe x; aval = Some v } ->
                acc :=
                  (b.Ssair.Ir.bbid, i.Ssair.Ir.iloc, Fmt.str "assert(safe(%s))" x, v)
                  :: !acc
              | Ssair.Ir.Call { callee; args; _ } -> (
                match Hashtbl.find_opt sink_tbl callee with
                | Some indices ->
                  List.iter
                    (fun k ->
                      match List.nth_opt args k with
                      | Some arg ->
                        acc :=
                          ( b.Ssair.Ir.bbid,
                            i.Ssair.Ir.iloc,
                            Fmt.str "argument %d of %s" k callee,
                            arg )
                          :: !acc
                      | None -> ())
                    indices
                | None -> ())
              | _ -> ())
            b.Ssair.Ir.instrs)
        f.Ssair.Ir.blocks;
      let l = List.rev !acc in
      Hashtbl.replace sites_memo f.Ssair.Ir.fname l;
      l
  in
  Hashtbl.iter
    (fun (fname, ctx) () ->
      match Hashtbl.find_opt st.fidx fname with
      | None -> ()
      | Some f -> (
        match sites_of f with
        | [] -> ()
        | sites ->
          let blk_ctrl = block_control_taint st f ctx in
          List.iter
            (fun (bid, loc, sink, v) -> check_value f ctx blk_ctrl bid loc sink v)
            sites))
    st.pairs;
  (* deduplicate by (sink, loc, kind), then emit in the canonical
     (file, line, code) order — [st.pairs] is a hash table, so the raw
     collection order is engine- and layout-dependent *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : Report.dependency) ->
      let key = (d.d_sink, d.d_loc, d.d_kind) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev !deps)
  |> List.stable_sort Report.compare_dependency

(* -- Entry point -------------------------------------------------------------------- *)

type result = {
  warnings : Report.warning list;
  dependencies : Report.dependency list;
  passes : int;
      (** legacy engine: dense fixpoint passes; worklist engine: 1 *)
  pair_count : int;
  engine_stats : (string * int) list;
      (** engine-specific counters surfaced in {!Report.t.stats}: empty
          for the legacy engine, edge/pop counts for {!Vfgraph} *)
  taint_state : state;  (** exposed for the value-flow-graph export *)
}

(** Fresh analysis state; shared with the sparse engine ({!Vfgraph}),
    which fills the same tables through a different propagation
    strategy. *)
let make_state ~(config : Config.t) ?absint (prog : Ssair.Ir.program) (shm : Shm.t)
    (p1 : Phase1.t) (pts : Pointsto.t) : state =
  let fidx = Hashtbl.create 64 in
  List.iter
    (fun (f : Ssair.Ir.func) ->
      if not (Hashtbl.mem fidx f.Ssair.Ir.fname) then Hashtbl.add fidx f.Ssair.Ir.fname f)
    prog.Ssair.Ir.funcs;
  let st =
    {
      prog;
      shm;
      p1;
      pts;
      config;
      absint;
      data = Hashtbl.create 256;
      ctrl = Hashtbl.create 256;
      pairs = Hashtbl.create 32;
      warnings = Hashtbl.create 32;
      brinfos = Hashtbl.create 16;
      fidx;
      noncore_sockets = Hashtbl.create 4;
      changed = false;
      passes = 0;
    }
  in
  collect_noncore_sockets st;
  st

(** Root (function, context) pairs: main with its own assumptions, plus
    every non-exempt function that is never called (library entry
    points).  Also shared with {!Vfgraph}. *)
let root_pairs st : (Ssair.Ir.func * Ctx.t) list =
  let prog = st.prog in
  let roots = ref [] in
  let add_root (f : Ssair.Ir.func) =
    roots := (f, Ctx.make (own_assumptions st f)) :: !roots
  in
  (match Hashtbl.find_opt st.fidx "main" with
  | Some m -> add_root m
  | None -> ());
  let called = Hashtbl.create 32 in
  List.iter
    (fun (f : Ssair.Ir.func) ->
      List.iter
        (fun (b : Ssair.Ir.block) ->
          List.iter
            (fun (i : Ssair.Ir.instr) ->
              match i.Ssair.Ir.idesc with
              | Ssair.Ir.Call { callee; _ } -> Hashtbl.replace called callee ()
              | _ -> ())
            b.Ssair.Ir.instrs)
        f.Ssair.Ir.blocks)
    prog.Ssair.Ir.funcs;
  List.iter
    (fun (f : Ssair.Ir.func) ->
      if
        (not (Hashtbl.mem called f.Ssair.Ir.fname))
        && (not (String.equal f.Ssair.Ir.fname "main"))
        && not (Phase1.is_exempt st.p1 f.Ssair.Ir.fname)
      then add_root f)
    prog.Ssair.Ir.funcs;
  List.rev !roots

let run ?(config = Config.default) ?absint (prog : Ssair.Ir.program) (shm : Shm.t)
    (p1 : Phase1.t) (pts : Pointsto.t) : result =
  let st = make_state ~config ?absint prog shm p1 pts in
  st.changed <- true;
  List.iter
    (fun ((f : Ssair.Ir.func), ctx) -> Hashtbl.replace st.pairs (f.Ssair.Ir.fname, ctx) ())
    (root_pairs st);
  (* fixpoint *)
  Telemetry.span "phase3.fixpoint" (fun () ->
      while st.changed do
        st.changed <- false;
        st.passes <- st.passes + 1;
        let pairs = Hashtbl.fold (fun k () acc -> k :: acc) st.pairs [] in
        List.iter
          (fun (fname, ctx) ->
            match Hashtbl.find_opt st.fidx fname with
            | Some f when not (Phase1.is_exempt p1 fname) -> analyze_pair st f ctx
            | _ -> ())
          pairs
      done);
  let dependencies = Telemetry.span "phase3.collect" (fun () -> collect_dependencies st) in
  {
    warnings =
      Hashtbl.fold (fun _ w acc -> w :: acc) st.warnings []
      |> List.stable_sort Report.compare_warning;
    dependencies;
    passes = st.passes;
    pair_count = Hashtbl.length st.pairs;
    engine_stats = [];
    taint_state = st;
  }
