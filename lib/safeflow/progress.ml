(* Live fleet progress: consumes the NDJSON event stream (Events) and
   renders a throttled single-line status to a channel (stderr in the
   CLI).  Pure consumer — rendering never feeds back into analysis. *)

type worker_state = { mutable ws_done : int; mutable ws_last_path : string }

type t = {
  out : out_channel;
  interval_s : float;
  total : int;
  start : float;
  workers : (int, worker_state) Hashtbl.t;
  mutable members_done : int;
  mutable last_render : float;
  mutable rendered : bool;  (* a progress line is currently on screen *)
}

let create ?(out = stderr) ?(interval_s = 0.2) ~total () =
  {
    out;
    interval_s;
    total;
    start = Unix.gettimeofday ();
    workers = Hashtbl.create 8;
    members_done = 0;
    last_render = 0.0;
    rendered = false;
  }

let worker_state t w =
  match Hashtbl.find_opt t.workers w with
  | Some ws -> ws
  | None ->
    let ws = { ws_done = 0; ws_last_path = "" } in
    Hashtbl.replace t.workers w ws;
    ws

let render t ~now =
  let elapsed = now -. t.start in
  let rate = if elapsed > 0.0 then float_of_int t.members_done /. elapsed else 0.0 in
  let eta =
    if rate > 0.0 && t.total > t.members_done then
      Printf.sprintf " eta %.0fs" (float_of_int (t.total - t.members_done) /. rate)
    else ""
  in
  (* straggler: the worker with the fewest members done, mentioned once
     the fleet is large enough for skew to matter *)
  let straggler =
    if Hashtbl.length t.workers < 2 then ""
    else
      let worst = ref None in
      Hashtbl.iter
        (fun w ws ->
          match !worst with
          | Some (_, d) when d <= ws.ws_done -> ()
          | _ -> worst := Some (w, ws.ws_done))
        t.workers;
      match !worst with
      | Some (w, d) -> Printf.sprintf " slowest w%d:%d" w d
      | None -> ""
  in
  Printf.fprintf t.out "\rsafeflow fleet: %d/%d members  %.1f/s%s%s   " t.members_done
    t.total rate eta straggler;
  flush t.out;
  t.rendered <- true;
  t.last_render <- now

let feed t line =
  match Jsonlite.parse line with
  | Error _ -> ()  (* tolerate torn/foreign lines: progress is best-effort *)
  | Ok j -> (
    let ev = Option.bind (Jsonlite.member "ev" j) Jsonlite.to_string in
    let worker = Option.bind (Jsonlite.member "worker" j) Jsonlite.to_int in
    match ev with
    | Some "member_done" ->
      t.members_done <- t.members_done + 1;
      (match worker with
      | Some w ->
        let ws = worker_state t w in
        ws.ws_done <- ws.ws_done + 1;
        (match Option.bind (Jsonlite.member "path" j) Jsonlite.to_string with
        | Some p -> ws.ws_last_path <- p
        | None -> ())
      | None -> ());
      let now = Unix.gettimeofday () in
      if now -. t.last_render >= t.interval_s || t.members_done = t.total then
        render t ~now
    | Some "member_start" -> (
      match (worker, Option.bind (Jsonlite.member "path" j) Jsonlite.to_string) with
      | Some w, Some p -> (worker_state t w).ws_last_path <- p
      | _ -> ())
    | Some ("worker_start" | "heartbeat") -> (
      match worker with Some w -> ignore (worker_state t w) | None -> ())
    | _ -> ())

let finish t =
  if t.rendered then begin
    (* overwrite the live line with the final state, then newline so
       subsequent output starts clean *)
    render t ~now:(Unix.gettimeofday ());
    output_char t.out '\n';
    flush t.out
  end

let members_done t = t.members_done
