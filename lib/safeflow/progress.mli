(** Throttled live progress line for fleet runs.

    Consumes {!Events} NDJSON lines (via {!feed}) and renders a
    carriage-return-overwritten status line — members done/total,
    analyses/sec, ETA, slowest worker — at most every [interval_s]
    seconds.  Malformed lines are ignored: progress is best-effort and
    never affects analysis results. *)

type t

val create : ?out:out_channel -> ?interval_s:float -> total:int -> unit -> t
(** [out] defaults to [stderr], [interval_s] to [0.2] *)

val feed : t -> string -> unit
(** consume one event line (without trailing newline) *)

val finish : t -> unit
(** render the final state and terminate the live line with a newline;
    no-op if nothing was ever rendered *)

val members_done : t -> int
(** number of [member_done] events seen *)
