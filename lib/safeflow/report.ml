(** Diagnostics emitted by the SafeFlow analysis.

    Terminology follows the paper's evaluation (§4):
    - a {e warning} is an unmonitored read of a non-core shared-memory
      value by the core component (reported "without any false positives
      or false negatives");
    - an {e error dependency} is critical data that is {b data}-dependent
      on an unmonitored non-core value;
    - a {e control dependency} is critical data that is only
      {b control}-dependent on such a value — the class the paper found to
      account for all its false positives, requiring manual review of the
      value-flow graph. *)

open Minic

type restriction = P1 | P2 | P3 | A1 | A2

let pp_restriction ppf r =
  Fmt.string ppf (match r with P1 -> "P1" | P2 -> "P2" | P3 -> "P3" | A1 -> "A1" | A2 -> "A2")

type violation = {
  v_rule : restriction;
  v_func : string;
  v_loc : Loc.t;
  v_msg : string;
}

type warning = {
  w_func : string;          (** core-component function performing the read *)
  w_region : string;        (** non-core shared-memory region *)
  w_loc : Loc.t;
  w_context : string list;  (** monitor-assumption context (region names assumed core) *)
}

type dep_kind =
  | Data          (** value flows into the critical computation *)
  | Control_only  (** only the control flow depends on the non-core value *)

let pp_dep_kind ppf = function
  | Data -> Fmt.string ppf "data"
  | Control_only -> Fmt.string ppf "control-only"

(** One step of a structured value-flow witness path.  [p_key] is an
    opaque stable identity of the underlying taint entity (empty for
    synthetic narrative steps such as "reachable from critical pointer");
    [p_parent] names the key of the step the taint came from, forming a
    checkable chain: step [i+1]'s parent is step [i]'s key. *)
type path_step = {
  p_desc : string;         (** printed entity, e.g. ["decision:%12"] *)
  p_why : string option;   (** why taint reached this step; [None] at sources *)
  p_key : string;          (** entity identity; [""] for synthetic steps *)
  p_parent : string option;  (** key of the previous step's entity *)
}

let synthetic_step desc = { p_desc = desc; p_why = None; p_key = ""; p_parent = None }

let path_step_string s =
  match s.p_why with Some why -> Fmt.str "%s (%s)" s.p_desc why | None -> s.p_desc

let path_strings steps = List.map path_step_string steps

type dependency = {
  d_kind : dep_kind;
  d_sink : string;   (** description of the critical datum (assert or sink) *)
  d_func : string;
  d_loc : Loc.t;     (** location of the assert / sink call *)
  d_trace : string list;  (** one value-flow path, source first *)
  d_path : path_step list;
      (** the same path, structured: source first, sink last;
          [d_trace = path_strings d_path] whenever both are populated *)
}

(** Informational note: an audit trail entry that never gates.  Emitted
    under [--verbose] for each A1/A2 obligation the range analysis
    discharged without an Omega query ([I-RANGE-PROVED]). *)
type info = {
  i_code : string;
  i_func : string;
  i_loc : Loc.t;
  i_msg : string;
}

type t = {
  violations : violation list;
  warnings : warning list;
  dependencies : dependency list;
  infos : info list;  (** informational notes; empty unless [--verbose] *)
  regions : (string * int * bool) list;  (** name, size, noncore *)
  annotation_lines : int;  (** number of annotation clauses in the program *)
  stats : (string * int) list;  (** misc counters for the benchmark harness *)
}

let errors t = List.filter (fun d -> d.d_kind = Data) t.dependencies
let control_deps t = List.filter (fun d -> d.d_kind = Control_only) t.dependencies

(* -- Diagnostic codes ----------------------------------------------------------- *)

let code_unmonitored_read = "W-UNMONITORED-READ"
let code_critical_dep = "E-CRITICAL-DEP"
let code_control_dep = "C-CONTROL-DEP"
let code_range_proved = "I-RANGE-PROVED"

let code_of_restriction = function
  | P1 -> "V-P1"
  | P2 -> "V-P2"
  | P3 -> "V-P3"
  | A1 -> "V-A1"
  | A2 -> "V-A2"

let code_of_violation v = code_of_restriction v.v_rule
let code_of_warning (_ : warning) = code_unmonitored_read

let code_of_dependency d =
  match d.d_kind with Data -> code_critical_dep | Control_only -> code_control_dep

let code_of_info (i : info) = i.i_code

type rule = {
  rule_id : string;
  rule_name : string;       (** PascalCase identifier (SARIF [name]) *)
  rule_summary : string;    (** one sentence *)
  rule_help : string;       (** what a reviewer should do about it *)
  rule_level : [ `Error | `Warning | `Note ];
}

let rules =
  [
    { rule_id = code_unmonitored_read;
      rule_name = "UnmonitoredNoncoreRead";
      rule_summary =
        "The core component reads a non-core shared-memory value without a \
         monitor assumption covering the read.";
      rule_help =
        "Wrap the read in a monitoring function (assume(core(...))) or verify \
         that the value cannot compromise critical data.";
      rule_level = `Warning };
    { rule_id = code_critical_dep;
      rule_name = "CriticalDataDependency";
      rule_summary =
        "Critical data is data-dependent on an unmonitored non-core value.";
      rule_help =
        "Follow the witness value-flow path and insert monitoring where the \
         non-core value enters the critical computation.";
      rule_level = `Error };
    { rule_id = code_control_dep;
      rule_name = "ControlOnlyDependency";
      rule_summary =
        "Critical data is only control-dependent on an unmonitored non-core \
         value — the class the paper found to contain all its false positives.";
      rule_help =
        "Review the value-flow graph: dependence through configuration-style \
         branch conditions is usually benign, but must be audited.";
      rule_level = `Note };
    { rule_id = code_of_restriction P1;
      rule_name = "SharedMemoryBounds";
      rule_summary = "A shared-memory access may fall outside its region (restriction P1).";
      rule_help = "Bound the index so the access stays within the declared region size.";
      rule_level = `Error };
    { rule_id = code_of_restriction P2;
      rule_name = "SharedMemoryPointerEscape";
      rule_summary =
        "A shared-memory pointer is stored to memory or aliased in a way that \
         defeats phase-1 tracking (restriction P2).";
      rule_help = "Keep shm pointers in locals, parameters and return values only.";
      rule_level = `Error };
    { rule_id = code_of_restriction P3;
      rule_name = "SharedMemoryWrite";
      rule_summary = "The core component writes a non-core region (restriction P3).";
      rule_help = "Core components must not write regions owned by non-core components.";
      rule_level = `Error };
    { rule_id = code_of_restriction A1;
      rule_name = "MonitorAssumptionBounds";
      rule_summary =
        "A monitor assumption names a byte range outside its region (restriction A1).";
      rule_help = "Fix the assume(core(...)) offset/size so it stays within the region.";
      rule_level = `Error };
    { rule_id = code_of_restriction A2;
      rule_name = "MonitorAssumptionUnresolved";
      rule_summary =
        "A monitor assumption names a pointer that phase 1 cannot resolve to a \
         region (restriction A2).";
      rule_help = "Annotate a pointer whose region is statically known.";
      rule_level = `Error };
    { rule_id = code_range_proved;
      rule_name = "RangeProvedBounds";
      rule_summary =
        "The value-range analysis proved an A1/A2 array-index obligation in \
         bounds without consulting the Omega solver.";
      rule_help =
        "Nothing to fix — an audit-trail note (emitted under --verbose) \
         recording a statically discharged bounds obligation.";
      rule_level = `Note };
  ]

let rule_of_code id =
  match List.find_opt (fun r -> String.equal r.rule_id id) rules with
  | Some r -> r
  | None ->
    { rule_id = id; rule_name = id; rule_summary = id; rule_help = "";
      rule_level = `Warning }

(* -- Canonical finding order ----------------------------------------------------- *)

(* (file, line, col) first so reports read in source order, then the
   diagnostic code and remaining fields for a total order.  Emission
   sites (phase 2/3) and the driver both sort with these, so the legacy
   and worklist engines emit byte-identically ordered output. *)

let compare_loc (a : Loc.t) (b : Loc.t) =
  let c = compare a.Loc.file b.Loc.file in
  if c <> 0 then c
  else
    let c = compare a.Loc.line b.Loc.line in
    if c <> 0 then c else compare a.Loc.col b.Loc.col

let compare_violation (a : violation) (b : violation) =
  let c = compare_loc a.v_loc b.v_loc in
  if c <> 0 then c
  else compare (code_of_violation a, a.v_func, a.v_msg) (code_of_violation b, b.v_func, b.v_msg)

let compare_warning (a : warning) (b : warning) =
  let c = compare_loc a.w_loc b.w_loc in
  if c <> 0 then c else compare (a.w_region, a.w_func) (b.w_region, b.w_func)

let compare_dependency (a : dependency) (b : dependency) =
  let c = compare_loc a.d_loc b.d_loc in
  if c <> 0 then c
  else
    compare
      (code_of_dependency a, a.d_sink, a.d_func)
      (code_of_dependency b, b.d_sink, b.d_func)

let compare_info (a : info) (b : info) =
  let c = compare_loc a.i_loc b.i_loc in
  if c <> 0 then c else compare (a.i_code, a.i_func, a.i_msg) (b.i_code, b.i_func, b.i_msg)

let pp_violation ppf v =
  Fmt.pf ppf "[%s] restriction %a violated in %s at %a: %s" (code_of_violation v)
    pp_restriction v.v_rule v.v_func Loc.pp v.v_loc v.v_msg

let pp_warning ppf w =
  Fmt.pf ppf "[%s] warning: unmonitored non-core read of region '%s' in %s at %a"
    (code_of_warning w) w.w_region w.w_func Loc.pp w.w_loc

let pp_info ppf (i : info) =
  Fmt.pf ppf "[%s] note: %s in %s at %a" i.i_code i.i_msg i.i_func Loc.pp i.i_loc

let pp_dependency ppf d =
  Fmt.pf ppf "[%s] %a dependency: %s in %s at %a@,  flow: %a" (code_of_dependency d)
    pp_dep_kind d.d_kind d.d_sink d.d_func Loc.pp d.d_loc
    Fmt.(list ~sep:(any " ->@ ") string)
    d.d_trace

let pp ppf t =
  Fmt.pf ppf "@[<v>== SafeFlow report ==@,";
  Fmt.pf ppf "shared-memory regions:@,";
  List.iter
    (fun (n, sz, nc) ->
      Fmt.pf ppf "  %s: %d bytes%s@," n sz (if nc then " [noncore]" else " [core]"))
    t.regions;
  if t.violations <> [] then begin
    Fmt.pf ppf "restriction violations (%d):@," (List.length t.violations);
    List.iter (fun v -> Fmt.pf ppf "  %a@," pp_violation v) t.violations
  end;
  Fmt.pf ppf "warnings (%d):@," (List.length t.warnings);
  List.iter (fun w -> Fmt.pf ppf "  %a@," pp_warning w) t.warnings;
  let errs = errors t and ctrl = control_deps t in
  Fmt.pf ppf "error dependencies (%d):@," (List.length errs);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_dependency d) errs;
  Fmt.pf ppf "control-only dependencies — candidate false positives (%d):@,"
    (List.length ctrl);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_dependency d) ctrl;
  (* informational notes exist only under --verbose; printing nothing
     when empty keeps default reports byte-identical *)
  if t.infos <> [] then begin
    Fmt.pf ppf "informational (%d):@," (List.length t.infos);
    List.iter (fun i -> Fmt.pf ppf "  %a@," pp_info i) t.infos
  end;
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" pp t

(* -- Witness rendering (the [explain] subcommand) ------------------------------ *)

let pp_witness ppf (d : dependency) =
  Fmt.pf ppf "@[<v>%a dependency: %s@,  in %s at %a@," pp_dep_kind d.d_kind d.d_sink
    d.d_func Loc.pp d.d_loc;
  (match d.d_path with
  | [] -> Fmt.pf ppf "  (no witness path recorded)@,"
  | steps ->
    Fmt.pf ppf "  witness (%d steps, source first):@," (List.length steps);
    List.iteri
      (fun i (s : path_step) ->
        let tag = if i = 0 then "source" else if i = List.length steps - 1 then "sink" else "" in
        Fmt.pf ppf "    %2d. %-34s %s%s@," (i + 1) s.p_desc
          (match s.p_why with Some why -> "<- " ^ why | None -> "")
          (if tag = "" then "" else "  [" ^ tag ^ "]"))
      steps);
  Fmt.pf ppf "@]"

(** Everything a reviewer needs to audit the analysis verdicts: each
    warning with its read site and active monitoring context, then each
    dependency with its full step-by-step witness path. *)
let pp_explain ppf t =
  Fmt.pf ppf "@[<v>== SafeFlow explain ==@,";
  Fmt.pf ppf "unmonitored non-core read sites (%d):@," (List.length t.warnings);
  List.iter
    (fun w ->
      Fmt.pf ppf "  read of region '%s' in %s at %a%s@," w.w_region w.w_func Loc.pp
        w.w_loc
        (match w.w_context with
        | [] -> ""
        | ctx -> Fmt.str "  (context: %s)" (String.concat ", " ctx)))
    t.warnings;
  let errs = errors t and ctrl = control_deps t in
  Fmt.pf ppf "error dependencies (%d):@," (List.length errs);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_witness d) errs;
  Fmt.pf ppf "control-only dependencies (%d):@," (List.length ctrl);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_witness d) ctrl;
  Fmt.pf ppf "@]"
