(** Diagnostics emitted by the SafeFlow analysis.

    Terminology follows the paper's evaluation (§4):
    - a {e warning} is an unmonitored read of a non-core shared-memory
      value by the core component (reported "without any false positives
      or false negatives");
    - an {e error dependency} is critical data that is {b data}-dependent
      on an unmonitored non-core value;
    - a {e control dependency} is critical data that is only
      {b control}-dependent on such a value — the class the paper found to
      account for all its false positives, requiring manual review of the
      value-flow graph. *)

open Minic

type restriction = P1 | P2 | P3 | A1 | A2

let pp_restriction ppf r =
  Fmt.string ppf (match r with P1 -> "P1" | P2 -> "P2" | P3 -> "P3" | A1 -> "A1" | A2 -> "A2")

type violation = {
  v_rule : restriction;
  v_func : string;
  v_loc : Loc.t;
  v_msg : string;
}

type warning = {
  w_func : string;          (** core-component function performing the read *)
  w_region : string;        (** non-core shared-memory region *)
  w_loc : Loc.t;
  w_context : string list;  (** monitor-assumption context (region names assumed core) *)
}

type dep_kind =
  | Data          (** value flows into the critical computation *)
  | Control_only  (** only the control flow depends on the non-core value *)

let pp_dep_kind ppf = function
  | Data -> Fmt.string ppf "data"
  | Control_only -> Fmt.string ppf "control-only"

(** One step of a structured value-flow witness path.  [p_key] is an
    opaque stable identity of the underlying taint entity (empty for
    synthetic narrative steps such as "reachable from critical pointer");
    [p_parent] names the key of the step the taint came from, forming a
    checkable chain: step [i+1]'s parent is step [i]'s key. *)
type path_step = {
  p_desc : string;         (** printed entity, e.g. ["decision:%12"] *)
  p_why : string option;   (** why taint reached this step; [None] at sources *)
  p_key : string;          (** entity identity; [""] for synthetic steps *)
  p_parent : string option;  (** key of the previous step's entity *)
}

let synthetic_step desc = { p_desc = desc; p_why = None; p_key = ""; p_parent = None }

let path_step_string s =
  match s.p_why with Some why -> Fmt.str "%s (%s)" s.p_desc why | None -> s.p_desc

let path_strings steps = List.map path_step_string steps

type dependency = {
  d_kind : dep_kind;
  d_sink : string;   (** description of the critical datum (assert or sink) *)
  d_func : string;
  d_loc : Loc.t;     (** location of the assert / sink call *)
  d_trace : string list;  (** one value-flow path, source first *)
  d_path : path_step list;
      (** the same path, structured: source first, sink last;
          [d_trace = path_strings d_path] whenever both are populated *)
}

type t = {
  violations : violation list;
  warnings : warning list;
  dependencies : dependency list;
  regions : (string * int * bool) list;  (** name, size, noncore *)
  annotation_lines : int;  (** number of annotation clauses in the program *)
  stats : (string * int) list;  (** misc counters for the benchmark harness *)
}

let errors t = List.filter (fun d -> d.d_kind = Data) t.dependencies
let control_deps t = List.filter (fun d -> d.d_kind = Control_only) t.dependencies

let pp_violation ppf v =
  Fmt.pf ppf "restriction %a violated in %s at %a: %s" pp_restriction v.v_rule v.v_func
    Loc.pp v.v_loc v.v_msg

let pp_warning ppf w =
  Fmt.pf ppf "warning: unmonitored non-core read of region '%s' in %s at %a" w.w_region
    w.w_func Loc.pp w.w_loc

let pp_dependency ppf d =
  Fmt.pf ppf "%a dependency: %s in %s at %a@,  flow: %a"
    pp_dep_kind d.d_kind d.d_sink d.d_func Loc.pp d.d_loc
    Fmt.(list ~sep:(any " ->@ ") string)
    d.d_trace

let pp ppf t =
  Fmt.pf ppf "@[<v>== SafeFlow report ==@,";
  Fmt.pf ppf "shared-memory regions:@,";
  List.iter
    (fun (n, sz, nc) ->
      Fmt.pf ppf "  %s: %d bytes%s@," n sz (if nc then " [noncore]" else " [core]"))
    t.regions;
  if t.violations <> [] then begin
    Fmt.pf ppf "restriction violations (%d):@," (List.length t.violations);
    List.iter (fun v -> Fmt.pf ppf "  %a@," pp_violation v) t.violations
  end;
  Fmt.pf ppf "warnings (%d):@," (List.length t.warnings);
  List.iter (fun w -> Fmt.pf ppf "  %a@," pp_warning w) t.warnings;
  let errs = errors t and ctrl = control_deps t in
  Fmt.pf ppf "error dependencies (%d):@," (List.length errs);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_dependency d) errs;
  Fmt.pf ppf "control-only dependencies — candidate false positives (%d):@,"
    (List.length ctrl);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_dependency d) ctrl;
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" pp t

(* -- Witness rendering (the [explain] subcommand) ------------------------------ *)

let pp_witness ppf (d : dependency) =
  Fmt.pf ppf "@[<v>%a dependency: %s@,  in %s at %a@," pp_dep_kind d.d_kind d.d_sink
    d.d_func Loc.pp d.d_loc;
  (match d.d_path with
  | [] -> Fmt.pf ppf "  (no witness path recorded)@,"
  | steps ->
    Fmt.pf ppf "  witness (%d steps, source first):@," (List.length steps);
    List.iteri
      (fun i (s : path_step) ->
        let tag = if i = 0 then "source" else if i = List.length steps - 1 then "sink" else "" in
        Fmt.pf ppf "    %2d. %-34s %s%s@," (i + 1) s.p_desc
          (match s.p_why with Some why -> "<- " ^ why | None -> "")
          (if tag = "" then "" else "  [" ^ tag ^ "]"))
      steps);
  Fmt.pf ppf "@]"

(** Everything a reviewer needs to audit the analysis verdicts: each
    warning with its read site and active monitoring context, then each
    dependency with its full step-by-step witness path. *)
let pp_explain ppf t =
  Fmt.pf ppf "@[<v>== SafeFlow explain ==@,";
  Fmt.pf ppf "unmonitored non-core read sites (%d):@," (List.length t.warnings);
  List.iter
    (fun w ->
      Fmt.pf ppf "  read of region '%s' in %s at %a%s@," w.w_region w.w_func Loc.pp
        w.w_loc
        (match w.w_context with
        | [] -> ""
        | ctx -> Fmt.str "  (context: %s)" (String.concat ", " ctx)))
    t.warnings;
  let errs = errors t and ctrl = control_deps t in
  Fmt.pf ppf "error dependencies (%d):@," (List.length errs);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_witness d) errs;
  Fmt.pf ppf "control-only dependencies (%d):@," (List.length ctrl);
  List.iter (fun d -> Fmt.pf ppf "  @[<v>%a@]@," pp_witness d) ctrl;
  Fmt.pf ppf "@]"
