(** Diagnostics produced by the analysis, using the paper's terminology:
    warnings (unmonitored non-core reads), error dependencies
    (data-dependent critical data) and control-only dependencies (the
    false-positive class needing value-flow-graph review). *)

open Minic

type restriction = P1 | P2 | P3 | A1 | A2

val pp_restriction : Format.formatter -> restriction -> unit

type violation = {
  v_rule : restriction;
  v_func : string;
  v_loc : Loc.t;
  v_msg : string;
}

type warning = {
  w_func : string;
  w_region : string;
  w_loc : Loc.t;
  w_context : string list;  (** monitor assumptions active at the read *)
}

type dep_kind = Data | Control_only

val pp_dep_kind : Format.formatter -> dep_kind -> unit

(** One step of a structured value-flow witness.  Steps chain by
    identity: step [i+1].p_parent = Some (step [i].p_key), except across
    synthetic narrative steps (empty [p_key]). *)
type path_step = {
  p_desc : string;           (** printed entity, e.g. ["decision:%12"] *)
  p_why : string option;     (** why taint reached this step; [None] at sources *)
  p_key : string;            (** opaque entity identity; [""] if synthetic *)
  p_parent : string option;  (** [p_key] of the preceding step *)
}

val synthetic_step : string -> path_step
(** a narrative-only step (no underlying taint entity) *)

val path_step_string : path_step -> string
(** ["desc (why)"], or just ["desc"] when there is no why — exactly the
    legacy [d_trace] element format *)

val path_strings : path_step list -> string list

type dependency = {
  d_kind : dep_kind;
  d_sink : string;        (** the critical datum (assert or implicit sink) *)
  d_func : string;
  d_loc : Loc.t;
  d_trace : string list;  (** one value-flow path, source first *)
  d_path : path_step list;
      (** the same path, structured (source first, sink last); engines
          populate it so [d_trace = path_strings d_path] *)
}

(** Informational note (never gates): audit-trail entry emitted under
    [--verbose], e.g. [I-RANGE-PROVED] for each A1/A2 obligation the
    range analysis discharged without an Omega query. *)
type info = {
  i_code : string;
  i_func : string;
  i_loc : Loc.t;
  i_msg : string;
}

type t = {
  violations : violation list;
  warnings : warning list;
  dependencies : dependency list;
  infos : info list;  (** empty unless [--verbose] *)
  regions : (string * int * bool) list;  (** name, size, noncore *)
  annotation_lines : int;
  stats : (string * int) list;
}

val errors : t -> dependency list
(** the [Data] dependencies — the paper's "error dependencies" *)

val control_deps : t -> dependency list
(** the [Control_only] dependencies — candidate false positives *)

(** {1 Diagnostic codes}

    Every finding carries a stable diagnostic code, the unit of rule
    metadata in the SARIF export and the leading component of finding
    fingerprints ({!Fingerprint}).  Codes are derived from the finding,
    never stored, so report and cache layouts are unchanged. *)

val code_unmonitored_read : string  (** ["W-UNMONITORED-READ"] *)

val code_critical_dep : string  (** ["E-CRITICAL-DEP"] *)

val code_control_dep : string  (** ["C-CONTROL-DEP"] *)

val code_range_proved : string  (** ["I-RANGE-PROVED"] *)

val code_of_restriction : restriction -> string
(** ["V-P1"] … ["V-A2"] *)

val code_of_violation : violation -> string

val code_of_warning : warning -> string

val code_of_dependency : dependency -> string

val code_of_info : info -> string

(** Registry entry backing the SARIF [tool.driver.rules] array and the
    documentation table in DESIGN.md. *)
type rule = {
  rule_id : string;
  rule_name : string;       (** PascalCase identifier (SARIF [name]) *)
  rule_summary : string;    (** one sentence *)
  rule_help : string;       (** what a reviewer should do about it *)
  rule_level : [ `Error | `Warning | `Note ];
}

val rules : rule list
(** every code the analysis can emit, exactly once each *)

val rule_of_code : string -> rule
(** total: unknown codes get a degenerate warning-level entry *)

(** {1 Canonical finding order}

    Total orders by (file, line, col), then diagnostic code, then the
    remaining fields.  Emission sites and the driver sort with these so
    both engines emit byte-identically ordered reports. *)

val compare_loc : Loc.t -> Loc.t -> int
(** (file, line, col) *)

val compare_violation : violation -> violation -> int

val compare_warning : warning -> warning -> int

val compare_dependency : dependency -> dependency -> int

val compare_info : info -> info -> int

val pp_violation : Format.formatter -> violation -> unit

val pp_info : Format.formatter -> info -> unit

val pp_warning : Format.formatter -> warning -> unit

val pp_dependency : Format.formatter -> dependency -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val pp_witness : Format.formatter -> dependency -> unit
(** one dependency with its step-by-step witness path *)

val pp_explain : Format.formatter -> t -> unit
(** reviewer-facing rendering (the [explain] CLI subcommand): every
    read-site warning, then every dependency's full witness path *)
