(** SafeFlow — static analysis to enforce safe value flow in embedded
    control systems (Kowshik, Roşu, Sha — DSN 2006).

    Public entry point: {!Driver.analyze} / {!Driver.analyze_file} run the
    full pipeline on MiniC source and return a {!Report.t} listing

    - restriction violations (P1–P3, A1/A2),
    - warnings (unmonitored reads of non-core shared memory),
    - error dependencies (critical data depending on unsafe values) and
      control-only dependencies (the paper's false-positive class).

    The submodules expose each stage for tools and benchmarks. *)

module Version = Version
module Config = Config
module Report = Report
module Telemetry = Telemetry
module Ledger = Ledger
module Hotspots = Hotspots
module Jsonlite = Jsonlite
module Events = Events
module Progress = Progress
module Logctx = Logctx
module Benchdiff = Benchdiff
module Shm = Shm
module Phase1 = Phase1
module Phase2 = Phase2
module Phase3 = Phase3
module Intern = Intern
module Bitset = Bitset
module Digest_ir = Digest_ir
module Cache = Cache
module Vfgraph = Vfgraph
module Vfg = Vfg
module Driver = Driver
module Fleet = Fleet
module Synth = Synth
module Dyntaint = Dyntaint
module Summary = Summary
module Assume = Assume
module Fingerprint = Fingerprint
module Cert = Cert
module Sarif = Sarif
module Diffreport = Diffreport
module Coverage = Coverage
