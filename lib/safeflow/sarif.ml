(** SARIF 2.1.0 emission.  Hand-rolled JSON building, like the telemetry
    and bench exporters: the structure is fixed and shallow, and the repo
    deliberately carries no JSON dependency. *)

open Minic

let sarif_version = "2.1.0"

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let fingerprint_key = Fingerprint.version

type input = {
  i_file : string;
  i_report : Report.t;
  i_ctx : Fingerprint.ctx;
}

(* -- JSON building ------------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = Printf.sprintf "\"%s\"" (escape s)
let field k v = Printf.sprintf "%s:%s" (str k) v
let obj fields = "{" ^ String.concat "," fields ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"
let text s = obj [ field "text" (str s) ]

let level_name = function `Error -> "error" | `Warning -> "warning" | `Note -> "note"

(* -- Rules ---------------------------------------------------------------------- *)

let rule_json (r : Report.rule) =
  obj
    [ field "id" (str r.Report.rule_id);
      field "name" (str r.Report.rule_name);
      field "shortDescription" (text r.Report.rule_summary);
      field "fullDescription" (text r.Report.rule_summary);
      field "help" (text r.Report.rule_help);
      field "defaultConfiguration"
        (obj [ field "level" (str (level_name r.Report.rule_level)) ]) ]

let rule_index code =
  let rec go i = function
    | [] -> -1
    | (r : Report.rule) :: _ when String.equal r.Report.rule_id code -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 Report.rules

(* -- Locations ------------------------------------------------------------------ *)

(* SARIF regions are 1-based; IR-internal findings can carry Loc.dummy *)
let region (l : Loc.t) =
  obj
    [ field "startLine" (string_of_int (max 1 l.Loc.line));
      field "startColumn" (string_of_int (max 1 l.Loc.col)) ]

let physical_location ~uri (l : Loc.t) =
  obj
    [ field "physicalLocation"
        (obj
           [ field "artifactLocation" (obj [ field "uri" (str uri) ]);
             field "region" (region l) ]) ]

(* -- Code flows ------------------------------------------------------------------ *)

(** One threadFlow walking the witness path, source first.  Per-step
    source locations are not recorded in witnesses (entities are SSA
    values, not syntax), so each step carries its description as the
    location message and anchors to the sink's artifact. *)
let code_flow ~uri (d : Report.dependency) =
  match d.Report.d_path with
  | [] -> None
  | steps ->
    let step_loc i (s : Report.path_step) =
      let n = List.length steps in
      let tag = if i = 0 then " [source]" else if i = n - 1 then " [sink]" else "" in
      let loc = if i = n - 1 then d.Report.d_loc else Loc.dummy in
      obj
        [ field "location"
            (obj
               [ field "physicalLocation"
                   (obj
                      [ field "artifactLocation" (obj [ field "uri" (str uri) ]);
                        field "region" (region loc) ]);
                 field "message" (text (Report.path_step_string s ^ tag)) ]) ]
    in
    Some
      (arr
         [ obj
             [ field "threadFlows"
                 (arr [ obj [ field "locations" (arr (List.mapi step_loc steps)) ] ]) ] ])

(* -- Results -------------------------------------------------------------------- *)

let result_json ~uri (fp : string) (f : Fingerprint.finding) =
  let code = Fingerprint.code f in
  let rule = Report.rule_of_code code in
  let flows =
    match f with Fingerprint.Dependency d -> code_flow ~uri d | _ -> None
  in
  obj
    ([ field "ruleId" (str code);
       field "ruleIndex" (string_of_int (rule_index code));
       field "level" (str (level_name rule.Report.rule_level));
       field "message"
         (text (Printf.sprintf "%s (in %s)" (Fingerprint.message f) (Fingerprint.func f)));
       field "locations" (arr [ physical_location ~uri (Fingerprint.loc f) ]);
       field "partialFingerprints" (obj [ field fingerprint_key (str fp) ]);
       (* the fingerprint doubles as the finding's certificate id: under
          analyze --emit-certs the bundle contains certs/<certId>.json *)
       field "properties" (obj [ field "certId" (str fp) ]) ]
    @ match flows with Some fl -> [ field "codeFlows" fl ] | None -> [])

let results_of_input (i : input) =
  List.map
    (fun (fp, f) -> result_json ~uri:i.i_file fp f)
    (Fingerprint.of_report i.i_ctx i.i_report)

(* -- Top level ------------------------------------------------------------------- *)

let to_string ?(tool_version = Version.tool) (inputs : input list) =
  let driver =
    obj
      [ field "name" (str "safeflow");
        field "version" (str tool_version);
        field "informationUri"
          (str "https://doi.org/10.1109/DSN.2006.64");
        field "rules" (arr (List.map rule_json Report.rules)) ]
  in
  let artifacts =
    List.map
      (fun i -> obj [ field "location" (obj [ field "uri" (str i.i_file) ]) ])
      inputs
  in
  let run =
    obj
      [ field "tool" (obj [ field "driver" driver ]);
        field "artifacts" (arr artifacts);
        field "results" (arr (List.concat_map results_of_input inputs)) ]
  in
  obj
    [ field "$schema" (str schema_uri);
      field "version" (str sarif_version);
      field "runs" (arr [ run ]) ]
  ^ "\n"

let write ?tool_version path inputs =
  let oc = open_out path in
  output_string oc (to_string ?tool_version inputs);
  close_out oc
