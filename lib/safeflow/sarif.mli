(** SARIF 2.1.0 export of analysis reports (the [--sarif] CLI flag).

    One SARIF [run] covers all analyzed files: the tool driver carries
    rule metadata for every diagnostic code in {!Report.rules}, each
    finding becomes a [result] with a [partialFingerprints] entry keyed
    by {!Fingerprint.version}, and dependencies embed their value-flow
    witness as a [codeFlow] so SARIF viewers can walk the path from
    non-core source to critical sink. *)

val sarif_version : string
(** ["2.1.0"] *)

val schema_uri : string
(** the canonical sarif-schema-2.1.0.json URI, written as [$schema] *)

val fingerprint_key : string
(** the [partialFingerprints] property name ({!Fingerprint.version}) *)

type input = {
  i_file : string;          (** artifact URI for the findings *)
  i_report : Report.t;
  i_ctx : Fingerprint.ctx;  (** normalization context of that report *)
}

val to_string : ?tool_version:string -> input list -> string
(** the complete SARIF log as a JSON document *)

val write : ?tool_version:string -> string -> input list -> unit
(** [write path inputs] writes {!to_string} to [path] *)
