(** Summary-based value-flow analysis — the optimization sketched at the
    end of paper §3.3: "analyzing each function only once and summarizing
    the data dependencies in the functions using value flow graphs
    developed in ESP ... a single bottom-up pass on the SCCs of the call
    graph, inlining the value flow graphs in the callers".

    Each function is summarized once per outer iteration (not once per
    monitoring context): the summary maps the return value to the set of
    taint {e sources} it depends on, where a source is a function
    parameter (resolved by inlining at call sites), an unmonitored
    non-core read site, or a received-message site.  Monitoring coverage
    is resolved beforehand by a cheap context-reachability pass that does
    no per-instruction work.

    Compared to the exact engine ({!Phase3}):
    - warnings are identical (same coverage rule, same sites);
    - data dependencies are identical on programs where every read site
      has the same coverage in all contexts that reach it, and
      conservative (a superset) otherwise;
    - control-only dependencies are not computed — the summary graphs
      capture data flow only, exactly as in ESP.

    Benchmark B4 compares the two engines. *)

open Minic
module Offset = Pointsto.Offset

type source =
  | Sparam of string            (** parameter of the summarized function *)
  | Ssite of Loc.t * string     (** unmonitored non-core read (site, region) *)
  | Ssocket of Loc.t * string   (** message received from a non-core socket *)

module Srcset = Set.Make (struct
  type t = source

  let compare = compare
end)

type state = {
  prog : Ssair.Ir.program;
  shm : Shm.t;
  p1 : Phase1.t;
  pts : Pointsto.t;
  config : Config.t;
  (* context reachability: per function, the monitoring-assumption sets of
     the call chains reaching it *)
  reach : (string, Assume.assumption list list) Hashtbl.t;
  (* uncovered non-core read sites (= the warnings) *)
  uncovered : (Loc.t * string, string) Hashtbl.t;  (* site -> function *)
  (* global memory-object taint *)
  node_src : (Pointsto.Node.t, Srcset.t) Hashtbl.t;
  (* per-function return summaries *)
  ret_sum : (string, Srcset.t) Hashtbl.t;
  (* sink summaries: critical sites inside a function whose value depends
     on a parameter — resolved by inlining at call sites, like ESP sink
     nodes in the summarized value-flow graphs *)
  sink_params : (string, ((string * string * Loc.t) * string) list) Hashtbl.t;
  noncore_sockets : (string, unit) Hashtbl.t;
  mutable changed : bool;
  mutable passes : int;
}

let node_get st n = Option.value ~default:Srcset.empty (Hashtbl.find_opt st.node_src n)

let node_add st n s =
  let old = node_get st n in
  let merged = Srcset.union old s in
  if Srcset.cardinal merged > Srcset.cardinal old then begin
    Hashtbl.replace st.node_src n merged;
    st.changed <- true
  end

let ret_get st f = Option.value ~default:Srcset.empty (Hashtbl.find_opt st.ret_sum f)

let ret_add st f s =
  let old = ret_get st f in
  let merged = Srcset.union old s in
  if Srcset.cardinal merged > Srcset.cardinal old then begin
    Hashtbl.replace st.ret_sum f merged;
    st.changed <- true
  end

(* -- context reachability ---------------------------------------------------- *)

let covers_region ctx region ~lo ~hi =
  List.exists
    (function
      | Assume.Aregion (r, l, h) -> String.equal r region && l <= lo && hi <= h
      | Assume.Anode _ -> false)
    ctx

let covers_node ctx node =
  List.exists (function Assume.Anode n -> n = node | _ -> false) ctx

(** Walk the call graph from the roots accumulating assumption sets; no
    per-instruction work happens per context. *)
let compute_reachability st =
  let own f = List.sort_uniq compare (Assume.of_func ~prog:st.prog ~shm:st.shm ~p1:st.p1 ~pts:st.pts f) in
  let seen : (string * Assume.assumption list, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push fname ctx =
    if not (Hashtbl.mem seen (fname, ctx)) then begin
      Hashtbl.replace seen (fname, ctx) ();
      let old = Option.value ~default:[] (Hashtbl.find_opt st.reach fname) in
      Hashtbl.replace st.reach fname (ctx :: old);
      Queue.add (fname, ctx) queue
    end
  in
  let called = Hashtbl.create 32 in
  List.iter
    (fun (f : Ssair.Ir.func) ->
      List.iter
        (fun i ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Call { callee; _ } -> Hashtbl.replace called callee ()
          | _ -> ())
        (Ssair.Ir.all_instrs f))
    st.prog.Ssair.Ir.funcs;
  List.iter
    (fun (f : Ssair.Ir.func) ->
      let name = f.Ssair.Ir.fname in
      if
        (String.equal name "main" || not (Hashtbl.mem called name))
        && not (Phase1.is_exempt st.p1 name)
      then push name (own f))
    st.prog.Ssair.Ir.funcs;
  while not (Queue.is_empty queue) do
    let fname, ctx = Queue.pop queue in
    match Ssair.Ir.find_func st.prog fname with
    | None -> ()
    | Some f ->
      List.iter
        (fun i ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Call { callee; _ } -> (
            match Ssair.Ir.find_func st.prog callee with
            | Some g when not (Phase1.is_exempt st.p1 callee) ->
              let gctx =
                if st.config.Config.context_sensitive then
                  List.sort_uniq compare (ctx @ own g)
                else own g
              in
              push callee gctx
            | _ -> ())
          | _ -> ())
        (Ssair.Ir.all_instrs f)
  done

let reaching st fname = Option.value ~default:[] (Hashtbl.find_opt st.reach fname)

(** is this (region, range) read uncovered in some context reaching [f]? *)
let region_read_uncovered st fname region ~lo ~hi =
  match reaching st fname with
  | [] -> true (* unreachable functions: conservative *)
  | ctxs -> List.exists (fun ctx -> not (covers_region ctx region ~lo ~hi)) ctxs

let node_read_clean st fname node =
  match reaching st fname with
  | [] -> false
  | ctxs -> List.for_all (fun ctx -> covers_node ctx node) ctxs

(* -- per-function summarization ------------------------------------------------ *)

type sink = { k_sink : string; k_func : string; k_loc : Loc.t; k_set : Srcset.t }

let register_sink_param st fname entry =
  let old = Option.value ~default:[] (Hashtbl.find_opt st.sink_params fname) in
  if not (List.mem entry old) then begin
    Hashtbl.replace st.sink_params fname (entry :: old);
    st.changed <- true
  end

let summarize_function st (f : Ssair.Ir.func) (sinks : sink list ref) =
  let env = st.prog.Ssair.Ir.env in
  let fname = f.Ssair.Ir.fname in
  let vals : (Ssair.Ir.vid, Srcset.t) Hashtbl.t = Hashtbl.create 64 in
  let vget id = Option.value ~default:Srcset.empty (Hashtbl.find_opt vals id) in
  let local_changed = ref true in
  let value_src (v : Ssair.Ir.value) : Srcset.t =
    match v with
    | Ssair.Ir.Vreg id -> vget id
    | Ssair.Ir.Vparam p -> Srcset.singleton (Sparam p)
    | _ -> Srcset.empty
  in
  let vset id s =
    let old = vget id in
    let merged = Srcset.union old s in
    if Srcset.cardinal merged > Srcset.cardinal old then begin
      Hashtbl.replace vals id merged;
      local_changed := true
    end
  in
  (* inline a callee's return summary at a call site *)
  let instantiate callee args =
    let gsum = ret_get st callee in
    match Ssair.Ir.find_func st.prog callee with
    | None -> Srcset.empty
    | Some g ->
      let arg_of p =
        match List.find_index (fun (n, _) -> String.equal n p) g.Ssair.Ir.fparams with
        | Some k -> List.nth_opt args k
        | None -> None
      in
      (* resolve the callee's parameter-dependent sinks against the
         actual arguments *)
      List.iter
        (fun (((sk, sf, sl) as info), p) ->
          match arg_of p with
          | Some arg ->
            let aset = value_src arg in
            let live = Srcset.filter (function Sparam _ -> false | _ -> true) aset in
            if not (Srcset.is_empty live) then
              sinks :=
                { k_sink = sk; k_func = sf; k_loc = sl; k_set = live } :: !sinks;
            Srcset.iter
              (fun src ->
                match src with
                | Sparam q -> register_sink_param st fname (info, q)
                | _ -> ())
              aset
          | None -> ())
        (Option.value ~default:[] (Hashtbl.find_opt st.sink_params callee));
      Srcset.fold
        (fun src acc ->
          match src with
          | Sparam p -> (
            match arg_of p with
            | Some arg -> Srcset.union acc (value_src arg)
            | None -> acc)
          | s -> Srcset.add s acc)
        gsum Srcset.empty
  in
  while !local_changed do
    local_changed := false;
    List.iter
      (fun (b : Ssair.Ir.block) ->
        List.iter
          (fun (p : Ssair.Ir.phi) ->
            List.iter (fun (_, v) -> vset p.Ssair.Ir.pid (value_src v)) p.Ssair.Ir.incoming)
          b.Ssair.Ir.phis;
        List.iter
          (fun (i : Ssair.Ir.instr) ->
            match i.Ssair.Ir.idesc with
            | Ssair.Ir.Alloca _ -> ()
            | Ssair.Ir.Load { ptr; lty } ->
              let shm_targets = Phase1.shm_targets st.p1 f ptr in
              Phase1.Rset.iter
                (fun tgt ->
                  let rname = tgt.Phase1.Rtgt.region in
                  match Shm.region st.shm rname with
                  | None -> ()
                  | Some r ->
                    if r.Shm.r_noncore then begin
                      let lo, hi =
                        match tgt.Phase1.Rtgt.off with
                        | Offset.Byte b -> (b, b + Ty.sizeof env lty)
                        | Offset.Top -> (0, r.Shm.r_size)
                      in
                      if region_read_uncovered st fname rname ~lo ~hi then begin
                        if not (Hashtbl.mem st.uncovered (i.Ssair.Ir.iloc, rname)) then begin
                          Hashtbl.replace st.uncovered (i.Ssair.Ir.iloc, rname) fname;
                          st.changed <- true
                        end;
                        vset i.Ssair.Ir.iid (Srcset.singleton (Ssite (i.Ssair.Ir.iloc, rname)))
                      end
                    end
                    else
                      vset i.Ssair.Ir.iid (node_get st (Pointsto.Node.Nshm rname)))
                shm_targets;
              if Phase1.Rset.is_empty shm_targets then
                Pointsto.Tset.iter
                  (fun tgt ->
                    let node = tgt.Pointsto.Target.node in
                    if not (node_read_clean st fname node) then
                      vset i.Ssair.Ir.iid (node_get st node))
                  (Pointsto.points_to st.pts f ptr);
              vset i.Ssair.Ir.iid (value_src ptr)
            | Ssair.Ir.Store { ptr; sval; _ } ->
              let s = value_src sval in
              if not (Srcset.is_empty s) then begin
                let shm = Phase1.shm_targets st.p1 f ptr in
                if Phase1.Rset.is_empty shm then
                  Pointsto.Tset.iter
                    (fun tgt -> node_add st tgt.Pointsto.Target.node s)
                    (Pointsto.points_to st.pts f ptr)
                else
                  Phase1.Rset.iter
                    (fun tgt -> node_add st (Pointsto.Node.Nshm tgt.Phase1.Rtgt.region) s)
                    shm
              end
            | Ssair.Ir.Binop { lhs; rhs; _ } ->
              vset i.Ssair.Ir.iid (Srcset.union (value_src lhs) (value_src rhs))
            | Ssair.Ir.Unop { operand; _ } -> vset i.Ssair.Ir.iid (value_src operand)
            | Ssair.Ir.Cast { cval; _ } -> vset i.Ssair.Ir.iid (value_src cval)
            | Ssair.Ir.Gep { base; idx; _ } ->
              vset i.Ssair.Ir.iid (Srcset.union (value_src base) (value_src idx))
            | Ssair.Ir.Annotation _ -> ()
            | Ssair.Ir.Call { callee; args; _ } -> (
              match Ssair.Ir.find_func st.prog callee with
              | Some _ -> vset i.Ssair.Ir.iid (instantiate callee args)
              | None ->
                (* message passing: recv through a non-core socket *)
                if List.mem callee st.config.Config.recv_functions then begin
                  let socket_is_noncore =
                    match args with
                    | sock :: _ -> (
                      match sock with
                      | Ssair.Ir.Vparam p -> Hashtbl.mem st.noncore_sockets p
                      | Ssair.Ir.Vreg id -> (
                        match Hashtbl.find_opt (Ssair.Ir.def_table f) id with
                        | Some
                            (Ssair.Ir.Def_instr
                               ( { idesc = Ssair.Ir.Load { ptr = Ssair.Ir.Vglobal g; _ }; _ },
                                 _ )) ->
                          Hashtbl.mem st.noncore_sockets g
                        | _ -> false)
                      | _ -> false)
                    | [] -> false
                  in
                  if socket_is_noncore then
                    match args with
                    | _ :: buf :: _ ->
                      Pointsto.Tset.iter
                        (fun tgt ->
                          node_add st tgt.Pointsto.Target.node
                            (Srcset.singleton (Ssocket (i.Ssair.Ir.iloc, callee))))
                        (Pointsto.points_to st.pts f buf)
                    | _ -> ()
                end;
                vset i.Ssair.Ir.iid
                  (List.fold_left
                     (fun acc a -> Srcset.union acc (value_src a))
                     Srcset.empty args)))
          b.Ssair.Ir.instrs;
        match b.Ssair.Ir.termin with
        | Ssair.Ir.Ret (Some v) -> ret_add st fname (value_src v)
        | _ -> ())
      f.Ssair.Ir.blocks
  done;
  (* collect critical sinks with their final source sets *)
  List.iter
    (fun (b : Ssair.Ir.block) ->
      List.iter
        (fun (i : Ssair.Ir.instr) ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Annotation { clause = Annot.Assert_safe x; aval = Some v } ->
            let set = value_src v in
            sinks :=
              { k_sink = Fmt.str "assert(safe(%s))" x; k_func = fname;
                k_loc = i.Ssair.Ir.iloc; k_set = set }
              :: !sinks;
            Srcset.iter
              (fun src ->
                match src with
                | Sparam p ->
                  register_sink_param st fname
                    ((Fmt.str "assert(safe(%s))" x, fname, i.Ssair.Ir.iloc), p)
                | _ -> ())
              set
          | Ssair.Ir.Call { callee; args; _ } -> (
            match List.assoc_opt callee st.config.Config.critical_sinks with
            | Some indices ->
              List.iter
                (fun k ->
                  match List.nth_opt args k with
                  | Some arg ->
                    let set = value_src arg in
                    sinks :=
                      { k_sink = Fmt.str "argument %d of %s" k callee; k_func = fname;
                        k_loc = i.Ssair.Ir.iloc; k_set = set }
                      :: !sinks;
                    Srcset.iter
                      (fun src ->
                        match src with
                        | Sparam p ->
                          register_sink_param st fname
                            ((Fmt.str "argument %d of %s" k callee, fname, i.Ssair.Ir.iloc), p)
                        | _ -> ())
                      set
                  | None -> ())
                indices
            | None -> ())
          | _ -> ())
        b.Ssair.Ir.instrs)
    f.Ssair.Ir.blocks

(* -- entry point ------------------------------------------------------------------ *)

type result = {
  warnings : Report.warning list;
  dependencies : Report.dependency list;
  passes : int;
}

let pp_source ppf = function
  | Sparam p -> Fmt.pf ppf "parameter %s" p
  | Ssite (loc, r) -> Fmt.pf ppf "non-core region %s (read at %a)" r Loc.pp loc
  | Ssocket (loc, f) -> Fmt.pf ppf "non-core socket via %s at %a" f Loc.pp loc

let run ?(config = Config.default) (prog : Ssair.Ir.program) (shm : Shm.t)
    (p1 : Phase1.t) (pts : Pointsto.t) : result =
  let st =
    {
      prog;
      shm;
      p1;
      pts;
      config;
      reach = Hashtbl.create 32;
      uncovered = Hashtbl.create 32;
      node_src = Hashtbl.create 64;
      ret_sum = Hashtbl.create 32;
      sink_params = Hashtbl.create 8;
      noncore_sockets = Hashtbl.create 4;
      changed = true;
      passes = 0;
    }
  in
  (* non-core sockets (§3.4.3) *)
  List.iter
    (fun (f : Ssair.Ir.func) ->
      List.iter
        (function
          | Annot.Noncore name when Shm.region shm name = None ->
            Hashtbl.replace st.noncore_sockets name ()
          | _ -> ())
        f.Ssair.Ir.fannot)
    prog.Ssair.Ir.funcs;
  compute_reachability st;
  (* bottom-up order over call-graph SCCs *)
  let callees fname =
    match Ssair.Ir.find_func prog fname with
    | None -> []
    | Some f ->
      List.filter_map
        (fun i ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Call { callee; _ } when Ssair.Ir.find_func prog callee <> None ->
            Some callee
          | _ -> None)
        (Ssair.Ir.all_instrs f)
  in
  let names = List.map (fun f -> f.Ssair.Ir.fname) prog.Ssair.Ir.funcs in
  let scc = Dataflow.Scc.compute names callees in
  let bottom_up = Dataflow.Scc.reverse_topological scc in
  let sinks = ref [] in
  (* outer loop: memory-object taint feeds back across the pass *)
  while st.changed do
    st.changed <- false;
    st.passes <- st.passes + 1;
    sinks := [];
    List.iter
      (fun component ->
        (* within an SCC, iterate until the members' summaries stabilize *)
        let scc_changed = ref true in
        while !scc_changed do
          scc_changed := false;
          let before = Hashtbl.length st.ret_sum in
          let cardinal_sum =
            List.fold_left
              (fun acc n -> acc + Srcset.cardinal (ret_get st n))
              0 component
          in
          List.iter
            (fun fname ->
              match Ssair.Ir.find_func prog fname with
              | Some f when not (Phase1.is_exempt p1 fname) ->
                summarize_function st f sinks
              | _ -> ())
            component;
          let cardinal_sum' =
            List.fold_left
              (fun acc n -> acc + Srcset.cardinal (ret_get st n))
              0 component
          in
          if cardinal_sum' <> cardinal_sum || Hashtbl.length st.ret_sum <> before then
            scc_changed := true
        done)
      bottom_up
  done;
  let warnings =
    Hashtbl.fold
      (fun (loc, region) fname acc ->
        { Report.w_func = fname; w_region = region; w_loc = loc; w_context = [] } :: acc)
      st.uncovered []
    |> List.sort (fun (a : Report.warning) b -> Loc.compare a.w_loc b.w_loc)
  in
  let deps =
    List.filter_map
      (fun s ->
        (* a sink depends on non-core data iff its set holds a live source
           other than bare parameters *)
        let live =
          Srcset.filter (function Sparam _ -> false | _ -> true) s.k_set
        in
        if Srcset.is_empty live then None
        else
          let path =
            List.map
              (fun src -> Report.synthetic_step (Fmt.str "%a" pp_source src))
              (Srcset.elements live)
            @ [ Report.synthetic_step "(summary-mode flow)" ]
          in
          Some
            {
              Report.d_kind = Report.Data;
              d_sink = s.k_sink;
              d_func = s.k_func;
              d_loc = s.k_loc;
              d_trace = Report.path_strings path;
              d_path = path;
            })
      !sinks
    |> List.sort_uniq compare
  in
  (* deduplicate by (sink, loc) *)
  let seen = Hashtbl.create 16 in
  let deps =
    List.filter
      (fun (d : Report.dependency) ->
        let key = (d.Report.d_sink, d.Report.d_loc) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      deps
  in
  { warnings; dependencies = deps; passes = st.passes }
